(* The cloud9 command-line interface.

     cloud9 list                         enumerate targets and harnesses
     cloud9 table4                       print the Table 4 inventory
     cloud9 run TARGET [-v HARNESS] ...  run a symbolic test, locally or
                                         on a simulated cluster (-w N)
     cloud9 serve --state FILE ...       campaign daemon: JSONL control
                                         plane, checkpoint/restore

   Examples:
     cloud9 run curl
     cloud9 run memcached -v udp-hang --max-steps 20000
     cloud9 run printf -v sym-4 -w 12
     cloud9 serve --state st.json --control cmds.jsonl --events ev.jsonl *)

open Cmdliner
module C = Core.Cloud9

(* Integer flags that must be strictly positive (worker counts, budgets,
   domain counts) share one Arg converter over {!Service.Validate}, so
   the CLI and the daemon's control plane reject with the same message —
   and the unit tests exercise the exact rejection. *)
let pos_int ~flag =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s: expected an integer (got %S)" flag s))
    | Some v -> (
      match Service.Validate.positive_int ~flag v with
      | Ok v -> Ok v
      | Error m -> Error (`Msg m))
  in
  Arg.conv (parse, Format.pp_print_int)

let non_neg_int ~flag =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s: expected an integer (got %S)" flag s))
    | Some v -> (
      match Service.Validate.non_negative_int ~flag v with
      | Ok v -> Ok v
      | Error m -> Error (`Msg m))
  in
  Arg.conv (parse, Format.pp_print_int)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-12s %-28s %s\n" e.Core.Registry.rname e.Core.Registry.rkind
          (String.concat ", " (List.map fst e.Core.Registry.variants)))
      Core.Registry.entries
  in
  Cmd.v (Cmd.info "list" ~doc:"List testing targets and their harnesses")
    Term.(const run $ const ())

let table4_cmd =
  let run () =
    Printf.printf "%-12s %-28s %10s %8s\n" "System" "Type of Software" "IR instrs" "stmts";
    List.iter
      (fun (name, kind, instrs, lines) ->
        Printf.printf "%-12s %-28s %10d %8d\n" name kind instrs lines)
      (Core.Registry.table4 ())
  in
  Cmd.v (Cmd.info "table4" ~doc:"Print the target inventory (paper Table 4)")
    Term.(const run $ const ())

let target_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc:"Registry target name")

let variant_arg =
  Arg.(value & opt (some string) None & info [ "v"; "variant" ] ~docv:"HARNESS" ~doc:"Harness variant")

let workers_arg =
  Arg.(
    value
    & opt (pos_int ~flag:"--workers") 1
    & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker count (1 = local engine)")

let parallel_arg =
  Arg.(
    value
    & opt (some (pos_int ~flag:"--parallel")) None
    & info [ "p"; "parallel" ] ~docv:"N"
        ~doc:
          "Run on $(docv) real OCaml domains (true multicore) instead of the virtual-time \
           simulation; explores to exhaustion")

let strategy_arg =
  Arg.(
    value
    & opt string "interleaved"
    & info [ "s"; "strategy" ] ~docv:"NAME"
        ~doc:("Search strategy: " ^ String.concat ", " Engine.Searcher.names))

let max_steps_arg =
  Arg.(
    value
    & opt (pos_int ~flag:"--max-steps") 1_000_000
    & info [ "max-steps" ] ~docv:"K" ~doc:"Per-path instruction cap (hang detector)")

let max_paths_arg =
  Arg.(value & opt (some int) None & info [ "paths" ] ~docv:"N" ~doc:"Stop after N completed paths")

let coverage_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "coverage" ] ~docv:"F" ~doc:"Stop at this line-coverage fraction")

let tests_arg =
  Arg.(value & opt int 16 & info [ "tests" ] ~docv:"N" ~doc:"Test cases to materialize")

let speed_arg =
  Arg.(
    value
    & opt (pos_int ~flag:"--speed") 2000
    & info [ "speed" ] ~docv:"I" ~doc:"Cluster mode: instructions per worker per tick")

(* a crash spec is WORKER@TICK, e.g. --crash 2@100,5@200 *)
let crash_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ w; t ] -> (
      match (int_of_string_opt w, int_of_string_opt t) with
      | Some w, Some t when w >= 0 && t >= 0 -> Ok (w, t)
      | _ -> Error (`Msg (Printf.sprintf "bad crash spec %S (expected WORKER@TICK)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad crash spec %S (expected WORKER@TICK)" s))
  in
  let print fmt (w, t) = Format.fprintf fmt "%d@%d" w t in
  Arg.conv (parse, print)

let crash_arg =
  Arg.(
    value
    & opt (list crash_conv) []
    & info [ "crash" ] ~docv:"W@T,.."
        ~doc:"Cluster mode: crash worker $(i,W) at tick $(i,T) (comma-separated list)")

let rejoin_arg =
  Arg.(
    value & opt int 0
    & info [ "rejoin" ] ~docv:"D"
        ~doc:"Cluster mode: crashed workers rejoin after $(i,D) ticks (0 = never)")

let msg_loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "msg-loss" ] ~docv:"P"
        ~doc:"Cluster mode: drop each cluster message with probability $(i,P)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run to $(docv) (load in \
           chrome://tracing or ui.perfetto.dev)")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write run metrics as JSON lines to $(docv) (summarize with $(b,cloud9 report))")

let write_obs_artifacts obs ~trace ~metrics =
  match obs with
  | None -> ()
  | Some sink ->
    let with_out path f =
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
    in
    Option.iter
      (fun path ->
        with_out path (Obs.Sink.write_chrome_trace sink);
        Printf.printf "trace: %s\n" path)
      trace;
    Option.iter
      (fun path ->
        with_out path (Obs.Sink.write_metrics_jsonl sink);
        Printf.printf "metrics: %s\n" path)
      metrics

let run_local ?obs target options =
  let report = C.run_local ?obs ~options target in
  Format.printf "%a" C.pp_report report;
  let st = report.C.solver_stats in
  Format.printf "solver: %d queries, %d SAT calls, %d cache hits, %d model-probe hits@."
    st.Smt.Solver.queries st.Smt.Solver.sat_calls st.Smt.Solver.cache_hits
    st.Smt.Solver.cex_hits;
  let inc = report.C.inc_stats in
  if inc.Smt.Solver.assumption_solves > 0 then
    Format.printf
      "incremental: %d assumption solves, %d group hits / %d misses, %d retirements@."
      inc.Smt.Solver.assumption_solves inc.Smt.Solver.group_hits inc.Smt.Solver.group_misses
      inc.Smt.Solver.retirements

let run_cluster ?obs target nworkers speed goal max_steps crashes rejoin msg_loss =
  let fault_plan =
    Cluster.Faultplan.create
      ~crashes:
        (List.map
           (fun (w, t) ->
             Cluster.Faultplan.crash
               ?rejoin_after:(if rejoin > 0 then Some rejoin else None)
               w ~at_tick:t)
           crashes)
      ~drop_prob:msg_loss ()
  in
  let options =
    {
      C.default_cluster_options with
      C.nworkers;
      speed;
      cluster_goal = goal;
      cworker_max_steps = Some max_steps;
      fault_plan;
    }
  in
  let r = C.run_cluster ?obs ~options target in
  Printf.printf
    "cluster: %d workers, %d virtual ticks, %d paths (%d errors), %.1f%% coverage\n"
    nworkers r.Cluster.Driver.ticks r.Cluster.Driver.total_paths r.Cluster.Driver.total_errors
    (100.0 *. r.Cluster.Driver.final_coverage);
  Printf.printf "work: %d useful + %d replay instructions, %d states transferred, %d broken replays\n"
    r.Cluster.Driver.useful_instrs r.Cluster.Driver.replay_instrs r.Cluster.Driver.transfers
    r.Cluster.Driver.broken_replays;
  if not (Cluster.Faultplan.is_faultless fault_plan) then
    Printf.printf
      "faults: %d crashes, %d jobs recovered, %d retransmits, %d recovery replay instructions\n"
      r.Cluster.Driver.crashes r.Cluster.Driver.recovered_jobs r.Cluster.Driver.retransmits
      r.Cluster.Driver.recovery_replay_instrs

let run_parallel ?obs target ndomains max_steps crashes rejoin msg_loss =
  (* the same --crash/--rejoin/--msg-loss flags compose with --parallel;
     ticks are coordinator ticks (~1 ms each) on real domains *)
  let fault_plan =
    Cluster.Faultplan.create
      ~crashes:
        (List.map
           (fun (w, t) ->
             Cluster.Faultplan.crash
               ?rejoin_after:(if rejoin > 0 then Some rejoin else None)
               w ~at_tick:t)
           crashes)
      ~drop_prob:msg_loss ()
  in
  (match Cluster.Faultplan.validate fault_plan ~nworkers:ndomains with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "cloud9: %s\n" m;
    exit 1);
  let options =
    { C.default_cluster_options with C.cworker_max_steps = Some max_steps; fault_plan }
  in
  let r = C.run_parallel ?obs ~ndomains ~options target in
  Printf.printf "parallel: %d domains, %d paths (%d errors), %.1f%% coverage\n"
    r.Cluster.Parallel.ndomains r.Cluster.Parallel.total_paths r.Cluster.Parallel.total_errors
    (100.0 *. r.Cluster.Parallel.final_coverage);
  Printf.printf
    "work: %d useful + %d replay instructions, %d jobs transferred (%d steals), %d broken \
     replays\n"
    r.Cluster.Parallel.useful_instrs r.Cluster.Parallel.replay_instrs
    r.Cluster.Parallel.transfers r.Cluster.Parallel.steals r.Cluster.Parallel.broken_replays;
  if not (Cluster.Faultplan.is_faultless fault_plan) then
    Printf.printf
      "faults: %d crashes, %d jobs recovered, %d retransmits, %d recovery replay instructions\n"
      r.Cluster.Parallel.crashes r.Cluster.Parallel.recovered_jobs
      r.Cluster.Parallel.retransmits r.Cluster.Parallel.recovery_replay_instrs;
  let st = r.Cluster.Parallel.solver_stats in
  Printf.printf "solver: %d queries, %d SAT calls, %d cache hits, %d model-probe hits\n"
    st.Smt.Solver.queries st.Smt.Solver.sat_calls st.Smt.Solver.cache_hits
    st.Smt.Solver.cex_hits

let run_cmd =
  let run name variant workers parallel strategy max_steps max_paths coverage tests speed
      crashes rejoin msg_loss trace metrics =
    match Core.Registry.resolve ~name ~variant with
    | None ->
      Printf.eprintf "unknown target %s%s (try: cloud9 list)\n" name
        (match variant with Some v -> "/" ^ v | None -> "");
      exit 1
    | Some target ->
      let obs =
        if trace <> None || metrics <> None then Some (Obs.Sink.create ()) else None
      in
      (match parallel with
      | Some ndomains ->
        (* the pos_int converter already rejected n < 1 with a proper
           Cmdliner error, so no silent fallthrough remains here *)
        run_parallel ?obs target ndomains max_steps crashes rejoin msg_loss
      | None ->
      if workers <= 1 then begin
        let goal =
          match (max_paths, coverage) with
          | Some p, _ -> Engine.Driver.Paths p
          | None, Some f -> Engine.Driver.Coverage f
          | None, None -> Engine.Driver.Exhaust
        in
        run_local ?obs target
          {
            C.default_options with
            C.strategy;
            max_steps = Some max_steps;
            collect_tests = tests;
            goal;
          }
      end
      else begin
        let goal =
          match coverage with
          | Some f -> Cluster.Driver.Coverage_target f
          | None -> Cluster.Driver.Exhaust
        in
        run_cluster ?obs target workers speed goal max_steps crashes rejoin msg_loss
      end);
      write_obs_artifacts obs ~trace ~metrics
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a symbolic test on a target")
    Term.(
      const run $ target_arg $ variant_arg $ workers_arg $ parallel_arg $ strategy_arg
      $ max_steps_arg $ max_paths_arg $ coverage_arg $ tests_arg $ speed_arg $ crash_arg
      $ rejoin_arg $ msg_loss_arg $ trace_arg $ metrics_arg)

(* Total file read for the report/top readers: a missing, unreadable or
   empty file is an [Error], never an uncaught exception. *)
let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | "" -> Error (Printf.sprintf "%s: empty file" path)
        | text -> Ok text
        | exception End_of_file -> Error (Printf.sprintf "%s: truncated read" path))

let read_json path =
  match read_file path with
  | Error e -> Error e
  | Ok text -> (
    match Obs.Json.parse (String.trim text) with
    | Ok v -> Ok v
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

let report_cmd =
  let metrics_file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"METRICS"
          ~doc:
            "Metrics JSONL file written by cloud9 run --metrics (or, with $(b,--diff), the \
             baseline BENCH artifact)")
  in
  let diff_file_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"With $(b,--diff): the new BENCH artifact to compare")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Also print the wall-clock profile: p50/p90/p99 latency table over every \
             latency_ns histogram (mailbox waits, steal round-trips, job replays, solver \
             queries by tier, shard lock waits, obs flushes) and the most contended locks")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Regression check: structurally compare two BENCH_*.json artifacts and exit \
             non-zero if a gate flipped or a deterministic metric moved beyond tolerance")
  in
  let run_summary path profile =
    match read_file path with
    | Error msg ->
      Printf.eprintf "cloud9 report: %s\n" msg;
      exit 1
    | Ok text -> (
      match Obs.Report.parse_jsonl text with
      | Ok snap ->
        print_string (Obs.Report.render_string snap);
        if profile then begin
          print_newline ();
          print_string (Obs.Report.render_profile_string snap)
        end
      | Error msg ->
        Printf.eprintf "cloud9 report: %s: %s\n" path msg;
        exit 1)
  in
  let run_diff base_path new_path =
    match (read_json base_path, read_json new_path) with
    | Error msg, _ | _, Error msg ->
      Printf.eprintf "cloud9 report --diff: %s\n" msg;
      exit 1
    | Ok base, Ok cur ->
      let o = Obs.Bench_diff.compare base cur in
      print_string (Obs.Bench_diff.render o);
      if not (Obs.Bench_diff.ok o) then exit 1
  in
  let run path second profile diff =
    match (diff, second) with
    | true, Some new_path -> run_diff path new_path
    | true, None ->
      Printf.eprintf "cloud9 report --diff: expected two artifacts (BASE NEW)\n";
      exit 1
    | false, Some _ ->
      Printf.eprintf "cloud9 report: unexpected second argument (did you mean --diff?)\n";
      exit 1
    | false, None -> run_summary path profile
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize a metrics JSONL dump, or compare two BENCH artifacts with $(b,--diff)")
    Term.(const run $ metrics_file_arg $ diff_file_arg $ profile_arg $ diff_arg)

(* --- cloud9 top --------------------------------------------------------- *)

let top_cmd =
  let status_file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STATUS" ~doc:"Status file written by cloud9 serve --status")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"S" ~doc:"Seconds between refreshes")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Render one frame and exit (no screen control)")
  in
  let module J = Obs.Json in
  let str field row = Option.bind (J.member field row) J.to_str in
  let num field row = Option.bind (J.member field row) J.to_float in
  let pnum field row = Option.bind (J.member "progress" row) (num field) in
  let render doc =
    let buf = Buffer.create 1024 in
    let granted = Option.value ~default:0.0 (num "granted_slices" doc) in
    let campaigns = Option.value ~default:[] (Option.bind (J.member "campaigns" doc) J.to_list) in
    Buffer.add_string buf
      (Printf.sprintf "cloud9 top — %d campaign(s), %.0f slices granted\n\n"
         (List.length campaigns) granted);
    Buffer.add_string buf
      (Printf.sprintf "%-14s %-9s %-9s %6s %9s %8s %6s %7s %7s %6s\n" "NAME" "STATUS" "HEALTH"
         "COV%" "VEL/SLICE" "FRONTIER" "DEPTH" "REPLAY%" "SOLVER" "ETA");
    List.iter
      (fun row ->
        let s field = Option.value ~default:"-" (str field row) in
        let f ?(scale = 1.0) field =
          match num field row with Some v -> v *. scale | None -> 0.0
        in
        let eta =
          match pnum "eta_slices" row with
          | Some v -> Printf.sprintf "%.0f" v
          | None -> "?" (* below the confidence floor: refuse to guess *)
        in
        let p ?(scale = 1.0) field =
          match pnum field row with Some v -> v *. scale | None -> 0.0
        in
        Buffer.add_string buf
          (Printf.sprintf "%-14s %-9s %-9s %6.1f %9.4f %8.0f %6.1f %7.1f %7.3f %6s\n" (s "name")
             (s "status") (s "health")
             (f ~scale:100.0 "coverage")
             (p "velocity") (f "frontier") (p "depth_mean")
             (p ~scale:100.0 "replay_share")
             (p "solver_rate") eta))
      campaigns;
    Buffer.contents buf
  in
  let run path interval once =
    if once then (
      match read_json path with
      | Error msg ->
        Printf.eprintf "cloud9 top: %s\n" msg;
        exit 1
      | Ok doc -> print_string (render doc))
    else
      (* live mode: clear + home each frame; a missing or torn file is a
         transient (the daemon rewrites atomically), keep polling *)
      let rec loop () =
        (match read_json path with
        | Ok doc ->
          print_string "\027[2J\027[H";
          print_string (render doc)
        | Error msg -> Printf.printf "\027[2J\027[Hcloud9 top: waiting for status (%s)\n" msg);
        flush stdout;
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live campaign monitor: poll the daemon's status file and render per-campaign \
          health, coverage velocity, frontier shape and ETA")
    Term.(const run $ status_file_arg $ interval_arg $ once_arg)

let serve_cmd =
  let state_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state" ] ~docv:"FILE"
          ~doc:"Snapshot file: checkpointed to atomically, restored from when present")
  in
  let control_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "control" ] ~docv:"FILE"
          ~doc:
            "JSONL command file or pipe (submit/status/pause/resume/cancel/checkpoint/\
             shutdown), polled for complete lines")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE" ~doc:"Append JSONL event responses to $(docv)")
  in
  let slice_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"--slice") 20_000
      & info [ "slice" ] ~docv:"I"
          ~doc:"Per-slice instruction budget (the fair-scheduling quantum)")
  in
  let checkpoint_every_arg =
    Arg.(
      value
      & opt (non_neg_int ~flag:"--checkpoint-every") 4
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint after every $(docv) slices (0 = only on demand and shutdown)")
  in
  let poll_arg =
    Arg.(
      value & opt float 0.05
      & info [ "poll" ] ~docv:"S" ~doc:"Seconds between control-plane polls when idle")
  in
  let idle_exit_arg =
    Arg.(
      value & flag
      & info [ "idle-exit" ]
          ~doc:"Exit (with a final checkpoint) once no campaign is runnable — batch mode")
  in
  let status_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "status" ] ~docv:"FILE"
          ~doc:
            "Telemetry: atomically rewrite a JSON status document (health, coverage \
             velocity, ETA per campaign) to $(docv); read it with $(b,cloud9 top)")
  in
  let prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Telemetry: also write a Prometheus text exposition of the metrics registry")
  in
  let status_every_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"--status-every") 1
      & info [ "status-every" ] ~docv:"N" ~doc:"Telemetry: rewrite status every $(docv) slices")
  in
  let stall_arg =
    Arg.(
      value
      & opt (pos_int ~flag:"--stall-slices") Service.Telemetry.default_config.stall_slices
      & info [ "stall-slices" ] ~docv:"K"
          ~doc:"Telemetry: mark a campaign stalled after $(docv) slices without new coverage")
  in
  let run state control events slice checkpoint_every poll idle_exit metrics status prom
      status_every stall_slices =
    let obs =
      if metrics <> None || prom <> None then Some (Obs.Sink.create ()) else None
    in
    let telemetry =
      if status = None && prom = None then None
      else
        Some
          {
            Service.Telemetry.default_config with
            status_file = status;
            prom_file = prom;
            cadence_slices = status_every;
            stall_slices;
          }
    in
    let cfg =
      {
        Service.Daemon.state_file = state;
        control_file = control;
        events_file = events;
        slice_instrs = slice;
        checkpoint_every;
        obs;
        telemetry;
      }
    in
    match Service.Daemon.create cfg with
    | Error m ->
      Printf.eprintf "cloud9 serve: %s\n" m;
      exit 1
    | Ok daemon ->
      Service.Daemon.run ~poll_s:poll ~idle_exit daemon;
      write_obs_artifacts obs ~trace:None ~metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service: a persistent, checkpointable, multi-tenant testing \
          daemon driven by a JSONL control plane")
    Term.(
      const run $ state_arg $ control_arg $ events_arg $ slice_arg $ checkpoint_every_arg
      $ poll_arg $ idle_exit_arg $ metrics_arg $ status_arg $ prom_arg $ status_every_arg
      $ stall_arg)

let () =
  let info =
    Cmd.info "cloud9" ~version:"1.0"
      ~doc:"Parallel symbolic execution for automated real-world software testing"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; table4_cmd; run_cmd; report_cmd; top_cmd; serve_cmd ]))
