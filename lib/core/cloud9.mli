(** The Cloud9 platform facade: one entry point for writing and running
    symbolic tests (paper section 5) — locally (one worker, classic KLEE
    style) or on a simulated cluster with dynamic load balancing
    (section 3). *)

module Errors = Engine.Errors
module Testcase = Engine.Testcase

type target = {
  name : string;
  kind : string;  (** the "Type of Software" column of Table 4 *)
  program : Cvm.Program.t;
}

val target : ?kind:string -> string -> Cvm.Program.t -> target

type options = {
  max_steps : int option;  (** per-path instruction cap (hang detector) *)
  check_div_zero : bool;
  strategy : string;       (** a {!Engine.Searcher.of_name} name *)
  seed : int;
  collect_tests : int;     (** how many test cases to materialize *)
  goal : Engine.Driver.goal;
}

val default_options : options

type report = {
  target_name : string;
  paths : int;
  errors : int;
  coverage : float;          (** fraction of coverable source lines *)
  coverage_vector : Bytes.t; (** raw line bit vector, for unions *)
  coverable : int;
  instructions : int;
  exhausted : bool;
  tests : Testcase.t list;
  solver_stats : Smt.Solver.stats;
  inc_stats : Smt.Solver.inc_stats;
      (** incremental-solving counters of the run's solver *)
}

(** Run a symbolic test on one engine.  [obs] attaches an observability
    sink: fork and solver events are traced and a single-worker timeline
    is sampled as virtual time advances. *)
val run_local : ?obs:Obs.Sink.t -> ?options:options -> target -> report

(** OR coverage vectors and return the covered fraction — the "cumulated
    coverage" arithmetic of Table 5. *)
val union_coverage : coverable:int -> Bytes.t list -> float

(** Re-execute a generated test case concretely (its recorded input bytes
    replace the symbolic data), returning the termination of the single
    path it drives — for a bug test, the same bug.  [None] when the
    program retains nondeterminism beyond its symbolic inputs (e.g.
    symbolic fragmentation), which makes the concrete run fork. *)
val replay_test : ?max_steps:int -> target -> Testcase.t -> Errors.termination option

type cluster_options = {
  nworkers : int;
  speed : int;           (** instructions per worker per tick *)
  heterogeneous : bool;  (** vary worker speeds, as on a real cluster *)
  join_spread : int;     (** ticks between worker arrivals *)
  status_interval : int;
  latency : int;
  lb_disable_at : int option;
  cluster_goal : Cluster.Driver.goal;
  max_ticks : int;
  bucket_ticks : int;
  cworker_max_steps : int option;
  cseed : int;
  use_global_alloc : bool;  (** broken-replay ablation *)
  fault_plan : Cluster.Faultplan.t;  (** crash / loss / partition schedule *)
}

val default_cluster_options : cluster_options

(** Run the target on a simulated cluster.  [obs] attaches an
    observability sink: every worker gets a scoped view
    ([Obs.Sink.for_worker]), the driver samples per-worker timelines each
    tick, and control-plane events (transfers, leases, crashes) are
    traced alongside engine and solver activity. *)
val run_cluster : ?obs:Obs.Sink.t -> ?options:cluster_options -> target -> Cluster.Driver.result

(** One campaign slice — the campaign service's unit of scheduling.  Runs
    the target on the simulated cluster until [budget] {e useful}
    instructions have executed (replay spent restoring a resumed frontier
    is not charged, so every slice makes exploration progress), starting
    from a checkpointed frontier when [resume] is given, then drains
    in-flight transfers to a barrier and
    returns with [result.export] holding the frontier/bans/coverage to
    persist.  Chaining slices until the export's job list is empty
    reaches the exact path/error totals of one uninterrupted exhaustive
    run (the restore≡uninterrupted argument in DESIGN.md). *)
val run_cluster_slice :
  ?obs:Obs.Sink.t ->
  ?options:cluster_options ->
  ?resume:Cluster.Driver.frontier_export ->
  budget:int ->
  target ->
  Cluster.Driver.result

(** Run the target on [ndomains] real OCaml domains ({!Cluster.Parallel})
    — true multicore, for wall-clock scaling measurements.  Worker
    construction happens inside each spawned domain so solver caches and
    the simplify memo are domain-local; [obs], when given, is exposed to
    each domain as a buffered view ({!Obs.Sink.buffered}) flushed before
    the domain exits, and additionally enables the wall-clock profiler
    (solver query / mailbox wait / steal round-trip / replay spans and
    the hashcons shard-lock contention probe, reset at run start).  The
    [fault_plan] applies here too: crashes kill real domains (crash-stop
    with amnesia, observed at slice poll points), rejoins spawn fresh
    ones, and seeded loss/delay perturbs the leased job wire — recovery
    through the shared {!Cluster.Transport} keeps the totals exactly
    fault-free, and a faulty plan enables the heartbeat failure
    detector.  Crash ticks are coordinator ticks (~1 ms), not simulation
    ticks.  Beyond the plan, only [cworker_max_steps] and [cseed] are
    read from [options]; the remaining simulation knobs (speed, latency,
    the shared-allocator ablation) do not apply. *)
val run_parallel :
  ?obs:Obs.Sink.t -> ?ndomains:int -> ?options:cluster_options -> target -> Cluster.Parallel.result

val pp_report : Format.formatter -> report -> unit

(** The collected test cases whose termination is an error. *)
val error_tests : report -> Testcase.t list
