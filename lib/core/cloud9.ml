(* The Cloud9 platform facade: one entry point for writing and running
   symbolic tests (paper section 5), locally (one worker, classic KLEE
   style) or on a simulated cluster of workers with dynamic load
   balancing (section 3).

   A symbolic test is a mini-C program (usually built from a target in
   {!Registry} or with {!Lang.Builder} + {!Posix.Api}) whose inputs are
   marked symbolic via the cloud9_* primitives; running it explores the
   induced execution tree and produces test cases for every path. *)

module Errors = Engine.Errors
module Testcase = Engine.Testcase

type target = {
  name : string;
  kind : string; (* the "Type of Software" column of Table 4 *)
  program : Cvm.Program.t;
}

let target ?(kind = "test program") name program = { name; kind; program }

type options = {
  max_steps : int option;      (* per-path instruction cap (hang detector) *)
  check_div_zero : bool;
  strategy : string;           (* Engine.Searcher.of_name *)
  seed : int;
  collect_tests : int;         (* how many test cases to materialize *)
  goal : Engine.Driver.goal;
}

let default_options =
  {
    max_steps = Some 1_000_000;
    check_div_zero = true;
    strategy = "interleaved";
    seed = 42;
    collect_tests = 64;
    goal = Engine.Driver.Exhaust;
  }

type report = {
  target_name : string;
  paths : int;
  errors : int;
  coverage : float;            (* fraction of coverable source lines *)
  coverage_vector : Bytes.t;   (* the raw line bit vector, for unions *)
  coverable : int;             (* lines with instructions (denominator) *)
  instructions : int;
  exhausted : bool;
  tests : Testcase.t list;
  solver_stats : Smt.Solver.stats;
  inc_stats : Smt.Solver.inc_stats;
}

(* --- single-node runs --------------------------------------------------------- *)

let run_local ?obs ?(options = default_options) (t : target) =
  let solver = Smt.Solver.create ?obs () in
  let cfg =
    Posix.Api.make_config ~solver ?obs ?max_steps:options.max_steps
      ~check_div_zero:options.check_div_zero ~nlines:t.program.Cvm.Program.nlines ()
  in
  let rng = Random.State.make [| options.seed |] in
  let searcher = Engine.Searcher.of_name ~rng options.strategy in
  let st0 = Posix.Api.initial_state t.program ~args:[] in
  let r =
    Engine.Driver.run ~collect_tests:options.collect_tests ~goal:options.goal cfg searcher st0
  in
  {
    target_name = t.name;
    paths = r.Engine.Driver.paths_explored;
    errors = r.Engine.Driver.errors;
    coverage = r.Engine.Driver.coverage;
    coverage_vector = Bytes.copy cfg.Engine.Executor.coverage;
    coverable = List.length (Cvm.Program.covered_lines t.program);
    instructions = r.Engine.Driver.instructions;
    exhausted = r.Engine.Driver.exhausted;
    tests = r.Engine.Driver.tests;
    solver_stats = Smt.Solver.stats solver;
    inc_stats = Smt.Solver.copy_inc_stats solver;
  }

(* OR coverage vectors together and return the covered fraction over
   [coverable] lines — used for the "cumulated coverage" columns of
   Table 5. *)
let union_coverage ~coverable vectors =
  match vectors with
  | [] -> 0.0
  | first :: _ ->
    let acc = Bytes.make (Bytes.length first) '\000' in
    List.iter
      (fun v ->
        for i = 0 to min (Bytes.length acc) (Bytes.length v) - 1 do
          Bytes.set acc i (Char.chr (Char.code (Bytes.get acc i) lor Char.code (Bytes.get v i)))
        done)
      vectors;
    let rec pop x n = if x = 0 then n else pop (x lsr 1) (n + (x land 1)) in
    let covered = ref 0 in
    Bytes.iter (fun c -> covered := !covered + pop (Char.code c) 0) acc;
    if coverable = 0 then 1.0 else float_of_int !covered /. float_of_int coverable

(* --- test-case replay --------------------------------------------------------------- *)

(* Re-execute a generated test case concretely: make_symbolic fills the
   test's recorded bytes instead of fresh symbols, so the run follows one
   path — the one the test case describes.  Returns that path's
   termination; for a bug test, the same bug must reproduce. *)
let replay_test ?(max_steps = 1_000_000) (t : target) (tc : Testcase.t) =
  let solver = Smt.Solver.create () in
  let cfg =
    Posix.Api.make_config ~solver ~max_steps ~concrete_inputs:tc.Testcase.inputs
      ~nlines:t.program.Cvm.Program.nlines ()
  in
  let searcher = Engine.Searcher.dfs () in
  let st0 = Posix.Api.initial_state t.program ~args:[] in
  let r = Engine.Driver.run ~collect_tests:4 cfg searcher st0 in
  match r.Engine.Driver.tests with
  | [ only ] -> Some only.Testcase.termination
  | _ -> None (* residual nondeterminism (e.g. fragmentation choices) *)

(* --- cluster runs ---------------------------------------------------------------- *)

type cluster_options = {
  nworkers : int;
  speed : int;                 (* instructions per worker per tick *)
  heterogeneous : bool;        (* vary worker speeds +-15%, as on EC2 *)
  join_spread : int;           (* ticks between worker arrivals *)
  status_interval : int;
  latency : int;
  lb_disable_at : int option;
  cluster_goal : Cluster.Driver.goal;
  max_ticks : int;
  bucket_ticks : int;
  cworker_max_steps : int option;
  cseed : int;
  use_global_alloc : bool;     (* ablation: shared allocator breaks replays *)
  fault_plan : Cluster.Faultplan.t; (* crash / loss / partition schedule *)
}

let default_cluster_options =
  {
    nworkers = 4;
    speed = 2000;
    heterogeneous = false;
    join_spread = 0;
    status_interval = 20;
    latency = 2;
    lb_disable_at = None;
    cluster_goal = Cluster.Driver.Exhaust;
    max_ticks = 2_000_000;
    bucket_ticks = 1000;
    cworker_max_steps = Some 1_000_000;
    cseed = 42;
    use_global_alloc = false;
    fault_plan = Cluster.Faultplan.none;
  }

let make_worker ?obs ?(opts = default_cluster_options) (t : target) shared_alloc id =
  (* scope the sink to this worker so engine/solver events carry its id *)
  let obs = Option.map (fun s -> Obs.Sink.for_worker s id) obs in
  let solver = Smt.Solver.create ?obs () in
  let cfg =
    Posix.Api.make_config ~solver ?obs ?max_steps:opts.cworker_max_steps
      ~global_alloc:(if opts.use_global_alloc then Some shared_alloc else None)
      ~nlines:t.program.Cvm.Program.nlines ()
  in
  let make_root () = Posix.Api.initial_state t.program ~args:[] in
  Cluster.Worker.create ~id ~cfg ~make_root ~seed:opts.cseed ()

let cluster_config ?obs ?(options = default_cluster_options) ?init_frontier ?(init_bans = [])
    ?stop_after_instrs (t : target) =
  let opts = options in
  let shared_alloc = ref 0x1000 in
  {
    Cluster.Driver.nworkers = opts.nworkers;
    make_worker = make_worker ?obs ~opts t shared_alloc;
    join_tick = (fun i -> i * opts.join_spread);
    speed =
      (fun i ->
        if opts.heterogeneous then
          (* deterministic spread around the base speed, like the
             paper's 2.3-2.6 GHz heterogeneous cluster *)
          opts.speed * (85 + ((i * 7) mod 31)) / 100
        else opts.speed);
    status_interval = opts.status_interval;
    latency = opts.latency;
    lb_disable_at = opts.lb_disable_at;
    goal = opts.cluster_goal;
    max_ticks = opts.max_ticks;
    bucket_ticks = opts.bucket_ticks;
    coverable_lines = List.length (Cvm.Program.covered_lines t.program);
    faults = opts.fault_plan;
    init_frontier;
    init_bans;
    stop_after_instrs;
  }

let run_cluster ?obs ?options (t : target) =
  Cluster.Driver.run ?obs (cluster_config ?obs ?options t)

(* One campaign slice (the service's unit of scheduling): run the target
   on the simulated cluster for at most [budget] instructions, starting
   from a checkpointed frontier when [resume] is given, and drain to a
   barrier whose frontier export the caller persists.  Chaining slices
   until the export is empty reaches the exact path/error totals of one
   uninterrupted exhaustive run. *)
let run_cluster_slice ?obs ?options ?resume ~budget (t : target) =
  let init_frontier, init_bans =
    match resume with
    | None -> (None, [])
    | Some (fx : Cluster.Driver.frontier_export) ->
      (Some fx.Cluster.Driver.fx_jobs, fx.Cluster.Driver.fx_bans)
  in
  Cluster.Driver.run ?obs
    (cluster_config ?obs ?options ?init_frontier ~init_bans ~stop_after_instrs:budget t)

(* --- true-multicore runs ------------------------------------------------------------ *)

(* Run the target on [ndomains] real domains (Cluster.Parallel).  The
   worker factory runs *inside* each spawned domain, so the solver, its
   caches, and the simplify memo are domain-local by construction; the
   observability sink is a buffered per-domain view flushed through the
   core's lock.  The [fault_plan] applies here too — crash ticks are
   coordinator ticks (~1 ms each) rather than simulation ticks — and a
   faulty run enables the heartbeat failure detector.  Simulation-only
   options (speed, latency, the shared-allocator ablation) do not apply;
   beyond the plan, only [cworker_max_steps] and [cseed] are read. *)
let run_parallel ?obs ?(ndomains = 2) ?(options = default_cluster_options) (t : target) =
  let opts = options in
  (* Profiling rides on the sink: a parallel run with observability gets
     wall-clock spans (real-nanosecond time base), while the simulated
     drivers stay purely on virtual ticks.  The hashcons shard-lock
     probe is global state, so it is reset here and contended-wait
     timing enabled only for profiled runs. *)
  (match obs with
  | Some _ ->
    Smt.Expr.reset_lock_stats ();
    Smt.Expr.set_lock_profiling true
  | None -> Smt.Expr.set_lock_profiling false);
  let make_worker i =
    let obs = Option.map (fun s -> Obs.Sink.buffered s i) obs in
    let prof = Option.map Obs.Profile.create obs in
    let solver = Smt.Solver.create ?obs ?prof () in
    let cfg =
      Posix.Api.make_config ~solver ?obs ?max_steps:opts.cworker_max_steps
        ~nlines:t.program.Cvm.Program.nlines ()
    in
    let make_root () = Posix.Api.initial_state t.program ~args:[] in
    Cluster.Worker.create ?prof ~id:i ~cfg ~make_root ~seed:opts.cseed ()
  in
  let cfg =
    Cluster.Parallel.default_config ?obs ~faults:opts.fault_plan ~ndomains ~make_worker ()
  in
  (* a faulty run turns the heartbeat failure detector on (1 s suspect
     interval at the default 1 ms tick); fault-free runs leave it off so
     a detector false positive can never perturb the scaling gates *)
  let cfg =
    if Cluster.Faultplan.is_faultless opts.fault_plan then cfg
    else { cfg with Cluster.Parallel.heartbeat_ticks = 1_000 }
  in
  Fun.protect
    ~finally:(fun () -> Smt.Expr.set_lock_profiling false)
    (fun () ->
      Cluster.Parallel.run
        ~coverable_lines:(List.length (Cvm.Program.covered_lines t.program))
        cfg)

(* --- reporting ---------------------------------------------------------------------- *)

let pp_report fmt (r : report) =
  Format.fprintf fmt "target %s: %d paths (%d errors), %.1f%% line coverage, %d instructions%s@."
    r.target_name r.paths r.errors (100.0 *. r.coverage) r.instructions
    (if r.exhausted then ", exhaustive" else "");
  List.iteri
    (fun i tc ->
      if Errors.is_error tc.Testcase.termination then
        Format.fprintf fmt "  bug %d: %a" i Testcase.pp tc)
    r.tests

let error_tests (r : report) =
  List.filter (fun tc -> Errors.is_error tc.Testcase.termination) r.tests
