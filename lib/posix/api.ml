(* The C-library-like surface that target programs use: thin mini-C
   wrappers over the POSIX model's syscalls and the engine primitives.
   This plays the role of Cloud9's symbolic C library (paper Fig. 4):
   target code calls [read]/[write]/[socket]/... exactly as C code would,
   and tests use the cloud9_* calls of Tables 1-3. *)

open Lang.Ast
module Esys = Engine.Executor.Sysno

let sc num args = Syscall (num, args)

(* --- engine primitives (cloud9_* of paper Table 1/2) ------------------------- *)

let make_shared ptr = sc Esys.make_shared [ ptr ]
let thread_create fname arg = sc Esys.thread_create [ Str fname; arg ]
let thread_terminate () = sc Esys.thread_terminate []
let process_fork () = sc Esys.process_fork []
let process_terminate code = sc Esys.process_terminate [ code ]
let get_context () = sc Esys.get_context []
let thread_preempt () = sc Esys.thread_preempt []
let thread_sleep wl = sc Esys.thread_sleep [ wl ]
let thread_notify wl ~all = sc Esys.thread_notify [ wl; all ]
let get_wlist () = sc Esys.get_wlist []
let make_symbolic ptr len name = sc Esys.make_symbolic [ ptr; len; Str name ]
let set_max_heap bytes = sc Esys.set_max_heap [ bytes ]
let set_scheduler policy = sc Esys.set_scheduler [ policy ]
let assume cond = sc Esys.assume [ cond ]

(* scheduler policy encodings understood by set_scheduler *)
let sched_round_robin = Num 0L
let sched_fork_all = Num 1L
let sched_context_bound n = Num (Int64.of_int (100 + n))

(* --- POSIX calls ----------------------------------------------------------------- *)

let openf path flags = sc Sysno.open_ [ path; flags ]
let close fd = sc Sysno.close [ fd ]
let read fd buf len = sc Sysno.read [ fd; buf; len ]
let write fd buf len = sc Sysno.write [ fd; buf; len ]
let pipe fds = sc Sysno.pipe [ fds ]
let socket proto = sc Sysno.socket [ proto ]
let bind fd port = sc Sysno.bind [ fd; port ]
let listen fd = sc Sysno.listen [ fd ]
let accept fd = sc Sysno.accept [ fd ]
let connect fd port = sc Sysno.connect [ fd; port ]
let send fd buf len = sc Sysno.send [ fd; buf; len ]
let recv fd buf len = sc Sysno.recv [ fd; buf; len ]
let sendto fd buf len port = sc Sysno.sendto [ fd; buf; len; port ]
let recvfrom fd buf len = sc Sysno.recvfrom [ fd; buf; len ]
let select rd_set wr_set nfds = sc Sysno.select [ rd_set; wr_set; nfds ]
let ioctl fd code arg = sc Sysno.ioctl [ fd; code; arg ]
let dup fd = sc Sysno.dup [ fd ]
let lseek fd off whence = sc Sysno.lseek [ fd; off; whence ]
let fstat_size fd = sc Sysno.fstat_size [ fd ]
let unlink path = sc Sysno.unlink [ path ]
let waitpid pid = sc Sysno.waitpid [ pid ]
let fi_enable () = sc Sysno.fi_enable []
let fi_disable () = sc Sysno.fi_disable []
let mkfile path content len = sc Sysno.mkfile [ path; content; len ]
let make_symbolic_file path size = sc Sysno.make_symbolic_file [ path; size ]
let exit_ code = sc Sysno.exit_ [ code ]
let time () = sc Sysno.time []
let fork () = sc Sysno.fork_ []
let fcntl fd cmd arg = sc Sysno.fcntl [ fd; cmd; arg ]
let dup2 fd newfd = sc Sysno.dup2 [ fd; newfd ]

(* flag / protocol constants as mini-C literals *)
let o_rdonly = Num (Int64.of_int Sysno.o_rdonly)
let o_wronly = Num (Int64.of_int Sysno.o_wronly)
let o_rdwr = Num (Int64.of_int Sysno.o_rdwr)
let o_creat = Num (Int64.of_int Sysno.o_creat)
let o_trunc = Num (Int64.of_int Sysno.o_trunc)
let o_append = Num (Int64.of_int Sysno.o_append)
let sock_stream = Num (Int64.of_int Sysno.sock_stream)
let sock_dgram = Num (Int64.of_int Sysno.sock_dgram)
let sio_symbolic = Num (Int64.of_int Sysno.sio_symbolic)
let sio_pkt_fragment = Num (Int64.of_int Sysno.sio_pkt_fragment)
let sio_fault_inj = Num (Int64.of_int Sysno.sio_fault_inj)
let rd_flag = Num (Int64.of_int Sysno.rd)
let wr_flag = Num (Int64.of_int Sysno.wr)
let f_getfl = Num (Int64.of_int Sysno.f_getfl)
let f_setfl = Num (Int64.of_int Sysno.f_setfl)
let o_nonblock = Num (Int64.of_int Sysno.o_nonblock)

(* --- pthread-style helper functions, compiled into the target program --------------- *)

(* The mutex/condvar implementations below are the mini-C translation of
   the paper's Fig. 5: cooperative scheduling means no atomicity is
   needed, just sleep/notify and counters.  A mutex is a u64[3] =
   { wlist, taken, queued }. *)

open Lang.Builder

let mutex_funcs =
  [
    fn "mutex_init" [ ("m", Ptr u64) ] None
      [
        set (idx (v "m") (n 0)) (cast u64 (get_wlist ()));
        set (idx (v "m") (n 1)) (n 0);
        set (idx (v "m") (n 2)) (n 0);
      ];
    fn "mutex_lock" [ ("m", Ptr u64) ] None
      [
        while_
          (idx (v "m") (n 2) >! n 0 ||! (idx (v "m") (n 1) <>! n 0))
          [
            set (idx (v "m") (n 2)) (idx (v "m") (n 2) +! n 1);
            expr (thread_sleep (cast i64 (idx (v "m") (n 0))));
            set (idx (v "m") (n 2)) (idx (v "m") (n 2) -! n 1);
          ];
        set (idx (v "m") (n 1)) (n 1);
      ];
    fn "mutex_unlock" [ ("m", Ptr u64) ] None
      [
        set (idx (v "m") (n 1)) (n 0);
        when_
          (idx (v "m") (n 2) >! n 0)
          [ expr (thread_notify (cast i64 (idx (v "m") (n 0))) ~all:(n 0)) ];
      ];
    (* condition variable: a u64[1] = { wlist } *)
    fn "cond_init" [ ("c", Ptr u64) ] None
      [ set (idx (v "c") (n 0)) (cast u64 (get_wlist ())) ];
    fn "cond_wait" [ ("c", Ptr u64); ("m", Ptr u64) ] None
      [
        call_void "mutex_unlock" [ v "m" ];
        expr (thread_sleep (cast i64 (idx (v "c") (n 0))));
        call_void "mutex_lock" [ v "m" ];
      ];
    fn "cond_signal" [ ("c", Ptr u64) ] None
      [ expr (thread_notify (cast i64 (idx (v "c") (n 0))) ~all:(n 0)) ];
    fn "cond_broadcast" [ ("c", Ptr u64) ] None
      [ expr (thread_notify (cast i64 (idx (v "c") (n 0))) ~all:(n 1)) ];
  ]

(* Common string helpers targets keep rewriting; compiled mini-C. *)
let string_funcs =
  [
    fn "str_len" [ ("s", Ptr u8) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        while_ (idx (v "s") (v "i") <>! n 0) [ incr_ "i" ];
        ret (v "i");
      ];
    fn "str_eq" [ ("a", Ptr u8); ("b", Ptr u8) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        while_ (idx (v "a") (v "i") ==! idx (v "b") (v "i"))
          [ when_ (idx (v "a") (v "i") ==! n 0) [ ret (n 1) ]; incr_ "i" ];
        ret (n 0);
      ];
    fn "str_copy" [ ("dst", Ptr u8); ("src", Ptr u8) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        while_ (idx (v "src") (v "i") <>! n 0)
          [ set (idx (v "dst") (v "i")) (idx (v "src") (v "i")); incr_ "i" ];
        set (idx (v "dst") (v "i")) (n 0);
        ret (v "i");
      ];
    fn "mem_copy" [ ("dst", Ptr u8); ("src", Ptr u8); ("len", u32) ] None
      [
        for_range "i" ~from:(n 0) ~below:(v "len")
          [ set (idx (v "dst") (v "i")) (idx (v "src") (v "i")) ];
      ];
    fn "mem_set" [ ("dst", Ptr u8); ("c", u8); ("len", u32) ] None
      [ for_range "i" ~from:(n 0) ~below:(v "len") [ set (idx (v "dst") (v "i")) (v "c") ] ];
  ]

(* The runtime support bundle most POSIX targets link in. *)
let runtime = mutex_funcs @ string_funcs

(* --- running POSIX programs --------------------------------------------------------- *)

let handle = Handler.handle

(* Build an engine configuration wired to the POSIX model. *)
let make_config ?max_steps ?check_div_zero ?global_alloc ?preempt_interval ?concrete_inputs
    ?use_incremental_pc ?solver ?obs ~nlines () =
  let solver = match solver with Some s -> s | None -> Smt.Solver.create ?obs () in
  Engine.Executor.make_config ~solver ~handler:handle ~nlines
    ?max_steps:(Option.map Option.some max_steps)
    ?preempt_interval:(Option.map Option.some preempt_interval)
    ?concrete_inputs:(Option.map Option.some concrete_inputs)
    ?check_div_zero ?global_alloc ?use_incremental_pc ?obs ()

let initial_state program ~args = Engine.State.init program ~env:(Env.init ()) ~args
