(** The C-library-like surface target programs use: mini-C wrappers over
    the POSIX model's syscalls and the engine primitives — the role of
    Cloud9's symbolic C library (paper Fig. 4).  Expression builders take
    and return {!Lang.Ast.expr}; wrap them with {!Lang.Builder.expr} or
    bind their results to use them as statements. *)

open Lang.Ast

(** {1 Engine primitives (cloud9_* of paper Tables 1 and 2)} *)

val make_shared : expr -> expr
val thread_create : string -> expr -> expr
val thread_terminate : unit -> expr
val process_fork : unit -> expr
val process_terminate : expr -> expr
val get_context : unit -> expr
val thread_preempt : unit -> expr
val thread_sleep : expr -> expr
val thread_notify : expr -> all:expr -> expr
val get_wlist : unit -> expr
val make_symbolic : expr -> expr -> string -> expr
val set_max_heap : expr -> expr
val set_scheduler : expr -> expr
val assume : expr -> expr

val sched_round_robin : expr
val sched_fork_all : expr
val sched_context_bound : int -> expr

(** {1 POSIX calls} *)

val openf : expr -> expr -> expr
val close : expr -> expr
val read : expr -> expr -> expr -> expr
val write : expr -> expr -> expr -> expr
val pipe : expr -> expr
val socket : expr -> expr
val bind : expr -> expr -> expr
val listen : expr -> expr
val accept : expr -> expr
val connect : expr -> expr -> expr
val send : expr -> expr -> expr -> expr
val recv : expr -> expr -> expr -> expr
val sendto : expr -> expr -> expr -> expr -> expr
val recvfrom : expr -> expr -> expr -> expr
val select : expr -> expr -> expr -> expr
val ioctl : expr -> expr -> expr -> expr
val dup : expr -> expr
val lseek : expr -> expr -> expr -> expr
val fstat_size : expr -> expr
val unlink : expr -> expr
val waitpid : expr -> expr
val fi_enable : unit -> expr
val fi_disable : unit -> expr
val mkfile : expr -> expr -> expr -> expr
val make_symbolic_file : expr -> expr -> expr
val exit_ : expr -> expr
val time : unit -> expr
val fork : unit -> expr
val fcntl : expr -> expr -> expr -> expr
val dup2 : expr -> expr -> expr

(** {1 Flag and protocol constants} *)

val o_rdonly : expr
val o_wronly : expr
val o_rdwr : expr
val o_creat : expr
val o_trunc : expr
val o_append : expr
val sock_stream : expr
val sock_dgram : expr
val sio_symbolic : expr
val sio_pkt_fragment : expr
val sio_fault_inj : expr
val rd_flag : expr
val wr_flag : expr
val f_getfl : expr
val f_setfl : expr
val o_nonblock : expr

(** {1 Compiled runtime support} *)

(** pthread-style mutex/condvar helpers (the mini-C translation of the
    paper's Fig. 5) — a mutex is a [u64[3]], a condvar a [u64[1]]. *)
val mutex_funcs : func list

(** Bounded string/memory helpers ([str_len], [str_eq], [str_copy],
    [mem_copy], [mem_set]). *)
val string_funcs : func list

(** [mutex_funcs @ string_funcs] — the bundle most POSIX targets link. *)
val runtime : func list

(** {1 Running POSIX programs} *)

val handle : Handler.env Engine.Executor.handler

(** An engine configuration wired to the POSIX model.  [obs] is handed
    to both the engine config and (when no [solver] is supplied) the
    freshly created solver, so fork and query events share one sink. *)
val make_config :
  ?max_steps:int ->
  ?check_div_zero:bool ->
  ?global_alloc:int ref option ->
  ?preempt_interval:int ->
  ?concrete_inputs:(string * string) list ->
  ?use_incremental_pc:bool ->
  ?solver:Smt.Solver.t ->
  ?obs:Obs.Sink.t ->
  nlines:int ->
  unit ->
  Handler.env Engine.Executor.config

(** Initial state with a fresh POSIX environment. *)
val initial_state :
  Cvm.Program.t -> args:Smt.Expr.t list -> Handler.env Engine.State.t
