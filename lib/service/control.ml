(* JSONL control plane.  Commands arrive as newline-delimited JSON
   objects ({"cmd": "submit", ...}) on a file or pipe; the daemon
   appends newline-delimited JSON events in response.  Parsing is
   total: a malformed line becomes [Error] and is answered with a
   "rejected" event rather than killing the daemon. *)

module J = Obs.Json
open Validate

type command =
  | Submit of Campaign.spec
  | Status of string option  (* None = all campaigns *)
  | Pause of string
  | Resume of string
  | Cancel of string
  | Checkpoint
  | Shutdown

(* --- parsing ----------------------------------------------------------- *)

let get name v = Option.to_result ~none:(Printf.sprintf "missing field %S" name) (J.member name v)

let get_str name v =
  let* x = get name v in
  Option.to_result ~none:(Printf.sprintf "field %S: expected string" name) (J.to_str x)

let get_int ?default name v =
  match (J.member name v, default) with
  | (None | Some J.Null), Some d -> Ok d
  | (None | Some J.Null), None -> Error (Printf.sprintf "missing field %S" name)
  | Some (J.Num f), _ ->
    if Float.is_integer f then Ok (int_of_float f)
    else Error (Printf.sprintf "field %S: expected integer" name)
  | Some _, _ -> Error (Printf.sprintf "field %S: expected number" name)

let target_name = get_str "name"

let parse_submit v =
  let* nm = Result.bind (get_str "name" v) (Validate.name ~flag:"name") in
  let* target = Result.bind (get_str "target" v) (Validate.name ~flag:"target") in
  let* variant =
    match J.member "variant" v with
    | None | Some J.Null -> Ok None
    | Some (J.Str s) -> Result.map Option.some (Validate.name ~flag:"variant" s)
    | Some _ -> Error "field \"variant\": expected string or null"
  in
  let* runtime =
    match J.member "runtime" v with
    | None | Some J.Null | Some (J.Str "sim") -> Ok Campaign.Sim
    | Some (J.Str "parallel") ->
      let* n = Result.bind (get_int ~default:2 "domains" v) (positive_int ~flag:"domains") in
      Ok (Campaign.Parallel n)
    | Some _ -> Error "field \"runtime\": expected \"sim\" or \"parallel\""
  in
  let* workers = Result.bind (get_int ~default:4 "workers" v) (positive_int ~flag:"workers") in
  let* speed = Result.bind (get_int ~default:30 "speed" v) (positive_int ~flag:"speed") in
  let* max_steps =
    Result.bind (get_int ~default:6000 "max_steps" v) (positive_int ~flag:"max_steps")
  in
  let* seed = get_int ~default:1 "seed" v in
  let* slice_instrs =
    match J.member "slice_instrs" v with
    | None | Some J.Null -> Ok None
    | Some (J.Num f) when Float.is_integer f ->
      Result.map Option.some (positive_int ~flag:"slice_instrs" (int_of_float f))
    | Some _ -> Error "field \"slice_instrs\": expected integer or null"
  in
  Ok
    (Submit
       {
         Campaign.sp_name = nm;
         sp_target = target;
         sp_variant = variant;
         sp_runtime = runtime;
         sp_workers = workers;
         sp_speed = speed;
         sp_max_steps = max_steps;
         sp_seed = seed;
         sp_slice_instrs = slice_instrs;
       })

(* One JSONL line -> command. *)
let parse_command line =
  let* v = J.parse line in
  let* cmd = get_str "cmd" v in
  match cmd with
  | "submit" -> parse_submit v
  | "status" -> (
    match J.member "name" v with
    | None | Some J.Null -> Ok (Status None)
    | Some (J.Str s) -> Ok (Status (Some s))
    | Some _ -> Error "field \"name\": expected string or null")
  | "pause" -> Result.map (fun n -> Pause n) (target_name v)
  | "resume" -> Result.map (fun n -> Resume n) (target_name v)
  | "cancel" -> Result.map (fun n -> Cancel n) (target_name v)
  | "checkpoint" -> Ok Checkpoint
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown command %S" other)

(* --- events ------------------------------------------------------------ *)

type event =
  | Accepted of string
  | Rejected of { line : string; reason : string }
  | Status_report of J.t list
  | Progress of { name : string; summary : J.t }
  | Campaign_done of { name : string; summary : J.t }
  | Checkpointed of { file : string; campaigns : int }
  | Telemetry of { name : string; from_ : string; to_ : string; progress : J.t }
  | Service_error of string
  | Shutting_down

let event_to_json = function
  | Accepted name -> J.Obj [ ("event", J.Str "accepted"); ("name", J.Str name) ]
  | Rejected { line; reason } ->
    J.Obj [ ("event", J.Str "rejected"); ("line", J.Str line); ("reason", J.Str reason) ]
  | Status_report rows -> J.Obj [ ("event", J.Str "status"); ("campaigns", J.Arr rows) ]
  | Progress { name; summary } ->
    J.Obj [ ("event", J.Str "progress"); ("name", J.Str name); ("campaign", summary) ]
  | Campaign_done { name; summary } ->
    J.Obj [ ("event", J.Str "done"); ("name", J.Str name); ("campaign", summary) ]
  | Checkpointed { file; campaigns } ->
    J.Obj
      [
        ("event", J.Str "checkpointed");
        ("file", J.Str file);
        ("campaigns", J.Num (float_of_int campaigns));
      ]
  | Telemetry { name; from_; to_; progress } ->
    J.Obj
      [
        ("event", J.Str "telemetry");
        ("name", J.Str name);
        ("from", J.Str from_);
        ("to", J.Str to_);
        ("progress", progress);
      ]
  | Service_error msg -> J.Obj [ ("event", J.Str "error"); ("reason", J.Str msg) ]
  | Shutting_down -> J.Obj [ ("event", J.Str "shutdown") ]

(* One event -> one newline-terminated JSONL line. *)
let event_to_line e = J.to_string (event_to_json e) ^ "\n"
