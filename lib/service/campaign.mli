(** A campaign: one target × strategy × budget submitted to the testing
    service, advanced in preemptible slices (simulated runtime) or one
    non-preemptible turn (multicore runtime).  The mutable half is what
    {!Snapshot} persists. *)

type runtime =
  | Sim  (** simulated cluster; preemptible and checkpointable mid-flight *)
  | Parallel of int  (** real domains; runs to completion in one turn *)

type spec = {
  sp_name : string;
  sp_target : string;            (** {!Core.Registry} target name *)
  sp_variant : string option;
  sp_runtime : runtime;
  sp_workers : int;
  sp_speed : int;
  sp_max_steps : int;
  sp_seed : int;
  sp_slice_instrs : int option;  (** per-campaign slice-budget override *)
}

type status = Queued | Running | Paused | Done | Cancelled

val status_to_string : status -> string
val status_of_string : string -> (status, string) result

type t = {
  spec : spec;
  mutable status : status;
  mutable paths : int;
  mutable errors : int;
  mutable useful : int;
  mutable replay : int;
  mutable transfers : int;
  mutable slices : int;
  mutable started : bool;   (** [false] = next slice seeds the root job *)
  mutable frontier : Engine.Path.t list;
  mutable bans : Engine.Path.t list;
  mutable coverage : Bytes.t;
  mutable coverable : int;
  mutable coverage_frac : float;
}

val create : spec -> t

(** The scheduler may hand it a slice (Queued or Running). *)
val runnable : t -> bool

(** OR a slice's union coverage vector into the cumulative one. *)
val or_coverage : t -> Bytes.t -> unit

val recompute_coverage_frac : t -> unit

(** Fold one simulated slice in; [Error] when the slice ended without a
    frontier export (a [max_ticks] bailout mid-flight).  An empty
    exported frontier marks the campaign [Done]. *)
val apply_slice : t -> Cluster.Driver.result -> coverable:int -> (unit, string) result

(** Fold a one-shot multicore run in; the campaign completes. *)
val apply_parallel : t -> Cluster.Parallel.result -> unit

(** Resume point for the next slice; [None] = seed the root. *)
val resume_export : t -> Cluster.Driver.frontier_export option

(** Control-plane summary row. *)
val summary : t -> Obs.Json.t
