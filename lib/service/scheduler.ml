(* Multi-tenant fair scheduling: strict round-robin over the runnable
   campaigns.  The rotation is a queue of campaign names; [next] scans
   from the front for the first runnable one and moves *only that name*
   to the back, so paused campaigns keep their place in line and resume
   with the priority they had.

   Starvation bound (documented in DESIGN.md and gated by the service
   bench): between two consecutive slices granted to a runnable campaign,
   every other runnable campaign receives at most one slice — a campaign
   among K runnable ones waits at most K-1 slices for its turn.  The
   bound is structural: a name moves to the back only when it is granted
   a slice, so it cannot be overtaken twice. *)

type t = { mutable rotation : string list }

let create () = { rotation = [] }

let add t name = if not (List.mem name t.rotation) then t.rotation <- t.rotation @ [ name ]

let remove t name = t.rotation <- List.filter (fun n -> n <> name) t.rotation

let rotation t = t.rotation

let restore t names = t.rotation <- names

(* First runnable name in rotation order; rotates it to the back. *)
let next t ~runnable =
  let rec scan acc = function
    | [] -> None
    | name :: rest ->
      if runnable name then begin
        t.rotation <- List.rev_append acc rest @ [ name ];
        Some name
      end
      else scan (name :: acc) rest
  in
  scan [] t.rotation
