(* The daemon's telemetry plane: per-campaign progress estimators folded
   into a health state machine, surfaced two ways — `telemetry` events on
   the existing JSONL stream at every state transition, and a
   machine-readable status file (JSON, plus a Prometheus text exposition
   of the metrics registry) atomically rewritten on a slice cadence.

   Health states, in *decreasing* precedence:

     degraded  crash + retransmit EWMA above [fault_threshold]
     starved   the scheduler's structural K-1 fairness bound was
               violated — a runnable campaign watched more than K-1
               other slices go by since its last grant.  A watchdog: it
               cannot fire under the round-robin scheduler, so firing
               means the rotation was corrupted (e.g. a hand-edited
               snapshot) or the scheduler regressed.
     stalled   no new coverage in [stall_slices] consecutive slices
     healthy   everything else

   The whole plane is optional: a daemon with no [Telemetry.t] pays one
   option match per slice, nothing more (gated <5% by bench_telemetry,
   like the profile layer's gate). *)

module J = Obs.Json
module Progress = Obs.Progress

type health = Healthy | Stalled | Starved | Degraded

let health_to_string = function
  | Healthy -> "healthy"
  | Stalled -> "stalled"
  | Starved -> "starved"
  | Degraded -> "degraded"

let health_of_string = function
  | "healthy" -> Ok Healthy
  | "stalled" -> Ok Stalled
  | "starved" -> Ok Starved
  | "degraded" -> Ok Degraded
  | s -> Error (Printf.sprintf "unknown health state %S" s)

type config = {
  stall_slices : int;       (* K: coverage-dry slices before `stalled` *)
  fault_threshold : float;  (* faults-per-slice EWMA above this = `degraded` *)
  eta_min_slices : int;     (* Progress confidence floor *)
  alpha : float;            (* Progress EWMA smoothing *)
  status_file : string option;  (* JSON status document; None = no file *)
  prom_file : string option;    (* Prometheus text exposition; None = no file *)
  cadence_slices : int;     (* granted slices between status rewrites *)
}

(* Cadence 4 mirrors [checkpoint_every]: rendering the full metrics
   registry to the Prometheus exposition every slice is measurable on
   millisecond slices, and a monitor polling the status file does not
   need sub-slice freshness.  The daemon force-flushes on shutdown, so
   the final document is always complete regardless of cadence. *)
let default_config =
  {
    stall_slices = 4;
    fault_threshold = 3.0;
    eta_min_slices = 3;
    alpha = 0.3;
    status_file = None;
    prom_file = None;
    cadence_slices = 4;
  }

type entry = {
  prog : Progress.t;
  mutable health : health;
  mutable last_grant : int;  (* global slice counter at the last grant *)
}

type transition = { tr_name : string; tr_from : health; tr_to : health }

type t = {
  cfg : config;
  entries : (string, entry) Hashtbl.t;
  mutable granted : int;           (* global slices granted, all campaigns *)
  mutable since_status : int;      (* granted slices since last status write *)
  mutable status_writes : int;
}

let create cfg =
  if cfg.stall_slices < 1 then invalid_arg "Telemetry.create: stall_slices < 1";
  if cfg.cadence_slices < 1 then invalid_arg "Telemetry.create: cadence_slices < 1";
  { cfg; entries = Hashtbl.create 16; granted = 0; since_status = 0; status_writes = 0 }

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e =
      {
        prog = Progress.create ~alpha:t.cfg.alpha ~min_slices:t.cfg.eta_min_slices ();
        health = Healthy;
        last_grant = 0;
      }
    in
    Hashtbl.replace t.entries name e;
    e

let progress t name = Option.map (fun e -> e.prog) (Hashtbl.find_opt t.entries name)
let health t name = Option.map (fun e -> e.health) (Hashtbl.find_opt t.entries name)

let classify t e ~done_ =
  if done_ then Healthy (* a finished campaign is not stalled, it is done *)
  else if Progress.fault_rate e.prog > t.cfg.fault_threshold then Degraded
  else if Progress.slices_since_gain e.prog >= t.cfg.stall_slices then Stalled
  else Healthy

let set_health e h acc name =
  if e.health = h then acc
  else begin
    let tr = { tr_name = name; tr_from = e.health; tr_to = h } in
    e.health <- h;
    tr :: acc
  end

(* Record one granted slice.  [runnable] is the full set of currently
   runnable campaign names (the starvation watchdog's K); [done_] marks
   the campaign as finished by this slice.  Returns the health
   transitions this grant caused, oldest first. *)
let observe t ~name ~runnable ~done_ (s : Progress.slice) =
  t.granted <- t.granted + 1;
  t.since_status <- t.since_status + 1;
  let e = entry t name in
  Progress.observe e.prog s;
  e.last_grant <- t.granted;
  let acc = set_health e (classify t e ~done_) [] name in
  (* Starvation watchdog over the campaigns still waiting: among K
     runnable campaigns the scheduler grants each one a slice at least
     every K global slices, so a gap beyond that is a fairness
     violation.  Campaigns never granted a slice have no entry yet and
     are not judged — their clock starts at the first grant. *)
  let k = List.length runnable in
  let acc =
    List.fold_left
      (fun acc other ->
        if other = name then acc
        else
          match Hashtbl.find_opt t.entries other with
          | None -> acc
          | Some oe ->
            let gap = t.granted - oe.last_grant in
            if gap > k && oe.health <> Degraded then set_health oe Starved acc other
            else acc)
      acc runnable
  in
  List.rev acc

(* --- status document ---------------------------------------------------- *)

let campaign_json t (name, summary) =
  let extra =
    match Hashtbl.find_opt t.entries name with
    | None -> [ ("health", J.Str (health_to_string Healthy)) ]
    | Some e ->
      [ ("health", J.Str (health_to_string e.health)); ("progress", Progress.to_json e.prog) ]
  in
  match summary with
  | J.Obj fields -> J.Obj (fields @ extra)
  | other -> other

(* The status document embeds per-campaign summaries (the same rows the
   event stream carries) plus aggregate totals, so artifact checks can
   demand exact agreement between the three surfaces: status file,
   event stream, and in-memory counters. *)
let status_json t ~rows =
  let num field row =
    match J.member field row with Some (J.Num f) -> f | _ -> 0.0
  in
  let total field = List.fold_left (fun acc (_, row) -> acc +. num field row) 0.0 rows in
  J.Obj
    [
      ("schema", J.Str "cloud9-status/1");
      ("granted_slices", J.Num (float_of_int t.granted));
      ("status_writes", J.Num (float_of_int (t.status_writes + 1)));
      ( "totals",
        J.Obj
          [
            ("paths", J.Num (total "paths"));
            ("errors", J.Num (total "errors"));
            ("instructions", J.Num (total "instructions"));
            ("slices", J.Num (total "slices"));
          ] );
      ("campaigns", J.Arr (List.map (campaign_json t) rows));
    ]

(* Same crash-safe discipline as Snapshot.save: a reader polling the
   status file (cloud9 top) must never observe a torn write. *)
let atomic_write path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Rewrite the status surfaces.  [rows] are (name, summary) pairs in a
   stable order; [metrics] feeds the Prometheus exposition. *)
let write_status t ~rows ~metrics =
  (match t.cfg.status_file with
  | None -> ()
  | Some path -> atomic_write path (J.to_string (status_json t ~rows) ^ "\n"));
  (match (t.cfg.prom_file, metrics) with
  | Some path, Some snap ->
    let buf = Buffer.create 4096 in
    Obs.Metrics.write_prometheus buf snap;
    atomic_write path (Buffer.contents buf)
  | _ -> ());
  t.status_writes <- t.status_writes + 1;
  t.since_status <- 0

(* Cadence check: is a status rewrite due? *)
let due t = t.since_status >= t.cfg.cadence_slices

let granted t = t.granted
let status_writes t = t.status_writes
