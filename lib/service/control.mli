(** JSONL control plane: newline-delimited command objects in, newline-
    delimited event objects out.  Parsing is total — malformed input
    becomes [Error], answered with a [Rejected] event. *)

type command =
  | Submit of Campaign.spec
  | Status of string option  (** [None] = report every campaign *)
  | Pause of string
  | Resume of string
  | Cancel of string
  | Checkpoint
  | Shutdown

(** Parse one JSONL line, e.g.
    [{"cmd":"submit","name":"c1","target":"coreutils","variant":"cu07"}].
    Submit fields are validated with {!Validate} (positive budgets,
    snapshot-safe names); optional fields get daemon defaults. *)
val parse_command : string -> (command, string) result

type event =
  | Accepted of string
  | Rejected of { line : string; reason : string }
  | Status_report of Obs.Json.t list
  | Progress of { name : string; summary : Obs.Json.t }
  | Campaign_done of { name : string; summary : Obs.Json.t }
  | Checkpointed of { file : string; campaigns : int }
  | Telemetry of { name : string; from_ : string; to_ : string; progress : Obs.Json.t }
      (** health state transition: [from_] -> [to_], with the campaign's
          progress-estimator snapshot attached *)
  | Service_error of string
  | Shutting_down

val event_to_json : event -> Obs.Json.t

(** One newline-terminated JSONL line per event. *)
val event_to_line : event -> string
