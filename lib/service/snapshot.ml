(* The versioned on-disk snapshot codec for the campaign service.

   One JSON document holds the whole daemon state: the scheduler
   rotation and, per campaign, its spec, status, cumulative counters,
   the checkpointed exploration frontier (job-tree path encodings via
   {!Engine.Path.to_string}/[of_string]), the ban set, and the union
   coverage vector (hex).  The lease-ledger state needs no fields of its
   own: checkpoints are only taken at drained barriers, where no lease
   is in flight and no orphan is parked — what survives of the ledger is
   exactly the ban set and the counters already credited, both of which
   are here.

   Writes are atomic: the document goes to [path ^ ".tmp"] and is
   renamed over the target, so a daemon killed mid-checkpoint leaves the
   previous snapshot intact.  [version] gates restores: a snapshot from
   a different codec version is refused rather than misread. *)

module J = Obs.Json
module Path = Engine.Path
open Validate

let version = 1

(* --- helpers ---------------------------------------------------------- *)

let hex_of_bytes b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok b
      else
        match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
        | Some v -> Bytes.set b i (Char.chr v); go (i + 1)
        | None -> Error (Printf.sprintf "bad hex byte at %d" (2 * i))
    in
    go 0

let field name v = Option.to_result ~none:(Printf.sprintf "missing field %S" name) (J.member name v)
let str name v = field name v |> fun r -> Result.bind r (fun x -> Option.to_result ~none:(Printf.sprintf "field %S: expected string" name) (J.to_str x))
let num name v = field name v |> fun r -> Result.bind r (fun x -> Option.to_result ~none:(Printf.sprintf "field %S: expected number" name) (J.to_float x))
let int_field name v = Result.map int_of_float (num name v)

let opt_str name v =
  match J.member name v with
  | None | Some J.Null -> Ok None
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S: expected string or null" name)

let path_list name v =
  let* l =
    field name v |> fun r ->
    Result.bind r (fun x ->
        Option.to_result ~none:(Printf.sprintf "field %S: expected array" name) (J.to_list x))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | J.Str s :: rest -> (
      match Path.of_string s with Ok p -> go (p :: acc) rest | Error e -> Error e)
    | _ -> Error (Printf.sprintf "field %S: expected array of path strings" name)
  in
  go [] l

(* --- campaigns --------------------------------------------------------- *)

let runtime_to_json = function
  | Campaign.Sim -> J.Str "sim"
  | Campaign.Parallel n -> J.Obj [ ("domains", J.Num (float_of_int n)) ]

let runtime_of_json = function
  | J.Str "sim" -> Ok Campaign.Sim
  | J.Obj _ as o -> (
    match J.member "domains" o with
    | Some (J.Num f) when f >= 1.0 -> Ok (Campaign.Parallel (int_of_float f))
    | _ -> Error "runtime: expected {\"domains\": n>=1}")
  | _ -> Error "runtime: expected \"sim\" or {\"domains\": n}"

let campaign_to_json (c : Campaign.t) =
  let s = c.Campaign.spec in
  J.Obj
    [
      ("name", J.Str s.Campaign.sp_name);
      ("target", J.Str s.sp_target);
      ("variant", match s.sp_variant with Some v -> J.Str v | None -> J.Null);
      ("runtime", runtime_to_json s.sp_runtime);
      ("workers", J.Num (float_of_int s.sp_workers));
      ("speed", J.Num (float_of_int s.sp_speed));
      ("max_steps", J.Num (float_of_int s.sp_max_steps));
      ("seed", J.Num (float_of_int s.sp_seed));
      ( "slice_instrs",
        match s.sp_slice_instrs with Some n -> J.Num (float_of_int n) | None -> J.Null );
      ("status", J.Str (Campaign.status_to_string c.Campaign.status));
      ("paths", J.Num (float_of_int c.Campaign.paths));
      ("errors", J.Num (float_of_int c.Campaign.errors));
      ("useful", J.Num (float_of_int c.Campaign.useful));
      ("replay", J.Num (float_of_int c.Campaign.replay));
      ("transfers", J.Num (float_of_int c.Campaign.transfers));
      ("slices", J.Num (float_of_int c.Campaign.slices));
      ("started", J.Bool c.Campaign.started);
      ("frontier", J.Arr (List.map (fun p -> J.Str (Path.to_string p)) c.Campaign.frontier));
      ("bans", J.Arr (List.map (fun p -> J.Str (Path.to_string p)) c.Campaign.bans));
      ("coverage", J.Str (hex_of_bytes c.Campaign.coverage));
      ("coverable", J.Num (float_of_int c.Campaign.coverable));
    ]

let campaign_of_json v =
  let* name = str "name" v in
  let* name = Validate.name ~flag:"name" name in
  let* target = str "target" v in
  let* variant = opt_str "variant" v in
  let* runtime = Result.bind (field "runtime" v) runtime_of_json in
  let* workers = Result.bind (int_field "workers" v) (positive_int ~flag:"workers") in
  let* speed = Result.bind (int_field "speed" v) (positive_int ~flag:"speed") in
  let* max_steps = Result.bind (int_field "max_steps" v) (positive_int ~flag:"max_steps") in
  let* seed = int_field "seed" v in
  let* slice_instrs =
    match J.member "slice_instrs" v with
    | None | Some J.Null -> Ok None
    | Some (J.Num f) -> Result.map Option.some (positive_int ~flag:"slice_instrs" (int_of_float f))
    | Some _ -> Error "field \"slice_instrs\": expected number or null"
  in
  let* status = Result.bind (str "status" v) Campaign.status_of_string in
  let* paths = Result.bind (int_field "paths" v) (non_negative_int ~flag:"paths") in
  let* errors = Result.bind (int_field "errors" v) (non_negative_int ~flag:"errors") in
  let* useful = int_field "useful" v in
  let* replay = int_field "replay" v in
  let* transfers = int_field "transfers" v in
  let* slices = int_field "slices" v in
  let* started =
    match J.member "started" v with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "field \"started\": expected bool"
  in
  let* frontier = path_list "frontier" v in
  let* bans = path_list "bans" v in
  let* coverage = Result.bind (str "coverage" v) bytes_of_hex in
  let* coverable = Result.bind (int_field "coverable" v) (non_negative_int ~flag:"coverable") in
  let spec =
    {
      Campaign.sp_name = name;
      sp_target = target;
      sp_variant = variant;
      sp_runtime = runtime;
      sp_workers = workers;
      sp_speed = speed;
      sp_max_steps = max_steps;
      sp_seed = seed;
      sp_slice_instrs = slice_instrs;
    }
  in
  let c = Campaign.create spec in
  c.Campaign.status <- status;
  c.Campaign.paths <- paths;
  c.Campaign.errors <- errors;
  c.Campaign.useful <- useful;
  c.Campaign.replay <- replay;
  c.Campaign.transfers <- transfers;
  c.Campaign.slices <- slices;
  c.Campaign.started <- started;
  c.Campaign.frontier <- frontier;
  c.Campaign.bans <- bans;
  c.Campaign.coverage <- coverage;
  c.Campaign.coverable <- coverable;
  Campaign.recompute_coverage_frac c;
  Ok c

(* --- whole-service state ----------------------------------------------- *)

type state = { st_rotation : string list; st_campaigns : Campaign.t list }

let state_to_json st =
  J.Obj
    [
      ("version", J.Num (float_of_int version));
      ("kind", J.Str "cloud9-service-state");
      ("rotation", J.Arr (List.map (fun n -> J.Str n) st.st_rotation));
      ("campaigns", J.Arr (List.map campaign_to_json st.st_campaigns));
    ]

let state_of_json v =
  let* ver = int_field "version" v in
  if ver <> version then
    Error (Printf.sprintf "snapshot version %d not supported (this codec is version %d)" ver version)
  else
    let* rotation =
      let* l =
        Result.bind (field "rotation" v)
          (fun x -> Option.to_result ~none:"field \"rotation\": expected array" (J.to_list x))
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | J.Str s :: rest -> go (s :: acc) rest
        | _ -> Error "field \"rotation\": expected array of strings"
      in
      go [] l
    in
    let* campaigns =
      let* l =
        Result.bind (field "campaigns" v)
          (fun x -> Option.to_result ~none:"field \"campaigns\": expected array" (J.to_list x))
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
          match campaign_of_json c with Ok c -> go (c :: acc) rest | Error e -> Error e)
      in
      go [] l
    in
    Ok { st_rotation = rotation; st_campaigns = campaigns }

(* --- disk -------------------------------------------------------------- *)

(* Atomic rename-on-write: a crash mid-checkpoint leaves the previous
   snapshot intact; readers never observe a torn file. *)
let save path st =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (J.to_string (state_to_json st));
     output_char oc '\n';
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (J.parse text) state_of_json
