(** The campaign daemon: a queue of campaigns advanced one fair-scheduled
    slice at a time, checkpointed to a versioned snapshot and restored on
    restart, driven by a JSONL control plane. *)

type config = {
  state_file : string;          (** snapshot path; restored when present *)
  control_file : string option; (** JSONL commands in; [None] = no control plane *)
  events_file : string option;  (** JSONL events out; [None] = discard *)
  slice_instrs : int;           (** default per-slice instruction budget *)
  checkpoint_every : int;       (** slices between automatic checkpoints; 0 = manual only *)
  obs : Obs.Sink.t option;
  telemetry : Telemetry.config option;
      (** [None] disables the telemetry plane entirely (zero cost) *)
}

val default_config : state_file:string -> config

type t

(** Restores from [state_file] when it exists; [Error] on a corrupt or
    version-mismatched snapshot. *)
val create : config -> (t, string) result

(** Enqueue a campaign directly (same path as a control-plane submit:
    duplicate names and unresolvable targets are rejected via events). *)
val submit : t -> Campaign.spec -> unit

(** Campaigns sorted by name. *)
val campaigns : t -> Campaign.t list

val find : t -> string -> Campaign.t option

(** Snapshot now (atomic), emitting a [Checkpointed] event. *)
val checkpoint : t -> unit

(** One step: drain newly-arrived complete control lines, then grant one
    slice to the next runnable campaign in rotation. *)
val step : t -> [ `Sliced of string | `Idle | `Stopped ]

(** Run until a shutdown command; [idle_exit] instead stops (with a
    final checkpoint) once no campaign is runnable — batch mode.  An
    idle daemon sleeps [poll_s] seconds between control polls. *)
val run : ?poll_s:float -> ?idle_exit:bool -> t -> unit

(** The daemon's telemetry aggregator, when the plane is enabled. *)
val telemetry : t -> Telemetry.t option
