(* A campaign: one target × strategy × budget submitted to the testing
   service.  The mutable half is everything the daemon accumulates across
   scheduling slices — cumulative counters, the checkpointed frontier,
   the ban set and the union coverage vector — which is exactly what the
   snapshot codec persists (see {!Snapshot}).

   A simulated-runtime campaign advances in preemptible slices through
   {!Core.Cloud9.run_cluster_slice}: each slice resumes from the stored
   frontier, runs an instruction budget, and drains to a barrier whose
   export replaces the stored frontier.  A multicore campaign runs to
   completion in a single (non-preemptible) turn on real domains. *)

module Path = Engine.Path

type runtime = Sim | Parallel of int

type spec = {
  sp_name : string;            (* unique campaign id within the service *)
  sp_target : string;          (* Core.Registry target name *)
  sp_variant : string option;  (* harness variant; None = default *)
  sp_runtime : runtime;
  sp_workers : int;            (* simulated workers per slice *)
  sp_speed : int;              (* instructions per worker per tick *)
  sp_max_steps : int;          (* per-path instruction cap *)
  sp_seed : int;
  sp_slice_instrs : int option; (* per-campaign budget override *)
}

type status = Queued | Running | Paused | Done | Cancelled

let status_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Paused -> "paused"
  | Done -> "done"
  | Cancelled -> "cancelled"

let status_of_string = function
  | "queued" -> Ok Queued
  | "running" -> Ok Running
  | "paused" -> Ok Paused
  | "done" -> Ok Done
  | "cancelled" -> Ok Cancelled
  | s -> Error (Printf.sprintf "unknown campaign status %S" s)

type t = {
  spec : spec;
  mutable status : status;
  mutable paths : int;         (* cumulative across slices *)
  mutable errors : int;
  mutable useful : int;
  mutable replay : int;
  mutable transfers : int;
  mutable slices : int;
  mutable started : bool;      (* false = next slice seeds the root job *)
  mutable frontier : Path.t list; (* unexplored nodes at the last barrier *)
  mutable bans : Path.t list;
  mutable coverage : Bytes.t;  (* union line bit vector across slices *)
  mutable coverable : int;     (* denominator; 0 until the first slice *)
  mutable coverage_frac : float;
}

let create spec =
  {
    spec;
    status = Queued;
    paths = 0;
    errors = 0;
    useful = 0;
    replay = 0;
    transfers = 0;
    slices = 0;
    started = false;
    frontier = [];
    bans = [];
    coverage = Bytes.create 0;
    coverable = 0;
    coverage_frac = 0.0;
  }

(* Runnable = the scheduler may hand it a slice. *)
let runnable c = match c.status with Queued | Running -> true | Paused | Done | Cancelled -> false

let or_coverage c (v : Bytes.t) =
  if Bytes.length v > 0 then begin
    if Bytes.length c.coverage < Bytes.length v then begin
      let g = Bytes.make (Bytes.length v) '\000' in
      Bytes.blit c.coverage 0 g 0 (Bytes.length c.coverage);
      c.coverage <- g
    end;
    for i = 0 to Bytes.length v - 1 do
      Bytes.set c.coverage i
        (Char.chr (Char.code (Bytes.get c.coverage i) lor Char.code (Bytes.get v i)))
    done
  end

let popcount_bytes b =
  let rec pop x acc = if x = 0 then acc else pop (x lsr 1) (acc + (x land 1)) in
  let n = ref 0 in
  Bytes.iter (fun ch -> n := !n + pop (Char.code ch) 0) b;
  !n

let recompute_coverage_frac c =
  if c.coverable > 0 then
    c.coverage_frac <- float_of_int (popcount_bytes c.coverage) /. float_of_int c.coverable

(* Fold one simulated slice into the campaign.  The slice must have
   reached a drained barrier ([export] present); its frontier replaces
   the stored one, and an empty exported frontier means the execution
   tree is fully explored — the campaign is done. *)
let apply_slice c (r : Cluster.Driver.result) ~coverable =
  c.slices <- c.slices + 1;
  c.paths <- c.paths + r.Cluster.Driver.total_paths;
  c.errors <- c.errors + r.Cluster.Driver.total_errors;
  c.useful <- c.useful + r.Cluster.Driver.useful_instrs;
  c.replay <- c.replay + r.Cluster.Driver.replay_instrs;
  c.transfers <- c.transfers + r.Cluster.Driver.transfers;
  c.started <- true;
  c.coverable <- coverable;
  match r.Cluster.Driver.export with
  | None ->
    Error
      (Printf.sprintf "campaign %s: slice %d ended without a frontier export (max_ticks bailout)"
         c.spec.sp_name c.slices)
  | Some fx ->
    c.frontier <- fx.Cluster.Driver.fx_jobs;
    c.bans <- fx.Cluster.Driver.fx_bans;
    or_coverage c fx.Cluster.Driver.fx_coverage;
    recompute_coverage_frac c;
    if c.frontier = [] then c.status <- Done;
    Ok ()

(* Fold a one-shot multicore run: the campaign completes in this turn. *)
let apply_parallel c (r : Cluster.Parallel.result) =
  c.slices <- c.slices + 1;
  c.paths <- c.paths + r.Cluster.Parallel.total_paths;
  c.errors <- c.errors + r.Cluster.Parallel.total_errors;
  c.useful <- c.useful + r.Cluster.Parallel.useful_instrs;
  c.replay <- c.replay + r.Cluster.Parallel.replay_instrs;
  c.transfers <- c.transfers + r.Cluster.Parallel.transfers;
  c.started <- true;
  c.frontier <- [];
  c.coverage_frac <- r.Cluster.Parallel.final_coverage;
  c.status <- Done

(* The resume point handed to the next slice; [None] = seed the root. *)
let resume_export c =
  if not c.started then None
  else
    Some
      {
        Cluster.Driver.fx_jobs = c.frontier;
        fx_bans = c.bans;
        fx_paths = 0;
        fx_errors = 0;
        fx_coverage = Bytes.create 0;
      }

(* Control-plane summary (one JSONL [status] event row). *)
let summary c =
  let module J = Obs.Json in
  J.Obj
    [
      ("name", J.Str c.spec.sp_name);
      ("target", J.Str c.spec.sp_target);
      ( "variant",
        match c.spec.sp_variant with Some v -> J.Str v | None -> J.Null );
      ( "runtime",
        match c.spec.sp_runtime with
        | Sim -> J.Str "sim"
        | Parallel n -> J.Obj [ ("domains", J.Num (float_of_int n)) ] );
      ("status", J.Str (status_to_string c.status));
      ("paths", J.Num (float_of_int c.paths));
      ("errors", J.Num (float_of_int c.errors));
      ("instructions", J.Num (float_of_int (c.useful + c.replay)));
      ("slices", J.Num (float_of_int c.slices));
      ("frontier", J.Num (float_of_int (List.length c.frontier)));
      ("coverage", J.Num c.coverage_frac);
    ]
