(* Shared validation for the knobs that cross a trust boundary: CLI flags
   (bin/cloud9.ml wires these through Cmdliner's [term_result]) and
   control-plane submissions (the daemon re-validates every field of a
   submitted campaign).  Keeping them here — not inline in the binary —
   lets the unit tests exercise the exact rejections the CLI produces. *)

let positive_int ~flag v =
  if v > 0 then Ok v
  else Error (Printf.sprintf "%s must be strictly positive (got %d)" flag v)

let non_negative_int ~flag v =
  if v >= 0 then Ok v else Error (Printf.sprintf "%s must be non-negative (got %d)" flag v)

(* A campaign/registry name fit for snapshots, events and file names:
   non-empty, and no whitespace or JSONL-hostile control characters. *)
let name ~flag s =
  if s = "" then Error (Printf.sprintf "%s must not be empty" flag)
  else if
    String.exists (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r' || Char.code c < 0x20) s
  then Error (Printf.sprintf "%s must not contain whitespace or control characters" flag)
  else Ok s

(* Applicative-ish chaining for validating a record field by field. *)
let ( let* ) r f = Result.bind r f
