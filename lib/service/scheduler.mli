(** Strict round-robin over runnable campaigns.  Starvation bound: a
    campaign among K runnable ones waits at most K-1 slices between
    turns — a name moves to the back of the rotation only when granted a
    slice, so it cannot be overtaken twice. *)

type t

val create : unit -> t

(** Append to the rotation (idempotent). *)
val add : t -> string -> unit

val remove : t -> string -> unit

(** Current rotation, front first — persisted by {!Snapshot}. *)
val rotation : t -> string list

val restore : t -> string list -> unit

(** First runnable name in rotation order, rotated to the back; [None]
    when no campaign is runnable.  Non-runnable names keep their place. *)
val next : t -> runnable:(string -> bool) -> string option
