(** Validation shared by the CLI ([cloud9 serve], [--max-steps],
    [--parallel]) and the daemon's control plane.  [flag] names the
    offending knob in the error message. *)

val positive_int : flag:string -> int -> (int, string) result
val non_negative_int : flag:string -> int -> (int, string) result

(** Non-empty, no whitespace/control characters (snapshot- and
    JSONL-safe). *)
val name : flag:string -> string -> (string, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
