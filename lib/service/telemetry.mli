(** The daemon's telemetry plane: per-campaign {!Obs.Progress} estimators
    folded into a health state machine, `telemetry` events at every state
    transition, and an atomically rewritten status file (JSON + a
    Prometheus text exposition) on a slice cadence.  Optional end to end:
    a daemon without a [Telemetry.t] pays one option match per slice. *)

(** In decreasing precedence: [Degraded] (fault EWMA above threshold),
    [Starved] (the scheduler's structural K-1 fairness bound was
    violated — a watchdog that cannot fire under the correct
    round-robin), [Stalled] (no new coverage in [stall_slices]
    consecutive slices), [Healthy]. *)
type health = Healthy | Stalled | Starved | Degraded

val health_to_string : health -> string
val health_of_string : string -> (health, string) result

type config = {
  stall_slices : int;  (** coverage-dry slices before [Stalled] *)
  fault_threshold : float;  (** faults-per-slice EWMA above this = [Degraded] *)
  eta_min_slices : int;  (** ETA confidence floor (see {!Obs.Progress}) *)
  alpha : float;  (** progress EWMA smoothing factor *)
  status_file : string option;  (** JSON status document; [None] = none *)
  prom_file : string option;  (** Prometheus exposition; [None] = none *)
  cadence_slices : int;  (** granted slices between status rewrites *)
}

(** stall_slices 4, fault_threshold 3.0, eta_min_slices 3, alpha 0.3,
    no files, cadence 4 (the daemon force-flushes on shutdown, so the
    final status document is complete at any cadence). *)
val default_config : config

type t

type transition = { tr_name : string; tr_from : health; tr_to : health }

(** @raise Invalid_argument if [stall_slices] or [cadence_slices] < 1. *)
val create : config -> t

(** Record one granted slice for campaign [name].  [runnable] is the
    full set of currently runnable campaign names (the starvation
    watchdog's K); [done_] marks the campaign finished by this slice
    (a finished campaign reads [Healthy], not [Stalled]).  Returns the
    health transitions caused, oldest first — the daemon emits one
    `telemetry` event per transition. *)
val observe :
  t -> name:string -> runnable:string list -> done_:bool -> Obs.Progress.slice -> transition list

val health : t -> string -> health option
val progress : t -> string -> Obs.Progress.t option

(** The status document: schema tag, granted-slice count, aggregate
    totals summed from [rows] (paths / errors / instructions / slices),
    and per-campaign rows — each row is its control-plane summary
    extended with [health] and [progress] fields. *)
val status_json : t -> rows:(string * Obs.Json.t) list -> Obs.Json.t

(** Atomically (tmp + rename) rewrite the status file and, when
    [metrics] is present, the Prometheus exposition. *)
val write_status :
  t -> rows:(string * Obs.Json.t) list -> metrics:Obs.Metrics.snapshot option -> unit

(** True once [cadence_slices] slices accumulated since the last
    [write_status]. *)
val due : t -> bool

val granted : t -> int
val status_writes : t -> int
