(** Versioned on-disk snapshot of the whole campaign service: scheduler
    rotation plus every campaign's spec, status, cumulative counters,
    frontier (path encodings), ban set and union coverage vector.
    Checkpoints are taken only at drained barriers, so the lease ledger
    contributes nothing beyond the ban set already here. *)

(** Codec version stamped into every snapshot; {!load} refuses other
    versions rather than misreading them. *)
val version : int

type state = {
  st_rotation : string list;  (** scheduler rotation, front first *)
  st_campaigns : Campaign.t list;
}

val state_to_json : state -> Obs.Json.t
val state_of_json : Obs.Json.t -> (state, string) result

val campaign_to_json : Campaign.t -> Obs.Json.t
val campaign_of_json : Obs.Json.t -> (Campaign.t, string) result

val hex_of_bytes : Bytes.t -> string
val bytes_of_hex : string -> (Bytes.t, string) result

(** Atomic: writes [path ^ ".tmp"], then renames over [path].  A crash
    mid-write leaves the previous snapshot intact. *)
val save : string -> state -> unit

val load : string -> (state, string) result
