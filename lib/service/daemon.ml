(* The campaign daemon: owns a queue of campaigns, advances them one
   fair-scheduled slice at a time through the existing runtimes, and
   survives its own death — state is checkpointed to a versioned
   snapshot (atomic rename-on-write) and restored on restart, resuming
   every campaign from its last drained barrier.

   Control plane: a JSONL command file (or pipe) polled by byte offset —
   only complete newline-terminated lines are consumed, so a writer
   caught mid-line is simply picked up on the next poll.  Events go out
   as JSONL appended to the events file. *)

module J = Obs.Json

type config = {
  state_file : string;          (* snapshot path; restored when present *)
  control_file : string option; (* JSONL commands in; None = no control plane *)
  events_file : string option;  (* JSONL events out; None = discard *)
  slice_instrs : int;           (* default per-slice instruction budget *)
  checkpoint_every : int;       (* slices between automatic checkpoints; 0 = manual only *)
  obs : Obs.Sink.t option;
  telemetry : Telemetry.config option; (* None = telemetry plane off (zero cost) *)
}

let default_config ~state_file =
  {
    state_file;
    control_file = None;
    events_file = None;
    slice_instrs = 20_000;
    checkpoint_every = 4;
    obs = None;
    telemetry = None;
  }

type t = {
  cfg : config;
  sched : Scheduler.t;
  campaigns : (string, Campaign.t) Hashtbl.t;
  tele : Telemetry.t option;
  mutable control_pos : int;     (* bytes of the control file consumed *)
  mutable slices_since_ckpt : int;
  mutable stopped : bool;
}

(* --- events ------------------------------------------------------------ *)

let emit t ev =
  match t.cfg.events_file with
  | None -> ()
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Control.event_to_line ev))

(* Per-campaign obs metrics, labeled by campaign name.  [Metrics.counter]
   is find-or-create, so resolving per slice is cheap and correct. *)
let bump t (c : Campaign.t) ~paths ~errors ~instrs =
  match t.cfg.obs with
  | None -> ()
  | Some sink ->
    let m = Obs.Sink.metrics sink in
    let labels = [ ("campaign", c.Campaign.spec.Campaign.sp_name) ] in
    Obs.Metrics.incr (Obs.Metrics.counter m ~labels "campaign_slices");
    Obs.Metrics.add (Obs.Metrics.counter m ~labels "campaign_paths") paths;
    Obs.Metrics.add (Obs.Metrics.counter m ~labels "campaign_errors") errors;
    Obs.Metrics.add (Obs.Metrics.counter m ~labels "campaign_instrs") instrs

(* Telemetry hooks.  [telemetry_slice] folds one granted slice into the
   campaign's progress estimator and emits one `telemetry` event per
   health transition; [telemetry_status] rewrites the status surfaces
   when the cadence is due.  Both are single option matches when the
   plane is disabled. *)
let telemetry_slice t (c : Campaign.t) ~useful ~replay ~solver_queries ~crashes ~retransmits =
  match t.tele with
  | None -> ()
  | Some tele ->
    let name = c.Campaign.spec.Campaign.sp_name in
    let runnable =
      Hashtbl.fold (fun n c acc -> if Campaign.runnable c then n :: acc else acc) t.campaigns []
    in
    let slice =
      {
        Obs.Progress.sl_coverage = c.Campaign.coverage_frac;
        sl_useful = useful;
        sl_replay = replay;
        sl_solver_queries = solver_queries;
        sl_frontier_depths = List.map Engine.Path.length c.Campaign.frontier;
        sl_crashes = crashes;
        sl_retransmits = retransmits;
      }
    in
    let done_ = c.Campaign.status = Campaign.Done in
    List.iter
      (fun (tr : Telemetry.transition) ->
        let progress =
          match Telemetry.progress tele tr.tr_name with
          | Some p -> Obs.Progress.to_json p
          | None -> J.Null
        in
        emit t
          (Control.Telemetry
             {
               name = tr.tr_name;
               from_ = Telemetry.health_to_string tr.tr_from;
               to_ = Telemetry.health_to_string tr.tr_to;
               progress;
             }))
      (Telemetry.observe tele ~name ~runnable ~done_ slice)

let campaign_pairs t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.campaigns []
  |> List.sort (fun a b ->
         compare a.Campaign.spec.Campaign.sp_name b.Campaign.spec.Campaign.sp_name)
  |> List.map (fun c -> (c.Campaign.spec.Campaign.sp_name, Campaign.summary c))

let telemetry_flush t =
  match t.tele with
  | None -> ()
  | Some tele ->
    let metrics = Option.map (fun s -> Obs.Metrics.snapshot (Obs.Sink.metrics s)) t.cfg.obs in
    Telemetry.write_status tele ~rows:(campaign_pairs t) ~metrics

let telemetry_status t =
  match t.tele with
  | None -> ()
  | Some tele -> if Telemetry.due tele then telemetry_flush t

(* --- snapshotting ------------------------------------------------------ *)

let snapshot_state t =
  let campaigns =
    Hashtbl.fold (fun _ c acc -> c :: acc) t.campaigns []
    |> List.sort (fun a b ->
           compare a.Campaign.spec.Campaign.sp_name b.Campaign.spec.Campaign.sp_name)
  in
  { Snapshot.st_rotation = Scheduler.rotation t.sched; st_campaigns = campaigns }

let checkpoint t =
  let st = snapshot_state t in
  Snapshot.save t.cfg.state_file st;
  t.slices_since_ckpt <- 0;
  emit t
    (Control.Checkpointed
       { file = t.cfg.state_file; campaigns = List.length st.Snapshot.st_campaigns })

(* --- construction / restore ------------------------------------------- *)

let create cfg =
  let t =
    {
      cfg;
      sched = Scheduler.create ();
      campaigns = Hashtbl.create 16;
      tele = Option.map Telemetry.create cfg.telemetry;
      control_pos = 0;
      slices_since_ckpt = 0;
      stopped = false;
    }
  in
  if Sys.file_exists cfg.state_file then begin
    match Snapshot.load cfg.state_file with
    | Error e -> Error (Printf.sprintf "restore from %s failed: %s" cfg.state_file e)
    | Ok st ->
      List.iter
        (fun c -> Hashtbl.replace t.campaigns c.Campaign.spec.Campaign.sp_name c)
        st.Snapshot.st_campaigns;
      Scheduler.restore t.sched st.Snapshot.st_rotation;
      (* names present as campaigns but missing from the persisted
         rotation (e.g. a snapshot edited by hand) re-enter at the back *)
      List.iter
        (fun c -> Scheduler.add t.sched c.Campaign.spec.Campaign.sp_name)
        st.Snapshot.st_campaigns;
      Ok t
  end
  else Ok t

let find t name = Hashtbl.find_opt t.campaigns name

let campaign_rows t names =
  names
  |> List.sort compare
  |> List.filter_map (fun n -> Option.map Campaign.summary (find t n))

(* --- command handling -------------------------------------------------- *)

let handle_submit t (spec : Campaign.spec) =
  let name = spec.Campaign.sp_name in
  if Hashtbl.mem t.campaigns name then
    emit t (Control.Rejected { line = name; reason = "duplicate campaign name" })
  else begin
    match Core.Registry.resolve ~name:spec.sp_target ~variant:spec.sp_variant with
    | None ->
      emit t
        (Control.Rejected
           {
             line = name;
             reason =
               Printf.sprintf "unknown target %s%s" spec.sp_target
                 (match spec.sp_variant with Some v -> "/" ^ v | None -> "");
           })
    | Some _ ->
      Hashtbl.replace t.campaigns name (Campaign.create spec);
      Scheduler.add t.sched name;
      emit t (Control.Accepted name)
  end

let handle_command t = function
  | Control.Submit spec -> handle_submit t spec
  | Control.Status None ->
    let names = Hashtbl.fold (fun n _ acc -> n :: acc) t.campaigns [] in
    emit t (Control.Status_report (campaign_rows t names))
  | Control.Status (Some name) -> (
    match find t name with
    | None -> emit t (Control.Rejected { line = name; reason = "unknown campaign" })
    | Some c -> emit t (Control.Status_report [ Campaign.summary c ]))
  | Control.Pause name -> (
    match find t name with
    | Some c when Campaign.runnable c ->
      c.Campaign.status <- Campaign.Paused;
      emit t (Control.Accepted name)
    | Some _ -> emit t (Control.Rejected { line = name; reason = "not runnable" })
    | None -> emit t (Control.Rejected { line = name; reason = "unknown campaign" }))
  | Control.Resume name -> (
    match find t name with
    | Some c when c.Campaign.status = Campaign.Paused ->
      c.Campaign.status <- (if c.Campaign.started then Campaign.Running else Campaign.Queued);
      emit t (Control.Accepted name)
    | Some _ -> emit t (Control.Rejected { line = name; reason = "not paused" })
    | None -> emit t (Control.Rejected { line = name; reason = "unknown campaign" }))
  | Control.Cancel name -> (
    match find t name with
    | Some c when c.Campaign.status <> Campaign.Done ->
      c.Campaign.status <- Campaign.Cancelled;
      Scheduler.remove t.sched name;
      emit t (Control.Accepted name)
    | Some _ -> emit t (Control.Rejected { line = name; reason = "already done" })
    | None -> emit t (Control.Rejected { line = name; reason = "unknown campaign" }))
  | Control.Checkpoint -> checkpoint t
  | Control.Shutdown ->
    checkpoint t;
    telemetry_flush t; (* the final status document must carry the final totals *)
    emit t Control.Shutting_down;
    t.stopped <- true

(* Poll the control file from the consumed byte offset, handling every
   *complete* (newline-terminated) line.  A trailing partial line stays
   unconsumed until its newline arrives. *)
let poll_control t =
  match t.cfg.control_file with
  | None -> ()
  | Some path when not (Sys.file_exists path) -> ()
  | Some path ->
    let ic = open_in_bin path in
    let tail =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len <= t.control_pos then ""
          else begin
            seek_in ic t.control_pos;
            really_input_string ic (len - t.control_pos)
          end)
    in
    let consumed = ref 0 in
    let start = ref 0 in
    String.iteri
      (fun i ch ->
        if ch = '\n' then begin
          let line = String.sub tail !start (i - !start) in
          start := i + 1;
          consumed := i + 1;
          let line = String.trim line in
          if line <> "" && not t.stopped then
            match Control.parse_command line with
            | Ok cmd -> handle_command t cmd
            | Error reason -> emit t (Control.Rejected { line; reason })
        end)
      tail;
    t.control_pos <- t.control_pos + !consumed

(* --- slicing ----------------------------------------------------------- *)

let run_slice t (c : Campaign.t) =
  let s = c.Campaign.spec in
  match Core.Registry.resolve ~name:s.Campaign.sp_target ~variant:s.sp_variant with
  | None ->
    (* the target vanished between snapshot and restore (e.g. registry
       change): fail the campaign rather than the daemon *)
    c.Campaign.status <- Campaign.Cancelled;
    Scheduler.remove t.sched s.sp_name;
    emit t
      (Control.Service_error
         (Printf.sprintf "campaign %s: target %s no longer resolvable" s.sp_name s.sp_target))
  | Some target -> (
    let coverable = List.length (Cvm.Program.covered_lines target.Core.Cloud9.program) in
    match s.sp_runtime with
    | Campaign.Parallel ndomains ->
      let options =
        {
          Core.Cloud9.default_cluster_options with
          cworker_max_steps = Some s.sp_max_steps;
          cseed = s.sp_seed;
        }
      in
      let r = Core.Cloud9.run_parallel ?obs:t.cfg.obs ~ndomains ~options target in
      Campaign.apply_parallel c r;
      bump t c ~paths:r.Cluster.Parallel.total_paths ~errors:r.Cluster.Parallel.total_errors
        ~instrs:(r.Cluster.Parallel.useful_instrs + r.Cluster.Parallel.replay_instrs);
      telemetry_slice t c ~useful:r.Cluster.Parallel.useful_instrs
        ~replay:r.Cluster.Parallel.replay_instrs
        ~solver_queries:r.Cluster.Parallel.solver_stats.Smt.Solver.queries
        ~crashes:r.Cluster.Parallel.crashes ~retransmits:r.Cluster.Parallel.retransmits;
      emit t (Control.Campaign_done { name = s.sp_name; summary = Campaign.summary c })
    | Campaign.Sim -> (
      let options =
        {
          Core.Cloud9.default_cluster_options with
          nworkers = s.sp_workers;
          speed = s.sp_speed;
          cworker_max_steps = Some s.sp_max_steps;
          cseed = s.sp_seed;
        }
      in
      let budget = Option.value s.sp_slice_instrs ~default:t.cfg.slice_instrs in
      let resume = Campaign.resume_export c in
      c.Campaign.status <- Campaign.Running;
      let r = Core.Cloud9.run_cluster_slice ?obs:t.cfg.obs ~options ?resume ~budget target in
      match Campaign.apply_slice c r ~coverable with
      | Error e ->
        c.Campaign.status <- Campaign.Paused;
        emit t (Control.Service_error e)
      | Ok () ->
        bump t c ~paths:r.Cluster.Driver.total_paths ~errors:r.Cluster.Driver.total_errors
          ~instrs:(r.Cluster.Driver.useful_instrs + r.Cluster.Driver.replay_instrs);
        telemetry_slice t c ~useful:r.Cluster.Driver.useful_instrs
          ~replay:r.Cluster.Driver.replay_instrs
          ~solver_queries:r.Cluster.Driver.solver_stats.Smt.Solver.queries
          ~crashes:r.Cluster.Driver.crashes ~retransmits:r.Cluster.Driver.retransmits;
        if c.Campaign.status = Campaign.Done then
          emit t (Control.Campaign_done { name = s.sp_name; summary = Campaign.summary c })
        else emit t (Control.Progress { name = s.sp_name; summary = Campaign.summary c })))

(* One daemon step: drain the control plane, then grant one slice to the
   next runnable campaign in rotation. *)
let step t =
  poll_control t;
  if t.stopped then `Stopped
  else
    let runnable name = match find t name with Some c -> Campaign.runnable c | None -> false in
    match Scheduler.next t.sched ~runnable with
    | None -> `Idle
    | Some name ->
      (match find t name with
      | None -> () (* unreachable: runnable implied presence *)
      | Some c -> run_slice t c);
      t.slices_since_ckpt <- t.slices_since_ckpt + 1;
      if t.cfg.checkpoint_every > 0 && t.slices_since_ckpt >= t.cfg.checkpoint_every then
        checkpoint t;
      telemetry_status t;
      `Sliced name

(* Run until shutdown.  [idle_exit] stops (with a final checkpoint) once
   no campaign is runnable — the batch mode the bench and tests use;
   without it an idle daemon sleeps [poll_s] between control polls. *)
let run ?(poll_s = 0.05) ?(idle_exit = false) t =
  let rec loop () =
    match step t with
    | `Stopped -> ()
    | `Sliced _ -> loop ()
    | `Idle ->
      if idle_exit then begin
        checkpoint t;
        telemetry_flush t;
        emit t Control.Shutting_down;
        t.stopped <- true
      end
      else begin
        Unix.sleepf poll_s;
        loop ()
      end
  in
  loop ()

let campaigns t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.campaigns []
  |> List.sort (fun a b ->
         compare a.Campaign.spec.Campaign.sp_name b.Campaign.spec.Campaign.sp_name)

let submit t spec = handle_submit t spec
let telemetry t = t.tele
