(* Single-node exploration driver: the classic KLEE loop.  Pick a state
   with the searcher, execute one step, insert the successors, record test
   cases at terminations — until a goal is met or the tree is exhausted.

   The cluster layer (lib/cluster) replaces this loop with per-worker
   frontier management; this driver is what a "1-worker Cloud9" runs and
   is also the baseline for all comparisons. *)

type goal =
  | Exhaust                   (* explore every path *)
  | Coverage of float         (* stop at this fraction of coverable lines *)
  | Instructions of int       (* stop after this many retired instructions *)
  | Paths of int              (* stop after this many completed paths *)

type 'env result = {
  tests : Testcase.t list;    (* newest first *)
  paths_explored : int;
  pruned_paths : int;
  exhausted : bool;
  coverage : float;           (* fraction of coverable lines covered *)
  instructions : int;
  errors : int;
  solver_stats : Smt.Solver.stats; (* snapshot of this run's solver counters *)
  inc_stats : Smt.Solver.inc_stats; (* incremental-solving counters (zero when disabled) *)
}

let coverage_fraction cfg program =
  let coverable = List.length (Cvm.Program.covered_lines program) in
  if coverable = 0 then 1.0
  else float_of_int (Executor.coverage_count cfg) /. float_of_int coverable

let goal_met cfg program ~paths = function
  | Exhaust -> false
  | Coverage target -> coverage_fraction cfg program >= target
  | Instructions n -> cfg.Executor.stats.Executor.useful_instrs >= n
  | Paths n -> paths >= n

(* [run cfg searcher st0 ~goal] explores from [st0].  [collect_tests]
   bounds how many test cases are materialized (solving for inputs is the
   expensive part); path counting is unaffected. *)
(* With a sink attached, the single-node driver advances virtual time
   itself: 1 tick per [instrs_per_tick] retired instructions (the
   cluster driver, which owns real virtual time, overrides this by
   driving [Obs.Sink.set_now] directly). *)
let instrs_per_tick = 1000

let run ?(collect_tests = max_int) ?(goal = Exhaust) cfg searcher (st0 : 'env State.t) =
  let program = st0.State.program in
  searcher.Searcher.add st0;
  let tests = ref [] in
  let ntests = ref 0 in
  let paths = ref 0 in
  let pruned = ref 0 in
  let errors = ref 0 in
  let stop = ref false in
  let last_tick = ref (-1) in
  let sample_obs () =
    match cfg.Executor.obs with
    | None -> ()
    | Some s ->
      let stats = cfg.Executor.stats in
      let total = stats.Executor.useful_instrs + stats.Executor.replay_instrs in
      let tick = total / instrs_per_tick in
      if tick <> !last_tick then begin
        last_tick := tick;
        Obs.Sink.set_now s tick;
        Obs.Sink.observe s ~useful:stats.Executor.useful_instrs
          ~replay:stats.Executor.replay_instrs ~idle:0
          ~depth:(searcher.Searcher.size ())
          ~queries:(Smt.Solver.stats cfg.Executor.solver).Smt.Solver.queries
          ~sat_calls:(Smt.Solver.stats cfg.Executor.solver).Smt.Solver.sat_calls
      end
  in
  let note_done term =
    match cfg.Executor.obs with
    | None -> ()
    | Some s ->
      let verdict =
        match term with
        | Errors.Pruned -> "pruned"
        | Errors.Exit _ -> "exit"
        | Errors.Error _ -> "error"
      in
      Obs.Sink.event s (Obs.Event.Path_done { verdict })
  in
  while (not !stop) && searcher.Searcher.size () > 0 do
    match searcher.Searcher.select () with
    | None -> stop := true
    | Some st ->
      let { Executor.running; finished } = Executor.step cfg st in
      List.iter searcher.Searcher.add running;
      sample_obs ();
      List.iter
        (fun (st, term) ->
          note_done term;
          match term with
          | Errors.Pruned -> incr pruned
          | Errors.Exit _ | Errors.Error _ ->
            incr paths;
            if Errors.is_error term then incr errors;
            if !ntests < collect_tests then begin
              match Testcase.of_state cfg.Executor.solver st term with
              | Some tc ->
                tests := tc :: !tests;
                incr ntests
              | None -> ()
            end)
        finished;
      if goal_met cfg program ~paths:!paths goal then stop := true
  done;
  (match cfg.Executor.obs with
  | None -> ()
  | Some s ->
    let stats = cfg.Executor.stats in
    let total = stats.Executor.useful_instrs + stats.Executor.replay_instrs in
    Obs.Sink.set_now s ((total / instrs_per_tick) + 1);
    Obs.Sink.observe s ~useful:stats.Executor.useful_instrs ~replay:stats.Executor.replay_instrs
      ~idle:0 ~depth:(searcher.Searcher.size ())
      ~queries:(Smt.Solver.stats cfg.Executor.solver).Smt.Solver.queries
      ~sat_calls:(Smt.Solver.stats cfg.Executor.solver).Smt.Solver.sat_calls);
  {
    tests = !tests;
    paths_explored = !paths;
    pruned_paths = !pruned;
    exhausted = searcher.Searcher.size () = 0;
    coverage = coverage_fraction cfg program;
    instructions = cfg.Executor.stats.Executor.useful_instrs;
    errors = !errors;
    solver_stats = Smt.Solver.copy_stats cfg.Executor.solver;
    inc_stats = Smt.Solver.copy_inc_stats cfg.Executor.solver;
  }

(* Convenience wrapper: run a program that needs no environment model. *)
let run_pure ?collect_tests ?goal ?max_steps ~searcher program ~args =
  let solver = Smt.Solver.create () in
  let cfg =
    Executor.make_config ~solver ~handler:Executor.no_env_handler
      ~nlines:program.Cvm.Program.nlines
      ?max_steps:(Option.map Option.some max_steps) ()
  in
  let st0 = State.init program ~env:() ~args in
  (cfg, run ?collect_tests ?goal cfg searcher st0)
