(* Exploration strategies: which candidate state to execute next.

   Cloud9 workers run the same searchers KLEE ships (paper section 7:
   "an interleaving of random-path and coverage-optimized strategies");
   the cluster layer coordinates them globally via the coverage overlay.

   All searchers share one interface and support removal by path, so an
   interleaved searcher can keep several orderings over the same state
   population.  A state's path is its unique key. *)

type 'env t = {
  add : 'env State.t -> unit;
  select : unit -> 'env State.t option; (* removes the state *)
  remove : Path.t -> unit;
  size : unit -> int;
}

let key st = Path.to_string (State.path st)
let key_of_path p = Path.to_string p

(* --- depth-first ------------------------------------------------------------ *)

let dfs () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let rec pop () =
    match !stack with
    | [] -> None
    | k :: rest -> (
      stack := rest;
      match Hashtbl.find_opt table k with
      | Some st ->
        Hashtbl.remove table k;
        Some st
      | None -> pop () (* removed earlier: skip the stale key *))
  in
  {
    add =
      (fun st ->
        let k = key st in
        Hashtbl.replace table k st;
        stack := k :: !stack);
    select = pop;
    remove = (fun p -> Hashtbl.remove table (key_of_path p));
    size = (fun () -> Hashtbl.length table);
  }

(* --- breadth-first ------------------------------------------------------------ *)

let bfs () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let rec pop () =
    match Queue.take_opt q with
    | None -> None
    | Some k -> (
      match Hashtbl.find_opt table k with
      | Some st ->
        Hashtbl.remove table k;
        Some st
      | None -> pop ())
  in
  {
    add =
      (fun st ->
        let k = key st in
        Hashtbl.replace table k st;
        Queue.add k q);
    select = pop;
    remove = (fun p -> Hashtbl.remove table (key_of_path p));
    size = (fun () -> Hashtbl.length table);
  }

(* --- random-path ----------------------------------------------------------------- *)

(* KLEE's random-path searcher: walk the execution tree from the root,
   picking a uniformly random child at each internal node, until reaching
   a leaf state.  Deep subtrees thus do not dominate selection.  We keep a
   trie of the alive states' paths. *)

module Trie = struct
  type 'env node = {
    mutable state : 'env State.t option;
    mutable children : (Path.choice * 'env node) list;
    mutable count : int; (* alive states in this subtree *)
  }

  let make () = { state = None; children = []; count = 0 }

  (* Returns true when a new payload was created: re-adding a state at an
     existing path (a state stepped without forking keeps its path) must
     not inflate ancestor counts. *)
  let rec add_fresh node path st =
    match path with
    | [] ->
      let fresh = node.state = None in
      node.state <- Some st;
      if fresh then node.count <- node.count + 1;
      fresh
    | c :: rest ->
      let child =
        match List.assoc_opt c node.children with
        | Some n -> n
        | None ->
          let n = make () in
          node.children <- (c, n) :: node.children;
          n
      in
      let fresh = add_fresh child rest st in
      if fresh then node.count <- node.count + 1;
      fresh

  let add node path st = ignore (add_fresh node path st)

  (* Returns true when a state was removed. *)
  let rec remove node path =
    match path with
    | [] ->
      if node.state = None then false
      else begin
        node.state <- None;
        node.count <- node.count - 1;
        true
      end
    | c :: rest -> (
      match List.assoc_opt c node.children with
      | None -> false
      | Some child ->
        let removed = remove child rest in
        if removed then begin
          node.count <- node.count - 1;
          if child.count = 0 then node.children <- List.remove_assoc c node.children
        end;
        removed)

  let rec pick rng node =
    (* candidates: the state at this node, plus each nonempty child *)
    let options =
      (match node.state with Some _ -> [ `Here ] | None -> [])
      @ List.filter_map (fun (_, n) -> if n.count > 0 then Some (`Child n) else None)
          (List.map (fun x -> x) node.children)
    in
    match options with
    | [] -> None
    | _ -> (
      match List.nth options (Random.State.int rng (List.length options)) with
      | `Here -> node.state
      | `Child n -> pick rng n)
end

let random_path ~rng () =
  let root = Trie.make () in
  let rec select () =
    match Trie.pick rng root with
    | None -> None
    | Some st ->
      if Trie.remove root (State.path st) then Some st
      else select ()
  in
  {
    add = (fun st -> Trie.add root (State.path st) st);
    select;
    remove = (fun p -> ignore (Trie.remove root p));
    size = (fun () -> root.Trie.count);
  }

(* --- coverage-optimized -------------------------------------------------------------- *)

(* Weighted random selection: states that recently covered new code get
   high weight — a proxy for "estimated distance to an uncovered line"
   (paper section 7: coverage-optimized strategy). *)

let coverage_optimized ~rng () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let weight st =
    let staleness = st.State.steps - st.State.last_new_cover in
    1.0 /. float_of_int (1 + staleness)
  in
  let select () =
    if Hashtbl.length table = 0 then None
    else begin
      let total = Hashtbl.fold (fun _ st acc -> acc +. weight st) table 0.0 in
      let target = Random.State.float rng total in
      let chosen = ref None in
      let acc = ref 0.0 in
      (try
         Hashtbl.iter
           (fun k st ->
             acc := !acc +. weight st;
             if !acc >= target then begin
               chosen := Some (k, st);
               raise Exit
             end)
           table
       with Exit -> ());
      match !chosen with
      | Some (k, st) ->
        Hashtbl.remove table k;
        Some st
      | None ->
        (* floating-point slack: fall back to any state *)
        let any = Hashtbl.fold (fun k st acc -> match acc with None -> Some (k, st) | s -> s) table None in
        (match any with
        | Some (k, st) ->
          Hashtbl.remove table k;
          Some st
        | None -> None)
    end
  in
  {
    add = (fun st -> Hashtbl.replace table (key st) st);
    select;
    remove = (fun p -> Hashtbl.remove table (key_of_path p));
    size = (fun () -> Hashtbl.length table);
  }

(* --- interleaved ------------------------------------------------------------------------ *)

(* Alternate between sub-strategies over the same state population — the
   KLEE/Cloud9 default interleaves random-path with coverage-optimized. *)
let interleave subs =
  match subs with
  | [] -> invalid_arg "Searcher.interleave: no sub-searchers"
  | _ ->
    let subs = Array.of_list subs in
    let turn = ref 0 in
    let select () =
      let n = Array.length subs in
      let rec try_from k attempts =
        if attempts = 0 then None
        else
          match subs.(k).select () with
          | Some st ->
            (* keep the populations consistent *)
            Array.iteri (fun i s -> if i <> k then s.remove (State.path st)) subs;
            turn := (k + 1) mod n;
            Some st
          | None -> try_from ((k + 1) mod n) (attempts - 1)
      in
      try_from !turn n
    in
    {
      add = (fun st -> Array.iter (fun s -> s.add st) subs);
      select;
      remove = (fun p -> Array.iter (fun s -> s.remove p) subs);
      size = (fun () -> subs.(0).size ());
    }

(* The searcher used in the paper's evaluation. *)
let default ~rng () = interleave [ random_path ~rng (); coverage_optimized ~rng () ]

let names = [ "dfs"; "bfs"; "random-path"; "cov-opt"; "interleaved"; "default" ]

let of_name ~rng = function
  | "dfs" -> dfs ()
  | "bfs" -> bfs ()
  | "random-path" -> random_path ~rng ()
  | "cov-opt" -> coverage_optimized ~rng ()
  | "default" | "interleaved" -> default ~rng ()
  | other ->
    invalid_arg
      (Printf.sprintf "Searcher.of_name: unknown strategy %s (expected one of: %s)" other
         (String.concat ", " names))
