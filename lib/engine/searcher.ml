(* Exploration strategies: which candidate state to execute next.

   Cloud9 workers run the same searchers KLEE ships (paper section 7:
   "an interleaving of random-path and coverage-optimized strategies");
   the cluster layer coordinates them globally via the coverage overlay.

   All searchers share one interface and support removal by path, so an
   interleaved searcher can keep several orderings over the same state
   population.  A state's path is its unique key. *)

type 'env t = {
  add : 'env State.t -> unit;
  select : unit -> 'env State.t option; (* removes the state *)
  remove : Path.t -> unit;
  size : unit -> int;
  pending : unit -> int;
  (* diagnostic: entries in the internal ordering structure, including
     stale ones awaiting compaction; equals [size] for searchers without
     lazy deletion.  Lets tests assert stale entries stay bounded. *)
}

let key st = Path.to_string (State.path st)
let key_of_path p = Path.to_string p

(* --- depth-first / breadth-first -------------------------------------------- *)

(* Both keep an ordering of keys next to the key -> state table.  Keys are
   deduplicated through a membership set: re-adding a stepped (unforked)
   state — which the driver does on every step — replaces the table
   binding without pushing a second copy of the key, so the ordering
   stays O(live states), not O(steps).  Stale keys (left by [remove],
   e.g. job transfers or interleaving) are skipped lazily on pop and
   compacted away once they outnumber the live population. *)

let stale_bound live = (2 * live) + 64

let dfs () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let rec pop () =
    match !stack with
    | [] -> None
    | k :: rest -> (
      stack := rest;
      Hashtbl.remove queued k;
      match Hashtbl.find_opt table k with
      | Some st ->
        Hashtbl.remove table k;
        Some st
      | None -> pop () (* removed earlier: skip the stale key *))
  in
  let compact () =
    if Hashtbl.length queued > stale_bound (Hashtbl.length table) then begin
      stack := List.filter (Hashtbl.mem table) !stack;
      Hashtbl.reset queued;
      List.iter (fun k -> Hashtbl.replace queued k ()) !stack
    end
  in
  {
    add =
      (fun st ->
        let k = key st in
        Hashtbl.replace table k st;
        if not (Hashtbl.mem queued k) then begin
          Hashtbl.replace queued k ();
          stack := k :: !stack
        end);
    select = pop;
    remove =
      (fun p ->
        Hashtbl.remove table (key_of_path p);
        compact ());
    size = (fun () -> Hashtbl.length table);
    pending = (fun () -> Hashtbl.length queued);
  }

let bfs () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let queued : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  let rec pop () =
    match Queue.take_opt q with
    | None -> None
    | Some k -> (
      Hashtbl.remove queued k;
      match Hashtbl.find_opt table k with
      | Some st ->
        Hashtbl.remove table k;
        Some st
      | None -> pop ())
  in
  let compact () =
    if Hashtbl.length queued > stale_bound (Hashtbl.length table) then begin
      let live = Queue.create () in
      Queue.iter (fun k -> if Hashtbl.mem table k then Queue.add k live) q;
      Queue.clear q;
      Queue.transfer live q;
      Hashtbl.reset queued;
      Queue.iter (fun k -> Hashtbl.replace queued k ()) q
    end
  in
  {
    add =
      (fun st ->
        let k = key st in
        Hashtbl.replace table k st;
        if not (Hashtbl.mem queued k) then begin
          Hashtbl.replace queued k ();
          Queue.add k q
        end);
    select = pop;
    remove =
      (fun p ->
        Hashtbl.remove table (key_of_path p);
        compact ());
    size = (fun () -> Hashtbl.length table);
    pending = (fun () -> Hashtbl.length queued);
  }

(* --- random-path ----------------------------------------------------------------- *)

(* KLEE's random-path searcher: walk the execution tree from the root,
   picking a uniformly random child at each internal node, until reaching
   a leaf state.  Deep subtrees thus do not dominate selection.  The
   alive states' paths live in the shared count-annotated {!Trie}. *)

let random_path ~rng () =
  let root : 'env State.t Trie.t = Trie.create () in
  let rec select () =
    match Trie.random_pick rng root with
    | None -> None
    | Some st -> if Trie.remove root (State.path st) then Some st else select ()
  in
  {
    add = (fun st -> Trie.add root (State.path st) st);
    select;
    remove = (fun p -> ignore (Trie.remove root p));
    size = (fun () -> Trie.size root);
    pending = (fun () -> Trie.size root);
  }

(* --- coverage-optimized -------------------------------------------------------------- *)

(* Weighted random selection: states that recently covered new code get
   high weight — a proxy for "estimated distance to an uncovered line"
   (paper section 7: coverage-optimized strategy). *)

let coverage_optimized ~rng () =
  let table : (string, 'env State.t) Hashtbl.t = Hashtbl.create 64 in
  let weight st =
    let staleness = st.State.steps - st.State.last_new_cover in
    1.0 /. float_of_int (1 + staleness)
  in
  let select () =
    if Hashtbl.length table = 0 then None
    else begin
      let total = Hashtbl.fold (fun _ st acc -> acc +. weight st) table 0.0 in
      let target = Random.State.float rng total in
      let chosen = ref None in
      let acc = ref 0.0 in
      (try
         Hashtbl.iter
           (fun k st ->
             acc := !acc +. weight st;
             if !acc >= target then begin
               chosen := Some (k, st);
               raise Exit
             end)
           table
       with Exit -> ());
      match !chosen with
      | Some (k, st) ->
        Hashtbl.remove table k;
        Some st
      | None ->
        (* floating-point slack: fall back to any state *)
        let any = Hashtbl.fold (fun k st acc -> match acc with None -> Some (k, st) | s -> s) table None in
        (match any with
        | Some (k, st) ->
          Hashtbl.remove table k;
          Some st
        | None -> None)
    end
  in
  {
    add = (fun st -> Hashtbl.replace table (key st) st);
    select;
    remove = (fun p -> Hashtbl.remove table (key_of_path p));
    size = (fun () -> Hashtbl.length table);
    pending = (fun () -> Hashtbl.length table);
  }

(* --- interleaved ------------------------------------------------------------------------ *)

(* Alternate between sub-strategies over the same state population — the
   KLEE/Cloud9 default interleaves random-path with coverage-optimized. *)
let interleave subs =
  match subs with
  | [] -> invalid_arg "Searcher.interleave: no sub-searchers"
  | _ ->
    let subs = Array.of_list subs in
    let turn = ref 0 in
    let select () =
      let n = Array.length subs in
      let rec try_from k attempts =
        if attempts = 0 then None
        else
          match subs.(k).select () with
          | Some st ->
            (* keep the populations consistent *)
            Array.iteri (fun i s -> if i <> k then s.remove (State.path st)) subs;
            turn := (k + 1) mod n;
            Some st
          | None -> try_from ((k + 1) mod n) (attempts - 1)
      in
      try_from !turn n
    in
    {
      add = (fun st -> Array.iter (fun s -> s.add st) subs);
      select;
      remove = (fun p -> Array.iter (fun s -> s.remove p) subs);
      size = (fun () -> subs.(0).size ());
      pending = (fun () -> Array.fold_left (fun acc s -> acc + s.pending ()) 0 subs);
    }

(* The searcher used in the paper's evaluation. *)
let default ~rng () = interleave [ random_path ~rng (); coverage_optimized ~rng () ]

let names = [ "dfs"; "bfs"; "random-path"; "cov-opt"; "interleaved"; "default" ]

let of_name ~rng = function
  | "dfs" -> dfs ()
  | "bfs" -> bfs ()
  | "random-path" -> random_path ~rng ()
  | "cov-opt" -> coverage_optimized ~rng ()
  | "default" | "interleaved" -> default ~rng ()
  | other ->
    invalid_arg
      (Printf.sprintf "Searcher.of_name: unknown strategy %s (expected one of: %s)" other
         (String.concat ", " names))
