(* An execution state: one node's worth of program state in the symbolic
   execution tree.

   Everything is persistent (maps and lists), so cloning a state at a fork
   is O(1) and two states never alias mutable data.  The state embeds:
   - the thread table (each thread: call stack, program counter, status),
     covering multiple processes — process ids select address spaces in
     {!Cvm.Memory} (paper section 4.2);
   - the path condition and the path (choice sequence) from the root,
     which doubles as the job encoding for transfers;
   - a deterministic per-state symbol counter, so a replayed path creates
     identically-named symbols;
   - an opaque ['env] slot holding the environment model's state (the
     POSIX model stores stream buffers, file descriptor tables, etc. here).

   The scheduler is cooperative (paper section 4.2): the current thread
   runs until it sleeps, preempts, or exits. *)

module Imap = Map.Make (Int)
module Instr = Cvm.Instr
module Program = Cvm.Program
module Memory = Cvm.Memory

type frame = {
  fname : string;
  regs : Smt.Expr.t Imap.t;
  frame_base : int; (* 0 when the function has no frame object *)
  ret_reg : int option;
  ret_block : int;
  ret_index : int;
}

type tstatus = Runnable | Sleeping of int (* wait-list id *) | Exited

type thread = {
  tid : int;
  pid : int;
  frames : frame list; (* top of stack first; pc below refers to its head *)
  block : int;
  index : int;
  status : tstatus;
}

type sched_policy = Round_robin | Fork_all | Context_bound of int

type 'env t = {
  program : Program.t;
  globals : (string * int) list;
  mem : Memory.t;
  threads : thread Imap.t;
  cur : int; (* currently scheduled thread id *)
  next_tid : int;
  next_pid : int;
  next_wlist : int;
  next_sym : int;
  pc : Smt.Expr.t list; (* path condition, newest first *)
  npc : Smt.Expr.t list;
  (* normalized path condition, newest first: each member simplified,
     trivially-true members dropped — maintained incrementally by
     [add_constraint] so branch queries never re-simplify the whole pc *)
  boxes : Smt.Range.boxes option;
  (* interval facts learned from [npc], also maintained incrementally
     (learning is a commutative meet, so one-at-a-time = from-scratch);
     [None] only if learning ever contradicted, which cannot happen while
     the pc stays satisfiable — treated as "recompute on demand" *)
  subst : (Smt.Expr.t * Smt.Expr.t) list;
  (* equalities implied by the pc ([e = const]); applied when reading
     operands so expressions stay small (KLEE-style constraint-based
     simplification — without it, loops guarded by pinned symbolic values
     grow expressions without bound) *)
  path : Path.choice list; (* choices from the root, newest first *)
  sym_inputs : (string * int list) list; (* input name -> byte symbol ids, oldest first *)
  steps : int; (* instructions executed along this path *)
  since_sched : int; (* instructions since the last scheduling point *)
  preemptions : int; (* scheduling forks taken (context bounding) *)
  heap_limit : int option;
  sched : sched_policy;
  depth : int; (* fork depth = number of choices *)
  last_new_cover : int; (* [steps] when this path last covered a new line *)
  exit_code : int64; (* recorded by process termination; reported at exit *)
  env : 'env;
}

let path t = List.rev t.path
let path_condition t = t.pc

(* --- threads ------------------------------------------------------------- *)

let thread_exn t tid =
  match Imap.find_opt tid t.threads with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "State: unknown thread %d" tid)

let current t = thread_exn t t.cur
let current_pid t = (current t).pid

let update_thread t th = { t with threads = Imap.add th.tid th t.threads }

let runnable_tids t =
  Imap.fold (fun tid th acc -> if th.status = Runnable then tid :: acc else acc) t.threads []
  |> List.rev

let live_threads t =
  Imap.fold (fun _ th acc -> if th.status <> Exited then acc + 1 else acc) t.threads 0

(* Wake every thread sleeping on [wl]; used by the engine's notify
   primitive and directly by environment models. *)
let wake_all t wl =
  {
    t with
    threads =
      Imap.map
        (fun th -> if th.status = Sleeping wl then { th with status = Runnable } else th)
        t.threads;
  }

let sleeping_on t wl =
  Imap.fold
    (fun tid th acc -> if th.status = Sleeping wl then tid :: acc else acc)
    t.threads []
  |> List.rev

(* --- registers of the current thread's top frame ---------------------------- *)

let top_frame th =
  match th.frames with
  | f :: _ -> f
  | [] -> invalid_arg "State: thread has no frames"

let get_reg t r =
  match Imap.find_opt r (top_frame (current t)).regs with
  | Some e -> e
  | None -> Smt.Expr.const ~width:64 0L (* uninitialized registers read as 0 *)

let set_reg t r e =
  let th = current t in
  match th.frames with
  | f :: rest -> update_thread t { th with frames = { f with regs = Imap.add r e f.regs } :: rest }
  | [] -> invalid_arg "State: thread has no frames"

(* --- program counter --------------------------------------------------------- *)

let func_of t th = Program.func_exn t.program (top_frame th).fname

let current_instr t =
  let th = current t in
  let f = func_of t th in
  f.Program.blocks.(th.block).(th.index)

let advance t =
  let th = current t in
  update_thread t { th with index = th.index + 1 }

let goto t block = update_thread t { (current t) with block; index = 0 }

(* --- operand evaluation --------------------------------------------------------- *)

let global_addr t name =
  match List.assoc_opt name t.globals with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "State: unknown global %s" name)

let apply_subst t e =
  match t.subst with
  | [] -> e
  | pairs -> (
    match e.Smt.Expr.node with Smt.Expr.Const _ -> e | _ -> Smt.Expr.substitute pairs e)

let eval_operand t = function
  | Instr.Reg r -> apply_subst t (get_reg t r)
  | Instr.Imm { width; value } -> Smt.Expr.const ~width value
  | Instr.Glob name -> Smt.Expr.const ~width:64 (Int64.of_int (global_addr t name))

(* --- symbols ---------------------------------------------------------------------- *)

(* Create [count] fresh width-8 symbols with deterministic per-state ids
   and record them as a named input. *)
let fresh_input t ~name ~count =
  let syms =
    List.init count (fun i ->
        Smt.Expr.sym_with_id ~id:(t.next_sym + i) ~name:(Printf.sprintf "%s[%d]" name i) 8)
  in
  let t =
    {
      t with
      next_sym = t.next_sym + count;
      sym_inputs =
        t.sym_inputs
        @ [
            ( name,
              List.map
                (fun (s : Smt.Expr.t) ->
                  match s.node with Smt.Expr.Sym { id; _ } -> id | _ -> assert false)
                syms );
          ];
    }
  in
  (t, syms)

(* A fresh symbol not recorded as an input (scratch nondeterminism). *)
let fresh_sym t ~name ~width =
  let s = Smt.Expr.sym_with_id ~id:t.next_sym ~name width in
  ({ t with next_sym = t.next_sym + 1 }, s)

let add_constraint t e =
  let e = Smt.Simplify.simplify (apply_subst t e) in
  let subst =
    match e.Smt.Expr.node with
    | Smt.Expr.Binop (Smt.Expr.Eq, lhs, ({ node = Smt.Expr.Const _; _ } as c))
      when not (Smt.Expr.is_const lhs) ->
      (lhs, c) :: t.subst
    | _ -> t.subst
  in
  (* [e] is already simplified: extending npc costs O(1), and the boxes
     absorb the new constraint with a single meet *)
  let npc = if Smt.Expr.is_true e then t.npc else e :: t.npc in
  let boxes =
    if Smt.Expr.is_true e then t.boxes
    else match t.boxes with None -> None | Some bx -> Smt.Range.learn_boxes bx e
  in
  { t with pc = e :: t.pc; npc; boxes; subst }

let push_choice t c = { t with path = c :: t.path; depth = t.depth + 1 }

(* --- construction ------------------------------------------------------------------ *)

let make_frame (f : Program.func) ~frame_base ~args ~ret_reg ~ret_block ~ret_index =
  let regs =
    List.fold_left
      (fun (i, regs) a -> (i + 1, Imap.add i a regs))
      (0, Imap.empty) args
    |> snd
  in
  { fname = f.Program.name; regs; frame_base; ret_reg; ret_block; ret_index }

(* Initial state: globals allocated in process 0's space, one thread
   running the entry function with the given argument expressions. *)
let init program ~env ~args =
  let mem = Memory.empty in
  let mem, globals =
    List.fold_left
      (fun (mem, acc) g ->
        let mem, base =
          Memory.alloc_bytes ~writable:g.Program.gwritable mem ~pid:0 ~bytes:g.Program.bytes
        in
        (mem, (g.Program.gname, base) :: acc))
      (mem, []) program.Program.globals
  in
  let entry = Program.func_exn program program.Program.entry in
  if List.length args <> entry.Program.nparams then
    invalid_arg "State.init: wrong number of entry arguments";
  let mem, frame_base =
    if entry.Program.frame_size > 0 then Memory.alloc mem ~pid:0 ~size:entry.Program.frame_size
    else (mem, 0)
  in
  let frame = make_frame entry ~frame_base ~args ~ret_reg:None ~ret_block:0 ~ret_index:0 in
  let thread = { tid = 0; pid = 0; frames = [ frame ]; block = 0; index = 0; status = Runnable } in
  {
    program;
    globals;
    mem;
    threads = Imap.singleton 0 thread;
    cur = 0;
    next_tid = 1;
    next_pid = 1;
    next_wlist = 1;
    next_sym = 1;
    pc = [];
    npc = [];
    boxes = Some Smt.Range.empty_boxes;
    subst = [];
    path = [];
    sym_inputs = [];
    steps = 0;
    since_sched = 0;
    preemptions = 0;
    heap_limit = None;
    sched = Round_robin;
    depth = 0;
    last_new_cover = 0;
    exit_code = 0L;
    env;
  }

let map_env t f = { t with env = f t.env }
