(* A trie over execution-tree paths with subtree counts, supporting
   uniform random-path descent.  The one shared implementation behind the
   random-path searcher's state population and the cluster worker's
   frontier/fence containers: payloads are whatever the client stores
   (alive states, frontier entries, virtual nodes), keyed by the node's
   root path. *)

type 'a t = {
  mutable payload : 'a option;
  mutable children : (Path.choice * 'a t) list;
  mutable count : int; (* payloads in this subtree *)
}

let create () = { payload = None; children = []; count = 0 }

let size t = t.count

(* Returns true when a new payload was created (replacements must not
   inflate ancestor counts). *)
let rec add_fresh t path x =
  match path with
  | [] ->
    let fresh = t.payload = None in
    t.payload <- Some x;
    if fresh then t.count <- t.count + 1;
    fresh
  | c :: rest ->
    let child =
      match List.assoc_opt c t.children with
      | Some n -> n
      | None ->
        let n = create () in
        t.children <- (c, n) :: t.children;
        n
    in
    let fresh = add_fresh child rest x in
    if fresh then t.count <- t.count + 1;
    fresh

let add t path x = ignore (add_fresh t path x)

let rec find t path =
  match path with
  | [] -> t.payload
  | c :: rest -> (
    match List.assoc_opt c t.children with None -> None | Some child -> find child rest)

(* Returns true when a payload was removed. *)
let rec remove t path =
  match path with
  | [] ->
    if t.payload = None then false
    else begin
      t.payload <- None;
      t.count <- t.count - 1;
      true
    end
  | c :: rest -> (
    match List.assoc_opt c t.children with
    | None -> false
    | Some child ->
      let removed = remove child rest in
      if removed then begin
        t.count <- t.count - 1;
        if child.count = 0 then t.children <- List.remove_assoc c t.children
      end;
      removed)

(* Random-path descent (KLEE's strategy, paper section 7): from the root,
   choose uniformly among "the payload here" and each nonempty child. *)
let rec random_pick rng t =
  let options =
    (match t.payload with Some _ -> [ `Here ] | None -> [])
    @ List.filter_map (fun (_, n) -> if n.count > 0 then Some (`Child n) else None) t.children
  in
  match options with
  | [] -> None
  | _ -> (
    match List.nth options (Random.State.int rng (List.length options)) with
    | `Here -> t.payload
    | `Child n -> random_pick rng n)

let iter f t =
  let rec go t =
    Option.iter f t.payload;
    List.iter (fun (_, n) -> go n) t.children
  in
  go t

let fold f t acc =
  let acc = ref acc in
  iter (fun x -> acc := f x !acc) t;
  !acc

(* Nodes plus edges of the trie skeleton: the byte size of a preorder
   serialization with one structure byte per node and one choice byte per
   edge. *)
let structure_size t =
  let rec count node =
    List.fold_left (fun acc (_, child) -> acc + 1 + count child) 1 node.children
  in
  count t
