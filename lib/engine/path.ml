(* Path encoding: the sequence of nondeterministic choices that leads from
   the execution-tree root to a node.  This is the currency of Cloud9's
   job transfer (paper section 3.2): a candidate node is shipped to
   another worker as its root path and "replayed" there.

   A choice records which successor was taken at a fork point:
   - [Branch b]: a symbolic conditional branch (or a checked operation such
     as division-by-zero, encoded as the "no fault" branch being [true]);
   - [Sched i]: the i-th runnable thread was scheduled;
   - [Sys i]: the i-th variant of a forking system call (fault injection,
     packet fragmentation, symbolic ioctls, ...). *)

type choice = Branch of bool | Sched of int | Sys of int

(* Root-first list of choices. *)
type t = choice list

let choice_to_string = function
  | Branch true -> "T"
  | Branch false -> "F"
  | Sched i -> Printf.sprintf "s%d" i
  | Sys i -> Printf.sprintf "y%d" i

let to_string p = String.concat "" (List.map choice_to_string p)

(* Inverse of [to_string]: the compact form is self-delimiting ('T'/'F'
   are single choices; 's'/'y' are followed by a decimal index), so a
   single left-to-right scan suffices.  This is the parsing half of the
   job/snapshot wire format: campaign checkpoints persist frontier nodes
   as these strings and restore must replay them exactly. *)
let of_string s =
  let n = String.length s in
  let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | 'T' -> go (i + 1) (Branch true :: acc)
      | 'F' -> go (i + 1) (Branch false :: acc)
      | ('s' | 'y') as c ->
        let stop = digits (i + 1) in
        if stop = i + 1 then
          Error (Printf.sprintf "path %S: '%c' at %d lacks its index" s c i)
        else (
          match int_of_string_opt (String.sub s (i + 1) (stop - i - 1)) with
          | None -> Error (Printf.sprintf "path %S: bad index at %d" s (i + 1))
          | Some k -> go stop ((if c = 's' then Sched k else Sys k) :: acc))
      | c -> Error (Printf.sprintf "path %S: unexpected %C at %d" s c i)
  in
  go 0 []

let compare_choice (a : choice) (b : choice) = compare a b

let compare (a : t) (b : t) = compare a b

(* [is_prefix p q] holds when [p] is a prefix of [q]. *)
let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | c1 :: p', c2 :: q' -> c1 = c2 && is_prefix p' q'

let length = List.length

(* Number of choices shared at the front of two paths. *)
let rec common_prefix_len p q =
  match (p, q) with
  | c1 :: p', c2 :: q' when c1 = c2 -> 1 + common_prefix_len p' q'
  | _ -> 0

(* Serialized size in bytes of a path when encoded one byte per choice
   (used by the transfer-encoding ablation bench). *)
let encoded_size p = List.length p

(* Longest common prefix of two paths, root-first. *)
let rec common_prefix p q =
  match (p, q) with
  | c1 :: p', c2 :: q' when c1 = c2 -> c1 :: common_prefix p' q'
  | _ -> []

(* [strip_prefix pre p]: the suffix of [p] after [pre]; [None] when [pre]
   is not actually a prefix of [p]. *)
let rec strip_prefix pre p =
  match (pre, p) with
  | [], rest -> Some rest
  | c1 :: pre', c2 :: p' when c1 = c2 -> strip_prefix pre' p'
  | _ -> None

(* Factor a batch of paths into the longest common prefix of ALL of them
   plus per-path suffixes, order-preserving:
     factor [p1; ...; pN] = (prefix, [s1; ...; sN])
   with pi = prefix @ si for every i.  The empty batch factors as
   ([], []); a singleton factors as (p, [[]]) — the whole path is the
   prefix and the suffix is empty. *)
let factor = function
  | [] -> ([], [])
  | [ p ] -> (p, [ [] ])
  | first :: rest ->
    let prefix = List.fold_left common_prefix first rest in
    let suffixes =
      List.map
        (fun p ->
          match strip_prefix prefix p with
          | Some s -> s
          | None -> assert false (* prefix is a common prefix by construction *))
        (first :: rest)
    in
    (prefix, suffixes)

(* Batch codec: prefix and suffixes in the self-delimiting compact form,
   '|'-separated ("prefix|s1|s2|...|sN").  '|' never appears inside
   [to_string] output, so the split is unambiguous; an empty suffix
   (the prefix node itself is in the batch) encodes as an empty field.
   This string is what the Jobs wire message carries under prefix
   handoff: both cluster backends ship it through Cluster.Transport and
   the receiver decodes and replays the prefix once. *)
let encode_batch (prefix, suffixes) =
  String.concat "|" (to_string prefix :: List.map to_string suffixes)

let decode_batch s =
  match String.split_on_char '|' s with
  | [] | [ _ ] -> Error (Printf.sprintf "batch %S: missing suffix fields" s)
  | pre :: sufs -> (
    match of_string pre with
    | Error e -> Error e
    | Ok prefix ->
      let rec go acc = function
        | [] -> Ok (prefix, List.rev acc)
        | x :: rest -> (
          match of_string x with
          | Error e -> Error e
          | Ok suf -> go (suf :: acc) rest)
      in
      go [] sufs)

(* Re-expand a factored batch to full root paths, order-preserving. *)
let expand (prefix, suffixes) = List.map (fun s -> prefix @ s) suffixes

(* Analytic replay bound for a factored batch: the shared prefix is
   replayed once, each suffix once on top of it.  In choice-steps; the
   instruction-level cost is proportional when every choice costs the
   same number of instructions (exact for the straight-line targets the
   codec property tests use). *)
let replay_bound (prefix, suffixes) =
  List.fold_left (fun acc s -> acc + List.length s) (List.length prefix) suffixes
