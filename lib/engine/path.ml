(* Path encoding: the sequence of nondeterministic choices that leads from
   the execution-tree root to a node.  This is the currency of Cloud9's
   job transfer (paper section 3.2): a candidate node is shipped to
   another worker as its root path and "replayed" there.

   A choice records which successor was taken at a fork point:
   - [Branch b]: a symbolic conditional branch (or a checked operation such
     as division-by-zero, encoded as the "no fault" branch being [true]);
   - [Sched i]: the i-th runnable thread was scheduled;
   - [Sys i]: the i-th variant of a forking system call (fault injection,
     packet fragmentation, symbolic ioctls, ...). *)

type choice = Branch of bool | Sched of int | Sys of int

(* Root-first list of choices. *)
type t = choice list

let choice_to_string = function
  | Branch true -> "T"
  | Branch false -> "F"
  | Sched i -> Printf.sprintf "s%d" i
  | Sys i -> Printf.sprintf "y%d" i

let to_string p = String.concat "" (List.map choice_to_string p)

(* Inverse of [to_string]: the compact form is self-delimiting ('T'/'F'
   are single choices; 's'/'y' are followed by a decimal index), so a
   single left-to-right scan suffices.  This is the parsing half of the
   job/snapshot wire format: campaign checkpoints persist frontier nodes
   as these strings and restore must replay them exactly. *)
let of_string s =
  let n = String.length s in
  let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | 'T' -> go (i + 1) (Branch true :: acc)
      | 'F' -> go (i + 1) (Branch false :: acc)
      | ('s' | 'y') as c ->
        let stop = digits (i + 1) in
        if stop = i + 1 then
          Error (Printf.sprintf "path %S: '%c' at %d lacks its index" s c i)
        else (
          match int_of_string_opt (String.sub s (i + 1) (stop - i - 1)) with
          | None -> Error (Printf.sprintf "path %S: bad index at %d" s (i + 1))
          | Some k -> go stop ((if c = 's' then Sched k else Sys k) :: acc))
      | c -> Error (Printf.sprintf "path %S: unexpected %C at %d" s c i)
  in
  go 0 []

let compare_choice (a : choice) (b : choice) = compare a b

let compare (a : t) (b : t) = compare a b

(* [is_prefix p q] holds when [p] is a prefix of [q]. *)
let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | c1 :: p', c2 :: q' -> c1 = c2 && is_prefix p' q'

let length = List.length

(* Number of choices shared at the front of two paths. *)
let rec common_prefix_len p q =
  match (p, q) with
  | c1 :: p', c2 :: q' when c1 = c2 -> 1 + common_prefix_len p' q'
  | _ -> 0

(* Serialized size in bytes of a path when encoded one byte per choice
   (used by the transfer-encoding ablation bench). *)
let encoded_size p = List.length p
