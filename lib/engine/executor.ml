(* The symbolic executor: single-instruction stepping of execution states,
   forking at symbolic branches, scheduling decisions, and forking system
   calls.  This is the KLEE-analogue at the heart of each Cloud9 worker.

   Stepping is purely functional over {!State.t}: one step returns the set
   of successor states (one, or several on forks) plus any terminated
   states.  Every fork appends a {!Path.choice} to each successor's path,
   so a state's path uniquely addresses its node in the execution tree and
   serves as the transfer encoding for jobs. *)

module Imap = State.Imap
module Instr = Cvm.Instr
module Program = Cvm.Program
module Memory = Cvm.Memory
module E = Smt.Expr

(* Engine primitive system calls (paper Table 1 plus the symbolic-test
   primitives of Table 2 that the engine must implement itself). *)
module Sysno = struct
  let make_shared = 1
  let thread_create = 2
  let thread_terminate = 3
  let process_fork = 4
  let process_terminate = 5
  let get_context = 6
  let thread_preempt = 7
  let thread_sleep = 8
  let thread_notify = 9
  let get_wlist = 10
  let make_symbolic = 11
  let set_max_heap = 12
  let set_scheduler = 13
  let assume = 14

  (* numbers >= [model_base] go to the environment model's handler *)
  let model_base = 100
end

type stats = {
  mutable useful_instrs : int;   (* instructions retired while exploring *)
  mutable replay_instrs : int;   (* instructions retired while replaying jobs *)
  mutable forks : int;
  mutable terminated_paths : int;
  mutable covered_lines : int;
}

let make_stats () =
  { useful_instrs = 0; replay_instrs = 0; forks = 0; terminated_paths = 0; covered_lines = 0 }

type 'env sys_outcome =
  | Sys_ret of 'env State.t * E.t                (* return value; pc advances *)
  | Sys_block of 'env State.t * int              (* sleep on wait list; call retried on wake *)
  | Sys_choices of ('env State.t * E.t) list     (* fork; the i-th variant gets choice Sys i *)
  | Sys_err of 'env State.t * Errors.error

type 'env config = {
  solver : Smt.Solver.t;
  handler : 'env handler;
  coverage : Bytes.t;            (* shared line-coverage bit vector, 1 bit per line *)
  stats : stats;
  max_steps : int option;        (* per-path instruction cap (hang detector) *)
  check_div_zero : bool;
  global_alloc : int ref option; (* ablation: shared allocator that breaks replay *)
  preempt_interval : int option;
  (* instruction-level preemption (paper section 4.2: "automatically
     insert preemption calls at instruction level, as would be necessary
     when testing for race conditions"): every N instructions the
     scheduler runs, and under Fork_all / Context_bound policies that
     forks over the runnable threads *)
  concrete_inputs : (string * string) list option;
  (* test-case replay mode: make_symbolic writes these concrete bytes
     (matched by input name, in creation order for repeated names)
     instead of fresh symbols, so a generated test case re-executes its
     exact path concretely *)
  mutable inputs_consumed : int;
  use_incremental_pc : bool;
  (* answer branch queries from the state's incrementally-maintained
     normalized pc ([State.npc] + interval boxes) and fuse the two fork
     polarities into one solver entry; disabled only for the baseline leg
     of the solver microbenchmark *)
  obs : Obs.Sink.t option;
  (* observability sink scoped to the owning worker; [None] (the
     default) keeps the executor entirely unobserved — the only cost is
     one branch per fork, never per instruction *)
}

and 'env handler =
  'env config -> 'env State.t -> num:int -> dst:int -> args:E.t list -> 'env sys_outcome

let make_config ?(max_steps = None) ?(check_div_zero = true) ?(global_alloc = None)
    ?(preempt_interval = None) ?(concrete_inputs = None) ?(use_incremental_pc = true) ?obs
    ~solver ~handler ~nlines () =
  {
    solver;
    handler;
    coverage = Bytes.make ((nlines / 8) + 1) '\000';
    stats = make_stats ();
    max_steps;
    check_div_zero;
    global_alloc;
    preempt_interval;
    concrete_inputs;
    inputs_consumed = 0;
    use_incremental_pc;
    obs;
  }

let note_fork cfg (st : 'env State.t) ~arms =
  match cfg.obs with
  | None -> ()
  | Some s -> Obs.Sink.event s (Obs.Event.Fork { depth = st.State.depth; arms })

(* A handler for programs that make no environment calls. *)
let no_env_handler : unit handler =
 fun _config st ~num ~dst:_ ~args:_ ->
  Sys_err (st, Errors.Model_failure (Printf.sprintf "no handler for syscall %d" num))

(* --- coverage -------------------------------------------------------------- *)

let line_covered cfg line = Char.code (Bytes.get cfg.coverage (line / 8)) land (1 lsl (line mod 8)) <> 0

let cover cfg (st : 'env State.t) line =
  if line_covered cfg line then st
  else begin
    let b = Char.code (Bytes.get cfg.coverage (line / 8)) in
    Bytes.set cfg.coverage (line / 8) (Char.chr (b lor (1 lsl (line mod 8))));
    cfg.stats.covered_lines <- cfg.stats.covered_lines + 1;
    { st with State.last_new_cover = st.State.steps }
  end

let coverage_count cfg = cfg.stats.covered_lines

(* Merge an external coverage bit vector (e.g. the load balancer's global
   view) into this engine's; returns the updated covered-line count. *)
let merge_coverage cfg vec =
  let n = min (Bytes.length vec) (Bytes.length cfg.coverage) in
  let count = ref 0 in
  for i = 0 to Bytes.length cfg.coverage - 1 do
    let b =
      if i < n then Char.code (Bytes.get cfg.coverage i) lor Char.code (Bytes.get vec i)
      else Char.code (Bytes.get cfg.coverage i)
    in
    Bytes.set cfg.coverage i (Char.chr b);
    let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
    count := !count + popcount b 0
  done;
  cfg.stats.covered_lines <- !count;
  !count

(* --- step results ------------------------------------------------------------ *)

type 'env stepped = {
  running : 'env State.t list;
  finished : ('env State.t * Errors.termination) list;
}

let continue st = { running = [ st ]; finished = [] }
let finish st term = { running = []; finished = [ (st, term) ] }

(* --- concretization ------------------------------------------------------------ *)

exception Stuck of Errors.error

(* Force an expression to a single concrete value, constraining the path
   to it.  Sound (the value satisfies the path condition) but gives up
   completeness over other values, as in KLEE's external-call
   concretization. *)
let concretize cfg (st : 'env State.t) e =
  let e = Smt.Simplify.simplify (State.apply_subst st e) in
  match E.const_value e with
  | Some v -> (st, v)
  | None -> (
    (* deterministic model: replaying workers concretize identically.
       The normalized pc yields the same canonical constraint set as the
       raw pc (same members, already simplified) without the O(|pc|)
       re-simplification walk. *)
    let pc = if cfg.use_incremental_pc then st.State.npc else st.State.pc in
    match Smt.Solver.check_deterministic cfg.solver pc with
    | Smt.Solver.Unsat -> raise (Stuck (Errors.Invalid_op "path condition unsatisfiable"))
    | Smt.Solver.Sat m ->
      let v = Smt.Model.eval m e in
      (State.add_constraint st (E.eq e (E.const ~width:(E.width e) v)), v))

let concretize_addr cfg st e =
  let st, v = concretize cfg st e in
  (st, Int64.to_int v)

(* --- scheduling ------------------------------------------------------------------ *)

(* Pick the next thread(s) after a yield point.  Deterministic round-robin
   produces one successor and records no choice; the forking policies
   produce one successor per runnable thread, tagged [Sched i]. *)
let yield cfg (st : 'env State.t) : 'env stepped =
  let st = { st with State.since_sched = 0 } in
  let runnable = State.runnable_tids st in
  match runnable with
  | [] ->
    if State.live_threads st > 0 then finish st (Errors.Error Errors.Deadlock)
    else finish st (Errors.Exit st.State.exit_code)
  | [ tid ] -> continue { st with State.cur = tid }
  | tids -> (
    let round_robin () =
      (* first runnable tid strictly greater than cur, wrapping *)
      match List.find_opt (fun tid -> tid > st.State.cur) tids with
      | Some tid -> tid
      | None -> List.hd tids
    in
    match st.State.sched with
    | State.Round_robin -> continue { st with State.cur = round_robin () }
    | State.Fork_all ->
      cfg.stats.forks <- cfg.stats.forks + List.length tids - 1;
      note_fork cfg st ~arms:(List.length tids);
      {
        running =
          List.mapi
            (fun i tid -> State.push_choice { st with State.cur = tid } (Path.Sched i))
            tids;
        finished = [];
      }
    | State.Context_bound bound ->
      if st.State.preemptions >= bound then continue { st with State.cur = round_robin () }
      else begin
        let default = round_robin () in
        cfg.stats.forks <- cfg.stats.forks + List.length tids - 1;
        note_fork cfg st ~arms:(List.length tids);
        {
          running =
            List.mapi
              (fun i tid ->
                let st' =
                  if tid = default then st
                  else { st with State.preemptions = st.State.preemptions + 1 }
                in
                State.push_choice { st' with State.cur = tid } (Path.Sched i))
              tids;
          finished = [];
        }
      end)

(* --- allocation ------------------------------------------------------------------- *)

(* The global-counter mode deliberately recreates the broken-replay
   behaviour of a host-wide allocator (paper section 6): addresses then
   depend on allocations made by *other* states. *)
let alloc_update cfg (st : 'env State.t) ~pid ~size =
  let mem =
    match cfg.global_alloc with
    | None -> st.State.mem
    | Some counter -> Memory.set_next_addr st.State.mem !counter
  in
  let mem, base = Memory.alloc mem ~pid ~size in
  (match cfg.global_alloc with
  | Some counter -> counter := max !counter (Memory.next_addr mem)
  | None -> ());
  ({ st with State.mem }, base)

(* --- function calls ------------------------------------------------------------------ *)

let enter_function cfg (st : 'env State.t) ~callee ~args ~ret_reg =
  let f = Program.func_exn st.State.program callee in
  let th = State.current st in
  let pid = th.State.pid in
  let st, frame_base =
    if f.Program.frame_size > 0 then alloc_update cfg st ~pid ~size:f.Program.frame_size
    else (st, 0)
  in
  let th = State.current st in
  let frame =
    State.make_frame f ~frame_base ~args ~ret_reg ~ret_block:th.State.block
      ~ret_index:(th.State.index + 1)
  in
  State.update_thread st
    { th with State.frames = frame :: th.State.frames; block = 0; index = 0 }

(* Return from the current function; [value] fills the caller's
   destination register.  Returns [None] if the thread finished. *)
let leave_function (st : 'env State.t) ~value =
  let th = State.current st in
  match th.State.frames with
  | [] -> invalid_arg "leave_function: no frames"
  | frame :: rest -> (
    let st =
      if frame.State.frame_base <> 0 then
        { st with State.mem = Memory.free st.State.mem ~pid:th.State.pid ~addr:frame.State.frame_base }
      else st
    in
    match rest with
    | [] ->
      (* thread finished *)
      let st = State.update_thread st { th with State.frames = []; status = State.Exited } in
      let st =
        match (th.State.tid, value) with
        | 0, Some _ -> st (* exit code recorded by the caller of [step] below *)
        | _ -> st
      in
      `Thread_exit st
    | caller :: _ ->
      let caller =
        match (frame.State.ret_reg, value) with
        | Some r, Some v -> { caller with State.regs = Imap.add r v caller.State.regs }
        | _, _ -> caller
      in
      let st =
        State.update_thread st
          {
            th with
            State.frames = caller :: List.tl rest;
            block = frame.State.ret_block;
            index = frame.State.ret_index;
          }
      in
      `Returned st)

(* --- branching --------------------------------------------------------------------------- *)

let truth_expr c =
  if E.width c = 1 then Smt.Simplify.simplify c
  else Smt.Simplify.simplify (E.ne c (E.const ~width:(E.width c) 0L))

(* Fork on a boolean condition.  Returns which sides are feasible; when
   both are, the two successors get Branch choices and the path condition
   is extended. *)
let fork_on cfg (st : 'env State.t) cond ~on_true ~on_false : 'env stepped =
  let b = truth_expr cond in
  if E.is_true b then on_true st ~forked:false
  else if E.is_false b then on_false st ~forked:false
  else begin
    let t_ok, f_ok =
      if cfg.use_incremental_pc then
        (* one fused entry: shared simplify, interval boxes, and
           independence slice for both polarities *)
        Smt.Solver.fork_feasible cfg.solver ~npc:st.State.npc ?boxes:st.State.boxes b
      else
        let pc = st.State.pc in
        ( Smt.Solver.branch_feasible cfg.solver ~pc b,
          Smt.Solver.branch_feasible cfg.solver ~pc (E.not_ b) )
    in
    match (t_ok, f_ok) with
    | true, false -> on_true st ~forked:false
    | false, true -> on_false st ~forked:false
    | false, false -> finish st (Errors.Error (Errors.Invalid_op "infeasible path condition"))
    | true, true ->
      cfg.stats.forks <- cfg.stats.forks + 1;
      note_fork cfg st ~arms:2;
      let st_t = State.push_choice (State.add_constraint st b) (Path.Branch true) in
      let st_f = State.push_choice (State.add_constraint st (E.not_ b)) (Path.Branch false) in
      let r1 = on_true st_t ~forked:true in
      let r2 = on_false st_f ~forked:true in
      { running = r1.running @ r2.running; finished = r1.finished @ r2.finished }
  end

(* Resolve a possibly-symbolic address for an access of [len] bytes, in
   the KLEE style: find the object a model of the address points into,
   fork off an error path if the address can leave that object's bounds,
   then pin the address to the model value on the in-bounds path.  This
   keeps out-of-bounds accesses through symbolic indices detectable (e.g.
   a table lookup indexed by unvalidated input) while memory itself stays
   byte-granular and concrete-addressed. *)
let resolve_access cfg (st : 'env State.t) addr_e len ~(k : 'env State.t -> int -> 'env stepped) :
    'env stepped =
  let addr_e = Smt.Simplify.simplify (State.apply_subst st addr_e) in
  match E.const_value addr_e with
  | Some v -> k st (Int64.to_int v)
  | None -> (
    let pc = if cfg.use_incremental_pc then st.State.npc else st.State.pc in
    match Smt.Solver.check_deterministic cfg.solver pc with
    | Smt.Solver.Unsat -> finish st (Errors.Error (Errors.Invalid_op "path condition unsatisfiable"))
    | Smt.Solver.Sat m -> (
      let v = Int64.to_int (Smt.Model.eval m addr_e) in
      let pid = State.current_pid st in
      match Memory.containing_object st.State.mem ~pid ~addr:v with
      | None ->
        (* the model address hits no object: pin and let the access fault *)
        k (State.add_constraint st (E.eq addr_e (E.const ~width:64 (Int64.of_int v)))) v
      | Some (base, size) ->
        let c64 x = E.const ~width:64 (Int64.of_int x) in
        let in_bounds =
          E.and_ (E.ule (c64 base) addr_e) (E.ule (E.add addr_e (c64 len)) (c64 (base + size)))
        in
        fork_on cfg st in_bounds
          ~on_true:(fun st ~forked:_ ->
            k (State.add_constraint st (E.eq addr_e (c64 v))) v)
          ~on_false:(fun st ~forked:_ ->
            finish st
              (Errors.Error
                 (Errors.Memory_fault
                    (Printf.sprintf "symbolic pointer out of object bounds (object 0x%x+%d)" base
                       size))))))

(* --- engine primitives ---------------------------------------------------------------------- *)

let prim_make_symbolic cfg st args =
  match args with
  | [ addr_e; len_e; name_e ] ->
    let st, addr = concretize_addr cfg st addr_e in
    let st, len = concretize cfg st len_e in
    let st, name_addr = concretize_addr cfg st name_e in
    let name = Memory.read_cstring st.State.mem ~pid:(State.current_pid st) ~addr:name_addr in
    let pid = State.current_pid st in
    let bytes =
      (* replay mode: substitute the test case's concrete bytes *)
      match cfg.concrete_inputs with
      | None -> None
      | Some inputs -> (
        let nth = cfg.inputs_consumed in
        cfg.inputs_consumed <- nth + 1;
        match List.nth_opt inputs nth with
        | Some (iname, data) when iname = name -> Some data
        | Some _ | None -> List.assoc_opt name inputs)
    in
    (match bytes with
    | Some data ->
      let mem =
        List.fold_left
          (fun (mem, i) () ->
            let byte = if i < String.length data then Char.code data.[i] else 0 in
            (Memory.store mem ~pid ~addr:(addr + i) (E.const ~width:8 (Int64.of_int byte)), i + 1))
          (st.State.mem, 0)
          (List.init (Int64.to_int len) (fun _ -> ()))
        |> fst
      in
      Sys_ret ({ st with State.mem }, E.const ~width:64 0L)
    | None ->
      let st, syms = State.fresh_input st ~name ~count:(Int64.to_int len) in
      let mem =
        List.fold_left
          (fun (mem, i) s -> (Memory.store mem ~pid ~addr:(addr + i) s, i + 1))
          (st.State.mem, 0) syms
        |> fst
      in
      Sys_ret ({ st with State.mem }, E.const ~width:64 0L))
  | _ -> Sys_err (st, Errors.Model_failure "make_symbolic expects (addr, len, name)")

let prim_thread_create cfg st args =
  match args with
  | [ fname_e; arg_e ] ->
    let st, fname_addr = concretize_addr cfg st fname_e in
    let fname = Memory.read_cstring st.State.mem ~pid:(State.current_pid st) ~addr:fname_addr in
    (match Program.func st.State.program fname with
    | None -> Sys_err (st, Errors.Model_failure ("thread_create: unknown function " ^ fname))
    | Some f ->
      let pid = State.current_pid st in
      let st, frame_base =
        if f.Program.frame_size > 0 then alloc_update cfg st ~pid ~size:f.Program.frame_size
        else (st, 0)
      in
      let nargs = if f.Program.nparams >= 1 then [ arg_e ] else [] in
      let frame = State.make_frame f ~frame_base ~args:nargs ~ret_reg:None ~ret_block:0 ~ret_index:0 in
      let tid = st.State.next_tid in
      let thread =
        { State.tid; pid; frames = [ frame ]; block = 0; index = 0; status = State.Runnable }
      in
      let st =
        { st with State.next_tid = tid + 1; threads = Imap.add tid thread st.State.threads }
      in
      Sys_ret (st, E.const ~width:64 (Int64.of_int tid)))
  | _ -> Sys_err (st, Errors.Model_failure "thread_create expects (func_name, arg)")

let prim_process_fork (st : 'env State.t) =
  let th = State.current st in
  let child_pid = st.State.next_pid in
  let mem = Memory.clone_space st.State.mem ~parent:th.State.pid ~child:child_pid in
  let child_tid = st.State.next_tid in
  (* the child is a copy of the calling thread only, in the new space;
     it resumes after the fork call with return value 0 *)
  let child =
    { th with State.tid = child_tid; pid = child_pid; index = th.State.index + 1 }
  in
  let st =
    {
      st with
      State.mem;
      next_pid = child_pid + 1;
      next_tid = child_tid + 1;
      threads = Imap.add child_tid child st.State.threads;
    }
  in
  (* write 0 into the child's syscall destination register *)
  (st, child_tid, child_pid)

let prim_process_terminate cfg (st : 'env State.t) args =
  let code_e = match args with [ c ] -> c | _ -> E.const ~width:64 0L in
  let st, code = concretize cfg st code_e in
  let pid = State.current_pid st in
  let threads =
    Imap.map
      (fun th -> if th.State.pid = pid then { th with State.status = State.Exited } else th)
      st.State.threads
  in
  let st = { st with State.threads } in
  let st = if pid = 0 then { st with State.exit_code = code } else st in
  st

(* --- the step function ------------------------------------------------------------------------- *)

let record_instr cfg ~replay (st : 'env State.t) line =
  if replay then cfg.stats.replay_instrs <- cfg.stats.replay_instrs + 1
  else cfg.stats.useful_instrs <- cfg.stats.useful_instrs + 1;
  let st =
    { st with State.steps = st.State.steps + 1; since_sched = st.State.since_sched + 1 }
  in
  cover cfg st line

let rec step cfg ?(replay = false) (st : 'env State.t) : 'env stepped =
  match cfg.max_steps with
  | Some cap when st.State.steps >= cap -> finish st (Errors.Error Errors.Instruction_limit)
  | Some _ | None
    when (match cfg.preempt_interval with
         | Some k -> st.State.since_sched >= k && List.length (State.runnable_tids st) > 1
         | None -> false) ->
    (* instruction-level preemption point *)
    yield cfg st
  | Some _ | None -> (
    let instr = State.current_instr st in
    let st = record_instr cfg ~replay st instr.Instr.line in
    let ev = State.eval_operand st in
    try
      match instr.Instr.op with
      | Instr.Binop { dst; op; a; b } -> (
        let ea = ev a and eb = ev b in
        let compute st =
          let r = Smt.Simplify.simplify (E.binop op ea eb) in
          continue (State.advance (State.set_reg st dst r))
        in
        match op with
        | (E.Udiv | E.Urem | E.Sdiv | E.Srem) when cfg.check_div_zero ->
          let w = E.width eb in
          fork_on cfg st
            (E.ne eb (E.const ~width:w 0L))
            ~on_true:(fun st ~forked:_ -> compute st)
            ~on_false:(fun st ~forked:_ -> finish st (Errors.Error Errors.Division_by_zero))
        | _ -> compute st)
      | Instr.Unop { dst; op; a } ->
        let r = Smt.Simplify.simplify (E.unop op (ev a)) in
        continue (State.advance (State.set_reg st dst r))
      | Instr.Cast { dst; kind; a; width } ->
        let e = ev a in
        let r =
          match kind with
          | Instr.Zext -> E.zext e width
          | Instr.Sext -> E.sext e width
          | Instr.Trunc -> E.extract e ~off:0 ~len:width
        in
        continue (State.advance (State.set_reg st dst (Smt.Simplify.simplify r)))
      | Instr.Select { dst; cond; a; b } ->
        let c = truth_expr (ev cond) in
        let r = Smt.Simplify.simplify (E.ite c (ev a) (ev b)) in
        continue (State.advance (State.set_reg st dst r))
      | Instr.Mov { dst; a } -> continue (State.advance (State.set_reg st dst (ev a)))
      | Instr.Frame { dst; off } ->
        let th = State.current st in
        let base = (State.top_frame th).State.frame_base in
        if base = 0 then finish st (Errors.Error (Errors.Invalid_op "Frame in frameless function"))
        else
          continue
            (State.advance (State.set_reg st dst (E.const ~width:64 (Int64.of_int (base + off)))))
      | Instr.Load { dst; addr; len } ->
        resolve_access cfg st (ev addr) len ~k:(fun st a ->
            try
              let v = Memory.load st.State.mem ~pid:(State.current_pid st) ~addr:a ~len in
              continue (State.advance (State.set_reg st dst v))
            with Memory.Fault f ->
              finish st (Errors.Error (Errors.Memory_fault (Memory.fault_to_string f))))
      | Instr.Store { addr; value } ->
        let value = ev value in
        resolve_access cfg st (ev addr) (E.width value / 8) ~k:(fun st a ->
            try
              let mem = Memory.store st.State.mem ~pid:(State.current_pid st) ~addr:a value in
              continue (State.advance { st with State.mem })
            with Memory.Fault f ->
              finish st (Errors.Error (Errors.Memory_fault (Memory.fault_to_string f))))
      | Instr.Alloc { dst; size } ->
        let st, size = concretize cfg st (ev size) in
        let size = Int64.to_int size in
        let pid = State.current_pid st in
        let over_limit =
          match st.State.heap_limit with
          | Some lim -> Memory.footprint st.State.mem ~pid + size > lim
          | None -> false
        in
        if over_limit then
          (* symbolic low-memory condition: allocation fails with NULL *)
          continue (State.advance (State.set_reg st dst (E.const ~width:64 0L)))
        else begin
          let st, base = alloc_update cfg st ~pid ~size in
          continue (State.advance (State.set_reg st dst (E.const ~width:64 (Int64.of_int base))))
        end
      | Instr.Free { addr } -> (
        let st, a = concretize_addr cfg st (ev addr) in
        try continue (State.advance { st with State.mem = Memory.free st.State.mem ~pid:(State.current_pid st) ~addr:a })
        with Memory.Fault f ->
          finish st (Errors.Error (Errors.Memory_fault (Memory.fault_to_string f))))
      | Instr.Jmp l -> continue (State.goto st l)
      | Instr.Br { cond; then_; else_ } ->
        fork_on cfg st (ev cond)
          ~on_true:(fun st ~forked:_ -> continue (State.goto st then_))
          ~on_false:(fun st ~forked:_ -> continue (State.goto st else_))
      | Instr.Call { dst; func; args } ->
        continue (enter_function cfg st ~callee:func ~args:(List.map ev args) ~ret_reg:dst)
      | Instr.Ret value -> (
        let v = Option.map ev value in
        let th = State.current st in
        let is_main = th.State.tid = 0 && List.length th.State.frames = 1 in
        match leave_function st ~value:v with
        | `Returned st -> continue st
        | `Thread_exit st ->
          let st =
            if is_main then
              match v with
              | Some ve ->
                let st, code = concretize cfg st ve in
                { st with State.exit_code = code }
              | None -> st
            else st
          in
          yield cfg st)
      | Instr.Halt code ->
        let st, code = concretize cfg st (ev code) in
        finish st (Errors.Exit code)
      | Instr.Assert { cond; msg } ->
        fork_on cfg st (ev cond)
          ~on_true:(fun st ~forked:_ -> continue (State.advance st))
          ~on_false:(fun st ~forked:_ -> finish st (Errors.Error (Errors.Assert_failed msg)))
      | Instr.Syscall { dst; num; args } -> step_syscall cfg st ~dst ~num ~args:(List.map ev args)
    with
    | Stuck err -> finish st (Errors.Error err)
    | Memory.Fault f -> finish st (Errors.Error (Errors.Memory_fault (Memory.fault_to_string f))))

and step_syscall cfg (st : 'env State.t) ~dst ~num ~args : 'env stepped =
  (* Set the destination register, advance past the syscall, and yield if
     the model put the current thread to sleep or terminated it (e.g. the
     POSIX exit() model marks the process's threads Exited). *)
  let resume st v =
    let st = State.advance (State.set_reg st dst v) in
    if (State.current st).State.status = State.Runnable then continue st else yield cfg st
  in
  let ret st v = resume st v in
  let reti st v = ret st (E.const ~width:64 (Int64.of_int v)) in
  if num >= Sysno.model_base then
    match cfg.handler cfg st ~num ~dst ~args with
    | Sys_ret (st, v) -> resume st v
    | Sys_block (st, wl) ->
      (* go to sleep with the pc still pointing at the syscall: it will be
         re-executed when the thread wakes *)
      let th = State.current st in
      let st = State.update_thread st { th with State.status = State.Sleeping wl } in
      yield cfg st
    | Sys_choices variants ->
      cfg.stats.forks <- cfg.stats.forks + List.length variants - 1;
      if List.length variants > 1 then note_fork cfg st ~arms:(List.length variants);
      let stepped =
        List.mapi
          (fun i (st, v) ->
            let st = if List.length variants > 1 then State.push_choice st (Path.Sys i) else st in
            resume st v)
          variants
      in
      List.fold_left
        (fun acc r -> { running = acc.running @ r.running; finished = acc.finished @ r.finished })
        { running = []; finished = [] }
        stepped
    | Sys_err (st, e) -> finish st (Errors.Error e)
  else if num = Sysno.make_shared then begin
    match args with
    | [ addr_e ] ->
      let st, addr = concretize_addr cfg st addr_e in
      let mem = Memory.make_shared st.State.mem ~pid:(State.current_pid st) ~addr in
      reti { st with State.mem } 0
    | _ -> finish st (Errors.Error (Errors.Model_failure "make_shared expects (addr)"))
  end
  else if num = Sysno.thread_create then begin
    match prim_thread_create cfg st args with
    | Sys_ret (st, v) -> ret st v
    | Sys_err (st, e) -> finish st (Errors.Error e)
    | Sys_block _ | Sys_choices _ -> assert false
  end
  else if num = Sysno.thread_terminate then begin
    let th = State.current st in
    let st = State.update_thread st { th with State.status = State.Exited } in
    yield cfg st
  end
  else if num = Sysno.process_fork then begin
    let st, child_tid, child_pid = prim_process_fork st in
    (* parent returns the child pid; patch the child's copy of the
       destination register to 0 *)
    let child = State.thread_exn st child_tid in
    let child =
      match child.State.frames with
      | f :: rest ->
        { child with State.frames = { f with State.regs = Imap.add dst (E.const ~width:64 0L) f.State.regs } :: rest }
      | [] -> child
    in
    let st = State.update_thread st child in
    reti st child_pid
  end
  else if num = Sysno.process_terminate then yield cfg (prim_process_terminate cfg st args)
  else if num = Sysno.get_context then begin
    let th = State.current st in
    reti st ((th.State.pid lsl 16) lor th.State.tid)
  end
  else if num = Sysno.thread_preempt then begin
    let st = State.advance (State.set_reg st dst (E.const ~width:64 0L)) in
    yield cfg st
  end
  else if num = Sysno.thread_sleep then begin
    match args with
    | [ wl_e ] ->
      let st, wl = concretize cfg st wl_e in
      let st = State.advance (State.set_reg st dst (E.const ~width:64 0L)) in
      let th = State.current st in
      let st = State.update_thread st { th with State.status = State.Sleeping (Int64.to_int wl) } in
      yield cfg st
    | _ -> finish st (Errors.Error (Errors.Model_failure "thread_sleep expects (wlist)"))
  end
  else if num = Sysno.thread_notify then begin
    match args with
    | [ wl_e; all_e ] ->
      let st, wl = concretize cfg st wl_e in
      let st, all = concretize cfg st all_e in
      let sleepers = State.sleeping_on st (Int64.to_int wl) in
      let to_wake =
        if all <> 0L then sleepers
        else match sleepers with [] -> [] | tid :: _ -> [ tid ]
      in
      let st =
        List.fold_left
          (fun st tid ->
            State.update_thread st { (State.thread_exn st tid) with State.status = State.Runnable })
          st to_wake
      in
      reti st (List.length to_wake)
    | _ -> finish st (Errors.Error (Errors.Model_failure "thread_notify expects (wlist, all)"))
  end
  else if num = Sysno.get_wlist then begin
    let wl = st.State.next_wlist in
    reti { st with State.next_wlist = wl + 1 } wl
  end
  else if num = Sysno.make_symbolic then begin
    match prim_make_symbolic cfg st args with
    | Sys_ret (st, v) -> ret st v
    | Sys_err (st, e) -> finish st (Errors.Error e)
    | Sys_block _ | Sys_choices _ -> assert false
  end
  else if num = Sysno.set_max_heap then begin
    match args with
    | [ lim_e ] ->
      let st, lim = concretize cfg st lim_e in
      reti { st with State.heap_limit = Some (Int64.to_int lim) } 0
    | _ -> finish st (Errors.Error (Errors.Model_failure "set_max_heap expects (bytes)"))
  end
  else if num = Sysno.set_scheduler then begin
    match args with
    | [ pol_e ] ->
      let st, pol = concretize cfg st pol_e in
      let sched =
        match Int64.to_int pol with
        | 0 -> State.Round_robin
        | 1 -> State.Fork_all
        | n when n >= 100 -> State.Context_bound (n - 100)
        | _ -> State.Round_robin
      in
      reti { st with State.sched } 0
    | _ -> finish st (Errors.Error (Errors.Model_failure "set_scheduler expects (policy)"))
  end
  else if num = Sysno.assume then begin
    match args with
    | [ cond_e ] ->
      let b = truth_expr cond_e in
      let feasible =
        if cfg.use_incremental_pc then
          Smt.Solver.branch_feasible_norm cfg.solver ~npc:st.State.npc ?boxes:st.State.boxes b
        else Smt.Solver.branch_feasible cfg.solver ~pc:st.State.pc b
      in
      if feasible then reti (State.add_constraint st b) 0 else finish st Errors.Pruned
    | _ -> finish st (Errors.Error (Errors.Model_failure "assume expects (cond)"))
  end
  else finish st (Errors.Error (Errors.Model_failure (Printf.sprintf "unknown syscall %d" num)))
