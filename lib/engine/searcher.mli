(** Exploration strategies: which candidate state to execute next.

    All searchers share one interface and support removal by path (a
    state's path is its unique key), so an interleaved searcher can keep
    several orderings over the same state population. *)

type 'env t = {
  add : 'env State.t -> unit;
  select : unit -> 'env State.t option;  (** removes the selected state *)
  remove : Path.t -> unit;
  size : unit -> int;
  pending : unit -> int;
      (** Diagnostic: entries in the internal ordering structure, including
          stale ones awaiting compaction; equals [size] for searchers
          without lazy deletion.  Tests assert stale entries stay bounded
          relative to the live population. *)
}

val dfs : unit -> 'env t
val bfs : unit -> 'env t

(** KLEE's random-path strategy: walk the execution tree from the root,
    picking a uniformly random child at each node — deep subtrees do not
    dominate selection. *)
val random_path : rng:Random.State.t -> unit -> 'env t

(** Weighted random selection favoring states that recently covered new
    code (the coverage-optimized strategy of the paper's evaluation). *)
val coverage_optimized : rng:Random.State.t -> unit -> 'env t

(** Alternate between sub-strategies over one shared population. *)
val interleave : 'env t list -> 'env t

(** The paper's evaluation default: random-path + coverage-optimized. *)
val default : rng:Random.State.t -> unit -> 'env t

(** The strategy names {!of_name} accepts, in documentation order. *)
val names : string list

(** By name: "dfs", "bfs", "random-path", "cov-opt",
    "interleaved"/"default".
    @raise Invalid_argument on unknown names (the message lists the
    valid ones). *)
val of_name : rng:Random.State.t -> string -> 'env t
