(** A trie over execution-tree paths with subtree counts and uniform
    random-path descent — shared by the random-path searcher (alive-state
    population) and the cluster worker (frontier/fence containers). *)

type 'a t

val create : unit -> 'a t

(** Number of payloads stored. *)
val size : 'a t -> int

(** Insert (or replace) the payload at a path. *)
val add : 'a t -> Path.t -> 'a -> unit

(** Like {!add}, but returns [true] when a {e new} payload was created
    (replacing an existing one must not inflate ancestor counts). *)
val add_fresh : 'a t -> Path.t -> 'a -> bool

val find : 'a t -> Path.t -> 'a option

(** Returns [true] when a payload was removed. *)
val remove : 'a t -> Path.t -> bool

(** Random-path descent (KLEE's strategy): from the root, choose uniformly
    among the payload here and each nonempty child subtree. *)
val random_pick : Random.State.t -> 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** Nodes plus edges of the trie skeleton — the byte size of a preorder
    serialization with one structure byte per node and one per edge. *)
val structure_size : 'a t -> int
