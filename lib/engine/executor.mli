(** The symbolic executor: single-instruction stepping of execution
    states, forking at symbolic branches, scheduling decisions, and
    forking system calls — the KLEE-analogue at the heart of each worker.

    Stepping is purely functional over {!State.t}: one step returns the
    successor states (one, or several on forks) plus any terminated
    states.  Every fork appends a {!Path.choice} to each successor's
    path, so a state's path uniquely addresses its execution-tree node
    and serves as the job-transfer encoding. *)

(** Engine-primitive system call numbers (paper Table 1 plus the
    symbolic-test primitives of Table 2 the engine itself implements).
    Numbers at or above [model_base] dispatch to the environment model. *)
module Sysno : sig
  val make_shared : int
  val thread_create : int
  val thread_terminate : int
  val process_fork : int
  val process_terminate : int
  val get_context : int
  val thread_preempt : int
  val thread_sleep : int
  val thread_notify : int
  val get_wlist : int
  val make_symbolic : int
  val set_max_heap : int
  val set_scheduler : int
  val assume : int
  val model_base : int
end

type stats = {
  mutable useful_instrs : int;  (** instructions retired while exploring *)
  mutable replay_instrs : int;  (** instructions retired while replaying jobs *)
  mutable forks : int;
  mutable terminated_paths : int;
  mutable covered_lines : int;
}

val make_stats : unit -> stats

(** Outcome of an environment-model system call. *)
type 'env sys_outcome =
  | Sys_ret of 'env State.t * Smt.Expr.t
      (** return value; the engine advances past the syscall *)
  | Sys_block of 'env State.t * int
      (** sleep on the wait list; the call re-executes on wake *)
  | Sys_choices of ('env State.t * Smt.Expr.t) list
      (** fork; the i-th variant is recorded as choice [Sys i] *)
  | Sys_err of 'env State.t * Errors.error

type 'env config = {
  solver : Smt.Solver.t;
  handler : 'env handler;
  coverage : Bytes.t;  (** line-coverage bit vector shared by this engine *)
  stats : stats;
  max_steps : int option;  (** per-path instruction cap (hang detector) *)
  check_div_zero : bool;
  global_alloc : int ref option;
      (** ablation: shared allocator that breaks replay (paper section 6) *)
  preempt_interval : int option;
      (** instruction-level preemption (section 4.2): every N instructions
          the scheduler runs; under forking policies that explores thread
          interleavings at instruction granularity — race detection *)
  concrete_inputs : (string * string) list option;
      (** test-case replay mode: make_symbolic writes these concrete bytes
          instead of fresh symbols, so a generated test case re-executes
          its path concretely *)
  mutable inputs_consumed : int;
  use_incremental_pc : bool;
      (** answer branch queries from [State.npc] (incrementally normalized
          pc + interval boxes) via the fused {!Smt.Solver.fork_feasible};
          disable only for the baseline leg of benchmarks *)
  obs : Obs.Sink.t option;
      (** observability sink scoped to the owning worker; [None] keeps
          the executor unobserved at the cost of one branch per fork *)
}

and 'env handler =
  'env config -> 'env State.t -> num:int -> dst:int -> args:Smt.Expr.t list -> 'env sys_outcome

val make_config :
  ?max_steps:int option ->
  ?check_div_zero:bool ->
  ?global_alloc:int ref option ->
  ?preempt_interval:int option ->
  ?concrete_inputs:(string * string) list option ->
  ?use_incremental_pc:bool ->
  ?obs:Obs.Sink.t ->
  solver:Smt.Solver.t ->
  handler:'env handler ->
  nlines:int ->
  unit ->
  'env config

(** Handler for programs that make no environment calls. *)
val no_env_handler : unit handler

val line_covered : 'env config -> int -> bool
val coverage_count : 'env config -> int

(** OR an external coverage vector (e.g. the balancer's global view) into
    this engine's; returns the updated covered-line count. *)
val merge_coverage : 'env config -> Bytes.t -> int

type 'env stepped = {
  running : 'env State.t list;
  finished : ('env State.t * Errors.termination) list;
}

(** Force an expression to one concrete value, constraining the path to
    it.  Uses {!Smt.Solver.check_deterministic} so replaying workers
    concretize identically. *)
val concretize : 'env config -> 'env State.t -> Smt.Expr.t -> 'env State.t * int64

val concretize_addr : 'env config -> 'env State.t -> Smt.Expr.t -> 'env State.t * int

(** The engine primitive behind POSIX fork(): duplicate the address space
    and the calling thread.  Returns (state, child tid, child pid); the
    caller must set the child's return register. *)
val prim_process_fork : 'env State.t -> 'env State.t * int * int

(** Terminate every thread of the calling process, recording the exit
    code (args = [[code]]). *)
val prim_process_terminate : 'env config -> 'env State.t -> Smt.Expr.t list -> 'env State.t

(** Execute one instruction of the state's current thread.  [replay]
    routes the instruction count to the replay counter instead of the
    useful-work counter. *)
val step : 'env config -> ?replay:bool -> 'env State.t -> 'env stepped
