(** An execution state: one node's worth of program state in the symbolic
    execution tree.

    Everything is persistent, so cloning at a fork is O(1) and states
    never alias mutable data.  A state spans multiple processes (address
    spaces live in {!Cvm.Memory}) and threads under a cooperative
    scheduler (paper section 4.2).  The opaque ['env] slot carries the
    environment model's own state (e.g. the POSIX model's descriptor
    tables and stream buffers) and forks with the rest. *)

module Imap : Map.S with type key = int

type frame = {
  fname : string;
  regs : Smt.Expr.t Imap.t;
  frame_base : int;  (** address of the frame object; 0 when frameless *)
  ret_reg : int option;
  ret_block : int;
  ret_index : int;
}

type tstatus = Runnable | Sleeping of int (** wait-list id *) | Exited

type thread = {
  tid : int;
  pid : int;
  frames : frame list;  (** top of stack first *)
  block : int;
  index : int;
  status : tstatus;
}

type sched_policy =
  | Round_robin          (** deterministic *)
  | Fork_all             (** fork per runnable thread at yield points *)
  | Context_bound of int (** fork until the preemption budget is spent *)

type 'env t = {
  program : Cvm.Program.t;
  globals : (string * int) list;
  mem : Cvm.Memory.t;
  threads : thread Imap.t;
  cur : int;
  next_tid : int;
  next_pid : int;
  next_wlist : int;
  next_sym : int;
  pc : Smt.Expr.t list;  (** path condition, newest first *)
  npc : Smt.Expr.t list;
      (** normalized pc (members simplified, trivial truths dropped),
          maintained incrementally by {!add_constraint}; feeds
          {!Smt.Solver.fork_feasible}/{!Smt.Solver.branch_feasible_norm} *)
  boxes : Smt.Range.boxes option;
      (** interval facts of [npc], maintained by the same increments;
          [None] means "recompute on demand" *)
  subst : (Smt.Expr.t * Smt.Expr.t) list;
      (** pc-implied equalities applied when reading operands *)
  path : Path.choice list;  (** choices from the root, newest first *)
  sym_inputs : (string * int list) list;
      (** input name -> byte symbol ids, oldest input first *)
  steps : int;
  since_sched : int;  (** instructions since the last scheduling point *)
  preemptions : int;
  heap_limit : int option;
  sched : sched_policy;
  depth : int;
  last_new_cover : int;
  exit_code : int64;
  env : 'env;
}

(** Root-first path of this state (its node address in the tree). *)
val path : 'env t -> Path.t

val path_condition : 'env t -> Smt.Expr.t list

(** @raise Invalid_argument on unknown thread ids. *)
val thread_exn : 'env t -> int -> thread

val current : 'env t -> thread
val current_pid : 'env t -> int
val update_thread : 'env t -> thread -> 'env t

(** Runnable thread ids in increasing order. *)
val runnable_tids : 'env t -> int list

(** Threads not yet exited. *)
val live_threads : 'env t -> int

(** Wake every thread sleeping on the given wait list. *)
val wake_all : 'env t -> int -> 'env t

val sleeping_on : 'env t -> int -> int list
val top_frame : thread -> frame

(** Uninitialized registers read as 64-bit zero. *)
val get_reg : 'env t -> int -> Smt.Expr.t

val set_reg : 'env t -> int -> Smt.Expr.t -> 'env t
val current_instr : 'env t -> Cvm.Instr.t

(** Move to the next instruction of the current block. *)
val advance : 'env t -> 'env t

(** Jump to the start of a block. *)
val goto : 'env t -> int -> 'env t

val global_addr : 'env t -> string -> int

(** Rewrite an expression with the pc-implied equality substitution. *)
val apply_subst : 'env t -> Smt.Expr.t -> Smt.Expr.t

val eval_operand : 'env t -> Cvm.Instr.operand -> Smt.Expr.t

(** Create [count] fresh width-8 symbols with deterministic per-state ids
    (replay creates identical symbols) and record them as a named input. *)
val fresh_input : 'env t -> name:string -> count:int -> 'env t * Smt.Expr.t list

(** A fresh symbol not recorded as a test input. *)
val fresh_sym : 'env t -> name:string -> width:int -> 'env t * Smt.Expr.t

(** Conjoin a (simplified) constraint onto the path condition; equalities
    with constants additionally feed the substitution. *)
val add_constraint : 'env t -> Smt.Expr.t -> 'env t

(** Append a fork choice to the path. *)
val push_choice : 'env t -> Path.choice -> 'env t

val make_frame :
  Cvm.Program.func ->
  frame_base:int ->
  args:Smt.Expr.t list ->
  ret_reg:int option ->
  ret_block:int ->
  ret_index:int ->
  frame

(** Initial state: globals allocated in process 0, one thread at the
    entry function with the given argument expressions. *)
val init : Cvm.Program.t -> env:'env -> args:Smt.Expr.t list -> 'env t

val map_env : 'env t -> ('env -> 'env) -> 'env t
