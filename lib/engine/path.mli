(** Path encoding: the sequence of nondeterministic choices from the
    execution-tree root to a node — the currency of Cloud9's job transfer
    (paper section 3.2). *)

type choice =
  | Branch of bool  (** a symbolic conditional (or checked operation) *)
  | Sched of int    (** the i-th runnable thread was scheduled *)
  | Sys of int      (** the i-th variant of a forking system call *)

(** Root-first list of choices. *)
type t = choice list

val choice_to_string : choice -> string

(** Compact textual form, e.g. ["TFy2sT"]; unique per node. *)
val to_string : t -> string

(** Inverse of {!to_string} — the parsing half of the job/snapshot wire
    format used by campaign checkpoints.  [Error] names the offending
    offset. *)
val of_string : string -> (t, string) result

val compare_choice : choice -> choice -> int
val compare : t -> t -> int

(** [is_prefix p q]: [p] is a prefix of [q] (i.e. [q] is in [p]'s subtree). *)
val is_prefix : t -> t -> bool

val length : t -> int

(** Number of choices shared at the front of two paths. *)
val common_prefix_len : t -> t -> int

(** Serialized size in bytes at one byte per choice. *)
val encoded_size : t -> int
