(** Path encoding: the sequence of nondeterministic choices from the
    execution-tree root to a node — the currency of Cloud9's job transfer
    (paper section 3.2). *)

type choice =
  | Branch of bool  (** a symbolic conditional (or checked operation) *)
  | Sched of int    (** the i-th runnable thread was scheduled *)
  | Sys of int      (** the i-th variant of a forking system call *)

(** Root-first list of choices. *)
type t = choice list

val choice_to_string : choice -> string

(** Compact textual form, e.g. ["TFy2sT"]; unique per node. *)
val to_string : t -> string

(** Inverse of {!to_string} — the parsing half of the job/snapshot wire
    format used by campaign checkpoints.  [Error] names the offending
    offset. *)
val of_string : string -> (t, string) result

val compare_choice : choice -> choice -> int
val compare : t -> t -> int

(** [is_prefix p q]: [p] is a prefix of [q] (i.e. [q] is in [p]'s subtree). *)
val is_prefix : t -> t -> bool

val length : t -> int

(** Number of choices shared at the front of two paths. *)
val common_prefix_len : t -> t -> int

(** Serialized size in bytes at one byte per choice. *)
val encoded_size : t -> int

(** Longest common prefix of two paths. *)
val common_prefix : t -> t -> t

(** [strip_prefix pre p] is [Some suffix] with [p = pre @ suffix], or
    [None] when [pre] is not a prefix of [p]. *)
val strip_prefix : t -> t -> t option

(** Factor a batch into the longest common prefix of all members plus
    order-preserving per-member suffixes: [factor ps = (prefix, sufs)]
    with [List.map (fun s -> prefix @ s) sufs = ps].  [[]] factors as
    [([], [])]; a singleton as [(p, [[]])]. *)
val factor : t list -> t * t list

(** Compact wire form of a factored batch: ["prefix|s1|...|sN"], each
    field in {!to_string} form.  The unit of job transfer under prefix
    handoff — the thief replays [prefix] once and forks each suffix
    from the cached prefix state. *)
val encode_batch : t * t list -> string

(** Inverse of {!encode_batch}; [Error] names the malformed field. *)
val decode_batch : string -> (t * t list, string) result

(** Re-expand a factored batch to full root paths, order-preserving. *)
val expand : t * t list -> t list

(** Analytic replay cost of a factored batch in choice-steps: the prefix
    once plus each suffix once ([|prefix| + Σ|si|]); the codec property
    suite checks replayed instruction counts against it. *)
val replay_bound : t * t list -> int
