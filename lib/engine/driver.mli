(** Single-node exploration driver — the classic KLEE loop.  A "1-worker
    Cloud9" runs this; it is also the baseline all cluster experiments
    compare against. *)

type goal =
  | Exhaust              (** explore every path *)
  | Coverage of float    (** stop at this fraction of coverable lines *)
  | Instructions of int  (** stop after this many retired instructions *)
  | Paths of int         (** stop after this many completed paths *)

type 'env result = {
  tests : Testcase.t list;  (** newest first; bounded by [collect_tests] *)
  paths_explored : int;
  pruned_paths : int;
  exhausted : bool;
  coverage : float;  (** fraction of coverable lines covered *)
  instructions : int;
  errors : int;
  solver_stats : Smt.Solver.stats;
      (** snapshot of this run's solver counters (see {!Smt.Solver.stats}) *)
  inc_stats : Smt.Solver.inc_stats;
      (** incremental-solving counters (all zero when the solver was
          created with [~use_incremental:false]) *)
}

val coverage_fraction : 'env Executor.config -> Cvm.Program.t -> float

(** Explore from [st0] until the goal is met or the tree is exhausted.
    [collect_tests] bounds how many test cases are materialized (solving
    for inputs is the expensive part); path counting is unaffected. *)
val run :
  ?collect_tests:int ->
  ?goal:goal ->
  'env Executor.config ->
  'env Searcher.t ->
  'env State.t ->
  'env result

(** Convenience wrapper for programs needing no environment model. *)
val run_pure :
  ?collect_tests:int ->
  ?goal:goal ->
  ?max_steps:int ->
  searcher:unit Searcher.t ->
  Cvm.Program.t ->
  args:Smt.Expr.t list ->
  unit Executor.config * unit result
