(** Structured trace events emitted by the engine, solver and cluster
    layers.  Tick and worker id are attached by {!Trace}/{!Sink}; the
    payloads carry only event-specific fields. *)

(** Pseudo-worker id of unattributed (driver / load-balancer) events. *)
val lb : int

type solver_tier =
  | Trivial      (** answered by normalization alone *)
  | Range        (** answered by interval analysis *)
  | Sat_cache    (** satisfiability-cache hit *)
  | Cex_cache    (** cached-model probe hit *)
  | Det_cache    (** deterministic-model cache hit *)
  | Sat_call     (** full bit-blast + SAT run *)

val tier_to_string : solver_tier -> string

type replay_outcome =
  | Landed        (** the target node materialized *)
  | Broken        (** the expected successor did not exist *)
  | Snapshot_hit  (** an exact snapshot made the replay free *)

val replay_outcome_to_string : replay_outcome -> string

type t =
  | Fork of { depth : int; arms : int }
  | Path_done of { verdict : string }  (** "exit" | "error" | "pruned" *)
  | Solver_query of { kind : string; tier : solver_tier; sat : bool }
  | Replay_start of { depth : int; recovery : bool }
  | Replay_end of { outcome : replay_outcome; recovery : bool }
  | Fence_created of { depth : int }
  | Candidate_added of { depth : int; virt : bool }
  | Job_transfer of { lease : int; src : int; dst : int; count : int; recovery : bool }
  | Transfer_request of { src : int; dst : int; count : int }
  | Lease_grant of { lease : int; dst : int; jobs : int; recovery : bool }
  | Lease_ack of { lease : int }
  | Lease_release of { lease : int; dst : int }
  | Lease_retransmit of { lease : int; dst : int; attempt : int }
  | Lease_evict of { lease : int; dst : int }
  | Crash of { worker : int }
  | Rejoin of { worker : int }
  | Join of { worker : int }
  | Mark of string

val name : t -> string

(** Event-specific fields as JSON object members. *)
val args : t -> (string * Json.t) list
