(* Per-campaign progress estimation for the telemetry plane.

   A long-running campaign advances in scheduler slices; raw cumulative
   counters (paths, instructions) say nothing about whether it is still
   *converging*.  This estimator turns the per-slice observation stream
   into rate signals: an EWMA of coverage gained per slice (the velocity
   the load balancer of the paper steers by), the frontier's size and
   depth distribution, the replay and solver share of the work done, and
   a bounded-confidence ETA.

   The ETA deliberately refuses to extrapolate from thin evidence: with
   fewer than [min_slices] observations, or with a velocity at zero, it
   answers [None] rather than a number that would whipsaw the operator.
   This module is deliberately free of service/engine types — callers
   feed plain numbers — so the estimator is testable in isolation and
   reusable by any runtime that advances in slices. *)

type slice = {
  sl_coverage : float;      (* cumulative coverage fraction after the slice *)
  sl_useful : int;          (* useful instructions retired by the slice *)
  sl_replay : int;          (* replay instructions paid by the slice *)
  sl_solver_queries : int;  (* solver queries issued by the slice *)
  sl_frontier_depths : int list; (* depth of each frontier node at the barrier *)
  sl_crashes : int;         (* worker crashes observed during the slice *)
  sl_retransmits : int;     (* job-batch retransmits during the slice *)
}

(* Depth histogram buckets: power-of-two upper bounds keep the histogram
   small for six-figure frontiers while preserving the shape. *)
let depth_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 |]

type t = {
  alpha : float;            (* EWMA smoothing factor in (0, 1] *)
  min_slices : int;         (* ETA confidence floor *)
  mutable slices : int;     (* observations folded in *)
  mutable coverage : float; (* latest cumulative coverage fraction *)
  mutable velocity : float; (* EWMA of per-slice coverage delta *)
  mutable since_gain : int; (* slices since coverage last increased *)
  mutable useful : int;     (* cumulative across observed slices *)
  mutable replay : int;
  mutable solver_queries : int;
  mutable fault_rate : float; (* EWMA of (crashes + retransmits) per slice *)
  mutable frontier_size : int;
  mutable depth_counts : int array; (* length = depth_bounds + 1 (+inf) *)
  mutable depth_max : int;
  mutable depth_sum : int;  (* over the latest frontier, for the mean *)
}

let create ?(alpha = 0.3) ?(min_slices = 3) ?(initial_coverage = 0.0) () =
  if not (alpha > 0.0 && alpha <= 1.0) then invalid_arg "Progress.create: alpha not in (0,1]";
  {
    alpha;
    min_slices = max 1 min_slices;
    slices = 0;
    coverage = initial_coverage;
    velocity = 0.0;
    since_gain = 0;
    useful = 0;
    replay = 0;
    solver_queries = 0;
    fault_rate = 0.0;
    frontier_size = 0;
    depth_counts = Array.make (Array.length depth_bounds + 1) 0;
    depth_max = 0;
    depth_sum = 0;
  }

let min_slices t = t.min_slices

(* EWMA with warm start: the first sample becomes the estimate (an
   initial 0 would take 1/alpha slices to forget). *)
let ewma t prev x = if t.slices = 1 then x else (t.alpha *. x) +. ((1.0 -. t.alpha) *. prev)

let observe t (s : slice) =
  t.slices <- t.slices + 1;
  let gain = Float.max 0.0 (s.sl_coverage -. t.coverage) in
  t.velocity <- ewma t t.velocity gain;
  t.since_gain <- (if gain > 0.0 then 0 else t.since_gain + 1);
  t.coverage <- Float.max t.coverage s.sl_coverage;
  t.useful <- t.useful + s.sl_useful;
  t.replay <- t.replay + s.sl_replay;
  t.solver_queries <- t.solver_queries + s.sl_solver_queries;
  t.fault_rate <- ewma t t.fault_rate (float_of_int (s.sl_crashes + s.sl_retransmits));
  (* the frontier is a state, not a rate: each barrier replaces it *)
  let counts = Array.make (Array.length depth_bounds + 1) 0 in
  let size = ref 0 and dmax = ref 0 and dsum = ref 0 in
  List.iter
    (fun d ->
      incr size;
      dmax := max !dmax d;
      dsum := !dsum + d;
      let rec slot i =
        if i >= Array.length depth_bounds || d <= depth_bounds.(i) then i else slot (i + 1)
      in
      let i = slot 0 in
      counts.(i) <- counts.(i) + 1)
    s.sl_frontier_depths;
  t.depth_counts <- counts;
  t.frontier_size <- !size;
  t.depth_max <- !dmax;
  t.depth_sum <- !dsum

(* --- accessors --------------------------------------------------------- *)

let slices t = t.slices
let coverage t = t.coverage
let coverage_velocity t = t.velocity
let slices_since_gain t = t.since_gain
let fault_rate t = t.fault_rate
let frontier_size t = t.frontier_size
let depth_max t = t.depth_max
let depth_mean t =
  if t.frontier_size = 0 then 0.0 else float_of_int t.depth_sum /. float_of_int t.frontier_size

let depth_histogram t =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let bound =
           if i < Array.length depth_bounds then Some depth_bounds.(i) else None
         in
         (bound, c))
       t.depth_counts)

let share part total = if total = 0 then 0.0 else float_of_int part /. float_of_int total

(* Replay instructions as a share of all instructions retired. *)
let replay_share t = share t.replay (t.useful + t.replay)

(* Solver queries per useful instruction: the "how solver-bound is this
   campaign" signal (queries and instructions are different units, so
   this is a rate, not a partition of a whole). *)
let solver_rate t = if t.useful = 0 then 0.0 else float_of_int t.solver_queries /. float_of_int t.useful

(* Bounded-confidence ETA, in slices, to reach [target] coverage.
   [None] until [min_slices] observations have accumulated AND the
   velocity is meaningfully positive — an estimator that divides by a
   near-zero velocity produces garbage with great precision. *)
let eta_slices ?(target = 1.0) t =
  if t.slices < t.min_slices then None
  else if t.coverage >= target then Some 0
  else if t.velocity <= 1e-9 then None
  else Some (int_of_float (Float.ceil ((target -. t.coverage) /. t.velocity)))

(* --- export ------------------------------------------------------------ *)

let to_json t =
  let depth_buckets =
    List.map
      (fun (bound, c) ->
        Json.Obj
          [
            ("le", match bound with Some b -> Json.Num (float_of_int b) | None -> Json.Null);
            ("count", Json.Num (float_of_int c));
          ])
      (depth_histogram t)
  in
  Json.Obj
    [
      ("slices", Json.Num (float_of_int t.slices));
      ("coverage", Json.Num t.coverage);
      ("velocity", Json.Num t.velocity);
      ("slices_since_gain", Json.Num (float_of_int t.since_gain));
      ("useful", Json.Num (float_of_int t.useful));
      ("replay", Json.Num (float_of_int t.replay));
      ("replay_share", Json.Num (replay_share t));
      ("solver_queries", Json.Num (float_of_int t.solver_queries));
      ("solver_rate", Json.Num (solver_rate t));
      ("fault_rate", Json.Num t.fault_rate);
      ("frontier", Json.Num (float_of_int t.frontier_size));
      ("depth_mean", Json.Num (depth_mean t));
      ("depth_max", Json.Num (float_of_int t.depth_max));
      ("depth_histogram", Json.Arr depth_buckets);
      ( "eta_slices",
        match eta_slices t with Some n -> Json.Num (float_of_int n) | None -> Json.Null );
    ]
