(* Structured trace events.  One variant per observable transition in the
   engine, solver and cluster layers; every event is recorded with the
   virtual tick and the worker id of the sink that emitted it (see
   {!Trace} and {!Sink}), so the payloads carry only event-specific
   fields.  [lb] is the pseudo-worker id of unattributed/driver-side
   events, matching {!Cluster.Faultplan.lb}. *)

let lb = -1

type solver_tier =
  | Trivial     (* answered by normalization alone *)
  | Range       (* answered by interval analysis *)
  | Sat_cache   (* satisfiability-cache hit *)
  | Cex_cache   (* cached-model probe hit *)
  | Det_cache   (* deterministic-model cache hit *)
  | Sat_call    (* full bit-blast + SAT run *)

let tier_to_string = function
  | Trivial -> "trivial"
  | Range -> "range"
  | Sat_cache -> "sat_cache"
  | Cex_cache -> "cex_cache"
  | Det_cache -> "det_cache"
  | Sat_call -> "sat_call"

type replay_outcome =
  | Landed        (* the target node materialized *)
  | Broken        (* the expected successor did not exist *)
  | Snapshot_hit  (* an exact snapshot made the replay free *)

let replay_outcome_to_string = function
  | Landed -> "landed"
  | Broken -> "broken"
  | Snapshot_hit -> "snapshot"

type t =
  (* engine *)
  | Fork of { depth : int; arms : int }
  | Path_done of { verdict : string } (* "exit" | "error" | "pruned" *)
  (* solver *)
  | Solver_query of { kind : string; tier : solver_tier; sat : bool }
  (* worker node life cycle *)
  | Replay_start of { depth : int; recovery : bool }
  | Replay_end of { outcome : replay_outcome; recovery : bool }
  | Fence_created of { depth : int }
  | Candidate_added of { depth : int; virt : bool }
  (* cluster control plane *)
  | Job_transfer of { lease : int; src : int; dst : int; count : int; recovery : bool }
  | Transfer_request of { src : int; dst : int; count : int }
  | Lease_grant of { lease : int; dst : int; jobs : int; recovery : bool }
  | Lease_ack of { lease : int }
  | Lease_release of { lease : int; dst : int }
  | Lease_retransmit of { lease : int; dst : int; attempt : int }
  | Lease_evict of { lease : int; dst : int }
  | Crash of { worker : int }
  | Rejoin of { worker : int }
  | Join of { worker : int }
  (* free-form annotation *)
  | Mark of string

let name = function
  | Fork _ -> "fork"
  | Path_done _ -> "path_done"
  | Solver_query _ -> "solver_query"
  | Replay_start _ -> "replay_start"
  | Replay_end _ -> "replay_end"
  | Fence_created _ -> "fence"
  | Candidate_added _ -> "candidate"
  | Job_transfer _ -> "job_transfer"
  | Transfer_request _ -> "transfer_request"
  | Lease_grant _ -> "lease_grant"
  | Lease_ack _ -> "lease_ack"
  | Lease_release _ -> "lease_release"
  | Lease_retransmit _ -> "lease_retransmit"
  | Lease_evict _ -> "lease_evict"
  | Crash _ -> "crash"
  | Rejoin _ -> "rejoin"
  | Join _ -> "join"
  | Mark _ -> "mark"

let num n = Json.Num (float_of_int n)

let args = function
  | Fork { depth; arms } -> [ ("depth", num depth); ("arms", num arms) ]
  | Path_done { verdict } -> [ ("verdict", Json.Str verdict) ]
  | Solver_query { kind; tier; sat } ->
    [ ("kind", Json.Str kind); ("tier", Json.Str (tier_to_string tier)); ("sat", Json.Bool sat) ]
  | Replay_start { depth; recovery } -> [ ("depth", num depth); ("recovery", Json.Bool recovery) ]
  | Replay_end { outcome; recovery } ->
    [ ("outcome", Json.Str (replay_outcome_to_string outcome)); ("recovery", Json.Bool recovery) ]
  | Fence_created { depth } -> [ ("depth", num depth) ]
  | Candidate_added { depth; virt } -> [ ("depth", num depth); ("virtual", Json.Bool virt) ]
  | Job_transfer { lease; src; dst; count; recovery } ->
    [
      ("lease", num lease);
      ("src", num src);
      ("dst", num dst);
      ("count", num count);
      ("recovery", Json.Bool recovery);
    ]
  | Transfer_request { src; dst; count } ->
    [ ("src", num src); ("dst", num dst); ("count", num count) ]
  | Lease_grant { lease; dst; jobs; recovery } ->
    [ ("lease", num lease); ("dst", num dst); ("jobs", num jobs); ("recovery", Json.Bool recovery) ]
  | Lease_ack { lease } -> [ ("lease", num lease) ]
  | Lease_release { lease; dst } -> [ ("lease", num lease); ("dst", num dst) ]
  | Lease_retransmit { lease; dst; attempt } ->
    [ ("lease", num lease); ("dst", num dst); ("attempt", num attempt) ]
  | Lease_evict { lease; dst } -> [ ("lease", num lease); ("dst", num dst) ]
  | Crash { worker } -> [ ("worker", num worker) ]
  | Rejoin { worker } -> [ ("worker", num worker) ]
  | Join { worker } -> [ ("worker", num worker) ]
  | Mark m -> [ ("text", Json.Str m) ]
