(** The wall clock behind the profiling layer — the only module in lib/
    that reads host time.  Lib code takes timestamps through here so the
    simulated driver can stay on its virtual tick clock. *)

(** Wall-clock nanoseconds since the Unix epoch.  Reads are not forced
    monotonic (no shared Atomic — that would serialize every probe on
    one cache line); consumers must clamp negative differences to 0. *)
val now_ns : unit -> int

(** The simulated driver's time base: nanoseconds of trace time per
    virtual tick (1 tick = 10ms).  Both halves of the dual time-base
    Chrome exporter derive their microsecond axis from this. *)
val tick_ns : int
