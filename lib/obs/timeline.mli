(** Per-worker timelines: utilization (useful / replay / idle
    instructions), frontier depth and solver activity, aggregated into
    fixed-width tick buckets.

    [observe] takes *cumulative* counters and computes deltas
    internally; a decrease is treated as a counter reset (a rejoined
    worker restarts its engine from zero), so totals stay exact across
    crash/rejoin cycles. *)

type row = {
  b_worker : int;
  b_start : int;       (** bucket start tick *)
  b_useful : int;
  b_replay : int;
  b_idle : int;
  b_depth : int;       (** mean frontier depth over the bucket's samples *)
  b_queries : int;
  b_sat_calls : int;
}

type totals = {
  t_useful : int;
  t_replay : int;
  t_idle : int;
  t_queries : int;
  t_sat_calls : int;
}

type t

val create : ?bucket_ticks:int -> unit -> t

val observe :
  t ->
  tick:int ->
  worker:int ->
  useful:int ->
  replay:int ->
  idle:int ->
  depth:int ->
  queries:int ->
  sat_calls:int ->
  unit

(** Close the open bucket so its data appears in [rows]. *)
val flush : t -> unit

(** Flushed rows, oldest bucket first, workers ascending within a
    bucket. *)
val rows : t -> row list

(** Per-worker cumulative totals, worker id ascending. *)
val totals : t -> (int * totals) list

val workers : t -> int list
