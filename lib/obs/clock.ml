(* The wall clock behind the profiling layer.

   This is the only place in lib/ that reads the host's time: everything
   else (Profile, Sink, the cluster runtime) calls [now_ns], so the
   simulated driver can keep its virtual tick clock and only the true
   multicore runtime pays for real timestamps.

   [now_ns] is gettimeofday scaled to integer nanoseconds.  Nanoseconds
   since the epoch fit comfortably in OCaml's 63-bit int (~1.8e18 ns
   capacity vs ~1.8e18 ns elapsed around year 2026 — headroom until
   2262 with Int64-width ints, and we only ever subtract nearby
   timestamps).  We deliberately do NOT funnel reads through a shared
   Atomic to enforce monotonicity: that would put a contended cache line
   on every probe from every domain — a profiler-induced scalability
   bug worse than the clock skew it hides.  Instead, consumers clamp
   negative durations to zero at record time (see Profile.record). *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* The simulated driver's time base: one virtual tick is 10ms of trace
   time.  Shared by the tick-mapped and real-nanosecond halves of the
   Chrome trace exporter (Sink.chrome_events), so both land on the same
   microsecond axis. *)
let tick_ns = 10_000_000
