(** Per-campaign progress estimation for the telemetry plane.

    Folds the per-slice observation stream of a campaign into rate
    signals: EWMA coverage velocity, frontier size and depth histogram,
    replay/solver work share, a fault-rate EWMA, and a
    bounded-confidence ETA that refuses to extrapolate from fewer than
    [min_slices] observations or from a zero velocity.  Pure numbers in,
    pure numbers out — no service or engine types. *)

type t

(** One scheduler slice worth of observations. *)
type slice = {
  sl_coverage : float;  (** cumulative coverage fraction after the slice *)
  sl_useful : int;  (** useful instructions retired by the slice *)
  sl_replay : int;  (** replay instructions paid by the slice *)
  sl_solver_queries : int;  (** solver queries issued by the slice *)
  sl_frontier_depths : int list;  (** depth of each frontier node at the barrier *)
  sl_crashes : int;  (** worker crashes observed during the slice *)
  sl_retransmits : int;  (** job-batch retransmits during the slice *)
}

(** [create ()] builds an estimator.  [alpha] is the EWMA smoothing
    factor in (0,1] (default 0.3); [min_slices] the ETA confidence floor
    (default 3, clamped to >= 1); [initial_coverage] seeds the coverage
    baseline for resumed campaigns so the first slice's gain is not the
    whole history.
    @raise Invalid_argument if [alpha] is outside (0,1]. *)
val create : ?alpha:float -> ?min_slices:int -> ?initial_coverage:float -> unit -> t

val observe : t -> slice -> unit

val slices : t -> int
val min_slices : t -> int

(** Latest cumulative coverage fraction (monotone). *)
val coverage : t -> float

(** EWMA of per-slice coverage gain. *)
val coverage_velocity : t -> float

(** Consecutive slices without a coverage gain — the stall signal. *)
val slices_since_gain : t -> int

(** EWMA of (crashes + retransmits) per slice — the degraded signal. *)
val fault_rate : t -> float

val frontier_size : t -> int
val depth_max : t -> int
val depth_mean : t -> float

(** Buckets as [(upper_bound, count)]; [None] is the +inf bucket.
    Bounds are powers of two up to 512. *)
val depth_histogram : t -> (int option * int) list

(** Replay instructions over all instructions retired, in [0,1]. *)
val replay_share : t -> float

(** Solver queries per useful instruction. *)
val solver_rate : t -> float

(** ETA in slices to reach [target] coverage (default 1.0).  [None]
    below the [min_slices] confidence floor or when velocity is
    effectively zero; [Some 0] once the target is reached. *)
val eta_slices : ?target:float -> t -> int option

val to_json : t -> Json.t
