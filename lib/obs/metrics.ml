(* The metrics registry: named counters, gauges and fixed-bucket
   histograms, optionally labeled (a labeled family is the same name
   registered under several label sets, e.g. solver_queries{tier=...}).

   Hot-path cost is the design constraint: incrementing a counter is a
   single mutable-field update on a handle resolved once at component
   construction, so instrumented code never pays a lookup per event.
   Registry lookups happen only at registration and export time.

   Snapshots are immutable copies supporting [diff]: counters and
   histogram buckets subtract (rate over an interval), gauges keep the
   newer sample. *)

type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array; (* upper bounds, ascending; implicit +inf last *)
  counts : int array;   (* length = Array.length bounds + 1 *)
  mutable hsum : float;
  mutable hcount : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, instrument) Hashtbl.t; (* key = name + rendered labels *)
  mutable order : (string * labels * instrument) list; (* newest first *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let render_key name labels =
  match labels with
  | [] -> name
  | _ ->
    let ordered = List.sort compare labels in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ordered)
    ^ "}"

let register t name labels make match_existing =
  let key = render_key name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some existing -> (
    match match_existing existing with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Metrics: %s re-registered with another type" key))
  | None ->
    let x, instr = make () in
    Hashtbl.replace t.tbl key instr;
    t.order <- (name, labels, instr) :: t.order;
    x

let counter t ?(labels = []) name =
  register t name labels
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t ?(labels = []) name =
  register t name labels
    (fun () ->
      let g = { g = 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let default_buckets = [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]

(* Exponential (x2) bounds for wall-clock latencies in nanoseconds:
   100ns .. ~6.7s in 27 buckets.  Every latency_ns histogram in the
   profiling layer uses these, so cross-registry merges and the
   hand-rolled Atomic bucket array in Smt.Expr line up bucket-for-
   bucket. *)
let latency_ns_buckets = Array.init 27 (fun i -> 100.0 *. Float.of_int (1 lsl i))

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  register t name labels
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          hsum = 0.0;
          hcount = 0;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* --- hot-path updates -------------------------------------------------- *)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let observe h v =
  let rec slot i = if i >= Array.length h.bounds || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.hsum <- h.hsum +. v;
  h.hcount <- h.hcount + 1

(* Merge [src]'s instruments into [into]: counters and histogram buckets
   add, gauges take [src]'s sample.  Instruments missing from [into] are
   registered on the fly (in [src]'s registration order), so a private
   per-domain registry folds losslessly into the shared one. *)
let merge_into ~into src =
  List.iter
    (fun (name, labels, instr) ->
      match instr with
      | Counter c -> add (counter into ~labels name) c.c
      | Gauge g -> set (gauge into ~labels name) g.g
      | Histogram h ->
        let dh = histogram into ~labels ~buckets:h.bounds name in
        if Array.length dh.counts = Array.length h.counts then begin
          Array.iteri (fun i c -> dh.counts.(i) <- dh.counts.(i) + c) h.counts;
          dh.hsum <- dh.hsum +. h.hsum;
          dh.hcount <- dh.hcount + h.hcount
        end)
    (List.rev src.order)

(* --- snapshots --------------------------------------------------------- *)

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of { vbounds : float array; vcounts : int array; vsum : float; vcount : int }

type sample = { s_name : string; s_labels : labels; s_value : value }

type snapshot = sample list (* registration order *)

let snapshot t =
  List.rev_map
    (fun (name, labels, instr) ->
      let v =
        match instr with
        | Counter c -> Vcounter c.c
        | Gauge g -> Vgauge g.g
        | Histogram h ->
          Vhistogram
            {
              vbounds = Array.copy h.bounds;
              vcounts = Array.copy h.counts;
              vsum = h.hsum;
              vcount = h.hcount;
            }
      in
      { s_name = name; s_labels = labels; s_value = v })
    t.order

(* [diff ~base cur]: counters and histograms report the delta since
   [base]; gauges keep the current sample.  Samples missing from [base]
   pass through unchanged. *)
let diff ~base cur =
  let key s = render_key s.s_name s.s_labels in
  let base_tbl = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace base_tbl (key s) s.s_value) base;
  List.map
    (fun s ->
      match (s.s_value, Hashtbl.find_opt base_tbl (key s)) with
      | Vcounter cur_v, Some (Vcounter base_v) -> { s with s_value = Vcounter (cur_v - base_v) }
      | Vhistogram h, Some (Vhistogram b) when Array.length h.vcounts = Array.length b.vcounts ->
        {
          s with
          s_value =
            Vhistogram
              {
                h with
                vcounts = Array.mapi (fun i c -> c - b.vcounts.(i)) h.vcounts;
                vsum = h.vsum -. b.vsum;
                vcount = h.vcount - b.vcount;
              };
        }
      | _ -> s)
    cur

let find snap name labels =
  List.find_opt (fun s -> s.s_name = name && List.sort compare s.s_labels = List.sort compare labels) snap

(* Estimate the [q]-quantile of a histogram sample by linear
   interpolation inside the bucket holding the target rank (the standard
   Prometheus histogram_quantile estimator).  The first bucket's lower
   edge is taken as 0; a target landing in the +inf overflow bucket is
   clamped to the last finite bound (we cannot interpolate past it).
   [None] for non-histograms and empty histograms. *)
let percentile v q =
  match v with
  | Vhistogram { vbounds; vcounts; vcount; _ } when vcount > 0 ->
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int vcount in
    let nfinite = Array.length vbounds in
    let last_bound = if nfinite = 0 then 0.0 else vbounds.(nfinite - 1) in
    let rec go i cum =
      if i >= Array.length vcounts then Some last_bound
      else
        let cum' = cum + vcounts.(i) in
        if float_of_int cum' >= target && vcounts.(i) > 0 then
          if i >= nfinite then Some last_bound
          else begin
            let lower = if i = 0 then 0.0 else vbounds.(i - 1) in
            let upper = vbounds.(i) in
            let frac = (target -. float_of_int cum) /. float_of_int vcounts.(i) in
            Some (lower +. ((upper -. lower) *. frac))
          end
        else go (i + 1) cum'
    in
    go 0 0
  | _ -> None

(* --- JSONL export ------------------------------------------------------ *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let sample_to_json s =
  let base = [ ("metric", Json.Str s.s_name); ("labels", labels_json s.s_labels) ] in
  match s.s_value with
  | Vcounter c -> Json.Obj (base @ [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int c)) ])
  | Vgauge g -> Json.Obj (base @ [ ("type", Json.Str "gauge"); ("value", Json.Num g) ])
  | Vhistogram h ->
    Json.Obj
      (base
      @ [
          ("type", Json.Str "histogram");
          ("value", Json.Num h.vsum);
          ("count", Json.Num (float_of_int h.vcount));
          ("bounds", Json.Arr (Array.to_list (Array.map (fun b -> Json.Num b) h.vbounds)));
          ("buckets", Json.Arr (Array.to_list (Array.map (fun c -> Json.Num (float_of_int c)) h.vcounts)));
        ])

let write_jsonl buf snap =
  List.iter
    (fun s ->
      Json.write buf (sample_to_json s);
      Buffer.add_char buf '\n')
    snap

(* --- Prometheus text exposition ---------------------------------------- *)

(* Label values in the exposition format live inside double quotes with
   backslash, quote and newline escaped — a different grammar from JSON
   strings. *)
let prom_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        String.iter
          (fun c ->
            match c with
            | '\\' -> Buffer.add_string buf "\\\\"
            | '"' -> Buffer.add_string buf "\\\""
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          v;
        Buffer.add_char buf '"')
      (List.sort compare labels);
    Buffer.add_char buf '}'

let prom_line buf name labels value =
  Buffer.add_string buf name;
  prom_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (if Float.is_finite value then Json.number_to_string value else "+Inf");
  Buffer.add_char buf '\n'

(* Text exposition of a snapshot, one # TYPE header per metric family
   (emitted at the family's first sample; labeled variants follow under
   it).  Histograms expand to the conventional cumulative
   [_bucket{le=...}] series plus [_sum] and [_count]. *)
let write_prometheus buf snap =
  let typed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let type_header kind =
        if not (Hashtbl.mem typed s.s_name) then begin
          Hashtbl.replace typed s.s_name ();
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.s_name kind)
        end
      in
      match s.s_value with
      | Vcounter c ->
        type_header "counter";
        prom_line buf s.s_name s.s_labels (float_of_int c)
      | Vgauge g ->
        type_header "gauge";
        prom_line buf s.s_name s.s_labels g
      | Vhistogram h ->
        type_header "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length h.vbounds then Json.number_to_string h.vbounds.(i) else "+Inf"
            in
            prom_line buf (s.s_name ^ "_bucket")
              (s.s_labels @ [ ("le", le) ])
              (float_of_int !cum))
          h.vcounts;
        prom_line buf (s.s_name ^ "_sum") s.s_labels h.vsum;
        prom_line buf (s.s_name ^ "_count") s.s_labels (float_of_int h.vcount))
    snap
