(* The sink every instrumented component writes through.

   One shared core (registry + trace ring + timeline + current virtual
   tick) is created per run; [for_worker] wraps it with a worker id so
   events and timeline samples are attributed without the component
   threading its own id around.  The cluster driver advances [set_now]
   once per tick, so hot-path emitters never pass a timestamp. *)

(* A completed wall-clock span, in real nanoseconds (Clock.now_ns).
   Spans come from the profiling layer (Profile.record) on true
   multicore runs; the simulated driver never emits them, so its traces
   stay purely tick-based. *)
type span = { sp_worker : int; sp_name : string; sp_start_ns : int; sp_stop_ns : int }

(* Bounded ring of spans: old spans are overwritten, like the trace
   ring, so a long run cannot grow the core without bound. *)
type span_ring = { sarr : span option array; mutable snext : int; mutable stotal : int }

let span_cap = 32_768

let span_ring_create () = { sarr = Array.make span_cap None; snext = 0; stotal = 0 }

let span_ring_add r sp =
  r.sarr.(r.snext) <- Some sp;
  r.snext <- (r.snext + 1) mod span_cap;
  r.stotal <- r.stotal + 1

(* Oldest first. *)
let span_ring_contents r =
  let out = ref [] in
  for i = span_cap - 1 downto 0 do
    match r.sarr.((r.snext + i) mod span_cap) with
    | Some sp -> out := sp :: !out
    | None -> ()
  done;
  List.rev !out

type core = {
  metrics : Metrics.t;
  trace : Trace.t;
  timeline : Timeline.t;
  spans : span_ring;
  epoch_ns : int;  (* Clock.now_ns at [create]; real-ns spans export relative to this *)
  mutable now : int;
  lock : Mutex.t;  (* serializes buffered-view flushes into the core *)
  (* Contention probe on [lock] itself: flushes try-lock first and count
     which way it went, so the overhead of observability is observable. *)
  lk_uncontended : int Atomic.t;
  lk_contended : int Atomic.t;
  h_flush : Metrics.histogram;  (* latency_ns{kind=obs_flush}: time spent in flush_items *)
  (* Named sample providers appended to [metrics_samples] at export time
     (e.g. the hashcons shard-lock stats, which live in global Atomics
     inside Smt.Expr and belong to no single registry). *)
  mutable providers : (string * (unit -> Metrics.sample list)) list;
}

(* A buffered view's domain-private staging area: events and timeline
   samples accumulate here (with a private metrics registry and clock)
   and reach the shared core only in [flush], under [core.lock].  The
   hot path of a worker domain therefore never touches shared state. *)
type pending =
  | P_span of span
  | P_event of { tick : int; worker : int; ev : Event.t }
  | P_sample of {
      tick : int;
      worker : int;
      useful : int;
      replay : int;
      idle : int;
      depth : int;
      queries : int;
      sat_calls : int;
    }

type buf = {
  mutable items : pending list;  (* newest first *)
  mutable nitems : int;
  bmetrics : Metrics.t;
  mutable bnow : int;
  mutable merged : bool;  (* metrics already folded into the core *)
}

type t = { core : core; wid : int; buf : buf option }

(* Auto-flush threshold: bounds a buffered view's memory while amortizing
   the lock over many events. *)
let buf_cap = 8192

let create ?trace_capacity ?bucket_ticks () =
  let metrics = Metrics.create () in
  let core =
    {
      metrics;
      trace = Trace.create ?capacity:trace_capacity ();
      timeline = Timeline.create ?bucket_ticks ();
      spans = span_ring_create ();
      epoch_ns = Clock.now_ns ();
      now = 0;
      lock = Mutex.create ();
      lk_uncontended = Atomic.make 0;
      lk_contended = Atomic.make 0;
      h_flush =
        Metrics.histogram metrics
          ~labels:[ ("kind", "obs_flush") ]
          ~buckets:Metrics.latency_ns_buckets "latency_ns";
      providers = [];
    }
  in
  { core; wid = Event.lb; buf = None }

(* Re-scoping preserves the buffer: views derived from a buffered view
   stage through the same domain-private buffer. *)
let for_worker t wid = { t with wid }

let buffered t wid =
  {
    core = t.core;
    wid;
    buf = Some { items = []; nitems = 0; bmetrics = Metrics.create (); bnow = 0; merged = false };
  }

let is_buffered t = t.buf <> None

let worker t = t.wid

let set_now t tick = match t.buf with Some b -> b.bnow <- tick | None -> t.core.now <- tick
let now t = match t.buf with Some b -> b.bnow | None -> t.core.now

let metrics t = match t.buf with Some b -> b.bmetrics | None -> t.core.metrics
let trace t = t.core.trace
let timeline t = t.core.timeline

(* Drain a buffer's staged records into the core, oldest first.  The
   private metrics registry is folded in exactly once (its handles stay
   live in the owning domain, so later increments would double-count if
   merged again); [flush] is meant to be called when the owning domain is
   done, with threshold flushes covering only events and samples. *)
(* Take the core lock, try-lock first so contention on it is counted:
   the obs layer's own serialization point shows up in the same report
   as everyone else's locks. *)
let lock_core core =
  if Mutex.try_lock core.lock then Atomic.incr core.lk_uncontended
  else begin
    Atomic.incr core.lk_contended;
    Mutex.lock core.lock
  end

let flush_items core b =
  let items = List.rev b.items in
  b.items <- [];
  b.nitems <- 0;
  let t0 = Clock.now_ns () in
  lock_core core;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock core.lock)
    (fun () ->
      List.iter
        (function
          | P_span sp -> span_ring_add core.spans sp
          | P_event { tick; worker; ev } -> Trace.record core.trace ~tick ~worker ev
          | P_sample { tick; worker; useful; replay; idle; depth; queries; sat_calls } ->
            Timeline.observe core.timeline ~tick ~worker ~useful ~replay ~idle ~depth ~queries
              ~sat_calls)
        items;
      Metrics.observe core.h_flush (float_of_int (max 0 (Clock.now_ns () - t0))))

let flush t =
  match t.buf with
  | None -> ()
  | Some b ->
    flush_items t.core b;
    if not b.merged then begin
      b.merged <- true;
      lock_core t.core;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.core.lock)
        (fun () -> Metrics.merge_into ~into:t.core.metrics b.bmetrics)
    end

let push b p =
  b.items <- p :: b.items;
  b.nitems <- b.nitems + 1

let event t ev =
  match t.buf with
  | None -> Trace.record t.core.trace ~tick:t.core.now ~worker:t.wid ev
  | Some b ->
    push b (P_event { tick = b.bnow; worker = t.wid; ev });
    if b.nitems >= buf_cap then flush_items t.core b

let observe t ~useful ~replay ~idle ~depth ~queries ~sat_calls =
  match t.buf with
  | None ->
    Timeline.observe t.core.timeline ~tick:t.core.now ~worker:t.wid ~useful ~replay ~idle ~depth
      ~queries ~sat_calls
  | Some b ->
    push b
      (P_sample { tick = b.bnow; worker = t.wid; useful; replay; idle; depth; queries; sat_calls });
    if b.nitems >= buf_cap then flush_items t.core b

(* Record a completed real-nanosecond span attributed to this view's
   worker.  Buffered views stage it like any other pending item (the
   domain hot path touches no shared state); unbuffered views write the
   ring directly, matching the single-domain convention of [event]. *)
let span t ~name ~start_ns ~stop_ns =
  let sp = { sp_worker = t.wid; sp_name = name; sp_start_ns = start_ns; sp_stop_ns = stop_ns } in
  match t.buf with
  | None -> span_ring_add t.core.spans sp
  | Some b ->
    push b (P_span sp);
    if b.nitems >= buf_cap then flush_items t.core b

let epoch_ns t = t.core.epoch_ns

(* Replace-by-name, so a provider registered by every per-domain solver
   (they all see the same global Expr stats) stays idempotent. *)
let set_provider t ~name f =
  let core = t.core in
  lock_core core;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock core.lock)
    (fun () -> core.providers <- (name, f) :: List.remove_assoc name core.providers)

let attach_spill t oc = Trace.attach_spill t.core.trace oc
let detach_spill t = Trace.detach_spill t.core.trace

(* ---- exporters ---------------------------------------------------- *)

(* The virtual-tick half of the dual time base: 1 tick = Clock.tick_ns
   of trace time, expressed in the microseconds Chrome expects. *)
let us_per_tick = float_of_int Clock.tick_ns /. 1_000.
let us_of_tick tick = Json.Num (float_of_int tick *. us_per_tick)
let num n = Json.Num (float_of_int n)

let thread_label wid = if wid = Event.lb then "lb" else Printf.sprintf "worker %d" wid

(* Chrome trace_event JSON (chrome://tracing / Perfetto "JSON Array
   Format"), on a dual time base.  Virtual ticks map to microseconds at
   1 tick = Clock.tick_ns: timeline buckets become "C" counter series
   and ring events "i" instants.  Real-nanosecond spans (true multicore
   runs) become "X" complete events at microseconds relative to the
   sink's creation [epoch_ns] — both halves land on the same axis near
   t=0, so a merged trace loads coherently either way. *)
let chrome_events t =
  Timeline.flush t.core.timeline;
  let spans = span_ring_contents t.core.spans in
  let wids =
    List.sort_uniq compare
      ((Event.lb :: Timeline.workers t.core.timeline)
      @ List.map (fun sp -> sp.sp_worker) spans)
  in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", num 0);
        ("args", Json.Obj [ ("name", Json.Str "cloud9") ]);
      ]
    :: List.map
         (fun wid ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", num 0);
               ("tid", num wid);
               ("args", Json.Obj [ ("name", Json.Str (thread_label wid)) ]);
             ])
         wids
  in
  let counter name wid start args =
    Json.Obj
      [
        ("name", Json.Str (Printf.sprintf "%s/w%d" name wid));
        ("ph", Json.Str "C");
        ("pid", num 0);
        ("ts", us_of_tick start);
        ("args", Json.Obj args);
      ]
  in
  let counters =
    List.concat_map
      (fun (r : Timeline.row) ->
        [
          counter "util" r.b_worker r.b_start
            [
              ("useful", num r.b_useful); ("replay", num r.b_replay); ("idle", num r.b_idle);
            ];
          counter "frontier" r.b_worker r.b_start [ ("depth", num r.b_depth) ];
          counter "solver" r.b_worker r.b_start
            [ ("queries", num r.b_queries); ("sat_calls", num r.b_sat_calls) ];
        ])
      (Timeline.rows t.core.timeline)
  in
  let instants =
    List.map
      (fun (r : Trace.record) ->
        Json.Obj
          [
            ("name", Json.Str (Event.name r.r_event));
            ("ph", Json.Str "i");
            ("pid", num 0);
            ("tid", num r.r_worker);
            ("ts", us_of_tick r.r_tick);
            ("s", Json.Str "t");
            ("args", Json.Obj (Event.args r.r_event));
          ])
      (Trace.contents t.core.trace)
  in
  let completes =
    List.map
      (fun sp ->
        Json.Obj
          [
            ("name", Json.Str sp.sp_name);
            ("ph", Json.Str "X");
            ("pid", num 0);
            ("tid", num sp.sp_worker);
            ("ts", Json.Num (float_of_int (sp.sp_start_ns - t.core.epoch_ns) /. 1_000.));
            ("dur", Json.Num (float_of_int (max 0 (sp.sp_stop_ns - sp.sp_start_ns)) /. 1_000.));
            ("args", Json.Obj []);
          ])
      spans
  in
  meta @ counters @ instants @ completes

let write_chrome_trace t oc =
  let buf = Buffer.create 65536 in
  Json.write buf (Json.Arr (chrome_events t));
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* Per-worker cumulative totals from the timeline, exported as synthetic
   counter samples alongside the registry's own contents.  The useful and
   replay totals reconcile exactly with the run result's instruction
   counters. *)
let totals_samples t =
  Timeline.flush t.core.timeline;
  List.concat_map
    (fun (wid, (tot : Timeline.totals)) ->
      let labels = [ ("worker", string_of_int wid) ] in
      List.map
        (fun (name, v) ->
          { Metrics.s_name = name; s_labels = labels; s_value = Metrics.Vcounter v })
        [
          ("worker_useful_instrs", tot.t_useful);
          ("worker_replay_instrs", tot.t_replay);
          ("worker_idle_instrs", tot.t_idle);
          ("worker_solver_queries", tot.t_queries);
          ("worker_sat_calls", tot.t_sat_calls);
        ])
    (Timeline.totals t.core.timeline)

(* The core lock's own try-lock probe, as synthetic counter samples. *)
let core_lock_samples t =
  List.map
    (fun (outcome, v) ->
      {
        Metrics.s_name = "obs_core_lock_acquisitions";
        s_labels = [ ("outcome", outcome) ];
        s_value = Metrics.Vcounter v;
      })
    [
      ("uncontended", Atomic.get t.core.lk_uncontended);
      ("contended", Atomic.get t.core.lk_contended);
    ]

let provider_samples t =
  List.concat_map (fun (_, f) -> f ()) (List.rev t.core.providers)

let metrics_samples t =
  Metrics.snapshot t.core.metrics @ totals_samples t @ core_lock_samples t @ provider_samples t

let write_metrics_jsonl t oc =
  let buf = Buffer.create 4096 in
  Metrics.write_jsonl buf (metrics_samples t);
  Buffer.output_buffer oc buf
