(* The sink every instrumented component writes through.

   One shared core (registry + trace ring + timeline + current virtual
   tick) is created per run; [for_worker] wraps it with a worker id so
   events and timeline samples are attributed without the component
   threading its own id around.  The cluster driver advances [set_now]
   once per tick, so hot-path emitters never pass a timestamp. *)

type core = {
  metrics : Metrics.t;
  trace : Trace.t;
  timeline : Timeline.t;
  mutable now : int;
  lock : Mutex.t;  (* serializes buffered-view flushes into the core *)
}

(* A buffered view's domain-private staging area: events and timeline
   samples accumulate here (with a private metrics registry and clock)
   and reach the shared core only in [flush], under [core.lock].  The
   hot path of a worker domain therefore never touches shared state. *)
type pending =
  | P_event of { tick : int; worker : int; ev : Event.t }
  | P_sample of {
      tick : int;
      worker : int;
      useful : int;
      replay : int;
      idle : int;
      depth : int;
      queries : int;
      sat_calls : int;
    }

type buf = {
  mutable items : pending list;  (* newest first *)
  mutable nitems : int;
  bmetrics : Metrics.t;
  mutable bnow : int;
  mutable merged : bool;  (* metrics already folded into the core *)
}

type t = { core : core; wid : int; buf : buf option }

(* Auto-flush threshold: bounds a buffered view's memory while amortizing
   the lock over many events. *)
let buf_cap = 8192

let create ?trace_capacity ?bucket_ticks () =
  let core =
    {
      metrics = Metrics.create ();
      trace = Trace.create ?capacity:trace_capacity ();
      timeline = Timeline.create ?bucket_ticks ();
      now = 0;
      lock = Mutex.create ();
    }
  in
  { core; wid = Event.lb; buf = None }

(* Re-scoping preserves the buffer: views derived from a buffered view
   stage through the same domain-private buffer. *)
let for_worker t wid = { t with wid }

let buffered t wid =
  {
    core = t.core;
    wid;
    buf = Some { items = []; nitems = 0; bmetrics = Metrics.create (); bnow = 0; merged = false };
  }

let is_buffered t = t.buf <> None

let worker t = t.wid

let set_now t tick = match t.buf with Some b -> b.bnow <- tick | None -> t.core.now <- tick
let now t = match t.buf with Some b -> b.bnow | None -> t.core.now

let metrics t = match t.buf with Some b -> b.bmetrics | None -> t.core.metrics
let trace t = t.core.trace
let timeline t = t.core.timeline

(* Drain a buffer's staged records into the core, oldest first.  The
   private metrics registry is folded in exactly once (its handles stay
   live in the owning domain, so later increments would double-count if
   merged again); [flush] is meant to be called when the owning domain is
   done, with threshold flushes covering only events and samples. *)
let flush_items core b =
  let items = List.rev b.items in
  b.items <- [];
  b.nitems <- 0;
  Mutex.lock core.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock core.lock)
    (fun () ->
      List.iter
        (function
          | P_event { tick; worker; ev } -> Trace.record core.trace ~tick ~worker ev
          | P_sample { tick; worker; useful; replay; idle; depth; queries; sat_calls } ->
            Timeline.observe core.timeline ~tick ~worker ~useful ~replay ~idle ~depth ~queries
              ~sat_calls)
        items)

let flush t =
  match t.buf with
  | None -> ()
  | Some b ->
    flush_items t.core b;
    if not b.merged then begin
      b.merged <- true;
      Mutex.lock t.core.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.core.lock)
        (fun () -> Metrics.merge_into ~into:t.core.metrics b.bmetrics)
    end

let push b p =
  b.items <- p :: b.items;
  b.nitems <- b.nitems + 1

let event t ev =
  match t.buf with
  | None -> Trace.record t.core.trace ~tick:t.core.now ~worker:t.wid ev
  | Some b ->
    push b (P_event { tick = b.bnow; worker = t.wid; ev });
    if b.nitems >= buf_cap then flush_items t.core b

let observe t ~useful ~replay ~idle ~depth ~queries ~sat_calls =
  match t.buf with
  | None ->
    Timeline.observe t.core.timeline ~tick:t.core.now ~worker:t.wid ~useful ~replay ~idle ~depth
      ~queries ~sat_calls
  | Some b ->
    push b
      (P_sample { tick = b.bnow; worker = t.wid; useful; replay; idle; depth; queries; sat_calls });
    if b.nitems >= buf_cap then flush_items t.core b

let attach_spill t oc = Trace.attach_spill t.core.trace oc
let detach_spill t = Trace.detach_spill t.core.trace

(* ---- exporters ---------------------------------------------------- *)

let us_of_tick tick = Json.Num (float_of_int tick *. 10_000.)
let num n = Json.Num (float_of_int n)

let thread_label wid = if wid = Event.lb then "lb" else Printf.sprintf "worker %d" wid

(* Chrome trace_event JSON (chrome://tracing / Perfetto "JSON Array
   Format").  Virtual ticks are mapped to microseconds at 1 tick = 10ms.
   Timeline buckets become "C" counter series; ring events become "i"
   instants on the emitting worker's thread track. *)
let chrome_events t =
  Timeline.flush t.core.timeline;
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", num 0);
        ("args", Json.Obj [ ("name", Json.Str "cloud9") ]);
      ]
    :: List.map
         (fun wid ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", num 0);
               ("tid", num wid);
               ("args", Json.Obj [ ("name", Json.Str (thread_label wid)) ]);
             ])
         (Event.lb :: Timeline.workers t.core.timeline)
  in
  let counter name wid start args =
    Json.Obj
      [
        ("name", Json.Str (Printf.sprintf "%s/w%d" name wid));
        ("ph", Json.Str "C");
        ("pid", num 0);
        ("ts", us_of_tick start);
        ("args", Json.Obj args);
      ]
  in
  let counters =
    List.concat_map
      (fun (r : Timeline.row) ->
        [
          counter "util" r.b_worker r.b_start
            [
              ("useful", num r.b_useful); ("replay", num r.b_replay); ("idle", num r.b_idle);
            ];
          counter "frontier" r.b_worker r.b_start [ ("depth", num r.b_depth) ];
          counter "solver" r.b_worker r.b_start
            [ ("queries", num r.b_queries); ("sat_calls", num r.b_sat_calls) ];
        ])
      (Timeline.rows t.core.timeline)
  in
  let instants =
    List.map
      (fun (r : Trace.record) ->
        Json.Obj
          [
            ("name", Json.Str (Event.name r.r_event));
            ("ph", Json.Str "i");
            ("pid", num 0);
            ("tid", num r.r_worker);
            ("ts", us_of_tick r.r_tick);
            ("s", Json.Str "t");
            ("args", Json.Obj (Event.args r.r_event));
          ])
      (Trace.contents t.core.trace)
  in
  meta @ counters @ instants

let write_chrome_trace t oc =
  let buf = Buffer.create 65536 in
  Json.write buf (Json.Arr (chrome_events t));
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf

(* Per-worker cumulative totals from the timeline, exported as synthetic
   counter samples alongside the registry's own contents.  The useful and
   replay totals reconcile exactly with the run result's instruction
   counters. *)
let totals_samples t =
  Timeline.flush t.core.timeline;
  List.concat_map
    (fun (wid, (tot : Timeline.totals)) ->
      let labels = [ ("worker", string_of_int wid) ] in
      List.map
        (fun (name, v) ->
          { Metrics.s_name = name; s_labels = labels; s_value = Metrics.Vcounter v })
        [
          ("worker_useful_instrs", tot.t_useful);
          ("worker_replay_instrs", tot.t_replay);
          ("worker_idle_instrs", tot.t_idle);
          ("worker_solver_queries", tot.t_queries);
          ("worker_sat_calls", tot.t_sat_calls);
        ])
    (Timeline.totals t.core.timeline)

let metrics_samples t = Metrics.snapshot t.core.metrics @ totals_samples t

let write_metrics_jsonl t oc =
  let buf = Buffer.create 4096 in
  Metrics.write_jsonl buf (metrics_samples t);
  Buffer.output_buffer oc buf
