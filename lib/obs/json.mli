(** Minimal JSON writer/parser backing the observability exporters, the
    [cloud9 report] reader, and the artifact-validating tests.  Not a
    general-purpose JSON library: strings round-trip ASCII only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Append the escaped, quoted form of a string. *)
val escape_to : Buffer.t -> string -> unit

val write : Buffer.t -> t -> unit
val to_string : t -> string

(** Exact round-trip rendering of a finite float: integers print plainly,
    everything else as the shortest decimal that parses back to the
    identical double (never lossy, unlike the [%g] this replaced). *)
val number_to_string : float -> string

exception Malformed of string

(** @raise Malformed on syntax errors. *)
val parse_exn : string -> t

val parse : string -> (t, string) result

val member : string -> t -> t option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
