(* Offline reader for the metrics JSONL artifact: parses the dump back
   into {!Metrics.snapshot} samples and renders the summary behind the
   [cloud9 report] subcommand — a per-worker utilization table, the
   solver answer-tier breakdown, and the remaining counters/gauges. *)

let sample_of_json j =
  let open Json in
  let str_member k = Option.bind (member k j) to_str in
  let num_member k = Option.bind (member k j) to_float in
  match (str_member "metric", str_member "type") with
  | Some name, Some ty ->
    let labels =
      match member "labels" j with
      | Some (Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (to_str v)) kvs
      | _ -> []
    in
    let value =
      match ty with
      | "counter" ->
        Option.map (fun v -> Metrics.Vcounter (int_of_float v)) (num_member "value")
      | "gauge" -> Option.map (fun v -> Metrics.Vgauge v) (num_member "value")
      | "histogram" ->
        let floats k =
          match Option.bind (member k j) to_list with
          | Some l -> Some (Array.of_list (List.filter_map to_float l))
          | None -> None
        in
        (match (num_member "value", num_member "count", floats "bounds", floats "buckets") with
        | Some vsum, Some count, Some bounds, Some buckets ->
          Some
            (Metrics.Vhistogram
               {
                 vbounds = bounds;
                 vcounts = Array.map int_of_float buckets;
                 vsum;
                 vcount = int_of_float count;
               })
        | _ -> None)
      | _ -> None
    in
    Option.map (fun v -> { Metrics.s_name = name; s_labels = labels; s_value = v }) value
  | _ -> None

(* Parse a whole JSONL dump; blank lines are skipped, malformed lines
   reported by 1-based number. *)
let parse_jsonl content =
  let lines = String.split_on_char '\n' content in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (n + 1) acc rest
      else (
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        | Ok j -> (
          match sample_of_json j with
          | None -> Error (Printf.sprintf "line %d: not a metrics sample" n)
          | Some s -> go (n + 1) (s :: acc) rest))
  in
  go 1 [] lines

(* ---- rendering ---------------------------------------------------- *)

let counter_of snap name labels =
  match Metrics.find snap name labels with
  | Some { s_value = Metrics.Vcounter c; _ } -> Some c
  | _ -> None

let worker_ids snap =
  List.filter_map
    (fun (s : Metrics.sample) ->
      if s.s_name = "worker_useful_instrs" then
        Option.map int_of_string_opt (List.assoc_opt "worker" s.s_labels) |> Option.join
      else None)
    snap
  |> List.sort_uniq compare

let pct num denom = if denom = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int denom

let render buf snap =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  (* per-worker utilization *)
  let wids = worker_ids snap in
  if wids <> [] then begin
    line "%-8s %12s %12s %12s %7s %10s %10s" "worker" "useful" "replay" "idle" "util%"
      "queries" "sat_calls";
    let tu = ref 0 and tr = ref 0 and ti = ref 0 and tq = ref 0 and ts = ref 0 in
    List.iter
      (fun w ->
        let labels = [ ("worker", string_of_int w) ] in
        let get name = Option.value ~default:0 (counter_of snap name labels) in
        let useful = get "worker_useful_instrs" in
        let replay = get "worker_replay_instrs" in
        let idle = get "worker_idle_instrs" in
        let queries = get "worker_solver_queries" in
        let sat = get "worker_sat_calls" in
        tu := !tu + useful;
        tr := !tr + replay;
        ti := !ti + idle;
        tq := !tq + queries;
        ts := !ts + sat;
        line "%-8d %12d %12d %12d %6.1f%% %10d %10d" w useful replay idle
          (pct useful (useful + replay + idle))
          queries sat)
      wids;
    line "%-8s %12d %12d %12d %6.1f%% %10d %10d" "total" !tu !tr !ti
      (pct !tu (!tu + !tr + !ti))
      !tq !ts;
    line ""
  end;
  (* solver answer-tier breakdown *)
  let tiers =
    List.filter_map
      (fun (s : Metrics.sample) ->
        match (s.s_name, s.s_value, List.assoc_opt "tier" s.s_labels) with
        | "solver_queries", Metrics.Vcounter c, Some tier -> Some (tier, c)
        | _ -> None)
      snap
  in
  if tiers <> [] then begin
    let total = List.fold_left (fun a (_, c) -> a + c) 0 tiers in
    line "solver queries by answer tier (total %d):" total;
    List.iter (fun (tier, c) -> line "  %-10s %10d  %5.1f%%" tier c (pct c total)) tiers;
    line ""
  end;
  (* everything else *)
  let shown (s : Metrics.sample) =
    (not (String.length s.s_name >= 7 && String.sub s.s_name 0 7 = "worker_"))
    && s.s_name <> "solver_queries"
  in
  let rest = List.filter shown snap in
  if rest <> [] then begin
    line "other metrics:";
    List.iter
      (fun (s : Metrics.sample) ->
        let label_str =
          match s.s_labels with
          | [] -> ""
          | kvs ->
            "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"
        in
        match s.s_value with
        | Metrics.Vcounter c -> line "  %s%s = %d" s.s_name label_str c
        | Metrics.Vgauge g -> line "  %s%s = %g" s.s_name label_str g
        | Metrics.Vhistogram h ->
          line "  %s%s: count=%d sum=%g mean=%g" s.s_name label_str h.vcount h.vsum
            (if h.vcount = 0 then 0.0 else h.vsum /. float_of_int h.vcount))
      rest
  end

let render_string snap =
  let buf = Buffer.create 4096 in
  render buf snap;
  Buffer.contents buf

(* ---- profile rendering (report --profile) -------------------------- *)

(* Adaptive duration formatting for nanosecond quantities. *)
let fmt_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

(* The percentile table covers every latency_ns{kind=...} histogram
   (mailbox waits, steal RTTs, replays, solver queries by tier, shard
   lock waits, obs flushes); the contention section pairs the try-lock
   outcome counters with the per-shard top list exported by the
   hashcons provider. *)
let render_profile buf snap =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let lat =
    List.filter_map
      (fun (s : Metrics.sample) ->
        match (s.s_name, s.s_value) with
        | "latency_ns", (Metrics.Vhistogram h as v) ->
          let kind = Option.value ~default:"?" (List.assoc_opt "kind" s.s_labels) in
          let tier = List.assoc_opt "tier" s.s_labels in
          let label = match tier with Some t -> kind ^ "/" ^ t | None -> kind in
          Some (label, v, h.vcount, h.vsum)
        | _ -> None)
      snap
  in
  if lat <> [] then begin
    line "wall-clock latency percentiles:";
    line "  %-22s %10s %10s %10s %10s %10s" "span" "count" "p50" "p90" "p99" "mean";
    List.iter
      (fun (label, v, count, sum) ->
        let p q = match Metrics.percentile v q with Some x -> fmt_ns x | None -> "-" in
        let mean = if count = 0 then "-" else fmt_ns (sum /. float_of_int count) in
        line "  %-22s %10d %10s %10s %10s %10s" label count (p 0.5) (p 0.9) (p 0.99) mean)
      lat;
    line ""
  end;
  (* try-lock contention probes *)
  let acq name =
    let get outcome =
      match Metrics.find snap name [ ("outcome", outcome) ] with
      | Some { s_value = Metrics.Vcounter c; _ } -> c
      | _ -> 0
    in
    (get "uncontended", get "contended")
  in
  let probes =
    List.filter
      (fun (_, (u, c)) -> u + c > 0)
      [
        ("hashcons shards", acq "hashcons_lock_acquisitions");
        ("obs core lock", acq "obs_core_lock_acquisitions");
      ]
  in
  if probes <> [] then begin
    line "lock contention (try-lock probes):";
    List.iter
      (fun (name, (u, c)) ->
        line "  %-16s %12d uncontended %10d contended  (%.3f%% contended)" name u c
          (pct c (u + c)))
      probes;
    line ""
  end;
  let top_shards =
    List.filter_map
      (fun (s : Metrics.sample) ->
        match (s.s_name, s.s_value, List.assoc_opt "shard" s.s_labels) with
        | "hashcons_shard_contended", Metrics.Vcounter c, Some sh -> Some (sh, c)
        | _ -> None)
      snap
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if top_shards <> [] then begin
    line "most contended hashcons shards:";
    List.iter (fun (sh, c) -> line "  shard %-4s %10d contended acquisitions" sh c) top_shards
  end

let render_profile_string snap =
  let buf = Buffer.create 4096 in
  render_profile buf snap;
  Buffer.contents buf
