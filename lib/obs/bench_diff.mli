(** Bench-history regression checking: structural comparison of two
    BENCH_*.json artifacts for [cloud9 report --diff].

    Differences fall into [regressions] (an [ok] gate flipped
    true -> false, a deterministic metric — path / error / tenant
    counts — moved at all, another numeric moved beyond a loose
    tolerance, or a value changed JSON type) and [notes] (keys or rows
    on one side only, string changes, timing keys, and all numeric drift
    between artifacts of different "quick" variants, which are only
    comparable on their gates). *)

type outcome = { regressions : string list; notes : string list }

(** [strict] forces full numeric comparison; defaults to true iff the
    two documents carry the same "quick" flag (or neither does). *)
val compare : ?strict:bool -> Json.t -> Json.t -> outcome

(** Human-readable listing, one line per finding plus a summary line. *)
val render : outcome -> string

(** True iff no regressions. *)
val ok : outcome -> bool
