(* The trace sink: tick-stamped events in a bounded ring buffer.

   The ring bounds memory on long runs — when full, the oldest events are
   overwritten, so the buffer always holds the most recent [capacity]
   records.  An optional JSONL spill channel receives *every* record as
   it is appended (before any overwriting), for offline analysis of
   complete streams; the ring alone feeds the Chrome exporter. *)

type record = { r_tick : int; r_worker : int; r_event : Event.t }

type t = {
  ring : record option array;
  mutable head : int;     (* next write position *)
  mutable appended : int; (* total records ever appended *)
  mutable spill : out_channel option;
}

let create ?(capacity = 65536) () =
  { ring = Array.make (max 1 capacity) None; head = 0; appended = 0; spill = None }

let capacity t = Array.length t.ring
let appended t = t.appended
let dropped t = max 0 (t.appended - Array.length t.ring)

let attach_spill t oc = t.spill <- Some oc
let detach_spill t = t.spill <- None

let record_to_json { r_tick; r_worker; r_event } =
  Json.Obj
    ([
       ("tick", Json.Num (float_of_int r_tick));
       ("worker", Json.Num (float_of_int r_worker));
       ("event", Json.Str (Event.name r_event));
     ]
    @ Event.args r_event)

let record t ~tick ~worker event =
  let r = { r_tick = tick; r_worker = worker; r_event = event } in
  t.ring.(t.head) <- Some r;
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.appended <- t.appended + 1;
  match t.spill with
  | None -> ()
  | Some oc ->
    let buf = Buffer.create 128 in
    Json.write buf (record_to_json r);
    Buffer.add_char buf '\n';
    Buffer.output_buffer oc buf

(* Buffered records, oldest first. *)
let contents t =
  let n = Array.length t.ring in
  let live = min t.appended n in
  let start = (t.head - live + (2 * n)) mod n in
  List.init live (fun i ->
      match t.ring.((start + i) mod n) with Some r -> r | None -> assert false)

let iter f t = List.iter f (contents t)
