(* Per-worker timelines: utilization and solver activity aggregated into
   fixed-width tick buckets — the data behind the paper's Fig. 6/7-style
   load-balance plots.

   Callers feed *cumulative* counters ([observe] computes deltas
   internally, treating a decrease as a counter reset — a rejoined worker
   starts a fresh engine at zero) plus a frontier-depth gauge sample.
   Buckets are flushed when a sample crosses a bucket boundary and on
   [flush]; per-worker cumulative totals are maintained independently so
   exports can reconcile against a run's final counters exactly, however
   the run's length relates to the bucket width. *)

type row = {
  b_worker : int;
  b_start : int;       (* bucket start tick *)
  b_useful : int;      (* instruction deltas within the bucket *)
  b_replay : int;
  b_idle : int;
  b_depth : int;       (* mean frontier depth over the bucket's samples *)
  b_queries : int;     (* solver-query delta *)
  b_sat_calls : int;
}

type totals = {
  t_useful : int;
  t_replay : int;
  t_idle : int;
  t_queries : int;
  t_sat_calls : int;
}

(* per-worker accumulator: previous cumulative sample + current bucket *)
type cell = {
  mutable p_useful : int;
  mutable p_replay : int;
  mutable p_idle : int;
  mutable p_queries : int;
  mutable p_sat : int;
  mutable c_useful : int;
  mutable c_replay : int;
  mutable c_idle : int;
  mutable c_queries : int;
  mutable c_sat : int;
  mutable c_depth_sum : int;
  mutable c_samples : int;
  mutable tot : totals;
}

type t = {
  bucket_ticks : int;
  cells : (int, cell) Hashtbl.t;
  mutable cur_bucket : int;  (* start tick of the open bucket *)
  mutable rows : row list;   (* flushed rows, newest first *)
}

let create ?(bucket_ticks = 100) () =
  { bucket_ticks = max 1 bucket_ticks; cells = Hashtbl.create 16; cur_bucket = 0; rows = [] }

let zero_totals = { t_useful = 0; t_replay = 0; t_idle = 0; t_queries = 0; t_sat_calls = 0 }

let cell t worker =
  match Hashtbl.find_opt t.cells worker with
  | Some c -> c
  | None ->
    let c =
      {
        p_useful = 0;
        p_replay = 0;
        p_idle = 0;
        p_queries = 0;
        p_sat = 0;
        c_useful = 0;
        c_replay = 0;
        c_idle = 0;
        c_queries = 0;
        c_sat = 0;
        c_depth_sum = 0;
        c_samples = 0;
        tot = zero_totals;
      }
    in
    Hashtbl.replace t.cells worker c;
    c

let flush_cells t =
  Hashtbl.iter
    (fun worker c ->
      if c.c_samples > 0 || c.c_useful + c.c_replay + c.c_idle > 0 then begin
        t.rows <-
          {
            b_worker = worker;
            b_start = t.cur_bucket;
            b_useful = c.c_useful;
            b_replay = c.c_replay;
            b_idle = c.c_idle;
            b_depth = (if c.c_samples = 0 then 0 else c.c_depth_sum / c.c_samples);
            b_queries = c.c_queries;
            b_sat_calls = c.c_sat;
          }
          :: t.rows;
        c.c_useful <- 0;
        c.c_replay <- 0;
        c.c_idle <- 0;
        c.c_queries <- 0;
        c.c_sat <- 0;
        c.c_depth_sum <- 0;
        c.c_samples <- 0
      end)
    t.cells

(* cumulative counter delta with reset detection *)
let delta prev cur = if cur >= prev then cur - prev else cur

let observe t ~tick ~worker ~useful ~replay ~idle ~depth ~queries ~sat_calls =
  if tick >= t.cur_bucket + t.bucket_ticks then begin
    flush_cells t;
    t.cur_bucket <- tick - (tick mod t.bucket_ticks)
  end;
  let c = cell t worker in
  let du = delta c.p_useful useful in
  let dr = delta c.p_replay replay in
  let di = delta c.p_idle idle in
  let dq = delta c.p_queries queries in
  let ds = delta c.p_sat sat_calls in
  c.p_useful <- useful;
  c.p_replay <- replay;
  c.p_idle <- idle;
  c.p_queries <- queries;
  c.p_sat <- sat_calls;
  c.c_useful <- c.c_useful + du;
  c.c_replay <- c.c_replay + dr;
  c.c_idle <- c.c_idle + di;
  c.c_queries <- c.c_queries + dq;
  c.c_sat <- c.c_sat + ds;
  c.c_depth_sum <- c.c_depth_sum + depth;
  c.c_samples <- c.c_samples + 1;
  c.tot <-
    {
      t_useful = c.tot.t_useful + du;
      t_replay = c.tot.t_replay + dr;
      t_idle = c.tot.t_idle + di;
      t_queries = c.tot.t_queries + dq;
      t_sat_calls = c.tot.t_sat_calls + ds;
    }

let flush t = flush_cells t

(* Flushed rows, oldest bucket first, workers ascending within a bucket. *)
let rows t =
  List.sort
    (fun a b ->
      match compare a.b_start b.b_start with 0 -> compare a.b_worker b.b_worker | c -> c)
    (List.rev t.rows)

let totals t =
  Hashtbl.fold (fun worker c acc -> (worker, c.tot) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let workers t = List.map fst (totals t)
