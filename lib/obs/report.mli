(** Offline reader for the metrics JSONL artifact, backing the
    [cloud9 report] subcommand. *)

(** Parse one JSONL object back into a sample; [None] when the object
    is not a metrics sample. *)
val sample_of_json : Json.t -> Metrics.sample option

(** Parse a whole dump (blank lines skipped); the error names the
    offending 1-based line. *)
val parse_jsonl : string -> (Metrics.snapshot, string) result

(** Render the summary: per-worker utilization table, solver
    answer-tier breakdown, remaining metrics. *)
val render : Buffer.t -> Metrics.snapshot -> unit

val render_string : Metrics.snapshot -> string

(** Render the profiling view ([cloud9 report --profile]): a p50/p90/p99
    table over every [latency_ns] histogram, the try-lock contention
    probes (hashcons shards, obs core lock), and the most contended
    hashcons shards. *)
val render_profile : Buffer.t -> Metrics.snapshot -> unit

val render_profile_string : Metrics.snapshot -> string
