(* The wall-clock profiler for the true multicore runtime.

   A Profile.t is a per-domain front-end over a (usually buffered) sink:
   it resolves one latency_ns histogram handle per span kind at
   construction, so recording a span on the hot path is two Clock reads
   plus one histogram bucket update — and, for the coarse kinds, one
   staged Sink.span that becomes an "X" event in the Chrome trace.

   Components hold a [Profile.t option]; [start] on [None] returns 0
   without touching the clock and [record] on [None] is a no-op, so a
   run without profiling pays one branch per probe site.

   Durations are clamped to >= 0: Clock.now_ns is not forced monotonic
   (see clock.ml), so a rare backwards step must not poison a histogram
   with a huge wrapped value. *)

type kind =
  | Mailbox_wait  (* worker domain blocked on its empty inbox *)
  | Steal_rtt  (* coordinator issued Steal -> victim's Jobs arrived at thief *)
  | Job_replay  (* replaying a transferred job from its path encoding *)
  | Recovery_replay  (* replaying an orphaned job recovered from the ledger *)
  | Quiesce_round  (* one coordinator loop: status drain + rebalance *)
  | Solver_query of Event.solver_tier

type t = {
  sink : Sink.t;
  h_mailbox : Metrics.histogram;
  h_steal : Metrics.histogram;
  h_replay : Metrics.histogram;
  h_recovery : Metrics.histogram;
  h_quiesce : Metrics.histogram;
  h_tiers : (Event.solver_tier * Metrics.histogram) list;
}

let kind_name = function
  | Mailbox_wait -> "mailbox_wait"
  | Steal_rtt -> "steal_rtt"
  | Job_replay -> "job_replay"
  | Recovery_replay -> "recovery_replay"
  | Quiesce_round -> "quiesce_round"
  | Solver_query _ -> "solver_query"

let all_tiers =
  Event.[ Trivial; Range; Sat_cache; Cex_cache; Det_cache; Sat_call ]

(* Histograms register find-or-create, so several profiles over the same
   registry (a worker's and its solver's, say) share handles. *)
let create sink =
  let m = Sink.metrics sink in
  let h ?(extra = []) kname =
    Metrics.histogram m
      ~labels:(("kind", kname) :: extra)
      ~buckets:Metrics.latency_ns_buckets "latency_ns"
  in
  {
    sink;
    h_mailbox = h "mailbox_wait";
    h_steal = h "steal_rtt";
    h_replay = h "job_replay";
    h_recovery = h "recovery_replay";
    h_quiesce = h "quiesce_round";
    h_tiers =
      List.map
        (fun tier -> (tier, h ~extra:[ ("tier", Event.tier_to_string tier) ] "solver_query"))
        all_tiers;
  }

let hist p = function
  | Mailbox_wait -> p.h_mailbox
  | Steal_rtt -> p.h_steal
  | Job_replay -> p.h_replay
  | Recovery_replay -> p.h_recovery
  | Quiesce_round -> p.h_quiesce
  | Solver_query tier -> (
    match List.assq_opt tier p.h_tiers with Some h -> h | None -> assert false)

(* Solver queries are orders of magnitude more frequent than the other
   kinds; a span per query would churn the ring and dominate flush
   traffic for no reading value.  Their latency lives in the per-tier
   histograms only. *)
let span_worthy = function Solver_query _ -> false | _ -> true

let start = function None -> 0 | Some _ -> Clock.now_ns ()

let record popt kind ~start_ns =
  match popt with
  | None -> 0
  | Some p ->
    let stop_ns = Clock.now_ns () in
    Metrics.observe (hist p kind) (float_of_int (max 0 (stop_ns - start_ns)));
    if span_worthy kind then Sink.span p.sink ~name:(kind_name kind) ~start_ns ~stop_ns;
    stop_ns
