(* Bench-history regression checking: a structural comparison of two
   BENCH_*.json artifacts (`cloud9 report --diff BASE NEW`).

   The committed artifacts are the canonical perf trajectory; CI diffs
   freshly produced ones against them, so the comparison has to separate
   three kinds of difference:

   - regressions  — a gate flipped ok:true -> ok:false, or a
     deterministic metric moved beyond its tolerance.  Non-zero exit.
   - notes        — structural drift that is not evidence of a
     regression: keys or rows present on one side only (a @quick
     artifact covers fewer tenants/sizes than the canonical full run),
     string changes, and host-dependent timing values.
   - silence      — values equal or within tolerance.

   Two artifacts produced under different "quick" settings are variant
   mismatched: row shapes and budgets legitimately differ, so numeric
   values are reported as notes and only the ok gates are enforced.
   Same-variant artifacts get the numeric rules: keys counting paths,
   errors or tenants must match exactly (the runtimes are exactness-
   gated elsewhere, so any drift is a real behavior change); wall-clock
   and host-shape keys are never compared; everything else numeric gets
   a loose relative tolerance that only gross movement breaks — parallel
   runtime counters (transfers, steals, replay) are scheduling-
   dependent. *)

type outcome = { regressions : string list; notes : string list }

let empty = { regressions = []; notes = [] }
let merge a b = { regressions = a.regressions @ b.regressions; notes = a.notes @ b.notes }
let regression msg = { empty with regressions = [ msg ] }
let note msg = { empty with notes = [ msg ] }

(* keys that identify a row inside an array of objects, tried in order *)
let identity_keys = [ "name"; "tenant"; "scenario"; "leg"; "bench"; "ndomains"; "workers"; "domains" ]

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Wall-clock / host-shape keys: never comparable across runs or hosts.
   "learned"/"deleted" are CDCL clause-database sizes — downstream of
   cache-hit ordering that varies run to run, so a 3x swing is normal. *)
let ignored_key k =
  ends_with ~suffix:"_s" k || ends_with ~suffix:"_ms" k || ends_with ~suffix:"_ns" k
  || ends_with ~suffix:"per_query" k || k = "seconds" || k = "host_cores" || k = "learned"
  || k = "deleted"
  || (String.length k >= 7 && String.sub k 0 7 = "speedup" && k <> "speedup_verdict")
  || ends_with ~suffix:"overhead_pct" k

(* Environment-profiling subtrees: lock contention and latency sampling
   measure the host and the scheduler's luck, not the program — every
   numeric value under them is incomparable across runs. *)
let ignored_subtrees = [ "latency_ns"; "hashcons_locks" ]

let in_ignored_subtree path =
  String.split_on_char '.' path
  |> List.exists (fun seg ->
         let seg =
           match String.index_opt seg '[' with Some i -> String.sub seg 0 i | None -> seg
         in
         List.mem seg ignored_subtrees)

(* Deterministic-exact keys: the runtimes carry exactness gates for
   these, so any drift at equal configuration is a behavior change. *)
let exact_key k =
  ends_with ~suffix:"paths" k || ends_with ~suffix:"errors" k || k = "tenants" || k = "tests"

let default_tolerance = 0.5 (* +/-50%: catches collapses, forgives scheduling noise *)

let render_num = Json.number_to_string

let num_diff ~path k base cur =
  if ignored_key k || in_ignored_subtree path then empty
  else if exact_key k then
    if base = cur then empty
    else
      regression
        (Printf.sprintf "%s: expected %s, got %s (exact key)" path (render_num base)
           (render_num cur))
  else
    let denom = Float.max (Float.abs base) 1e-9 in
    let drift = Float.abs (cur -. base) /. denom in
    if drift > default_tolerance then
      regression
        (Printf.sprintf "%s: %s -> %s (%.0f%% drift, tolerance %.0f%%)" path (render_num base)
           (render_num cur) (100.0 *. drift) (100.0 *. default_tolerance))
    else empty

(* The identity of a row in an array of objects, if it has one. *)
let row_identity v =
  List.find_map
    (fun k ->
      match Json.member k v with
      | Some (Json.Str s) -> Some (k, s)
      | Some (Json.Num f) -> Some (k, render_num f)
      | _ -> None)
    identity_keys

let rec diff ~strict ~path base cur =
  match (base, cur) with
  | Json.Obj bf, Json.Obj cf ->
    let acc =
      List.fold_left
        (fun acc (k, bv) ->
          let p = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k cf with
          | None -> merge acc (note (Printf.sprintf "%s: only in base artifact" p))
          | Some cv -> merge acc (diff ~strict ~path:p bv cv))
        empty bf
    in
    List.fold_left
      (fun acc (k, _) ->
        if List.mem_assoc k bf then acc
        else
          merge acc
            (note (Printf.sprintf "%s: only in new artifact" (if path = "" then k else path ^ "." ^ k))))
      acc cf
  | Json.Arr bi, Json.Arr ci -> (
    match (bi, ci) with
    | (Json.Obj _ :: _), _ when List.for_all (fun v -> row_identity v <> None) bi ->
      (* arrays of identified rows: match by identity, not position *)
      let ident v = Option.get (row_identity v) in
      let acc =
        List.fold_left
          (fun acc bv ->
            let k, id = ident bv in
            let p = Printf.sprintf "%s[%s=%s]" path k id in
            match List.find_opt (fun cv -> row_identity cv = Some (k, id)) ci with
            | None -> merge acc (note (Printf.sprintf "%s: row only in base artifact" p))
            | Some cv -> merge acc (diff ~strict ~path:p bv cv))
          empty bi
      in
      List.fold_left
        (fun acc cv ->
          match row_identity cv with
          | Some (k, id) when List.exists (fun bv -> row_identity bv = Some (k, id)) bi -> acc
          | Some (k, id) ->
            merge acc
              (note (Printf.sprintf "%s[%s=%s]: row only in new artifact" path k id))
          | None -> acc)
        acc ci
    | _ when List.length bi = List.length ci ->
      List.fold_left2
        (fun acc i (bv, cv) ->
          merge acc (diff ~strict ~path:(Printf.sprintf "%s[%d]" path i) bv cv))
        empty
        (List.init (List.length bi) Fun.id)
        (List.combine bi ci)
    | _ ->
      note
        (Printf.sprintf "%s: array length %d -> %d (not comparable positionally)" path
           (List.length bi) (List.length ci)))
  | Json.Bool b, Json.Bool c ->
    (* ok gates are enforced even across variants; true -> false is the
       one boolean regression, recovery is good news *)
    if b = c then empty
    else if b && not c then regression (Printf.sprintf "%s: gate flipped true -> false" path)
    else note (Printf.sprintf "%s: flipped false -> true" path)
  | Json.Num b, Json.Num c ->
    if strict then
      let key =
        match String.rindex_opt path '.' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path
      in
      (* strip a [idx] suffix so positional array elements inherit the
         parent key's comparison class *)
      let key = match String.index_opt key '[' with Some i -> String.sub key 0 i | None -> key in
      num_diff ~path key b c
    else if b <> c then
      note (Printf.sprintf "%s: %s -> %s (variant mismatch, not compared)" path (render_num b)
              (render_num c))
    else empty
  | Json.Str b, Json.Str c ->
    if b = c then empty else note (Printf.sprintf "%s: %S -> %S" path b c)
  | Json.Null, Json.Null -> empty
  | _ -> regression (Printf.sprintf "%s: type changed" path)

let same_variant base cur =
  match (Json.member "quick" base, Json.member "quick" cur) with
  | Some (Json.Bool b), Some (Json.Bool c) -> b = c
  | None, None -> true
  | _ -> false

(* Compare two artifacts.  [strict] forces full numeric comparison even
   across variants (the bench's seeded-regression self-test uses it
   implicitly by comparing same-variant documents). *)
let compare ?strict base cur =
  let strict = match strict with Some s -> s | None -> same_variant base cur in
  diff ~strict ~path:"" base cur

let render o =
  let buf = Buffer.create 256 in
  List.iter (fun m -> Buffer.add_string buf ("REGRESSION " ^ m ^ "\n")) o.regressions;
  List.iter (fun m -> Buffer.add_string buf ("note       " ^ m ^ "\n")) o.notes;
  Buffer.add_string buf
    (Printf.sprintf "%d regression(s), %d note(s)\n" (List.length o.regressions)
       (List.length o.notes));
  Buffer.contents buf

let ok o = o.regressions = []
