(* Minimal JSON support for the observability exporters and readers.

   The subsystem emits two artifact kinds — Chrome trace_event files and
   metrics JSONL — and `cloud9 report` reads the latter back.  The sealed
   build has no JSON library, so this module provides just enough: an
   escaping writer used by every exporter, and a small recursive-descent
   parser (objects, arrays, strings, numbers, booleans, null) used by the
   report reader and by the tests that validate emitted artifacts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- writing ---------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Exact round-trip float printing: integers print without an exponent
   or trailing zeros; everything else takes the shortest of %.15g/%.16g/
   %.17g that parses back to the identical bit pattern (17 significant
   digits always suffice for IEEE 754 doubles).  Non-finite values have
   no JSON representation and degrade to null like most encoders. *)
let number_to_string f =
  (* integer fast path: |f| < 1e15 < 2^53, so int_of_float is exact and
     string_of_int avoids Printf's format interpretation on the hot path
     (the Prometheus exposition is almost entirely integer-valued) *)
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    match exact "%.15g" with
    | Some s -> s
    | None -> ( match exact "%.16g" with Some s -> s | None -> Printf.sprintf "%.17g" f)

let number_token f = if Float.is_finite f then number_to_string f else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_token f)
  | Str s -> escape_to buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Malformed of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal lit value =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      value
    end
    else error ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then error "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> error "bad \\u escape"
               in
               (* ASCII round-trip is all the emitters need *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?';
               pos := !pos + 4
             | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s = try Ok (parse_exn s) with Malformed msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
