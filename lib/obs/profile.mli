(** The wall-clock profiler for the true multicore runtime: cheap span
    probes over a (usually buffered) {!Sink}, recorded into shared-bucket
    [latency_ns] histograms and — for the coarse kinds — staged as
    real-nanosecond spans that export as Chrome "X" events.

    Components hold a [Profile.t option]: {!start} on [None] returns 0
    without reading the clock and {!record} on [None] does nothing, so
    disabled profiling costs one branch per probe site. *)

type kind =
  | Mailbox_wait  (** worker domain blocked on its empty inbox *)
  | Steal_rtt  (** coordinator issued Steal → stolen Jobs arrived at thief *)
  | Job_replay  (** replaying a transferred job from its path encoding *)
  | Recovery_replay
      (** replaying an orphaned job recovered from the ledger after a
          crash — same mechanics as [Job_replay], reported separately so
          recovery cost is visible in the profile *)
  | Quiesce_round  (** one coordinator loop: status drain + rebalance *)
  | Solver_query of Event.solver_tier
      (** one answered solver query, by answer tier (histogram only — no
          span, queries are too frequent for the ring) *)

type t

(** Resolves one histogram handle per kind on [sink]'s registry
    (find-or-create: profiles sharing a registry share handles). *)
val create : Sink.t -> t

(** Wall-clock start timestamp for a span, 0 (no clock read) if [None]. *)
val start : t option -> int

(** Close a span opened at [start_ns]: observe its duration (clamped to
    >= 0) in the kind's histogram and, for non-solver kinds, stage a
    {!Sink.span}.  Returns the stop timestamp so back-to-back spans can
    chain without a second clock read; returns 0 if [None]. *)
val record : t option -> kind -> start_ns:int -> int

val kind_name : kind -> string
