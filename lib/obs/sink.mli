(** The sink instrumented components write through: a shared metrics
    registry, trace ring and per-worker timeline, scoped to a worker id.

    A run creates one sink ([create], attributed to the load balancer)
    and derives per-worker views with [for_worker]; all views share the
    same core, so exports see the whole run.  The driver advances
    [set_now] once per virtual tick; emitters never pass timestamps.

    Components hold a [Sink.t option] and do nothing when it is [None],
    so disabled observability costs one branch per already-rare event. *)

type t

val create : ?trace_capacity:int -> ?bucket_ticks:int -> unit -> t

(** A view of the same core attributed to worker [wid].  Derived from a
    buffered view, the result shares that view's buffer. *)
val for_worker : t -> int -> t

(** A *buffered* view for worker [wid], safe to hand to another domain:
    events and timeline samples stage in a domain-private buffer (with a
    private metrics registry and clock) and reach the shared core only
    under the core's single lock — automatically when the buffer fills,
    and in {!flush}.  Call {!flush} once when the owning domain finishes;
    the private metrics registry is folded into the core exactly once. *)
val buffered : t -> int -> t

val is_buffered : t -> bool

(** Drain a buffered view into the core (no-op on unbuffered views). *)
val flush : t -> unit

val worker : t -> int
val set_now : t -> int -> unit
val now : t -> int

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val timeline : t -> Timeline.t

(** Record [ev] at the current tick, attributed to this view's worker. *)
val event : t -> Event.t -> unit

(** Feed the timeline one sample of *cumulative* per-worker counters
    (see {!Timeline.observe}) at the current tick. *)
val observe :
  t ->
  useful:int ->
  replay:int ->
  idle:int ->
  depth:int ->
  queries:int ->
  sat_calls:int ->
  unit

(** Record a completed wall-clock span (real nanoseconds from
    {!Clock.now_ns}), attributed to this view's worker.  Buffered views
    stage it domain-privately; spans land in a bounded ring in the core
    and export as Chrome "X" complete events.  Used by {!Profile} on
    true multicore runs; the simulated driver never calls this. *)
val span : t -> name:string -> start_ns:int -> stop_ns:int -> unit

(** {!Clock.now_ns} at [create]; real-ns spans export relative to it. *)
val epoch_ns : t -> int

(** Register a named export-time sample provider, appended to
    {!metrics_samples}.  Replaces any provider with the same name, so
    registering from every per-domain component is idempotent.  Used for
    stats that live in global state outside any registry (e.g. the
    hashcons shard-lock probe in [Smt.Expr]). *)
val set_provider : t -> name:string -> (unit -> Metrics.sample list) -> unit

val attach_spill : t -> out_channel -> unit
val detach_spill : t -> unit

(** Chrome [trace_event] JSON (one array; load in chrome://tracing or
    Perfetto), on a dual time base: timeline buckets as "C" counter
    series and ring events as "i" instants at 1 tick = {!Clock.tick_ns}
    of trace time; real-nanosecond spans as "X" complete events relative
    to {!epoch_ns}.  Both halves share one microsecond axis. *)
val write_chrome_trace : t -> out_channel -> unit

(** Registry snapshot plus per-worker timeline totals
    ([worker_useful_instrs] etc.), the core-lock contention probe
    ([obs_core_lock_acquisitions{outcome=...}]) and any registered
    provider samples, one JSON object per line. *)
val write_metrics_jsonl : t -> out_channel -> unit

(** The samples behind [write_metrics_jsonl]. *)
val metrics_samples : t -> Metrics.snapshot
