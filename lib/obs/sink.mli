(** The sink instrumented components write through: a shared metrics
    registry, trace ring and per-worker timeline, scoped to a worker id.

    A run creates one sink ([create], attributed to the load balancer)
    and derives per-worker views with [for_worker]; all views share the
    same core, so exports see the whole run.  The driver advances
    [set_now] once per virtual tick; emitters never pass timestamps.

    Components hold a [Sink.t option] and do nothing when it is [None],
    so disabled observability costs one branch per already-rare event. *)

type t

val create : ?trace_capacity:int -> ?bucket_ticks:int -> unit -> t

(** A view of the same core attributed to worker [wid].  Derived from a
    buffered view, the result shares that view's buffer. *)
val for_worker : t -> int -> t

(** A *buffered* view for worker [wid], safe to hand to another domain:
    events and timeline samples stage in a domain-private buffer (with a
    private metrics registry and clock) and reach the shared core only
    under the core's single lock — automatically when the buffer fills,
    and in {!flush}.  Call {!flush} once when the owning domain finishes;
    the private metrics registry is folded into the core exactly once. *)
val buffered : t -> int -> t

val is_buffered : t -> bool

(** Drain a buffered view into the core (no-op on unbuffered views). *)
val flush : t -> unit

val worker : t -> int
val set_now : t -> int -> unit
val now : t -> int

val metrics : t -> Metrics.t
val trace : t -> Trace.t
val timeline : t -> Timeline.t

(** Record [ev] at the current tick, attributed to this view's worker. *)
val event : t -> Event.t -> unit

(** Feed the timeline one sample of *cumulative* per-worker counters
    (see {!Timeline.observe}) at the current tick. *)
val observe :
  t ->
  useful:int ->
  replay:int ->
  idle:int ->
  depth:int ->
  queries:int ->
  sat_calls:int ->
  unit

val attach_spill : t -> out_channel -> unit
val detach_spill : t -> unit

(** Chrome [trace_event] JSON (one array; load in chrome://tracing or
    Perfetto): timeline buckets as "C" counter series, ring events as
    "i" instants, 1 tick = 10ms of trace time. *)
val write_chrome_trace : t -> out_channel -> unit

(** Registry snapshot plus per-worker timeline totals
    ([worker_useful_instrs] etc.), one JSON object per line. *)
val write_metrics_jsonl : t -> out_channel -> unit

(** The samples behind [write_metrics_jsonl]. *)
val metrics_samples : t -> Metrics.snapshot
