(** Tick-stamped trace events in a bounded ring buffer, with an optional
    JSONL spill channel that receives every record before any
    overwriting. *)

type record = { r_tick : int; r_worker : int; r_event : Event.t }

type t

val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Total records ever appended (including overwritten ones). *)
val appended : t -> int

(** Records lost to ring overwriting. *)
val dropped : t -> int

val attach_spill : t -> out_channel -> unit
val detach_spill : t -> unit

val record : t -> tick:int -> worker:int -> Event.t -> unit

(** Buffered records, oldest first. *)
val contents : t -> record list

val iter : (record -> unit) -> t -> unit

val record_to_json : record -> Json.t
