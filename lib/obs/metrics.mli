(** The metrics registry: named counters, gauges and fixed-bucket
    histograms, optionally labeled.  Handles are resolved once at
    component construction; updating one is a single mutable-field
    write, so instrumented hot paths never pay a registry lookup. *)

type labels = (string * string) list

type counter
type gauge
type histogram
type t

val create : unit -> t

(** Find-or-create.  Re-registering a name+labels pair with a different
    instrument type raises [Invalid_argument]; re-registering with the
    same type returns the existing handle (labeled families are built by
    registering one name under several label sets). *)
val counter : t -> ?labels:labels -> string -> counter

val gauge : t -> ?labels:labels -> string -> gauge

(** [buckets] are ascending upper bounds; an implicit +inf bucket is
    appended. *)
val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram

val default_buckets : float array

(** Exponential (x2) bucket bounds for wall-clock latencies in
    nanoseconds, 100ns .. ~6.7s.  All [latency_ns] histograms in the
    profiling layer share these so merges line up bucket-for-bucket. *)
val latency_ns_buckets : float array

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** Fold [src] into [into]: counters and histogram buckets add, gauges
    take [src]'s value, missing instruments are registered on the fly.
    Used to flush a per-domain registry into the shared one. *)
val merge_into : into:t -> t -> unit

type value =
  | Vcounter of int
  | Vgauge of float
  | Vhistogram of { vbounds : float array; vcounts : int array; vsum : float; vcount : int }

type sample = { s_name : string; s_labels : labels; s_value : value }

(** Samples in registration order. *)
type snapshot = sample list

val snapshot : t -> snapshot

(** Counters and histograms report the delta since [base]; gauges keep
    the newer sample. *)
val diff : base:snapshot -> snapshot -> snapshot

val find : snapshot -> string -> labels -> sample option

(** [percentile v q] estimates the [q]-quantile ([0. <= q <= 1.]) of a
    histogram sample by linear interpolation within the bucket holding
    the target rank (lower edge of the first bucket is 0; ranks landing
    in the +inf overflow bucket clamp to the last finite bound).
    [None] for non-histograms and empty histograms. *)
val percentile : value -> float -> float option

val sample_to_json : sample -> Json.t

(** One JSON object per line:
    [{"metric":...,"labels":{...},"type":...,"value":...}]. *)
val write_jsonl : Buffer.t -> snapshot -> unit

(** Prometheus text exposition: one [# TYPE] header per family, then one
    sample line per label set; histograms expand to cumulative
    [_bucket{le=...}] series plus [_sum] and [_count]. *)
val write_prometheus : Buffer.t -> snapshot -> unit
