(* Cluster driver: a discrete-event simulation of a Cloud9 deployment.

   Substitution note (see DESIGN.md): the paper measures wall-clock time
   on an EC2 cluster; a single-machine reproduction cannot honestly run 48
   workers concurrently, so time is *virtual*.  Each simulated worker
   embeds a real engine instance exploring the real execution tree; in
   every tick a worker retires up to [speed] instructions (heterogeneous
   per worker if desired), messages carry a latency in ticks, and workers
   may join at different times.  Everything the paper measures — time to
   goal, useful (non-replay) instructions, states transferred per
   interval, the effect of disabling the balancer — is preserved.

   Failure semantics (paper sections 3.1-3.3, DESIGN.md "Failure
   semantics"): the [faults] plan may crash workers (optionally rejoining
   later with a fresh engine), drop / duplicate / delay messages, and
   partition links.  The data plane — job transfers, their acks, and
   transfer requests — is therefore at-least-once: every routed job batch
   is leased and retransmitted with exponential backoff until
   acknowledged; receivers deduplicate by lease id.  Status reports are
   the reliable control plane and double as each worker's durable
   recovery point.  The lease/crash-recovery state machine itself lives
   in {!Transport}, shared with the real-domain {!Parallel} runtime;
   this driver supplies the virtual-time backend: a latency-stamped
   inbox lossy per {!Faultplan.fate}, and a [begin_crash] that drops the
   simulated engine, filters undeliverable traffic, and forgets the
   balancer entry.  A live worker that exhausts a lease's retransmit
   budget is evicted through the same crash path, which is what keeps
   re-routing from ever double-exploring a subtree.

   One tick nominally represents 10 ms of virtual time. *)

module Path = Engine.Path
module Executor = Engine.Executor

type message =
  | Jobs of {
      lease : int;
      src : int; (* a worker id, or Faultplan.lb for ledger (re)sends *)
      dst : int;
      encoded : string; (* Job.encode_batch form — prefix handoff codec *)
      recovery : bool;
    }
  | Transfer_request of { src : int; dst : int; count : int }
  | Ack of { lease : int; src : int }

type goal =
  | Exhaust                (* stop when the global tree is fully explored *)
  | Coverage_target of float
  | Time_limit             (* run until max_ticks *)

type 'env config = {
  nworkers : int;
  make_worker : int -> 'env Worker.t; (* builds worker [i] with its own engine *)
  join_tick : int -> int;   (* when worker [i] joins the cluster *)
  speed : int -> int;       (* instructions per tick for worker [i] *)
  status_interval : int;    (* ticks between status updates *)
  latency : int;            (* message latency in ticks *)
  lb_disable_at : int option;
  goal : goal;
  max_ticks : int;
  bucket_ticks : int;       (* stats bucket size (Fig. 12 uses 10 s) *)
  coverable_lines : int;    (* denominator for global coverage fraction *)
  faults : Faultplan.t;     (* crash / loss / partition schedule *)
  (* Campaign-service hooks (see lib/service): a run may start from a
     checkpointed frontier instead of the root, and may be preempted
     after an instruction budget.  Preemption drains the cluster to a
     barrier — no execution budgets granted, in-flight leases allowed to
     settle — at which point the union of worker digests partitions the
     unexplored region exactly and is exported for a later resume. *)
  init_frontier : Job.t list option; (* [Some jobs]: seed these, not the root *)
  init_bans : Job.t list;   (* checkpointed ban set to re-install *)
  stop_after_instrs : int option; (* drain + export once useful instrs reach this *)
}

type bucket = {
  b_start_tick : int;
  mutable transferred : int; (* states moved between workers in this bucket *)
  mutable candidates : int;  (* candidate nodes, averaged over the bucket's ticks *)
  mutable cand_sum : int;    (* accumulator for the average *)
  mutable cand_samples : int;
  mutable useful : int;      (* cumulative useful instructions at bucket end *)
  mutable coverage : float;  (* global coverage fraction at bucket end *)
}

let fresh_bucket t =
  { b_start_tick = t; transferred = 0; candidates = 0; cand_sum = 0; cand_samples = 0; useful = 0; coverage = 0.0 }

(* Everything a campaign must persist to resume this run later and reach
   the exact totals of an uninterrupted one: the unexplored frontier as
   job-tree path encodings (each node exactly once, taken at a drained
   barrier), the cumulative ban set, this run's counters, and the union
   coverage bit vector. *)
type frontier_export = {
  fx_jobs : Job.t list;      (* every unexplored candidate, exactly once *)
  fx_bans : Job.t list;      (* cumulative ban set (crash recoveries) *)
  fx_paths : int;            (* this run's completed-path total *)
  fx_errors : int;
  fx_coverage : Bytes.t;     (* union line bit vector of this run *)
}

type result = {
  ticks : int;               (* virtual time consumed *)
  reached_goal : bool;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;           (* total states transferred *)
  buckets : bucket list;     (* oldest first *)
  per_worker_useful : (int * int) list; (* worker id -> useful instructions *)
  final_coverage : float;
  crashes : int;             (* crash-plan victims plus lease evictions *)
  recovered_jobs : int;      (* orphaned jobs re-seeded from ledger copies *)
  retransmits : int;         (* job batches resent after an ack timeout *)
  recovery_replay_instrs : int; (* replay cost of reconstructing orphans *)
  solver_stats : Smt.Solver.stats; (* cluster-wide aggregate, dead workers included *)
  per_worker_solver : (int * Smt.Solver.stats) list; (* live workers at run end *)
  export : frontier_export option;
      (* present iff [stop_after_instrs] was set and the run reached a
         drained barrier (budget preemption or natural exhaustion); a
         [max_ticks] bailout mid-flight yields [None] *)
}

let popcount_bytes b =
  let rec pop x acc = if x = 0 then acc else pop (x lsr 1) (acc + (x land 1)) in
  let c = ref 0 in
  Bytes.iter (fun ch -> c := !c + pop (Char.code ch) 0) b;
  !c

let run ?obs (cfg : 'env config) =
  (match Faultplan.validate cfg.faults ~nworkers:cfg.nworkers with
  | Ok () -> ()
  | Error m -> invalid_arg ("Driver.run: " ^ m));
  let workers : 'env Worker.t option array = Array.make cfg.nworkers None in
  let departed = Array.make cfg.nworkers false in (* crashed; blocks re-arrival *)
  let frt = Faultplan.make cfg.faults in
  (* observability plumbing.  The driver owns virtual time: it advances
     the sink's clock once per tick and takes one cumulative timeline
     sample per live worker per tick (plus a final one at crash time, so
     an evicted worker's same-tick instructions are not lost).  All of it
     is skipped entirely when [obs] is [None]. *)
  let emit ev = match obs with None -> () | Some s -> Obs.Sink.event s ev in
  let wsinks =
    match obs with
    | None -> [||]
    | Some s -> Array.init cfg.nworkers (Obs.Sink.for_worker s)
  in
  let idle_acc = Array.make cfg.nworkers 0 in (* cumulative unused budget *)
  let d_solver = Smt.Solver.zero_stats () in  (* dead workers' solver counters *)
  let sample_worker i (w : 'env Worker.t) =
    if obs <> None then begin
      let stats = w.Worker.cfg.Executor.stats in
      let ss = Smt.Solver.stats w.Worker.cfg.Executor.solver in
      Obs.Sink.observe wsinks.(i) ~useful:stats.Executor.useful_instrs
        ~replay:stats.Executor.replay_instrs ~idle:idle_acc.(i)
        ~depth:(Worker.queue_length w) ~queries:ss.Smt.Solver.queries
        ~sat_calls:ss.Smt.Solver.sat_calls
    end
  in
  (* the balancer is created when the first worker joins, sized from that
     worker's coverage vector (all workers' vectors have the same length) *)
  let lb = ref None in
  let lb_pending_disable = ref false in
  let inbox : (int * message) list ref = ref [] in (* (deliver_tick, msg) *)
  let tick = ref 0 in
  let transfers_total = ref 0 in
  let buckets = ref [] in
  let cur_bucket = ref (fresh_bucket 0) in
  let stop = ref false in
  let reached = ref false in
  let root_seeded = ref false in
  (* drain mode (budget preemption): no execution budgets are granted and
     no new transfers are issued, but message delivery, acks, reports and
     retransmission sweeps continue until no lease is in flight — the
     barrier at which worker digests partition the unexplored region. *)
  let draining = ref false in
  (* counters of crashed workers, captured at crash time: the reported
     path/error counts live in the transport's credits (unreported
     completions are redone by recovery and counted there — never
     twice), while these instruction counters hold everything the dead
     engine physically executed *)
  let d_useful = ref 0 and d_replay = ref 0 and d_broken = ref 0 in
  let d_recov_replay = ref 0 in

  let send_net ~at ~src ~dst msg =
    match Faultplan.fate frt ~tick:!tick ~src ~dst with
    | Faultplan.Drop -> ()
    | Faultplan.Deliver extra -> inbox := (at + extra, msg) :: !inbox
    | Faultplan.Duplicate lag -> inbox := (at, msg) :: (at + lag, msg) :: !inbox
  in
  let alive_workers () =
    Array.to_list workers |> List.filter_map (fun w -> w)
  in
  let jobs_delay encoded =
    (* transfer size adds latency: 1 tick per 4 KiB of wire encoding *)
    cfg.latency + (String.length encoded / 4096)
  in
  (* The shared fault-tolerance core, driving this simulation's wire:
     leased sends enter the lossy latency-stamped inbox, and a
     crash-stop tears the simulated worker down before the transport
     reconstructs its unexplored region from the ledger. *)
  let transport =
    Transport.create ~base_timeout:(6 * (cfg.latency + 1)) ~initial_bans:cfg.init_bans ?obs
      {
        Transport.nworkers = cfg.nworkers;
        send_jobs =
          (fun ~src ~lease ~dst ~batch ~recovery ~resend:_ ->
            let encoded = Job.encode_batch batch in
            send_net ~at:(!tick + jobs_delay encoded) ~src ~dst
              (Jobs { lease; src; dst; encoded; recovery }));
        install_bans =
          (fun bans -> List.iter (fun w -> Worker.ban_paths w bans) (alive_workers ()));
        live_workers =
          (fun () ->
            Array.to_list workers
            |> List.mapi (fun i w -> Option.map (fun w -> (i, Worker.queue_length w)) w)
            |> List.filter_map (fun x -> x));
        begin_crash =
          (fun ~worker:i ->
            if i < 0 || i >= cfg.nworkers then false (* out-of-range victim *)
            else
              match workers.(i) with
              | None -> false (* scheduled crash of a worker not (yet, anymore) alive *)
              | Some w ->
                departed.(i) <- true;
                sample_worker i w; (* last timeline sample before the engine is dropped *)
                emit (Obs.Event.Crash { worker = i });
                Smt.Solver.accum_stats d_solver (Smt.Solver.stats w.Worker.cfg.Executor.solver);
                let _, _, useful, replay = Worker.stats w in
                d_useful := !d_useful + useful;
                d_replay := !d_replay + replay;
                d_broken := !d_broken + w.Worker.broken_replays;
                d_recov_replay := !d_recov_replay + w.Worker.recovery_replay_instrs;
                (* undeliverable traffic: jobs to the dead worker are already
                   re-routed through their leases; requests involving it are moot *)
                inbox :=
                  List.filter
                    (fun (_, m) ->
                      match m with
                      | Jobs { dst; _ } -> dst <> i
                      | Transfer_request { src; dst; _ } -> src <> i && dst <> i
                      | Ack _ -> true (* stale acks are ignored by the ledger *))
                    !inbox;
                (match !lb with Some b -> Balancer.forget b ~worker:i | None -> ());
                workers.(i) <- None;
                true);
      }
  in
  let ledger = Transport.ledger transport in
  let spawn i =
    let w = cfg.make_worker i in
    Worker.ban_paths w (Transport.bans transport);
    (match !lb with
    | Some _ -> ()
    | None ->
      let b =
        Balancer.create ~coverage_bytes:(Bytes.length w.Worker.cfg.Executor.coverage) ?obs ()
      in
      if !lb_pending_disable then Balancer.disable b;
      lb := Some b);
    workers.(i) <- Some w;
    (* fresh engine: zero the timeline's cumulative cursors so the
       rejoined worker's counters are not mistaken for a continuation *)
    if obs <> None then begin
      idle_acc.(i) <- 0;
      Obs.Sink.observe wsinks.(i) ~useful:0 ~replay:0 ~idle:0 ~depth:0 ~queries:0 ~sat_calls:0
    end;
    w
  in
  (* lease id -> worker that processed it: receiver-side dedup, and the
     source of the cumulative acknowledgement piggybacked on reports *)
  let processed_leases : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let global_coverage_fraction () =
    match !lb with
    | None -> 0.0
    | Some b ->
      (* merge every live worker's vector into the LB's view *)
      let g = Balancer.global_coverage b in
      List.iter
        (fun w ->
          let c = w.Worker.cfg.Executor.coverage in
          for i = 0 to min (Bytes.length g) (Bytes.length c) - 1 do
            Bytes.set g i (Char.chr (Char.code (Bytes.get g i) lor Char.code (Bytes.get c i)))
          done)
        (alive_workers ());
      if cfg.coverable_lines = 0 then 1.0
      else float_of_int (popcount_bytes g) /. float_of_int cfg.coverable_lines
  in
  (* the same union, as raw bytes — exported so a resumed campaign can OR
     slices together (lines covered only by completed paths are not
     re-covered by frontier replays) *)
  let global_coverage_bytes () =
    match !lb with
    | None -> Bytes.create 0
    | Some b ->
      let g = Balancer.global_coverage b in
      List.iter
        (fun w ->
          let c = w.Worker.cfg.Executor.coverage in
          for i = 0 to min (Bytes.length g) (Bytes.length c) - 1 do
            Bytes.set g i (Char.chr (Char.code (Bytes.get g i) lor Char.code (Bytes.get c i)))
          done)
        (alive_workers ());
      Bytes.copy g
  in
  let totals () =
    List.fold_left
      (fun (p, e, u, r, b) w ->
        let paths, errs, useful, replay = Worker.stats w in
        (p + paths, e + errs, u + useful, r + replay, b + w.Worker.broken_replays))
      ( Transport.credit_paths transport,
        Transport.credit_errors transport,
        !d_useful,
        !d_replay,
        !d_broken )
      (alive_workers ())
  in

  while not !stop do
    let t = !tick in
    (match obs with Some s -> Obs.Sink.set_now s t | None -> ());
    (* scheduled faults: crash-stop, then fresh-engine rejoins *)
    List.iter
      (fun i -> Transport.handle_crash transport ~now:t ~worker:i)
      (Faultplan.crashes_at frt ~tick:t);
    List.iter
      (fun i ->
        if i >= 0 && i < cfg.nworkers && workers.(i) = None then begin
          departed.(i) <- false;
          emit (Obs.Event.Rejoin { worker = i });
          ignore (spawn i)
        end)
      (Faultplan.rejoins_at frt ~tick:t);
    (* worker arrivals *)
    for i = 0 to cfg.nworkers - 1 do
      if workers.(i) = None && (not departed.(i)) && cfg.join_tick i <= t then begin
        emit (Obs.Event.Join { worker = i });
        let w = spawn i in
        if i = 0 && not !root_seeded then begin
          (match cfg.init_frontier with
          | None ->
            Worker.seed_root w;
            Transport.seed_root transport ~dst:0 ~now:t
          | Some jobs ->
            (* resume: the checkpointed frontier becomes virtual
               candidates on the first worker (the balancer spreads them
               like any load imbalance), leased as a delivered seed so a
               crash before the first report re-seeds it.  Replaying a
               restored frontier is restoration cost, not ordinary
               rebalancing replay: it books as recovery, consistent with
               the other failure-path re-imports (see DESIGN.md, "Prefix
               handoff").  The slice budget already counts only useful
               instructions, so the classification changes accounting,
               not behavior. *)
            Worker.receive_jobs ~recovery:true w jobs;
            Transport.seed_jobs transport ~dst:0 ~jobs ~now:t);
          root_seeded := true
        end
      end
    done;
    (* deliver due messages *)
    let due, later = List.partition (fun (at, _) -> at <= t) !inbox in
    inbox := later;
    List.iter
      (fun (_, msg) ->
        match msg with
        | Jobs { lease; src; dst; encoded; recovery } -> (
          match workers.(dst) with
          | Some w ->
            (* always (re)acknowledge: the previous ack may have been
               lost; deliver the payload only once per lease *)
            send_net ~at:(t + cfg.latency) ~src:dst ~dst:Faultplan.lb
              (Ack { lease; src = dst });
            if not (Hashtbl.mem processed_leases lease) then begin
              Hashtbl.replace processed_leases lease dst;
              let batch =
                match Job.decode_batch encoded with
                | Ok b -> b
                | Error e -> failwith ("Driver: corrupt job batch: " ^ e)
              in
              let count = Job.batch_size batch in
              emit (Obs.Event.Job_transfer { lease; src; dst; count; recovery });
              Worker.receive_batch ~recovery w batch;
              transfers_total := !transfers_total + count;
              !cur_bucket.transferred <- !cur_bucket.transferred + count
            end
          | None -> ())
        | Transfer_request { src; dst; count } -> (
          (* during a drain no new leases may be created: the jobs stay
             in the source's digest, which is what the export records *)
          if not !draining then
            match (workers.(src), workers.(dst)) with
            | Some w, Some _ ->
              let jobs = Worker.transfer_out w ~count in
              if jobs <> [] then
                ignore (Transport.issue_transfer transport ~src ~dst ~jobs ~now:t)
            | _ -> ())
        | Ack { lease; _ } -> Ledger.mark_delivered ledger ~lease ~now:t)
      due;
    (* balancer disable hook (Fig. 13) *)
    (match cfg.lb_disable_at with
    | Some at when t = at -> (
      match !lb with Some b -> Balancer.disable b | None -> lb_pending_disable := true)
    | Some _ | None -> ());
    (* each worker runs its per-tick instruction budget (suspended while
       draining to a preemption barrier) *)
    if not !draining then
      Array.iteri
        (fun i w ->
          match w with
          | Some w ->
            let used = Worker.execute w ~budget:(cfg.speed i) in
            if obs <> None then begin
              idle_acc.(i) <- idle_acc.(i) + max 0 (cfg.speed i - used);
              sample_worker i w
            end
          | None -> ())
        workers;
    (* periodic status reports and rebalancing.  Reports are the reliable
       control plane: each doubles as the worker's durable recovery point
       in the ledger (frontier digest + cumulative counters). *)
    if t mod cfg.status_interval = 0 then begin
      match !lb with
      | None -> ()
      | Some b ->
        Array.iteri
          (fun i w ->
            match w with
            | None -> ()
            | Some w ->
              let paths, errs, _, _ = Worker.stats w in
              let received =
                Hashtbl.fold (fun id dst acc -> if dst = i then id :: acc else acc)
                  processed_leases []
              in
              Ledger.record_report ~received ledger ~worker:i ~tick:t
                ~digest:(Worker.digest_paths w) ~paths ~errors:errs;
              let cov = w.Worker.cfg.Executor.coverage in
              let global =
                Balancer.report ~tick:t b ~worker:i ~queue_len:(Worker.queue_length w)
                  ~coverage:cov
              in
              (* the worker merges the global vector into its own so its
                 local coverage-optimized strategy pursues the global goal *)
              ignore (Executor.merge_coverage w.Worker.cfg global))
          workers;
        if not !draining then
          List.iter
            (fun { Balancer.src; dst; count } ->
              send_net ~at:(t + cfg.latency) ~src:Faultplan.lb ~dst:src
                (Transfer_request { src; dst; count }))
            (Balancer.rebalance ~now:t ~staleness:(2 * cfg.status_interval) b)
    end;
    (* at-least-once delivery: the transport resends leases past their
       backoff deadline, evicts destinations that exhaust the retransmit
       budget (the crash path keeps the re-route exact), and re-routes
       orphans parked while no worker was alive *)
    Transport.tick transport ~now:t;
    (* bucket bookkeeping: sample the candidate population every tick so
       the bucket reports an average, not an end-of-bucket snapshot *)
    !cur_bucket.cand_sum <-
      !cur_bucket.cand_sum
      + List.fold_left (fun acc w -> acc + Worker.queue_length w) 0 (alive_workers ());
    !cur_bucket.cand_samples <- !cur_bucket.cand_samples + 1;
    if (t + 1) mod cfg.bucket_ticks = 0 then begin
      let _, _, useful, _, _ = totals () in
      !cur_bucket.candidates <- !cur_bucket.cand_sum / max 1 !cur_bucket.cand_samples;
      !cur_bucket.useful <- useful;
      !cur_bucket.coverage <- global_coverage_fraction ();
      buckets := !cur_bucket :: !buckets;
      cur_bucket := fresh_bucket (t + 1)
    end;
    (* goal checks.  Exhaustion means the partitioned exploration really
       is complete: the root was seeded, no job is in flight or awaiting
       an ack or parked for recovery, and every live worker is idle.
       Workers whose join tick never arrives cannot block it. *)
    let exhausted () =
      !root_seeded
      && !inbox = []
      && Transport.quiesced transport
      && (match alive_workers () with
         | [] -> false
         | ws -> List.for_all Worker.is_idle ws)
    in
    (match cfg.goal with
    | Exhaust -> if exhausted () then begin reached := true; stop := true end
    | Coverage_target target ->
      if t mod cfg.status_interval = 0 && global_coverage_fraction () >= target then begin
        reached := true;
        stop := true
      end
      else if exhausted () then stop := true
    | Time_limit -> if exhausted () then begin reached := true; stop := true end);
    (* budget preemption: once the cluster has retired the instruction
       budget, drain to a barrier and stop there with an export.  Only
       *useful* instructions count: replaying a resumed frontier is
       restoration cost, and charging it to the budget would let a slice
       whose replay bill exceeds the budget drain with zero progress —
       a campaign restored behind a deep frontier would then spin
       forever.  Counting useful work alone guarantees every slice
       advances exploration, so chained slices terminate. *)
    (match cfg.stop_after_instrs with
    | Some budget when not !draining ->
      let _, _, useful, _, _ = totals () in
      if useful >= budget then draining := true
    | Some _ | None -> ());
    if !draining && !inbox = [] && Transport.quiesced transport then stop := true;
    incr tick;
    if !tick >= cfg.max_ticks then stop := true
  done;
  let total_paths, total_errors, useful, replay, broken = totals () in
  (* the frontier export: only meaningful at a drained barrier (budget
     preemption, or natural exhaustion under a budget — where the digests
     are empty and the export records just counters, bans and coverage) *)
  let export =
    match cfg.stop_after_instrs with
    | None -> None
    | Some _ when not (!inbox = [] && Transport.quiesced transport) -> None
    | Some _ ->
      Some
        {
          fx_jobs = List.concat_map Worker.digest_paths (alive_workers ());
          fx_bans = Transport.bans transport;
          fx_paths = total_paths;
          fx_errors = total_errors;
          fx_coverage = global_coverage_bytes ();
        }
  in
  let solver_agg = Smt.Solver.zero_stats () in
  Smt.Solver.accum_stats solver_agg d_solver;
  List.iter
    (fun w -> Smt.Solver.accum_stats solver_agg (Smt.Solver.stats w.Worker.cfg.Executor.solver))
    (alive_workers ());
  {
    ticks = !tick;
    reached_goal = !reached;
    total_paths;
    total_errors;
    useful_instrs = useful;
    replay_instrs = replay;
    broken_replays = broken;
    transfers = !transfers_total;
    buckets = List.rev !buckets;
    per_worker_useful =
      List.map
        (fun w -> (w.Worker.id, w.Worker.cfg.Executor.stats.Executor.useful_instrs))
        (alive_workers ());
    final_coverage = global_coverage_fraction ();
    crashes = Transport.crashes transport;
    recovered_jobs = Transport.recovered_jobs transport;
    retransmits = Transport.retransmits transport;
    recovery_replay_instrs =
      List.fold_left
        (fun acc w -> acc + w.Worker.recovery_replay_instrs)
        !d_recov_replay (alive_workers ());
    solver_stats = solver_agg;
    per_worker_solver =
      List.map
        (fun w -> (w.Worker.id, Smt.Solver.copy_stats w.Worker.cfg.Executor.solver))
        (alive_workers ());
    export;
  }

(* Convenience: a homogeneous cluster configuration with sensible
   defaults.  [make_worker] receives the worker id. *)
let default_config ?(faults = Faultplan.none) ~nworkers ~make_worker ~coverable_lines () =
  {
    nworkers;
    make_worker;
    join_tick = (fun _ -> 0);
    speed = (fun _ -> 2000);
    status_interval = 20;
    latency = 2;
    lb_disable_at = None;
    goal = Exhaust;
    max_ticks = 1_000_000;
    bucket_ticks = 1000;
    coverable_lines;
    faults;
    init_frontier = None;
    init_bans = [];
    stop_after_instrs = None;
  }
