(** True-multicore cluster runtime: one OCaml domain per worker.

    Where {!Driver} simulates a Cloud9 deployment in virtual time (the
    deterministic reference), this runtime actually runs each
    {!Worker.t} — a real {!Engine.Executor} instance — on its own
    [Domain.t] and measures wall-clock scaling, the paper's headline
    result (Figs. 7–8).

    Workers exchange path-encoded jobs, transfer requests, and
    queue-length status reports through mutex+condition-protected
    bounded mailboxes.  The coordinator (the calling domain) feeds
    status reports to the existing {!Balancer}, forwards its transfer
    requests, and detects global quiescence: every worker idle with an
    empty mailbox and no job batches in flight (an atomic credit
    counter, incremented before a batch is enqueued and decremented
    after the receiver imports it, makes the check race-free).

    The runtime explores exhaustively ({!Driver.Exhaust}); because
    per-path execution is deterministic and transferred subtrees are
    fenced at the source, a parallel run completes with exactly the
    simulated (and single-engine) path and error totals, whatever the
    interleaving — the differential gate [bench scaling] enforces. *)

type 'env config = {
  ndomains : int;  (** worker domains (the coordinator runs on the caller) *)
  make_worker : int -> 'env Worker.t;
      (** called {e inside} worker [i]'s domain, so domain-local solver
          state (simplify memo, caches) is created where it is used *)
  slice : int;  (** instructions executed between mailbox polls *)
  status_every : int;  (** slices between status reports while busy *)
  mailbox_capacity : int;  (** bound on each mailbox, in messages *)
  obs : Obs.Sink.t option;
      (** when set, the runtime profiles itself with wall-clock spans:
          mailbox waits and steal round-trips per worker domain (through
          each worker's buffered view), quiescence rounds on the
          coordinator (through a buffered lb-attributed view, flushed
          after all domains join) *)
}

val default_config :
  ?obs:Obs.Sink.t -> ndomains:int -> make_worker:(int -> 'env Worker.t) -> unit -> 'env config

type result = {
  ndomains : int;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;  (** jobs moved between workers *)
  steals : int;  (** transfer requests issued by the balancer *)
  status_reports : int;
  jobs_sent : int;
  jobs_received : int;
  coverage_vector : Bytes.t;  (** union of the workers' line bit vectors *)
  final_coverage : float;  (** covered fraction of [coverable_lines] *)
  per_worker_useful : (int * int) list;
  solver_stats : Smt.Solver.stats;  (** aggregate over all workers *)
  per_worker_solver : (int * Smt.Solver.stats) list;
}

(** Run to exhaustion on [ndomains] worker domains.  [coverable_lines]
    is the denominator of [final_coverage]. *)
val run : coverable_lines:int -> 'env config -> result
