(** True-multicore cluster runtime: one OCaml domain per worker.

    Where {!Driver} simulates a Cloud9 deployment in virtual time (the
    deterministic reference), this runtime actually runs each
    {!Worker.t} — a real {!Engine.Executor} instance — on its own
    [Domain.t] and measures wall-clock scaling, the paper's headline
    result (Figs. 7–8).

    Workers exchange path-encoded jobs, transfer requests, and status
    reports through mutex+condition-protected bounded mailboxes.  The
    coordinator (the calling domain) feeds status reports to the
    existing {!Balancer} and owns the shared fault-tolerance core
    ({!Transport}): every job batch in flight is covered by a {!Ledger}
    lease, retransmitted until acknowledged and deduplicated by the
    receiver, so the runtime survives the same fault model as the
    simulation — Faultplan-driven domain crashes (crash-stop with
    amnesia, the victim observing an atomic crash flag at slice poll
    points), mid-run rejoins on a fresh domain, and seeded message
    loss / delay / duplication on the job wire.  Crashes recover
    exactly: the victim's last status report is its durable recovery
    point, orphaned leases are re-seeded on live workers, and handed-
    away nodes are banned, so a faulty run terminates with exactly the
    fault-free path and error totals — the differential gates
    [bench scaling] (fault-free) and [bench faults-parallel] (faulty)
    enforce.  A heartbeat failure detector (off by default) declares
    busy workers that stop reporting, and a watchdog aborts the run
    with a state dump rather than hang.

    The runtime explores exhaustively ({!Driver.Exhaust}); dead slots
    are exempt from the quiescence predicate, so a run whose crashed
    workers never rejoin still terminates. *)

type 'env config = {
  ndomains : int;  (** worker domains (the coordinator runs on the caller) *)
  make_worker : int -> 'env Worker.t;
      (** called {e inside} worker [i]'s domain, so domain-local solver
          state (simplify memo, caches) is created where it is used *)
  slice : int;  (** instructions executed between mailbox polls *)
  status_every : int;  (** slices between status reports while busy *)
  mailbox_capacity : int;  (** bound on each mailbox, in messages *)
  faults : Faultplan.t;
      (** crash / rejoin / loss schedule, in coordinator ticks.  The
          plan is validated against [ndomains] before the run starts. *)
  tick_period : float;
      (** seconds between coordinator ticks (the unit of the fault
          schedule, lease timeouts, and heartbeat intervals) *)
  heartbeat_ticks : int;
      (** failure detector: a busy worker silent for one interval is
          suspected, for two is declared crashed.  0 disables. *)
  push_timeout : float;
      (** seconds the coordinator will wait on a full worker mailbox
          before treating the push as a lost message *)
  watchdog : float;
      (** seconds without coordinator progress before the run aborts
          with a state dump (0 disables) *)
  obs : Obs.Sink.t option;
      (** when set, the runtime profiles itself with wall-clock spans:
          mailbox waits, steal round-trips and (recovery) replays per
          worker domain, quiescence rounds on the coordinator (through
          a buffered lb-attributed view, flushed after all domains
          join); crash/rejoin/lease events are emitted the same way *)
}

val default_config :
  ?obs:Obs.Sink.t ->
  ?faults:Faultplan.t ->
  ndomains:int ->
  make_worker:(int -> 'env Worker.t) ->
  unit ->
  'env config

type result = {
  ndomains : int;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;  (** jobs moved between workers (leased batches) *)
  steals : int;  (** transfer requests issued by the balancer *)
  status_reports : int;
  jobs_sent : int;
  jobs_received : int;
  crashes : int;  (** plan victims, heartbeat declarations, and evictions *)
  recovered_jobs : int;  (** orphaned jobs re-seeded from ledger copies *)
  retransmits : int;  (** job batches resent after an ack timeout *)
  recovery_replay_instrs : int;  (** replay cost of reconstructing orphans *)
  coverage_vector : Bytes.t;  (** union of the workers' line bit vectors *)
  final_coverage : float;  (** covered fraction of [coverable_lines] *)
  per_worker_useful : (int * int) list;  (** live incarnations only *)
  solver_stats : Smt.Solver.stats;  (** aggregate over all incarnations *)
  per_worker_solver : (int * Smt.Solver.stats) list;  (** live incarnations *)
}

(** Run to exhaustion on [ndomains] worker domains.  [coverable_lines]
    is the denominator of [final_coverage].

    @raise Invalid_argument when [ndomains < 1] or the fault plan fails
      {!Faultplan.validate}.
    @raise Failure when the watchdog fires (workers are crash-stopped
      and joined first, so the exception is clean). *)
val run : coverable_lines:int -> 'env config -> result
