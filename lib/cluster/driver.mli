(** Cluster driver: a discrete-event simulation of a Cloud9 deployment.

    The paper measures wall-clock time on an EC2 cluster; a single-machine
    reproduction cannot honestly run 48 workers concurrently, so time here
    is {e virtual}: each simulated worker embeds a real engine exploring
    the real execution tree, retires a per-tick instruction budget, and
    exchanges messages with simulated latency.  Everything the paper
    measures — time to goal, useful instructions, transfer rates, the
    effect of disabling the balancer — is preserved.  One tick nominally
    represents 100 ms.

    The [faults] plan may crash workers (optionally rejoining with a
    fresh engine), drop/duplicate/delay messages, and partition links.
    Job transfers are leased in the {!Ledger} and delivered at least
    once (ack + timeout + bounded retransmit with backoff, receiver-side
    deduplication); status reports are the reliable control plane and
    double as each worker's durable recovery point.  On a crash the
    driver credits the victim's last-reported counters and re-seeds its
    orphaned subtrees on live workers, so a faulty run completes with
    exactly the fault-free path and error totals. *)

type goal =
  | Exhaust                  (** stop when the global tree is explored *)
  | Coverage_target of float
  | Time_limit               (** run until [max_ticks] *)

type 'env config = {
  nworkers : int;
  make_worker : int -> 'env Worker.t;
  join_tick : int -> int;   (** when worker i joins the cluster *)
  speed : int -> int;       (** instructions per tick for worker i *)
  status_interval : int;    (** ticks between status updates to the LB *)
  latency : int;            (** message latency in ticks *)
  lb_disable_at : int option;  (** Fig. 13's mid-run disable *)
  goal : goal;
  max_ticks : int;
  bucket_ticks : int;       (** statistics bucket size *)
  coverable_lines : int;    (** denominator of global coverage *)
  faults : Faultplan.t;     (** crash / loss / partition schedule *)
  init_frontier : Job.t list option;
      (** campaign resume: seed these checkpointed frontier nodes on the
          first worker instead of the root job *)
  init_bans : Job.t list;   (** checkpointed ban set to re-install *)
  stop_after_instrs : int option;
      (** campaign preemption: once the cluster retires this many
          {e useful} instructions, stop granting execution budgets, let
          in-flight leases settle, and stop at the drained barrier with
          [result.export] filled.  Replay instructions (restoring a
          resumed frontier) are not charged, so every slice is
          guaranteed to advance exploration and chained slices
          terminate even when the replay bill exceeds the budget *)
}

(** Everything a campaign persists to resume a run and reach the exact
    totals of an uninterrupted one: the unexplored frontier as job path
    encodings (each node exactly once, captured at a drained barrier),
    the cumulative ban set, this run's counters, and the union coverage
    bit vector. *)
type frontier_export = {
  fx_jobs : Job.t list;
  fx_bans : Job.t list;
  fx_paths : int;
  fx_errors : int;
  fx_coverage : Bytes.t;
}

type bucket = {
  b_start_tick : int;
  mutable transferred : int;
  mutable candidates : int;  (** averaged over the bucket's ticks *)
  mutable cand_sum : int;
  mutable cand_samples : int;
  mutable useful : int;      (** cumulative useful instructions at bucket end *)
  mutable coverage : float;  (** global coverage fraction at bucket end *)
}

type result = {
  ticks : int;
  reached_goal : bool;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;
  buckets : bucket list;  (** oldest first *)
  per_worker_useful : (int * int) list;
  final_coverage : float;
  crashes : int;  (** crash-plan victims plus lease evictions *)
  recovered_jobs : int;  (** orphaned jobs re-seeded from ledger copies *)
  retransmits : int;  (** job batches resent after an ack timeout *)
  recovery_replay_instrs : int;  (** replay cost of reconstructing orphans *)
  solver_stats : Smt.Solver.stats;
      (** cluster-wide solver aggregate, dead workers included *)
  per_worker_solver : (int * Smt.Solver.stats) list;
      (** per-worker solver counters for workers alive at run end *)
  export : frontier_export option;
      (** present iff [stop_after_instrs] was set and the run reached a
          drained barrier (budget preemption or natural exhaustion); a
          [max_ticks] bailout mid-flight yields [None] *)
}

(** [obs] enables observability for the run: the driver advances the
    sink's virtual clock, samples one timeline point per live worker per
    tick (utilization, frontier depth, solver activity), and traces
    cluster control-plane events (joins, crashes, rejoins, job
    transfers); the ledger and balancer trace through the same sink.
    Workers built by [make_worker] are expected to carry
    [Obs.Sink.for_worker obs i] in their engine config so engine and
    solver events are attributed to them. *)
val run : ?obs:Obs.Sink.t -> 'env config -> result

(** A homogeneous cluster with sensible defaults (speed 2000, status every
    20 ticks, latency 2, exhaustive goal, no faults). *)
val default_config :
  ?faults:Faultplan.t ->
  nworkers:int ->
  make_worker:(int -> 'env Worker.t) ->
  coverable_lines:int ->
  unit ->
  'env config
