(* The Cloud9 load balancer (paper section 3.3).

   Workers periodically report their queue length (number of candidate
   nodes) and their coverage bit vector.  The balancer classifies workers
   as underloaded / overloaded by mean and standard deviation, pairs them
   from the two ends of the sorted list, and issues transfer requests
   <source, destination, job count>.  It also maintains the global
   coverage overlay: reported vectors are OR-ed in, and the merged vector
   is returned to the reporting worker so its local strategy can pursue
   the global goal. *)

type request = { src : int; dst : int; count : int }

type t = {
  delta : float; (* the delta constant of the classification rule *)
  queues : (int, int) Hashtbl.t; (* worker id -> last reported queue length *)
  last_report : (int, int) Hashtbl.t; (* worker id -> tick of last report *)
  global_coverage : Bytes.t;
  mutable enabled : bool; (* Fig. 13 disables balancing mid-run *)
  mutable total_transfers_requested : int;
  obs : Obs.Sink.t option;
  queue_mean : Obs.Metrics.gauge option;  (* resolved at create *)
  queue_sigma : Obs.Metrics.gauge option;
}

let create ?(delta = 0.5) ?obs ~coverage_bytes () =
  {
    delta;
    queues = Hashtbl.create 16;
    last_report = Hashtbl.create 16;
    global_coverage = Bytes.make coverage_bytes '\000';
    enabled = true;
    total_transfers_requested = 0;
    obs;
    queue_mean = Option.map (fun s -> Obs.Metrics.gauge (Obs.Sink.metrics s) "lb_queue_mean") obs;
    queue_sigma =
      Option.map (fun s -> Obs.Metrics.gauge (Obs.Sink.metrics s) "lb_queue_sigma") obs;
  }

let disable t = t.enabled <- false

(* A worker status update: merge coverage, remember the queue length, and
   return the current global coverage for the worker to merge back. *)
let report ?(tick = 0) t ~worker ~queue_len ~coverage =
  Hashtbl.replace t.queues worker queue_len;
  Hashtbl.replace t.last_report worker tick;
  let n = min (Bytes.length coverage) (Bytes.length t.global_coverage) in
  for i = 0 to n - 1 do
    Bytes.set t.global_coverage i
      (Char.chr (Char.code (Bytes.get t.global_coverage i) lor Char.code (Bytes.get coverage i)))
  done;
  Bytes.copy t.global_coverage

let forget t ~worker =
  Hashtbl.remove t.queues worker;
  Hashtbl.remove t.last_report worker

(* Compute transfer requests from the last reported queue lengths.  Pairs
   are matched from the ends of the queue-length-sorted worker list; each
   pair <Wi, Wj> with li < lj moves (lj - li) / 2 jobs (paper 3.3).
   When [now]/[staleness] are given, workers whose last report is older
   than [staleness] ticks are skipped entirely: a departed or silent
   worker's stale queue length must neither skew the mean/sigma
   classification nor attract transfers it cannot acknowledge. *)
let rebalance ?now ?(staleness = max_int) t =
  if not t.enabled then []
  else begin
    let fresh w =
      match now with
      | None -> true
      | Some now -> (
        match Hashtbl.find_opt t.last_report w with
        | Some at -> now - at <= staleness
        | None -> false)
    in
    let entries =
      Hashtbl.fold (fun w l acc -> if fresh w then (w, l) :: acc else acc) t.queues []
    in
    let nworkers = List.length entries in
    if nworkers < 2 then []
    else begin
      let lens = List.map (fun (_, l) -> float_of_int l) entries in
      let mean = List.fold_left ( +. ) 0.0 lens /. float_of_int nworkers in
      let var =
        List.fold_left (fun acc l -> acc +. ((l -. mean) ** 2.0)) 0.0 lens
        /. float_of_int nworkers
      in
      let sigma = sqrt var in
      (match t.queue_mean with Some g -> Obs.Metrics.set g mean | None -> ());
      (match t.queue_sigma with Some g -> Obs.Metrics.set g sigma | None -> ());
      let lo = Float.max (mean -. (t.delta *. sigma)) 0.0 in
      let hi = mean +. (t.delta *. sigma) in
      let sorted = List.sort (fun (_, a) (_, b) -> compare a b) entries in
      let under = List.filter (fun (_, l) -> float_of_int l < lo || l = 0) sorted in
      let over =
        List.filter (fun (_, l) -> float_of_int l > hi && l >= 2) (List.rev sorted)
      in
      let rec pair acc under over =
        match (under, over) with
        | (wi, li) :: under', (wj, lj) :: over'
          when wi <> wj && lj > li + 1 && (li = 0 || lj >= (2 * li) + 8) ->
          (* Deadband: a queue length measures *future* work, not
             starvation — a worker with 10 candidates against a peer's
             100 is still fully busy, and moving jobs between busy
             workers only converts useful exploration into replay.  So a
             non-empty destination must trail the source by at least 2x
             plus a constant before any transfer fires; with small
             clusters the mean±δσ rule alone degenerates (any imbalance
             classifies both ends) and dribbles jobs every round.

             Batched steal sizing.  A *starved* destination (empty queue)
             receives half the source's deque in one request — eager
             splitting: one steal round-trip moves a coherent subtree
             whose prefix-factored batch replays its shared prefix once,
             instead of dribbling jobs over many round-trips.  A merely
             underloaded destination gets half the difference, capped at
             a quarter of the source's queue: uncapped moves between
             busy workers churn states faster than they can be
             explored. *)
          let count =
            let raw =
              if li = 0 then max 1 (lj / 2)
              else min ((lj - li) / 2) (max 1 (lj / 4))
            in
            (* Absolute cap: each transferred candidate is a whole
               subtree, so a starved worker is saturated by a dozen
               nodes; moving half of a 150-node queue pre-pays replay
               for work the thief will never get to before re-export. *)
            min raw 8
          in
          (* A rich source can serve several starved destinations in one
             round (initial work spread must not take O(nworkers)
             rounds): keep it in the over list with its remaining queue
             until the deadband stops qualifying it. *)
          let over'' = if lj - count > 1 then (wj, lj - count) :: over' else over' in
          pair ({ src = wj; dst = wi; count } :: acc) under' over''
        | _ :: under', over -> pair acc under' over
        | [], _ -> acc
      in
      let reqs = pair [] under over in
      (* optimistically update the ledger so the next round does not
         re-issue the same transfers before fresh reports arrive *)
      List.iter
        (fun { src; dst; count } ->
          Hashtbl.replace t.queues src (max 0 ((Hashtbl.find t.queues src) - count));
          Hashtbl.replace t.queues dst (Hashtbl.find t.queues dst + count);
          t.total_transfers_requested <- t.total_transfers_requested + count;
          match t.obs with
          | Some s -> Obs.Sink.event s (Obs.Event.Transfer_request { src; dst; count })
          | None -> ())
        reqs;
      reqs
    end
  end

let global_coverage t = t.global_coverage
