(* Exploration jobs and their transfer encoding.

   A job is a candidate node to explore, encoded as the path from the
   execution-tree root to that node (paper section 3.2: the alternative —
   serializing the multi-megabyte program state — trades bandwidth for the
   destination's replay CPU; Cloud9 chooses paths because commodity
   clusters have abundant CPU and meager bisection bandwidth).

   When several jobs travel together their paths are aggregated into a
   *job tree*, sharing common prefixes.  [tree_encoded_size] measures the
   wire size of that encoding (one byte per edge plus one per leaf marker),
   which the transfer-encoding ablation bench compares against naive
   per-path encoding and against simulated state serialization. *)

module Path = Engine.Path
module Trie = Engine.Trie

type t = Path.t (* root-first choice list *)

(* Wire size of jobs encoded independently: one length byte plus one byte
   per choice. *)
let naive_encoded_size jobs =
  List.fold_left (fun acc j -> acc + 1 + Path.encoded_size j) 0 jobs

(* Wire size after aggregating into a prefix-sharing job tree, serialized
   preorder: one structure byte per node (child count + job-leaf flag)
   plus one byte per edge (the choice).  Sharing wins as soon as jobs have
   substantial common prefixes, which transferred sibling candidates
   always do. *)
let tree_encoded_size jobs =
  let trie = Trie.create () in
  List.iter (fun j -> Trie.add trie j ()) jobs;
  Trie.structure_size trie

(* Simulated size of serializing the program state instead of the path:
   the paper quotes "at least several megabytes" for real programs; our
   miniatures are smaller, so we model it as a fixed header plus the
   state's live memory footprint. *)
let state_encoded_size ~memory_bytes = 256 + memory_bytes
