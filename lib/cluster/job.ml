(* Exploration jobs and their transfer encoding.

   A job is a candidate node to explore, encoded as the path from the
   execution-tree root to that node (paper section 3.2: the alternative —
   serializing the multi-megabyte program state — trades bandwidth for the
   destination's replay CPU; Cloud9 chooses paths because commodity
   clusters have abundant CPU and meager bisection bandwidth).

   When several jobs travel together their paths are aggregated into a
   *job tree*, sharing common prefixes.  [tree_encoded_size] measures the
   wire size of that encoding (one byte per edge plus one per leaf marker),
   which the transfer-encoding ablation bench compares against naive
   per-path encoding and against simulated state serialization. *)

module Path = Engine.Path
module Trie = Engine.Trie

type t = Path.t (* root-first choice list *)

(* Wire size of jobs encoded independently: one length byte plus one byte
   per choice. *)
let naive_encoded_size jobs =
  List.fold_left (fun acc j -> acc + 1 + Path.encoded_size j) 0 jobs

(* Wire size after aggregating into a prefix-sharing job tree, serialized
   preorder: one structure byte per node (child count + job-leaf flag)
   plus one byte per edge (the choice).  Sharing wins as soon as jobs have
   substantial common prefixes, which transferred sibling candidates
   always do. *)
let tree_encoded_size jobs =
  let trie = Trie.create () in
  List.iter (fun j -> Trie.add trie j ()) jobs;
  Trie.structure_size trie

(* Simulated size of serializing the program state instead of the path:
   the paper quotes "at least several megabytes" for real programs; our
   miniatures are smaller, so we model it as a fixed header plus the
   state's live memory footprint. *)
let state_encoded_size ~memory_bytes = 256 + memory_bytes

(* Prefix handoff: the unit of transfer is no longer N independent root
   paths but their longest common prefix plus per-job suffixes.  The
   thief replays the prefix once and forks each suffix from the cached
   prefix state, so replay cost drops from O(N·depth) to
   O(depth + Σ|suffix|).  Both cluster backends ship the same compact
   string codec through Cluster.Transport, which keeps the simulated
   driver and the real-domain runtime bit-identical on counts: leases,
   bans and digests still account in full root paths ([expand]). *)
type batch = { prefix : Path.t; suffixes : Path.t list }

let batch_of_jobs jobs =
  let prefix, suffixes = Path.factor jobs in
  { prefix; suffixes }

let jobs_of_batch { prefix; suffixes } = Path.expand (prefix, suffixes)
let batch_size { suffixes; _ } = List.length suffixes
let encode_batch { prefix; suffixes } = Path.encode_batch (prefix, suffixes)

let decode_batch s =
  match Path.decode_batch s with
  | Ok (prefix, suffixes) -> Ok { prefix; suffixes }
  | Error _ as e -> e

(* Wire size of the factored batch: the codec string itself. *)
let batch_encoded_size b = String.length (encode_batch b)
