(* The shared scheduler/transport core: coordinator-side fault tolerance
   logic common to both cluster runtimes.

   The virtual-time {!Driver} and the real-domain {!Parallel} runtime
   move messages very differently (a simulated latency queue vs. real
   mutex+condition mailboxes), but the recovery protocol on top is the
   same state machine: every routed job batch is leased in the
   {!Ledger}, unacknowledged leases are retransmitted with exponential
   backoff, a destination that exhausts the retransmit budget is evicted
   through the crash path, and a crash credits the victim's last
   reported counters, re-seeds its orphaned subtrees on live workers
   (parking them while none is alive), and bans the exact nodes the
   victim had already handed away.

   This module owns that state machine; each backend supplies the moving
   parts it alone understands through an {!ops} record: how to put a
   leased batch on its (lossy) wire, how to install bans on live
   workers, which workers can accept recovery jobs, and how to
   crash-stop one of them.  [begin_crash] runs the backend's teardown
   (drop the engine, forget the balancer entry, filter undeliverable
   traffic) and the transport completes the ledger half, so neither
   backend can get the ordering wrong. *)

type ops = {
  nworkers : int;
  send_jobs :
    src:int -> lease:int -> dst:int -> batch:Job.batch -> recovery:bool -> resend:bool -> unit;
  install_bans : Job.t list -> unit;
  live_workers : unit -> (int * int) list;
  begin_crash : worker:int -> bool;
}

(* Every batch leaving the coordinator is factored here — prefix handoff
   is a transport property, not a backend one, so the simulated driver
   and the real-domain runtime ship (and their receivers decode) the
   exact same codec.  The ledger keeps accounting in full root paths;
   only the wire carries the factored form. *)
let to_batch jobs = Job.batch_of_jobs jobs

type t = {
  ops : ops;
  ledger : Ledger.t;
  mutable crashes : int;
  mutable recovered : int;
  mutable credit_paths : int;
  mutable credit_errors : int;
  mutable global_bans : Job.t list;
  mutable parked : Job.t list; (* orphans awaiting a live worker *)
}

let create ?base_timeout ?max_attempts ?(initial_bans = []) ?obs ops =
  {
    ops;
    ledger = Ledger.create ?base_timeout ?max_attempts ?obs ();
    crashes = 0;
    recovered = 0;
    credit_paths = 0;
    credit_errors = 0;
    global_bans = initial_bans;
    parked = [];
  }

let ledger t = t.ledger

(* Re-seed orphaned jobs as recovery leases, spread over the live
   workers least-loaded first; parked until a worker is alive. *)
let route_recovery t ~now orphans =
  if orphans <> [] then begin
    let live =
      List.sort (fun (_, a) (_, b) -> compare a b) (t.ops.live_workers ())
    in
    match live with
    | [] -> t.parked <- orphans @ t.parked
    | _ ->
      let n = List.length live in
      let chunks = Array.make n [] in
      List.iteri (fun k job -> chunks.(k mod n) <- job :: chunks.(k mod n)) orphans;
      List.iteri
        (fun k (dst, _) ->
          match chunks.(k) with
          | [] -> ()
          | jobs ->
            let lease = Ledger.issue t.ledger ~dst ~jobs ~now ~recovery:true in
            t.recovered <- t.recovered + List.length jobs;
            t.ops.send_jobs ~src:Faultplan.lb ~lease ~dst ~batch:(to_batch jobs) ~recovery:true
              ~resend:false)
        live
  end

(* Crash-stop a worker: the backend tears down its half ([begin_crash]
   returns [false] when the slot is not crashable — already dead, never
   alive, or out of range), then the ledger computes the recovery set:
   credit the victim's last-reported counters, warn live workers off the
   nodes it had handed away, and re-seed its orphaned subtrees. *)
let rec handle_crash t ~now ~worker =
  if t.ops.begin_crash ~worker then begin
    t.crashes <- t.crashes + 1;
    let { Ledger.credit_paths; credit_errors; orphans; bans } =
      Ledger.on_crash t.ledger ~worker
    in
    t.credit_paths <- t.credit_paths + credit_paths;
    t.credit_errors <- t.credit_errors + credit_errors;
    if bans <> [] then begin
      t.global_bans <- bans @ t.global_bans;
      t.ops.install_bans bans
    end;
    route_recovery t ~now orphans
  end

(* At-least-once delivery sweep: resend leases past their backoff
   deadline; a lease that exhausts its retransmit budget evicts its
   destination (the crash path keeps the re-route exact).  Orphans
   parked while no worker was alive are re-routed once one is. *)
and tick t ~now =
  let resend, failed = Ledger.tick_timeouts t.ledger ~now in
  List.iter
    (fun (l : Ledger.lease) ->
      t.ops.send_jobs ~src:Faultplan.lb ~lease:l.Ledger.lease_id ~dst:l.Ledger.l_dst
        ~batch:(to_batch l.Ledger.l_jobs) ~recovery:l.Ledger.l_recovery ~resend:true)
    resend;
  List.iter (fun (l : Ledger.lease) -> handle_crash t ~now ~worker:l.Ledger.l_dst) failed;
  if t.parked <> [] && t.ops.live_workers () <> [] then begin
    let orphans = t.parked in
    t.parked <- [];
    route_recovery t ~now orphans
  end

(* Lease and send a rebalancing transfer.  The sent-out record must be
   updated first: if [src] crashes before its next report, recovery must
   not re-seed (and live workers must drop) the nodes it just gave
   away.  [recovery] marks failure-path transfers (e.g. a batch
   re-routed around a dead thief) so the destination books their replay
   with the recovery cost, not ordinary rebalancing. *)
let issue_transfer ?(recovery = false) t ~src ~dst ~jobs ~now =
  Ledger.record_sent_out t.ledger ~src ~jobs;
  let lease = Ledger.issue t.ledger ~dst ~jobs ~now ~recovery in
  t.ops.send_jobs ~src ~lease ~dst ~batch:(to_batch jobs) ~recovery ~resend:false;
  lease

(* Seed jobs are leased like any routed batch (and marked delivered on
   the spot — the receiving worker holds them by construction), so a
   crash of the seed worker before its first status report re-seeds the
   whole batch.  The root job is the classic case; a campaign restore
   seeds a whole checkpointed frontier the same way. *)
let seed_jobs t ~dst ~jobs ~now =
  if jobs <> [] then begin
    let lease = Ledger.issue t.ledger ~dst ~jobs ~now ~recovery:false in
    Ledger.mark_delivered t.ledger ~lease ~now
  end

let seed_root t ~dst ~now = seed_jobs t ~dst ~jobs:[ [] ] ~now

let quiesced t = t.parked = [] && Ledger.pending t.ledger = 0
let bans t = t.global_bans
let parked_orphans t = List.length t.parked
let crashes t = t.crashes
let recovered_jobs t = t.recovered
let retransmits t = Ledger.retransmits t.ledger
let credit_paths t = t.credit_paths
let credit_errors t = t.credit_errors
