(** Declarative fault schedules for the cluster simulation: worker
    crashes (with optional rejoin), seeded message drop / duplication /
    delay, and link partitions between worker pairs.  The driver consults
    the plan's {!runtime} each tick; a fixed seed makes a faulty run
    exactly reproducible.

    The fault model is crash-stop with amnesia: a crashed worker loses
    its frontier, snapshot cache, and every statistic not yet reported to
    the load balancer; rejoining creates a brand-new worker in the same
    slot (see DESIGN.md, "Failure semantics"). *)

type crash = {
  victim : int;               (** worker id *)
  at_tick : int;
  rejoin_after : int option;  (** [None] = permanent departure *)
}

type partition = {
  p_a : int;
  p_b : int;
  p_from : int;  (** first tick the link is down *)
  p_until : int; (** first tick the link is up again *)
}

type t = {
  crashes : crash list;
  drop_prob : float;      (** P(message lost in transit) *)
  dup_prob : float;       (** P(message delivered twice) *)
  delay_prob : float;     (** P(extra delivery delay) *)
  max_extra_delay : int;  (** extra delay drawn from [1, max] ticks *)
  partitions : partition list;
  seed : int;
}

(** The perfect world: no crashes, lossless links. *)
val none : t

val create :
  ?crashes:crash list ->
  ?drop_prob:float ->
  ?dup_prob:float ->
  ?delay_prob:float ->
  ?max_extra_delay:int ->
  ?partitions:partition list ->
  ?seed:int ->
  unit ->
  t

val crash : ?rejoin_after:int -> int -> at_tick:int -> crash

val is_faultless : t -> bool

(** Check the plan against a cluster of [nworkers] slots: every crash and
    partition must reference a worker id in [0, nworkers), crash ticks
    must be non-negative, and rejoin delays strictly positive (a rejoin
    at or before its own crash would silently never fire).  Runtimes call
    this before starting a faulty run and refuse invalid plans. *)
val validate : t -> nworkers:int -> (unit, string) result

(** Fate of one message entering the network. *)
type fate =
  | Deliver of int    (** extra delay in ticks (0 = on time) *)
  | Drop
  | Duplicate of int  (** delivered twice; the copy trails by this delay *)

(** Per-run instance holding the seeded random stream and the indexed
    crash/rejoin schedule. *)
type runtime

val make : t -> runtime

(** Workers crashing at this tick. *)
val crashes_at : runtime -> tick:int -> int list

(** Workers whose rejoin delay elapses at this tick. *)
val rejoins_at : runtime -> tick:int -> int list

(** The load balancer's endpoint id in [fate]'s [src]/[dst] ([-1]);
    partitions only ever cut worker-to-worker links. *)
val lb : int

(** Decide the fate of one message sent at [tick] from [src] to [dst].
    Consulted once per send, in simulation order, so a fixed seed fixes
    the whole run. *)
val fate : runtime -> tick:int -> src:int -> dst:int -> fate
