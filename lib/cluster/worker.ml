(* A Cloud9 worker: an independent symbolic execution engine exploring one
   region of the global execution tree (paper section 3.2).

   The worker's local view is its exploration *frontier*: candidate nodes,
   each either *materialized* (program state in memory) or *virtual* (an
   empty shell encoded as its root path, received in a job transfer).
   Dead nodes are simply dropped — their state is never needed again — and
   *fence* nodes are kept as paths only, marking subtrees some other
   worker owns.  Choosing a virtual candidate triggers a lazy replay: the
   worker re-executes the path from the root; forks encountered along the
   way yield off-path siblings, which are fenced because they are being
   explored elsewhere (Fig. 3's node life cycle).

   Selection interleaves KLEE's random-path strategy (over the whole
   frontier, virtual nodes included) with the coverage-optimized weighted
   strategy (over materialized states), as in the paper's evaluation; a
   custom weight function can replace the coverage weights (used e.g. by
   the fewest-faults-first strategy of section 7.3.3). *)

module Path = Engine.Path
module Trie = Engine.Trie
module State = Engine.State
module Executor = Engine.Executor
module Errors = Engine.Errors
module Testcase = Engine.Testcase

type 'env entry = {
  epath : Path.t; (* root-first *)
  estate : 'env State.t option; (* None = virtual *)
  erecovery : bool; (* re-seeded by crash recovery (cost accounting) *)
}

type 'env mode =
  | Exploring
  | Replaying of {
      target : Path.t;
      remaining : Path.choice list;
      rstate : 'env State.t;
      recov : bool; (* replaying a recovery job *)
    }

type policy = Random_path_only | Interleaved

type 'env t = {
  id : int;
  cfg : 'env Executor.config;
  make_root : unit -> 'env State.t;
  frontier : 'env entry Trie.t;
  fence : unit Trie.t;
  banned : unit Trie.t;
  (* exact node paths owned by another worker: a crashed worker had sent
     them out after its last status report, so replaying its stale
     frontier digest would re-create them.  Consulted (and consumed) only
     when a fork produces the exact path; see DESIGN.md, "Failure
     semantics". *)
  rng : Random.State.t;
  policy : policy;
  weight : ('env State.t -> float) option;
  quantum : int; (* instructions to run a state before reselecting *)
  collect_tests : int;
  (* snapshot cache: recently seen states at fork points, so replays start
     from the deepest known ancestor instead of the root — the paper's
     "replayed from nodes on the frontier, instead of from the root"
     optimization (section 8, discussion of VeriSoft).  Sibling jobs in a
     transferred job tree share long prefixes, so each replay seeds the
     next one's start point. *)
  snapshots : (string, 'env State.t) Hashtbl.t;
  snap_queue : string Queue.t; (* FIFO eviction *)
  snap_limit : int;
  (* prefix pins: while a received batch has members outstanding, every
     on-path snapshot cached by a member's replay is pinned against FIFO
     eviction.  The first member's replay thus leaves the whole chain of
     its ancestors in the cache, and each later member restarts from its
     pairwise common prefix with the nearest already-replayed member —
     the batch replays the distinct edges of its spanning trie once,
     not k full root paths. *)
  pins : (string, int) Hashtbl.t; (* snapshot key -> pin refcount *)
  pin_of_target : (string, string) Hashtbl.t; (* member job key -> batch key *)
  batch_members : (string, int) Hashtbl.t; (* batch key -> outstanding members *)
  batch_keys : (string, string) Hashtbl.t; (* batch key -> pinned keys (multi-bound) *)
  (* received batch members not yet selected, in transfer order (tree
     adjacent): draining them consecutively replays each member from its
     neighbour's freshly pinned chain instead of scattering the replays
     across the run, when the pins are long gone *)
  mutable batch_fifo : Path.t list;
  mutable mode : 'env mode;
  mutable cov_turn : bool;
  mutable paths_completed : int;
  mutable errors : int;
  mutable pruned : int;
  mutable tests : Testcase.t list;
  mutable broken_replays : int;
  mutable replays_done : int;
  mutable jobs_sent : int;
  mutable jobs_received : int;
  mutable banned_drops : int;
  mutable recovery_replay_instrs : int; (* replay cost of recovery jobs *)
  prof : Obs.Profile.t option;
  mutable replay_t0 : int; (* wall-clock start of the replay in flight (profiling only) *)
}

let create ?(policy = Interleaved) ?weight ?(quantum = 50) ?(collect_tests = 0)
    ?(snap_limit = 512) ?prof ~id ~cfg ~make_root ~seed () =
  let w =
    {
      id;
      cfg;
      make_root;
      frontier = Trie.create ();
      fence = Trie.create ();
      banned = Trie.create ();
      rng = Random.State.make [| seed; id |];
      policy;
      weight;
      quantum;
      collect_tests;
      snapshots = Hashtbl.create 256;
      snap_queue = Queue.create ();
      snap_limit;
      pins = Hashtbl.create 16;
      pin_of_target = Hashtbl.create 64;
      batch_members = Hashtbl.create 16;
      batch_keys = Hashtbl.create 64;
      batch_fifo = [];
      mode = Exploring;
      cov_turn = false;
      paths_completed = 0;
      errors = 0;
      pruned = 0;
      tests = [];
      broken_replays = 0;
      replays_done = 0;
      jobs_sent = 0;
      jobs_received = 0;
      banned_drops = 0;
      recovery_replay_instrs = 0;
      prof;
      replay_t0 = 0;
    }
  in
  w

(* Trace through the engine config's sink, which the constructor already
   scoped to this worker's id; [None] = unobserved. *)
let emit w ev =
  match w.cfg.Executor.obs with None -> () | Some s -> Obs.Sink.event s ev

(* Seed the worker with the whole execution tree (the first worker's
   initial job, paper section 3.1). *)
let seed_root w =
  let root = w.make_root () in
  Trie.add w.frontier [] { epath = []; estate = Some root; erecovery = false }

let queue_length w = Trie.size w.frontier

let is_idle w = Trie.size w.frontier = 0 && w.mode = Exploring

(* --- selection ------------------------------------------------------------------ *)

let default_weight (st : 'env State.t) =
  1.0 /. float_of_int (1 + st.State.steps - st.State.last_new_cover)

(* Weighted random choice among materialized entries; None if the frontier
   has no materialized entry. *)
let pick_weighted w =
  let weight = match w.weight with Some f -> f | None -> default_weight in
  let entries =
    Trie.fold (fun e acc -> match e.estate with Some st -> (e, weight st) :: acc | None -> acc)
      w.frontier []
  in
  match entries with
  | [] -> None
  | _ ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 entries in
    let target = Random.State.float w.rng total in
    let rec scan acc = function
      | [] -> Some (fst (List.hd entries))
      | (e, wt) :: rest -> if acc +. wt >= target then Some e else scan (acc +. wt) rest
    in
    scan 0.0 entries

(* Pending batch members drain first, in their transfer (tree-adjacent)
   order: each replay then restarts from the chain its neighbour's replay
   just pinned, so a batch walks every edge of its spanning trie once.
   Members that already left the frontier (re-stolen or materialized by
   an exact snapshot) are skipped. *)
let rec next_batch_member w =
  match w.batch_fifo with
  | [] -> None
  | p :: rest -> (
    w.batch_fifo <- rest;
    match Trie.find w.frontier p with
    | Some e when e.estate = None -> Some e
    | _ -> next_batch_member w)

let select w =
  match next_batch_member w with
  | Some e -> Some e
  | None -> (
    match w.policy with
    | Random_path_only -> Trie.random_pick w.rng w.frontier
    | Interleaved ->
      w.cov_turn <- not w.cov_turn;
      if w.cov_turn then
        match pick_weighted w with Some e -> Some e | None -> Trie.random_pick w.rng w.frontier
      else Trie.random_pick w.rng w.frontier)

(* --- terminations ----------------------------------------------------------------- *)

let record_finished w (st, term) =
  match term with
  | Errors.Pruned -> w.pruned <- w.pruned + 1
  | Errors.Exit _ | Errors.Error _ ->
    w.paths_completed <- w.paths_completed + 1;
    if Errors.is_error term then w.errors <- w.errors + 1;
    if List.length w.tests < w.collect_tests then begin
      match Testcase.of_state w.cfg.Executor.solver st term with
      | Some tc -> w.tests <- tc :: w.tests
      | None -> ()
    end

(* Pin [key] on behalf of batch [pkey]: the snapshot survives FIFO
   eviction until the batch's last member lands. *)
let pin_key w pkey key =
  Hashtbl.replace w.pins key
    (match Hashtbl.find_opt w.pins key with Some n -> n + 1 | None -> 1);
  Hashtbl.add w.batch_keys pkey key

(* All members of batch [pkey] have landed: release every snapshot it
   pinned. *)
let release_batch w pkey =
  List.iter
    (fun key ->
      match Hashtbl.find_opt w.pins key with
      | Some n when n > 1 -> Hashtbl.replace w.pins key (n - 1)
      | Some _ -> Hashtbl.remove w.pins key
      | None -> ())
    (Hashtbl.find_all w.batch_keys pkey);
  while Hashtbl.mem w.batch_keys pkey do
    Hashtbl.remove w.batch_keys pkey
  done;
  Hashtbl.remove w.batch_members pkey

(* Remember a state at a fork point for future replays.  Eviction takes
   the oldest *unpinned* key: a pinned prefix snapshot rotates to the
   back of the queue instead, because batch members still outstanding
   replay from it.  [pin_for] pins the key on behalf of a batch (set
   when the replay in flight reconstructs a batch member). *)
let cache_snapshot ?pin_for w (st : 'env State.t) =
  let key = Path.to_string (State.path st) in
  (match pin_for with Some pkey -> pin_key w pkey key | None -> ());
  if not (Hashtbl.mem w.snapshots key) then begin
    Hashtbl.replace w.snapshots key st;
    Queue.add key w.snap_queue;
    if Queue.length w.snap_queue > w.snap_limit then begin
      let rec evict tries =
        if tries > 0 then begin
          let k = Queue.take w.snap_queue in
          if Hashtbl.mem w.pins k then begin
            Queue.add k w.snap_queue;
            evict (tries - 1)
          end
          else Hashtbl.remove w.snapshots k
        end
      in
      evict (Queue.length w.snap_queue)
    end
  end

(* A batch member is done (replay landed, broke, hit an exact snapshot,
   or the job left this worker again): drop its membership, and release
   the batch's pinned snapshots once no member is outstanding. *)
let unpin_target w (target : Path.t) =
  let tkey = Path.to_string target in
  match Hashtbl.find_opt w.pin_of_target tkey with
  | None -> ()
  | Some pkey -> (
    Hashtbl.remove w.pin_of_target tkey;
    match Hashtbl.find_opt w.batch_members pkey with
    | Some n when n > 1 -> Hashtbl.replace w.batch_members pkey (n - 1)
    | Some _ -> release_batch w pkey
    | None -> ())

(* Deepest cached ancestor of [target] (root-first path): returns the
   starting state plus the choices still to replay. *)
let replay_start w target =
  let arr = Array.of_list target in
  let n = Array.length arr in
  let rec probe k =
    if k <= 0 then (w.make_root (), target)
    else begin
      let prefix = Array.to_list (Array.sub arr 0 k) in
      match Hashtbl.find_opt w.snapshots (Path.to_string prefix) with
      | Some st -> (st, Array.to_list (Array.sub arr k (n - k)))
      | None -> probe (k - 1)
    end
  in
  probe n

let add_running w states =
  List.iter
    (fun (st : 'env State.t) ->
      let p = State.path st in
      cache_snapshot w st;
      emit w (Obs.Event.Candidate_added { depth = List.length p; virt = false });
      Trie.add w.frontier p { epath = p; estate = Some st; erecovery = false })
    states

(* Drop fork products whose exact node another worker owns (it received
   them from a worker that later crashed; we are re-exploring the crashed
   worker's stale digest).  Each ban fires at most once — the fork that
   re-creates the node is unique — so a hit consumes the entry. *)
let filter_banned w states =
  if Trie.size w.banned = 0 then states
  else
    List.filter
      (fun (st : 'env State.t) ->
        let p = State.path st in
        match Trie.find w.banned p with
        | None -> true
        | Some () ->
          ignore (Trie.remove w.banned p);
          w.banned_drops <- w.banned_drops + 1;
          false)
      states

let ban_paths w paths = List.iter (fun p -> Trie.add w.banned p ()) paths

(* --- replay ---------------------------------------------------------------------------- *)

(* Recovery replays profile under their own span kind so the wall-clock
   cost of reconstructing a crashed worker's orphans is visible. *)
let replay_kind recov = if recov then Obs.Profile.Recovery_replay else Obs.Profile.Job_replay

(* One replay step.  Returns the instruction count consumed (always 1). *)
let replay_step w ~target ~remaining ~rstate ~recov =
  let { Executor.running; finished } = Executor.step w.cfg ~replay:true rstate in
  let depth_before = List.length rstate.State.path in
  let forked st = List.length st.State.path > depth_before in
  match (running, remaining) with
  | [ st ], _ when not (forked st) ->
    (* deterministic step: stay on course *)
    w.mode <- Replaying { target; remaining; rstate = st; recov }
  | _ -> (
    (* a fork (or termination) happened; consume the next expected choice *)
    match remaining with
    | [] ->
      (* we are already at the target but the step forked: this means the
         target node was the fork point itself; materialize all successors
         as our own candidates (they are our subtree) *)
      add_running w (filter_banned w running);
      List.iter (record_finished w) finished;
      w.replays_done <- w.replays_done + 1;
      unpin_target w target;
      ignore (Obs.Profile.record w.prof (replay_kind recov) ~start_ns:w.replay_t0);
      emit w (Obs.Event.Replay_end { outcome = Obs.Event.Landed; recovery = recov });
      w.mode <- Exploring
    | expected :: rest -> (
      let matches (st : 'env State.t) =
        match st.State.path with c :: _ -> c = expected | [] -> false
      in
      (* off-path running siblings become fence nodes *)
      List.iter
        (fun st ->
          if not (matches st) then begin
            let p = State.path st in
            emit w (Obs.Event.Fence_created { depth = List.length p });
            Trie.add w.fence p ()
          end)
        running;
      (* off-path finished siblings were already completed by the source
         worker: fence them silently (no double counting) *)
      match List.find_opt matches running with
      | Some st ->
        cache_snapshot ?pin_for:(Hashtbl.find_opt w.pin_of_target (Path.to_string target)) w st;
        if rest = [] then begin
          (* arrived: the node is now materialized *)
          let p = State.path st in
          Trie.add w.frontier p { epath = p; estate = Some st; erecovery = false };
          w.replays_done <- w.replays_done + 1;
          unpin_target w target;
          ignore (Obs.Profile.record w.prof (replay_kind recov) ~start_ns:w.replay_t0);
          emit w (Obs.Event.Replay_end { outcome = Obs.Event.Landed; recovery = recov });
          w.mode <- Exploring
        end
        else w.mode <- Replaying { target; remaining = rest; rstate = st; recov }
      | None ->
        (* the expected successor does not exist: broken replay *)
        w.broken_replays <- w.broken_replays + 1;
        unpin_target w target;
        ignore (Obs.Profile.record w.prof (replay_kind recov) ~start_ns:w.replay_t0);
        emit w (Obs.Event.Replay_end { outcome = Obs.Event.Broken; recovery = recov });
        w.mode <- Exploring))

(* --- main execution loop ------------------------------------------------------------------ *)

(* Run up to [budget] instructions; returns the number actually executed.
   Returns early when the worker has nothing to do. *)
let execute w ~budget =
  let used = ref 0 in
  let idle = ref false in
  while !used < budget && not !idle do
    match w.mode with
    | Replaying { target; remaining; rstate; recov } ->
      incr used;
      if recov then w.recovery_replay_instrs <- w.recovery_replay_instrs + 1;
      replay_step w ~target ~remaining ~rstate ~recov
    | Exploring -> (
      match select w with
      | None -> idle := true
      | Some entry -> (
        ignore (Trie.remove w.frontier entry.epath);
        match entry.estate with
        | None ->
          (* virtual node: lazy replay from the deepest cached ancestor *)
          if Hashtbl.mem w.snapshots (Path.to_string entry.epath) then begin
            (* exact snapshot: materialize without any replay *)
            let st = Hashtbl.find w.snapshots (Path.to_string entry.epath) in
            Trie.add w.frontier entry.epath { entry with estate = Some st };
            w.replays_done <- w.replays_done + 1;
            unpin_target w entry.epath;
            emit w
              (Obs.Event.Replay_end
                 { outcome = Obs.Event.Snapshot_hit; recovery = entry.erecovery })
          end
          else begin
            w.replay_t0 <- Obs.Profile.start w.prof;
            emit w
              (Obs.Event.Replay_start
                 { depth = List.length entry.epath; recovery = entry.erecovery });
            let rstate, remaining = replay_start w entry.epath in
            w.mode <-
              Replaying { target = entry.epath; remaining; rstate; recov = entry.erecovery }
          end
        | Some st ->
          (* run this state for a quantum *)
          let continue = ref (Some st) in
          let q = ref 0 in
          while !continue <> None && !q < w.quantum && !used < budget do
            match !continue with
            | None -> ()
            | Some st ->
              incr used;
              incr q;
              let { Executor.running; finished } = Executor.step w.cfg st in
              List.iter (record_finished w) finished;
              (match running with
              | [ one ] -> continue := Some one
              | _ ->
                add_running w (filter_banned w running);
                continue := None)
          done;
          (match !continue with Some st -> add_running w [ st ] | None -> ())))
  done;
  !used

(* --- job transfer --------------------------------------------------------------------------- *)

(* A lexicographically contiguous run of [count] entries anchored on the
   deepest one.  Sorting by path puts tree-adjacent nodes next to each
   other, so a contiguous window maximizes the batch's common prefix —
   the whole point of prefix handoff — and anchoring on the deepest
   entry implements victim-side eager splitting: the victim gives away
   the deep half of its deque, a coherent subtree, rather than a random
   scatter with a near-empty shared prefix. *)
let cluster_pick entries count =
  let arr = Array.of_list entries in
  Array.sort (fun a b -> Path.compare a.epath b.epath) arr;
  let n = Array.length arr in
  if n <= count then Array.to_list arr
  else begin
    let anchor = ref 0 in
    Array.iteri
      (fun i e -> if List.length e.epath > List.length arr.(!anchor).epath then anchor := i)
      arr;
    let lo = min (max 0 (!anchor - (count / 2))) (n - count) in
    Array.to_list (Array.sub arr lo count)
  end

(* Package up to [count] candidate nodes for another worker; each becomes
   a fence node here (paper: "this conversion prevents redundant work").
   Virtual nodes are forwarded first: they carry no local progress, so
   giving them away wastes nothing.  Within each class the batch is a
   clustered window (see [cluster_pick]), not a random sample. *)
let transfer_out w ~count =
  let jobs = ref [] in
  let give entry =
    ignore (Trie.remove w.frontier entry.epath);
    if entry.estate = None then unpin_target w entry.epath;
    emit w (Obs.Event.Fence_created { depth = List.length entry.epath });
    Trie.add w.fence entry.epath ();
    jobs := entry.epath :: !jobs;
    w.jobs_sent <- w.jobs_sent + 1
  in
  let virtuals =
    Trie.fold (fun e acc -> if e.estate = None then e :: acc else acc) w.frontier []
  in
  let nv = List.length virtuals in
  if nv >= count then List.iter give (cluster_pick virtuals count)
  else begin
    List.iter give virtuals;
    let materialized =
      Trie.fold (fun e acc -> if e.estate <> None then e :: acc else acc) w.frontier []
    in
    List.iter give (cluster_pick materialized (count - nv))
  end;
  !jobs

(* Import a job tree: each path becomes a virtual candidate node.
   [recovery] tags re-seeded orphans of a crashed worker, so the replay
   cost of reconstructing them is accounted separately. *)
let receive_jobs ?(recovery = false) w jobs =
  List.iter
    (fun p ->
      w.jobs_received <- w.jobs_received + 1;
      emit w (Obs.Event.Candidate_added { depth = List.length p; virt = true });
      Trie.add w.frontier p { epath = p; estate = None; erecovery = recovery })
    jobs

(* Import a factored batch: the members enter the frontier as full root
   paths (leases, digests and bans keep accounting in paths), and the
   shared prefix is pinned in the snapshot cache for as long as any
   member is outstanding.  The first member replayed caches the prefix
   state on its way through (every on-path fork state is cached), so
   the remaining members replay only their suffixes — O(depth + Σ|s_i|)
   for the whole batch instead of O(N·depth). *)
let receive_batch ?(recovery = false) w (b : Job.batch) =
  let jobs = Job.jobs_of_batch b in
  if List.length b.Job.suffixes > 1 then begin
    let pkey = Path.to_string b.Job.prefix in
    List.iter
      (fun p ->
        unpin_target w p (* a stale membership from an earlier batch, if any *);
        Hashtbl.replace w.pin_of_target (Path.to_string p) pkey;
        Hashtbl.replace w.batch_members pkey
          (match Hashtbl.find_opt w.batch_members pkey with Some n -> n + 1 | None -> 1))
      jobs;
    w.batch_fifo <- w.batch_fifo @ jobs
  end;
  receive_jobs ~recovery w jobs

(* --- introspection ------------------------------------------------------------------------------ *)

let frontier_paths w = Trie.fold (fun e acc -> e.epath :: acc) w.frontier []

(* What the worker reports to the load balancer as its recovery point:
   every candidate node, *including* a job mid-replay — it left the
   frontier when selected, but until the replay lands it is still
   unexplored work that only this digest records. *)
let digest_paths w =
  let f = frontier_paths w in
  match w.mode with Replaying { target; _ } -> target :: f | Exploring -> f

let fence_count w = Trie.size w.fence

let stats w =
  ( w.paths_completed,
    w.errors,
    w.cfg.Executor.stats.Executor.useful_instrs,
    w.cfg.Executor.stats.Executor.replay_instrs )
