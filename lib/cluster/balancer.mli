(** The Cloud9 load balancer (paper section 3.3): classifies workers as
    under/overloaded by queue-length mean and standard deviation, pairs
    them from the two ends of the sorted list, and issues transfer
    requests.  Also maintains the global coverage overlay. *)

type request = { src : int; dst : int; count : int }

type t

(** [delta] is the classification constant (under if [l < mean - delta*sigma],
    over if [l > mean + delta*sigma]).  [obs] traces issued transfer
    requests and exports the queue mean/sigma gauges. *)
val create : ?delta:float -> ?obs:Obs.Sink.t -> coverage_bytes:int -> unit -> t

(** Stop issuing transfer requests (Fig. 13's mid-run disable). *)
val disable : t -> unit

(** Record a worker's status update: merge its coverage into the global
    overlay, remember its queue length (and the report [tick]), and
    return the merged global vector for the worker to fold back into its
    local strategy. *)
val report : ?tick:int -> t -> worker:int -> queue_len:int -> coverage:Bytes.t -> Bytes.t

(** Drop a departed worker's entries so its stale queue length no longer
    skews classification (called by the driver on a crash). *)
val forget : t -> worker:int -> unit

(** Compute transfer requests from the last reported queue lengths.  Each
    pair moves half the difference, capped at a quarter of the source's
    queue; the internal ledger is updated optimistically so consecutive
    rounds do not re-issue the same transfers.  When [now] is given,
    workers whose last report is older than [staleness] ticks are
    skipped — silent workers neither skew the mean/sigma classification
    nor attract transfers. *)
val rebalance : ?now:int -> ?staleness:int -> t -> request list

val global_coverage : t -> Bytes.t
