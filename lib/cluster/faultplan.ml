(* Declarative fault schedules for the cluster simulation.

   A plan is data: crash worker [victim] at tick [at_tick] (optionally
   rejoining [rejoin_after] ticks later with a fresh, empty engine), drop /
   duplicate / delay messages with seeded pseudo-randomness, and partition
   links between worker pairs for a tick window.  The driver consults the
   plan's [runtime] each tick; everything is deterministic given the seed,
   so a faulty run is exactly reproducible.

   The model is crash-stop with amnesia (paper section 3.1: workers are
   disposable because any subtree can be reconstructed by replaying its
   root path): a crashed worker loses its frontier, snapshot cache, and
   all statistics not yet reported to the load balancer.  Rejoining
   creates a brand-new worker in the same slot. *)

type crash = {
  victim : int;               (* worker id *)
  at_tick : int;
  rejoin_after : int option;  (* None = permanent departure *)
}

type partition = {
  p_a : int;
  p_b : int;
  p_from : int;               (* first tick the link is down *)
  p_until : int;              (* first tick the link is up again *)
}

type t = {
  crashes : crash list;
  drop_prob : float;          (* P(message lost in transit) *)
  dup_prob : float;           (* P(message delivered twice) *)
  delay_prob : float;         (* P(extra delivery delay) *)
  max_extra_delay : int;      (* extra delay drawn from [1, max] ticks *)
  partitions : partition list;
  seed : int;
}

let none =
  {
    crashes = [];
    drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    max_extra_delay = 4;
    partitions = [];
    seed = 7;
  }

let create ?(crashes = []) ?(drop_prob = 0.0) ?(dup_prob = 0.0) ?(delay_prob = 0.0)
    ?(max_extra_delay = 4) ?(partitions = []) ?(seed = 7) () =
  { crashes; drop_prob; dup_prob; delay_prob; max_extra_delay; partitions; seed }

let crash ?rejoin_after victim ~at_tick = { victim; at_tick; rejoin_after }

let is_faultless p =
  p.crashes = [] && p.partitions = []
  && p.drop_prob = 0.0 && p.dup_prob = 0.0 && p.delay_prob = 0.0

(* A schedule entry that references a worker slot outside the cluster, or
   a rejoin delay that cannot elapse, would silently never fire — the run
   would look fault-tolerant while testing nothing.  Reject such plans
   loudly before the run starts. *)
let validate p ~nworkers =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec check = function
    | [] ->
      let bad_pair pt = pt.p_a < 0 || pt.p_a >= nworkers || pt.p_b < 0 || pt.p_b >= nworkers in
      (match List.find_opt bad_pair p.partitions with
      | Some pt ->
        err "fault plan partitions link %d<->%d, but worker ids range over 0..%d" pt.p_a pt.p_b
          (nworkers - 1)
      | None -> Ok ())
    | c :: rest ->
      if c.victim < 0 || c.victim >= nworkers then
        err "fault plan crashes worker %d, but the cluster has %d worker slots (ids 0..%d)"
          c.victim nworkers (nworkers - 1)
      else if c.at_tick < 0 then
        err "fault plan crashes worker %d at negative tick %d" c.victim c.at_tick
      else begin
        match c.rejoin_after with
        | Some d when d <= 0 ->
          err
            "fault plan rejoins worker %d %d tick(s) after its crash; the rejoin must come \
             strictly after the crash (delay >= 1)"
            c.victim d
        | Some _ | None -> check rest
      end
  in
  check p.crashes

(* --- runtime ------------------------------------------------------------- *)

type fate =
  | Deliver of int   (* extra delay in ticks (0 = on time) *)
  | Drop
  | Duplicate of int (* delivered twice; the copy trails by this many ticks *)

type runtime = {
  plan : t;
  rng : Random.State.t;
  crash_at : (int, int list) Hashtbl.t;  (* tick -> victims *)
  rejoin_at : (int, int list) Hashtbl.t; (* tick -> returning workers *)
}

let make plan =
  let crash_at = Hashtbl.create 8 and rejoin_at = Hashtbl.create 8 in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl k)))
  in
  List.iter
    (fun c ->
      push crash_at c.at_tick c.victim;
      match c.rejoin_after with
      | Some d when d > 0 -> push rejoin_at (c.at_tick + d) c.victim
      | Some _ | None -> ())
    plan.crashes;
  { plan; rng = Random.State.make [| plan.seed; 0x9e3779b9 |]; crash_at; rejoin_at }

let crashes_at rt ~tick = Option.value ~default:[] (Hashtbl.find_opt rt.crash_at tick)
let rejoins_at rt ~tick = Option.value ~default:[] (Hashtbl.find_opt rt.rejoin_at tick)

(* The load balancer participates in message exchanges as endpoint [-1];
   partitions only ever cut worker-to-worker links. *)
let lb = -1

let partitioned rt ~tick ~src ~dst =
  List.exists
    (fun p ->
      tick >= p.p_from && tick < p.p_until
      && ((p.p_a = src && p.p_b = dst) || (p.p_a = dst && p.p_b = src)))
    rt.plan.partitions

(* Decide the fate of one message entering the network.  Consulted once
   per send, in simulation order, so a fixed seed fixes the whole run. *)
let fate rt ~tick ~src ~dst =
  let p = rt.plan in
  if partitioned rt ~tick ~src ~dst then Drop
  else begin
    let draw prob = prob > 0.0 && Random.State.float rt.rng 1.0 < prob in
    let dropped = draw p.drop_prob in
    let duplicated = draw p.dup_prob in
    let extra =
      if draw p.delay_prob then 1 + Random.State.int rt.rng (max 1 p.max_extra_delay) else 0
    in
    (* all three draws happen unconditionally so that toggling one fault
       class does not reshuffle the pseudo-random stream of the others *)
    if dropped then Drop else if duplicated then Duplicate (1 + extra) else Deliver extra
  end
