(** Exploration jobs and their transfer encoding (paper section 3.2):
    a job is a candidate node encoded as its root path; batches aggregate
    into a prefix-sharing job tree. *)

type t = Engine.Path.t

(** Wire size of jobs encoded independently (one length byte plus one byte
    per choice). *)
val naive_encoded_size : t list -> int

(** Wire size of the batch as a preorder-serialized job tree: one
    structure byte per node plus one byte per edge.  Wins once jobs share
    substantial prefixes, which transferred sibling candidates always do. *)
val tree_encoded_size : t list -> int

(** Simulated size of shipping the serialized program state instead of
    the path (the alternative the paper rejects for bandwidth reasons). *)
val state_encoded_size : memory_bytes:int -> int

(** A factored transfer batch: the longest common prefix of the jobs
    plus per-job suffixes.  The thief replays [prefix] once and forks
    each suffix from the cached prefix state — O(depth + Σ|suffix|)
    instead of O(N·depth).  Leases/bans/digests still account in full
    root paths via {!jobs_of_batch}. *)
type batch = { prefix : Engine.Path.t; suffixes : Engine.Path.t list }

val batch_of_jobs : t list -> batch

(** Order-preserving re-expansion to full root paths. *)
val jobs_of_batch : batch -> t list

val batch_size : batch -> int

(** Compact wire form (["prefix|s1|...|sN"]) shared by both cluster
    backends through [Cluster.Transport]. *)
val encode_batch : batch -> string

val decode_batch : string -> (batch, string) result
val batch_encoded_size : batch -> int
