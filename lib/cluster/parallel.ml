(* True-multicore cluster runtime: one OCaml domain per worker.

   The simulated [Driver] remains the deterministic reference; this
   runtime trades its virtual clock for real [Domain.t]s so wall-clock
   scaling (paper Figs. 7-8) is measurable.  The moving parts:

   - Each worker domain owns a real [Worker.t] (created *inside* the
     domain by [make_worker], so domain-local solver state lands on the
     right domain) and a bounded mutex+condition mailbox.  Worker-bound
     messages: job batches, transfer (steal) requests, merged-coverage
     feedback, and stop.

   - The coordinator runs on the calling domain.  It owns a mailbox of
     status reports, feeds them to the existing [Balancer] (queue-length
     mean/sigma classification) and forwards the resulting transfer
     requests to source workers, which ship path-encoded jobs directly
     to the destination's mailbox.

   - Quiescence: a worker that runs out of work sets its idle flag
     *while holding its own mailbox lock* (so no job can slip in
     unseen), sends a final status report, and sleeps on its condition
     variable.  A job batch is counted in the atomic [in_flight] credit
     *before* it is enqueued and released only *after* the receiver has
     imported it (having first cleared its idle flag), so the predicate
     "all idle flags set and in_flight = 0" can never be true while work
     exists anywhere: a worker holding work keeps its flag clear, and
     work in transit keeps the credit positive.  Every flag-set is
     followed by a status message, so the coordinator may block on its
     mailbox and still observe quiescence.

   Deadlock-freedom: workers block only on (a) their own empty mailbox
   when idle and (b) pushing into the coordinator's mailbox; the
   coordinator never blocks pushing to workers (steal and coverage
   messages are dropped when a mailbox is full — a lossy control plane,
   like the paper's UDP status channel; dropped steals are re-issued by
   a later rebalance round).  Job batches are pushed blocking, but at
   most one batch exists per steal request and steals are issued only by
   the coordinator, so worker mailboxes stay far below capacity. *)

module Executor = Engine.Executor

(* ---- mailbox ------------------------------------------------------ *)

module Mailbox = struct
  type 'a t = {
    lock : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    q : 'a Queue.t;
    cap : int;
  }

  let create ~cap () =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      q = Queue.create ();
      cap;
    }

  let push t x =
    Mutex.lock t.lock;
    while Queue.length t.q >= t.cap do
      Condition.wait t.nonfull t.lock
    done;
    Queue.add x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.lock

  (* Non-blocking push; [false] when the mailbox is full. *)
  let try_push t x =
    Mutex.lock t.lock;
    let ok = Queue.length t.q < t.cap in
    if ok then begin
      Queue.add x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.lock;
    ok

  let drain_locked t =
    let xs = ref [] in
    while not (Queue.is_empty t.q) do
      xs := Queue.pop t.q :: !xs
    done;
    Condition.broadcast t.nonfull;
    List.rev !xs

  (* Non-blocking drain: everything queued right now, oldest first. *)
  let drain t =
    Mutex.lock t.lock;
    let xs = drain_locked t in
    Mutex.unlock t.lock;
    xs

  (* Blocking drain: waits until at least one message is queued. *)
  let drain_wait t =
    Mutex.lock t.lock;
    while Queue.is_empty t.q do
      Condition.wait t.nonempty t.lock
    done;
    let xs = drain_locked t in
    Mutex.unlock t.lock;
    xs
end

(* ---- messages ----------------------------------------------------- *)

(* [issued_ns] carries the wall-clock stamp of the Steal that caused a
   job batch (0 when unprofiled): the coordinator stamps the request,
   the victim copies the stamp onto the batch it ships, and the thief
   closes the span on import — a full steal round-trip. *)
type wmsg =
  | Jobs of { jobs : Job.t list; issued_ns : int }
      (** transferred candidates, counted in [in_flight] *)
  | Steal of { dst : int; count : int; issued_ns : int }
      (** balancer transfer request *)
  | Coverage of Bytes.t  (** merged global coverage overlay *)
  | Stop

type cmsg =
  | Status of { worker : int; queue_len : int; idle : bool; coverage : Bytes.t }

(* ---- configuration ------------------------------------------------ *)

type 'env config = {
  ndomains : int;
  make_worker : int -> 'env Worker.t;
  slice : int;
  status_every : int;
  mailbox_capacity : int;
  obs : Obs.Sink.t option;
      (* when set, the runtime itself is profiled: mailbox waits and
         steal round-trips per worker domain, quiescence rounds on the
         coordinator (through a buffered lb-attributed view) *)
}

let default_config ?obs ~ndomains ~make_worker () =
  { ndomains; make_worker; slice = 2_000; status_every = 4; mailbox_capacity = 4_096; obs }

type result = {
  ndomains : int;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;
  steals : int;
  status_reports : int;
  jobs_sent : int;
  jobs_received : int;
  coverage_vector : Bytes.t;
  final_coverage : float;
  per_worker_useful : (int * int) list;
  solver_stats : Smt.Solver.stats;
  per_worker_solver : (int * Smt.Solver.stats) list;
}

(* What a worker domain returns through [Domain.join]. *)
type summary = {
  sm_id : int;
  sm_paths : int;
  sm_errors : int;
  sm_useful : int;
  sm_replay : int;
  sm_broken : int;
  sm_sent : int;
  sm_received : int;
  sm_solver : Smt.Solver.stats;
  sm_coverage : Bytes.t;
}

type shared = {
  inboxes : wmsg Mailbox.t array;
  coord : cmsg Mailbox.t;
  idle_flags : bool Atomic.t array;
  in_flight : int Atomic.t;  (* job batches enqueued but not yet imported *)
  transfers : int Atomic.t;  (* jobs moved between workers *)
}

(* ---- worker domain ------------------------------------------------ *)

let worker_body sh (cfg : 'env config) i =
  let w = cfg.make_worker i in
  (* Runtime spans go through the worker's own (buffered) view when it
     has one, so they merge on the same flush path as everything else. *)
  let prof = Option.map Obs.Profile.create w.Worker.cfg.Executor.obs in
  if i = 0 then Worker.seed_root w;
  let inbox = sh.inboxes.(i) in
  let stop = ref false in
  let send_status ~idle =
    Mailbox.push sh.coord
      (Status
         {
           worker = i;
           queue_len = Worker.queue_length w;
           idle;
           coverage = Bytes.copy w.Worker.cfg.Executor.coverage;
         })
  in
  let process = function
    | Jobs { jobs; issued_ns } ->
      Worker.receive_jobs w jobs;
      Atomic.decr sh.in_flight;
      if issued_ns > 0 then
        ignore (Obs.Profile.record prof Obs.Profile.Steal_rtt ~start_ns:issued_ns)
    | Steal { dst; count; issued_ns } ->
      let jobs = Worker.transfer_out w ~count in
      if jobs <> [] then begin
        (* Credit before enqueue: the batch is visible to the quiescence
           predicate before it can be consumed. *)
        Atomic.incr sh.in_flight;
        ignore (Atomic.fetch_and_add sh.transfers (List.length jobs));
        Mailbox.push sh.inboxes.(dst) (Jobs { jobs; issued_ns })
      end
    | Coverage global -> ignore (Executor.merge_coverage w.Worker.cfg global)
    | Stop -> stop := true
  in
  let slices = ref 0 in
  while not !stop do
    if Worker.is_idle w then begin
      (* Declare idleness with the mailbox lock held, so a concurrent
         push either lands before the emptiness check (we consume it
         without sleeping) or signals us awake. *)
      Mutex.lock inbox.Mailbox.lock;
      let wait_t0 =
        if Queue.is_empty inbox.Mailbox.q then begin
          Atomic.set sh.idle_flags.(i) true;
          Mutex.unlock inbox.Mailbox.lock;
          send_status ~idle:true;
          let t0 = Obs.Profile.start prof in
          Mutex.lock inbox.Mailbox.lock;
          while Queue.is_empty inbox.Mailbox.q do
            Condition.wait inbox.Mailbox.nonempty inbox.Mailbox.lock
          done;
          t0
        end
        else 0
      in
      (* Clear the flag before importing, so flag-clear precedes the
         in_flight decrement in [process]. *)
      Atomic.set sh.idle_flags.(i) false;
      let msgs = Mailbox.drain_locked inbox in
      Mutex.unlock inbox.Mailbox.lock;
      (* Record after releasing the inbox lock: staging the span may
         trigger a threshold flush, which takes the obs core lock. *)
      if wait_t0 > 0 then
        ignore (Obs.Profile.record prof Obs.Profile.Mailbox_wait ~start_ns:wait_t0);
      List.iter process msgs
    end
    else begin
      List.iter process (Mailbox.drain inbox);
      if not !stop && not (Worker.is_idle w) then begin
        ignore (Worker.execute w ~budget:cfg.slice);
        incr slices;
        if !slices mod cfg.status_every = 0 then send_status ~idle:false
      end
    end
  done;
  (* Flush this domain's buffered observability view before exiting. *)
  Option.iter Obs.Sink.flush w.Worker.cfg.Executor.obs;
  let paths, errors, useful, replay = Worker.stats w in
  {
    sm_id = i;
    sm_paths = paths;
    sm_errors = errors;
    sm_useful = useful;
    sm_replay = replay;
    sm_broken = w.Worker.broken_replays;
    sm_sent = w.Worker.jobs_sent;
    sm_received = w.Worker.jobs_received;
    sm_solver = Smt.Solver.copy_stats w.Worker.cfg.Executor.solver;
    sm_coverage = Bytes.copy w.Worker.cfg.Executor.coverage;
  }

(* ---- coordinator -------------------------------------------------- *)

let popcount_bytes bv =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr n
      done)
    bv;
  !n

let run ~coverable_lines (cfg : 'env config) =
  if cfg.ndomains < 1 then invalid_arg "Parallel.run: ndomains must be >= 1";
  let n = cfg.ndomains in
  let sh =
    {
      inboxes = Array.init n (fun _ -> Mailbox.create ~cap:cfg.mailbox_capacity ());
      coord = Mailbox.create ~cap:(cfg.mailbox_capacity * n) ();
      idle_flags = Array.init n (fun _ -> Atomic.make false);
      in_flight = Atomic.make 0;
      transfers = Atomic.make 0;
    }
  in
  let domains = Array.init n (fun i -> Domain.spawn (fun () -> worker_body sh cfg i)) in
  (* The coordinator profiles through its own buffered lb-attributed
     view: it must never write the shared core while domains run, and
     the view is flushed after they have all joined. *)
  let cobs = Option.map (fun s -> Obs.Sink.buffered s Obs.Event.lb) cfg.obs in
  let cprof = Option.map Obs.Profile.create cobs in
  let stamp () = match cprof with Some _ -> Obs.Clock.now_ns () | None -> 0 in
  (* The balancer needs the coverage-vector width, which only a worker
     knows; create it from the first status report. *)
  let balancer = ref None in
  let steals = ref 0 in
  let status_reports = ref 0 in
  let quiescent () =
    (* Order matters: read the credit first.  If a batch was imported
       after this read, the importer cleared its flag beforehand, so a
       later flag read cannot show it idle unless it genuinely drained
       the work and re-declared idleness. *)
    Atomic.get sh.in_flight = 0
    && Array.for_all Atomic.get sh.idle_flags
    && Atomic.get sh.in_flight = 0
  in
  let handle (Status { worker; queue_len; idle; coverage }) =
    incr status_reports;
    let b =
      match !balancer with
      | Some b -> b
      | None ->
        let b = Balancer.create ~coverage_bytes:(Bytes.length coverage) () in
        balancer := Some b;
        b
    in
    let global = Balancer.report b ~worker ~queue_len ~coverage in
    (* Coverage feedback only to busy workers: echoing it to an idle
       reporter would wake it for nothing, and the wake-report cycle
       would never quiesce. *)
    if not idle then ignore (Mailbox.try_push sh.inboxes.(worker) (Coverage global))
  in
  let rec loop () =
    if quiescent () then ()
    else begin
      (* One quiescence round = status drain (including the block on an
         empty coordinator mailbox) + rebalance. *)
      let round_t0 = Obs.Profile.start cprof in
      List.iter handle (Mailbox.drain_wait sh.coord);
      (match !balancer with
      | None -> ()
      | Some b ->
        List.iter
          (fun { Balancer.src; dst; count } ->
            if src < n && dst < n then begin
              incr steals;
              ignore
                (Mailbox.try_push sh.inboxes.(src) (Steal { dst; count; issued_ns = stamp () }))
            end)
          (Balancer.rebalance b));
      ignore (Obs.Profile.record cprof Obs.Profile.Quiesce_round ~start_ns:round_t0);
      loop ()
    end
  in
  loop ();
  Array.iter (fun inbox -> Mailbox.push inbox Stop) sh.inboxes;
  let summaries = Array.map Domain.join domains in
  Option.iter Obs.Sink.flush cobs;
  (* Drain any status messages that raced with the stop broadcast. *)
  List.iter (fun (Status _) -> incr status_reports) (Mailbox.drain sh.coord);
  let agg = Smt.Solver.zero_stats () in
  Array.iter (fun s -> Smt.Solver.accum_stats agg s.sm_solver) summaries;
  let coverage_vector =
    let bv = Bytes.copy summaries.(0).sm_coverage in
    Array.iter
      (fun s ->
        Bytes.iteri
          (fun k c -> Bytes.set bv k (Char.chr (Char.code (Bytes.get bv k) lor Char.code c)))
          s.sm_coverage)
      summaries;
    bv
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 summaries in
  {
    ndomains = n;
    total_paths = sum (fun s -> s.sm_paths);
    total_errors = sum (fun s -> s.sm_errors);
    useful_instrs = sum (fun s -> s.sm_useful);
    replay_instrs = sum (fun s -> s.sm_replay);
    broken_replays = sum (fun s -> s.sm_broken);
    transfers = Atomic.get sh.transfers;
    steals = !steals;
    status_reports = !status_reports;
    jobs_sent = sum (fun s -> s.sm_sent);
    jobs_received = sum (fun s -> s.sm_received);
    coverage_vector;
    final_coverage =
      (if coverable_lines <= 0 then 0.0
       else float_of_int (popcount_bytes coverage_vector) /. float_of_int coverable_lines);
    per_worker_useful = Array.to_list (Array.map (fun s -> (s.sm_id, s.sm_useful)) summaries);
    solver_stats = agg;
    per_worker_solver =
      Array.to_list (Array.map (fun s -> (s.sm_id, s.sm_solver)) summaries);
  }
