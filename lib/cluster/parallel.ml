(* True-multicore cluster runtime: one OCaml domain per worker.

   The simulated [Driver] remains the deterministic reference; this
   runtime trades its virtual clock for real [Domain.t]s so wall-clock
   scaling (paper Figs. 7-8) is measurable — and, since the fault
   tolerance core moved into the shared {!Transport}, it now survives
   the same fault model: Faultplan-driven domain crashes (crash-stop
   with amnesia, observed at slice poll points), mid-run rejoins on a
   fresh domain, and seeded loss / delay / duplication on the job wire,
   all recovered exactly through the same {!Ledger} lease protocol the
   simulation uses.  The moving parts:

   - Each worker domain owns a real [Worker.t] (created *inside* the
     domain by [make_worker], so domain-local solver state lands on the
     right domain) and a bounded mutex+condition mailbox.  Worker-bound
     messages: leased job batches, transfer (steal) requests, ban lists,
     merged-coverage feedback, a wake-up poke, and stop.

   - The coordinator runs on the calling domain and is the only thread
     that touches the transport/ledger.  Workers never ship jobs to each
     other directly any more: a steal victim *offers* its batch back to
     the coordinator, which leases it ({!Transport.issue_transfer}) and
     forwards it — so every batch in flight is covered by a lease and a
     crash anywhere loses nothing.  Receivers deduplicate by lease id
     and acknowledge every delivery (at-least-once, exactly-once
     import).

   - Time: a ticker domain pushes [Tick] into the coordinator mailbox
     every [tick_period] seconds.  Ticks drive the fault schedule,
     delayed-message delivery, lease retransmission/eviction sweeps
     ({!Transport.tick}), heartbeat failure detection, and the progress
     watchdog.  Ticks also bound every coordinator block: even with all
     workers dead, the loop keeps waking.

   - Crash-stop: a crash is *declared* first (slot marked dead, its
     later messages filtered, its leases orphaned and re-seeded via
     {!Transport.handle_crash}) and only then observed by the victim,
     which polls an atomic crash flag between slices and exits with
     amnesia.  Declare-then-kill makes even a false-positive detection
     exact: everything the victim did after its last status report is
     discarded and replayed elsewhere.

   - Quiescence: the coordinator tracks per-slot idleness from status
     reports.  Mailboxes are FIFO per sender, so an [Offer] always
     precedes the idle report that follows giving work away, and an
     [Ack] (which clears the receiver's idle bit) always precedes the
     receiver's next idle report.  "Every live slot idle with no steal
     outstanding, no delayed message, and the transport quiesced" can
     therefore never hold while work exists anywhere.  Dead slots are
     exempt, so a run whose crashed workers never rejoin still
     terminates — with exactly the fault-free totals.

   Deadlock-freedom: workers block only on (a) their own empty mailbox
   when idle — any push, including the crash-time [Poke], wakes them —
   and (b) bounded pushes.  The coordinator never blocks forever on a
   full mailbox of a dead worker: every coordinator->worker push is
   [push_timeout]-bounded, and a timed-out job push is simply a lost
   message for the lease layer to retransmit. *)

module Executor = Engine.Executor

(* ---- mailbox ------------------------------------------------------ *)

module Mailbox = struct
  type 'a t = {
    lock : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    q : 'a Queue.t;
    cap : int;
  }

  let create ~cap () =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      q = Queue.create ();
      cap;
    }

  (* Non-blocking push; [false] when the mailbox is full. *)
  let try_push t x =
    Mutex.lock t.lock;
    let ok = Queue.length t.q < t.cap in
    if ok then begin
      Queue.add x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.lock;
    ok

  (* Bounded blocking push: retry for at most [timeout] seconds, then
     give up.  The stdlib [Condition] has no timed wait, so this polls —
     acceptable because the slow path only runs when the receiver is
     wedged or dead, which is exactly when we must not block forever.
     [false] = the message was not enqueued. *)
  let push_timeout t x ~timeout =
    if try_push t x then true
    else begin
      let deadline = Unix.gettimeofday () +. timeout in
      let rec go () =
        if try_push t x then true
        else if Unix.gettimeofday () >= deadline then false
        else begin
          Unix.sleepf 0.0005;
          go ()
        end
      in
      go ()
    end

  let drain_locked t =
    let xs = ref [] in
    while not (Queue.is_empty t.q) do
      xs := Queue.pop t.q :: !xs
    done;
    Condition.broadcast t.nonfull;
    List.rev !xs

  (* Non-blocking drain: everything queued right now, oldest first. *)
  let drain t =
    Mutex.lock t.lock;
    let xs = drain_locked t in
    Mutex.unlock t.lock;
    xs

  (* Blocking drain: waits until at least one message is queued. *)
  let drain_wait t =
    Mutex.lock t.lock;
    while Queue.is_empty t.q do
      Condition.wait t.nonempty t.lock
    done;
    let xs = drain_locked t in
    Mutex.unlock t.lock;
    xs
end

(* ---- messages ----------------------------------------------------- *)

(* [issued_ns] carries the wall-clock stamp of the Steal that caused a
   job batch (0 when unprofiled or on retransmit): the coordinator
   stamps the request, the victim copies the stamp onto its offer, and
   the thief closes the span on import — a full steal round-trip. *)
type wmsg =
  | Jobs of { lease : int; encoded : string; recovery : bool; issued_ns : int }
      (** a leased batch in {!Job.encode_batch} form (prefix handoff):
          the receiver decodes, replays the shared prefix once and forks
          the suffixes.  Receivers dedup by lease id and always ack *)
  | Steal of { dst : int; count : int; issued_ns : int }
      (** balancer transfer request; always answered with an [Offer] *)
  | Bans of Job.t list  (** nodes a crashed worker had handed away *)
  | Coverage of Bytes.t  (** merged global coverage overlay *)
  | Poke  (** contentless wake-up, so a blocked idle worker re-polls its crash flag *)
  | Stop

type cmsg =
  | Status of {
      worker : int;
      incarnation : int;
      queue_len : int;
      idle : bool;
      coverage : Bytes.t;
      digest : Job.t list;  (** frontier digest: the worker's durable recovery point *)
      paths : int;
      errors : int;
      received : int list;  (** cumulative lease ids imported (ack piggyback) *)
    }
  | Offer of { worker : int; incarnation : int; dst : int; jobs : Job.t list; issued_ns : int }
      (** a steal victim returning the batch for leasing; empty = nothing to give *)
  | Ack of { worker : int; incarnation : int; lease : int }
  | Failed of { worker : int; incarnation : int; error : string }
      (** the worker's domain died on an exception (reported, then joined) *)
  | Tick  (** from the ticker domain: advance coordinator time *)

(* ---- configuration ------------------------------------------------ *)

type 'env config = {
  ndomains : int;
  make_worker : int -> 'env Worker.t;
  slice : int;
  status_every : int;
  mailbox_capacity : int;
  faults : Faultplan.t;
  tick_period : float;
  heartbeat_ticks : int;
  push_timeout : float;
  watchdog : float;
  obs : Obs.Sink.t option;
      (* when set, the runtime itself is profiled: mailbox waits, steal
         round-trips and (recovery) replays per worker domain, quiescence
         rounds on the coordinator (through a buffered lb-attributed view) *)
}

let default_config ?obs ?(faults = Faultplan.none) ~ndomains ~make_worker () =
  {
    ndomains;
    make_worker;
    slice = 2_000;
    status_every = 4;
    mailbox_capacity = 4_096;
    faults;
    tick_period = 0.001;
    heartbeat_ticks = 0;
    push_timeout = 1.0;
    watchdog = 120.0;
    obs;
  }

type result = {
  ndomains : int;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;
  steals : int;
  status_reports : int;
  jobs_sent : int;
  jobs_received : int;
  crashes : int;
  recovered_jobs : int;
  retransmits : int;
  recovery_replay_instrs : int;
  coverage_vector : Bytes.t;
  final_coverage : float;
  per_worker_useful : (int * int) list;
  solver_stats : Smt.Solver.stats;
  per_worker_solver : (int * Smt.Solver.stats) list;
}

(* What a worker domain returns through [Domain.join].  Summaries of
   incarnations that were declared crashed contribute instruction /
   solver / coverage counters only: their path and error counts are
   credited from the ledger's last report, and everything after that
   report is replayed elsewhere (amnesia). *)
type summary = {
  sm_id : int;
  sm_paths : int;
  sm_errors : int;
  sm_useful : int;
  sm_replay : int;
  sm_broken : int;
  sm_recovery_replay : int;
  sm_sent : int;
  sm_received : int;
  sm_solver : Smt.Solver.stats;
  sm_coverage : Bytes.t;
}

(* ---- worker domain ------------------------------------------------ *)

(* How long a worker will wait to push into the coordinator's mailbox
   before concluding the coordinator has stopped draining (shutdown).
   During a run the coordinator drains continuously, so this never
   fires; at shutdown it prevents a worker from wedging [Domain.join]. *)
let ctl_timeout = 5.0

let worker_body (cfg : 'env config) ~coord ~inbox ~crash ~id:i ~incarnation ~initial_bans ~seed
    =
  try
    let w = cfg.make_worker i in
    Fun.protect
      ~finally:(fun () -> Option.iter Obs.Sink.flush w.Worker.cfg.Executor.obs)
      (fun () ->
        (* Runtime spans go through the worker's own (buffered) view when
           it has one, so they merge on the same flush path as everything
           else. *)
        let prof = Option.map Obs.Profile.create w.Worker.cfg.Executor.obs in
        if initial_bans <> [] then Worker.ban_paths w initial_bans;
        if seed then Worker.seed_root w;
        (* lease ids already imported: dedup for at-least-once delivery,
           and the cumulative ack piggybacked on every status report *)
        let imported : (int, unit) Hashtbl.t = Hashtbl.create 32 in
        let imported_list = ref [] in
        let stop = ref false in
        let crashed () = Atomic.get crash in
        let send_ctl msg = ignore (Mailbox.push_timeout coord msg ~timeout:ctl_timeout) in
        let send_status ~idle =
          let paths, errors, _, _ = Worker.stats w in
          send_ctl
            (Status
               {
                 worker = i;
                 incarnation;
                 queue_len = Worker.queue_length w;
                 idle;
                 coverage = Bytes.copy w.Worker.cfg.Executor.coverage;
                 digest = Worker.digest_paths w;
                 paths;
                 errors;
                 received = !imported_list;
               })
        in
        let process = function
          | Jobs { lease; encoded; recovery; issued_ns } ->
            if not (Hashtbl.mem imported lease) then begin
              Hashtbl.replace imported lease ();
              imported_list := lease :: !imported_list;
              (match Job.decode_batch encoded with
              | Ok b -> Worker.receive_batch ~recovery w b
              | Error e -> failwith ("Parallel: corrupt job batch: " ^ e));
              if issued_ns > 0 then
                ignore (Obs.Profile.record prof Obs.Profile.Steal_rtt ~start_ns:issued_ns)
            end;
            (* always (re)acknowledge: the previous ack may have been lost *)
            send_ctl (Ack { worker = i; incarnation; lease })
          | Steal { dst; count; issued_ns } ->
            let jobs = Worker.transfer_out w ~count in
            (* even an empty offer must go back: it settles the
               coordinator's outstanding-steal accounting.  If the push
               times out (coordinator gone: shutdown), take the batch
               back — the nodes are fenced here, so re-importing replays
               them.  That replay is failure-path cost, not ordinary
               rebalancing, so it books as recovery — the same class as
               reconstructing a crashed worker's orphans. *)
            if
              not
                (Mailbox.push_timeout coord
                   (Offer { worker = i; incarnation; dst; jobs; issued_ns })
                   ~timeout:ctl_timeout)
            then if jobs <> [] then Worker.receive_jobs ~recovery:true w jobs
          | Bans paths -> Worker.ban_paths w paths
          | Coverage global -> ignore (Executor.merge_coverage w.Worker.cfg global)
          | Poke -> ()
          | Stop -> stop := true
        in
        let slices = ref 0 in
        while (not !stop) && not (crashed ()) do
          if Worker.is_idle w then begin
            (* Declare idleness with the mailbox lock held, so a
               concurrent push either lands before the emptiness check
               (we consume it without sleeping) or signals us awake. *)
            Mutex.lock inbox.Mailbox.lock;
            let wait_t0 =
              if Queue.is_empty inbox.Mailbox.q then begin
                Mutex.unlock inbox.Mailbox.lock;
                send_status ~idle:true;
                let t0 = Obs.Profile.start prof in
                Mutex.lock inbox.Mailbox.lock;
                while Queue.is_empty inbox.Mailbox.q do
                  Condition.wait inbox.Mailbox.nonempty inbox.Mailbox.lock
                done;
                t0
              end
              else 0
            in
            let msgs = Mailbox.drain_locked inbox in
            Mutex.unlock inbox.Mailbox.lock;
            (* Record after releasing the inbox lock: staging the span may
               trigger a threshold flush, which takes the obs core lock. *)
            if wait_t0 > 0 then
              ignore (Obs.Profile.record prof Obs.Profile.Mailbox_wait ~start_ns:wait_t0);
            (* crash-stop with amnesia: a declared victim processes
               nothing more — its unimported messages are already covered
               by leases or recovery *)
            if not (crashed ()) then List.iter process msgs
          end
          else begin
            List.iter process (Mailbox.drain inbox);
            if (not !stop) && (not (crashed ())) && not (Worker.is_idle w) then begin
              ignore (Worker.execute w ~budget:cfg.slice);
              incr slices;
              if !slices mod cfg.status_every = 0 then send_status ~idle:false
            end
          end
        done;
        let paths, errors, useful, replay = Worker.stats w in
        {
          sm_id = i;
          sm_paths = paths;
          sm_errors = errors;
          sm_useful = useful;
          sm_replay = replay;
          sm_broken = w.Worker.broken_replays;
          sm_recovery_replay = w.Worker.recovery_replay_instrs;
          sm_sent = w.Worker.jobs_sent;
          sm_received = w.Worker.jobs_received;
          sm_solver = Smt.Solver.copy_stats w.Worker.cfg.Executor.solver;
          sm_coverage = Bytes.copy w.Worker.cfg.Executor.coverage;
        })
  with e ->
    (* A worker that dies mid-run (e.g. raising during replay) must still
       let [Domain.join] complete and the coordinator learn of the death:
       report the exception through the control mailbox and return an
       empty summary.  The coordinator treats [Failed] as a crash
       declaration, so the slot's leases recover exactly as if the
       fault plan had killed it. *)
    (try
       ignore
         (Mailbox.push_timeout coord
            (Failed { worker = i; incarnation; error = Printexc.to_string e })
            ~timeout:ctl_timeout)
     with _ -> ());
    {
      sm_id = i;
      sm_paths = 0;
      sm_errors = 0;
      sm_useful = 0;
      sm_replay = 0;
      sm_broken = 0;
      sm_recovery_replay = 0;
      sm_sent = 0;
      sm_received = 0;
      sm_solver = Smt.Solver.zero_stats ();
      sm_coverage = Bytes.create 0;
    }

(* ---- coordinator -------------------------------------------------- *)

let popcount_bytes bv =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr n
      done)
    bv;
  !n

(* Coordinator-side view of one worker slot.  The inbox and crash flag
   are per-incarnation: a rejoin replaces both, so late messages from
   (and deliveries to) a dead incarnation can never reach the fresh
   one. *)
type slot = {
  s_id : int;
  mutable s_inbox : wmsg Mailbox.t;
  mutable s_crash : bool Atomic.t;
  mutable s_incarnation : int;
  mutable s_dead : bool;  (* declared crashed and not (yet) rejoined *)
  mutable s_idle : bool;  (* from the last processed status / ack *)
  mutable s_queue_len : int;
  mutable s_pending_steals : int;  (* steals pushed, offers not yet back *)
  mutable s_pending_jobs : int;
      (* jobs leased to this worker and not yet acknowledged: its idle
         reports meanwhile must not read as starvation, or the balancer
         raids another victim for a worker already being fed *)
  mutable s_last_heard : int;  (* tick of the last message from this incarnation *)
  mutable s_suspect : bool;  (* failure detector: one heartbeat interval silent *)
}

let run ~coverable_lines (cfg : 'env config) =
  if cfg.ndomains < 1 then invalid_arg "Parallel.run: ndomains must be >= 1";
  (match Faultplan.validate cfg.faults ~nworkers:cfg.ndomains with
  | Ok () -> ()
  | Error m -> invalid_arg ("Parallel.run: " ^ m));
  let n = cfg.ndomains in
  let faulty = not (Faultplan.is_faultless cfg.faults) in
  let frt = Faultplan.make cfg.faults in
  let coord = Mailbox.create ~cap:(cfg.mailbox_capacity * (n + 1)) () in
  let slots =
    Array.init n (fun i ->
        {
          s_id = i;
          s_inbox = Mailbox.create ~cap:cfg.mailbox_capacity ();
          s_crash = Atomic.make false;
          s_incarnation = 0;
          s_dead = false;
          s_idle = false;
          s_queue_len = 0;
          s_pending_steals = 0;
          s_pending_jobs = 0;
          s_last_heard = 0;
          s_suspect = false;
        })
  in
  let spawned = ref [] in (* (slot id, incarnation, domain), newest first *)
  let declared : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* The coordinator profiles and emits through its own buffered
     lb-attributed view: it must never write the shared core while
     domains run, and the view is flushed after they have all joined. *)
  let cobs = Option.map (fun s -> Obs.Sink.buffered s Obs.Event.lb) cfg.obs in
  let cprof = Option.map Obs.Profile.create cobs in
  let emit ev = match cobs with None -> () | Some s -> Obs.Sink.event s ev in
  let stamp () = match cprof with Some _ -> Obs.Clock.now_ns () | None -> 0 in
  let now = ref 0 in
  let delayed = ref [] in (* (due_tick, dst, incarnation, wmsg) *)
  let transfers = ref 0 in
  let steals = ref 0 in
  let status_reports = ref 0 in
  let balancer = ref None in
  let issued_ns_hint = ref 0 in
  let transport_ref = ref None in
  (* last crash-or-rejoin tick in the plan: after it, an all-dead cluster
     can never revive, so the run may stop (graceful degradation) *)
  let horizon =
    List.fold_left
      (fun acc c ->
        let last =
          match c.Faultplan.rejoin_after with
          | Some d -> c.Faultplan.at_tick + d
          | None -> c.Faultplan.at_tick
        in
        max acc last)
      0 cfg.faults.Faultplan.crashes
  in
  let push_wire sl msg =
    (* a full mailbox on a wedged or dead worker must never block the
       coordinator: bounded push, overflow = the wire dropped it (the
       lease layer retransmits) *)
    ignore (Mailbox.push_timeout sl.s_inbox msg ~timeout:cfg.push_timeout)
  in
  (* in-flight lease sizes, to unwind s_pending_jobs when a lease is
     acknowledged (directly or via a report's piggybacked ack list) *)
  let pending_of_lease : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
  let lease_settled lease =
    match Hashtbl.find_opt pending_of_lease lease with
    | None -> ()
    | Some (dst, count) ->
      Hashtbl.remove pending_of_lease lease;
      let sl = slots.(dst) in
      if not sl.s_dead then sl.s_pending_jobs <- max 0 (sl.s_pending_jobs - count)
  in
  let send_jobs ~src ~lease ~dst ~batch ~recovery ~resend =
    let sl = slots.(dst) in
    if not sl.s_dead then begin
      let issued_ns = if resend then 0 else !issued_ns_hint in
      issued_ns_hint := 0;
      if not resend then begin
        emit (Obs.Event.Job_transfer { lease; src; dst; count = Job.batch_size batch; recovery });
        Hashtbl.replace pending_of_lease lease (dst, Job.batch_size batch);
        sl.s_pending_jobs <- sl.s_pending_jobs + Job.batch_size batch
      end;
      let msg = Jobs { lease; encoded = Job.encode_batch batch; recovery; issued_ns } in
      if not faulty then push_wire sl msg
      else
        match Faultplan.fate frt ~tick:!now ~src ~dst with
        | Faultplan.Drop -> ()
        | Faultplan.Deliver 0 -> push_wire sl msg
        | Faultplan.Deliver extra ->
          delayed := (!now + extra, dst, sl.s_incarnation, msg) :: !delayed
        | Faultplan.Duplicate lag ->
          push_wire sl msg;
          delayed := (!now + lag, dst, sl.s_incarnation, msg) :: !delayed
    end
  in
  let live_workers () =
    Array.to_list slots
    |> List.filter_map (fun sl -> if sl.s_dead then None else Some (sl.s_id, sl.s_queue_len))
  in
  let install_bans bans =
    (* bans are the one worker-bound message that must not be silently
       lost (a live worker missing one could re-explore a transferred
       subtree), so a worker wedged enough to time the push out is
       declared crashed — which is itself exact *)
    let wedged = ref [] in
    Array.iter
      (fun sl ->
        if
          (not sl.s_dead)
          && not (Mailbox.push_timeout sl.s_inbox (Bans bans) ~timeout:cfg.push_timeout)
        then wedged := sl.s_id :: !wedged)
      slots;
    List.iter
      (fun i ->
        match !transport_ref with
        | Some tr -> Transport.handle_crash tr ~now:!now ~worker:i
        | None -> ())
      !wedged
  in
  let begin_crash ~worker:i =
    if i < 0 || i >= n then false
    else
      let sl = slots.(i) in
      if sl.s_dead then false
      else begin
        (* declare-then-kill: mark the slot dead (filtering everything
           this incarnation still sends), then raise the crash flag the
           victim polls between slices.  A Poke wakes it if it is
           blocked in its idle wait. *)
        sl.s_dead <- true;
        Hashtbl.replace declared (i, sl.s_incarnation) ();
        Atomic.set sl.s_crash true;
        ignore (Mailbox.try_push sl.s_inbox Poke);
        sl.s_pending_steals <- 0;
        sl.s_pending_jobs <- 0;
        sl.s_suspect <- false;
        (match !balancer with Some b -> Balancer.forget b ~worker:i | None -> ());
        emit (Obs.Event.Crash { worker = i });
        true
      end
  in
  let transport =
    Transport.create ?obs:cobs
      ~base_timeout:64 (* ticks: ~64 ms before the first retransmit *)
      { Transport.nworkers = n; send_jobs; install_bans; live_workers; begin_crash }
  in
  transport_ref := Some transport;
  let ledger = Transport.ledger transport in
  let spawn sl ~seed =
    let inbox = sl.s_inbox and crash = sl.s_crash in
    let incarnation = sl.s_incarnation in
    let initial_bans = Transport.bans transport in
    let d =
      Domain.spawn (fun () ->
          worker_body cfg ~coord ~inbox ~crash ~id:sl.s_id ~incarnation ~initial_bans ~seed)
    in
    spawned := (sl.s_id, incarnation, d) :: !spawned
  in
  Array.iter
    (fun sl ->
      emit (Obs.Event.Join { worker = sl.s_id });
      spawn sl ~seed:(sl.s_id = 0))
    slots;
  (* cover the root with a delivered lease, so a crash of worker 0
     before its first report re-seeds the whole tree *)
  Transport.seed_root transport ~dst:0 ~now:0;
  let ticker_stop = Atomic.make false in
  let ticker =
    Domain.spawn (fun () ->
        while not (Atomic.get ticker_stop) do
          ignore (Mailbox.try_push coord Tick);
          Unix.sleepf cfg.tick_period
        done)
  in
  let watchdog_fired = ref false in
  let last_progress = ref (Unix.gettimeofday ()) in
  let touch sl =
    sl.s_last_heard <- !now;
    sl.s_suspect <- false
  in
  let fate_drops ~src ~dst =
    faulty
    && match Faultplan.fate frt ~tick:!now ~src ~dst with Faultplan.Drop -> true | _ -> false
  in
  let get_balancer coverage =
    match !balancer with
    | Some b -> b
    | None ->
      let b = Balancer.create ~coverage_bytes:(Bytes.length coverage) ?obs:cobs () in
      balancer := Some b;
      b
  in
  let on_tick () =
    incr now;
    let t = !now in
    if faulty then begin
      List.iter
        (fun v -> Transport.handle_crash transport ~now:t ~worker:v)
        (Faultplan.crashes_at frt ~tick:t);
      List.iter
        (fun v ->
          if v >= 0 && v < n && slots.(v).s_dead then begin
            let sl = slots.(v) in
            (* fresh incarnation: new mailbox and crash flag, so nothing
               addressed to (or signed by) the dead one can cross over *)
            sl.s_inbox <- Mailbox.create ~cap:cfg.mailbox_capacity ();
            sl.s_crash <- Atomic.make false;
            sl.s_incarnation <- sl.s_incarnation + 1;
            sl.s_dead <- false;
            sl.s_idle <- false;
            sl.s_queue_len <- 0;
            sl.s_pending_steals <- 0;
            sl.s_pending_jobs <- 0;
            sl.s_last_heard <- t;
            sl.s_suspect <- false;
            emit (Obs.Event.Rejoin { worker = v });
            spawn sl ~seed:false
          end)
        (Faultplan.rejoins_at frt ~tick:t);
      let due, later = List.partition (fun (at, _, _, _) -> at <= t) !delayed in
      delayed := later;
      List.iter
        (fun (_, dst, inc, msg) ->
          let sl = slots.(dst) in
          if (not sl.s_dead) && sl.s_incarnation = inc then push_wire sl msg)
        due
    end;
    Transport.tick transport ~now:t;
    (* heartbeat failure detection: a busy worker that stops reporting is
       suspected after one interval and declared crashed after two.
       Idle workers are silent by design and exempt — jobs routed to a
       truly dead idle worker are caught by lease eviction instead. *)
    if cfg.heartbeat_ticks > 0 then
      Array.iter
        (fun sl ->
          if (not sl.s_dead) && not sl.s_idle then begin
            let silent = t - sl.s_last_heard in
            if silent > 2 * cfg.heartbeat_ticks then
              Transport.handle_crash transport ~now:t ~worker:sl.s_id
            else if silent > cfg.heartbeat_ticks then sl.s_suspect <- true
          end)
        slots;
    if
      cfg.watchdog > 0.0
      && (not !watchdog_fired)
      && Unix.gettimeofday () -. !last_progress > cfg.watchdog
    then begin
      watchdog_fired := true;
      Printf.eprintf
        "parallel: watchdog after %.0fs without progress: pending=%d parked=%d delayed=%d\n%!"
        cfg.watchdog (Ledger.pending ledger)
        (Transport.parked_orphans transport)
        (List.length !delayed);
      Array.iter
        (fun sl ->
          Printf.eprintf
            "  worker %d: inc=%d dead=%b idle=%b queue=%d pending_steals=%d last_heard=%d\n%!"
            sl.s_id sl.s_incarnation sl.s_dead sl.s_idle sl.s_queue_len sl.s_pending_steals
            sl.s_last_heard)
        slots
    end
  in
  let handle msg =
    (match msg with Tick -> () | _ -> last_progress := Unix.gettimeofday ());
    match msg with
    | Tick -> on_tick ()
    | Status { worker; incarnation; queue_len; idle; coverage; digest; paths; errors; received }
      ->
      let sl = slots.(worker) in
      if incarnation = sl.s_incarnation && not sl.s_dead then begin
        incr status_reports;
        touch sl;
        sl.s_idle <- idle;
        sl.s_queue_len <- queue_len;
        (* the report is the worker's durable recovery point: digest +
           counters were snapshotted in-domain, so they are consistent *)
        Ledger.record_report ~received ledger ~worker ~tick:!now ~digest ~paths ~errors;
        List.iter lease_settled received;
        let b = get_balancer coverage in
        (* report queue + in-flight jobs: a worker already being fed must
           not classify as starved while the batch crosses the wire *)
        let global =
          Balancer.report ~tick:!now b ~worker
            ~queue_len:(queue_len + sl.s_pending_jobs)
            ~coverage
        in
        (* Coverage feedback only to busy workers: echoing it to an idle
           reporter would wake it for nothing, and the wake-report cycle
           would never quiesce. *)
        if not idle then ignore (Mailbox.try_push sl.s_inbox (Coverage global))
      end
    | Offer { worker; incarnation; dst; jobs; issued_ns } ->
      let sl = slots.(worker) in
      if incarnation = sl.s_incarnation && not sl.s_dead then begin
        touch sl;
        if sl.s_pending_steals > 0 then sl.s_pending_steals <- sl.s_pending_steals - 1;
        if jobs <> [] then begin
          (* the original thief may have died since the steal was issued:
             re-route to the least-loaded live worker (falling back to
             the victim itself — the nodes are fenced there, so going
             home is just another transfer).  A re-route is failure-path
             work: its replay books as recovery, like the timed-out
             Offer take-back and orphan re-seeding, so ordinary replay
             measures only the cost of successful rebalancing. *)
          let rerouted = not (dst >= 0 && dst < n && not slots.(dst).s_dead) in
          let dst =
            if not rerouted then dst
            else begin
              let best = ref worker and best_q = ref max_int in
              Array.iter
                (fun s2 ->
                  if (not s2.s_dead) && s2.s_id <> worker && s2.s_queue_len < !best_q then begin
                    best := s2.s_id;
                    best_q := s2.s_queue_len
                  end)
                slots;
              !best
            end
          in
          issued_ns_hint := issued_ns;
          ignore
            (Transport.issue_transfer transport ~recovery:rerouted ~src:worker ~dst ~jobs
               ~now:!now);
          issued_ns_hint := 0;
          transfers := !transfers + List.length jobs
        end
      end
    | Ack { worker; incarnation; lease } ->
      let sl = slots.(worker) in
      if incarnation = sl.s_incarnation && not sl.s_dead then begin
        touch sl;
        (* the fault plan may lose the ack in "transit": the lease then
           retransmits and the receiver's dedup re-acks *)
        if not (fate_drops ~src:worker ~dst:Faultplan.lb) then begin
          Ledger.mark_delivered ledger ~lease ~now:!now;
          lease_settled lease;
          (* the acking worker just imported work (or re-acked a dup; a
             still-idle worker re-reports idleness on its next wake) *)
          sl.s_idle <- false
        end
      end
    | Failed { worker; incarnation; error } ->
      let sl = slots.(worker) in
      if incarnation = sl.s_incarnation && not sl.s_dead then begin
        Printf.eprintf "parallel: worker %d died: %s\n%!" worker error;
        Transport.handle_crash transport ~now:!now ~worker
      end
  in
  let rebalance () =
    match !balancer with
    | None -> ()
    | Some b ->
      List.iter
        (fun { Balancer.src; dst; count } ->
          if
            src >= 0 && src < n && dst >= 0 && dst < n
            && (not slots.(src).s_dead)
            && (not slots.(dst).s_dead)
            (* one raid per victim at a time: until the Offer returns,
               another Steal would re-export the same queue estimate *)
            && slots.(src).s_pending_steals = 0
            (* and one feed per thief at a time: a destination with a
               lease still crossing the wire is not starving, whatever
               its last report said *)
            && slots.(dst).s_pending_jobs = 0
          then
            if not (fate_drops ~src:Faultplan.lb ~dst:src) then begin
              incr steals;
              if
                Mailbox.try_push slots.(src).s_inbox
                  (Steal { dst; count; issued_ns = stamp () })
              then slots.(src).s_pending_steals <- slots.(src).s_pending_steals + 1
            end)
        (Balancer.rebalance b)
  in
  let quiescent () =
    !delayed = []
    && Transport.quiesced transport
    && Array.exists (fun sl -> not sl.s_dead) slots
    && Array.for_all (fun sl -> sl.s_dead || (sl.s_idle && sl.s_pending_steals = 0)) slots
  in
  let all_dead_done () =
    (* every slot dead and no rejoin can revive the cluster: stop rather
       than spin forever (parked orphans are reported, not explored) *)
    Array.for_all (fun sl -> sl.s_dead) slots && !now > horizon
  in
  (* Rebalancing is throttled to a fixed tick cadence rather than run on
     every drain round: between two status reports the balancer's queue
     estimates cannot improve, so extra rounds only manufacture duplicate
     raids from the same stale numbers (each a future replay bill). *)
  let last_rebalance = ref 0 in
  let rec loop () =
    if quiescent () || all_dead_done () || !watchdog_fired then ()
    else begin
      (* One quiescence round = message drain (including the block on an
         empty coordinator mailbox — bounded by the next Tick) +
         rebalance. *)
      let round_t0 = Obs.Profile.start cprof in
      List.iter handle (Mailbox.drain_wait coord);
      if !now - !last_rebalance >= 32 then begin
        last_rebalance := !now;
        rebalance ()
      end;
      ignore (Obs.Profile.record cprof Obs.Profile.Quiesce_round ~start_ns:round_t0);
      loop ()
    end
  in
  loop ();
  Atomic.set ticker_stop true;
  (* stop the workers: live ones by message (falling back to the crash
     flag if their mailbox is wedged), dead ones are already
     crash-flagged — a Poke covers one blocked in its idle wait *)
  Array.iter
    (fun sl ->
      if sl.s_dead || !watchdog_fired then begin
        Atomic.set sl.s_crash true;
        ignore (Mailbox.try_push sl.s_inbox Poke)
      end
      else if not (Mailbox.push_timeout sl.s_inbox Stop ~timeout:(max 1.0 cfg.push_timeout))
      then begin
        Atomic.set sl.s_crash true;
        ignore (Mailbox.try_push sl.s_inbox Poke)
      end)
    slots;
  Domain.join ticker;
  let joined = List.rev_map (fun (i, inc, d) -> (i, inc, Domain.join d)) !spawned in
  Option.iter Obs.Sink.flush cobs;
  (* Drain any messages that raced with the stop broadcast. *)
  List.iter
    (fun m -> match m with Status _ -> incr status_reports | _ -> ())
    (Mailbox.drain coord);
  if !watchdog_fired then
    failwith "Parallel.run: watchdog fired — no coordinator progress; state dumped to stderr";
  let live i inc = not (Hashtbl.mem declared (i, inc)) in
  let agg = Smt.Solver.zero_stats () in
  List.iter (fun (_, _, s) -> Smt.Solver.accum_stats agg s.sm_solver) joined;
  let coverage_vector =
    let len =
      List.fold_left (fun acc (_, _, s) -> max acc (Bytes.length s.sm_coverage)) 0 joined
    in
    let bv = Bytes.make len '\000' in
    List.iter
      (fun (_, _, s) ->
        Bytes.iteri
          (fun k c -> Bytes.set bv k (Char.chr (Char.code (Bytes.get bv k) lor Char.code c)))
          s.sm_coverage)
      joined;
    bv
  in
  let sum f = List.fold_left (fun acc (_, _, s) -> acc + f s) 0 joined in
  let sum_live f =
    List.fold_left (fun acc (i, inc, s) -> if live i inc then acc + f s else acc) 0 joined
  in
  {
    ndomains = n;
    (* paths/errors: live incarnations report themselves; declared ones
       are credited from their last ledger report, with everything after
       it redone (and counted) by whoever ran the recovery leases *)
    total_paths = Transport.credit_paths transport + sum_live (fun s -> s.sm_paths);
    total_errors = Transport.credit_errors transport + sum_live (fun s -> s.sm_errors);
    useful_instrs = sum (fun s -> s.sm_useful);
    replay_instrs = sum (fun s -> s.sm_replay);
    broken_replays = sum (fun s -> s.sm_broken);
    transfers = !transfers;
    steals = !steals;
    status_reports = !status_reports;
    jobs_sent = sum (fun s -> s.sm_sent);
    jobs_received = sum (fun s -> s.sm_received);
    crashes = Transport.crashes transport;
    recovered_jobs = Transport.recovered_jobs transport;
    retransmits = Transport.retransmits transport;
    recovery_replay_instrs = sum (fun s -> s.sm_recovery_replay);
    coverage_vector;
    final_coverage =
      (if coverable_lines <= 0 then 0.0
       else float_of_int (popcount_bytes coverage_vector) /. float_of_int coverable_lines);
    per_worker_useful =
      List.filter_map (fun (i, inc, s) -> if live i inc then Some (i, s.sm_useful) else None) joined;
    solver_stats = agg;
    per_worker_solver =
      List.filter_map (fun (i, inc, s) -> if live i inc then Some (i, s.sm_solver) else None) joined;
  }
