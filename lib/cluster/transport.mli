(** The shared scheduler/transport core: the coordinator-side fault
    tolerance state machine common to the virtual-time {!Driver} and the
    real-domain {!Parallel} runtime.

    Both backends route job batches as {!Ledger} leases; this module
    owns the protocol on top — at-least-once retransmission with
    exponential backoff, eviction of destinations that exhaust the
    retransmit budget, and exact crash recovery (credit the victim's
    last-reported counters, ban the nodes it handed away, re-seed its
    orphans on live workers, parking them while none is alive).  A
    backend plugs in the parts only it understands via {!ops}. *)

type ops = {
  nworkers : int;
  send_jobs :
    src:int -> lease:int -> dst:int -> batch:Job.batch -> recovery:bool -> resend:bool -> unit;
      (** put a leased, prefix-factored batch on the backend's (lossy)
          wire — the transport factors every outgoing batch so both
          backends ship the same {!Job.encode_batch} codec.  [src] is
          {!Faultplan.lb} for ledger (re)sends and recovery seeds;
          [resend] marks retransmissions of an existing lease *)
  install_bans : Job.t list -> unit;
      (** warn every live worker off these exact nodes (a crashed worker
          had sent them out after its last report) *)
  live_workers : unit -> (int * int) list;
      (** [(id, queue_len)] of workers able to accept recovery jobs *)
  begin_crash : worker:int -> bool;
      (** backend teardown for a crash-stop: drop the engine, forget the
          balancer entry, filter undeliverable traffic.  Returns [false]
          when the slot is not crashable (already dead, never alive, or
          out of range) — the transport then does nothing. *)
}

type t

(** [initial_bans] pre-loads the cumulative ban list — a campaign restore
    imports the checkpointed set so freshly spawned workers inherit it
    through {!bans} exactly as rejoining workers do. *)
val create :
  ?base_timeout:int -> ?max_attempts:int -> ?initial_bans:Job.t list -> ?obs:Obs.Sink.t -> ops -> t

(** The underlying lease ledger, for the per-message bookkeeping the
    backend drives directly: {!Ledger.mark_delivered} on acks and
    {!Ledger.record_report} on status reports. *)
val ledger : t -> Ledger.t

(** Crash-stop [worker]: runs [ops.begin_crash], then credits its last
    reported counters, installs bans, and re-seeds its orphans. *)
val handle_crash : t -> now:int -> worker:int -> unit

(** Periodic sweep: retransmit overdue leases, evict destinations that
    exhausted the budget (through {!handle_crash}), and re-route parked
    orphans once a worker is alive again. *)
val tick : t -> now:int -> unit

(** Lease and send a rebalancing transfer from [src]; records the jobs
    as sent-out first so a crash of [src] stays exact.  [recovery]
    marks failure-path transfers (a batch re-routed around a dead
    thief): the destination then books their replay as recovery cost.
    Returns the lease id. *)
val issue_transfer : ?recovery:bool -> t -> src:int -> dst:int -> jobs:Job.t list -> now:int -> int

(** Cover a seed batch with a delivered lease on [dst] (which already
    holds the jobs by construction), so a crash of the seed worker before
    its first report re-seeds the batch.  No-op on the empty list. *)
val seed_jobs : t -> dst:int -> jobs:Job.t list -> now:int -> unit

(** [seed_jobs] of the root job — the whole execution tree. *)
val seed_root : t -> dst:int -> now:int -> unit

(** No lease awaiting an ack and no orphan parked: the transport holds
    no in-flight work.  One conjunct of global exhaustion. *)
val quiesced : t -> bool

(** Cumulative ban list, for installing on freshly (re)joined workers. *)
val bans : t -> Job.t list

val parked_orphans : t -> int
val crashes : t -> int
val recovered_jobs : t -> int
val retransmits : t -> int

(** Paths / errors credited from crashed workers' last reports. *)
val credit_paths : t -> int

val credit_errors : t -> int
