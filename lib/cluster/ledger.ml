(* The load balancer's lease ledger: the recovery half of the paper's
   robustness claim (sections 3.1-3.3).

   Jobs are path-encoded, so a byte-cheap copy of every job the balancer
   routes is enough to reconstruct any lost subtree by lazy replay.  The
   ledger therefore keeps:

   - a *lease* per routed job batch: the path copies, the destination,
     and delivery/retransmission state.  A lease is acknowledged when the
     destination confirms receipt and *released* only when a later status
     report from the destination arrives — at that point the jobs are
     reflected in the worker's reported frontier digest (still pending)
     or in its reported completed-path counters (done), so the copy is no
     longer the only record of the subtree;

   - each worker's last *status report*: its frontier digest (the root
     paths of all candidate nodes, including a job mid-replay) plus its
     cumulative completed-path and error counters.  The report is the
     durable recovery point: on a crash, everything the worker did after
     its last report is lost and will be redone;

   - the paths each worker transferred *out* since its last report.
     Without these, re-seeding a stale digest would re-explore subtrees
     the dead worker had already handed to live workers, double-counting
     paths.  Exact matches are subtracted from the recovery set and the
     rest are returned as *bans*: fork products a recovery worker must
     drop because another worker owns them.

   Invariant: every routed job (including the initial root seed) is
   covered at all times by an unreleased lease or by its owner's last
   report.  [on_crash] computes the orphan set from exactly those two
   sources, which is why a crash loses no subtree and re-seeds none
   twice. *)

module Path = Engine.Path

type lease = {
  lease_id : int;
  l_dst : int;
  l_jobs : Job.t list;
  l_recovery : bool;          (* re-seeded after a failure (not a rebalance) *)
  mutable delivered : int option;  (* ack received; tick of delivery *)
  mutable last_send : int;
  mutable attempts : int;     (* sends so far (first send included) *)
}

type report = {
  r_tick : int;
  r_digest : Job.t list;
  r_paths : int;
  r_errors : int;
}

type t = {
  base_timeout : int;   (* ticks before the first retransmission *)
  max_attempts : int;   (* sends before the lease is declared failed *)
  mutable next_id : int;
  leases : (int, lease) Hashtbl.t;
  reports : (int, report) Hashtbl.t;       (* worker -> last status report *)
  sent_out : (int, Job.t list) Hashtbl.t;  (* worker -> paths sent since report *)
  mutable retransmits : int;
  obs : Obs.Sink.t option;
  retransmit_counter : Obs.Metrics.counter option; (* resolved at create *)
}

let create ?(base_timeout = 16) ?(max_attempts = 5) ?obs () =
  {
    base_timeout;
    max_attempts;
    next_id = 0;
    leases = Hashtbl.create 64;
    reports = Hashtbl.create 16;
    sent_out = Hashtbl.create 16;
    retransmits = 0;
    obs;
    retransmit_counter =
      Option.map (fun s -> Obs.Metrics.counter (Obs.Sink.metrics s) "lease_retransmits") obs;
  }

let emit t ev = match t.obs with None -> () | Some s -> Obs.Sink.event s ev

let issue t ~dst ~jobs ~now ~recovery =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.leases id
    { lease_id = id; l_dst = dst; l_jobs = jobs; l_recovery = recovery;
      delivered = None; last_send = now; attempts = 1 };
  emit t (Obs.Event.Lease_grant { lease = id; dst; jobs = List.length jobs; recovery });
  id

(* Unknown ids are ignored: acks may trail a crash that canceled the
   lease, or duplicate a previous ack. *)
let mark_delivered t ~lease ~now =
  match Hashtbl.find_opt t.leases lease with
  | Some l ->
    if l.delivered = None then begin
      l.delivered <- Some now;
      emit t (Obs.Event.Lease_ack { lease })
    end
  | None -> ()

let record_sent_out t ~src ~jobs =
  if jobs <> [] then
    Hashtbl.replace t.sent_out src
      (jobs @ Option.value ~default:[] (Hashtbl.find_opt t.sent_out src))

(* [received] is the worker's cumulative acknowledgement, piggybacked on
   the reliable report channel: every lease id it has ever processed.  It
   releases leases whose network acks were all lost — essential for
   exactness, because such a payload is already reflected in this
   report's digest and counters, and re-seeding its root on a crash
   would re-explore (and re-count) the subtree. *)
let record_report ?(received = []) t ~worker ~tick ~digest ~paths ~errors =
  Hashtbl.replace t.reports worker { r_tick = tick; r_digest = digest; r_paths = paths; r_errors = errors };
  Hashtbl.remove t.sent_out worker;
  (* the report supersedes every lease its worker had processed when it
     was taken: those jobs now live in the digest or in the completed
     counters *)
  let released =
    Hashtbl.fold
      (fun id l acc ->
        if l.l_dst = worker then
          match l.delivered with
          | Some dt when dt <= tick -> id :: acc
          | _ -> if List.mem id received then id :: acc else acc
        else acc)
      t.leases []
  in
  List.iter
    (fun id ->
      emit t (Obs.Event.Lease_release { lease = id; dst = worker });
      Hashtbl.remove t.leases id)
    released

(* Retransmission sweep.  A lease still awaiting its ack past the backoff
   deadline (base_timeout doubling per attempt) is either resent or, once
   [max_attempts] sends are spent, failed.  A failed lease stays in the
   table: the caller must evict its destination, and [on_crash] then
   collects the lease with the rest of the victim's state.  Removing it
   here instead would lose track of a payload that did arrive but whose
   acks were all lost — re-routing it blindly would explore the subtree
   twice. *)
let tick_timeouts t ~now =
  let resend = ref [] and failed = ref [] in
  Hashtbl.iter
    (fun _ l ->
      if l.delivered = None then begin
        let deadline = l.last_send + (t.base_timeout lsl (l.attempts - 1)) in
        if now >= deadline then
          if l.attempts >= t.max_attempts then begin
            emit t (Obs.Event.Lease_evict { lease = l.lease_id; dst = l.l_dst });
            failed := l :: !failed
          end
          else begin
            l.attempts <- l.attempts + 1;
            l.last_send <- now;
            t.retransmits <- t.retransmits + 1;
            (match t.retransmit_counter with Some c -> Obs.Metrics.incr c | None -> ());
            emit t
              (Obs.Event.Lease_retransmit
                 { lease = l.lease_id; dst = l.l_dst; attempt = l.attempts });
            resend := l :: !resend
          end
      end)
    t.leases;
  (!resend, !failed)

let cancel t ~lease = Hashtbl.remove t.leases lease

(* Leases whose jobs may still be in flight (no ack yet).  Delivered
   leases do not block exhaustion: their jobs sit in a live frontier or
   are already explored. *)
let pending t =
  Hashtbl.fold (fun _ l acc -> if l.delivered = None then acc + 1 else acc) t.leases 0

let retransmits t = t.retransmits

type recovery = {
  credit_paths : int;   (* completed paths confirmed by the last report *)
  credit_errors : int;
  orphans : Job.t list; (* subtrees to re-seed on live workers *)
  bans : Job.t list;    (* fork products owned elsewhere; drop on discovery *)
}

let on_crash t ~worker =
  let sent = Option.value ~default:[] (Hashtbl.find_opt t.sent_out worker) in
  let sent_keys = Hashtbl.create (List.length sent) in
  List.iter (fun p -> Hashtbl.replace sent_keys (Path.to_string p) ()) sent;
  let keep p = not (Hashtbl.mem sent_keys (Path.to_string p)) in
  let credit_paths, credit_errors, digest =
    match Hashtbl.find_opt t.reports worker with
    | Some r -> (r.r_paths, r.r_errors, List.filter keep r.r_digest)
    | None -> (0, 0, [])
  in
  (* every lease routed to the dead worker is orphaned, acknowledged or
     not.  The digest and the leases can overlap: a payload that arrived
     but whose acks were all lost is both in the digest (reported) and
     still leased (never marked delivered) — so the union is deduplicated
     by exact path, which is safe because equal paths name the same node *)
  let leased =
    Hashtbl.fold
      (fun id l acc -> if l.l_dst = worker then (id, List.filter keep l.l_jobs) :: acc else acc)
      t.leases []
  in
  List.iter (fun (id, _) -> Hashtbl.remove t.leases id) leased;
  Hashtbl.remove t.reports worker;
  Hashtbl.remove t.sent_out worker;
  let seen = Hashtbl.create 32 in
  let orphans =
    List.filter
      (fun p ->
        let k = Path.to_string p in
        if Hashtbl.mem seen k then false else (Hashtbl.replace seen k (); true))
      (digest @ List.concat_map snd leased)
  in
  { credit_paths; credit_errors; orphans; bans = sent }
