(** A Cloud9 worker: an independent symbolic execution engine exploring
    one region of the global execution tree (paper section 3.2).

    The worker's frontier holds candidate nodes — materialized (program
    state in memory) or virtual (path-only shells from job transfers).
    Selecting a virtual candidate triggers lazy replay from the deepest
    cached ancestor; off-path siblings revealed by the replay become
    fence nodes (Fig. 3's node life cycle). *)

module Trie = Engine.Trie

type 'env entry = {
  epath : Engine.Path.t;
  estate : 'env Engine.State.t option;  (** [None] = virtual *)
  erecovery : bool;  (** re-seeded by crash recovery (cost accounting) *)
}

type 'env mode =
  | Exploring
  | Replaying of {
      target : Engine.Path.t;
      remaining : Engine.Path.choice list;
      rstate : 'env Engine.State.t;
      recov : bool;  (** replaying a recovery job *)
    }

type policy =
  | Random_path_only
  | Interleaved  (** random-path alternating with coverage-optimized *)

type 'env t = {
  id : int;
  cfg : 'env Engine.Executor.config;
  make_root : unit -> 'env Engine.State.t;
  frontier : 'env entry Trie.t;
  fence : unit Trie.t;
  banned : unit Trie.t;
      (** exact node paths owned by another worker after a crash
          recovery; fork products matching one are dropped (and the
          entry consumed) *)
  rng : Random.State.t;
  policy : policy;
  weight : ('env Engine.State.t -> float) option;
  quantum : int;
  collect_tests : int;
  snapshots : (string, 'env Engine.State.t) Hashtbl.t;
  snap_queue : string Queue.t;
  snap_limit : int;
  pins : (string, int) Hashtbl.t;
      (** snapshot key → pin refcount; pinned snapshots survive FIFO
          eviction while a received batch still has members outstanding *)
  pin_of_target : (string, string) Hashtbl.t;  (** member job key → batch key *)
  batch_members : (string, int) Hashtbl.t;  (** batch key → outstanding members *)
  batch_keys : (string, string) Hashtbl.t;
      (** batch key → snapshot keys pinned on its behalf (multi-bound):
          every on-path state cached while replaying a member, so later
          members restart from their pairwise common prefix with the
          nearest already-replayed member *)
  mutable batch_fifo : Engine.Path.t list;
      (** received batch members not yet selected, in transfer
          (tree-adjacent) order — drained before the exploration
          strategy so each member replays from its neighbour's freshly
          pinned chain *)
  mutable mode : 'env mode;
  mutable cov_turn : bool;
  mutable paths_completed : int;
  mutable errors : int;
  mutable pruned : int;
  mutable tests : Engine.Testcase.t list;
  mutable broken_replays : int;
  mutable replays_done : int;
  mutable jobs_sent : int;
  mutable jobs_received : int;
  mutable banned_drops : int;
  mutable recovery_replay_instrs : int;
      (** replay instructions spent reconstructing recovery jobs *)
  prof : Obs.Profile.t option;
  mutable replay_t0 : int;
      (** wall-clock start of the replay in flight (profiling only) *)
}

(** [weight] replaces the coverage-optimized weighting (used e.g. by a
    fewest-faults-first strategy); [quantum] is how many instructions a
    selected state runs before reselection; [snap_limit] bounds the
    replay snapshot cache (0 disables it, forcing replay from the root);
    [prof] records each from-path replay as a wall-clock [job_replay]
    span (snapshot-exact materializations are skipped — there is no
    replay to time). *)
val create :
  ?policy:policy ->
  ?weight:('env Engine.State.t -> float) ->
  ?quantum:int ->
  ?collect_tests:int ->
  ?snap_limit:int ->
  ?prof:Obs.Profile.t ->
  id:int ->
  cfg:'env Engine.Executor.config ->
  make_root:(unit -> 'env Engine.State.t) ->
  seed:int ->
  unit ->
  'env t

(** Give the worker the whole execution tree (the first worker's seed
    job). *)
val seed_root : 'env t -> unit

(** Candidate-node count — what the worker reports to the balancer. *)
val queue_length : 'env t -> int

val is_idle : 'env t -> bool

(** Run up to [budget] instructions; returns the count actually executed
    (less when the worker runs out of work). *)
val execute : 'env t -> budget:int -> int

(** Package up to [count] candidates for another worker; each becomes a
    fence node locally.  Virtual candidates are forwarded first; within
    each class the batch is a lexicographically contiguous window
    anchored on the deepest node (victim-side eager splitting), so the
    offered nodes share the longest possible prefix. *)
val transfer_out : 'env t -> count:int -> Job.t list

(** Import transferred jobs as virtual candidates.  [recovery] tags
    re-seeded orphans of a crashed worker for cost accounting. *)
val receive_jobs : ?recovery:bool -> 'env t -> Job.t list -> unit

(** Import a factored batch (prefix handoff): members enter the frontier
    as full root paths, and the shared prefix is pinned in the snapshot
    cache while any member is outstanding, so after the first member's
    replay the rest replay suffix-only. *)
val receive_batch : ?recovery:bool -> 'env t -> Job.batch -> unit

(** Install node paths owned by another worker: fork products matching
    one exactly are dropped instead of entering the frontier. *)
val ban_paths : 'env t -> Engine.Path.t list -> unit

val frontier_paths : 'env t -> Engine.Path.t list

(** The worker's recovery point as reported to the load balancer: all
    candidate paths plus the target of an in-progress replay. *)
val digest_paths : 'env t -> Engine.Path.t list

val fence_count : 'env t -> int

(** [(paths_completed, errors, useful_instrs, replay_instrs)]. *)
val stats : 'env t -> int * int * int * int
