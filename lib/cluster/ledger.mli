(** The load balancer's lease ledger — the recovery half of the paper's
    robustness claim.  Jobs are path-encoded, so the ledger can keep a
    byte-cheap copy of every job batch it routes (a {e lease}) together
    with each worker's last-reported frontier digest; on a crash these
    two sources reconstruct exactly the dead worker's unexplored region,
    losing no subtree and re-seeding none twice (see DESIGN.md,
    "Failure semantics"). *)

type lease = {
  lease_id : int;
  l_dst : int;
  l_jobs : Job.t list;
  l_recovery : bool;  (** re-seeded after a failure (not a rebalance) *)
  mutable delivered : int option;  (** tick the ack arrived *)
  mutable last_send : int;
  mutable attempts : int;  (** sends so far (first send included) *)
}

type t

(** [base_timeout] is the tick count before the first retransmission
    (doubling per attempt); after [max_attempts] sends the lease fails
    and its jobs must be re-routed.  [obs] traces the lease life cycle
    (grant / ack / release / retransmit / evict) and counts retransmits. *)
val create : ?base_timeout:int -> ?max_attempts:int -> ?obs:Obs.Sink.t -> unit -> t

(** Lease a job batch routed to [dst]; returns the lease id carried by
    the transfer message and its acknowledgement. *)
val issue : t -> dst:int -> jobs:Job.t list -> now:int -> recovery:bool -> int

(** Record the destination's acknowledgement.  Unknown ids are ignored
    (late acks for canceled leases, duplicate acks). *)
val mark_delivered : t -> lease:int -> now:int -> unit

(** Record paths [src] transferred out, until its next status report.
    Needed so crash recovery does not re-seed subtrees the dead worker
    had already handed to live workers. *)
val record_sent_out : t -> src:int -> jobs:Job.t list -> unit

(** A worker status report: stores the frontier digest and cumulative
    counters as the worker's durable recovery point, clears its sent-out
    record, and releases every lease delivered at or before [tick] — as
    well as every lease in [received], the worker's cumulative list of
    processed lease ids.  The latter is the piggybacked acknowledgement
    that keeps the ledger exact when every network ack of a delivered
    batch was lost: the batch is covered by this report, so it must not
    be re-seeded on a crash. *)
val record_report :
  ?received:int list ->
  t ->
  worker:int ->
  tick:int ->
  digest:Job.t list ->
  paths:int ->
  errors:int ->
  unit

(** Retransmission sweep: [(resend, failed)].  [resend] leases had their
    attempt count and send time bumped — send their jobs again with the
    same lease id.  [failed] leases exhausted [max_attempts]; they stay
    in the table and the caller must evict their destination, so that
    {!on_crash} re-seeds the jobs exactly once even when the payload
    actually arrived but every ack was lost. *)
val tick_timeouts : t -> now:int -> lease list * lease list

val cancel : t -> lease:int -> unit

(** Number of leases whose jobs may still be in flight (unacknowledged).
    Nonzero blocks the [Exhaust] goal. *)
val pending : t -> int

val retransmits : t -> int

type recovery = {
  credit_paths : int;  (** completed paths confirmed by the last report *)
  credit_errors : int;
  orphans : Job.t list;  (** subtrees to re-seed on live workers *)
  bans : Job.t list;
      (** paths the dead worker sent out since its last report: another
          worker owns them, so recovery workers must drop these exact
          nodes when a fork re-creates them *)
}

(** Compute the dead worker's recovery set from its last report and its
    outstanding leases (both filtered by the sent-out record and
    deduplicated by exact path), credit its last-reported counters, and
    forget all its ledger state. *)
val on_crash : t -> worker:int -> recovery
