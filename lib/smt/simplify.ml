(* Canonicalizing rewriter for bit-vector expressions.

   The smart constructors in {!Expr} already fold constants; this module
   adds algebraic identities, normalizes commutative operands (constants
   to the right), and lowers signed division/remainder to unsigned
   operations so the bit blaster only handles unsigned arithmetic.

   The rewriter is bottom-up; rules are applied to a fixpoint at each node
   (each rule strictly decreases a well-founded measure, so this
   terminates).  Results are memoized globally by hashcons id: because
   terms are interned, each distinct subterm in the whole process is
   rewritten at most once, no matter how many path conditions share it. *)

open Expr

let is_zero e = match e.node with Const { value = 0L; _ } -> true | _ -> false
let is_ones e = match e.node with Const { width; value } -> value = mask width | _ -> false
let is_one e = match e.node with Const { value = 1L; _ } -> true | _ -> false

let commutative = function
  | Add | Mul | And | Or | Xor | Eq -> true
  | Sub | Udiv | Urem | Sdiv | Srem | Shl | Lshr | Ashr | Ult | Ule | Slt | Sle | Concat ->
    false

(* Total order used to canonicalize commutative operands: constants sort
   last so that the constant ends up on the right.  Ties break on the
   structural order, not hashcons ids: ids depend on interning history,
   and the canonical form must be identical across workers for replayed
   paths to concretize identically. *)
let rank e =
  match e.node with
  | Const _ -> 2
  | Sym _ -> 0
  | Unop _ | Binop _ | Ite _ | Extract _ | Zext _ | Sext _ -> 1

let operand_order a b =
  let c = Int.compare (rank a) (rank b) in
  if c <> 0 then c else Expr.compare_structural a b

(* Rewrite statistics, for the solver microbenchmark: [visits] counts
   rewriter entries into un-memoized nodes, [rewrites] counts rule
   applications, [memo_hits] counts simplifications answered from the
   memo table.  Domain-local, like the memo itself: each domain counts
   its own rewriting work, with no cross-domain write contention. *)
type rw_stats = { mutable visits : int; mutable rewrites : int; mutable memo_hits : int }

let stats_key =
  Domain.DLS.new_key (fun () -> { visits = 0; rewrites = 0; memo_hits = 0 })

let stats_live () = Domain.DLS.get stats_key
let stats () = { (stats_live ()) with visits = (stats_live ()).visits }

let reset_stats () =
  let s = stats_live () in
  s.visits <- 0;
  s.rewrites <- 0;
  s.memo_hits <- 0

let rewrite_binop op a b =
  let w = Expr.width a in
  match (op, a.node, b.node) with
  (* additive identities *)
  | Add, _, _ when is_zero b -> Some a
  | Sub, _, _ when is_zero b -> Some a
  | Sub, _, _ when a == b -> Some (const ~width:w 0L)
  (* multiplicative identities *)
  | Mul, _, _ when is_zero b -> Some (const ~width:w 0L)
  | Mul, _, _ when is_one b -> Some a
  | Udiv, _, _ when is_one b -> Some a
  | Urem, _, _ when is_one b -> Some (const ~width:w 0L)
  (* bitwise identities *)
  | And, _, _ when is_zero b -> Some (const ~width:w 0L)
  | And, _, _ when is_ones b -> Some a
  | And, _, _ when a == b -> Some a
  | Or, _, _ when is_zero b -> Some a
  | Or, _, _ when is_ones b -> Some (const ~width:w (mask w))
  | Or, _, _ when a == b -> Some a
  | Xor, _, _ when is_zero b -> Some a
  | Xor, _, _ when a == b -> Some (const ~width:w 0L)
  | Xor, _, _ when is_ones b -> Some (unop Not a)
  (* shifts by zero *)
  | (Shl | Lshr | Ashr), _, _ when is_zero b -> Some a
  (* reflexive comparisons *)
  | Eq, _, _ when a == b -> Some true_
  | Ult, _, _ when a == b -> Some false_
  | Ule, _, _ when a == b -> Some true_
  | Slt, _, _ when a == b -> Some false_
  | Sle, _, _ when a == b -> Some true_
  (* unsigned bounds *)
  | Ult, _, _ when is_zero b -> Some false_
  | Ule, _, _ when is_zero a -> Some true_
  | Ule, _, _ when is_ones b -> Some true_
  | Ult, _, _ when is_zero a -> Some (ne b (const ~width:(Expr.width b) 0L))
  (* canonical equality forms feed path-condition substitution *)
  | Ule, _, _ when is_zero b -> Some (eq a b)
  | Ult, _, _ when is_one b -> Some (eq a (const ~width:w 0L))
  (* eq against boolean constants collapses to the operand or its negation *)
  | Eq, _, _ when Expr.width a = 1 && is_one b -> Some a
  | Eq, _, _ when Expr.width a = 1 && is_zero b -> Some (unop Not a)
  (* push equalities and unsigned comparisons through zero-extension:
     keeps formulas narrow and exposes [sym = const] equalities for
     path-condition substitution *)
  | Eq, Zext (e, _), Const { width = _; value } ->
    let we = Expr.width e in
    if truncate we value = value then Some (eq e (const ~width:we value)) else Some false_
  | Eq, Sext (e, _), Const { width = wc; value } ->
    let we = Expr.width e in
    let back = truncate we value in
    if truncate wc (to_signed we back) = value then Some (eq e (const ~width:we back))
    else Some false_
  | Eq, Unop (Not, e), Const { width = wc; value } ->
    Some (eq e (const ~width:wc (Int64.lognot value)))
  | Eq, Binop (Add, x, { node = Const { width = wc; value = k }; _ }), Const { value = c; _ } ->
    Some (eq x (const ~width:wc (Int64.sub c k)))
  | Eq, Binop (Sub, x, { node = Const { width = wc; value = k }; _ }), Const { value = c; _ } ->
    Some (eq x (const ~width:wc (Int64.add c k)))
  | Ult, Zext (e, _), Const { value; _ } ->
    let we = Expr.width e in
    if ucompare value (mask we) > 0 then Some true_ else Some (ult e (const ~width:we value))
  | Ult, Const { value; _ }, Zext (e, _) ->
    let we = Expr.width e in
    if ucompare value (mask we) >= 0 then Some false_
    else Some (ult (const ~width:we value) e)
  | Ule, Zext (e, _), Const { value; _ } ->
    let we = Expr.width e in
    if ucompare value (mask we) >= 0 then Some true_
    else Some (ule e (const ~width:we value))
  | Ule, Const { value; _ }, Zext (e, _) ->
    let we = Expr.width e in
    if ucompare value (mask we) > 0 then Some false_
    else Some (ule (const ~width:we value) e)
  | Eq, Zext (x, _), Zext (y, _) when Expr.width x = Expr.width y -> Some (eq x y)
  | Ult, Zext (x, _), Zext (y, _) when Expr.width x = Expr.width y -> Some (ult x y)
  | Ule, Zext (x, _), Zext (y, _) when Expr.width x = Expr.width y -> Some (ule x y)
  (* x + x = 2x is not smaller; skip.  (x - c) etc. left to folding. *)
  | _ -> None

let rewrite_ite c a b =
  match (c.node, a, b) with
  | Unop (Not, c'), a, b -> Some (ite c' b a)
  (* ite c 1 0 = c ; ite c 0 1 = !c  (width-1 only) *)
  | _, o, z when Expr.width a = 1 && is_one o && is_zero z -> Some c
  | _, z, o when Expr.width a = 1 && is_zero z && is_one o -> Some (unop Not c)
  | _ -> None

(* Lower signed division and remainder to unsigned equivalents so that the
   CNF translation only needs unsigned circuits.  The lowering matches
   {!Expr.eval_binop} exactly, including division by zero:
   [sdiv x 0 = all-ones] and [srem x 0 = x]. *)
let lower_sdiv a b =
  let w = Expr.width a in
  let zero = const ~width:w 0L in
  let abs e = ite (slt e zero) (unop Neg e) e in
  let q = binop Udiv (abs a) (abs b) in
  let opposite_signs = binop Xor (slt a zero) (slt b zero) in
  ite (eq b zero) (const ~width:w (mask w)) (ite opposite_signs (unop Neg q) q)

let lower_srem a b =
  let w = Expr.width a in
  let zero = const ~width:w 0L in
  let abs e = ite (slt e zero) (unop Neg e) e in
  let r = binop Urem (abs a) (abs b) in
  ite (eq b zero) a (ite (slt a zero) (unop Neg r) r)

(* Domain-local memo: hashcons id -> simplified form.  Safe to share
   across solvers within a domain because simplification is deterministic
   and context-free; domain-local (rather than shared + locked) because
   the memo is queried on every constraint of every query — the hottest
   lookup in the solver — and a per-domain table keeps that lookup
   lock-free.  Worker domains redundantly re-simplify terms another
   domain already canonicalized; they compute identical results (the
   rewriter is deterministic), so the duplication costs time only, never
   correctness.  The table is weak-free (it pins results), so it is
   capped and dropped wholesale when it outgrows the cap. *)
let memo_cap = 1 lsl 20

let memo_key : (int, Expr.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let memo () = Domain.DLS.get memo_key
let memo_enabled = Atomic.make true
let memo_size () = Hashtbl.length (memo ())
let clear_memo () = Hashtbl.reset (memo ())

let set_memo enabled =
  Atomic.set memo_enabled enabled;
  if not enabled then clear_memo ()

let rec simplify e =
  if not (Atomic.get memo_enabled) then simplify_node e
  else
    let memo = memo () in
    match Hashtbl.find_opt memo (Expr.id e) with
    | Some r ->
      let s = stats_live () in
      s.memo_hits <- s.memo_hits + 1;
      r
    | None ->
      let r = simplify_node e in
      if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
      Hashtbl.replace memo (Expr.id e) r;
      (* simplify is idempotent: record the result as its own fixpoint so
         re-simplifying an already-canonical term is a single lookup *)
      if not (Expr.equal r e) then Hashtbl.replace memo (Expr.id r) r;
      r

and simplify_node e =
  let s = stats_live () in
  s.visits <- s.visits + 1;
  match e.node with
  | Const _ | Sym _ -> e
  | Unop (op, e1) -> unop op (simplify e1)
  | Binop (op, a, b) ->
    let a = simplify a and b = simplify b in
    let a, b = if commutative op && operand_order a b > 0 then (b, a) else (a, b) in
    let folded = binop op a b in
    (match folded.node with
    | Binop (op', a', b') -> (
      match rewrite_binop op' a' b' with
      | Some e' ->
        s.rewrites <- s.rewrites + 1;
        simplify e'
      | None -> folded)
    | _ -> folded)
  | Ite (c, a, b) ->
    let c = simplify c and a = simplify a and b = simplify b in
    let folded = ite c a b in
    (match folded.node with
    | Ite (c', a', b') -> (
      match rewrite_ite c' a' b' with
      | Some e' ->
        s.rewrites <- s.rewrites + 1;
        simplify e'
      | None -> folded)
    | _ -> folded)
  | Extract { e = e1; off; len } -> extract (simplify e1) ~off ~len
  | Zext (e1, w) -> zext (simplify e1) w
  | Sext (e1, w) -> sext (simplify e1) w

(* Recursively replace Sdiv/Srem with their unsigned lowering; used by the
   CNF translation. *)
let rec lower e =
  match e.node with
  | Const _ | Sym _ -> e
  | Unop (op, e1) -> unop op (lower e1)
  | Binop (Sdiv, a, b) -> lower_sdiv (lower a) (lower b)
  | Binop (Srem, a, b) -> lower_srem (lower a) (lower b)
  | Binop (op, a, b) -> binop op (lower a) (lower b)
  | Ite (c, a, b) -> ite (lower c) (lower a) (lower b)
  | Extract { e = e1; off; len } -> extract (lower e1) ~off ~len
  | Zext (e1, w) -> zext (lower e1) w
  | Sext (e1, w) -> sext (lower e1) w
