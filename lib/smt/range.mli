(** Unsigned interval (range) analysis over bit-vector expressions: the
    cheap fast path in front of the SAT solver.  All transfer functions
    are conservative — the concrete value always lies inside the computed
    interval. *)

type t = { lo : int64; hi : int64; width : int }

val top : int -> t
val of_const : width:int -> int64 -> t
val make : width:int -> int64 -> int64 -> t
val is_singleton : t -> bool
val contains : t -> int64 -> bool
val join : t -> t -> t

(** Intersection; [None] when empty. *)
val meet : t -> t -> t option

(** Abstract evaluation under symbol intervals ([None] = unconstrained). *)
val eval : (int -> t option) -> Expr.t -> t

module Imap : Map.S with type key = int

(** Symbol boxes learned from a conjunction of constraints.  Learning is a
    per-symbol interval meet — commutative and associative — so boxes can
    be maintained incrementally, one constraint at a time, with the same
    result as recomputing from the whole path condition. *)
type boxes = t Imap.t

val empty_boxes : boxes

(** Fold one (simplified) constraint into the boxes; [None] when the
    learned facts alone are contradictory (the conjunction is UNSAT). *)
val learn_boxes : boxes -> Expr.t -> boxes option

(** Symbol intervals implied by a (simplified) path condition; [None] when
    the learned facts alone are contradictory. *)
val boxes_of_pc : Expr.t list -> boxes option

val lookup_of_boxes : boxes -> int -> t option

(** Fast verdict for "is [pc /\ cond] satisfiable?" given that [pc] is
    satisfiable; [None] means undecided (fall through to SAT). *)
val quick_feasible : pc:Expr.t list -> Expr.t -> bool option

(** Same, but over pre-computed boxes for the path condition — lets one
    set of boxes answer both polarities of a fork and be carried
    incrementally in the execution state. *)
val quick_feasible_with : boxes -> Expr.t -> bool option
