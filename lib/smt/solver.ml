(* Query orchestration on top of the bit blaster and SAT core.

   This mirrors the solver stack KLEE/Cloud9 sit on:
   - a canonicalizing simplifier pass,
   - constraint-independence slicing (only constraints transitively
     sharing symbols with the query are sent to the solver),
   - a satisfiability cache keyed on the canonical constraint set,
   - a counterexample (model) cache: recent models are probed by concrete
     evaluation before invoking the SAT solver.

   Expressions are hash-consed ({!Expr}), so the hot path is id
   arithmetic: cache keys are id lists, canonical ordering is id order,
   and symbol-support sets are memoized per term.

   Each feature can be disabled at construction for ablation benchmarks. *)

type result = Sat of Model.t | Unsat

type stats = {
  mutable queries : int;       (* total satisfiability questions asked *)
  mutable trivial : int;       (* answered by simplification alone *)
  mutable range_hits : int;    (* answered by interval analysis *)
  mutable cache_hits : int;    (* answered by the satisfiability cache *)
  mutable cex_hits : int;      (* answered by probing a cached model *)
  mutable sat_calls : int;     (* full bit-blast + SAT runs *)
}

(* Counters of the incremental (persistent-instance) SAT path; all zero
   when [use_incremental] is off.  [group_hits]/[group_misses] count
   per-constraint clause-group lookups across all assumption solves: a
   hit means the constraint was already blasted into the live instance
   and contributed zero new clauses to this query. *)
type inc_stats = {
  mutable assumption_solves : int; (* sat_calls answered on the persistent instance *)
  mutable group_hits : int;
  mutable group_misses : int;
  mutable retirements : int;       (* persistent instances discarded *)
}

(* Observability handles, resolved once at [create]: the per-tier query
   counters are plain mutable cells, so the instrumented hot path pays a
   single field write plus the trace append.  Cache/hashcons size gauges
   are refreshed every [gauge_period] answered queries, because counting
   the weak hashcons table is O(table). *)
type obs = {
  sink : Obs.Sink.t;
  tier_counters : (Obs.Event.solver_tier * Obs.Metrics.counter) list;
  c_inc_solves : Obs.Metrics.counter;
  c_inc_group_hits : Obs.Metrics.counter;
  c_inc_group_misses : Obs.Metrics.counter;
  g_sat_cache : Obs.Metrics.gauge;
  g_det_cache : Obs.Metrics.gauge;
  g_cex_models : Obs.Metrics.gauge;
  g_simplify_memo : Obs.Metrics.gauge;
  g_hc_entries : Obs.Metrics.gauge;
  g_hc_hits : Obs.Metrics.gauge;
  g_hc_misses : Obs.Metrics.gauge;
  g_inc_learned : Obs.Metrics.gauge;
  g_inc_groups : Obs.Metrics.gauge;
  mutable noted : int;
}

let gauge_period = 256

type t = {
  stats : stats;
  inc_stats : inc_stats;
  obs : obs option;
  prof : Obs.Profile.t option;
  mutable q_t0 : int;  (* wall-clock start of the query in flight (profiling only) *)
  use_sat_cache : bool;
  use_cex_cache : bool;
  use_independence : bool;
  use_range : bool;
  use_incremental : bool;
  mutable inc : Cnf.ctx option;  (* the persistent incremental instance *)
  sat_cache : (int list, result) Hashtbl.t; (* key: ids of id-sorted constraints *)
  det_cache : (int list, result) Hashtbl.t;
  mutable cex_models : Model.t list;
  cex_limit : int;
}

let make_obs sink =
  let m = Obs.Sink.metrics sink in
  let tier_counters =
    List.map
      (fun tier ->
        (tier, Obs.Metrics.counter m ~labels:[ ("tier", Obs.Event.tier_to_string tier) ] "solver_queries"))
      Obs.Event.[ Trivial; Range; Sat_cache; Cex_cache; Det_cache; Sat_call ]
  in
  {
    sink;
    tier_counters;
    c_inc_solves = Obs.Metrics.counter m "solver_inc_assumption_solves";
    c_inc_group_hits = Obs.Metrics.counter m "solver_inc_group_hits";
    c_inc_group_misses = Obs.Metrics.counter m "solver_inc_group_misses";
    g_sat_cache = Obs.Metrics.gauge m "solver_sat_cache_entries";
    g_det_cache = Obs.Metrics.gauge m "solver_det_cache_entries";
    g_cex_models = Obs.Metrics.gauge m "solver_cex_models";
    g_simplify_memo = Obs.Metrics.gauge m "simplify_memo_entries";
    g_hc_entries = Obs.Metrics.gauge m "hashcons_entries";
    g_hc_hits = Obs.Metrics.gauge m "hashcons_hits";
    g_hc_misses = Obs.Metrics.gauge m "hashcons_misses";
    g_inc_learned = Obs.Metrics.gauge m "solver_inc_learned_clauses";
    g_inc_groups = Obs.Metrics.gauge m "solver_inc_clause_groups";
    noted = 0;
  }

(* Export-time samples for the hashcons shard-lock probe: its state is
   global Atomics in {!Expr}, owned by no registry, so it reaches the
   metrics dump as a sink provider (replace-by-name makes registration
   from every per-domain solver idempotent). *)
let hashcons_lock_samples () =
  let ls = Expr.lock_stats () in
  let acq outcome v =
    {
      Obs.Metrics.s_name = "hashcons_lock_acquisitions";
      s_labels = [ ("outcome", outcome) ];
      s_value = Obs.Metrics.Vcounter v;
    }
  in
  let wait =
    {
      Obs.Metrics.s_name = "latency_ns";
      s_labels = [ ("kind", "shard_lock_wait") ];
      s_value =
        Obs.Metrics.Vhistogram
          {
            vbounds = Array.copy Obs.Metrics.latency_ns_buckets;
            vcounts = Array.copy ls.Expr.lk_wait_counts;
            vsum = float_of_int ls.Expr.lk_wait_sum_ns;
            vcount = Array.fold_left ( + ) 0 ls.Expr.lk_wait_counts;
          };
    }
  in
  let tops =
    List.map
      (fun (shard, c) ->
        {
          Obs.Metrics.s_name = "hashcons_shard_contended";
          s_labels = [ ("shard", string_of_int shard) ];
          s_value = Obs.Metrics.Vcounter c;
        })
      ls.Expr.lk_top_shards
  in
  acq "uncontended" ls.Expr.lk_uncontended :: acq "contended" ls.Expr.lk_contended :: wait :: tops

let create ?(use_sat_cache = true) ?(use_cex_cache = true) ?(use_independence = true)
    ?(use_range = true) ?(use_incremental = true) ?obs ?prof () =
  Option.iter
    (fun sink -> Obs.Sink.set_provider sink ~name:"hashcons_locks" hashcons_lock_samples)
    obs;
  {
    stats =
      { queries = 0; trivial = 0; range_hits = 0; cache_hits = 0; cex_hits = 0; sat_calls = 0 };
    inc_stats = { assumption_solves = 0; group_hits = 0; group_misses = 0; retirements = 0 };
    obs = Option.map make_obs obs;
    prof;
    q_t0 = 0;
    use_sat_cache;
    use_cex_cache;
    use_independence;
    use_range;
    use_incremental;
    inc = None;
    sat_cache = Hashtbl.create 1024;
    det_cache = Hashtbl.create 256;
    cex_models = [];
    cex_limit = 32;
  }

let stats t = t.stats
let inc_stats t = t.inc_stats

let copy_inc_stats t =
  let s = t.inc_stats in
  {
    assumption_solves = s.assumption_solves;
    group_hits = s.group_hits;
    group_misses = s.group_misses;
    retirements = s.retirements;
  }

let inc_sat_stats t = Option.map Cnf.sat_stats t.inc

let copy_stats t =
  let s = t.stats in
  {
    queries = s.queries;
    trivial = s.trivial;
    range_hits = s.range_hits;
    cache_hits = s.cache_hits;
    cex_hits = s.cex_hits;
    sat_calls = s.sat_calls;
  }

let zero_stats () =
  { queries = 0; trivial = 0; range_hits = 0; cache_hits = 0; cex_hits = 0; sat_calls = 0 }

(* Accumulate [src] into [acc] (for per-worker aggregation). *)
let accum_stats acc src =
  acc.queries <- acc.queries + src.queries;
  acc.trivial <- acc.trivial + src.trivial;
  acc.range_hits <- acc.range_hits + src.range_hits;
  acc.cache_hits <- acc.cache_hits + src.cache_hits;
  acc.cex_hits <- acc.cex_hits + src.cex_hits;
  acc.sat_calls <- acc.sat_calls + src.sat_calls

let sample_gauges t =
  match t.obs with
  | None -> ()
  | Some o ->
    Obs.Metrics.set o.g_sat_cache (float_of_int (Hashtbl.length t.sat_cache));
    Obs.Metrics.set o.g_det_cache (float_of_int (Hashtbl.length t.det_cache));
    Obs.Metrics.set o.g_cex_models (float_of_int (List.length t.cex_models));
    Obs.Metrics.set o.g_simplify_memo (float_of_int (Simplify.memo_size ()));
    let hc = Expr.hashcons_stats () in
    Obs.Metrics.set o.g_hc_entries (float_of_int hc.Expr.table_size);
    Obs.Metrics.set o.g_hc_hits (float_of_int hc.Expr.hits);
    Obs.Metrics.set o.g_hc_misses (float_of_int hc.Expr.misses);
    (match t.inc with
    | Some ctx ->
      let st = Cnf.sat_stats ctx in
      Obs.Metrics.set o.g_inc_learned (float_of_int (st.Sat.learned - st.Sat.deleted));
      Obs.Metrics.set o.g_inc_groups (float_of_int (Cnf.num_groups ctx))
    | None ->
      Obs.Metrics.set o.g_inc_learned 0.0;
      Obs.Metrics.set o.g_inc_groups 0.0)

(* One query answered: bump the tier counter, close the query's
   wall-clock span (chaining [q_t0] to the stop timestamp, so fused fork
   queries attribute shared simplify/slice work to the first polarity
   and the second polarity's span starts where the first ended), and
   trace the outcome. *)
let note t kind tier sat =
  (match t.prof with
  | None -> ()
  | Some _ -> t.q_t0 <- Obs.Profile.record t.prof (Obs.Profile.Solver_query tier) ~start_ns:t.q_t0);
  match t.obs with
  | None -> ()
  | Some o ->
    (match List.assq_opt tier o.tier_counters with
    | Some c -> Obs.Metrics.incr c
    | None -> ());
    Obs.Sink.event o.sink (Obs.Event.Solver_query { kind; tier; sat });
    o.noted <- o.noted + 1;
    if o.noted mod gauge_period = 0 then sample_gauges t

(* Drop the satisfiability cache (used when measuring cache reconstruction
   after a job transfer, see paper section 6 "Constraint Caches").  Also
   retires the persistent incremental instance: a migrated state must
   never solve against the source worker's activation groups — the next
   SAT call rebuilds from an empty instance, exactly like the caches. *)
let clear_caches t =
  Hashtbl.reset t.sat_cache;
  Hashtbl.reset t.det_cache;
  t.cex_models <- [];
  match t.inc with
  | Some _ ->
    t.inc_stats.retirements <- t.inc_stats.retirements + 1;
    t.inc <- None
  | None -> ()

(* Normalize a constraint set: simplify, drop trivially-true constraints,
   and sort by hashcons id for a canonical in-process ordering.  Returns
   [None] when some constraint is trivially false. *)
let normalize constraints =
  let rec go acc = function
    | [] -> Some (List.sort_uniq Expr.compare acc)
    | c :: rest ->
      let c = Simplify.simplify c in
      if Expr.is_true c then go acc rest
      else if Expr.is_false c then None
      else go (c :: acc) rest
  in
  go [] constraints

(* The cache key of an id-sorted constraint list. *)
let key_of = List.map Expr.id

(* Transitive closure of constraints connected to [seed] through shared
   symbols.  Symbol-support sets are memoized per term ({!Expr.sym_set}),
   so this walks no expression structure. *)
let slice ~seed constraints =
  let tagged = List.map (fun c -> (c, Expr.sym_set c)) constraints in
  let closure = ref seed in
  let selected = ref [] in
  let remaining = ref tagged in
  let changed = ref true in
  while !changed do
    changed := false;
    let rem, sel =
      List.partition (fun (_, syms) -> Expr.Iset.disjoint syms !closure) !remaining
    in
    if sel <> [] then begin
      changed := true;
      List.iter
        (fun (c, syms) ->
          selected := c :: !selected;
          closure := Expr.Iset.union syms !closure)
        sel;
      remaining := rem
    end
  done;
  !selected

(* One-shot solve on a fresh context (the non-incremental path, and the
   deterministic-model path, which must not depend on query history). *)
let solve_fresh t constraints =
  ignore t;
  let ctx = Cnf.create () in
  List.iter (Cnf.assert_expr ctx) constraints;
  match Cnf.solve ctx with
  | Sat.Unsatisfiable -> Unsat
  | Sat.Satisfiable ->
    let model =
      List.fold_left
        (fun m id ->
          match Cnf.sym_value ctx id with Some v -> Model.add id v m | None -> m)
        Model.empty (Cnf.sym_ids ctx)
    in
    (* The SAT model must satisfy the constraints; this is the solver's
       own soundness check (cheap: concrete evaluation). *)
    assert (Model.satisfies model constraints);
    Sat model

(* Retire the persistent instance when its clause arena outgrows this
   bound: a fresh instance re-blasts only the live path's constraints,
   shedding circuits (and tombstoned learnts) of long-dead branches. *)
let inc_clause_cap = 262_144

let inc_ctx t =
  match t.inc with
  | Some ctx when Cnf.num_clauses ctx < inc_clause_cap -> ctx
  | prev ->
    if prev <> None then t.inc_stats.retirements <- t.inc_stats.retirements + 1;
    let ctx = Cnf.create () in
    t.inc <- Some ctx;
    ctx

(* Assumption-based solve on the per-solver persistent instance: each
   constraint's clause group is blasted at most once per instance
   ([Cnf.activate], keyed on hashcons id), the query is the conjunction
   of the groups' activation literals, and the CDCL core keeps learned
   clauses, activities and phases between calls — so the second polarity
   of a fork, and later queries sharing a pc prefix, start from
   everything the earlier solves established.  The model reads back only
   the symbols of the queried constraints (the instance knows many
   more). *)
let solve_incremental t constraints =
  let ctx = inc_ctx t in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun c ->
      let _, fresh = Cnf.activate ctx c in
      if fresh then incr misses else incr hits)
    constraints;
  t.inc_stats.assumption_solves <- t.inc_stats.assumption_solves + 1;
  t.inc_stats.group_hits <- t.inc_stats.group_hits + !hits;
  t.inc_stats.group_misses <- t.inc_stats.group_misses + !misses;
  (match t.obs with
  | Some o ->
    Obs.Metrics.incr o.c_inc_solves;
    Obs.Metrics.add o.c_inc_group_hits !hits;
    Obs.Metrics.add o.c_inc_group_misses !misses
  | None -> ());
  match Cnf.solve_activated ctx constraints with
  | Sat.Unsatisfiable ->
    if Cnf.is_ok ctx then Unsat
    else begin
      (* A root-level contradiction is impossible when every assertion is
         activation-guarded; treat it as instance corruption — retire and
         answer from a fresh context rather than risk a wrong Unsat. *)
      t.inc_stats.retirements <- t.inc_stats.retirements + 1;
      t.inc <- None;
      solve_fresh t constraints
    end
  | Sat.Satisfiable ->
    let syms =
      List.fold_left
        (fun acc c -> Expr.Iset.union acc (Expr.sym_set c))
        Expr.Iset.empty constraints
    in
    let model =
      Expr.Iset.fold
        (fun id m ->
          match Cnf.sym_value ctx id with Some v -> Model.add id v m | None -> m)
        syms Model.empty
    in
    (* Same soundness check as the fresh path. *)
    assert (Model.satisfies model constraints);
    Sat model

let solve_raw t constraints =
  t.stats.sat_calls <- t.stats.sat_calls + 1;
  if t.use_incremental then solve_incremental t constraints
  else solve_fresh t constraints

let remember_model t m =
  if t.use_cex_cache then begin
    let keep = List.filteri (fun i _ -> i < t.cex_limit - 1) t.cex_models in
    t.cex_models <- m :: keep
  end

(* Core satisfiability check with caching; constraints are already
   normalized (id-sorted) and non-empty.  [kind] labels the trace event
   with the querying entry point. *)
let check_normalized t ~kind constraints =
  let is_sat = function Sat _ -> true | Unsat -> false in
  let k = if t.use_sat_cache then key_of constraints else [] in
  let cached = if t.use_sat_cache then Hashtbl.find_opt t.sat_cache k else None in
  match cached with
  | Some r ->
    t.stats.cache_hits <- t.stats.cache_hits + 1;
    note t kind Obs.Event.Sat_cache (is_sat r);
    r
  | None ->
    let probe =
      if t.use_cex_cache then
        List.find_opt (fun m -> Model.satisfies m constraints) t.cex_models
      else None
    in
    let r =
      match probe with
      | Some m ->
        t.stats.cex_hits <- t.stats.cex_hits + 1;
        note t kind Obs.Event.Cex_cache true;
        Sat m
      | None ->
        let r = solve_raw t constraints in
        note t kind Obs.Event.Sat_call (is_sat r);
        (match r with Sat m -> remember_model t m | Unsat -> ());
        r
    in
    if t.use_sat_cache then Hashtbl.replace t.sat_cache k r;
    r

(* Full check: is the conjunction of [constraints] satisfiable?  The model
   returned covers all symbols mentioned in the constraints (others are
   unconstrained and default to zero on evaluation). *)
let check t constraints =
  t.q_t0 <- Obs.Profile.start t.prof;
  t.stats.queries <- t.stats.queries + 1;
  match normalize constraints with
  | None ->
    t.stats.trivial <- t.stats.trivial + 1;
    note t "check" Obs.Event.Trivial false;
    Unsat
  | Some [] ->
    t.stats.trivial <- t.stats.trivial + 1;
    note t "check" Obs.Event.Trivial true;
    Sat Model.empty
  | Some cs -> check_normalized t ~kind:"check" cs

(* Answer one fork polarity.  [cond] is already simplified, [sliced] is
   the subset of the (already-normalized) path condition relevant to it,
   and [boxes] are the pc's interval facts (shared across polarities).
   Bumps [queries] and exactly one tier, preserving the reconciliation
   invariant that tiers sum to queries. *)
let answer_polarity t ~kind ~boxes ~sliced cond =
  t.stats.queries <- t.stats.queries + 1;
  if Expr.is_true cond then begin
    t.stats.trivial <- t.stats.trivial + 1;
    note t kind Obs.Event.Trivial true;
    true
  end
  else if Expr.is_false cond then begin
    t.stats.trivial <- t.stats.trivial + 1;
    note t kind Obs.Event.Trivial false;
    false
  end
  else
    let quick =
      match boxes with
      | Some bx when t.use_range -> Range.quick_feasible_with bx cond
      | _ -> None
    in
    match quick with
    | Some verdict ->
      t.stats.range_hits <- t.stats.range_hits + 1;
      note t kind Obs.Event.Range verdict;
      verdict
    | None -> (
      let cs = List.sort_uniq Expr.compare (cond :: sliced) in
      match check_normalized t ~kind cs with Sat _ -> true | Unsat -> false)

(* Interval boxes for an already-normalized pc: the caller's
   incrementally-maintained boxes when available, else recomputed. *)
let effective_boxes t ~npc boxes =
  if not t.use_range then None
  else match boxes with Some _ -> boxes | None -> Range.boxes_of_pc npc

(* Branch-feasibility query over a pre-normalized path condition [npc]
   (each member simplified, no trivially-true members — e.g.
   {!State.t}'s incrementally-maintained [npc]).  Skips the O(|pc|)
   re-simplification that {!branch_feasible} pays. *)
let branch_feasible_norm t ~npc ?boxes cond =
  t.q_t0 <- Obs.Profile.start t.prof;
  let cond = Simplify.simplify cond in
  let boxes = effective_boxes t ~npc boxes in
  let sliced =
    if t.use_independence && not (Expr.is_const cond) then
      slice ~seed:(Expr.sym_set cond) npc
    else npc
  in
  answer_polarity t ~kind:"branch" ~boxes ~sliced cond

(* Fused fork query: answers feasibility of both [cond] and [not cond]
   against the same normalized pc, sharing the interval boxes and the
   independence slice.  Seeding the slice with the union of both
   polarities' symbols is sound: a larger seed only enlarges the closure,
   and the excluded remainder stays disjoint from both queries (and is
   satisfiable because the pc is).  Each polarity counts as one query. *)
let fork_feasible t ~npc ?boxes cond =
  t.q_t0 <- Obs.Profile.start t.prof;
  let cond_t = Simplify.simplify cond in
  let cond_f = Simplify.simplify (Expr.not_ cond_t) in
  let boxes = effective_boxes t ~npc boxes in
  let sliced =
    if t.use_independence && not (Expr.is_const cond_t) then
      slice ~seed:(Expr.Iset.union (Expr.sym_set cond_t) (Expr.sym_set cond_f)) npc
    else npc
  in
  let ok_t = answer_polarity t ~kind:"branch" ~boxes ~sliced cond_t in
  let ok_f = answer_polarity t ~kind:"branch" ~boxes ~sliced cond_f in
  (ok_t, ok_f)

(* Branch-feasibility query: is [pc /\ cond] satisfiable?  Uses
   independence slicing seeded by the symbols of [cond]; this is sound for
   satisfiability because [pc] alone is satisfiable by invariant (every
   state's path condition is feasible).  Normalizes the whole [pc] on
   every call; kept as the entry point for raw (un-normalized) pcs and as
   the baseline for the incremental-pc benchmark. *)
let branch_feasible t ~pc cond =
  t.q_t0 <- Obs.Profile.start t.prof;
  t.stats.queries <- t.stats.queries + 1;
  let cond = Simplify.simplify cond in
  if Expr.is_true cond then begin
    t.stats.trivial <- t.stats.trivial + 1;
    note t "branch" Obs.Event.Trivial true;
    true
  end
  else if Expr.is_false cond then begin
    t.stats.trivial <- t.stats.trivial + 1;
    note t "branch" Obs.Event.Trivial false;
    false
  end
  else
    match normalize (cond :: pc) with
    | None ->
      t.stats.trivial <- t.stats.trivial + 1;
      note t "branch" Obs.Event.Trivial false;
      false
    | Some [] ->
      t.stats.trivial <- t.stats.trivial + 1;
      note t "branch" Obs.Event.Trivial true;
      true
    | Some cs -> (
      (* interval fast path: many branch conditions are decided by the
         boxes the path condition already implies, without SAT.  Note the
         boxes must come from pc alone, not from cs (which includes cond:
         learning cond's own facts would make it vacuously "feasible"). *)
      let quick = if t.use_range then Range.quick_feasible ~pc cond else None in
      match quick with
      | Some verdict ->
        t.stats.range_hits <- t.stats.range_hits + 1;
        note t "branch" Obs.Event.Range verdict;
        verdict
      | None ->
        let cs =
          if t.use_independence then
            match slice ~seed:(Expr.sym_set cond) cs with
            | [] -> [ cond ] (* cond itself is always in its own slice *)
            | sliced -> List.sort_uniq Expr.compare sliced
          else cs
        in
        (match check_normalized t ~kind:"branch" cs with Sat _ -> true | Unsat -> false))

(* [must_be_true t ~pc cond] holds when [pc -> cond] is valid, i.e.
   [pc /\ not cond] is unsatisfiable. *)
let must_be_true t ~pc cond = not (branch_feasible t ~pc (Expr.not_ cond))

let get_model t constraints = check t constraints

(* Deterministic model construction: always solves from scratch on the
   canonical constraint set, never reusing history-dependent caches (the
   counterexample cache returns whichever cached model happens to satisfy
   the query, which depends on query order).  The constraints are handed
   to the SAT core in *structural* order: hashcons ids depend on interning
   history (and weak-table evictions), so id order is not reproducible
   across workers, but the structural order depends only on the constraint
   set itself.  Two workers replaying the same path therefore obtain the
   same model — the solver-side requirement for replay determinism (paper
   section 6, "Broken Replays").  Results are memoized in a dedicated
   cache whose entries are themselves deterministic, keyed by id for O(1)
   hashing (a key miss just means a deterministic recompute). *)
let check_deterministic t constraints =
  t.q_t0 <- Obs.Profile.start t.prof;
  t.stats.queries <- t.stats.queries + 1;
  let is_sat = function Sat _ -> true | Unsat -> false in
  match normalize constraints with
  | None ->
    t.stats.trivial <- t.stats.trivial + 1;
    note t "det" Obs.Event.Trivial false;
    Unsat
  | Some [] ->
    t.stats.trivial <- t.stats.trivial + 1;
    note t "det" Obs.Event.Trivial true;
    Sat Model.empty
  | Some cs -> (
    let k = key_of cs in
    match Hashtbl.find_opt t.det_cache k with
    | Some r ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      note t "det" Obs.Event.Det_cache (is_sat r);
      r
    | None ->
      (* Always a fresh, from-scratch solve: the persistent incremental
         instance's phases/activities depend on query history, and the
         whole point here is a history-independent model. *)
      t.stats.sat_calls <- t.stats.sat_calls + 1;
      let r = solve_fresh t (List.sort Expr.compare_structural cs) in
      note t "det" Obs.Event.Sat_call (is_sat r);
      Hashtbl.replace t.det_cache k r;
      r)
