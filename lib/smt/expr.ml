(* Bit-vector expression terms, hash-consed.

   All values are fixed-width bit vectors with 1 <= width <= 64, stored in
   an [int64] with bits above the width cleared.  Boolean expressions are
   width-1 bit vectors (0 = false, 1 = true).  Smart constructors perform
   constant folding and cheap local rewrites; deeper canonicalization lives
   in {!Simplify}.

   Every term is interned in a global weak hashcons table, so structurally
   equal terms are physically equal and each carries a unique [id].  That
   makes [equal] O(1), [compare] an int comparison, [width] a field read,
   and lets caches downstream (simplify memo, solver caches, CNF bit maps)
   key on ids instead of walking structures. *)

module Iset = Set.Make (Int)

type unop =
  | Not  (* bitwise complement *)
  | Neg  (* two's complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr
  | Ult
  | Ule
  | Slt
  | Sle
  | Eq
  | Concat

(* [id] is deliberately the first field: the polymorphic comparison of two
   distinct interned terms decides on the id alone, so even leftover
   structural [compare]/[=] uses are O(1). *)
type t = {
  id : int;
  node : node;
  width : int;
  syms_memo : Iset.t option Atomic.t;
}

and node =
  | Const of { width : int; value : int64 }
  | Sym of { id : int; name : string; width : int }
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of { e : t; off : int; len : int }
  | Zext of t * int
  | Sext of t * int

exception Width_error of string

let mask width = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 0x1L

let truncate width v = Int64.logand v (mask width)

(* Sign-extend the low [width] bits of [v] to a full int64. *)
let to_signed width v =
  if width >= 64 then v
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift

let check_width w =
  if w < 1 || w > 64 then raise (Width_error (Printf.sprintf "width %d out of [1,64]" w))

(* Width is computed once per node at interning time, reading only the
   children's cached widths. *)
let node_width = function
  | Const { width; _ } -> width
  | Sym { width; _ } -> width
  | Unop (_, e) -> e.width
  | Binop ((Ult | Ule | Slt | Sle | Eq), _, _) -> 1
  | Binop (Concat, a, b) -> a.width + b.width
  | Binop (_, a, _) -> a.width
  | Ite (_, a, _) -> a.width
  | Extract { len; _ } -> len
  | Zext (_, w) -> w
  | Sext (_, w) -> w

(* --- The global hashcons table (sharded for domain parallelism) ----- *)

(* Shallow equality/hash: children are compared by physical identity and
   hashed by id, which is sound because they are already interned. *)
module Hashed_node = struct
  type nonrec t = t

  let equal a b =
    match (a.node, b.node) with
    | Const { width = w1; value = v1 }, Const { width = w2; value = v2 } ->
      w1 = w2 && Int64.equal v1 v2
    | Sym { id = i1; name = n1; width = w1 }, Sym { id = i2; name = n2; width = w2 } ->
      i1 = i2 && w1 = w2 && String.equal n1 n2
    | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && e1 == e2
    | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
    | Extract { e = e1; off = o1; len = l1 }, Extract { e = e2; off = o2; len = l2 } ->
      e1 == e2 && o1 = o2 && l1 = l2
    | Zext (e1, w1), Zext (e2, w2) -> e1 == e2 && w1 = w2
    | Sext (e1, w1), Sext (e2, w2) -> e1 == e2 && w1 = w2
    | _ -> false

  let comb h v = ((h * 1000003) + v) land max_int

  let hash t =
    match t.node with
    | Const { width; value } ->
      comb (comb 1 width) (Int64.to_int (Int64.logxor value (Int64.shift_right_logical value 32)))
    | Sym { id; name; width } -> comb (comb (comb 2 id) width) (Hashtbl.hash name)
    | Unop (op, e) -> comb (comb 3 (Hashtbl.hash op)) e.id
    | Binop (op, a, b) -> comb (comb (comb 4 (Hashtbl.hash op)) a.id) b.id
    | Ite (c, a, b) -> comb (comb (comb 5 c.id) a.id) b.id
    | Extract { e; off; len } -> comb (comb (comb 6 e.id) off) len
    | Zext (e, w) -> comb (comb 7 e.id) w
    | Sext (e, w) -> comb (comb 8 e.id) w
end

module Wtbl = Weak.Make (Hashed_node)

(* The table is sharded by node hash, one weak table + mutex per shard, so
   worker domains intern concurrently with contention only on hash
   collisions modulo the shard count.  Ids come from one atomic counter
   (globally unique, never reused); note that id *order* therefore depends
   on cross-domain interning interleavings — anything needing a
   reproducible order must use [compare_structural], exactly as for
   weak-table evictions within one domain. *)
let shard_bits = 8
let nshards = 1 lsl shard_bits

type shard = {
  tbl : Wtbl.t;
  lock : Mutex.t;
  mutable contended : int;  (* try_lock misses; written under [lock] *)
}

let shards =
  Array.init nshards (fun _ -> { tbl = Wtbl.create 256; lock = Mutex.create (); contended = 0 })

let next_id = Atomic.make 0
let hc_hits = Atomic.make 0
let hc_misses = Atomic.make 0

(* Contention probe on the shard locks: interning try-locks first and
   counts which way it went.  Contended acquisitions are additionally
   timed (gated on [lock_profiling], enabled by the multicore facade)
   into a hand-rolled Atomic bucket array sharing the obs latency_ns
   bounds — uncontended ones are never timed, since two clock reads
   would cost more than the lock itself and swamp the <5% profiling
   overhead budget. *)
let lk_uncontended = Atomic.make 0
let lk_contended = Atomic.make 0
let lock_profiling = Atomic.make false
let wait_counts = Array.init (Array.length Obs.Metrics.latency_ns_buckets + 1) (fun _ -> Atomic.make 0)
let wait_sum_ns = Atomic.make 0

let wait_bucket ns =
  let bounds = Obs.Metrics.latency_ns_buckets in
  let n = Array.length bounds in
  let rec slot i = if i >= n || float_of_int ns <= bounds.(i) then i else slot (i + 1) in
  slot 0

let lock_shard s =
  if Mutex.try_lock s.lock then Atomic.incr lk_uncontended
  else begin
    Atomic.incr lk_contended;
    if Atomic.get lock_profiling then begin
      let t0 = Obs.Clock.now_ns () in
      Mutex.lock s.lock;
      let dt = max 0 (Obs.Clock.now_ns () - t0) in
      Atomic.incr wait_counts.(wait_bucket dt);
      ignore (Atomic.fetch_and_add wait_sum_ns dt)
    end
    else Mutex.lock s.lock;
    s.contended <- s.contended + 1
  end

type lock_stats = {
  lk_uncontended : int;
  lk_contended : int;
  lk_wait_counts : int array;  (* length = latency_ns_buckets + 1 (+inf) *)
  lk_wait_sum_ns : int;
  lk_top_shards : (int * int) list;  (* (shard index, contended), most contended first *)
}

let lock_stats () =
  (* per-shard reads are unsynchronized — stats, not invariants *)
  let per = Array.mapi (fun i s -> (i, s.contended)) shards in
  let tops =
    Array.to_list per
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.filteri (fun i _ -> i < 8)
  in
  {
    lk_uncontended = Atomic.get lk_uncontended;
    lk_contended = Atomic.get lk_contended;
    lk_wait_counts = Array.map Atomic.get wait_counts;
    lk_wait_sum_ns = Atomic.get wait_sum_ns;
    lk_top_shards = tops;
  }

let reset_lock_stats () =
  Atomic.set lk_uncontended 0;
  Atomic.set lk_contended 0;
  Array.iter (fun a -> Atomic.set a 0) wait_counts;
  Atomic.set wait_sum_ns 0;
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      s.contended <- 0;
      Mutex.unlock s.lock)
    shards

let set_lock_profiling on = Atomic.set lock_profiling on

type hc_stats = { table_size : int; hits : int; misses : int; next_id : int }

let hashcons_stats () =
  let size = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      size := !size + Wtbl.count s.tbl;
      Mutex.unlock s.lock)
    shards;
  {
    table_size = !size;
    hits = Atomic.get hc_hits;
    misses = Atomic.get hc_misses;
    next_id = Atomic.get next_id;
  }

let hashcons node =
  (* the probe's id is never read: [Hashed_node] hashes and compares on the
     node alone, so an id of -1 finds any interned equal *)
  let probe = { id = -1; node; width = node_width node; syms_memo = Atomic.make None } in
  let s = shards.(Hashed_node.hash probe land (nshards - 1)) in
  lock_shard s;
  match Wtbl.find_opt s.tbl probe with
  | Some r ->
    Mutex.unlock s.lock;
    Atomic.incr hc_hits;
    r
  | None ->
    let t = { probe with id = Atomic.fetch_and_add next_id 1 } in
    Wtbl.add s.tbl t;
    Mutex.unlock s.lock;
    Atomic.incr hc_misses;
    t

(* --- Accessors ------------------------------------------------------ *)

let width e = e.width
let id e = e.id

let const ~width:w value =
  check_width w;
  hashcons (Const { width = w; value = truncate w value })

let of_bool b = const ~width:1 (if b then 1L else 0L)
let true_ = of_bool true
let false_ = of_bool false
let of_int ~width:w v = const ~width:w (Int64.of_int v)

let sym_counter = Atomic.make 0

let fresh_sym ?(name = "v") w =
  check_width w;
  hashcons (Sym { id = 1 + Atomic.fetch_and_add sym_counter 1; name; width = w })

(* Deterministic symbol creation for replay: the caller supplies the id.
   The counter is raised to at least [id] (CAS loop: another domain may be
   raising it concurrently) so fresh symbols never collide with it. *)
let sym_with_id ~id ~name w =
  check_width w;
  let rec raise_to () =
    let cur = Atomic.get sym_counter in
    if id > cur && not (Atomic.compare_and_set sym_counter cur id) then raise_to ()
  in
  raise_to ();
  hashcons (Sym { id; name; width = w })

let is_const e = match e.node with Const _ -> true | _ -> false
let const_value e = match e.node with Const { value; _ } -> Some value | _ -> None

(* [true_]/[false_] are module-level roots, so any structurally equal
   constant interns to the same object: identity check suffices. *)
let is_true e = e == true_
let is_false e = e == false_

(* Unsigned comparison of int64 values. *)
let ucompare a b = Int64.unsigned_compare a b

let eval_unop op w v =
  match op with
  | Not -> truncate w (Int64.lognot v)
  | Neg -> truncate w (Int64.neg v)

let eval_binop op w a b =
  match op with
  | Add -> truncate w (Int64.add a b)
  | Sub -> truncate w (Int64.sub a b)
  | Mul -> truncate w (Int64.mul a b)
  | Udiv -> if b = 0L then mask w else truncate w (Int64.unsigned_div a b)
  | Urem -> if b = 0L then a else truncate w (Int64.unsigned_rem a b)
  | Sdiv ->
    if b = 0L then mask w
    else
      let sa = to_signed w a and sb = to_signed w b in
      truncate w (Int64.div sa sb)
  | Srem ->
    if b = 0L then a
    else
      let sa = to_signed w a and sb = to_signed w b in
      truncate w (Int64.rem sa sb)
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else truncate w (Int64.shift_left a s)
  | Lshr ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else Int64.shift_right_logical a s
  | Ashr ->
    let s = Int64.to_int b in
    let sa = to_signed w a in
    if s >= w || s < 0 then truncate w (Int64.shift_right sa 63)
    else truncate w (Int64.shift_right sa s)
  | Ult -> if ucompare a b < 0 then 1L else 0L
  | Ule -> if ucompare a b <= 0 then 1L else 0L
  | Slt -> if to_signed w a < to_signed w b then 1L else 0L
  | Sle -> if to_signed w a <= to_signed w b then 1L else 0L
  | Eq -> if a = b then 1L else 0L
  | Concat -> assert false (* needs both widths; handled in [binop] *)

let unop op e =
  match e.node with
  | Const { width = w; value } -> const ~width:w (eval_unop op w value)
  | Unop (Not, inner) when op = Not -> inner
  | Unop (Neg, inner) when op = Neg -> inner
  | _ -> hashcons (Unop (op, e))

let binop op a b =
  (match op with
  | Concat -> check_width (a.width + b.width)
  | Eq | Ult | Ule | Slt | Sle | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem | And | Or | Xor
  | Shl | Lshr | Ashr ->
    if a.width <> b.width then
      raise
        (Width_error (Printf.sprintf "binop operand widths differ: %d vs %d" a.width b.width)));
  match (a.node, b.node) with
  | Const { width = wa; value = va }, Const { value = vb; _ } -> (
    match op with
    | Concat ->
      let wb = b.width in
      const ~width:(wa + wb) (Int64.logor (Int64.shift_left va wb) vb)
    | Eq | Ult | Ule | Slt | Sle -> const ~width:1 (eval_binop op wa va vb)
    | _ -> const ~width:wa (eval_binop op wa va vb))
  | _ -> hashcons (Binop (op, a, b))

let ite c a b =
  if c.width <> 1 then raise (Width_error "ite condition must have width 1");
  if a.width <> b.width then raise (Width_error "ite branches must have equal widths");
  match c.node with
  | Const { value = 1L; _ } -> a
  | Const { value = 0L; _ } -> b
  | _ -> if a == b then a else hashcons (Ite (c, a, b))

let extract e ~off ~len =
  let w = e.width in
  if off < 0 || len < 1 || off + len > w then
    raise (Width_error (Printf.sprintf "extract [%d,%d) out of width %d" off (off + len) w));
  if off = 0 && len = w then e
  else
    match e.node with
    | Const { value; _ } -> const ~width:len (Int64.shift_right_logical value off)
    | Extract { e = inner; off = off'; _ } -> hashcons (Extract { e = inner; off = off + off'; len })
    | _ -> hashcons (Extract { e; off; len })

let zext e w =
  check_width w;
  let we = e.width in
  if w < we then raise (Width_error "zext target narrower than operand")
  else if w = we then e
  else
    match e.node with
    | Const { value; _ } -> const ~width:w value
    | _ -> hashcons (Zext (e, w))

let sext e w =
  check_width w;
  let we = e.width in
  if w < we then raise (Width_error "sext target narrower than operand")
  else if w = we then e
  else
    match e.node with
    | Const { value; _ } -> const ~width:w (to_signed we value)
    | _ -> hashcons (Sext (e, w))

(* Convenience boolean connectives over width-1 vectors. *)
let not_ e = unop Not e
let and_ a b = if is_true a then b else if is_true b then a else binop And a b
let or_ a b = if is_false a then b else if is_false b then a else binop Or a b
let eq a b = binop Eq a b
let ne a b = not_ (eq a b)
let ult a b = binop Ult a b
let ule a b = binop Ule a b
let ugt a b = binop Ult b a
let uge a b = binop Ule b a
let slt a b = binop Slt a b
let sle a b = binop Sle a b
let sgt a b = binop Slt b a
let sge a b = binop Sle b a
let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let concat a b = binop Concat a b

(* --- Identity, ordering, hashing ------------------------------------ *)

let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Int.compare a.id b.id
let hash (e : t) = e.id

(* Structural ordering that depends only on the term's shape, never on
   interning order.  Needed wherever an ordering must agree across
   processes (or across weak-table evictions that reassign ids), e.g.
   sorting constraints before a deterministic solve. *)
let rec compare_structural a b =
  if a == b then 0
  else
    let rank = function
      | Const _ -> 0
      | Sym _ -> 1
      | Unop _ -> 2
      | Binop _ -> 3
      | Ite _ -> 4
      | Extract _ -> 5
      | Zext _ -> 6
      | Sext _ -> 7
    in
    match (a.node, b.node) with
    | Const { width = w1; value = v1 }, Const { width = w2; value = v2 } ->
      let c = Int.compare w1 w2 in
      if c <> 0 then c else Int64.unsigned_compare v1 v2
    | Sym { id = i1; name = n1; width = w1 }, Sym { id = i2; name = n2; width = w2 } ->
      let c = Int.compare i1 i2 in
      if c <> 0 then c
      else
        let c = String.compare n1 n2 in
        if c <> 0 then c else Int.compare w1 w2
    | Unop (o1, e1), Unop (o2, e2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare_structural e1 e2
    | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c
      else
        let c = compare_structural a1 a2 in
        if c <> 0 then c else compare_structural b1 b2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      let c = compare_structural c1 c2 in
      if c <> 0 then c
      else
        let c = compare_structural a1 a2 in
        if c <> 0 then c else compare_structural b1 b2
    | Extract { e = e1; off = o1; len = l1 }, Extract { e = e2; off = o2; len = l2 } ->
      let c = compare_structural e1 e2 in
      if c <> 0 then c
      else
        let c = Int.compare o1 o2 in
        if c <> 0 then c else Int.compare l1 l2
    | Zext (e1, w1), Zext (e2, w2) | Sext (e1, w1), Sext (e2, w2) ->
      let c = compare_structural e1 e2 in
      if c <> 0 then c else Int.compare w1 w2
    | n1, n2 -> Int.compare (rank n1) (rank n2)

(* --- Support set ----------------------------------------------------- *)

(* Symbol sets are memoized per node; sharing means each distinct subterm
   is computed once per lifetime, so [sym_set] is amortized O(1) on the
   solver hot path.  The memo is published through an [Atomic]: the
   computed set is a pure function of the (immutable) node, so racing
   writers store structurally equal values and losing one [set] costs a
   recompute, never correctness — but the Atomic makes the publication
   well-defined under the OCaml memory model (no relying on "benign"
   plain-field races). *)
let rec sym_set e =
  match Atomic.get e.syms_memo with
  | Some s -> s
  | None ->
    let s =
      match e.node with
      | Const _ -> Iset.empty
      | Sym { id; _ } -> Iset.singleton id
      | Unop (_, a) | Extract { e = a; _ } | Zext (a, _) | Sext (a, _) -> sym_set a
      | Binop (_, a, b) -> Iset.union (sym_set a) (sym_set b)
      | Ite (c, a, b) -> Iset.union (sym_set c) (Iset.union (sym_set a) (sym_set b))
    in
    Atomic.set e.syms_memo (Some s);
    s

let syms e = Iset.elements (sym_set e)

(* Replace every occurrence of the given subterms (bottom-up, so nested
   matches rewrite first).  Used for path-condition-implied equalities:
   when the path condition contains [e = c], any occurrence of [e] may be
   replaced by [c].  Lookup is by physical identity — sound because
   interning makes structural equality coincide with it. *)
let rec substitute pairs e =
  let e' =
    match e.node with
    | Const _ | Sym _ -> e
    | Unop (op, a) -> unop op (substitute pairs a)
    | Binop (op, a, b) -> binop op (substitute pairs a) (substitute pairs b)
    | Ite (c, a, b) -> ite (substitute pairs c) (substitute pairs a) (substitute pairs b)
    | Extract { e = a; off; len } -> extract (substitute pairs a) ~off ~len
    | Zext (a, w) -> zext (substitute pairs a) w
    | Sext (a, w) -> sext (substitute pairs a) w
  in
  match List.assq_opt e' pairs with Some r -> r | None -> e'

let rec size e =
  match e.node with
  | Const _ | Sym _ -> 1
  | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b
  | Extract { e; _ } -> 1 + size e
  | Zext (e, _) -> 1 + size e
  | Sext (e, _) -> 1 + size e

let unop_name = function Not -> "not" | Neg -> "neg"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Urem -> "urem"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | Ult -> "ult"
  | Ule -> "ule"
  | Slt -> "slt"
  | Sle -> "sle"
  | Eq -> "eq"
  | Concat -> "concat"

let rec pp fmt e =
  match e.node with
  | Const { width; value } -> Format.fprintf fmt "%Lu:%d" value width
  | Sym { name; id; width } -> Format.fprintf fmt "%s%d:%d" name id width
  | Unop (op, e) -> Format.fprintf fmt "(%s %a)" (unop_name op) pp e
  | Binop (op, a, b) -> Format.fprintf fmt "(%s %a %a)" (binop_name op) pp a pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Extract { e; off; len } -> Format.fprintf fmt "(extract %a %d %d)" pp e off len
  | Zext (e, w) -> Format.fprintf fmt "(zext %a %d)" pp e w
  | Sext (e, w) -> Format.fprintf fmt "(sext %a %d)" pp e w

let to_string e = Format.asprintf "%a" pp e

(* Concrete evaluation under an assignment from symbol id to value.
   Unbound symbols evaluate to [default] (0 by default), which matches the
   "counterexample cache" usage where partial models are probed. *)
let rec eval ?(default = 0L) lookup e =
  match e.node with
  | Const { value; _ } -> value
  | Sym { id; width = w; _ } -> (
    match lookup id with Some v -> truncate w v | None -> truncate w default)
  | Unop (op, e1) -> eval_unop op e1.width (eval ~default lookup e1)
  | Binop (Concat, a, b) ->
    let wb = b.width in
    Int64.logor (Int64.shift_left (eval ~default lookup a) wb) (eval ~default lookup b)
  | Binop (op, a, b) -> eval_binop op a.width (eval ~default lookup a) (eval ~default lookup b)
  | Ite (c, a, b) ->
    if eval ~default lookup c = 1L then eval ~default lookup a else eval ~default lookup b
  | Extract { e = e1; off; len } ->
    truncate len (Int64.shift_right_logical (eval ~default lookup e1) off)
  | Zext (e1, _) -> eval ~default lookup e1
  | Sext (e1, w) -> truncate w (to_signed e1.width (eval ~default lookup e1))
