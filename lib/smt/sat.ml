(* A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
   analysis, VSIDS-style activities with phase saving, and Luby restarts.

   The instance is persistent: [solve_with_assumptions] answers a query
   under a set of assumption literals (installed as pseudo-decisions at
   levels 1..n, MiniSat-style) and leaves the instance reusable — learned
   clauses, variable activities, saved phases and the watch lists all
   survive to the next call, so closely related queries (the two polarities
   of a fork, successive queries along one path) share everything the
   earlier ones taught the solver.  Learnt clauses recorded while
   assumptions were in effect mention the assumption literals explicitly
   (first-UIP only drops level-0 literals), so retaining them is sound:
   every learnt clause is implied by the clause database alone.

   Learnt-clause deletion is age-based and runs at the root level between
   queries: when the live learnt set outgrows a limit, the oldest half is
   detached (binary and reason clauses are kept).  Within a single query
   learnt growth is negligible for our query mix; deletion only matters
   for long-lived incremental instances.

   Literal encoding: variable [v] (0-based) has positive literal [2*v] and
   negative literal [2*v+1].  [lit lxor 1] negates. *)

type lbool = Unassigned | True | False

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* clause arena; first two lits watched *)
  mutable nclauses : int;
  mutable watches : int list array;   (* lit -> clause indices watching it *)
  mutable assign : lbool array;       (* var -> value *)
  mutable level : int array;          (* var -> decision level *)
  mutable reason : int array;         (* var -> clause index or -1 *)
  mutable activity : float array;
  mutable phase : bool array;         (* saved polarity *)
  mutable heap : int array;           (* max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array;       (* var -> index in heap, or -1 *)
  mutable trail : int array;          (* assigned literals in order *)
  mutable trail_size : int;
  mutable trail_lim : int array;      (* decision-level boundaries *)
  mutable ntrail_lim : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;                  (* false once a top-level conflict exists *)
  mutable learnt_cis : int array;     (* live learnt clause indices, learning order *)
  mutable nlearnts : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;              (* learnt clauses ever recorded (incl. units) *)
  mutable deleted : int;              (* learnt clauses removed by DB reduction *)
  mutable mark : int array;           (* var -> relevance stamp *)
  mutable cmark : int array;          (* clause -> relevance stamp; -1 = always *)
  mutable mark_stamp : int;
  mutable use_marks : bool;           (* restrict decisions to marked vars *)
  mutable skipped : int array;        (* unmarked vars popped off the heap *)
  mutable nskipped : int;
  mutable nmarked_open : int;         (* marked vars currently unassigned *)
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make 32 [];
    assign = Array.make 16 Unassigned;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    heap = Array.make 16 0;
    heap_size = 0;
    heap_pos = Array.make 16 (-1);
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = Array.make 16 0;
    ntrail_lim = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    learnt_cis = Array.make 16 0;
    nlearnts = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    mark = Array.make 16 0;
    cmark = Array.make 16 0;
    mark_stamp = 0;
    use_marks = false;
    skipped = Array.make 16 0;
    nskipped = 0;
    nmarked_open = 0;
  }

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

(* --- activity-ordered max-heap --------------------------------------- *)

let heap_less s v1 v2 = s.activity.(v1) > s.activity.(v2)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vj) <- i;
  s.heap_pos.(vi) <- j

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let heap_bump s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- variables and values --------------------------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_array s.assign s.nvars Unassigned;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars (-1);
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.phase <- grow_array s.phase s.nvars false;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.trail <- grow_array s.trail s.nvars 0;
  s.heap_pos.(v) <- -1;
  s.assign.(v) <- Unassigned;
  s.activity.(v) <- 0.0;
  s.phase.(v) <- false;
  s.reason.(v) <- -1;
  if Array.length s.watches < 2 * s.nvars then begin
    let w = Array.make (max (2 * s.nvars) (2 * Array.length s.watches)) [] in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end;
  s.watches.((2 * v)) <- [];
  s.watches.((2 * v) + 1) <- [];
  heap_insert s v;
  v

(* --- relevance marks ---------------------------------------------------

   A caller that knows which variables the current query can actually
   depend on (the transitive cone of the constraints being assumed, see
   {!Cnf}) may restrict branching to them: [begin_marks] opens a fresh
   mark generation and arms the restriction for the next
   [solve_with_assumptions]; [mark_var] adds one variable.  The search
   then never *decides* an unmarked variable (propagation may still
   assign them), and answers [Satisfiable] once every marked variable is
   assigned without conflict.  This is sound whenever the unmarked
   remainder of the instance is extendable — true by construction for
   bit-blasted circuitry: unmarked clauses are Tseitin gate definitions
   (evaluate bottom-up from any input assignment) or activation guards
   (satisfied by leaving the group's activation literal false). *)

let begin_marks s =
  s.mark <- grow_array s.mark (max 16 s.nvars) 0;
  s.cmark <- grow_array s.cmark (max 16 s.nclauses) 0;
  s.mark_stamp <- s.mark_stamp + 1;
  s.use_marks <- true;
  s.nmarked_open <- 0

(* [nmarked_open] counts marked variables not yet assigned, so the search
   can answer Satisfiable the instant the cone is fully assigned instead
   of draining the instance-wide branching heap past the mark filter.
   Marking may happen while the previous query's trail is still in place:
   variables it still holds assigned are not counted here, and the
   [cancel_until 0] at the head of the next solve counts them back in. *)
let mark_var s v =
  if s.mark.(v) <> s.mark_stamp then begin
    s.mark.(v) <- s.mark_stamp;
    if s.assign.(v) = Unassigned then s.nmarked_open <- s.nmarked_open + 1
  end

let marked s v = v < Array.length s.mark && s.mark.(v) = s.mark_stamp

(* Clause-level relevance: callers stamp the clauses of the active cone;
   anything else is circuitry of switched-off groups and is skipped
   wholesale during above-root propagation (its clauses always contain an
   unmarked — hence unassigned — variable, so they can never become unit
   or conflicting).  Learnt clauses carry stamp -1: always relevant. *)
let mark_clause s ci = if s.cmark.(ci) >= 0 then s.cmark.(ci) <- s.mark_stamp
let clause_relevant s ci =
  let cm = s.cmark.(ci) in
  cm < 0 || cm = s.mark_stamp

let var_of_lit l = l lsr 1
let lit_sign l = l land 1 = 0 (* true when positive *)
let lit ~positive v = if positive then 2 * v else (2 * v) + 1

let lit_value s l =
  match s.assign.(var_of_lit l) with
  | Unassigned -> Unassigned
  | True -> if lit_sign l then True else False
  | False -> if lit_sign l then False else True

let value s v = match s.assign.(v) with True -> true | False | Unassigned -> false

let decision_level s = s.ntrail_lim

(* --- assignment / trail ------------------------------------------------ *)

let enqueue s l reason =
  let v = var_of_lit l in
  if s.use_marks && marked s v then s.nmarked_open <- s.nmarked_open - 1;
  s.assign.(v) <- (if lit_sign l then True else False);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit_sign l;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = var_of_lit s.trail.(i) in
      if s.use_marks && marked s v then s.nmarked_open <- s.nmarked_open + 1;
      s.assign.(v) <- Unassigned;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.ntrail_lim <- lvl
  end

(* --- clauses ------------------------------------------------------------ *)

let attach_clause s ci =
  let c = s.clauses.(ci) in
  s.watches.(c.(0)) <- ci :: s.watches.(c.(0));
  s.watches.(c.(1)) <- ci :: s.watches.(c.(1))

let push_clause s c =
  if s.nclauses >= Array.length s.clauses then begin
    let a = Array.make (2 * Array.length s.clauses) [||] in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  s.cmark <- grow_array s.cmark (s.nclauses + 1) 0;
  s.cmark.(s.nclauses) <- 0;
  s.clauses.(s.nclauses) <- c;
  s.nclauses <- s.nclauses + 1;
  s.nclauses - 1

let detach_clause s ci =
  let c = s.clauses.(ci) in
  s.watches.(c.(0)) <- List.filter (fun x -> x <> ci) s.watches.(c.(0));
  s.watches.(c.(1)) <- List.filter (fun x -> x <> ci) s.watches.(c.(1))

(* A clause is locked while it is the reason of its asserting literal. *)
let locked s ci =
  let c = s.clauses.(ci) in
  let v = var_of_lit c.(0) in
  s.assign.(v) <> Unassigned && s.reason.(v) = ci

(* Age-based learnt-DB reduction, run at the root level between queries:
   detach the oldest half of the live learnt clauses, keeping binary and
   locked (reason) ones.  Detached slots are tombstoned in the arena —
   indices of surviving clauses never move, so reasons and watches of the
   kept clauses stay valid. *)
let reduce_learnts s =
  let half = s.nlearnts / 2 in
  let kept = Array.make (Array.length s.learnt_cis) 0 in
  let nkept = ref 0 in
  for i = 0 to s.nlearnts - 1 do
    let ci = s.learnt_cis.(i) in
    if i >= half || Array.length s.clauses.(ci) <= 2 || locked s ci then begin
      kept.(!nkept) <- ci;
      incr nkept
    end
    else begin
      detach_clause s ci;
      s.clauses.(ci) <- [||];
      s.deleted <- s.deleted + 1
    end
  done;
  s.learnt_cis <- kept;
  s.nlearnts <- !nkept

(* Reduce when the live learnt set outgrows the problem-clause count plus
   a fixed floor (the arena holds problem and learnt clauses together, so
   the problem count is the remainder). *)
let learnt_limit s = 2048 + ((s.nclauses - s.nlearnts) / 2)

let note_learnt s ci =
  s.learnt_cis <- grow_array s.learnt_cis (s.nlearnts + 1) 0;
  s.learnt_cis.(s.nlearnts) <- ci;
  s.nlearnts <- s.nlearnts + 1

(* Add a problem clause.  Clauses may be added between queries on a
   persistent instance: any leftover non-root assignment from the previous
   [solve] is undone first, so the literal filtering below only ever uses
   root-level (implied) facts. *)
let add_clause s lits =
  if decision_level s > 0 then cancel_until s 0;
  if s.ok then begin
    (* Remove duplicates and false literals; detect tautologies. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.exists (fun l' -> l' = l lxor 1) lits) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> False) lits in
      if List.exists (fun l -> lit_value s l = True) lits then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] -> enqueue s l (-1)
        | l0 :: l1 :: _ ->
          let c = Array.of_list lits in
          let ci = push_clause s c in
          ignore l0;
          ignore l1;
          attach_clause s ci
    end
  end

(* --- propagation --------------------------------------------------------- *)

(* Propagate all enqueued assignments; returns the index of a conflicting
   clause, or -1 if no conflict. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = p lxor 1 in
    let old_watch = s.watches.(false_lit) in
    s.watches.(false_lit) <- [];
    let skip_irrelevant = s.use_marks && s.ntrail_lim > 0 in
    let rec go = function
      | [] -> ()
      | ci :: rest when skip_irrelevant && not (clause_relevant s ci) ->
        (* Clause of a switched-off group: keep the watch as-is.  Only
           above the root level — root propagation must maintain every
           watch, since the root trail is never re-propagated and a
           clause left watching a root-false literal could otherwise go
           silent in a later query where it is relevant. *)
        s.watches.(false_lit) <- ci :: s.watches.(false_lit);
        go rest
      | ci :: rest ->
        let c = s.clauses.(ci) in
        (* ensure the false literal is at position 1 *)
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if lit_value s c.(0) = True then begin
          (* clause satisfied: keep watching *)
          s.watches.(false_lit) <- ci :: s.watches.(false_lit);
          go rest
        end
        else begin
          (* look for a new literal to watch *)
          let n = Array.length c in
          let rec find i = if i >= n then -1 else if lit_value s c.(i) <> False then i else find (i + 1) in
          let k = find 2 in
          if k >= 0 then begin
            c.(1) <- c.(k);
            c.(k) <- false_lit;
            s.watches.(c.(1)) <- ci :: s.watches.(c.(1));
            go rest
          end
          else begin
            (* unit or conflicting *)
            s.watches.(false_lit) <- ci :: s.watches.(false_lit);
            if lit_value s c.(0) = False then begin
              (* conflict: restore remaining watches and stop *)
              List.iter (fun ci' -> s.watches.(false_lit) <- ci' :: s.watches.(false_lit)) rest;
              s.qhead <- s.trail_size;
              conflict := ci
            end
            else if s.use_marks && not (marked s (var_of_lit c.(0))) then
              (* Unit implication of an irrelevant variable: skip the
                 assignment (the satisfying extension of the unmarked
                 remainder honors it), cutting the propagation cascade
                 into circuitry of switched-off groups.  No conflict can
                 be missed: unmarked variables then stay unassigned, so
                 no clause over them ever goes all-false. *)
              go rest
            else begin
              enqueue s c.(0) ci;
              go rest
            end
          end
        end
    in
    go old_watch
  done;
  !conflict

(* --- conflict analysis ---------------------------------------------------- *)

let var_decay = 0.95
let rescale_limit = 1e100

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > rescale_limit then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_bump s v

let decay_activities s = s.var_inc <- s.var_inc /. var_decay

(* First-UIP learning.  Returns (learnt clause with asserting literal
   first, backtrack level). *)
let analyze s conflict_ci =
  let seen = Array.make s.nvars false in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let ci = ref conflict_ci in
  let idx = ref (s.trail_size - 1) in
  let asserting = ref 0 in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!ci) in
    let start = if !p < 0 then 0 else 1 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = var_of_lit q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* pick the next literal on the trail to resolve *)
    let rec next_seen i = if seen.(var_of_lit s.trail.(i)) then i else next_seen (i - 1) in
    idx := next_seen !idx;
    let q = s.trail.(!idx) in
    let v = var_of_lit q in
    p := q;
    seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      asserting := !p lxor 1;
      continue := false
    end
    else ci := s.reason.(v)
  done;
  let learnt = !asserting :: !learnt in
  (* backtrack level: second-highest level in the learnt clause *)
  let blevel =
    match learnt with
    | [ _ ] -> 0
    | _ :: rest -> List.fold_left (fun acc l -> max acc s.level.(var_of_lit l)) 0 rest
    | [] -> 0
  in
  (learnt, blevel)

(* --- search ----------------------------------------------------------------- *)

let luby y i =
  (* the Luby restart sequence *)
  let rec go sz seq i = if sz < i + 1 then go ((2 * sz) + 1) (seq + 1) (i mod sz) else (sz, seq, i)
  in
  let rec outer i =
    let sz, seq, i = go 1 0 i in
    if sz - 1 = i then y ** float_of_int seq else outer i
  in
  outer i

(* Pop until an unassigned (and, under marks, relevant) variable surfaces.
   Unmarked variables are stashed off the heap for the rest of the query
   ([restore_skipped] puts them back before [solve_aux] returns). *)
let pick_branch_var s =
  let rec loop () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) <> Unassigned then loop ()
      else if s.use_marks && not (marked s v) then begin
        s.skipped <- grow_array s.skipped (s.nskipped + 1) 0;
        s.skipped.(s.nskipped) <- v;
        s.nskipped <- s.nskipped + 1;
        loop ()
      end
      else v
  in
  loop ()

let restore_skipped s =
  for i = 0 to s.nskipped - 1 do
    heap_insert s s.skipped.(i)
  done;
  s.nskipped <- 0

type result = Satisfiable | Unsatisfiable

let record_learnt s learnt =
  s.learned <- s.learned + 1;
  match learnt with
  | [ l ] -> enqueue s l (-1)
  | l0 :: _ :: _ ->
    let c = Array.of_list learnt in
    (* watch the asserting literal and a literal from the backtrack level *)
    let ci = push_clause s c in
    s.cmark.(ci) <- -1; (* learnt: relevant in every query *)
    note_learnt s ci;
    (* position 1 must hold a highest-level literal among the rest *)
    let best = ref 1 in
    for i = 2 to Array.length c - 1 do
      if s.level.(var_of_lit c.(i)) > s.level.(var_of_lit c.(!best)) then best := i
    done;
    let tmp = c.(1) in
    c.(1) <- c.(!best);
    c.(!best) <- tmp;
    attach_clause s ci;
    enqueue s l0 ci
  | [] -> s.ok <- false

let push_level s =
  s.trail_lim <- grow_array s.trail_lim (s.ntrail_lim + 1) 0;
  s.trail_lim.(s.ntrail_lim) <- s.trail_size;
  s.ntrail_lim <- s.ntrail_lim + 1

(* The CDCL loop, parameterized by assumption literals.  Assumptions are
   installed in order as the first [n] decisions (a dummy level when one
   is already implied); when a pending assumption is found False, the
   clause database together with the earlier assumptions implies its
   negation and the query is unsatisfiable *under the assumptions* — the
   instance itself stays usable ([ok] is only cleared by a root-level
   conflict, which means the database is contradictory outright).
   Restarts cancel back to the assumption prefix, never behind it.  On
   [Satisfiable] the trail is left in place so the model can be read; the
   next call backtracks to the root first. *)
let solve_aux s assumps =
  if not s.ok then begin
    s.use_marks <- false;
    Unsatisfiable
  end
  else begin
    cancel_until s 0;
    if s.nlearnts > learnt_limit s then reduce_learnts s;
    let nassumps = Array.length assumps in
    let restart_base = 64.0 in
    let conflicts_until_restart = ref (restart_base *. luby 2.0 0) in
    let result = ref None in
    while !result = None do
      let conflict = propagate s in
      if conflict >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        if decision_level s = 0 then begin
          s.ok <- false;
          result := Some Unsatisfiable
        end
        else begin
          let learnt, blevel = analyze s conflict in
          cancel_until s blevel;
          record_learnt s learnt;
          decay_activities s;
          conflicts_until_restart := !conflicts_until_restart -. 1.0
        end
      end
      else if !conflicts_until_restart <= 0.0 && decision_level s > nassumps then begin
        s.restarts <- s.restarts + 1;
        conflicts_until_restart := restart_base *. luby 2.0 s.restarts;
        cancel_until s nassumps
      end
      else if decision_level s < nassumps then begin
        (* install the next assumption as a pseudo-decision *)
        let p = assumps.(decision_level s) in
        match lit_value s p with
        | True -> push_level s (* already implied: open an empty level *)
        | False -> result := Some Unsatisfiable (* unsat under assumptions *)
        | Unassigned ->
          push_level s;
          enqueue s p (-1)
      end
      else if s.use_marks && s.nmarked_open = 0 then
        (* every relevant variable is assigned without conflict; the
           unmarked remainder is extendable by construction *)
        result := Some Satisfiable
      else begin
        let v = pick_branch_var s in
        if v < 0 then result := Some Satisfiable
        else begin
          s.decisions <- s.decisions + 1;
          push_level s;
          enqueue s (lit ~positive:s.phase.(v) v) (-1)
        end
      end
    done;
    restore_skipped s;
    s.use_marks <- false;
    match !result with Some r -> r | None -> assert false
  end

let solve s =
  s.use_marks <- false;
  solve_aux s [||]
let solve_with_assumptions s assumps = solve_aux s (Array.of_list assumps)

let num_clauses s = s.nclauses
let num_vars s = s.nvars
let is_ok s = s.ok

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;
  deleted : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    restarts = s.restarts;
    learned = s.learned;
    deleted = s.deleted;
  }
