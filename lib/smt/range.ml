(* Unsigned interval (range) analysis over bit-vector expressions: a cheap
   abstract interpretation that answers many branch-feasibility queries
   without touching the SAT solver (the fast path real engines put in
   front of their solvers).

   An interval [lo, hi] (unsigned, no wraparound representation) abstracts
   the set of values an expression can take given intervals for its
   symbols.  All transfer functions are conservative: the concrete value
   always lies within the computed interval (property-tested in
   test/test_smt.ml). *)

type t = { lo : int64; hi : int64; width : int }

let ucmp = Expr.ucompare

let top width = { lo = 0L; hi = Expr.mask width; width }
let of_const ~width v = { lo = v; hi = v; width }
let is_singleton r = r.lo = r.hi

let make ~width lo hi = { lo; hi; width }

(* Does the interval contain v? *)
let contains r v = ucmp r.lo v <= 0 && ucmp v r.hi <= 0

let join a b =
  { a with lo = (if ucmp a.lo b.lo <= 0 then a.lo else b.lo);
           hi = (if ucmp a.hi b.hi >= 0 then a.hi else b.hi) }

(* Intersection; [None] when empty (contradictory constraints). *)
let meet a b =
  let lo = if ucmp a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if ucmp a.hi b.hi <= 0 then a.hi else b.hi in
  if ucmp lo hi <= 0 then Some { a with lo; hi } else None

let bool_top = { lo = 0L; hi = 1L; width = 1 }
let bool_true = { lo = 1L; hi = 1L; width = 1 }
let bool_false = { lo = 0L; hi = 0L; width = 1 }

(* Unsigned addition overflow check at [width]. *)
let add_overflows width a b =
  let m = Expr.mask width in
  ucmp a (Int64.sub m b) > 0

let transfer_add w a b =
  if add_overflows w a.hi b.hi then top w
  else make ~width:w (Int64.add a.lo b.lo) (Int64.add a.hi b.hi)

let transfer_sub w a b =
  (* no underflow when a.lo >= b.hi *)
  if ucmp a.lo b.hi >= 0 then make ~width:w (Int64.sub a.lo b.hi) (Int64.sub a.hi b.lo)
  else top w

let transfer_mul w a b =
  (* safe when the product of the highs fits in 63 bits and the width *)
  let fits x y =
    x = 0L || (ucmp y (Int64.unsigned_div Int64.max_int (if x = 0L then 1L else x)) <= 0)
  in
  if w < 64 && fits a.hi b.hi && ucmp (Int64.mul a.hi b.hi) (Expr.mask w) <= 0 then
    make ~width:w (Int64.mul a.lo b.lo) (Int64.mul a.hi b.hi)
  else top w

let transfer_udiv w a b =
  if b.lo = 0L then top w (* division by zero possible: engine semantics say all-ones *)
  else make ~width:w (Int64.unsigned_div a.lo b.hi) (Int64.unsigned_div a.hi b.lo)

let transfer_and w a b =
  (* bitwise AND never exceeds either operand *)
  make ~width:w 0L (if ucmp a.hi b.hi <= 0 then a.hi else b.hi)

let transfer_or w a b =
  (* OR is at least each operand's low; bounded by next power of two *)
  let hi_bits x =
    let rec go v acc = if v = 0L then acc else go (Int64.shift_right_logical v 1) (Int64.logor (Int64.shift_left acc 1) 1L) in
    go x 0L
  in
  let lo = if ucmp a.lo b.lo >= 0 then a.lo else b.lo in
  make ~width:w lo (hi_bits (Int64.logor a.hi b.hi))

let cmp_result definite_true definite_false =
  if definite_true then bool_true else if definite_false then bool_false else bool_top

(* Abstract evaluation.  [lookup] gives symbol intervals (absent = top). *)
let rec eval lookup (e : Expr.t) : t =
  match e.Expr.node with
  | Expr.Const { width; value } -> of_const ~width value
  | Expr.Sym { id; width; _ } -> (
    match lookup id with Some r when r.width = width -> r | Some _ | None -> top width)
  | Expr.Unop (Expr.Neg, e1) ->
    let w = Expr.width e1 in
    let r = eval lookup e1 in
    if r.lo = 0L && r.hi = 0L then of_const ~width:w 0L else top w
  | Expr.Unop (Expr.Not, e1) ->
    let w = Expr.width e1 in
    let r = eval lookup e1 in
    (* complement flips the order *)
    make ~width:w
      (Int64.logand (Expr.mask w) (Int64.lognot r.hi))
      (Int64.logand (Expr.mask w) (Int64.lognot r.lo))
  | Expr.Binop (op, a, b) -> eval_binop lookup op a b
  | Expr.Ite (c, a, b) -> (
    let rc = eval lookup c in
    if rc.lo = 1L then eval lookup a
    else if rc.hi = 0L then eval lookup b
    else join (eval lookup a) (eval lookup b))
  | Expr.Extract { e = e1; off; len } ->
    let r = eval lookup e1 in
    if off = 0 && ucmp r.hi (Expr.mask len) <= 0 then make ~width:len r.lo r.hi else top len
  | Expr.Zext (e1, w) ->
    let r = eval lookup e1 in
    make ~width:w r.lo r.hi
  | Expr.Sext (e1, w) ->
    let r = eval lookup e1 in
    let we = Expr.width e1 in
    (* nonnegative-only intervals extend unchanged *)
    if ucmp r.hi (Expr.mask (we - 1)) <= 0 then make ~width:w r.lo r.hi else top w

and eval_binop lookup op a b =
  let w = Expr.width a in
  let ra () = eval lookup a in
  let rb () = eval lookup b in
  match op with
  | Expr.Add -> transfer_add w (ra ()) (rb ())
  | Expr.Sub -> transfer_sub w (ra ()) (rb ())
  | Expr.Mul -> transfer_mul w (ra ()) (rb ())
  | Expr.Udiv -> transfer_udiv w (ra ()) (rb ())
  | Expr.Urem ->
    let rb = rb () in
    if rb.lo = 0L then top w else make ~width:w 0L (Int64.sub rb.hi 1L)
  | Expr.Sdiv | Expr.Srem -> top w
  | Expr.And -> transfer_and w (ra ()) (rb ())
  | Expr.Or -> transfer_or w (ra ()) (rb ())
  | Expr.Xor ->
    (* xor shares or's upper bound but can cancel to zero *)
    { (transfer_or w (ra ()) (rb ())) with lo = 0L }
  | Expr.Shl | Expr.Lshr | Expr.Ashr -> (
    let rb = rb () in
    if is_singleton rb then
      let s = Int64.to_int rb.lo in
      let ra = ra () in
      match op with
      | Expr.Lshr when s >= 0 && s < w ->
        make ~width:w (Int64.shift_right_logical ra.lo s) (Int64.shift_right_logical ra.hi s)
      | Expr.Shl when s >= 0 && s < w && ucmp ra.hi (Int64.shift_right_logical (Expr.mask w) s) <= 0
        ->
        make ~width:w (Int64.shift_left ra.lo s) (Int64.shift_left ra.hi s)
      | _ -> top w
    else top w)
  | Expr.Ult ->
    let ra = ra () and rb = rb () in
    cmp_result (ucmp ra.hi rb.lo < 0) (ucmp ra.lo rb.hi >= 0)
  | Expr.Ule ->
    let ra = ra () and rb = rb () in
    cmp_result (ucmp ra.hi rb.lo <= 0) (ucmp ra.lo rb.hi > 0)
  | Expr.Slt | Expr.Sle ->
    (* signed comparisons decide only when both intervals stay in the
       nonnegative half, where they coincide with unsigned *)
    let ra = ra () and rb = rb () in
    let half = Expr.mask (w - 1) in
    if ucmp ra.hi half <= 0 && ucmp rb.hi half <= 0 then
      (match op with
      | Expr.Slt -> cmp_result (ucmp ra.hi rb.lo < 0) (ucmp ra.lo rb.hi >= 0)
      | _ -> cmp_result (ucmp ra.hi rb.lo <= 0) (ucmp ra.lo rb.hi > 0))
    else bool_top
  | Expr.Eq ->
    let ra = ra () and rb = rb () in
    cmp_result
      (is_singleton ra && is_singleton rb && ra.lo = rb.lo)
      (ucmp ra.hi rb.lo < 0 || ucmp rb.hi ra.lo < 0)
  | Expr.Concat ->
    let wc = Expr.width a + Expr.width b in
    let ra = ra () and rb = rb () in
    let wb = Expr.width b in
    if ucmp ra.hi 0L = 0 then make ~width:wc rb.lo rb.hi
    else
      make ~width:wc
        (Int64.logor (Int64.shift_left ra.lo wb) rb.lo)
        (Int64.logor (Int64.shift_left ra.hi wb) (Expr.mask wb))

(* --- deriving symbol intervals from a path condition ------------------------- *)

module Imap = Map.Make (Int)

(* Patterns that directly bound one symbol (possibly through zext). *)
let rec as_sym (e : Expr.t) =
  match e.Expr.node with
  | Expr.Sym { id; width; _ } -> Some (id, width)
  | Expr.Zext (inner, _) -> as_sym inner
  | _ -> None

(* Refine a symbol's box; [None] signals that the conjoined facts are
   contradictory (the conjunction they were learned from is UNSAT). *)
let refine boxes id width r =
  let cur = match Imap.find_opt id boxes with Some c -> c | None -> top width in
  match meet cur r with Some m -> Some (Imap.add id m boxes) | None -> None

(* Extract interval facts from one (simplified) constraint; [None] on
   contradiction. *)
let learn boxes (c : Expr.t) =
  match c.Expr.node with
  | Expr.Binop (Expr.Eq, lhs, { Expr.node = Expr.Const { value; _ }; _ }) -> (
    match as_sym lhs with
    | Some (id, w) when Expr.ucompare value (Expr.mask w) <= 0 ->
      refine boxes id w (of_const ~width:w value)
    | _ -> Some boxes)
  | Expr.Binop (Expr.Ult, lhs, { Expr.node = Expr.Const { value; _ }; _ }) -> (
    match as_sym lhs with
    | Some (id, w) ->
      if value = 0L then None (* x < 0 is unsatisfiable *)
      else refine boxes id w (make ~width:w 0L (Int64.sub value 1L))
    | None -> Some boxes)
  | Expr.Binop (Expr.Ule, lhs, { Expr.node = Expr.Const { value; _ }; _ }) -> (
    match as_sym lhs with
    | Some (id, w) -> refine boxes id w (make ~width:w 0L (Expr.truncate w value))
    | None -> Some boxes)
  | Expr.Binop (Expr.Ult, { Expr.node = Expr.Const { value; _ }; _ }, rhs) -> (
    match as_sym rhs with
    | Some (id, w) ->
      if Expr.ucompare value (Expr.mask w) >= 0 then None
      else refine boxes id w (make ~width:w (Int64.add value 1L) (Expr.mask w))
    | None -> Some boxes)
  | Expr.Binop (Expr.Ule, { Expr.node = Expr.Const { value; _ }; _ }, rhs) -> (
    match as_sym rhs with
    | Some (id, w) -> refine boxes id w (make ~width:w (Expr.truncate w value) (Expr.mask w))
    | None -> Some boxes)
  | _ -> Some boxes

(* A set of symbol boxes.  [learn] is a meet per constraint, and meet is
   commutative and associative, so learning constraints one at a time (the
   incremental path-condition maintenance in [State]) yields exactly the
   same boxes as folding over the whole pc. *)
type boxes = t Imap.t

let empty_boxes : boxes = Imap.empty
let learn_boxes = learn

(* Symbol intervals implied (conservatively) by a path condition; [None]
   when the learned facts alone are contradictory. *)
let boxes_of_pc pc =
  List.fold_left
    (fun acc c -> match acc with None -> None | Some boxes -> learn boxes c)
    (Some empty_boxes) pc

let lookup_of_boxes boxes id = Imap.find_opt id boxes

(* Fast verdict for "is [pc /\ cond] satisfiable?", where [pc] is known
   satisfiable.
   - If every value in pc's boxes satisfies [cond] ([1,1]), then every
     model of pc does, so the conjunction is SAT.
   - If no value in the boxes satisfies [cond] ([0,0]), it is UNSAT.
   - Otherwise, learn [cond]'s own facts into the boxes: a contradiction
     proves the conjunction UNSAT (all facts are implied by it).
   [None]: undecided, fall through to the SAT solver. *)
let quick_feasible_with boxes cond =
  let r = eval (lookup_of_boxes boxes) cond in
  if r.lo = 1L then Some true
  else if r.hi = 0L then Some false
  else match learn boxes cond with None -> Some false | Some _ -> None

let quick_feasible ~pc cond =
  match boxes_of_pc pc with
  | None -> None (* would mean pc unsat, violating the invariant: punt *)
  | Some boxes -> quick_feasible_with boxes cond
