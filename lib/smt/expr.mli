(** Bit-vector expression terms, hash-consed.

    All values are fixed-width bit vectors with [1 <= width <= 64], stored
    in an [int64] with bits above the width cleared.  Boolean expressions
    are width-1 bit vectors ([0] = false, [1] = true).  The constructors
    below are smart: they perform constant folding and cheap local
    rewrites.  Deeper canonicalization lives in {!Simplify}.

    Every term is interned in a global weak hashcons table: structurally
    equal terms are physically equal and each carries a unique [id].
    The table is sharded by node hash with one mutex per shard, and the
    id/symbol counters are atomic, so terms may be built and shared
    freely across domains.
    Consequently {!equal} is physical identity, {!compare} compares ids,
    {!width} is a field read, and {!sym_set} is memoized per node.  Terms
    can only be built through the smart constructors ([t] is a private
    record), which is what keeps the interning invariant. *)

(** Integer sets, used for symbol-support sets. *)
module Iset : Set.S with type elt = int

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv  (** unsigned division; [x udiv 0 = all-ones] (SMT-LIB) *)
  | Urem  (** unsigned remainder; [x urem 0 = x] *)
  | Sdiv  (** signed division, truncating; [x sdiv 0 = all-ones] *)
  | Srem  (** signed remainder (sign of dividend); [x srem 0 = x] *)
  | And
  | Or
  | Xor
  | Shl   (** shift amounts [>= width] yield 0 *)
  | Lshr
  | Ashr
  | Ult   (** comparisons produce width-1 results *)
  | Ule
  | Slt
  | Sle
  | Eq
  | Concat  (** [concat a b] puts [a] in the high bits *)

(** A term: the unique hashcons [id], the structural [node], the cached
    bit [width], and a lazily computed symbol-support set.  Pattern-match
    via the [node] field, e.g.
    [match e.node with Binop (Eq, a, b) -> ...]. *)
type t = private {
  id : int;  (** unique per live structurally-distinct term *)
  node : node;
  width : int;
  syms_memo : Iset.t option Atomic.t;  (** internal: use {!sym_set} *)
}

and node =
  | Const of { width : int; value : int64 }
  | Sym of { id : int; name : string; width : int }
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of { e : t; off : int; len : int }
  | Zext of t * int
  | Sext of t * int

(** Raised when operand widths are inconsistent or out of range. *)
exception Width_error of string

(** [mask w] is a bit mask of the low [w] bits. *)
val mask : int -> int64

(** [truncate w v] clears the bits of [v] above width [w]. *)
val truncate : int -> int64 -> int64

(** [to_signed w v] sign-extends the low [w] bits of [v] to an int64. *)
val to_signed : int -> int64 -> int64

(** Unsigned comparison of two int64 values. *)
val ucompare : int64 -> int64 -> int

(** Bit width of an expression — O(1), cached at interning time. *)
val width : t -> int

(** The term's unique hashcons id — stable for the term's lifetime. *)
val id : t -> int

(** [const ~width v] builds a constant, truncating [v] to [width] bits. *)
val const : width:int -> int64 -> t

val of_bool : bool -> t
val true_ : t
val false_ : t
val of_int : width:int -> int -> t

(** Allocate a fresh symbolic variable with a globally unique id. *)
val fresh_sym : ?name:string -> int -> t

(** Build a symbol with a caller-chosen id; used by deterministic replay so
    that a replayed path names the same symbols as the original run. *)
val sym_with_id : id:int -> name:string -> int -> t

val is_const : t -> bool
val const_value : t -> int64 option
val is_true : t -> bool
val is_false : t -> bool

(** Concrete semantics of each operator, used by both the smart
    constructors and {!eval}. *)
val eval_unop : unop -> int -> int64 -> int64

val eval_binop : binop -> int -> int64 -> int64 -> int64

val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val ite : t -> t -> t -> t

(** [extract e ~off ~len] selects bits [off, off+len) of [e] (bit 0 is the
    least significant). *)
val extract : t -> off:int -> len:int -> t

val zext : t -> int -> t
val sext : t -> int -> t

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val concat : t -> t -> t

(** Physical identity; equivalent to structural equality on interned
    terms. O(1). *)
val equal : t -> t -> bool

(** Total order by hashcons id.  Fast and stable within a process, but
    {e not} stable across processes or weak-table evictions — use
    {!compare_structural} when the order itself must be reproducible. *)
val compare : t -> t -> int

(** The term's id; suitable for [Hashtbl.hash]-style use. *)
val hash : t -> int

(** Structural total order depending only on term shape (and symbol ids),
    never on interning order.  O(size), with a physical-equality fast
    path.  Used to order constraint sets deterministically across
    workers. *)
val compare_structural : t -> t -> int

(** Ids of the symbolic variables occurring in the expression (sorted). *)
val syms : t -> int list

(** Symbol-support set, memoized per node: amortized O(1). *)
val sym_set : t -> Iset.t

(** [substitute pairs e] replaces every occurrence of each [fst] subterm
    with its [snd], bottom-up.  Sound when each pair is an equality
    implied by the context (e.g. the path condition). *)
val substitute : (t * t) list -> t -> t

(** Node count, used by caches and cost heuristics. *)
val size : t -> int

val unop_name : unop -> string
val binop_name : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [eval lookup e] evaluates [e] under the assignment [lookup]; symbols
    for which [lookup] returns [None] take the value [default]
    (default [0L]).  The result is truncated to [width e] bits. *)
val eval : ?default:int64 -> (int -> int64 option) -> t -> int64

(** Hashcons table statistics: live entry count (summed across shards),
    intern hits/misses since start, and the next id to be assigned. *)
type hc_stats = { table_size : int; hits : int; misses : int; next_id : int }

val hashcons_stats : unit -> hc_stats

(** Shard-lock contention probe.  Interning try-locks its shard first
    and counts uncontended vs contended acquisitions; when profiling is
    enabled ({!set_lock_profiling}), contended acquisitions are also
    timed into [lk_wait_counts] — buckets aligned with
    [Obs.Metrics.latency_ns_buckets] plus a final +inf bucket — and
    [lk_wait_sum_ns].  [lk_top_shards] lists up to the 8 most contended
    shard indices with their contended-acquisition counts.  Per-shard
    counts are read unsynchronized (statistics, not invariants). *)
type lock_stats = {
  lk_uncontended : int;
  lk_contended : int;
  lk_wait_counts : int array;
  lk_wait_sum_ns : int;
  lk_top_shards : (int * int) list;
}

val lock_stats : unit -> lock_stats

(** Zero all shard-lock counters (call before a profiled run; the
    probe's state is global and survives across runs in one process). *)
val reset_lock_stats : unit -> unit

(** Enable/disable timing of contended shard-lock waits.  Off by
    default: uncontended interning always pays only the try-lock and one
    atomic increment. *)
val set_lock_profiling : bool -> unit
