(** A CDCL SAT solver with two-watched-literal propagation, first-UIP
    learning, VSIDS-style branching, phase saving, and Luby restarts.

    Instances are persistent: {!solve_with_assumptions} answers a query
    under assumption literals and leaves the learned clauses, variable
    activities, saved phases and watch lists in place for the next call,
    so related queries share search effort.  Learnt-clause growth on a
    long-lived instance is bounded by an age-based reduction pass that
    runs between queries.

    Literal encoding: variable [v] (0-based, allocated by {!new_var}) has
    positive literal [2*v] and negative literal [2*v + 1]; [l lxor 1]
    negates a literal. *)

type t

type result = Satisfiable | Unsatisfiable

val create : unit -> t

(** Allocate a new variable and return its index. *)
val new_var : t -> int

(** [lit ~positive v] is the literal for variable [v]. *)
val lit : positive:bool -> int -> int

val var_of_lit : int -> int

(** [lit_sign l] is [true] for positive literals. *)
val lit_sign : int -> bool

(** Add a problem clause (list of literals).  May be called between
    queries on a persistent instance (any leftover non-root assignment is
    undone first); an empty clause makes the instance unsatisfiable. *)
val add_clause : t -> int list -> unit

val solve : t -> result

(** [solve_with_assumptions s lits] decides satisfiability of the clause
    database under the temporary assumption that every literal in [lits]
    is true.  Assumptions are installed as the first decisions and are
    retracted afterwards; an [Unsatisfiable] answer means "unsat under
    these assumptions" and does {e not} poison the instance (unlike a
    root-level conflict).  Learned clauses, activities and saved phases
    persist across calls.  [solve s] is [solve_with_assumptions s []]. *)
val solve_with_assumptions : t -> int list -> result

(** Relevance restriction for persistent instances.  [begin_marks] opens
    a fresh mark generation and arms the restriction for the next
    {!solve_with_assumptions} call only; {!mark_var} adds one variable to
    the relevant set.  The armed search never branches on an unmarked
    variable and answers [Satisfiable] as soon as every marked variable
    is assigned without conflict — sound iff the unmarked remainder of
    the instance is always extendable to a full model (true for Tseitin
    gate definitions and activation-guard clauses, the only clauses
    {!Cnf} emits outside a query's cone).  Callers must mark the full
    transitive input cone of every assumed constraint: a marked
    variable's defining gates and inputs must be marked too. *)
val begin_marks : t -> unit

val mark_var : t -> int -> unit

(** [mark_clause s ci] adds clause [ci] (an index into the arena, in
    insertion order) to the current mark generation's relevant set.
    While marks are armed, above-root propagation skips unmarked problem
    clauses wholesale — sound because callers mark every clause of the
    active cone, and any clause outside it contains an unmarked (hence
    never-assigned) variable, so it can never become unit or conflicting.
    Learnt clauses are always relevant. *)
val mark_clause : t -> int -> unit

(** [value s v] is the value of variable [v] in the satisfying assignment
    found by the last solve call ([false] if unassigned). *)
val value : t -> int -> bool

(** Clauses ever pushed into the arena (problem + learnt, including
    tombstoned deleted slots) — a monotone size measure for retirement
    policies. *)
val num_clauses : t -> int

val num_vars : t -> int

(** [false] once a root-level conflict has been derived: the clause
    database itself is contradictory and every further query answers
    [Unsatisfiable]. *)
val is_ok : t -> bool

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learnt clauses ever recorded (including units) *)
  deleted : int;  (** learnt clauses removed by DB reduction *)
}

val stats : t -> stats
