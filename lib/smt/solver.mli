(** Query orchestration: simplification, constraint-independence slicing,
    satisfiability cache, and counterexample (model) cache on top of the
    bit blaster and CDCL SAT core — the same solver stack structure
    KLEE/Cloud9 rely on.  Each optimization can be disabled at construction
    for ablation experiments. *)

type result = Sat of Model.t | Unsat

type stats = {
  mutable queries : int;     (** total satisfiability questions asked *)
  mutable trivial : int;     (** answered by simplification alone *)
  mutable range_hits : int;  (** answered by interval analysis *)
  mutable cache_hits : int;  (** answered by the satisfiability cache *)
  mutable cex_hits : int;    (** answered by probing a cached model *)
  mutable sat_calls : int;   (** full bit-blast + SAT runs *)
}

(** Counters of the incremental SAT path (all zero when
    [use_incremental:false]).  [group_hits] counts constraints whose
    clause group was already blasted into the live persistent instance —
    a reused group contributes zero new clauses to its query. *)
type inc_stats = {
  mutable assumption_solves : int;
      (** SAT calls answered by an assumption solve on the persistent
          instance (vs. a fresh bit-blast) *)
  mutable group_hits : int;
  mutable group_misses : int;
  mutable retirements : int;
      (** persistent instances discarded — by {!clear_caches} or the
          instance-growth cap *)
}

type t

(** [obs] attaches an observability sink: every answered query bumps a
    per-tier [solver_queries] counter (handles resolved here, once) and
    emits a {!Obs.Event.Solver_query} trace event; it also registers the
    hashcons shard-lock stats provider on the sink (idempotent).
    [prof] additionally enables wall-clock query profiling: every
    answered query closes a [latency_ns{kind=solver_query,tier=...}]
    span chained from the entry point (fused fork queries attribute
    shared simplify/slice work to the first polarity). *)
val create :
  ?use_sat_cache:bool ->
  ?use_cex_cache:bool ->
  ?use_independence:bool ->
  ?use_range:bool ->
  ?use_incremental:bool ->
  ?obs:Obs.Sink.t ->
  ?prof:Obs.Profile.t ->
  unit ->
  t

val stats : t -> stats

(** Immutable snapshot of the live counters. *)
val copy_stats : t -> stats

(** Live counters of the incremental SAT path (see {!inc_stats}). *)
val inc_stats : t -> inc_stats

(** Immutable snapshot of {!inc_stats}. *)
val copy_inc_stats : t -> inc_stats

(** CDCL counters of the live persistent instance ([None] when disabled
    or not yet built / retired). *)
val inc_sat_stats : t -> Sat.stats option

val zero_stats : unit -> stats

(** [accum_stats acc src] adds [src]'s counters into [acc] (for
    aggregating per-worker solvers into a cluster total). *)
val accum_stats : stats -> stats -> unit

(** Drop all caches {e and} retire the persistent incremental instance;
    models transferred to another worker lose their source's caches and
    must never solve against the source's stale activation groups (paper
    section 6, "Constraint Caches"). *)
val clear_caches : t -> unit

(** Is the conjunction satisfiable?  On [Sat], the model covers every
    symbol mentioned in the constraints. *)
val check : t -> Expr.t list -> result

(** [branch_feasible t ~pc cond]: is [pc /\ cond] satisfiable?  Requires
    the invariant that [pc] alone is satisfiable (true for every live
    execution state); under it, independence slicing seeded by [cond] is
    sound.  Re-normalizes the whole [pc] per call — prefer
    {!branch_feasible_norm}/{!fork_feasible} when a normalized pc is
    already at hand (e.g. [State.npc]). *)
val branch_feasible : t -> pc:Expr.t list -> Expr.t -> bool

(** Same query over a pre-normalized path condition [npc] (each member
    simplified, no trivially-true members, e.g. the incrementally
    maintained [State.npc]); only [cond] is normalized.  [boxes] are the
    pc's interval facts if the caller carries them; omitted, they are
    recomputed from [npc]. *)
val branch_feasible_norm :
  t -> npc:Expr.t list -> ?boxes:Range.boxes -> Expr.t -> bool

(** [fork_feasible t ~npc ?boxes cond] answers
    [(branch_feasible cond, branch_feasible (not cond))] in one entry
    point: the condition is simplified once and the interval boxes and
    independence slice are shared between the two polarities.  Each
    polarity still counts as one query in {!stats} (with exactly one tier
    hit), so reconciliation invariants are unchanged. *)
val fork_feasible :
  t -> npc:Expr.t list -> ?boxes:Range.boxes -> Expr.t -> bool * bool

(** [must_be_true t ~pc cond] holds when [pc -> cond] is valid. *)
val must_be_true : t -> pc:Expr.t list -> Expr.t -> bool

(** Alias of {!check}, used when a full test-case model is wanted. *)
val get_model : t -> Expr.t list -> result

(** Like {!check}, but the returned model depends only on the canonical
    constraint set — never on query history — so every worker computes the
    same model for the same path condition.  Required for replay-stable
    concretization (paper section 6). *)
val check_deterministic : t -> Expr.t list -> result

(** Refresh the cache-size / hashcons gauges on the attached obs sink (a
    no-op without one).  Also runs automatically every few hundred
    answered queries. *)
val sample_gauges : t -> unit
