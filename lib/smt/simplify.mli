(** Canonicalizing rewriter for bit-vector expressions. *)

(** [simplify e] applies constant folding, algebraic identities, and
    commutative-operand normalization bottom-up, preserving the concrete
    semantics of {!Expr.eval} exactly.  Results are memoized per domain
    by hashcons id (see {!set_memo}), so each distinct subterm is
    rewritten at most once per domain — the memo is domain-local storage,
    keeping the solver's hottest lookup lock-free under parallelism. *)
val simplify : Expr.t -> Expr.t

(** [lower e] recursively replaces signed division and remainder with an
    unsigned lowering (matching {!Expr.eval_binop} exactly, including the
    division-by-zero cases) so downstream bit blasting only needs unsigned
    circuits. *)
val lower : Expr.t -> Expr.t

(** Rewriter counters: [visits] = un-memoized nodes entered, [rewrites] =
    rule applications, [memo_hits] = calls answered from the memo. *)
type rw_stats = { mutable visits : int; mutable rewrites : int; mutable memo_hits : int }

(** Snapshot of the calling domain's counters. *)
val stats : unit -> rw_stats

val reset_stats : unit -> unit

(** Enable/disable memoization (default enabled; the flag is global, the
    tables are domain-local).  Disabling also clears the calling domain's
    table; used by benchmarks to A/B the memoized rewriter against the
    plain fixpoint walk. *)
val set_memo : bool -> unit

(** Number of entries memoized in the calling domain. *)
val memo_size : unit -> int

(** Drop the calling domain's memoized results (e.g. alongside
    {!Solver.clear_caches}). *)
val clear_memo : unit -> unit
