(** Canonicalizing rewriter for bit-vector expressions. *)

(** [simplify e] applies constant folding, algebraic identities, and
    commutative-operand normalization bottom-up, preserving the concrete
    semantics of {!Expr.eval} exactly.  Results are memoized globally by
    hashcons id (see {!set_memo}), so each distinct subterm is rewritten
    at most once per process. *)
val simplify : Expr.t -> Expr.t

(** [lower e] recursively replaces signed division and remainder with an
    unsigned lowering (matching {!Expr.eval_binop} exactly, including the
    division-by-zero cases) so downstream bit blasting only needs unsigned
    circuits. *)
val lower : Expr.t -> Expr.t

(** Rewriter counters: [visits] = un-memoized nodes entered, [rewrites] =
    rule applications, [memo_hits] = calls answered from the memo. *)
type rw_stats = { mutable visits : int; mutable rewrites : int; mutable memo_hits : int }

(** Snapshot of the process-wide counters. *)
val stats : unit -> rw_stats

val reset_stats : unit -> unit

(** Enable/disable the global memo (default enabled).  Disabling also
    clears it; used by benchmarks to A/B the memoized rewriter against
    the plain fixpoint walk. *)
val set_memo : bool -> unit

(** Number of entries currently memoized. *)
val memo_size : unit -> int

(** Drop all memoized results (e.g. alongside {!Solver.clear_caches}). *)
val clear_memo : unit -> unit
