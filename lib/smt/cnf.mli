(** Bit blasting of bit-vector expressions to CNF over a {!Sat} instance.

    Each expression translates to a vector of SAT literals (least
    significant bit first); translations are memoized per context so shared
    subterms share circuitry.  A context either accumulates hard
    assertions for one satisfiability query ({!assert_expr} + {!solve}),
    or serves as a persistent incremental instance: {!activate} blasts
    each constraint once behind an activation literal, and
    {!solve_activated} turns an arbitrary subset of the blasted
    constraints on per query while retaining everything the CDCL core
    learned in earlier queries.  Per-query search is relevance-restricted
    to the transitive cone of the activated constraints (tracked at
    translation time), so query cost scales with the query, not with the
    accumulated instance. *)

type ctx

val create : unit -> ctx

(** Assert that a width-1 expression is true.  Signed division/remainder
    are lowered automatically via {!Simplify.lower}. *)
val assert_expr : ctx -> Expr.t -> unit

(** [activate ctx e] returns the activation literal guarding constraint
    [e] (width 1; lowered automatically), blasting [e] into the instance
    on first sight — the clause group only binds when the constraint is
    queried through {!solve_activated}.  The [bool] is [true] when the
    group was newly translated, [false] on a cross-query reuse hit. *)
val activate : ctx -> Expr.t -> int * bool

val solve : ctx -> Sat.result

(** Decide the conjunction of previously {!activate}d constraints:
    assumes their activation literals and restricts CDCL branching to the
    union of their translation cones.  Learned clauses, activities and
    phases persist to the next call; see {!Sat.solve_with_assumptions}.
    Raises [Invalid_argument] if a constraint was never activated. *)
val solve_activated : ctx -> Expr.t list -> Sat.result

(** Monotone clause count of the underlying instance (for retirement
    policies bounding persistent-instance growth). *)
val num_clauses : ctx -> int

(** Number of activated constraint groups. *)
val num_groups : ctx -> int

(** Counters of the underlying {!Sat} instance. *)
val sat_stats : ctx -> Sat.stats

(** [false] when the instance has derived a root-level contradiction (a
    bug for purely activation-guarded use, where the hard clause set is
    always satisfiable). *)
val is_ok : ctx -> bool

(** Read back the value of symbol [id] from the satisfying assignment of
    the last {!solve}; [None] if the symbol never appeared. *)
val sym_value : ctx -> int -> int64 option

(** Ids of all symbols mentioned in asserted constraints. *)
val sym_ids : ctx -> int list
