(* Bit blasting of bit-vector expressions to CNF over a {!Sat} instance.

   Each expression translates to a vector of SAT literals, least
   significant bit first.  Translations are memoized per context, so shared
   subterms produce shared circuitry.  Signed division/remainder must be
   lowered first (see {!Simplify.lower}); the translation here only
   implements unsigned arithmetic.

   A context can be used one-shot ([assert_expr] + [solve], one query) or
   persistently: [activate] blasts a constraint once, keyed on its
   hashcons id, and guards its root assertion behind a fresh activation
   literal so it only binds when that literal is assumed.  The gate
   clauses themselves are definitional (always satisfiable), so a
   persistent instance is a growing library of translated circuits from
   which [solve_with_assumptions] switches an arbitrary subset on per
   query — a constraint already blasted contributes zero new clauses on
   re-query, and everything the CDCL core learned earlier is retained. *)

(* Cone (dependency) tracking.  Per translated node — an expression, a
   shared division circuit, or an activation group — we record which SAT
   variables its own gates allocated ([vars]) and which previously
   translated nodes it references ([refs], by dep id).  The transitive
   closure of a group's dep record is exactly the set of variables its
   constraint can depend on; [solve_activated] hands that cone to
   {!Sat.begin_marks} so the search never branches outside it.  Without
   the restriction a persistent instance must assign {e every} variable —
   including circuitry of groups that are switched off — making query
   cost grow with instance size instead of query size.

   Dep records live in a dense array; every translated node is known by
   its index, so the per-query cone walk is pure array traversal (a
   stamped visited array, no hashing).  Only first-time translation pays
   hashtable costs. *)
type dep = {
  dvars : int array;
  drefs : int array;
  dclo : int; (* clause-arena range emitted while this node's frame *)
  dchi : int; (* was open (nested frames included: all in the cone) *)
}

type frame = { mutable fvars : int list; mutable frefs : int list; fclo : int }

type ctx = {
  sat : Sat.t;
  true_lit : int;
  cache : (int, int array * int) Hashtbl.t;
    (* hashcons id -> literal per bit, dep index *)
  sym_bits : (int, int array) Hashtbl.t; (* sym id -> SAT var per bit *)
  divmod_cache : (int * int, int array * int array * int) Hashtbl.t;
    (* (a id, b id) -> quotient bits, remainder bits, dep index *)
  groups : (int, int * int) Hashtbl.t;
    (* constraint hashcons id -> activation literal, dep index *)
  mutable deps : dep array; (* dense arena of cone records *)
  mutable ndeps : int;
  mutable walked : int array; (* dep index -> last mark generation *)
  mutable mark_gen : int;
  mutable frames : frame list; (* open recording frames, innermost first *)
}

let no_dep = { dvars = [||]; drefs = [||]; dclo = 0; dchi = 0 }

let create () =
  let sat = Sat.create () in
  let tv = Sat.new_var sat in
  let true_lit = Sat.lit ~positive:true tv in
  Sat.add_clause sat [ true_lit ];
  {
    sat;
    true_lit;
    cache = Hashtbl.create 256;
    sym_bits = Hashtbl.create 64;
    divmod_cache = Hashtbl.create 16;
    groups = Hashtbl.create 64;
    deps = Array.make 256 no_dep;
    ndeps = 0;
    walked = Array.make 256 0;
    mark_gen = 0;
    frames = [];
  }

let lit_true ctx = ctx.true_lit
let lit_false ctx = ctx.true_lit lxor 1
let const_lit ctx b = if b then lit_true ctx else lit_false ctx
let is_ctrue ctx l = l = ctx.true_lit
let is_cfalse ctx l = l = ctx.true_lit lxor 1

let push_frame ctx =
  ctx.frames <-
    { fvars = []; frefs = []; fclo = Sat.num_clauses ctx.sat } :: ctx.frames

(* Close the innermost frame into a fresh dense dep slot; returns its
   index. *)
let pop_frame ctx =
  match ctx.frames with
  | f :: rest ->
    ctx.frames <- rest;
    if ctx.ndeps >= Array.length ctx.deps then begin
      let a = Array.make (2 * Array.length ctx.deps) no_dep in
      Array.blit ctx.deps 0 a 0 ctx.ndeps;
      ctx.deps <- a;
      let w = Array.make (2 * Array.length ctx.walked) 0 in
      Array.blit ctx.walked 0 w 0 ctx.ndeps;
      ctx.walked <- w
    end;
    let idx = ctx.ndeps in
    ctx.deps.(idx) <-
      {
        dvars = Array.of_list f.fvars;
        drefs = Array.of_list f.frefs;
        dclo = f.fclo;
        dchi = Sat.num_clauses ctx.sat;
      };
    ctx.ndeps <- idx + 1;
    idx
  | [] -> assert false

(* Record that the current frame's node references dep node [idx]. *)
let note_ref ctx idx =
  match ctx.frames with f :: _ -> f.frefs <- idx :: f.frefs | [] -> ()

let ctx_new_var ctx =
  let v = Sat.new_var ctx.sat in
  (match ctx.frames with f :: _ -> f.fvars <- v :: f.fvars | [] -> ());
  v

let fresh_lit ctx = Sat.lit ~positive:true (ctx_new_var ctx)
let neg l = l lxor 1

(* --- gates ------------------------------------------------------------ *)

let g_and ctx a b =
  if is_cfalse ctx a || is_cfalse ctx b then lit_false ctx
  else if is_ctrue ctx a then b
  else if is_ctrue ctx b then a
  else if a = b then a
  else if a = neg b then lit_false ctx
  else begin
    let o = fresh_lit ctx in
    Sat.add_clause ctx.sat [ neg a; neg b; o ];
    Sat.add_clause ctx.sat [ a; neg o ];
    Sat.add_clause ctx.sat [ b; neg o ];
    o
  end

let g_or ctx a b = neg (g_and ctx (neg a) (neg b))

let g_xor ctx a b =
  if is_cfalse ctx a then b
  else if is_cfalse ctx b then a
  else if is_ctrue ctx a then neg b
  else if is_ctrue ctx b then neg a
  else if a = b then lit_false ctx
  else if a = neg b then lit_true ctx
  else begin
    let o = fresh_lit ctx in
    Sat.add_clause ctx.sat [ neg a; neg b; neg o ];
    Sat.add_clause ctx.sat [ a; b; neg o ];
    Sat.add_clause ctx.sat [ a; neg b; o ];
    Sat.add_clause ctx.sat [ neg a; b; o ];
    o
  end

let g_eqbit ctx a b = neg (g_xor ctx a b)

(* if c then t else e *)
let g_mux ctx c t e =
  if is_ctrue ctx c then t
  else if is_cfalse ctx c then e
  else if t = e then t
  else begin
    let o = fresh_lit ctx in
    Sat.add_clause ctx.sat [ neg c; neg t; o ];
    Sat.add_clause ctx.sat [ neg c; t; neg o ];
    Sat.add_clause ctx.sat [ c; neg e; o ];
    Sat.add_clause ctx.sat [ c; e; neg o ];
    o
  end

(* --- vector circuits ---------------------------------------------------- *)

let vec_const ctx ~width v =
  Array.init width (fun i -> const_lit ctx (Int64.logand (Int64.shift_right_logical v i) 1L = 1L))

let vec_not ctx a =
  ignore ctx;
  Array.map neg a

(* Ripple-carry addition with explicit carry-in literal. *)
let vec_add_carry ctx a b cin =
  let w = Array.length a in
  let out = Array.make w (lit_false ctx) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let x = a.(i) and y = b.(i) in
    let xy = g_xor ctx x y in
    out.(i) <- g_xor ctx xy !carry;
    carry := g_or ctx (g_and ctx x y) (g_and ctx !carry xy)
  done;
  out

let vec_add ctx a b = vec_add_carry ctx a b (lit_false ctx)
let vec_sub ctx a b = vec_add_carry ctx a (vec_not ctx b) (lit_true ctx)
let vec_neg ctx a = vec_add_carry ctx (vec_not ctx a) (vec_const ctx ~width:(Array.length a) 0L) (lit_true ctx)

let vec_mul ctx a b =
  let w = Array.length a in
  let acc = ref (vec_const ctx ~width:w 0L) in
  for i = 0 to w - 1 do
    (* addend = (b << i) AND-masked by a_i, truncated to w bits *)
    let addend =
      Array.init w (fun j -> if j < i then lit_false ctx else g_and ctx a.(i) b.(j - i))
    in
    acc := vec_add ctx !acc addend
  done;
  !acc

(* Unsigned less-than: scan from the most significant bit. *)
let vec_ult ctx a b =
  let w = Array.length a in
  let lt = ref (lit_false ctx) in
  for i = 0 to w - 1 do
    (* invariant: !lt holds a <_[0,i) b *)
    let bit_lt = g_and ctx (neg a.(i)) b.(i) in
    let bit_eq = g_eqbit ctx a.(i) b.(i) in
    lt := g_or ctx bit_lt (g_and ctx bit_eq !lt)
  done;
  !lt

let vec_eq ctx a b =
  let acc = ref (lit_true ctx) in
  Array.iteri (fun i x -> acc := g_and ctx !acc (g_eqbit ctx x b.(i))) a;
  !acc

let flip_msb ctx a =
  ignore ctx;
  let a' = Array.copy a in
  let w = Array.length a' in
  a'.(w - 1) <- neg a'.(w - 1);
  a'

let vec_shift_const ctx a k ~fill =
  ignore ctx;
  let w = Array.length a in
  if k >= w || -k >= w then Array.make w fill
  else
    Array.init w (fun i ->
        if k >= 0 then if i < k then fill else a.(i - k) (* left shift *)
        else if i - k < w then a.(i - k)
        else fill)

(* Barrel shifter.  [dir] is [`Left] or [`Right]; [fill] is the literal
   shifted in.  The shift amount [b] has the same width as [a]; amounts
   >= width yield all-[fill]. *)
let vec_shift ctx a b ~dir ~fill =
  let w = Array.length a in
  let stages = ref [] in
  let k = ref 0 in
  while 1 lsl !k < w do
    stages := !k :: !stages;
    incr k
  done;
  let stages = List.rev !stages in
  let cur = ref (Array.copy a) in
  List.iter
    (fun st ->
      let amount = 1 lsl st in
      let shifted =
        match dir with
        | `Left -> vec_shift_const ctx !cur amount ~fill
        | `Right -> vec_shift_const ctx !cur (-amount) ~fill
      in
      cur := Array.mapi (fun i orig -> g_mux ctx b.(st) shifted.(i) orig) !cur)
    stages;
  (* if any amount bit at position >= log2(w) is set, the result is fill *)
  let too_big = ref (lit_false ctx) in
  for i = 0 to Array.length b - 1 do
    if i >= 62 || 1 lsl i >= w then too_big := g_or ctx !too_big b.(i)
  done;
  Array.map (fun l -> g_mux ctx !too_big fill l) !cur

(* --- expression translation ---------------------------------------------- *)

let sym_vector ctx id w =
  match Hashtbl.find_opt ctx.sym_bits id with
  | Some vars ->
    assert (Array.length vars = w);
    Array.map (fun v -> Sat.lit ~positive:true v) vars
  | None ->
    let vars = Array.init w (fun _ -> ctx_new_var ctx) in
    Hashtbl.replace ctx.sym_bits id vars;
    Array.map (fun v -> Sat.lit ~positive:true v) vars

(* Assert [cond -> (a = b)] bitwise. *)
let imply_vec_eq ctx cond a b =
  Array.iteri
    (fun i x ->
      let e = g_eqbit ctx x b.(i) in
      Sat.add_clause ctx.sat [ neg cond; e ])
    a

let rec translate ctx (e : Expr.t) : int array =
  let id = Expr.id e in
  match Hashtbl.find_opt ctx.cache id with
  | Some (bits, idx) ->
    note_ref ctx idx;
    bits
  | None ->
    push_frame ctx;
    let bits = translate_uncached ctx e in
    let idx = pop_frame ctx in
    Hashtbl.replace ctx.cache id (bits, idx);
    note_ref ctx idx;
    bits

and divmod ctx a b =
  match Hashtbl.find_opt ctx.divmod_cache (Expr.id a, Expr.id b) with
  | Some (q, r, did) ->
    note_ref ctx did;
    (q, r)
  | None ->
    push_frame ctx;
    let w = Expr.width a in
    let av = translate ctx a and bv = translate ctx b in
    let q = Array.init w (fun _ -> fresh_lit ctx) in
    let r = Array.init w (fun _ -> fresh_lit ctx) in
    let bnz = Array.fold_left (fun acc l -> g_or ctx acc l) (lit_false ctx) bv in
    (* b = 0: q = all-ones, r = a (matching Expr.eval_binop) *)
    imply_vec_eq ctx (neg bnz) q (Array.make w (lit_true ctx));
    imply_vec_eq ctx (neg bnz) r av;
    (* b <> 0: a = q*b + r at double width (no wraparound), and r < b *)
    let pad v = Array.append v (Array.make w (lit_false ctx)) in
    let prod = vec_mul ctx (pad q) (pad bv) in
    let sum = vec_add ctx prod (pad r) in
    imply_vec_eq ctx bnz sum (pad av);
    let rlt = vec_ult ctx r bv in
    Sat.add_clause ctx.sat [ neg bnz; rlt ];
    let did = pop_frame ctx in
    Hashtbl.replace ctx.divmod_cache (Expr.id a, Expr.id b) (q, r, did);
    note_ref ctx did;
    (q, r)

and translate_uncached ctx (e : Expr.t) : int array =
  match e.Expr.node with
  | Expr.Const { width; value } -> vec_const ctx ~width value
  | Expr.Sym { id; width; _ } -> sym_vector ctx id width
  | Expr.Unop (Expr.Not, e1) -> vec_not ctx (translate ctx e1)
  | Expr.Unop (Expr.Neg, e1) -> vec_neg ctx (translate ctx e1)
  | Expr.Binop (op, a, b) -> translate_binop ctx op a b
  | Expr.Ite (c, a, b) ->
    let cv = translate ctx c in
    let av = translate ctx a and bv = translate ctx b in
    Array.mapi (fun i x -> g_mux ctx cv.(0) x bv.(i)) av
  | Expr.Extract { e = e1; off; len } ->
    let v = translate ctx e1 in
    Array.sub v off len
  | Expr.Zext (e1, w) ->
    let v = translate ctx e1 in
    Array.append v (Array.make (w - Array.length v) (lit_false ctx))
  | Expr.Sext (e1, w) ->
    let v = translate ctx e1 in
    let msb = v.(Array.length v - 1) in
    Array.append v (Array.make (w - Array.length v) msb)

and translate_binop ctx op a b =
  let bin f =
    let av = translate ctx a and bv = translate ctx b in
    f av bv
  in
  match op with
  | Expr.Add -> bin (vec_add ctx)
  | Expr.Sub -> bin (vec_sub ctx)
  | Expr.Mul -> bin (vec_mul ctx)
  | Expr.Udiv -> fst (divmod ctx a b)
  | Expr.Urem -> snd (divmod ctx a b)
  | Expr.Sdiv | Expr.Srem ->
    invalid_arg "Cnf.translate: signed div/rem must be lowered first (Simplify.lower)"
  | Expr.And -> bin (fun av bv -> Array.mapi (fun i x -> g_and ctx x bv.(i)) av)
  | Expr.Or -> bin (fun av bv -> Array.mapi (fun i x -> g_or ctx x bv.(i)) av)
  | Expr.Xor -> bin (fun av bv -> Array.mapi (fun i x -> g_xor ctx x bv.(i)) av)
  | Expr.Shl -> bin (fun av bv -> vec_shift ctx av bv ~dir:`Left ~fill:(lit_false ctx))
  | Expr.Lshr -> bin (fun av bv -> vec_shift ctx av bv ~dir:`Right ~fill:(lit_false ctx))
  | Expr.Ashr ->
    bin (fun av bv ->
        let msb = av.(Array.length av - 1) in
        vec_shift ctx av bv ~dir:`Right ~fill:msb)
  | Expr.Ult -> bin (fun av bv -> [| vec_ult ctx av bv |])
  | Expr.Ule -> bin (fun av bv -> [| neg (vec_ult ctx bv av) |])
  | Expr.Slt -> bin (fun av bv -> [| vec_ult ctx (flip_msb ctx av) (flip_msb ctx bv) |])
  | Expr.Sle -> bin (fun av bv -> [| neg (vec_ult ctx (flip_msb ctx bv) (flip_msb ctx av)) |])
  | Expr.Eq -> bin (fun av bv -> [| vec_eq ctx av bv |])
  | Expr.Concat -> bin (fun av bv -> Array.append bv av)

(* Assert that a width-1 expression is true. *)
let assert_expr ctx e =
  let e = Simplify.lower e in
  assert (Expr.width e = 1);
  let bits = translate ctx e in
  Sat.add_clause ctx.sat [ bits.(0) ]

(* Activation-guarded assertion for persistent contexts: translate [e]
   (hitting the cross-query translation cache) and add the single guarded
   clause [not a \/ root], inert until [a] is assumed.  Keyed on the
   pre-lowering hashcons id, since that is what re-occurring constraints
   present.  Returns the activation literal and whether the group was
   newly blasted. *)
let activate ctx e =
  match Hashtbl.find_opt ctx.groups (Expr.id e) with
  | Some (a, _) -> (a, false)
  | None ->
    let lowered = Simplify.lower e in
    assert (Expr.width lowered = 1);
    push_frame ctx;
    let bits = translate ctx lowered in
    let a = fresh_lit ctx in
    (* the guard clause must close before the frame does, so it lands in
       the group's clause range and gets marked with the cone *)
    Sat.add_clause ctx.sat [ neg a; bits.(0) ];
    let did = pop_frame ctx in
    Hashtbl.replace ctx.groups (Expr.id e) (a, did);
    (a, true)

let solve ctx = Sat.solve ctx.sat

(* Mark the transitive cone of dep node [idx] as relevant in the SAT
   core.  Pure array traversal: the visited stamp lives in a dense array
   indexed by dep slot, so re-marking on every query stays cheap. *)
let rec mark_dep ctx idx =
  if ctx.walked.(idx) <> ctx.mark_gen then begin
    ctx.walked.(idx) <- ctx.mark_gen;
    let d = ctx.deps.(idx) in
    Array.iter (Sat.mark_var ctx.sat) d.dvars;
    for ci = d.dclo to d.dchi - 1 do
      Sat.mark_clause ctx.sat ci
    done;
    Array.iter (mark_dep ctx) d.drefs
  end

(* Query the conjunction of previously {!activate}d constraints: assume
   their activation literals and restrict branching to the union of their
   cones (every other variable in the instance belongs to circuitry the
   query cannot depend on — switched-off groups stay satisfiable with
   their activation literal false). *)
let solve_activated ctx es =
  let gs =
    List.map
      (fun e ->
        match Hashtbl.find_opt ctx.groups (Expr.id e) with
        | Some g -> g
        | None -> invalid_arg "Cnf.solve_activated: constraint not activated")
      es
  in
  Sat.begin_marks ctx.sat;
  ctx.mark_gen <- ctx.mark_gen + 1;
  Sat.mark_var ctx.sat (Sat.var_of_lit ctx.true_lit);
  List.iter
    (fun (a, did) ->
      Sat.mark_var ctx.sat (Sat.var_of_lit a);
      mark_dep ctx did)
    gs;
  Sat.solve_with_assumptions ctx.sat (List.map fst gs)
let num_clauses ctx = Sat.num_clauses ctx.sat
let num_groups ctx = Hashtbl.length ctx.groups
let sat_stats ctx = Sat.stats ctx.sat
let is_ok ctx = Sat.is_ok ctx.sat

(* Read back the value of symbol [id] (width [w]) from the satisfying
   assignment; returns [None] if the symbol never appeared in a constraint. *)
let sym_value ctx id =
  match Hashtbl.find_opt ctx.sym_bits id with
  | None -> None
  | Some vars ->
    let v = ref 0L in
    Array.iteri
      (fun i var -> if Sat.value ctx.sat var then v := Int64.logor !v (Int64.shift_left 1L i))
      vars;
    Some !v

let sym_ids ctx = Hashtbl.fold (fun id _ acc -> id :: acc) ctx.sym_bits []
