(** Canonicalizing rewriter for bit-vector expressions. *)

(** [simplify e] applies constant folding, algebraic identities, and
    commutative-operand normalization bottom-up, preserving the concrete
    semantics of {!Expr.eval} exactly. *)
val simplify : Expr.t -> Expr.t

(** [lower e] recursively replaces signed division and remainder with an
    unsigned lowering (matching {!Expr.eval_binop} exactly, including the
    division-by-zero cases) so downstream bit blasting only needs unsigned
    circuits. *)
val lower : Expr.t -> Expr.t
