(** A CDCL SAT solver with two-watched-literal propagation, first-UIP
    learning, VSIDS-style branching, phase saving, and Luby restarts.

    Literal encoding: variable [v] (0-based, allocated by {!new_var}) has
    positive literal [2*v] and negative literal [2*v + 1]; [l lxor 1]
    negates a literal. *)

type t

type result = Satisfiable | Unsatisfiable

val create : unit -> t

(** Allocate a new variable and return its index. *)
val new_var : t -> int

(** [lit ~positive v] is the literal for variable [v]. *)
val lit : positive:bool -> int -> int

val var_of_lit : int -> int

(** [lit_sign l] is [true] for positive literals. *)
val lit_sign : int -> bool

(** Add a problem clause (list of literals).  Must be called before
    {!solve}; an empty clause makes the instance unsatisfiable. *)
val add_clause : t -> int list -> unit

val solve : t -> result

(** [value s v] is the value of variable [v] in the satisfying assignment
    found by the last {!solve} call ([false] if unassigned). *)
val value : t -> int -> bool

(** [(conflicts, decisions, propagations)] counters. *)
val stats : t -> int * int * int
