(** A satisfying assignment: symbol id -> concrete value. *)

type t

val empty : t
val add : int -> int64 -> t -> t
val get : t -> int -> int64 option
val bindings : t -> (int * int64) list
val of_bindings : (int * int64) list -> t

(** Evaluate an expression under the model; unbound symbols read as 0. *)
val eval : t -> Expr.t -> int64

(** [satisfies m cs] is true when every constraint in [cs] evaluates to
    true under [m] (unbound symbols read as zero). *)
val satisfies : t -> Expr.t list -> bool

val pp : Format.formatter -> t -> unit
