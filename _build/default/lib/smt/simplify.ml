(* Canonicalizing rewriter for bit-vector expressions.

   The smart constructors in {!Expr} already fold constants; this module
   adds algebraic identities, normalizes commutative operands (constants
   to the right), and lowers signed division/remainder to unsigned
   operations so the bit blaster only handles unsigned arithmetic.

   The rewriter is bottom-up and memoized; rules are applied to a fixpoint
   at each node (each rule strictly decreases a well-founded measure, so
   this terminates). *)

open Expr

let is_zero e = match e with Const { value = 0L; _ } -> true | _ -> false
let is_ones e = match e with Const { width; value } -> value = mask width | _ -> false
let is_one e = match e with Const { value = 1L; _ } -> true | _ -> false

let commutative = function
  | Add | Mul | And | Or | Xor | Eq -> true
  | Sub | Udiv | Urem | Sdiv | Srem | Shl | Lshr | Ashr | Ult | Ule | Slt | Sle | Concat ->
    false

(* Total order used to canonicalize commutative operands: constants sort
   last so that the constant ends up on the right. *)
let rank = function
  | Const _ -> 2
  | Sym _ -> 0
  | Unop _ | Binop _ | Ite _ | Extract _ | Zext _ | Sext _ -> 1

let operand_order a b =
  let c = compare (rank a) (rank b) in
  if c <> 0 then c else compare a b

let rewrite_binop op a b =
  let w = Expr.width a in
  match (op, a, b) with
  (* additive identities *)
  | Add, e, z when is_zero z -> Some e
  | Sub, e, z when is_zero z -> Some e
  | Sub, a, b when a = b -> Some (const ~width:w 0L)
  (* multiplicative identities *)
  | Mul, _, z when is_zero z -> Some (const ~width:w 0L)
  | Mul, e, o when is_one o -> Some e
  | Udiv, e, o when is_one o -> Some e
  | Urem, _, o when is_one o -> Some (const ~width:w 0L)
  (* bitwise identities *)
  | And, _, z when is_zero z -> Some (const ~width:w 0L)
  | And, e, o when is_ones o -> Some e
  | And, a, b when a = b -> Some a
  | Or, e, z when is_zero z -> Some e
  | Or, _, o when is_ones o -> Some (const ~width:w (mask w))
  | Or, a, b when a = b -> Some a
  | Xor, e, z when is_zero z -> Some e
  | Xor, a, b when a = b -> Some (const ~width:w 0L)
  | Xor, e, o when is_ones o -> Some (unop Not e)
  (* shifts by zero *)
  | (Shl | Lshr | Ashr), e, z when is_zero z -> Some e
  (* reflexive comparisons *)
  | Eq, a, b when a = b -> Some true_
  | Ult, a, b when a = b -> Some false_
  | Ule, a, b when a = b -> Some true_
  | Slt, a, b when a = b -> Some false_
  | Sle, a, b when a = b -> Some true_
  (* unsigned bounds *)
  | Ult, _, z when is_zero z -> Some false_
  | Ule, z, _ when is_zero z -> Some true_
  | Ule, _, o when is_ones o -> Some true_
  | Ult, z, b when is_zero z -> Some (ne b (const ~width:(Expr.width b) 0L))
  (* canonical equality forms feed path-condition substitution *)
  | Ule, e, z when is_zero z -> Some (eq e z)
  | Ult, e, o when is_one o -> Some (eq e (const ~width:w 0L))
  (* eq against boolean constants collapses to the operand or its negation *)
  | Eq, e, o when Expr.width e = 1 && is_one o -> Some e
  | Eq, e, z when Expr.width e = 1 && is_zero z -> Some (unop Not e)
  (* push equalities and unsigned comparisons through zero-extension:
     keeps formulas narrow and exposes [sym = const] equalities for
     path-condition substitution *)
  | Eq, Zext (e, _), Const { width = _; value } ->
    let we = Expr.width e in
    if truncate we value = value then Some (eq e (const ~width:we value)) else Some false_
  | Eq, Sext (e, _), Const { width = wc; value } ->
    let we = Expr.width e in
    let back = truncate we value in
    if truncate wc (to_signed we back) = value then Some (eq e (const ~width:we back))
    else Some false_
  | Eq, Unop (Not, e), Const { width = wc; value } ->
    Some (eq e (const ~width:wc (Int64.lognot value)))
  | Eq, Binop (Add, x, Const { width = wc; value = k }), Const { value = c; _ } ->
    Some (eq x (const ~width:wc (Int64.sub c k)))
  | Eq, Binop (Sub, x, Const { width = wc; value = k }), Const { value = c; _ } ->
    Some (eq x (const ~width:wc (Int64.add c k)))
  | Ult, Zext (e, _), Const { value; _ } ->
    let we = Expr.width e in
    if ucompare value (mask we) > 0 then Some true_
    else Some (ult e (const ~width:we value))
  | Ult, Const { value; _ }, Zext (e, _) ->
    let we = Expr.width e in
    if ucompare value (mask we) >= 0 then Some false_
    else Some (ult (const ~width:we value) e)
  | Ule, Zext (e, _), Const { value; _ } ->
    let we = Expr.width e in
    if ucompare value (mask we) >= 0 then Some true_
    else Some (ule e (const ~width:we value))
  | Ule, Const { value; _ }, Zext (e, _) ->
    let we = Expr.width e in
    if ucompare value (mask we) > 0 then Some false_
    else Some (ule (const ~width:we value) e)
  | Eq, Zext (a, _), Zext (b, _) when Expr.width a = Expr.width b -> Some (eq a b)
  | Ult, Zext (a, _), Zext (b, _) when Expr.width a = Expr.width b -> Some (ult a b)
  | Ule, Zext (a, _), Zext (b, _) when Expr.width a = Expr.width b -> Some (ule a b)
  (* x + x = 2x is not smaller; skip.  (x - c) etc. left to folding. *)
  | _ -> None

let rewrite_ite c a b =
  match (c, a, b) with
  | Unop (Not, c'), a, b -> Some (ite c' b a)
  (* ite c 1 0 = c ; ite c 0 1 = !c  (width-1 only) *)
  | c, o, z when Expr.width a = 1 && is_one o && is_zero z -> Some c
  | c, z, o when Expr.width a = 1 && is_zero z && is_one o -> Some (unop Not c)
  | _ -> None

(* Lower signed division and remainder to unsigned equivalents so that the
   CNF translation only needs unsigned circuits.  The lowering matches
   {!Expr.eval_binop} exactly, including division by zero:
   [sdiv x 0 = all-ones] and [srem x 0 = x]. *)
let lower_sdiv a b =
  let w = Expr.width a in
  let zero = const ~width:w 0L in
  let abs e = ite (slt e zero) (unop Neg e) e in
  let q = binop Udiv (abs a) (abs b) in
  let opposite_signs = binop Xor (slt a zero) (slt b zero) in
  ite (eq b zero) (const ~width:w (mask w)) (ite opposite_signs (unop Neg q) q)

let lower_srem a b =
  let w = Expr.width a in
  let zero = const ~width:w 0L in
  let abs e = ite (slt e zero) (unop Neg e) e in
  let r = binop Urem (abs a) (abs b) in
  ite (eq b zero) a (ite (slt a zero) (unop Neg r) r)

let rec simplify e =
  match e with
  | Const _ | Sym _ -> e
  | Unop (op, e1) -> unop op (simplify e1)
  | Binop (op, a, b) ->
    let a = simplify a and b = simplify b in
    let a, b = if commutative op && operand_order a b > 0 then (b, a) else (a, b) in
    let folded = binop op a b in
    (match folded with
    | Binop (op', a', b') -> (
      match rewrite_binop op' a' b' with Some e' -> simplify e' | None -> folded)
    | other -> other)
  | Ite (c, a, b) ->
    let c = simplify c and a = simplify a and b = simplify b in
    let folded = ite c a b in
    (match folded with
    | Ite (c', a', b') -> (
      match rewrite_ite c' a' b' with Some e' -> simplify e' | None -> folded)
    | other -> other)
  | Extract { e = e1; off; len } -> extract (simplify e1) ~off ~len
  | Zext (e1, w) -> zext (simplify e1) w
  | Sext (e1, w) -> sext (simplify e1) w

(* Recursively replace Sdiv/Srem with their unsigned lowering; used by the
   CNF translation. *)
let rec lower e =
  match e with
  | Const _ | Sym _ -> e
  | Unop (op, e1) -> unop op (lower e1)
  | Binop (Sdiv, a, b) -> lower_sdiv (lower a) (lower b)
  | Binop (Srem, a, b) -> lower_srem (lower a) (lower b)
  | Binop (op, a, b) -> binop op (lower a) (lower b)
  | Ite (c, a, b) -> ite (lower c) (lower a) (lower b)
  | Extract { e = e1; off; len } -> extract (lower e1) ~off ~len
  | Zext (e1, w) -> zext (lower e1) w
  | Sext (e1, w) -> sext (lower e1) w
