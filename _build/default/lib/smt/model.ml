(* A satisfying assignment: symbol id -> concrete value.  Symbols absent
   from the model are unconstrained and default to zero when evaluated. *)

module Imap = Map.Make (Int)

type t = int64 Imap.t

let empty = Imap.empty
let add id v m = Imap.add id v m
let get m id = Imap.find_opt id m
let bindings m = Imap.bindings m
let of_bindings l = List.fold_left (fun m (id, v) -> Imap.add id v m) Imap.empty l

let eval m e = Expr.eval (fun id -> Imap.find_opt id m) e

(* A model satisfies a constraint set when every constraint evaluates to
   true under it (unbound symbols read as zero). *)
let satisfies m constraints = List.for_all (fun c -> eval m c = 1L) constraints

let pp fmt m =
  Format.fprintf fmt "{";
  Imap.iter (fun id v -> Format.fprintf fmt " v%d=%Lu" id v) m;
  Format.fprintf fmt " }"
