(** Bit-vector expression terms.

    All values are fixed-width bit vectors with [1 <= width <= 64], stored
    in an [int64] with bits above the width cleared.  Boolean expressions
    are width-1 bit vectors ([0] = false, [1] = true).  The constructors
    below are smart: they perform constant folding and cheap local
    rewrites.  Deeper canonicalization lives in {!Simplify}. *)

type unop =
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv  (** unsigned division; [x udiv 0 = all-ones] (SMT-LIB) *)
  | Urem  (** unsigned remainder; [x urem 0 = x] *)
  | Sdiv  (** signed division, truncating; [x sdiv 0 = all-ones] *)
  | Srem  (** signed remainder (sign of dividend); [x srem 0 = x] *)
  | And
  | Or
  | Xor
  | Shl   (** shift amounts [>= width] yield 0 *)
  | Lshr
  | Ashr
  | Ult   (** comparisons produce width-1 results *)
  | Ule
  | Slt
  | Sle
  | Eq
  | Concat  (** [concat a b] puts [a] in the high bits *)

type t =
  | Const of { width : int; value : int64 }
  | Sym of { id : int; name : string; width : int }
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of { e : t; off : int; len : int }
  | Zext of t * int
  | Sext of t * int

(** Raised when operand widths are inconsistent or out of range. *)
exception Width_error of string

(** [mask w] is a bit mask of the low [w] bits. *)
val mask : int -> int64

(** [truncate w v] clears the bits of [v] above width [w]. *)
val truncate : int -> int64 -> int64

(** [to_signed w v] sign-extends the low [w] bits of [v] to an int64. *)
val to_signed : int -> int64 -> int64

(** Unsigned comparison of two int64 values. *)
val ucompare : int64 -> int64 -> int

(** Bit width of an expression. *)
val width : t -> int

(** [const ~width v] builds a constant, truncating [v] to [width] bits. *)
val const : width:int -> int64 -> t

val of_bool : bool -> t
val true_ : t
val false_ : t
val of_int : width:int -> int -> t

(** Allocate a fresh symbolic variable with a globally unique id. *)
val fresh_sym : ?name:string -> int -> t

(** Build a symbol with a caller-chosen id; used by deterministic replay so
    that a replayed path names the same symbols as the original run. *)
val sym_with_id : id:int -> name:string -> int -> t

val is_const : t -> bool
val const_value : t -> int64 option
val is_true : t -> bool
val is_false : t -> bool

(** Concrete semantics of each operator, used by both the smart
    constructors and {!eval}. *)
val eval_unop : unop -> int -> int64 -> int64

val eval_binop : binop -> int -> int64 -> int64 -> int64

val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val ite : t -> t -> t -> t

(** [extract e ~off ~len] selects bits [off, off+len) of [e] (bit 0 is the
    least significant). *)
val extract : t -> off:int -> len:int -> t

val zext : t -> int -> t
val sext : t -> int -> t

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val concat : t -> t -> t

(** Ids of the symbolic variables occurring in the expression. *)
val syms : t -> int list

(** [substitute pairs e] replaces every occurrence of each [fst] subterm
    with its [snd], bottom-up.  Sound when each pair is an equality
    implied by the context (e.g. the path condition). *)
val substitute : (t * t) list -> t -> t

(** Node count, used by caches and cost heuristics. *)
val size : t -> int

val unop_name : unop -> string
val binop_name : binop -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [eval lookup e] evaluates [e] under the assignment [lookup]; symbols
    for which [lookup] returns [None] take the value [default]
    (default [0L]).  The result is truncated to [width e] bits. *)
val eval : ?default:int64 -> (int -> int64 option) -> t -> int64
