(** Bit blasting of bit-vector expressions to CNF over a {!Sat} instance.

    Each expression translates to a vector of SAT literals (least
    significant bit first); translations are memoized per context so shared
    subterms share circuitry.  A context accumulates constraints for one
    satisfiability query. *)

type ctx

val create : unit -> ctx

(** Assert that a width-1 expression is true.  Signed division/remainder
    are lowered automatically via {!Simplify.lower}. *)
val assert_expr : ctx -> Expr.t -> unit

val solve : ctx -> Sat.result

(** Read back the value of symbol [id] from the satisfying assignment of
    the last {!solve}; [None] if the symbol never appeared. *)
val sym_value : ctx -> int -> int64 option

(** Ids of all symbols mentioned in asserted constraints. *)
val sym_ids : ctx -> int list
