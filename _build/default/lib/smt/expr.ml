(* Bit-vector expression terms.

   All values are fixed-width bit vectors with 1 <= width <= 64, stored in
   an [int64] with bits above the width cleared.  Boolean expressions are
   width-1 bit vectors (0 = false, 1 = true).  Smart constructors perform
   constant folding and cheap local rewrites; deeper canonicalization lives
   in {!Simplify}. *)

type unop =
  | Not  (* bitwise complement *)
  | Neg  (* two's complement negation *)

type binop =
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr
  | Ult
  | Ule
  | Slt
  | Sle
  | Eq
  | Concat

type t =
  | Const of { width : int; value : int64 }
  | Sym of { id : int; name : string; width : int }
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of { e : t; off : int; len : int }
  | Zext of t * int
  | Sext of t * int

exception Width_error of string

let mask width = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 0x1L

let truncate width v = Int64.logand v (mask width)

(* Sign-extend the low [width] bits of [v] to a full int64. *)
let to_signed width v =
  if width >= 64 then v
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift

let rec width = function
  | Const { width; _ } -> width
  | Sym { width; _ } -> width
  | Unop (_, e) -> width e
  | Binop ((Ult | Ule | Slt | Sle | Eq), _, _) -> 1
  | Binop (Concat, a, b) -> width a + width b
  | Binop (_, a, _) -> width a
  | Ite (_, a, _) -> width a
  | Extract { len; _ } -> len
  | Zext (_, w) -> w
  | Sext (_, w) -> w

let check_width w =
  if w < 1 || w > 64 then raise (Width_error (Printf.sprintf "width %d out of [1,64]" w))

let const ~width:w value =
  check_width w;
  Const { width = w; value = truncate w value }

let of_bool b = Const { width = 1; value = (if b then 1L else 0L) }
let true_ = of_bool true
let false_ = of_bool false
let of_int ~width:w v = const ~width:w (Int64.of_int v)

let sym_counter = ref 0

let fresh_sym ?(name = "v") w =
  check_width w;
  incr sym_counter;
  Sym { id = !sym_counter; name; width = w }

(* Deterministic symbol creation for replay: the caller supplies the id. *)
let sym_with_id ~id ~name w =
  check_width w;
  if id > !sym_counter then sym_counter := id;
  Sym { id; name; width = w }

let is_const = function Const _ -> true | _ -> false
let const_value = function Const { value; _ } -> Some value | _ -> None

let is_true = function Const { width = 1; value = 1L } -> true | _ -> false
let is_false = function Const { width = 1; value = 0L } -> true | _ -> false

(* Unsigned comparison of int64 values. *)
let ucompare a b = Int64.unsigned_compare a b

let eval_unop op w v =
  match op with
  | Not -> truncate w (Int64.lognot v)
  | Neg -> truncate w (Int64.neg v)

let eval_binop op w a b =
  match op with
  | Add -> truncate w (Int64.add a b)
  | Sub -> truncate w (Int64.sub a b)
  | Mul -> truncate w (Int64.mul a b)
  | Udiv -> if b = 0L then mask w else truncate w (Int64.unsigned_div a b)
  | Urem -> if b = 0L then a else truncate w (Int64.unsigned_rem a b)
  | Sdiv ->
    if b = 0L then mask w
    else
      let sa = to_signed w a and sb = to_signed w b in
      truncate w (Int64.div sa sb)
  | Srem ->
    if b = 0L then a
    else
      let sa = to_signed w a and sb = to_signed w b in
      truncate w (Int64.rem sa sb)
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else truncate w (Int64.shift_left a s)
  | Lshr ->
    let s = Int64.to_int b in
    if s >= w || s < 0 then 0L else Int64.shift_right_logical a s
  | Ashr ->
    let s = Int64.to_int b in
    let sa = to_signed w a in
    if s >= w || s < 0 then truncate w (Int64.shift_right sa 63)
    else truncate w (Int64.shift_right sa s)
  | Ult -> if ucompare a b < 0 then 1L else 0L
  | Ule -> if ucompare a b <= 0 then 1L else 0L
  | Slt -> if to_signed w a < to_signed w b then 1L else 0L
  | Sle -> if to_signed w a <= to_signed w b then 1L else 0L
  | Eq -> if a = b then 1L else 0L
  | Concat -> assert false (* needs both widths; handled in [binop] *)

let unop op e =
  match e with
  | Const { width = w; value } -> Const { width = w; value = eval_unop op w value }
  | Unop (Not, inner) when op = Not -> inner
  | Unop (Neg, inner) when op = Neg -> inner
  | _ -> Unop (op, e)

let binop op a b =
  (match op with
  | Concat -> check_width (width a + width b)
  | Eq | Ult | Ule | Slt | Sle | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem | And | Or | Xor
  | Shl | Lshr | Ashr ->
    if width a <> width b then
      raise
        (Width_error
           (Printf.sprintf "binop operand widths differ: %d vs %d" (width a) (width b))));
  match (a, b) with
  | Const { width = wa; value = va }, Const { value = vb; _ } -> (
    match op with
    | Concat ->
      let wb = width b in
      Const { width = wa + wb; value = Int64.logor (Int64.shift_left va wb) vb }
    | Eq | Ult | Ule | Slt | Sle -> Const { width = 1; value = eval_binop op wa va vb }
    | _ -> Const { width = wa; value = eval_binop op wa va vb })
  | _ -> Binop (op, a, b)

let ite c a b =
  if width c <> 1 then raise (Width_error "ite condition must have width 1");
  if width a <> width b then raise (Width_error "ite branches must have equal widths");
  match c with
  | Const { value = 1L; _ } -> a
  | Const { value = 0L; _ } -> b
  | _ -> if a = b then a else Ite (c, a, b)

let extract e ~off ~len =
  let w = width e in
  if off < 0 || len < 1 || off + len > w then
    raise (Width_error (Printf.sprintf "extract [%d,%d) out of width %d" off (off + len) w));
  if off = 0 && len = w then e
  else
    match e with
    | Const { value; _ } -> Const { width = len; value = truncate len (Int64.shift_right_logical value off) }
    | Extract { e = inner; off = off'; _ } -> Extract { e = inner; off = off + off'; len }
    | _ -> Extract { e; off; len }

let zext e w =
  check_width w;
  let we = width e in
  if w < we then raise (Width_error "zext target narrower than operand")
  else if w = we then e
  else
    match e with
    | Const { value; _ } -> Const { width = w; value }
    | _ -> Zext (e, w)

let sext e w =
  check_width w;
  let we = width e in
  if w < we then raise (Width_error "sext target narrower than operand")
  else if w = we then e
  else
    match e with
    | Const { value; _ } -> Const { width = w; value = truncate w (to_signed we value) }
    | _ -> Sext (e, w)

(* Convenience boolean connectives over width-1 vectors. *)
let not_ e = unop Not e
let and_ a b = if is_true a then b else if is_true b then a else binop And a b
let or_ a b = if is_false a then b else if is_false b then a else binop Or a b
let eq a b = binop Eq a b
let ne a b = not_ (eq a b)
let ult a b = binop Ult a b
let ule a b = binop Ule a b
let ugt a b = binop Ult b a
let uge a b = binop Ule b a
let slt a b = binop Slt a b
let sle a b = binop Sle a b
let sgt a b = binop Slt b a
let sge a b = binop Sle b a
let add a b = binop Add a b
let sub a b = binop Sub a b
let mul a b = binop Mul a b
let concat a b = binop Concat a b

(* Support set: ids of symbols occurring in the expression. *)
let rec collect_syms acc = function
  | Const _ -> acc
  | Sym { id; _ } -> if List.mem id acc then acc else id :: acc
  | Unop (_, e) -> collect_syms acc e
  | Binop (_, a, b) -> collect_syms (collect_syms acc a) b
  | Ite (c, a, b) -> collect_syms (collect_syms (collect_syms acc c) a) b
  | Extract { e; _ } -> collect_syms acc e
  | Zext (e, _) -> collect_syms acc e
  | Sext (e, _) -> collect_syms acc e

let syms e = collect_syms [] e

(* Replace every occurrence of the given subterms (bottom-up, so nested
   matches rewrite first).  Used for path-condition-implied equalities:
   when the path condition contains [e = c], any occurrence of [e] may be
   replaced by [c]. *)
let rec substitute pairs e =
  let e' =
    match e with
    | Const _ | Sym _ -> e
    | Unop (op, a) -> unop op (substitute pairs a)
    | Binop (op, a, b) -> binop op (substitute pairs a) (substitute pairs b)
    | Ite (c, a, b) -> ite (substitute pairs c) (substitute pairs a) (substitute pairs b)
    | Extract { e = a; off; len } -> extract (substitute pairs a) ~off ~len
    | Zext (a, w) -> zext (substitute pairs a) w
    | Sext (a, w) -> sext (substitute pairs a) w
  in
  match List.assoc_opt e' pairs with Some r -> r | None -> e'

let rec size = function
  | Const _ | Sym _ -> 1
  | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b
  | Extract { e; _ } -> 1 + size e
  | Zext (e, _) -> 1 + size e
  | Sext (e, _) -> 1 + size e

let unop_name = function Not -> "not" | Neg -> "neg"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Urem -> "urem"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | Ult -> "ult"
  | Ule -> "ule"
  | Slt -> "slt"
  | Sle -> "sle"
  | Eq -> "eq"
  | Concat -> "concat"

let rec pp fmt = function
  | Const { width; value } -> Format.fprintf fmt "%Lu:%d" value width
  | Sym { name; id; width } -> Format.fprintf fmt "%s%d:%d" name id width
  | Unop (op, e) -> Format.fprintf fmt "(%s %a)" (unop_name op) pp e
  | Binop (op, a, b) -> Format.fprintf fmt "(%s %a %a)" (binop_name op) pp a pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | Extract { e; off; len } -> Format.fprintf fmt "(extract %a %d %d)" pp e off len
  | Zext (e, w) -> Format.fprintf fmt "(zext %a %d)" pp e w
  | Sext (e, w) -> Format.fprintf fmt "(sext %a %d)" pp e w

let to_string e = Format.asprintf "%a" pp e

(* Concrete evaluation under an assignment from symbol id to value.
   Unbound symbols evaluate to [default] (0 by default), which matches the
   "counterexample cache" usage where partial models are probed. *)
let rec eval ?(default = 0L) lookup e =
  match e with
  | Const { value; _ } -> value
  | Sym { id; width = w; _ } -> (
    match lookup id with Some v -> truncate w v | None -> truncate w default)
  | Unop (op, e1) -> eval_unop op (width e1) (eval ~default lookup e1)
  | Binop (Concat, a, b) ->
    let wb = width b in
    Int64.logor (Int64.shift_left (eval ~default lookup a) wb) (eval ~default lookup b)
  | Binop (op, a, b) ->
    eval_binop op (width a) (eval ~default lookup a) (eval ~default lookup b)
  | Ite (c, a, b) ->
    if eval ~default lookup c = 1L then eval ~default lookup a else eval ~default lookup b
  | Extract { e = e1; off; len } ->
    truncate len (Int64.shift_right_logical (eval ~default lookup e1) off)
  | Zext (e1, _) -> eval ~default lookup e1
  | Sext (e1, w) -> truncate w (to_signed (width e1) (eval ~default lookup e1))
