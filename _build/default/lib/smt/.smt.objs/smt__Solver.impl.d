lib/smt/solver.ml: Cnf Expr Hashtbl Int List Model Range Sat Set Simplify
