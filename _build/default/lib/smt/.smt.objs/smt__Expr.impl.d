lib/smt/expr.ml: Format Int64 List Printf
