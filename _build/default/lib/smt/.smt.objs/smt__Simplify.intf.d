lib/smt/simplify.mli: Expr
