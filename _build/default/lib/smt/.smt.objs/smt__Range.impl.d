lib/smt/range.ml: Expr Int Int64 List Map
