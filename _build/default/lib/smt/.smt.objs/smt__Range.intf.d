lib/smt/range.mli: Expr Map
