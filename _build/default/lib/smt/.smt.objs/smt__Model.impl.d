lib/smt/model.ml: Expr Format Int List Map
