lib/smt/sat.ml: Array Buffer List
