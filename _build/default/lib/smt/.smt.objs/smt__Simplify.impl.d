lib/smt/simplify.ml: Expr Int64
