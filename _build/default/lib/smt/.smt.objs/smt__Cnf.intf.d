lib/smt/cnf.mli: Expr Sat
