lib/smt/solver.mli: Expr Model
