lib/smt/cnf.ml: Array Expr Hashtbl Int64 List Sat Simplify
