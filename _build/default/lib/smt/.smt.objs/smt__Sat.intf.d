lib/smt/sat.mli:
