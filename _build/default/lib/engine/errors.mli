(** Ways an execution path can end.  Error terminations are the bugs the
    platform reports: memory errors and failed assertions (inherited from
    the KLEE feature set) plus the two hang detectors the paper adds —
    deadlock and the per-path instruction cap (section 7.3.3). *)

type error =
  | Memory_fault of string  (** out-of-bounds, use-after-free, unmapped *)
  | Assert_failed of string
  | Division_by_zero
  | Deadlock                (** all live threads sleeping *)
  | Instruction_limit       (** per-path cap exceeded: suspected hang *)
  | Invalid_op of string    (** engine-level misuse, e.g. infeasible state *)
  | Model_failure of string (** the environment model rejected the call *)

type termination =
  | Exit of int64  (** normal exit with code *)
  | Error of error
  | Pruned         (** infeasible assumption: no test case generated *)

val error_to_string : error -> string
val termination_to_string : termination -> string

(** [true] only for [Error _]. *)
val is_error : termination -> bool
