(* Ways an execution path can end.  Every termination yields a test case;
   error terminations are the bugs Cloud9 reports (memory errors and
   failed assertions inherited from KLEE, plus the two hang detectors the
   paper adds: deadlock, and the per-path instruction cap that exposed the
   memcached UDP infinite loop, section 7.3.3). *)

type error =
  | Memory_fault of string    (* out-of-bounds, use-after-free, unmapped *)
  | Assert_failed of string
  | Division_by_zero
  | Deadlock                  (* all live threads sleeping *)
  | Instruction_limit         (* per-path cap exceeded: suspected hang *)
  | Invalid_op of string      (* e.g. unresolvable symbolic pointer *)
  | Model_failure of string   (* the environment model rejected the call *)

type termination =
  | Exit of int64             (* normal exit with code *)
  | Error of error
  | Pruned                    (* infeasible assumption: no test case generated *)

let error_to_string = function
  | Memory_fault s -> "memory fault: " ^ s
  | Assert_failed m -> "assertion failed: " ^ m
  | Division_by_zero -> "division by zero"
  | Deadlock -> "deadlock: all threads sleeping"
  | Instruction_limit -> "instruction limit exceeded (suspected hang)"
  | Invalid_op s -> "invalid operation: " ^ s
  | Model_failure s -> "environment model failure: " ^ s

let termination_to_string = function
  | Exit code -> Printf.sprintf "exit(%Ld)" code
  | Error e -> error_to_string e
  | Pruned -> "pruned (infeasible assumption)"

let is_error = function Exit _ | Pruned -> false | Error _ -> true
