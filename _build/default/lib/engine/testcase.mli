(** Test-case generation: solving a terminated path's condition yields
    concrete bytes for every symbolic input — a regular test driving the
    program down that exact path. *)

type t = {
  termination : Errors.termination;
  inputs : (string * string) list;  (** input name -> concrete bytes *)
  path : Path.t;
  steps : int;
  pc_size : int;  (** number of path constraints *)
}

(** Solve the state's path condition and materialize each named input.
    [None] only if the path condition is unsatisfiable (an engine bug:
    explored paths are feasible by construction). *)
val of_state : Smt.Solver.t -> 'env State.t -> Errors.termination -> t option

val pp_bytes : Format.formatter -> string -> unit
val pp : Format.formatter -> t -> unit
