(* Test-case generation: when a path terminates, solving its path
   condition yields concrete bytes for every symbolic input, i.e. a
   regular test that drives the program down that exact path. *)

type t = {
  termination : Errors.termination;
  inputs : (string * string) list; (* input name -> concrete bytes *)
  path : Path.t;
  steps : int;
  pc_size : int; (* number of path constraints *)
}

let bytes_of_model model ids =
  String.init (List.length ids) (fun i ->
      let id = List.nth ids i in
      match Smt.Model.get model id with
      | Some v -> Char.chr (Int64.to_int v land 0xff)
      | None -> '\000')

(* Solve the state's path condition and materialize each named input.
   Returns [None] only if the path condition is unsatisfiable, which
   would indicate an engine bug (every explored path is feasible). *)
let of_state solver (st : 'env State.t) termination =
  match Smt.Solver.get_model solver st.State.pc with
  | Smt.Solver.Unsat -> None
  | Smt.Solver.Sat model ->
    Some
      {
        termination;
        inputs = List.map (fun (name, ids) -> (name, bytes_of_model model ids)) st.State.sym_inputs;
        path = State.path st;
        steps = st.State.steps;
        pc_size = List.length st.State.pc;
      }

let pp_bytes fmt s =
  String.iter
    (fun c ->
      if c >= ' ' && c < '\127' then Format.fprintf fmt "%c" c
      else Format.fprintf fmt "\\x%02x" (Char.code c))
    s

let pp fmt t =
  Format.fprintf fmt "%s after %d steps, %d constraints@."
    (Errors.termination_to_string t.termination)
    t.steps t.pc_size;
  List.iter (fun (name, bytes) -> Format.fprintf fmt "  %s = \"%a\"@." name pp_bytes bytes) t.inputs
