lib/engine/testcase.mli: Errors Format Path Smt State
