lib/engine/testcase.ml: Char Errors Format Int64 List Path Smt State String
