lib/engine/errors.ml: Printf
