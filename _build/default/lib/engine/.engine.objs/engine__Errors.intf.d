lib/engine/errors.mli:
