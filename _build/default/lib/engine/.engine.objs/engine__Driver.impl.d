lib/engine/driver.ml: Cvm Errors Executor List Option Searcher Smt State Testcase
