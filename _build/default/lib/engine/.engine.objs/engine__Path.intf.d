lib/engine/path.mli:
