lib/engine/executor.ml: Bytes Char Cvm Errors Int64 List Option Path Printf Smt State String
