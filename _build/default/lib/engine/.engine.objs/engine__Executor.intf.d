lib/engine/executor.mli: Bytes Errors Smt State
