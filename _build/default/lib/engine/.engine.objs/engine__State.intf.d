lib/engine/state.mli: Cvm Map Path Smt
