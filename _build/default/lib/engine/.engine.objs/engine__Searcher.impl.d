lib/engine/searcher.ml: Array Hashtbl List Path Queue Random State
