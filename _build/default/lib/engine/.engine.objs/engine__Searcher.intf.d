lib/engine/searcher.mli: Path Random State
