lib/engine/state.ml: Array Cvm Int Int64 List Map Path Printf Smt
