lib/engine/path.ml: List Printf String
