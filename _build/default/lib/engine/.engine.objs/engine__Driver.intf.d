lib/engine/driver.mli: Cvm Executor Searcher Smt State Testcase
