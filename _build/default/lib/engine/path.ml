(* Path encoding: the sequence of nondeterministic choices that leads from
   the execution-tree root to a node.  This is the currency of Cloud9's
   job transfer (paper section 3.2): a candidate node is shipped to
   another worker as its root path and "replayed" there.

   A choice records which successor was taken at a fork point:
   - [Branch b]: a symbolic conditional branch (or a checked operation such
     as division-by-zero, encoded as the "no fault" branch being [true]);
   - [Sched i]: the i-th runnable thread was scheduled;
   - [Sys i]: the i-th variant of a forking system call (fault injection,
     packet fragmentation, symbolic ioctls, ...). *)

type choice = Branch of bool | Sched of int | Sys of int

(* Root-first list of choices. *)
type t = choice list

let choice_to_string = function
  | Branch true -> "T"
  | Branch false -> "F"
  | Sched i -> Printf.sprintf "s%d" i
  | Sys i -> Printf.sprintf "y%d" i

let to_string p = String.concat "" (List.map choice_to_string p)

let compare_choice (a : choice) (b : choice) = compare a b

let compare (a : t) (b : t) = compare a b

(* [is_prefix p q] holds when [p] is a prefix of [q]. *)
let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | c1 :: p', c2 :: q' -> c1 = c2 && is_prefix p' q'

let length = List.length

(* Number of choices shared at the front of two paths. *)
let rec common_prefix_len p q =
  match (p, q) with
  | c1 :: p', c2 :: q' when c1 = c2 -> 1 + common_prefix_len p' q'
  | _ -> 0

(* Serialized size in bytes of a path when encoded one byte per choice
   (used by the transfer-encoding ablation bench). *)
let encoded_size p = List.length p
