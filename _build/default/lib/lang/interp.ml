(* A reference interpreter for the scalar fragment of mini-C: direct
   concrete evaluation over the *typed* AST, independent of the compiler,
   the bytecode VM, and the engine.

   Its purpose is differential testing: for any concrete program in the
   supported fragment, [run unit] must agree with compiling the program
   and executing it symbolically (which, absent symbolic data, follows a
   single path).  The supported fragment excludes pointers, arrays, and
   system calls — those have dedicated unit tests — but covers the full
   arithmetic, conversion, control-flow, and function-call semantics where
   compiler bugs hide.

   Arithmetic follows the same modular semantics as {!Smt.Expr.eval_binop}:
   values are stored as the sign-agnostic low [bits] of an int64. *)

open Ast

exception Unsupported of string

type value = { v : int64; vty : ty }

let truncate_ty ty v =
  match ty with
  | Int { bits; _ } -> Smt.Expr.truncate bits v
  | Ptr _ -> v
  | Arr _ -> raise (Unsupported "array value")

let mk ty v = { v = truncate_ty ty v; vty = ty }

type frame = (string, value) Hashtbl.t

type env = {
  funcs : (string * tfunc) list;
  mutable budget : int; (* instruction-ish budget to guarantee termination *)
}

exception Halted of int64
exception Returned of value option
exception Break_loop
exception Continue_loop

let spend env =
  env.budget <- env.budget - 1;
  if env.budget <= 0 then raise (Unsupported "interpreter budget exhausted")

let as_bool { v; _ } = v <> 0L

let signed_of { v; vty } =
  match vty with
  | Int { bits; signed = true } -> Smt.Expr.to_signed bits v
  | Int _ -> v
  | Ptr _ | Arr _ -> v

let rec eval env (frame : frame) (e : texpr) : value =
  spend env;
  match e.node with
  | Tnum v -> mk e.ty v
  | Tstr _ -> raise (Unsupported "string literal")
  | Tvar name -> (
    match Hashtbl.find_opt frame name with
    | Some v -> v
    | None -> mk e.ty 0L (* uninitialized scalars read as zero, like registers *))
  | Tbin (op, a, b) -> eval_bin env frame e.ty op a b
  | Tun (op, a) -> (
    let va = eval env frame a in
    match op with
    | Neg -> mk e.ty (Int64.neg va.v)
    | Bnot -> mk e.ty (Int64.lognot va.v)
    | Lnot -> mk e.ty (if as_bool va then 0L else 1L))
  | Tcond (c, a, b) ->
    if as_bool (eval env frame c) then eval env frame a else eval env frame b
  | Tcall (name, args) -> (
    let vargs = List.map (eval env frame) args in
    match call env name vargs with
    | Some v -> v
    | None -> mk e.ty 0L)
  | Tsyscall _ -> raise (Unsupported "syscall")
  | Tderef _ | Taddr _ -> raise (Unsupported "pointer operation")
  | Tcast (ty, inner) ->
    let vi = eval env frame inner in
    (* widening uses the signedness of the source type, as the compiler *)
    let wide =
      match (vi.vty, ty) with
      | Int { bits = fb; signed }, Int { bits = tb; _ } when tb > fb ->
        if signed then Smt.Expr.to_signed fb vi.v else vi.v
      | _ -> vi.v
    in
    mk ty wide

and eval_bin env frame rty op a b =
  match op with
  | Land ->
    let va = eval env frame a in
    mk rty (if as_bool va && as_bool (eval env frame b) then 1L else 0L)
  | Lor ->
    let va = eval env frame a in
    mk rty (if as_bool va || as_bool (eval env frame b) then 1L else 0L)
  | _ -> (
    let va = eval env frame a in
    let vb = eval env frame b in
    let bits = match va.vty with Int { bits; _ } -> bits | Ptr _ -> 64 | Arr _ -> 64 in
    let signed = match va.vty with Int { signed; _ } -> signed | Ptr _ | Arr _ -> false in
    let module E = Smt.Expr in
    let arith eop = mk rty (E.eval_binop eop bits va.v vb.v) in
    match op with
    | Add -> arith E.Add
    | Sub -> arith E.Sub
    | Mul -> arith E.Mul
    | Div ->
      if vb.v = 0L then raise (Unsupported "division by zero")
      else arith (if signed then E.Sdiv else E.Udiv)
    | Rem ->
      if vb.v = 0L then raise (Unsupported "division by zero")
      else arith (if signed then E.Srem else E.Urem)
    | Band -> arith E.And
    | Bor -> arith E.Or
    | Bxor -> arith E.Xor
    | Shl -> arith E.Shl
    | Shr -> arith (if signed then E.Ashr else E.Lshr)
    | Lt -> mk rty (if compare_v signed va vb < 0 then 1L else 0L)
    | Le -> mk rty (if compare_v signed va vb <= 0 then 1L else 0L)
    | Gt -> mk rty (if compare_v signed va vb > 0 then 1L else 0L)
    | Ge -> mk rty (if compare_v signed va vb >= 0 then 1L else 0L)
    | Eq -> mk rty (if va.v = vb.v then 1L else 0L)
    | Ne -> mk rty (if va.v <> vb.v then 1L else 0L)
    | Land | Lor -> assert false)

and compare_v signed a b =
  if signed then compare (signed_of a) (signed_of b) else Smt.Expr.ucompare a.v b.v

and exec env frame (s : tstmt) : unit =
  spend env;
  match s with
  | Tdecl (name, ty, init) ->
    let v = match init with Some e -> eval env frame e | None -> mk ty 0L in
    Hashtbl.replace frame name v
  | Tassign (Lvar name, e) ->
    let v = eval env frame e in
    Hashtbl.replace frame name v
  | Tassign (Lmem _, _) -> raise (Unsupported "store through pointer")
  | Tif (c, then_, else_) ->
    if as_bool (eval env frame c) then exec_block env frame then_
    else exec_block env frame else_
  | Twhile (c, body) ->
    (try
       while as_bool (eval env frame c) do
         spend env;
         try exec_block env frame body with Continue_loop -> ()
       done
     with Break_loop -> ())
  | Tfor (init, c, step, body) ->
    List.iter (exec env frame) init;
    (try
       while as_bool (eval env frame c) do
         spend env;
         (try exec_block env frame body with Continue_loop -> ());
         List.iter (exec env frame) step
       done
     with Break_loop -> ())
  | Treturn None -> raise (Returned None)
  | Treturn (Some e) -> raise (Returned (Some (eval env frame e)))
  | Texpr e ->
    (match e.node with
    | Tcall (name, args) ->
      let vargs = List.map (eval env frame) args in
      ignore (call env name vargs)
    | _ -> ignore (eval env frame e))
  | Tbreak -> raise Break_loop
  | Tcontinue -> raise Continue_loop
  | Tassert (e, msg) -> if not (as_bool (eval env frame e)) then raise (Unsupported ("assert failed: " ^ msg))
  | Thalt e -> raise (Halted (eval env frame e).v)

and exec_block env frame b = List.iter (exec env frame) b

and call env name vargs : value option =
  match List.assoc_opt name env.funcs with
  | None -> raise (Unsupported ("unknown function " ^ name))
  | Some f -> (
    let frame : frame = Hashtbl.create 16 in
    List.iter2 (fun (pname, pty) v -> Hashtbl.replace frame pname (mk pty v.v)) f.tparams vargs;
    try
      exec_block env frame f.tbody;
      (* implicit return *)
      match f.tret with None -> None | Some ty -> Some (mk ty 0L)
    with Returned v -> v)

type outcome = Exit of int64 | Unsupported_feature of string

(* Run a compilation unit from its entry function; [budget] bounds the
   number of evaluation steps (default one million). *)
let run ?(budget = 1_000_000) (cu : comp_unit) : outcome =
  match Typecheck.check_unit cu with
  | exception Type_error msg -> Unsupported_feature ("type error: " ^ msg)
  | tu -> (
    let env = { funcs = List.map (fun f -> (f.tfname, f)) tu.tfuncs; budget } in
    try
      match call env tu.tentry [] with
      | Some v -> Exit v.v
      | None -> Exit 0L
    with
    | Halted code -> Exit code
    | Unsupported msg -> Unsupported_feature msg)
