(* Combinators for writing mini-C programs directly in OCaml.  All target
   programs (lib/targets) are written against this surface; the goal is
   that a program reads close to the C it models.

   Expressions use suffixed operators ([+!], [<!], [==!], ...) to avoid
   clashing with the integer operators of the host program. *)

include Ast

(* --- expressions ----------------------------------------------------------- *)

let n i = Num (Int64.of_int i)
let n64 i = Num i
let chr c = Chr c
let str s = Str s
let v name = Var name
let sizeof_ ty = Sizeof ty

let ( +! ) a b = Bin (Add, a, b)
let ( -! ) a b = Bin (Sub, a, b)
let ( *! ) a b = Bin (Mul, a, b)
let ( /! ) a b = Bin (Div, a, b)
let ( %! ) a b = Bin (Rem, a, b)
let ( &! ) a b = Bin (Band, a, b)
let ( |! ) a b = Bin (Bor, a, b)
let ( ^! ) a b = Bin (Bxor, a, b)
let ( <<! ) a b = Bin (Shl, a, b)
let ( >>! ) a b = Bin (Shr, a, b)
let ( <! ) a b = Bin (Lt, a, b)
let ( <=! ) a b = Bin (Le, a, b)
let ( >! ) a b = Bin (Gt, a, b)
let ( >=! ) a b = Bin (Ge, a, b)
let ( ==! ) a b = Bin (Eq, a, b)
let ( <>! ) a b = Bin (Ne, a, b)
let ( &&! ) a b = Bin (Land, a, b)
let ( ||! ) a b = Bin (Lor, a, b)
let neg e = Un (Neg, e)
let bnot e = Un (Bnot, e)
let not_ e = Un (Lnot, e)
let cond c a b = Cond (c, a, b)
let call name args = Call (name, args)
let syscall num args = Syscall (num, args)
let idx a i = Idx (a, i)
let ( .%() ) a i = Idx (a, i)
let deref p = Deref p
let addr e = AddrOf e
let cast ty e = Cast (ty, e)

(* --- statements -------------------------------------------------------------- *)

let decl name ty init = Decl (name, ty, init)
let decl_arr name elem_ty count = Decl (name, Arr (elem_ty, count), None)
let set lhs rhs = Assign (lhs, rhs)
let ( <-- ) lhs rhs = Assign (lhs, rhs)
let if_ c then_ else_ = If (c, then_, else_)
let when_ c then_ = If (c, then_, [])
let while_ c body = While (c, body)
let for_ init cond step body = For (init, cond, step, body)

(* the common [for (i = 0; i < bound; i = i + 1)] shape *)
let for_range name ~from ~below body =
  For
    ( [ Decl (name, u32, Some from) ],
      Bin (Lt, Var name, below),
      [ Assign (Var name, Bin (Add, Var name, Num 1L)) ],
      body )

let ret e = Return (Some e)
let ret_void = Return None
let expr e = Expr e
let call_void name args = Expr (Call (name, args))
let break_ = Break
let continue_ = Continue
let assert_ e msg = Assert (e, msg)
let halt e = Halt e
let incr_ name = Assign (Var name, Bin (Add, Var name, Num 1L))
let decr_ name = Assign (Var name, Bin (Sub, Var name, Num 1L))

(* --- functions and units --------------------------------------------------------- *)

let fn name params ret body = { fname = name; params; ret; locals_hint = 0; body }

let global ?init name ty = { gname = name; gty = ty; ginit = init }

let cunit ?(globals = []) ~entry funcs = { funcs; globals; entry }

(* Type check and compile to CVM bytecode.
   @raise Ast.Type_error or Cvm.Program.Invalid on malformed programs. *)
let compile = Compile.compile_unit
