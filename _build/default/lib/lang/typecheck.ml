(* Type checking and elaboration of the mini-C AST into the typed
   intermediate form consumed by {!Compile}.

   Elaboration makes every implicit operation explicit:
   - integer conversions become [Tcast] (conversion rule: the common type
     of two integer operands has the wider width; on equal widths,
     unsigned wins — a simplification of C's usual arithmetic conversions,
     without promotion to [int]);
   - array expressions decay to pointers;
   - pointer arithmetic is scaled by the element size here, so the
     compiler only ever sees 64-bit address arithmetic;
   - every declaration is alpha-renamed to a unique name, so the compiler
     can use a flat per-function variable map. *)

open Ast

type fsig = { psig : ty list; rsig : ty option }

type env = {
  funcs : (string * fsig) list;
  globals : (string * ty) list;
  (* scope stack: source name -> (unique name, type) *)
  mutable scopes : (string * (string * ty)) list list;
  mutable renames : int;
  mutable addr_taken : string list;   (* unique names *)
  mutable var_types : (string * ty) list; (* unique names, in decl order *)
  mutable loop_depth : int;
}

let is_int = function Int _ -> true | Ptr _ | Arr _ -> false
let int_bits = function Int { bits; _ } -> bits | Ptr _ | Arr _ -> invalid_arg "int_bits"
let is_signed = function Int { signed; _ } -> signed | Ptr _ | Arr _ -> false

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with Some x -> Some x | None -> go rest)
  in
  go env.scopes

let declare env name ty =
  (match env.scopes with
  | scope :: _ when List.mem_assoc name scope ->
    type_error "variable %s redeclared in the same scope" name
  | _ -> ());
  env.renames <- env.renames + 1;
  let unique = Printf.sprintf "%s.%d" name env.renames in
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, (unique, ty)) :: scope) :: rest
  | [] -> assert false);
  env.var_types <- (unique, ty) :: env.var_types;
  (* arrays always live in memory: using them decays to their address *)
  (match ty with Arr _ -> env.addr_taken <- unique :: env.addr_taken | Int _ | Ptr _ -> ());
  unique

let mark_addr_taken env unique =
  if not (List.mem unique env.addr_taken) then env.addr_taken <- unique :: env.addr_taken

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = match env.scopes with _ :: rest -> env.scopes <- rest | [] -> assert false

(* Common type of two integer operands. *)
let common_int a b =
  let wa = int_bits a and wb = int_bits b in
  if wa = wb then Int { bits = wa; signed = is_signed a && is_signed b }
  else if wa > wb then a
  else b

let cast_to ty e = if e.ty = ty then e else { node = Tcast (ty, e); ty }

(* Implicit conversion on assignment/argument/return positions: any integer
   converts to any integer; pointers must match exactly. *)
let convert ~what ty e =
  if e.ty = ty then e
  else if is_int ty && is_int e.ty then cast_to ty e
  else type_error "%s: cannot convert %s to %s" what (ty_to_string e.ty) (ty_to_string ty)

let u64_of e = cast_to u64 e

(* Scale an index by the element size and add it to a pointer (both as
   64-bit arithmetic), producing a pointer to the element. *)
let ptr_offset ptr elem_ty idx =
  let scaled =
    if sizeof elem_ty = 1 then u64_of idx
    else { node = Tbin (Mul, u64_of idx, { node = Tnum (Int64.of_int (sizeof elem_ty)); ty = u64 }); ty = u64 }
  in
  { node = Tbin (Add, ptr, scaled); ty = Ptr elem_ty }

let rec check_expr env (e : expr) : texpr =
  match e with
  | Num v -> { node = Tnum v; ty = i32 }
  | Chr c -> { node = Tnum (Int64.of_int (Char.code c)); ty = u8 }
  | Str s -> { node = Tstr s; ty = Ptr u8 }
  | Sizeof t -> { node = Tnum (Int64.of_int (sizeof t)); ty = u64 }
  | Var name -> (
    match lookup_var env name with
    | Some (unique, (Arr (elem, _) as _aty)) ->
      (* array decays to pointer to first element *)
      mark_addr_taken env unique;
      { node = Taddr (Lvar unique); ty = Ptr elem }
    | Some (unique, ty) -> { node = Tvar unique; ty }
    | None -> (
      match List.assoc_opt name env.globals with
      | Some (Arr (elem, _)) -> { node = Taddr (Lvar name); ty = Ptr elem }
      | Some ty -> { node = Tvar name; ty }
      | None -> type_error "unknown variable %s" name))
  | Bin (op, a, b) -> check_bin env op a b
  | Un (op, a) -> (
    let ta = check_expr env a in
    match op with
    | Neg | Bnot ->
      if not (is_int ta.ty) then type_error "unary %s on non-integer" "op";
      { node = Tun (op, ta); ty = ta.ty }
    | Lnot ->
      if not (is_int ta.ty || match ta.ty with Ptr _ -> true | _ -> false) then
        type_error "! on non-scalar";
      { node = Tun (Lnot, ta); ty = u8 })
  | Cond (c, a, b) ->
    let tc = check_expr env c in
    let ta = check_expr env a and tb = check_expr env b in
    if is_int ta.ty && is_int tb.ty then
      let ty = common_int ta.ty tb.ty in
      { node = Tcond (tc, cast_to ty ta, cast_to ty tb); ty }
    else if ta.ty = tb.ty then { node = Tcond (tc, ta, tb); ty = ta.ty }
    else type_error "?: branches have incompatible types"
  | Call (name, args) -> (
    match List.assoc_opt name env.funcs with
    | None -> type_error "call to unknown function %s" name
    | Some { psig; rsig } ->
      if List.length args <> List.length psig then
        type_error "%s expects %d arguments, got %d" name (List.length psig)
          (List.length args);
      let targs =
        List.map2 (fun a ty -> convert ~what:("argument of " ^ name) ty (check_expr env a)) args psig
      in
      let ty = match rsig with Some t -> t | None -> u8 (* value unusable; Expr-stmt only *) in
      { node = Tcall (name, targs); ty })
  | Syscall (num, args) ->
    let targs = List.map (fun a ->
        let ta = check_expr env a in
        match ta.ty with
        | Ptr _ -> ta
        | Int _ -> cast_to i64 ta
        | Arr _ -> assert false) args
    in
    { node = Tsyscall (num, targs); ty = i64 }
  | Idx (a, i) -> (
    let ta = check_expr env a in
    let ti = check_expr env i in
    if not (is_int ti.ty) then type_error "array index must be an integer";
    match ta.ty with
    | Ptr elem -> { node = Tderef (ptr_offset ta elem ti); ty = elem }
    | Int _ | Arr _ -> type_error "indexing a non-pointer of type %s" (ty_to_string ta.ty))
  | Deref p -> (
    let tp = check_expr env p in
    match tp.ty with
    | Ptr elem -> { node = Tderef tp; ty = elem }
    | Int _ | Arr _ -> type_error "dereferencing non-pointer of type %s" (ty_to_string tp.ty))
  | AddrOf e1 -> (
    match e1 with
    | Var name -> (
      match lookup_var env name with
      | Some (unique, ty) ->
        mark_addr_taken env unique;
        let pointee = match ty with Arr (elem, _) -> elem | other -> other in
        { node = Taddr (Lvar unique); ty = Ptr pointee }
      | None -> (
        match List.assoc_opt name env.globals with
        | Some ty ->
          let pointee = match ty with Arr (elem, _) -> elem | other -> other in
          { node = Taddr (Lvar name); ty = Ptr pointee }
        | None -> type_error "unknown variable %s" name))
    | Idx (a, i) -> (
      let ta = check_expr env a in
      let ti = check_expr env i in
      match ta.ty with
      | Ptr elem -> ptr_offset ta elem ti
      | Int _ | Arr _ -> type_error "&x[i] on non-pointer")
    | Deref p -> check_expr env p
    | Num _ | Chr _ | Str _ | Bin _ | Un _ | Cond _ | Call _ | Syscall _ | AddrOf _
    | Cast _ | Sizeof _ ->
      type_error "& applied to a non-lvalue")
  | Cast (ty, e1) -> (
    let te = check_expr env e1 in
    match (ty, te.ty) with
    | Int _, Int _ -> cast_to ty te
    | Ptr _, Ptr _ -> { te with ty }
    | Ptr _, Int _ -> { node = Tcast (u64, te); ty }
    | Int _, Ptr _ -> cast_to ty { te with ty = u64 }
    | (Arr _, _ | _, Arr _) -> type_error "cannot cast arrays")

and check_bin env op a b =
  let ta = check_expr env a and tb = check_expr env b in
  match op with
  | Land | Lor ->
    (* operands may be any scalar; result is u8 *)
    { node = Tbin (op, ta, tb); ty = u8 }
  | Lt | Le | Gt | Ge | Eq | Ne ->
    let ta, tb =
      if is_int ta.ty && is_int tb.ty then
        let c = common_int ta.ty tb.ty in
        (cast_to c ta, cast_to c tb)
      else if ta.ty = tb.ty then (ta, tb) (* pointer comparison *)
      else type_error "comparison of incompatible types %s and %s" (ty_to_string ta.ty) (ty_to_string tb.ty)
    in
    { node = Tbin (op, ta, tb); ty = u8 }
  | Add | Sub -> (
    match (ta.ty, tb.ty) with
    | Ptr elem, Int _ ->
      let off = if op = Sub then { node = Tun (Neg, u64_of tb); ty = u64 } else tb in
      ptr_offset ta elem off
    | Int _, Ptr elem when op = Add -> ptr_offset tb elem ta
    | Int _, Int _ ->
      let c = common_int ta.ty tb.ty in
      { node = Tbin (op, cast_to c ta, cast_to c tb); ty = c }
    | _ -> type_error "invalid operands to +/-")
  | Mul | Div | Rem | Band | Bor | Bxor ->
    if not (is_int ta.ty && is_int tb.ty) then type_error "arithmetic on non-integers";
    let c = common_int ta.ty tb.ty in
    { node = Tbin (op, cast_to c ta, cast_to c tb); ty = c }
  | Shl | Shr ->
    if not (is_int ta.ty && is_int tb.ty) then type_error "shift on non-integers";
    (* the shift amount adopts the value's type; result has the value's type *)
    { node = Tbin (op, ta, cast_to ta.ty tb); ty = ta.ty }

let check_lvalue env (e : expr) : tlvalue * ty =
  match e with
  | Var name -> (
    match lookup_var env name with
    | Some (_, Arr _) -> type_error "cannot assign to an array"
    | Some (unique, ty) -> (Lvar unique, ty)
    | None -> (
      match List.assoc_opt name env.globals with
      | Some (Arr _) -> type_error "cannot assign to an array"
      | Some ty -> (Lvar name, ty)
      | None -> type_error "unknown variable %s" name))
  | Idx _ | Deref _ -> (
    let te = check_expr env e in
    match te.node with
    | Tderef addr -> (Lmem addr, te.ty)
    | _ -> assert false)
  | Num _ | Chr _ | Str _ | Bin _ | Un _ | Cond _ | Call _ | Syscall _ | AddrOf _ | Cast _
  | Sizeof _ ->
    type_error "assignment to a non-lvalue"

let rec check_stmt env ~ret (s : stmt) : tstmt list =
  match s with
  | Decl (name, ty, init) ->
    let tinit = Option.map (fun e -> convert ~what:("initializer of " ^ name) (match ty with Arr _ -> type_error "array initializers not supported" | t -> t) (check_expr env e)) init in
    let unique = declare env name ty in
    [ Tdecl (unique, ty, tinit) ]
  | Assign (lhs, rhs) ->
    let lv, ty = check_lvalue env lhs in
    let trhs = convert ~what:"assignment" ty (check_expr env rhs) in
    [ Tassign (lv, trhs) ]
  | If (c, then_, else_) ->
    let tc = check_expr env c in
    [ Tif (tc, check_block env ~ret then_, check_block env ~ret else_) ]
  | While (c, body) ->
    let tc = check_expr env c in
    env.loop_depth <- env.loop_depth + 1;
    let tbody = check_block env ~ret body in
    env.loop_depth <- env.loop_depth - 1;
    [ Twhile (tc, tbody) ]
  | For (init, cond, step, body) ->
    (* desugared here: { init; while (cond) { body'; step } } with
       [continue] in [body] compiled to a jump to [step] by Compile, which
       recognizes the Tfor-shaped while loop via an explicit marker. *)
    push_scope env;
    let tinit = List.concat_map (check_stmt env ~ret) init in
    let tc = check_expr env cond in
    env.loop_depth <- env.loop_depth + 1;
    let tbody = check_block env ~ret body in
    let tstep = List.concat_map (check_stmt env ~ret) step in
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env;
    [ Tfor (tinit, tc, tstep, tbody) ]
  | Return None ->
    if ret <> None then type_error "return without a value in a non-void function";
    [ Treturn None ]
  | Return (Some e) -> (
    match ret with
    | None -> type_error "return with a value in a void function"
    | Some ty -> [ Treturn (Some (convert ~what:"return" ty (check_expr env e))) ])
  | Expr e -> [ Texpr (check_expr env e) ]
  | Break ->
    if env.loop_depth = 0 then type_error "break outside a loop";
    [ Tbreak ]
  | Continue ->
    if env.loop_depth = 0 then type_error "continue outside a loop";
    [ Tcontinue ]
  | Assert (e, msg) -> [ Tassert (check_expr env e, msg) ]
  | Halt e -> [ Thalt (cast_to u64 (check_expr env e)) ]

and check_block env ~ret (b : block) : tblock =
  push_scope env;
  let r = List.concat_map (check_stmt env ~ret) b in
  pop_scope env;
  r

let check_func ~funcs ~globals (f : func) : tfunc =
  let env =
    {
      funcs;
      globals;
      scopes = [ [] ];
      renames = 0;
      addr_taken = [];
      var_types = [];
      loop_depth = 0;
    }
  in
  (* parameters form the outer scope; they keep unique names too *)
  let tparams = List.map (fun (name, ty) ->
      match ty with
      | Arr _ -> type_error "array parameters not supported; pass a pointer"
      | _ -> (declare env name ty, ty)) f.params
  in
  let tbody = check_block env ~ret:f.ret f.body in
  {
    tfname = f.fname;
    tparams;
    tret = f.ret;
    tbody;
    taddr_taken = env.addr_taken;
    tvar_types = List.rev env.var_types;
  }

let check_unit (u : comp_unit) : tunit =
  let fsigs =
    List.map (fun f -> (f.fname, { psig = List.map snd f.params; rsig = f.ret })) u.funcs
  in
  (match List.find_opt (fun f -> f.fname = u.entry) u.funcs with
  | None -> type_error "entry function %s not defined" u.entry
  | Some _ -> ());
  let dup =
    List.find_opt
      (fun f -> List.length (List.filter (fun g -> g.fname = f.fname) u.funcs) > 1)
      u.funcs
  in
  (match dup with Some f -> type_error "function %s defined twice" f.fname | None -> ());
  let globals = List.map (fun g -> (g.gname, g.gty)) u.globals in
  {
    tfuncs = List.map (check_func ~funcs:fsigs ~globals) u.funcs;
    tglobals = u.globals;
    tentry = u.entry;
  }
