(* Compilation of the typed mini-C form to CVM bytecode.

   Storage assignment: scalars whose address is never taken live in
   virtual registers; address-taken scalars and all arrays live in the
   function's frame (the engine allocates one frame object per call, so
   the deterministic allocator gives replayed paths identical addresses).
   Globals live in named program globals.

   Every source statement receives a fresh "line" number from a
   per-compilation-unit counter; all instructions compiled from that
   statement carry it.  Line coverage in the engine is therefore statement
   coverage, and [nlines] is the total statement count. *)

open Ast
module Instr = Cvm.Instr
module Program = Cvm.Program

type storage = Sreg of int | Sframe of int | Sglobal of string

type uctx = {
  mutable strings : (string * string) list; (* literal -> global name *)
  mutable nstrings : int;
  mutable line_counter : int;
}

type fctx = {
  u : uctx;
  mutable nregs : int;
  frame_off : (string, storage) Hashtbl.t;
  mutable frame_size : int;
  mutable blocks : Instr.t list array; (* reversed instruction lists *)
  mutable nblocks : int;
  mutable sealed : bool array;
  mutable cur : int;
  mutable cur_line : int;
  mutable break_stack : int list;
  mutable continue_stack : int list;
}

let fresh_reg ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let new_block ctx =
  if ctx.nblocks >= Array.length ctx.blocks then begin
    let blocks = Array.make (2 * Array.length ctx.blocks) [] in
    Array.blit ctx.blocks 0 blocks 0 ctx.nblocks;
    ctx.blocks <- blocks;
    let sealed = Array.make (2 * Array.length ctx.sealed) false in
    Array.blit ctx.sealed 0 sealed 0 ctx.nblocks;
    ctx.sealed <- sealed
  end;
  let b = ctx.nblocks in
  ctx.nblocks <- b + 1;
  ctx.blocks.(b) <- [];
  ctx.sealed.(b) <- false;
  b

let switch_to ctx b = ctx.cur <- b

let emit ctx op =
  if ctx.sealed.(ctx.cur) then
    (* unreachable code after a terminator: park it in a fresh dead block *)
    switch_to ctx (new_block ctx);
  let i = Instr.make ~line:ctx.cur_line op in
  ctx.blocks.(ctx.cur) <- i :: ctx.blocks.(ctx.cur);
  if Instr.is_terminator i then ctx.sealed.(ctx.cur) <- true

let intern_string ctx s =
  match List.assoc_opt s ctx.u.strings with
  | Some name -> name
  | None ->
    let name = Printf.sprintf "str.%d" ctx.u.nstrings in
    ctx.u.nstrings <- ctx.u.nstrings + 1;
    ctx.u.strings <- (s, name) :: ctx.u.strings;
    name

let bits_of ty =
  match ty with
  | Int { bits; _ } -> bits
  | Ptr _ -> 64
  | Arr _ -> invalid_arg "bits_of: array has no scalar width"

(* Locals are in the storage table; anything else was validated by
   Typecheck to be a global. *)
let storage_exn ctx name =
  match Hashtbl.find_opt ctx.frame_off name with
  | Some s -> s
  | None -> Sglobal name

(* --- expressions --------------------------------------------------------- *)

let imm ~ty v = Instr.Imm { width = bits_of ty; value = v }

(* Compile [e] and return an operand holding its value. *)
let rec compile_expr ctx (e : texpr) : Instr.operand =
  match e.node with
  | Tnum v -> imm ~ty:e.ty v
  | Tstr s -> Instr.Glob (intern_string ctx s)
  | Tvar name -> (
    match storage_exn ctx name with
    | Sreg r -> Instr.Reg r
    | Sframe off ->
      let a = fresh_reg ctx in
      emit ctx (Instr.Frame { dst = a; off });
      let v = fresh_reg ctx in
      emit ctx (Instr.Load { dst = v; addr = Instr.Reg a; len = sizeof e.ty });
      Instr.Reg v
    | Sglobal g ->
      let v = fresh_reg ctx in
      emit ctx (Instr.Load { dst = v; addr = Instr.Glob g; len = sizeof e.ty });
      Instr.Reg v)
  | Tbin (op, a, b) -> compile_bin ctx e.ty op a b
  | Tun (op, a) -> (
    let va = compile_expr ctx a in
    let dst = fresh_reg ctx in
    match op with
    | Neg ->
      emit ctx (Instr.Unop { dst; op = Smt.Expr.Neg; a = va });
      Instr.Reg dst
    | Bnot ->
      emit ctx (Instr.Unop { dst; op = Smt.Expr.Not; a = va });
      Instr.Reg dst
    | Lnot ->
      (* !x = (x == 0), widened to u8 *)
      emit ctx (Instr.Binop { dst; op = Smt.Expr.Eq; a = va; b = imm ~ty:a.ty 0L });
      let w = fresh_reg ctx in
      emit ctx (Instr.Cast { dst = w; kind = Instr.Zext; a = Instr.Reg dst; width = 8 });
      Instr.Reg w)
  | Tcond (c, a, b) ->
    let vc = compile_expr ctx c in
    let dst = fresh_reg ctx in
    let bthen = new_block ctx and belse = new_block ctx and bjoin = new_block ctx in
    emit ctx (Instr.Br { cond = vc; then_ = bthen; else_ = belse });
    switch_to ctx bthen;
    let va = compile_expr ctx a in
    emit ctx (Instr.Mov { dst; a = va });
    emit ctx (Instr.Jmp bjoin);
    switch_to ctx belse;
    let vb = compile_expr ctx b in
    emit ctx (Instr.Mov { dst; a = vb });
    emit ctx (Instr.Jmp bjoin);
    switch_to ctx bjoin;
    Instr.Reg dst
  | Tcall (name, args) ->
    let vargs = List.map (compile_expr ctx) args in
    let dst = fresh_reg ctx in
    emit ctx (Instr.Call { dst = Some dst; func = name; args = vargs });
    Instr.Reg dst
  | Tsyscall (num, args) ->
    let vargs = List.map (compile_expr ctx) args in
    let dst = fresh_reg ctx in
    emit ctx (Instr.Syscall { dst; num; args = vargs });
    Instr.Reg dst
  | Tderef addr ->
    let vaddr = compile_expr ctx addr in
    let dst = fresh_reg ctx in
    emit ctx (Instr.Load { dst; addr = vaddr; len = sizeof e.ty });
    Instr.Reg dst
  | Taddr (Lvar name) -> (
    match storage_exn ctx name with
    | Sreg _ -> invalid_arg "Compile: address of register variable"
    | Sframe off ->
      let dst = fresh_reg ctx in
      emit ctx (Instr.Frame { dst; off });
      Instr.Reg dst
    | Sglobal g ->
      let dst = fresh_reg ctx in
      emit ctx (Instr.Mov { dst; a = Instr.Glob g });
      Instr.Reg dst)
  | Taddr (Lmem addr) -> compile_expr ctx addr
  | Tcast (ty, inner) ->
    let v = compile_expr ctx inner in
    let from_bits = bits_of inner.ty and to_bits = bits_of ty in
    if from_bits = to_bits then v
    else begin
      let dst = fresh_reg ctx in
      let kind =
        if to_bits < from_bits then Instr.Trunc
        else if
          (* widening uses the signedness of the source type *)
          match inner.ty with
          | Int { signed; _ } -> signed
          | Ptr _ -> false
          | Arr _ -> false
        then Instr.Sext
        else Instr.Zext
      in
      emit ctx (Instr.Cast { dst; kind; a = v; width = to_bits });
      Instr.Reg dst
    end

and compile_bin ctx result_ty op a b =
  match op with
  | Land | Lor -> compile_short_circuit ctx op a b
  | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr ->
    let signed = is_signed_ty a.ty in
    let vop =
      match op with
      | Add -> Smt.Expr.Add
      | Sub -> Smt.Expr.Sub
      | Mul -> Smt.Expr.Mul
      | Div -> if signed then Smt.Expr.Sdiv else Smt.Expr.Udiv
      | Rem -> if signed then Smt.Expr.Srem else Smt.Expr.Urem
      | Band -> Smt.Expr.And
      | Bor -> Smt.Expr.Or
      | Bxor -> Smt.Expr.Xor
      | Shl -> Smt.Expr.Shl
      | Shr -> if signed then Smt.Expr.Ashr else Smt.Expr.Lshr
      | Land | Lor | Lt | Le | Gt | Ge | Eq | Ne -> assert false
    in
    let va = compile_expr ctx a in
    let vb = compile_expr ctx b in
    let dst = fresh_reg ctx in
    emit ctx (Instr.Binop { dst; op = vop; a = va; b = vb });
    Instr.Reg dst
  | Lt | Le | Gt | Ge | Eq | Ne ->
    let signed = is_signed_ty a.ty in
    let va = compile_expr ctx a in
    let vb = compile_expr ctx b in
    (* Gt/Ge compile as swapped Lt/Le *)
    let vop, va, vb =
      match op with
      | Lt -> ((if signed then Smt.Expr.Slt else Smt.Expr.Ult), va, vb)
      | Le -> ((if signed then Smt.Expr.Sle else Smt.Expr.Ule), va, vb)
      | Gt -> ((if signed then Smt.Expr.Slt else Smt.Expr.Ult), vb, va)
      | Ge -> ((if signed then Smt.Expr.Sle else Smt.Expr.Ule), vb, va)
      | Eq | Ne -> (Smt.Expr.Eq, va, vb)
      | Add | Sub | Mul | Div | Rem | Band | Bor | Bxor | Shl | Shr | Land | Lor ->
        assert false
    in
    let c = fresh_reg ctx in
    emit ctx (Instr.Binop { dst = c; op = vop; a = va; b = vb });
    let c =
      if op = Ne then begin
        let n = fresh_reg ctx in
        emit ctx (Instr.Unop { dst = n; op = Smt.Expr.Not; a = Instr.Reg c });
        n
      end
      else c
    in
    let dst = fresh_reg ctx in
    emit ctx (Instr.Cast { dst; kind = Instr.Zext; a = Instr.Reg c; width = bits_of result_ty });
    Instr.Reg dst

and is_signed_ty = function
  | Int { signed; _ } -> signed
  | Ptr _ -> false
  | Arr _ -> false

and compile_short_circuit ctx op a b =
  let dst = fresh_reg ctx in
  let btest_b = new_block ctx and bjoin = new_block ctx in
  let va = compile_expr ctx a in
  (match op with
  | Land ->
    (* a false -> result 0 without evaluating b *)
    emit ctx (Instr.Mov { dst; a = Instr.Imm { width = 8; value = 0L } });
    emit ctx (Instr.Br { cond = va; then_ = btest_b; else_ = bjoin })
  | Lor ->
    emit ctx (Instr.Mov { dst; a = Instr.Imm { width = 8; value = 1L } });
    emit ctx (Instr.Br { cond = va; then_ = bjoin; else_ = btest_b })
  | _ -> assert false);
  switch_to ctx btest_b;
  let vb = compile_expr ctx b in
  (* result = (b != 0) as u8 *)
  let c = fresh_reg ctx in
  emit ctx (Instr.Binop { dst = c; op = Smt.Expr.Eq; a = vb; b = imm ~ty:(type_of_operand b) 0L });
  let n = fresh_reg ctx in
  emit ctx (Instr.Unop { dst = n; op = Smt.Expr.Not; a = Instr.Reg c });
  emit ctx (Instr.Cast { dst; kind = Instr.Zext; a = Instr.Reg n; width = 8 });
  emit ctx (Instr.Jmp bjoin);
  switch_to ctx bjoin;
  Instr.Reg dst

and type_of_operand (b : texpr) = b.ty

(* --- statements ------------------------------------------------------------- *)

let store_to ctx storage ty value =
  match storage with
  | Sreg r -> emit ctx (Instr.Mov { dst = r; a = value })
  | Sframe off ->
    let a = fresh_reg ctx in
    emit ctx (Instr.Frame { dst = a; off });
    ignore ty;
    emit ctx (Instr.Store { addr = Instr.Reg a; value })
  | Sglobal g -> emit ctx (Instr.Store { addr = Instr.Glob g; value })

let next_line ctx =
  ctx.u.line_counter <- ctx.u.line_counter + 1;
  ctx.cur_line <- ctx.u.line_counter

let rec compile_stmt ctx ~ret (s : tstmt) =
  next_line ctx;
  match s with
  | Tdecl (name, ty, init) -> (
    match init with
    | None -> ()
    | Some e ->
      let v = compile_expr ctx e in
      store_to ctx (storage_exn ctx name) ty v)
  | Tassign (Lvar name, e) ->
    let v = compile_expr ctx e in
    store_to ctx (storage_exn ctx name) e.ty v
  | Tassign (Lmem addr, e) ->
    let vaddr = compile_expr ctx addr in
    let v = compile_expr ctx e in
    emit ctx (Instr.Store { addr = vaddr; value = v })
  | Tif (c, then_, else_) ->
    let vc = compile_expr ctx c in
    let bthen = new_block ctx and belse = new_block ctx and bjoin = new_block ctx in
    emit ctx (Instr.Br { cond = vc; then_ = bthen; else_ = belse });
    switch_to ctx bthen;
    compile_block ctx ~ret then_;
    emit ctx (Instr.Jmp bjoin);
    switch_to ctx belse;
    compile_block ctx ~ret else_;
    emit ctx (Instr.Jmp bjoin);
    switch_to ctx bjoin
  | Twhile (c, body) ->
    let bcond = new_block ctx and bbody = new_block ctx and bexit = new_block ctx in
    emit ctx (Instr.Jmp bcond);
    switch_to ctx bcond;
    let vc = compile_expr ctx c in
    emit ctx (Instr.Br { cond = vc; then_ = bbody; else_ = bexit });
    ctx.break_stack <- bexit :: ctx.break_stack;
    ctx.continue_stack <- bcond :: ctx.continue_stack;
    switch_to ctx bbody;
    compile_block ctx ~ret body;
    emit ctx (Instr.Jmp bcond);
    ctx.break_stack <- List.tl ctx.break_stack;
    ctx.continue_stack <- List.tl ctx.continue_stack;
    switch_to ctx bexit
  | Tfor (init, c, step, body) ->
    List.iter (compile_stmt ctx ~ret) init;
    next_line ctx;
    let bcond = new_block ctx and bbody = new_block ctx in
    let bstep = new_block ctx and bexit = new_block ctx in
    emit ctx (Instr.Jmp bcond);
    switch_to ctx bcond;
    let vc = compile_expr ctx c in
    emit ctx (Instr.Br { cond = vc; then_ = bbody; else_ = bexit });
    ctx.break_stack <- bexit :: ctx.break_stack;
    ctx.continue_stack <- bstep :: ctx.continue_stack;
    switch_to ctx bbody;
    compile_block ctx ~ret body;
    emit ctx (Instr.Jmp bstep);
    switch_to ctx bstep;
    List.iter (compile_stmt ctx ~ret) step;
    emit ctx (Instr.Jmp bcond);
    ctx.break_stack <- List.tl ctx.break_stack;
    ctx.continue_stack <- List.tl ctx.continue_stack;
    switch_to ctx bexit
  | Treturn None -> emit ctx (Instr.Ret None)
  | Treturn (Some e) ->
    let v = compile_expr ctx e in
    emit ctx (Instr.Ret (Some v))
  | Texpr e -> (
    (* calls to void functions have no destination register *)
    match e.node with
    | Tcall (name, args) ->
      let vargs = List.map (compile_expr ctx) args in
      emit ctx (Instr.Call { dst = None; func = name; args = vargs })
    | _ -> ignore (compile_expr ctx e))
  | Tbreak -> emit ctx (Instr.Jmp (List.hd ctx.break_stack))
  | Tcontinue -> emit ctx (Instr.Jmp (List.hd ctx.continue_stack))
  | Tassert (e, msg) ->
    let v = compile_expr ctx e in
    emit ctx (Instr.Assert { cond = v; msg })
  | Thalt e ->
    let v = compile_expr ctx e in
    emit ctx (Instr.Halt v)

and compile_block ctx ~ret (b : tblock) = List.iter (compile_stmt ctx ~ret) b

(* --- functions and units ------------------------------------------------------ *)

let align_to align n = (n + align - 1) / align * align

let compile_func u (f : tfunc) : Program.func =
  let ctx =
    {
      u;
      nregs = List.length f.tparams;
      frame_off = Hashtbl.create 16;
      frame_size = 0;
      blocks = Array.make 8 [];
      nblocks = 0;
      sealed = Array.make 8 false;
      cur = 0;
      cur_line = u.line_counter;
      break_stack = [];
      continue_stack = [];
    }
  in
  (* storage assignment *)
  let addr_taken name = List.mem name f.taddr_taken in
  List.iteri
    (fun i (name, ty) ->
      if addr_taken name then begin
        let size = sizeof ty in
        let off = align_to (min size 16) ctx.frame_size in
        ctx.frame_size <- off + size;
        Hashtbl.replace ctx.frame_off name (Sframe off);
        ignore i
      end
      else Hashtbl.replace ctx.frame_off name (Sreg i))
    f.tparams;
  List.iter
    (fun (name, ty) ->
      if not (Hashtbl.mem ctx.frame_off name) then
        if addr_taken name then begin
          let size = sizeof ty in
          let off = align_to (min (max size 1) 16) ctx.frame_size in
          ctx.frame_size <- off + size;
          Hashtbl.replace ctx.frame_off name (Sframe off)
        end
        else Hashtbl.replace ctx.frame_off name (Sreg (fresh_reg ctx)))
    f.tvar_types;
  let entry = new_block ctx in
  switch_to ctx entry;
  next_line ctx;
  (* spill address-taken parameters from their registers into the frame *)
  List.iteri
    (fun i (name, _ty) ->
      match storage_exn ctx name with
      | Sframe off ->
        let a = fresh_reg ctx in
        emit ctx (Instr.Frame { dst = a; off });
        emit ctx (Instr.Store { addr = Instr.Reg a; value = Instr.Reg i })
      | Sreg _ | Sglobal _ -> ())
    f.tparams;
  compile_block ctx ~ret:f.tret f.tbody;
  (* implicit return at the end of the body *)
  if not ctx.sealed.(ctx.cur) then begin
    match f.tret with
    | None -> emit ctx (Instr.Ret None)
    | Some ty -> emit ctx (Instr.Ret (Some (imm ~ty 0L)))
  end;
  (* seal any dangling blocks (e.g. empty join blocks of dead code) *)
  for b = 0 to ctx.nblocks - 1 do
    if not ctx.sealed.(b) then begin
      switch_to ctx b;
      match f.tret with
      | None -> emit ctx (Instr.Ret None)
      | Some ty -> emit ctx (Instr.Ret (Some (imm ~ty 0L)))
    end
  done;
  {
    Program.name = f.tfname;
    nparams = List.length f.tparams;
    nregs = ctx.nregs;
    frame_size = ctx.frame_size;
    blocks = Array.init ctx.nblocks (fun b -> Array.of_list (List.rev ctx.blocks.(b)));
  }

let compile_unit (cu : comp_unit) : Program.t =
  let tu = Typecheck.check_unit cu in
  let u = { strings = []; nstrings = 0; line_counter = 0 } in
  let funcs = List.map (fun f -> (f.tfname, compile_func u f)) tu.tfuncs in
  let data_globals =
    List.map
      (fun g ->
        let size = sizeof g.gty in
        let bytes =
          match g.ginit with
          | None -> String.make size '\000'
          | Some s ->
            if String.length s > size then invalid_arg ("initializer too long for " ^ g.gname)
            else s ^ String.make (size - String.length s) '\000'
        in
        { Program.gname = g.gname; bytes; gwritable = true })
      tu.tglobals
  in
  let string_globals =
    List.map
      (fun (s, name) -> { Program.gname = name; bytes = s ^ "\000"; gwritable = false })
      u.strings
  in
  Program.create ~entry:tu.tentry ~funcs
    ~globals:(data_globals @ string_globals)
    ~nlines:u.line_counter
