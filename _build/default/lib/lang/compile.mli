(** Compilation of mini-C to CVM bytecode.

    Scalars whose address is never taken live in virtual registers;
    address-taken scalars and all arrays live in the per-call frame
    object, so the deterministic allocator gives replayed paths identical
    addresses.  Every source statement receives a fresh line number;
    line coverage is therefore statement coverage.

    @raise Ast.Type_error on ill-typed programs.
    @raise Cvm.Program.Invalid on compiler-internal inconsistencies. *)

val compile_unit : Ast.comp_unit -> Cvm.Program.t
