(* Abstract syntax of the mini-C source language in which all target
   programs are written.  The language is deliberately close to the C
   subset exercised by the paper's targets: fixed-width integers of both
   signednesses, pointers, arrays, strings, functions, and the usual
   statements.  There is no parser — programs are built with the
   combinators in {!Builder}. *)

type ty =
  | Int of { bits : int; signed : bool } (* bits in {8,16,32,64} *)
  | Ptr of ty
  | Arr of ty * int

let u8 = Int { bits = 8; signed = false }
let u16 = Int { bits = 16; signed = false }
let u32 = Int { bits = 32; signed = false }
let u64 = Int { bits = 64; signed = false }
let i8 = Int { bits = 8; signed = true }
let i16 = Int { bits = 16; signed = true }
let i32 = Int { bits = 32; signed = true }
let i64 = Int { bits = 64; signed = true }

let rec sizeof = function
  | Int { bits; _ } -> bits / 8
  | Ptr _ -> 8
  | Arr (t, n) -> n * sizeof t

let rec ty_to_string = function
  | Int { bits; signed } -> Printf.sprintf "%c%d" (if signed then 'i' else 'u') bits
  | Ptr t -> ty_to_string t ^ "*"
  | Arr (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land (* short-circuit *)
  | Lor  (* short-circuit *)

type unop =
  | Neg
  | Bnot
  | Lnot

type expr =
  | Num of int64
  | Chr of char                     (* character literal: a u8 *)
  | Str of string                   (* NUL-terminated string constant; type u8* *)
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cond of expr * expr * expr      (* c ? a : b *)
  | Call of string * expr list
  | Syscall of int * expr list      (* raw symbolic system call; type i64 *)
  | Idx of expr * expr              (* a[i] *)
  | Deref of expr
  | AddrOf of expr                  (* & of Var/Idx/Deref *)
  | Cast of ty * expr
  | Sizeof of ty

type stmt =
  | Decl of string * ty * expr option
  | Assign of expr * expr           (* lvalue = expr *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt list * expr * stmt list * block  (* init; cond; step *)
  | Return of expr option
  | Expr of expr                    (* expression for effect *)
  | Break
  | Continue
  | Assert of expr * string
  | Halt of expr                    (* exit(code): terminates all processes *)

and block = stmt list

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  locals_hint : int; (* ignored; reserved for future register allocation *)
  body : block;
}

type global = {
  gname : string;
  gty : ty;
  ginit : string option; (* concrete initial bytes; zeroed when absent *)
}

type comp_unit = { funcs : func list; globals : global list; entry : string }

(* --- typed intermediate form (produced by Typecheck) ---------------------- *)

type texpr = { node : texpr_node; ty : ty }

and texpr_node =
  | Tnum of int64
  | Tstr of string
  | Tvar of string
  | Tbin of binop * texpr * texpr
  | Tun of unop * texpr
  | Tcond of texpr * texpr * texpr
  | Tcall of string * texpr list
  | Tsyscall of int * texpr list
  | Tderef of texpr                 (* load through a pointer *)
  | Taddr of tlvalue
  | Tcast of ty * texpr

(* An lvalue is a variable or a computed address. *)
and tlvalue =
  | Lvar of string
  | Lmem of texpr (* address expression; its type is Ptr of the cell type *)

type tstmt =
  | Tdecl of string * ty * texpr option
  | Tassign of tlvalue * texpr
  | Tif of texpr * tblock * tblock
  | Twhile of texpr * tblock
  | Tfor of tstmt list * texpr * tstmt list * tblock
      (* init; cond; step — kept explicit so [continue] can target the step *)
  | Treturn of texpr option
  | Texpr of texpr
  | Tbreak
  | Tcontinue
  | Tassert of texpr * string
  | Thalt of texpr

and tblock = tstmt list

type tfunc = {
  tfname : string;
  tparams : (string * ty) list;
  tret : ty option;
  tbody : tblock;
  (* variables whose address is taken (directly, or arrays, which decay to
     pointers): these live in the frame rather than registers *)
  taddr_taken : string list;
  tvar_types : (string * ty) list;
}

type tunit = { tfuncs : tfunc list; tglobals : global list; tentry : string }

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt
