(** Type checking and elaboration of the mini-C AST into the typed form
    consumed by {!Compile}: implicit conversions become explicit casts
    (common type = wider width; unsigned wins ties), arrays decay to
    pointers, pointer arithmetic is scaled here, and every declaration is
    alpha-renamed to a unique name.

    @raise Ast.Type_error on ill-typed programs. *)

val check_unit : Ast.comp_unit -> Ast.tunit
