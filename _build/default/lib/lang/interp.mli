(** A reference interpreter for the scalar fragment of mini-C: direct
    concrete evaluation over the typed AST, sharing no code with the
    compiler, the bytecode VM, or the engine.  Used for differential
    testing: on the supported fragment (no pointers, arrays, globals, or
    system calls) its outcome must match compiling and executing the
    program. *)

type outcome =
  | Exit of int64
  | Unsupported_feature of string
      (** the program uses something outside the fragment (or divides by
          zero / fails an assert, which the engine reports as error
          paths) *)

(** Run a compilation unit from its entry function; [budget] bounds
    evaluation steps to guarantee termination. *)
val run : ?budget:int -> Ast.comp_unit -> outcome
