lib/lang/compile.mli: Ast Cvm
