lib/lang/compile.ml: Array Ast Cvm Hashtbl List Printf Smt String Typecheck
