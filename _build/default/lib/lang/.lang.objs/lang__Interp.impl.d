lib/lang/interp.ml: Ast Hashtbl Int64 List Smt Typecheck
