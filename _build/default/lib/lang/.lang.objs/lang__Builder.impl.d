lib/lang/builder.ml: Ast Compile Int64
