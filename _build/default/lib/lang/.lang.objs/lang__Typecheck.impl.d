lib/lang/typecheck.ml: Ast Char Int64 List Option Printf
