(* CVM programs: named functions of basic blocks, plus named globals.

   A program also records [nlines], the number of distinct source lines,
   which defines the length of coverage bit vectors. *)

type func = {
  name : string;
  nparams : int;  (* parameters arrive in registers 0 .. nparams-1 *)
  nregs : int;
  frame_size : int; (* bytes of address-taken locals; 0 if none *)
  blocks : Instr.t array array;
}

type global = {
  gname : string;
  bytes : string;        (* initial concrete contents *)
  gwritable : bool;
}

type t = {
  funcs : (string * func) list;
  globals : global list;
  entry : string;
  nlines : int;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let func t name = List.assoc_opt name t.funcs

let func_exn t name =
  match func t name with
  | Some f -> f
  | None -> invalid "unknown function %s" name

(* Structural validation: entry exists, blocks are terminated exactly at
   the end, targets and registers are in range, called functions exist. *)
let validate t =
  if func t t.entry = None then invalid "entry function %s missing" t.entry;
  List.iter
    (fun (name, f) ->
      if name <> f.name then invalid "function list key %s <> name %s" name f.name;
      if Array.length f.blocks = 0 then invalid "%s: no blocks" name;
      if f.nparams > f.nregs then invalid "%s: more params than registers" name;
      Array.iteri
        (fun bi block ->
          let n = Array.length block in
          if n = 0 then invalid "%s.%d: empty block" name bi;
          Array.iteri
            (fun ii i ->
              let is_last = ii = n - 1 in
              if Instr.is_terminator i && not is_last then
                invalid "%s.%d.%d: terminator before end of block" name bi ii;
              if is_last && not (Instr.is_terminator i) then
                invalid "%s.%d: block does not end in a terminator" name bi;
              let check_reg r =
                if r < 0 || r >= f.nregs then invalid "%s.%d.%d: register r%d out of range" name bi ii r
              in
              let check_operand = function
                | Instr.Reg r -> check_reg r
                | Instr.Imm { width; _ } ->
                  if width < 1 || width > 64 then invalid "%s.%d.%d: bad imm width" name bi ii
                | Instr.Glob g ->
                  if not (List.exists (fun gl -> gl.gname = g) t.globals) then
                    invalid "%s.%d.%d: unknown global %s" name bi ii g
              in
              let check_target l =
                if l < 0 || l >= Array.length f.blocks then
                  invalid "%s.%d.%d: jump target .%d out of range" name bi ii l
              in
              match i.Instr.op with
              | Instr.Binop { dst; a; b; _ } ->
                check_reg dst;
                check_operand a;
                check_operand b
              | Instr.Unop { dst; a; _ } | Instr.Cast { dst; a; _ } ->
                check_reg dst;
                check_operand a
              | Instr.Select { dst; cond; a; b } ->
                check_reg dst;
                check_operand cond;
                check_operand a;
                check_operand b
              | Instr.Mov { dst; a } ->
                check_reg dst;
                check_operand a
              | Instr.Frame { dst; off } ->
                check_reg dst;
                if off < 0 || off >= max f.frame_size 1 then
                  invalid "%s.%d.%d: frame offset %d out of range" name bi ii off
              | Instr.Load { dst; addr; len } ->
                check_reg dst;
                check_operand addr;
                if len < 1 || len > 8 then invalid "%s.%d.%d: load width" name bi ii
              | Instr.Store { addr; value } ->
                check_operand addr;
                check_operand value
              | Instr.Alloc { dst; size } ->
                check_reg dst;
                check_operand size
              | Instr.Free { addr } -> check_operand addr
              | Instr.Jmp l -> check_target l
              | Instr.Br { cond; then_; else_ } ->
                check_operand cond;
                check_target then_;
                check_target else_
              | Instr.Call { dst; func = callee; args } ->
                Option.iter check_reg dst;
                List.iter check_operand args;
                (match List.assoc_opt callee t.funcs with
                | None -> invalid "%s.%d.%d: call to unknown function %s" name bi ii callee
                | Some cf ->
                  if List.length args <> cf.nparams then
                    invalid "%s.%d.%d: %s expects %d args, got %d" name bi ii callee
                      cf.nparams (List.length args))
              | Instr.Ret a -> Option.iter check_operand a
              | Instr.Halt a -> check_operand a
              | Instr.Syscall { dst; args; _ } ->
                check_reg dst;
                List.iter check_operand args
              | Instr.Assert { cond; _ } -> check_operand cond)
            block)
        f.blocks)
    t.funcs;
  t

let create ~entry ~funcs ~globals ~nlines = validate { funcs; globals; entry; nlines }

let instruction_count t =
  List.fold_left
    (fun acc (_, f) -> acc + Array.fold_left (fun a b -> a + Array.length b) 0 f.blocks)
    0 t.funcs

(* Lines that carry at least one instruction: the denominator of line
   coverage.  (Declarations and blank lines never appear.) *)
let covered_lines t =
  let module Iset = Set.Make (Int) in
  let lines = ref Iset.empty in
  List.iter
    (fun (_, f) ->
      Array.iter
        (fun block -> Array.iter (fun i -> lines := Iset.add i.Instr.line !lines) block)
        f.blocks)
    t.funcs;
  Iset.elements !lines

let pp fmt t =
  Format.fprintf fmt "program (entry %s, %d lines)@." t.entry t.nlines;
  List.iter (fun g -> Format.fprintf fmt "global %s[%d]@." g.gname (String.length g.bytes)) t.globals;
  List.iter
    (fun (name, f) ->
      Format.fprintf fmt "func %s(%d) regs=%d@." name f.nparams f.nregs;
      Array.iteri
        (fun bi block ->
          Format.fprintf fmt ".%d:@." bi;
          Array.iter (fun i -> Format.fprintf fmt "  %a@." Instr.pp i) block)
        f.blocks)
    t.funcs
