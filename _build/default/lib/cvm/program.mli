(** CVM programs: named functions of basic blocks, plus named globals.
    [nlines] is the source-line count that defines coverage bit-vector
    length. *)

type func = {
  name : string;
  nparams : int;  (** parameters arrive in registers [0 .. nparams-1] *)
  nregs : int;
  frame_size : int;  (** bytes of address-taken locals; 0 if none *)
  blocks : Instr.t array array;
}

type global = { gname : string; bytes : string; gwritable : bool }

type t = {
  funcs : (string * func) list;
  globals : global list;
  entry : string;
  nlines : int;
}

exception Invalid of string

(** Build and structurally validate a program.
    @raise Invalid on malformed programs (unterminated blocks, bad targets,
    out-of-range registers, unknown callees/globals, arity mismatches). *)
val create :
  entry:string -> funcs:(string * func) list -> globals:global list -> nlines:int -> t

(** Re-run structural validation; returns the program unchanged. *)
val validate : t -> t

val func : t -> string -> func option

(** @raise Invalid when the function is missing. *)
val func_exn : t -> string -> func

(** Total static instruction count (the "size" column of Table 4). *)
val instruction_count : t -> int

(** Sorted list of source lines that carry at least one instruction — the
    denominator of line coverage. *)
val covered_lines : t -> int list

val pp : Format.formatter -> t -> unit
