(* Byte-granular symbolic memory with multiple address spaces per state.

   The layout mirrors the KLEE/Cloud9 model:
   - memory is a set of objects, each a contiguous byte array whose cells
     hold width-8 expressions;
   - a state holds one address space per process, plus a set of *shared*
     objects visible to every process in the copy-on-write domain
     (paper section 4.2, [cloud9_make_shared]);
   - all structures are persistent, so cloning a state at a fork is O(1)
     and writes are copy-on-write;
   - addresses come from a deterministic per-state bump allocator, which is
     the fix for broken replays described in paper section 6: a replayed
     path performs the same allocations and therefore computes the same
     addresses.

   Loads and stores are little-endian. *)

module Imap = Map.Make (Int)

type fault =
  | Out_of_bounds of { addr : int; size : int }
  | Use_after_free of { addr : int }
  | Unmapped of { addr : int }
  | Read_only of { addr : int }

exception Fault of fault

let fault_to_string = function
  | Out_of_bounds { addr; size } -> Printf.sprintf "out-of-bounds access at 0x%x size %d" addr size
  | Use_after_free { addr } -> Printf.sprintf "use after free at 0x%x" addr
  | Unmapped { addr } -> Printf.sprintf "access to unmapped address 0x%x" addr
  | Read_only { addr } -> Printf.sprintf "write to read-only memory at 0x%x" addr

type obj = {
  base : int;
  size : int;
  init : Smt.Expr.t array;     (* initial contents; never mutated *)
  writes : Smt.Expr.t Imap.t;  (* overlay of writes, keyed by offset *)
  writable : bool;
  freed : bool;
}

type space = obj Imap.t (* keyed by base address *)

type t = {
  spaces : space Imap.t; (* process id -> private address space *)
  shared : space;        (* objects shared across the CoW domain *)
  next_addr : int;       (* deterministic bump allocator *)
}

(* Leave address 0 unmapped so null-pointer dereferences fault. *)
let initial_break = 0x1000

let empty = { spaces = Imap.singleton 0 Imap.empty; shared = Imap.empty; next_addr = initial_break }

let byte_zero = Smt.Expr.const ~width:8 0L

let align16 n = (n + 15) land lnot 15

(* --- address spaces ------------------------------------------------------ *)

let add_space t ~pid = { t with spaces = Imap.add pid Imap.empty t.spaces }

(* Fork: the child gets a copy of the parent's private space.  Persistence
   makes this O(1); subsequent writes diverge. *)
let clone_space t ~parent ~child =
  match Imap.find_opt parent t.spaces with
  | None -> invalid_arg "Memory.clone_space: unknown parent process"
  | Some sp -> { t with spaces = Imap.add child sp t.spaces }

let remove_space t ~pid = { t with spaces = Imap.remove pid t.spaces }

let space_exn t pid =
  match Imap.find_opt pid t.spaces with
  | Some sp -> sp
  | None -> invalid_arg (Printf.sprintf "Memory: unknown process %d" pid)

(* --- allocation ------------------------------------------------------------ *)

let alloc_with ~shared ~writable ~init t ~pid =
  let size = Array.length init in
  let base = t.next_addr in
  (* the +1 red zone guarantees at least one unmapped byte between
     objects, so off-by-one overflows fault instead of silently landing
     in the neighboring object *)
  let next_addr = base + align16 (max size 1 + 1) in
  let obj = { base; size; init; writes = Imap.empty; writable; freed = false } in
  let t =
    if shared then { t with shared = Imap.add base obj t.shared; next_addr }
    else
      let sp = space_exn t pid in
      { t with spaces = Imap.add pid (Imap.add base obj sp) t.spaces; next_addr }
  in
  (t, base)

let alloc ?(shared = false) ?(writable = true) t ~pid ~size =
  alloc_with ~shared ~writable ~init:(Array.make size byte_zero) t ~pid

let alloc_bytes ?(shared = false) ?(writable = true) t ~pid ~bytes =
  let init = Array.init (String.length bytes) (fun i -> Smt.Expr.const ~width:8 (Int64.of_int (Char.code bytes.[i]))) in
  alloc_with ~shared ~writable ~init t ~pid

let alloc_exprs ?(shared = false) ?(writable = true) t ~pid ~init =
  alloc_with ~shared ~writable ~init t ~pid

(* Override the bump pointer; used by the global-counter allocation mode in
   the broken-replay ablation. *)
let set_next_addr t addr = { t with next_addr = max t.next_addr addr }
let next_addr t = t.next_addr

(* --- object lookup ----------------------------------------------------------- *)

let find_in sp addr =
  match Imap.find_last_opt (fun base -> base <= addr) sp with
  | Some (_, obj) when addr < obj.base + obj.size -> Some obj
  | Some _ | None -> None

(* Find the object containing [addr]: the process's private space first,
   then the shared pool. *)
let find_obj t ~pid addr =
  match find_in (space_exn t pid) addr with
  | Some obj -> Some (`Private, obj)
  | None -> (
    match find_in t.shared addr with Some obj -> Some (`Shared, obj) | None -> None)

let check_range obj addr len =
  if addr < obj.base || addr + len > obj.base + obj.size then
    raise (Fault (Out_of_bounds { addr; size = len }))

let obj_read_byte obj off =
  match Imap.find_opt off obj.writes with Some e -> e | None -> obj.init.(off)

let obj_write_byte obj off e = { obj with writes = Imap.add off e obj.writes }

let update_obj t ~pid where obj =
  match where with
  | `Shared -> { t with shared = Imap.add obj.base obj t.shared }
  | `Private ->
    let sp = space_exn t pid in
    { t with spaces = Imap.add pid (Imap.add obj.base obj sp) t.spaces }

(* --- loads and stores ----------------------------------------------------------- *)

let locate t ~pid addr len =
  match find_obj t ~pid addr with
  | None -> raise (Fault (Unmapped { addr }))
  | Some (where, obj) ->
    if obj.freed then raise (Fault (Use_after_free { addr }));
    check_range obj addr len;
    (where, obj)

(* [load t ~pid ~addr ~len] reads [len] bytes little-endian and returns an
   expression of width [8*len]. *)
let load t ~pid ~addr ~len =
  let _, obj = locate t ~pid addr len in
  let off = addr - obj.base in
  let e = ref (obj_read_byte obj off) in
  for i = 1 to len - 1 do
    e := Smt.Expr.concat (obj_read_byte obj (off + i)) !e
  done;
  !e

(* [store t ~pid ~addr e] writes [e] (width must be a multiple of 8)
   little-endian. *)
let store t ~pid ~addr e =
  let w = Smt.Expr.width e in
  assert (w mod 8 = 0);
  let len = w / 8 in
  let where, obj = locate t ~pid addr len in
  if not obj.writable then raise (Fault (Read_only { addr }));
  let off = addr - obj.base in
  let obj = ref obj in
  for i = 0 to len - 1 do
    let byte = Smt.Simplify.simplify (Smt.Expr.extract e ~off:(8 * i) ~len:8) in
    obj := obj_write_byte !obj (off + i) byte
  done;
  update_obj t ~pid where !obj

let load_byte t ~pid ~addr = load t ~pid ~addr ~len:1
let store_byte t ~pid ~addr e = store t ~pid ~addr e

let free t ~pid ~addr =
  match find_obj t ~pid addr with
  | None -> raise (Fault (Unmapped { addr }))
  | Some (_, obj) when obj.freed -> raise (Fault (Use_after_free { addr }))
  | Some (_, obj) when obj.base <> addr ->
    raise (Fault (Out_of_bounds { addr; size = 0 })) (* free of interior pointer *)
  | Some (where, obj) -> update_obj t ~pid where { obj with freed = true }

(* Promote an existing private object to the shared pool
   ([cloud9_make_shared]). *)
let make_shared t ~pid ~addr =
  match find_obj t ~pid addr with
  | None -> raise (Fault (Unmapped { addr }))
  | Some (`Shared, _) -> t
  | Some (`Private, obj) ->
    let sp = Imap.remove obj.base (space_exn t pid) in
    { t with spaces = Imap.add pid sp t.spaces; shared = Imap.add obj.base obj t.shared }

let object_size t ~pid ~addr =
  match find_obj t ~pid addr with
  | Some (_, obj) when not obj.freed -> Some obj.size
  | Some _ | None -> None

(* Base and size of the live object containing [addr]; used by the
   engine's symbolic-pointer bounds check. *)
let containing_object t ~pid ~addr =
  match find_obj t ~pid addr with
  | Some (_, obj) when not obj.freed -> Some (obj.base, obj.size)
  | Some _ | None -> None

(* Read a concrete, NUL-terminated string; any symbolic byte stops the
   read.  Utility for syscall handlers and test reporting. *)
let read_cstring ?(max_len = 4096) t ~pid ~addr =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max_len then Buffer.contents buf
    else
      let b = load t ~pid ~addr:(addr + i) ~len:1 in
      match Smt.Expr.const_value b with
      | Some 0L -> Buffer.contents buf
      | Some v ->
        Buffer.add_char buf (Char.chr (Int64.to_int v land 0xff));
        go (i + 1)
      | None -> Buffer.contents buf
  in
  go 0

(* Write a concrete string (no terminator added). *)
let write_string t ~pid ~addr s =
  let t = ref t in
  String.iteri
    (fun i c ->
      t := store !t ~pid ~addr:(addr + i) (Smt.Expr.const ~width:8 (Int64.of_int (Char.code c))))
    s;
  !t

(* Total bytes currently allocated in a process's view (private + shared,
   live objects only); used by the symbolic max-heap limit. *)
let footprint t ~pid =
  let count sp = Imap.fold (fun _ o acc -> if o.freed then acc else acc + o.size) sp 0 in
  count (space_exn t pid) + count t.shared
