lib/cvm/memory.mli: Smt
