lib/cvm/instr.mli: Format Smt
