lib/cvm/instr.ml: Format List Smt
