lib/cvm/memory.ml: Array Buffer Char Int Int64 Map Printf Smt String
