lib/cvm/program.ml: Array Format Instr Int List Option Printf Set String
