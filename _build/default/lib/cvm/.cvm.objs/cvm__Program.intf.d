lib/cvm/program.mli: Format Instr
