(* The CVM instruction set: a register-based bytecode in the spirit of the
   LLVM subset KLEE interprets.  Functions are arrays of basic blocks; each
   block ends in exactly one terminator.  Every instruction carries the
   source line it was compiled from, which is what coverage bit vectors
   index (paper section 3.3). *)

type reg = int

type operand =
  | Reg of reg
  | Imm of { width : int; value : int64 }
  | Glob of string (* address of a named global, resolved at state setup *)

type cast_kind = Zext | Sext | Trunc

type op =
  (* computation *)
  | Binop of { dst : reg; op : Smt.Expr.binop; a : operand; b : operand }
  | Unop of { dst : reg; op : Smt.Expr.unop; a : operand }
  | Cast of { dst : reg; kind : cast_kind; a : operand; width : int }
  | Select of { dst : reg; cond : operand; a : operand; b : operand }
  | Mov of { dst : reg; a : operand }
  | Frame of { dst : reg; off : int } (* dst := frame base + off *)
  (* memory *)
  | Load of { dst : reg; addr : operand; len : int }   (* len bytes, little-endian *)
  | Store of { addr : operand; value : operand }
  | Alloc of { dst : reg; size : operand }             (* heap allocation *)
  | Free of { addr : operand }
  (* control flow (terminators) *)
  | Jmp of int
  | Br of { cond : operand; then_ : int; else_ : int }
  | Call of { dst : reg option; func : string; args : operand list }
  | Ret of operand option
  | Halt of operand (* exit code *)
  (* environment *)
  | Syscall of { dst : reg; num : int; args : operand list }
  | Assert of { cond : operand; msg : string }

type t = { op : op; line : int }

let make ~line op = { op; line }

(* [Call] is not a terminator: it transfers control to the callee and
   resumes at the next instruction of the same block. *)
let is_terminator i =
  match i.op with
  | Jmp _ | Br _ | Ret _ | Halt _ -> true
  | Binop _ | Unop _ | Cast _ | Select _ | Mov _ | Frame _ | Load _ | Store _ | Alloc _
  | Free _ | Call _ | Syscall _ | Assert _ ->
    false

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm { width; value } -> Format.fprintf fmt "%Lu:%d" value width
  | Glob name -> Format.fprintf fmt "@%s" name

let cast_name = function Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc"

let pp fmt i =
  (match i.op with
  | Binop { dst; op; a; b } ->
    Format.fprintf fmt "r%d = %s %a, %a" dst (Smt.Expr.binop_name op) pp_operand a
      pp_operand b
  | Unop { dst; op; a } ->
    Format.fprintf fmt "r%d = %s %a" dst (Smt.Expr.unop_name op) pp_operand a
  | Cast { dst; kind; a; width } ->
    Format.fprintf fmt "r%d = %s %a to %d" dst (cast_name kind) pp_operand a width
  | Select { dst; cond; a; b } ->
    Format.fprintf fmt "r%d = select %a, %a, %a" dst pp_operand cond pp_operand a
      pp_operand b
  | Mov { dst; a } -> Format.fprintf fmt "r%d = %a" dst pp_operand a
  | Frame { dst; off } -> Format.fprintf fmt "r%d = frame+%d" dst off
  | Load { dst; addr; len } -> Format.fprintf fmt "r%d = load %a, %d" dst pp_operand addr len
  | Store { addr; value } -> Format.fprintf fmt "store %a, %a" pp_operand addr pp_operand value
  | Alloc { dst; size } -> Format.fprintf fmt "r%d = alloc %a" dst pp_operand size
  | Free { addr } -> Format.fprintf fmt "free %a" pp_operand addr
  | Jmp l -> Format.fprintf fmt "jmp .%d" l
  | Br { cond; then_; else_ } ->
    Format.fprintf fmt "br %a, .%d, .%d" pp_operand cond then_ else_
  | Call { dst; func; args } ->
    (match dst with
    | Some d -> Format.fprintf fmt "r%d = call %s(" d func
    | None -> Format.fprintf fmt "call %s(" func);
    List.iteri
      (fun k a -> Format.fprintf fmt "%s%a" (if k > 0 then ", " else "") pp_operand a)
      args;
    Format.fprintf fmt ")"
  | Ret None -> Format.fprintf fmt "ret"
  | Ret (Some a) -> Format.fprintf fmt "ret %a" pp_operand a
  | Halt a -> Format.fprintf fmt "halt %a" pp_operand a
  | Syscall { dst; num; args } ->
    Format.fprintf fmt "r%d = syscall %d(" dst num;
    List.iteri
      (fun k a -> Format.fprintf fmt "%s%a" (if k > 0 then ", " else "") pp_operand a)
      args;
    Format.fprintf fmt ")"
  | Assert { cond; msg } -> Format.fprintf fmt "assert %a, %S" pp_operand cond msg);
  Format.fprintf fmt "  ; line %d" i.line
