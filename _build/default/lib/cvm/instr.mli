(** The CVM instruction set: a register-based bytecode in the spirit of the
    LLVM subset KLEE interprets.  Every instruction carries the source line
    it was compiled from; coverage bit vectors index these lines. *)

type reg = int

type operand =
  | Reg of reg
  | Imm of { width : int; value : int64 }
  | Glob of string  (** address of a named global, resolved at state setup *)

type cast_kind = Zext | Sext | Trunc

type op =
  | Binop of { dst : reg; op : Smt.Expr.binop; a : operand; b : operand }
  | Unop of { dst : reg; op : Smt.Expr.unop; a : operand }
  | Cast of { dst : reg; kind : cast_kind; a : operand; width : int }
  | Select of { dst : reg; cond : operand; a : operand; b : operand }
  | Mov of { dst : reg; a : operand }
  | Frame of { dst : reg; off : int }
      (** [dst := frame base + off]; the engine allocates a frame object of
          [frame_size] bytes per call for address-taken locals *)
  | Load of { dst : reg; addr : operand; len : int }  (** [len] bytes, little-endian *)
  | Store of { addr : operand; value : operand }
  | Alloc of { dst : reg; size : operand }
  | Free of { addr : operand }
  | Jmp of int
  | Br of { cond : operand; then_ : int; else_ : int }
  | Call of { dst : reg option; func : string; args : operand list }
  | Ret of operand option
  | Halt of operand  (** terminate the whole process tree with an exit code *)
  | Syscall of { dst : reg; num : int; args : operand list }
  | Assert of { cond : operand; msg : string }

type t = { op : op; line : int }

val make : line:int -> op -> t

(** True for [Jmp], [Br], [Ret], and [Halt] — the only ops allowed (and
    required) at the end of a basic block. *)
val is_terminator : t -> bool

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
