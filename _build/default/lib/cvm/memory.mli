(** Byte-granular symbolic memory with multiple address spaces per state.

    Memory is a set of objects whose cells hold width-8 expressions.  A
    state holds one private address space per process plus a pool of
    {e shared} objects visible to all processes of the copy-on-write domain
    (paper section 4.2).  All structures are persistent: cloning at a fork
    is O(1) and writes are copy-on-write.  Addresses come from a
    deterministic per-state bump allocator (the broken-replay fix of paper
    section 6).  Loads and stores are little-endian. *)

type fault =
  | Out_of_bounds of { addr : int; size : int }
  | Use_after_free of { addr : int }
  | Unmapped of { addr : int }
  | Read_only of { addr : int }

exception Fault of fault

val fault_to_string : fault -> string

type t

(** One process (pid 0) with an empty address space; address 0 unmapped. *)
val empty : t

(** Register an empty address space for a new process id. *)
val add_space : t -> pid:int -> t

(** Duplicate [parent]'s address space for [child] (process fork). *)
val clone_space : t -> parent:int -> child:int -> t

val remove_space : t -> pid:int -> t

(** Allocate [size] zeroed bytes; returns the base address.
    [shared] places the object in the CoW-domain shared pool. *)
val alloc : ?shared:bool -> ?writable:bool -> t -> pid:int -> size:int -> t * int

(** Allocate and initialize from a concrete string. *)
val alloc_bytes : ?shared:bool -> ?writable:bool -> t -> pid:int -> bytes:string -> t * int

(** Allocate and initialize from width-8 expressions. *)
val alloc_exprs :
  ?shared:bool -> ?writable:bool -> t -> pid:int -> init:Smt.Expr.t array -> t * int

(** Raise the bump pointer (global-counter allocation ablation). *)
val set_next_addr : t -> int -> t

val next_addr : t -> int

(** Read [len] bytes little-endian as a width-[8*len] expression.
    @raise Fault on unmapped, out-of-bounds, or freed accesses. *)
val load : t -> pid:int -> addr:int -> len:int -> Smt.Expr.t

(** Write an expression whose width is a multiple of 8, little-endian.
    @raise Fault on bad accesses or read-only objects. *)
val store : t -> pid:int -> addr:int -> Smt.Expr.t -> t

val load_byte : t -> pid:int -> addr:int -> Smt.Expr.t
val store_byte : t -> pid:int -> addr:int -> Smt.Expr.t -> t

(** Mark an object freed; later accesses fault with [Use_after_free].
    @raise Fault if [addr] is not an object base. *)
val free : t -> pid:int -> addr:int -> t

(** Promote a private object to the shared pool ([cloud9_make_shared]). *)
val make_shared : t -> pid:int -> addr:int -> t

(** Size of the live object containing [addr], if any. *)
val object_size : t -> pid:int -> addr:int -> int option

(** Base and size of the live object containing [addr], if any. *)
val containing_object : t -> pid:int -> addr:int -> (int * int) option

(** Read a concrete NUL-terminated string (stops at symbolic bytes). *)
val read_cstring : ?max_len:int -> t -> pid:int -> addr:int -> string

(** Store a concrete string, no terminator added. *)
val write_string : t -> pid:int -> addr:int -> string -> t

(** Total live bytes visible to [pid] (private + shared); used by the
    symbolic max-heap limit. *)
val footprint : t -> pid:int -> int
