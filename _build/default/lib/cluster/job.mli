(** Exploration jobs and their transfer encoding (paper section 3.2):
    a job is a candidate node encoded as its root path; batches aggregate
    into a prefix-sharing job tree. *)

type t = Engine.Path.t

(** Wire size of jobs encoded independently (one length byte plus one byte
    per choice). *)
val naive_encoded_size : t list -> int

(** Wire size of the batch as a preorder-serialized job tree: one
    structure byte per node plus one byte per edge.  Wins once jobs share
    substantial prefixes, which transferred sibling candidates always do. *)
val tree_encoded_size : t list -> int

(** Simulated size of shipping the serialized program state instead of
    the path (the alternative the paper rejects for bandwidth reasons). *)
val state_encoded_size : memory_bytes:int -> int
