(* Cluster driver: a discrete-event simulation of a Cloud9 deployment.

   Substitution note (see DESIGN.md): the paper measures wall-clock time
   on an EC2 cluster; a single-machine reproduction cannot honestly run 48
   workers concurrently, so time is *virtual*.  Each simulated worker
   embeds a real engine instance exploring the real execution tree; in
   every tick a worker retires up to [speed] instructions (heterogeneous
   per worker if desired), messages carry a latency in ticks, and workers
   may join at different times.  Everything the paper measures — time to
   goal, useful (non-replay) instructions, states transferred per
   interval, the effect of disabling the balancer — is preserved.

   One tick nominally represents 10 ms of virtual time. *)

module Path = Engine.Path
module Executor = Engine.Executor

type message =
  | Jobs of { dst : int; jobs : Path.t list }
  | Transfer_request of { src : int; dst : int; count : int }

type goal =
  | Exhaust                (* stop when the global tree is fully explored *)
  | Coverage_target of float
  | Time_limit             (* run until max_ticks *)

type 'env config = {
  nworkers : int;
  make_worker : int -> 'env Worker.t; (* builds worker [i] with its own engine *)
  join_tick : int -> int;   (* when worker [i] joins the cluster *)
  speed : int -> int;       (* instructions per tick for worker [i] *)
  status_interval : int;    (* ticks between status updates *)
  latency : int;            (* message latency in ticks *)
  lb_disable_at : int option;
  goal : goal;
  max_ticks : int;
  bucket_ticks : int;       (* stats bucket size (Fig. 12 uses 10 s) *)
  coverable_lines : int;    (* denominator for global coverage fraction *)
}

type bucket = {
  b_start_tick : int;
  mutable transferred : int; (* states moved between workers in this bucket *)
  mutable candidates : int;  (* candidate nodes, averaged over the bucket's ticks *)
  mutable cand_sum : int;    (* accumulator for the average *)
  mutable cand_samples : int;
  mutable useful : int;      (* cumulative useful instructions at bucket end *)
  mutable coverage : float;  (* global coverage fraction at bucket end *)
}

let fresh_bucket t =
  { b_start_tick = t; transferred = 0; candidates = 0; cand_sum = 0; cand_samples = 0; useful = 0; coverage = 0.0 }

type result = {
  ticks : int;               (* virtual time consumed *)
  reached_goal : bool;
  total_paths : int;
  total_errors : int;
  useful_instrs : int;
  replay_instrs : int;
  broken_replays : int;
  transfers : int;           (* total states transferred *)
  buckets : bucket list;     (* oldest first *)
  per_worker_useful : (int * int) list; (* worker id -> useful instructions *)
  final_coverage : float;
}

let popcount_bytes b =
  let rec pop x acc = if x = 0 then acc else pop (x lsr 1) (acc + (x land 1)) in
  let c = ref 0 in
  Bytes.iter (fun ch -> c := !c + pop (Char.code ch) 0) b;
  !c

let run (cfg : 'env config) =
  let workers : 'env Worker.t option array = Array.make cfg.nworkers None in
  let coverage_bytes =
    (* worker coverage vectors all have the same length; size the global
       vector accordingly once the first worker exists *)
    let w0 = cfg.make_worker 0 in
    Bytes.length w0.Worker.cfg.Executor.coverage
  in
  let lb = Balancer.create ~coverage_bytes () in
  let inbox : (int * message) list ref = ref [] in (* (deliver_tick, msg) *)
  let send ~at msg = inbox := (at, msg) :: !inbox in
  let tick = ref 0 in
  let transfers_total = ref 0 in
  let buckets = ref [] in
  let cur_bucket = ref (fresh_bucket 0) in
  let stop = ref false in
  let reached = ref false in

  let alive_workers () =
    Array.to_list workers |> List.filter_map (fun w -> w)
  in
  let global_coverage_fraction () =
    (* merge every live worker's vector into the LB's view *)
    let g = Balancer.global_coverage lb in
    List.iter
      (fun w ->
        let c = w.Worker.cfg.Executor.coverage in
        for i = 0 to min (Bytes.length g) (Bytes.length c) - 1 do
          Bytes.set g i (Char.chr (Char.code (Bytes.get g i) lor Char.code (Bytes.get c i)))
        done)
      (alive_workers ());
    if cfg.coverable_lines = 0 then 1.0
    else float_of_int (popcount_bytes g) /. float_of_int cfg.coverable_lines
  in
  let totals () =
    List.fold_left
      (fun (p, e, u, r, b) w ->
        let paths, errs, useful, replay = Worker.stats w in
        (p + paths, e + errs, u + useful, r + replay, b + w.Worker.broken_replays))
      (0, 0, 0, 0, 0) (alive_workers ())
  in

  while not !stop do
    let t = !tick in
    (* worker arrivals *)
    for i = 0 to cfg.nworkers - 1 do
      if workers.(i) = None && cfg.join_tick i <= t then begin
        let w = cfg.make_worker i in
        if i = 0 then Worker.seed_root w;
        workers.(i) <- Some w
      end
    done;
    (* deliver due messages *)
    let due, later = List.partition (fun (at, _) -> at <= t) !inbox in
    inbox := later;
    List.iter
      (fun (_, msg) ->
        match msg with
        | Jobs { dst; jobs } -> (
          match workers.(dst) with
          | Some w ->
            Worker.receive_jobs w jobs;
            transfers_total := !transfers_total + List.length jobs;
            !cur_bucket.transferred <- !cur_bucket.transferred + List.length jobs
          | None -> ())
        | Transfer_request { src; dst; count } -> (
          match workers.(src) with
          | Some w ->
            let jobs = Worker.transfer_out w ~count in
            if jobs <> [] then begin
              (* transfer size adds latency: 1 tick per 4 KiB of encoding *)
              let size = Job.tree_encoded_size jobs in
              let extra = size / 4096 in
              send ~at:(t + cfg.latency + extra) (Jobs { dst; jobs })
            end
          | None -> ()))
      due;
    (* balancer disable hook (Fig. 13) *)
    (match cfg.lb_disable_at with
    | Some at when t = at -> Balancer.disable lb
    | Some _ | None -> ());
    (* each worker runs its per-tick instruction budget *)
    Array.iteri
      (fun i w ->
        match w with
        | Some w -> ignore (Worker.execute w ~budget:(cfg.speed i))
        | None -> ())
      workers;
    (* periodic status reports and rebalancing *)
    if t mod cfg.status_interval = 0 then begin
      List.iter
        (fun w ->
          let cov = w.Worker.cfg.Executor.coverage in
          let global = Balancer.report lb ~worker:w.Worker.id ~queue_len:(Worker.queue_length w) ~coverage:cov in
          (* the worker merges the global vector into its own so its local
             coverage-optimized strategy pursues the global goal *)
          ignore (Executor.merge_coverage w.Worker.cfg global))
        (alive_workers ());
      List.iter
        (fun { Balancer.src; dst; count } ->
          send ~at:(t + cfg.latency) (Transfer_request { src; dst; count }))
        (Balancer.rebalance lb)
    end;
    (* bucket bookkeeping: sample the candidate population every tick so
       the bucket reports an average, not an end-of-bucket snapshot *)
    !cur_bucket.cand_sum <-
      !cur_bucket.cand_sum
      + List.fold_left (fun acc w -> acc + Worker.queue_length w) 0 (alive_workers ());
    !cur_bucket.cand_samples <- !cur_bucket.cand_samples + 1;
    if (t + 1) mod cfg.bucket_ticks = 0 then begin
      let _, _, useful, _, _ = totals () in
      !cur_bucket.candidates <- !cur_bucket.cand_sum / max 1 !cur_bucket.cand_samples;
      !cur_bucket.useful <- useful;
      !cur_bucket.coverage <- global_coverage_fraction ();
      buckets := !cur_bucket :: !buckets;
      cur_bucket := fresh_bucket (t + 1)
    end;
    (* goal checks *)
    let exhausted () =
      !inbox = []
      && List.for_all Worker.is_idle (alive_workers ())
      && Array.for_all (fun w -> w <> None) workers
    in
    (match cfg.goal with
    | Exhaust -> if exhausted () then begin reached := true; stop := true end
    | Coverage_target target ->
      if t mod cfg.status_interval = 0 && global_coverage_fraction () >= target then begin
        reached := true;
        stop := true
      end
      else if exhausted () then stop := true
    | Time_limit -> if exhausted () then begin reached := true; stop := true end);
    incr tick;
    if !tick >= cfg.max_ticks then stop := true
  done;
  let total_paths, total_errors, useful, replay, broken = totals () in
  {
    ticks = !tick;
    reached_goal = !reached;
    total_paths;
    total_errors;
    useful_instrs = useful;
    replay_instrs = replay;
    broken_replays = broken;
    transfers = !transfers_total;
    buckets = List.rev !buckets;
    per_worker_useful =
      List.map
        (fun w -> (w.Worker.id, w.Worker.cfg.Executor.stats.Executor.useful_instrs))
        (alive_workers ());
    final_coverage = global_coverage_fraction ();
  }

(* Convenience: a homogeneous cluster configuration with sensible
   defaults.  [make_worker] receives the worker id. *)
let default_config ~nworkers ~make_worker ~coverable_lines () =
  {
    nworkers;
    make_worker;
    join_tick = (fun _ -> 0);
    speed = (fun _ -> 2000);
    status_interval = 20;
    latency = 2;
    lb_disable_at = None;
    goal = Exhaust;
    max_ticks = 1_000_000;
    bucket_ticks = 1000;
    coverable_lines;
  }
