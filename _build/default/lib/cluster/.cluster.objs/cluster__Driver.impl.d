lib/cluster/driver.ml: Array Balancer Bytes Char Engine Job List Worker
