lib/cluster/worker.ml: Array Engine Hashtbl List Queue Random Trie
