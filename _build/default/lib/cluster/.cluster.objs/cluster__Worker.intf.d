lib/cluster/worker.mli: Engine Hashtbl Job Queue Random Trie
