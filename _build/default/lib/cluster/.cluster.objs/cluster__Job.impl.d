lib/cluster/job.ml: Engine List Trie
