lib/cluster/balancer.mli: Bytes
