lib/cluster/job.mli: Engine
