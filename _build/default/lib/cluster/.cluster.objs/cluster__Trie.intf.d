lib/cluster/trie.mli: Engine Random
