lib/cluster/driver.mli: Worker
