lib/cluster/trie.ml: Engine List Option Random
