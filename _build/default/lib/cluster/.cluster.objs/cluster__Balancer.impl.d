lib/cluster/balancer.ml: Bytes Char Float Hashtbl List
