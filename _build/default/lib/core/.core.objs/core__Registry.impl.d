lib/core/registry.ml: Cloud9 Cvm List Printf Targets
