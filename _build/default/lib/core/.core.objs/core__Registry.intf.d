lib/core/registry.mli: Cloud9 Cvm
