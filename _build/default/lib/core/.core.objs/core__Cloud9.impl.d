lib/core/cloud9.ml: Bytes Char Cluster Cvm Engine Format List Posix Random Smt
