lib/core/cloud9.mli: Bytes Cluster Cvm Engine Format Smt
