(** The registry of testing targets: every system of paper Table 4, each
    with its symbolic test harnesses.  The CLI, the examples, and the
    benchmark harness all draw targets from here. *)

type entry = {
  rname : string;
  rkind : string;  (** "Type of Software" (Table 4) *)
  variants : (string * (unit -> Cvm.Program.t)) list;
      (** harness name -> program; the first is the default *)
}

val entries : entry list

val find : string -> entry option
val find_variant : entry -> string option -> (string * (unit -> Cvm.Program.t)) option

(** Instantiate a Cloud9 target; [variant = None] picks the default
    harness.  [None] when the name or variant is unknown. *)
val resolve : name:string -> variant:string option -> Cloud9.target option

(** Rows of Table 4: (name, type, IR instruction count, statement count)
    of each default harness. *)
val table4 : unit -> (string * string * int * int) list
