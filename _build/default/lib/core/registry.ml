(* The registry of testing targets: every system of paper Table 4 that we
   reproduce, each with its symbolic test harnesses.  The CLI, the
   examples, and the benchmark harness all draw targets from here. *)

type entry = {
  rname : string;
  rkind : string;              (* "Type of Software" (Table 4) *)
  variants : (string * (unit -> Cvm.Program.t)) list;
      (* harness name -> program; the first is the default *)
}

let entries =
  [
    {
      rname = "memcached";
      rkind = "Distributed object cache";
      variants =
        [
          ("sym-packets-2", fun () -> Targets.Memcached_mini.symbolic_packets ~npackets:2 ~pkt_len:5);
          ("sym-packets-1", fun () -> Targets.Memcached_mini.symbolic_packets ~npackets:1 ~pkt_len:5);
          ("udp-hang", fun () -> Targets.Memcached_mini.udp_program ~dgram_len:5);
          ( "suite",
            fun () ->
              let _, cmds, statuses = List.hd Targets.Memcached_mini.test_suite in
              Targets.Memcached_mini.concrete_suite ~commands:cmds ~expected_statuses:statuses () );
        ];
    };
    {
      rname = "lighttpd";
      rkind = "Web server";
      variants =
        [
          ("v12-split", fun () -> Targets.Lighttpd_mini.(program V12 pattern_split));
          ("v12-whole", fun () -> Targets.Lighttpd_mini.(program V12 pattern_whole));
          ("v12-complex", fun () -> Targets.Lighttpd_mini.(program V12 pattern_complex));
          ("v13-split", fun () -> Targets.Lighttpd_mini.(program V13 pattern_split));
          ("v13-whole", fun () -> Targets.Lighttpd_mini.(program V13 pattern_whole));
          ("v13-complex", fun () -> Targets.Lighttpd_mini.(program V13 pattern_complex));
          ("v13-symbolic-frag", fun () -> Targets.Lighttpd_mini.(symbolic_program V13));
        ];
    };
    {
      rname = "curl";
      rkind = "Network utility";
      variants =
        [
          ("symbolic", fun () -> Targets.Curl_glob.program ~buggy:true ~url_len:6);
          ("fixed-symbolic", fun () -> Targets.Curl_glob.program ~buggy:false ~url_len:6);
          ( "crash-input",
            fun () -> Targets.Curl_glob.concrete_program ~buggy:true ~url:"s.{a,b}.com{" );
        ];
    };
    {
      rname = "bandicoot";
      rkind = "Lightweight DBMS";
      variants = [ ("symbolic", fun () -> Targets.Bandicoot_mini.program ~req_len:10) ];
    };
    {
      rname = "apache";
      rkind = "Web server";
      variants =
        [
          ("symbolic", fun () -> Targets.Apache_mini.program ~req_len:7);
          ( "conformance",
            fun () -> Targets.Apache_mini.concrete_program ~req:"GET / HTTP/1.1\r\nHost: x\r\n\r\n" );
        ];
    };
    {
      rname = "ghttpd";
      rkind = "Web server";
      variants =
        [
          ("symbolic", fun () -> Targets.Ghttpd_mini.program ~buggy:true ~req_len:22);
          ("fixed-symbolic", fun () -> Targets.Ghttpd_mini.program ~buggy:false ~req_len:22);
        ];
    };
    {
      rname = "python";
      rkind = "Language interpreter";
      variants =
        [
          ("sym-3", fun () -> Targets.Python_mini.program ~src_len:3);
          ("sym-4", fun () -> Targets.Python_mini.program ~src_len:4);
        ];
    };
    {
      rname = "rsync";
      rkind = "Network utility";
      variants = [ ("sym-5", fun () -> Targets.Rsync_mini.program ~new_len:5) ];
    };
    {
      rname = "pbzip";
      rkind = "Compression utility";
      variants =
        [
          ("symbolic", fun () -> Targets.Pbzip_mini.program ~nblocks:1 ~nworkers:2 ~symbolic:true);
          ("concrete", fun () -> Targets.Pbzip_mini.program ~nblocks:3 ~nworkers:2 ~symbolic:false);
        ];
    };
    {
      rname = "libevent";
      rkind = "Event notification library";
      variants =
        [
          ("symbolic", fun () -> Targets.Libevent_mini.program ~payload:"xxxx" ~symbolic:true);
          ("concrete", fun () -> Targets.Libevent_mini.program ~payload:"hello!" ~symbolic:false);
        ];
    };
    {
      rname = "printf";
      rkind = "UNIX utility";
      variants =
        [
          ("sym-4", fun () -> Targets.Printf_target.program ~fmt_len:4);
          ("sym-5", fun () -> Targets.Printf_target.program ~fmt_len:5);
        ];
    };
    {
      rname = "test";
      rkind = "UNIX utility";
      variants = [ ("sym-3", fun () -> Targets.Test_target.program ~ntokens:3) ];
    };
    {
      rname = "prodcons";
      rkind = "POSIX model exerciser";
      variants =
        [
          ( "symbolic",
            fun () ->
              Targets.Prodcons.program ~nproducers:1 ~nconsumers:1 ~items_per_producer:2
                ~symbolic:true );
          ( "concrete",
            fun () ->
              Targets.Prodcons.program ~nproducers:2 ~nconsumers:2 ~items_per_producer:2
                ~symbolic:false );
        ];
    };
    {
      rname = "coreutils";
      rkind = "Suite of system utilities";
      variants =
        List.init Targets.Coreutils_gen.count (fun seed ->
            (Targets.Coreutils_gen.name seed, fun () -> Targets.Coreutils_gen.program seed));
    };
  ]

let find name = List.find_opt (fun e -> e.rname = name) entries

let find_variant entry variant =
  match variant with
  | None -> Some (List.hd entry.variants)
  | Some vname -> List.find_opt (fun (n, _) -> n = vname) entry.variants

(* Instantiate a Cloud9 target from registry names. *)
let resolve ~name ~variant =
  match find name with
  | None -> None
  | Some e -> (
    match find_variant e variant with
    | None -> None
    | Some (vname, mk) ->
      Some (Cloud9.target ~kind:e.rkind (Printf.sprintf "%s/%s" e.rname vname) (mk ())))

(* Rows of Table 4: target name, type, and static size in IR instructions
   and source statements of the default harness. *)
let table4 () =
  List.map
    (fun e ->
      let _, mk = List.hd e.variants in
      let p = mk () in
      (e.rname, e.rkind, Cvm.Program.instruction_count p, p.Cvm.Program.nlines))
    entries
