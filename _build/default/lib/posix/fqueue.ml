(* A persistent FIFO queue (Okasaki's two-list representation): O(1)
   amortized push/pop without mutation, so queues embedded in the
   environment state clone for free at state forks. *)

type 'a t = { front : 'a list; back : 'a list; size : int }

let empty = { front = []; back = []; size = 0 }

let is_empty q = q.size = 0
let length q = q.size

let push q x = { q with back = x :: q.back; size = q.size + 1 }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; size = q.size - 1 })
  | [] -> (
    match List.rev q.back with
    | [] -> None
    | x :: front -> Some (x, { front; back = []; size = q.size - 1 }))

let peek q =
  match q.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev q.back with [] -> None | x :: _ -> Some x)

(* Remove up to [n] elements from the front. *)
let pop_n q n =
  let rec go acc q n =
    if n = 0 then (List.rev acc, q)
    else
      match pop q with
      | None -> (List.rev acc, q)
      | Some (x, q) -> go (x :: acc) q (n - 1)
  in
  go [] q n

let push_list q xs = List.fold_left push q xs

let to_list q = q.front @ List.rev q.back

let of_list xs = { front = xs; back = []; size = List.length xs }
