(** A persistent FIFO queue (two-list representation): O(1) amortized
    push/pop without mutation, so queues embedded in the environment state
    clone for free at state forks. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> 'a -> 'a t
val pop : 'a t -> ('a * 'a t) option
val peek : 'a t -> 'a option

(** Remove up to [n] elements from the front. *)
val pop_n : 'a t -> int -> 'a list * 'a t

val push_list : 'a t -> 'a list -> 'a t
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
