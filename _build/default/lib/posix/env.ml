(* State of the POSIX environment model (paper section 4).

   The model keeps, per execution state, a persistent record of all system
   objects: per-process file descriptor tables, files (block buffers),
   half-duplex stream buffers (the building block of pipes and sockets,
   Fig. 6), the single-IP network's listener and UDP port maps, and fault
   injection bookkeeping.  Persistence makes the whole environment fork
   with the execution state for free.

   Wait-list ids used by the model come from a dedicated counter
   (starting at 1_000_000) so they never collide with wait lists the
   tested program allocates through the engine's get_wlist primitive. *)

module Imap = Map.Make (Int)
module Smap = Map.Make (String)
module E = Smt.Expr

(* --- stream buffers --------------------------------------------------------- *)

(* A half-duplex byte channel: producer-consumer queue with event wait
   lists on both ends (paper section 4.3, "stream buffers"). *)
type stream = {
  data : E.t Fqueue.t;
  capacity : int;
  closed_write : bool; (* no more data will arrive; readers see EOF *)
  closed_read : bool;  (* readers are gone; writers get EPIPE *)
  rd_wl : int;         (* woken when data arrives or the write end closes *)
  wr_wl : int;         (* woken when space frees or the read end closes *)
  fragment : bool;     (* SIO_PKT_FRAGMENT: fork over read sizes *)
}

(* --- files (block buffers) ---------------------------------------------------- *)

type file = {
  bytes : E.t Imap.t; (* offset -> byte; holes read as zero *)
  fsize : int;
}

(* --- descriptors ----------------------------------------------------------------- *)

type fd_kind =
  | Kfile of { path : string; pos : int; flags : int }
  | Kpipe_rd of int (* stream id *)
  | Kpipe_wr of int
  | Ktcp_new
  | Ktcp_bound of int (* port *)
  | Ktcp_listen of int (* port; the accept queue lives in [listeners] *)
  | Ktcp_conn of { rx : int; tx : int } (* stream ids *)
  | Kudp of { port : int option }

type fd = {
  kind : fd_kind;
  fi_rd : bool;  (* SIO_FAULT_INJ RD *)
  fi_wr : bool;  (* SIO_FAULT_INJ WR *)
  sym_src : bool; (* SIO_SYMBOLIC: reads produce fresh symbolic bytes *)
  nonblock : bool; (* O_NONBLOCK: would-block operations return EAGAIN *)
}

let plain_fd kind = { kind; fi_rd = false; fi_wr = false; sym_src = false; nonblock = false }

type fdtable = { fds : fd Imap.t; next_fd : int }

(* --- network ----------------------------------------------------------------------- *)

(* A pending or accepted TCP connection is a pair of streams:
   client-to-server and server-to-client. *)
type listener = {
  backlog : (int * int) Fqueue.t; (* (c2s, s2c) stream ids *)
  lwl : int;                      (* accept() waits here *)
}

type udp_port = {
  dgrams : E.t list Fqueue.t; (* whole datagrams, preserving boundaries *)
  uwl : int;
}

(* --- the environment ------------------------------------------------------------------ *)

type t = {
  tables : fdtable Imap.t; (* pid -> descriptor table *)
  files : file Smap.t;     (* path -> file *)
  streams : stream Imap.t;
  next_stream : int;
  listeners : listener Imap.t; (* TCP port -> accept queue *)
  udp_ports : udp_port Imap.t; (* UDP port -> datagram queue *)
  next_wl : int;
  fi_global : bool;   (* cloud9_fi_enable / cloud9_fi_disable *)
  fault_count : int;  (* faults injected along this path (strategy input) *)
  exit_codes : int64 Imap.t; (* pid -> exit status *)
  wait_wl : int;      (* waitpid() sleeps here *)
  select_wl : int;    (* select() sleeps here; notified on every event *)
  clock : int;        (* deterministic time source *)
}

let stream_capacity = 65536

let init () =
  {
    tables = Imap.singleton 0 { fds = Imap.empty; next_fd = 3 };
    files = Smap.empty;
    streams = Imap.empty;
    next_stream = 1;
    listeners = Imap.empty;
    udp_ports = Imap.empty;
    next_wl = 1_000_000;
    fi_global = false;
    fault_count = 0;
    exit_codes = Imap.empty;
    wait_wl = 999_998;
    select_wl = 999_999;
    clock = 0;
  }

let fresh_wl t = ({ t with next_wl = t.next_wl + 1 }, t.next_wl)

(* --- descriptor tables ------------------------------------------------------------------- *)

let table t pid =
  match Imap.find_opt pid t.tables with
  | Some tbl -> tbl
  | None -> { fds = Imap.empty; next_fd = 3 }

let set_table t pid tbl = { t with tables = Imap.add pid tbl t.tables }

(* fork() semantics: the child inherits a copy of the parent's table. *)
let clone_table t ~parent ~child = set_table t child (table t parent)

let lookup_fd t pid fdnum = Imap.find_opt fdnum (table t pid).fds

let alloc_fd t pid fd =
  let tbl = table t pid in
  let fdnum = tbl.next_fd in
  (set_table t pid { fds = Imap.add fdnum fd tbl.fds; next_fd = fdnum + 1 }, fdnum)

let set_fd t pid fdnum fd =
  let tbl = table t pid in
  set_table t pid { tbl with fds = Imap.add fdnum fd tbl.fds }

let remove_fd t pid fdnum =
  let tbl = table t pid in
  set_table t pid { tbl with fds = Imap.remove fdnum tbl.fds }

(* --- streams --------------------------------------------------------------------------------- *)

let new_stream ?(capacity = stream_capacity) t =
  let t, rd_wl = fresh_wl t in
  let t, wr_wl = fresh_wl t in
  let id = t.next_stream in
  let s =
    {
      data = Fqueue.empty;
      capacity;
      closed_write = false;
      closed_read = false;
      rd_wl;
      wr_wl;
      fragment = false;
    }
  in
  ({ t with next_stream = id + 1; streams = Imap.add id s t.streams }, id)

let stream_exn t id =
  match Imap.find_opt id t.streams with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Posix.Env: unknown stream %d" id)

let set_stream t id s = { t with streams = Imap.add id s t.streams }

let stream_readable s = not (Fqueue.is_empty s.data) || s.closed_write
let stream_writable s = Fqueue.length s.data < s.capacity && not s.closed_read

(* --- files --------------------------------------------------------------------------------------- *)

let file_of_bytes content =
  let bytes =
    String.to_seq content
    |> Seq.mapi (fun i c -> (i, E.const ~width:8 (Int64.of_int (Char.code c))))
    |> Imap.of_seq
  in
  { bytes; fsize = String.length content }

let file_of_exprs exprs =
  let bytes = List.mapi (fun i e -> (i, e)) exprs |> List.to_seq |> Imap.of_seq in
  { bytes; fsize = List.length exprs }

let file_read_byte f off =
  match Imap.find_opt off f.bytes with
  | Some e -> e
  | None -> E.const ~width:8 0L

let file_write_byte f off e =
  { bytes = Imap.add off e f.bytes; fsize = max f.fsize (off + 1) }

(* --- fault injection --------------------------------------------------------------------------------- *)

(* Whether a read/write class operation on [fd] is subject to fault
   injection right now. *)
let should_inject t fd ~write = t.fi_global && if write then fd.fi_wr else fd.fi_rd

let record_fault t = { t with fault_count = t.fault_count + 1 }
