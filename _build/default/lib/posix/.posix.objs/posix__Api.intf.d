lib/posix/api.mli: Cvm Engine Handler Lang Smt
