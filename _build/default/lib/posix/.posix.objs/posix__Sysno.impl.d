lib/posix/sysno.ml:
