lib/posix/env.ml: Char Fqueue Int Int64 List Map Printf Seq Smt String
