lib/posix/api.ml: Engine Env Handler Int64 Lang Option Smt Sysno
