lib/posix/fqueue.ml: List
