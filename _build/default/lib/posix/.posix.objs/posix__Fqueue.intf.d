lib/posix/fqueue.mli:
