lib/posix/handler.ml: Array Char Cvm Engine Env Fqueue Int Int64 List Map Printf Smt String Sysno
