lib/posix/handler.mli: Engine Env
