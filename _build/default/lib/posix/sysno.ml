(* System call numbers, ioctl codes, and flag constants of the POSIX
   model.  Numbers below [Engine.Executor.Sysno.model_base] (100) are
   engine primitives; everything here is >= 100 and dispatched to
   {!Handler}. *)

let open_ = 100
let close = 101
let read = 102
let write = 103
let pipe = 104
let socket = 105
let bind = 106
let listen = 107
let accept = 108
let connect = 109
let send = 110
let recv = 111
let sendto = 112
let recvfrom = 113
let select = 114
let ioctl = 115
let dup = 116
let lseek = 117
let fstat_size = 118
let unlink = 119
let waitpid = 120
let fi_enable = 121       (* cloud9_fi_enable: global fault injection on *)
let fi_disable = 122      (* cloud9_fi_disable *)
let mkfile = 123          (* test setup: create a concrete file *)
let make_symbolic_file = 124 (* test setup: create a file with symbolic bytes *)
let exit_ = 125           (* process exit: terminates the calling process *)
let time = 126            (* deterministic clock (path step count) *)
let fork_ = 127           (* POSIX fork: engine fork + descriptor table inheritance *)
let fcntl = 128           (* F_GETFL / F_SETFL (O_NONBLOCK) *)
let dup2 = 129

(* fcntl commands *)
let f_getfl = 1
let f_setfl = 2

(* file status flags *)
let o_nonblock = 1

(* open() flags *)
let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 4
let o_trunc = 8
let o_append = 16

(* socket protocols *)
let sock_stream = 0 (* TCP *)
let sock_dgram = 1  (* UDP *)

(* extended ioctl codes (paper Table 3) *)
let sio_symbolic = 1      (* this fd becomes a source of symbolic input *)
let sio_pkt_fragment = 2  (* explore all read-fragmentation patterns *)
let sio_fault_inj = 3     (* per-descriptor fault injection; arg = RD|WR *)

(* SIO_FAULT_INJ argument bits *)
let rd = 1
let wr = 2

(* error returns (negated errno values, as the raw syscall layer does) *)
let eof = 0
let ebadf = -9
let efault = -14
let einval = -22
let epipe = -32
let econnrefused = -111
let eaddrinuse = -98
let eagain = -11
let enoent = -2
let echild = -10
let enomem = -12
