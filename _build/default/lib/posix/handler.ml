(* The POSIX model's system-call handler: implements file I/O, pipes, TCP
   and UDP sockets over the single-IP symbolic network, select(), the
   extended ioctls of paper Table 3, fault injection, and process exit /
   wait — all in terms of the engine's primitives and the persistent
   {!Env} state carried inside each execution state.

   Blocking calls return [Sys_block]: the engine puts the thread to sleep
   with the program counter still at the syscall, so the call re-executes
   from scratch when a notify wakes the thread (the retry idiom).

   Fault injection (when globally enabled and armed on the descriptor)
   forks every completed I/O operation into a success variant and an
   error-return variant that leaves the environment untouched. *)

module Imap = Map.Make (Int)
module E = Smt.Expr
module State = Engine.State
module Executor = Engine.Executor
module Errors = Engine.Errors
module Memory = Cvm.Memory

type env = Env.t

let i64 v = E.const ~width:64 (Int64.of_int v)

let env_of (st : env State.t) = st.State.env
let with_env st env = State.map_env st (fun _ -> env)

let conc cfg st e =
  let st, v = Executor.concretize cfg st e in
  (st, Int64.to_int v)

(* Wake an event wait list plus the global select list. *)
let wake_event st env wl =
  let st = State.wake_all st wl in
  State.wake_all st env.Env.select_wl

(* --- guest memory ------------------------------------------------------------ *)

let load_bytes (st : env State.t) ~addr ~len =
  let pid = State.current_pid st in
  List.init len (fun i -> Memory.load st.State.mem ~pid ~addr:(addr + i) ~len:1)

let store_bytes (st : env State.t) ~addr bytes =
  let pid = State.current_pid st in
  let mem =
    List.fold_left
      (fun (mem, i) b -> (Memory.store mem ~pid ~addr:(addr + i) b, i + 1))
      (st.State.mem, 0) bytes
    |> fst
  in
  { st with State.mem }

let store_i32 (st : env State.t) ~addr v =
  let pid = State.current_pid st in
  { st with State.mem = Memory.store st.State.mem ~pid ~addr (E.const ~width:32 (Int64.of_int v)) }

let read_path cfg st ptr_e =
  let st, addr = conc cfg st ptr_e in
  (st, Memory.read_cstring st.State.mem ~pid:(State.current_pid st) ~addr)

(* --- fault injection wrapper ----------------------------------------------------- *)

(* [inject pre fd ~write ok]: if injection applies, fork into the
   completed operation and an error return computed from the pre-call
   state (so the fault variant has no side effects). *)
let inject (pre : env State.t) fd ~write (ok : env State.t * int) : env Executor.sys_outcome =
  let st_ok, v_ok = ok in
  if Env.should_inject (env_of pre) fd ~write then
    let st_fault = with_env pre (Env.record_fault (env_of pre)) in
    Executor.Sys_choices [ (st_ok, i64 v_ok); (st_fault, i64 Sysno.efault) ]
  else Executor.Sys_ret (st_ok, i64 v_ok)

(* Block on [wl] — or return EAGAIN when the descriptor is nonblocking. *)
let block_or_again (fd : Env.fd) st wl =
  if fd.Env.nonblock then Executor.Sys_ret (st, i64 Sysno.eagain)
  else Executor.Sys_block (st, wl)

(* --- descriptor helpers -------------------------------------------------------------- *)

let with_fd (st : env State.t) fdnum k =
  match Env.lookup_fd (env_of st) (State.current_pid st) fdnum with
  | None -> Executor.Sys_ret (st, i64 Sysno.ebadf)
  | Some fd -> k fd

(* --- read ------------------------------------------------------------------------------- *)

(* Copy [bytes] into the guest buffer and return their count. *)
let deliver st ~buf bytes : env State.t * int =
  let st = store_bytes st ~addr:buf bytes in
  (st, List.length bytes)

let read_file cfg st fd fdnum ~path ~pos ~flags ~buf ~len =
  ignore cfg;
  match Env.Smap.find_opt path (env_of st).Env.files with
  | None -> Executor.Sys_ret (st, i64 Sysno.ebadf)
  | Some file ->
    let avail = min len (file.Env.fsize - pos) in
    if avail <= 0 then inject st fd ~write:false (st, Sysno.eof)
    else begin
      let bytes = List.init avail (fun i -> Env.file_read_byte file (pos + i)) in
      let st', n = deliver st ~buf bytes in
      let env = env_of st' in
      let st' =
        with_env st'
          (Env.set_fd env (State.current_pid st') fdnum
             { fd with Env.kind = Env.Kfile { path; pos = pos + n; flags } })
      in
      inject st fd ~write:false (st', n)
    end

(* Read from a stream buffer.  With SIO_PKT_FRAGMENT set, fork one variant
   per possible fragment size 1..avail (paper section 5.1, "Network
   Conditions"). *)
let read_stream st fd ~sid ~buf ~len =
  let env = env_of st in
  let s = Env.stream_exn env sid in
  if Fqueue.is_empty s.Env.data then
    if s.Env.closed_write then inject st fd ~write:false (st, Sysno.eof)
    else block_or_again fd st s.Env.rd_wl
  else begin
    let avail = min len (Fqueue.length s.Env.data) in
    let take n =
      let bytes, data = Fqueue.pop_n s.Env.data n in
      let env = Env.set_stream env sid { s with Env.data } in
      let st = with_env st env in
      let st = wake_event st env s.Env.wr_wl in
      deliver st ~buf bytes
    in
    if s.Env.fragment && avail > 1 then
      Executor.Sys_choices
        (List.init avail (fun i ->
             let st', n = take (i + 1) in
             (st', i64 n)))
    else inject st fd ~write:false (take avail)
  end

(* A symbolic-source descriptor (SIO_SYMBOLIC): reads yield fresh
   symbolic bytes — or, in test-case replay mode, the recorded concrete
   bytes for this input. *)
let read_symbolic cfg st fd fdnum ~buf ~len =
  let name = Printf.sprintf "fd%d#%d" fdnum (List.length st.State.sym_inputs) in
  let take st n =
    match cfg.Executor.concrete_inputs with
    | Some inputs when List.mem_assoc name inputs ->
      let data = List.assoc name inputs in
      let bytes =
        List.init n (fun i ->
            let b = if i < String.length data then Char.code data.[i] else 0 in
            E.const ~width:8 (Int64.of_int b))
      in
      deliver st ~buf bytes
    | Some _ | None ->
      let st, syms = State.fresh_input st ~name ~count:n in
      deliver st ~buf syms
  in
  let fragmented =
    match fd.Env.kind with
    | Env.Ktcp_conn { rx; _ } -> (Env.stream_exn (env_of st) rx).Env.fragment
    | Env.Kpipe_rd sid -> (Env.stream_exn (env_of st) sid).Env.fragment
    | Env.Kfile _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _
    | Env.Kudp _ ->
      false
  in
  if fragmented && len > 1 then
    Executor.Sys_choices
      (List.init len (fun i ->
           let st', n = take st (i + 1) in
           (st', i64 n)))
  else inject st fd ~write:false (take st len)

let read_udp st fd ~port ~buf ~len =
  let env = env_of st in
  match port with
  | None -> Executor.Sys_ret (st, i64 Sysno.einval)
  | Some p -> (
    match Imap.find_opt p env.Env.udp_ports with
    | None -> Executor.Sys_ret (st, i64 Sysno.einval)
    | Some q -> (
      match Fqueue.pop q.Env.dgrams with
      | None -> block_or_again fd st q.Env.uwl
      | Some (dgram, dgrams) ->
        (* UDP semantics: one datagram per read, excess bytes discarded *)
        let taken = List.filteri (fun i _ -> i < len) dgram in
        let env = { env with Env.udp_ports = Imap.add p { q with Env.dgrams } env.Env.udp_ports } in
        let st' = with_env st env in
        inject st fd ~write:false (deliver st' ~buf taken)))

let sys_read cfg st fdnum_e buf_e len_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, buf = conc cfg st buf_e in
  let st, len = conc cfg st len_e in
  with_fd st fdnum (fun fd ->
      if len < 0 then Executor.Sys_ret (st, i64 Sysno.einval)
      else if len = 0 then Executor.Sys_ret (st, i64 0)
      else if fd.Env.sym_src then read_symbolic cfg st fd fdnum ~buf ~len
      else
        match fd.Env.kind with
        | Env.Kfile { path; pos; flags } -> read_file cfg st fd fdnum ~path ~pos ~flags ~buf ~len
        | Env.Kpipe_rd sid -> read_stream st fd ~sid ~buf ~len
        | Env.Ktcp_conn { rx; _ } -> read_stream st fd ~sid:rx ~buf ~len
        | Env.Kudp { port } -> read_udp st fd ~port ~buf ~len
        | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _ ->
          Executor.Sys_ret (st, i64 Sysno.einval))

(* --- write ---------------------------------------------------------------------------------- *)

let write_file st fd fdnum ~path ~pos ~flags ~bytes =
  let env = env_of st in
  match Env.Smap.find_opt path env.Env.files with
  | None -> Executor.Sys_ret (st, i64 Sysno.ebadf)
  | Some file ->
    let pos = if flags land Sysno.o_append <> 0 then file.Env.fsize else pos in
    let file =
      List.fold_left
        (fun (f, i) b -> (Env.file_write_byte f (pos + i) b, i + 1))
        (file, 0) bytes
      |> fst
    in
    let n = List.length bytes in
    let env = { env with Env.files = Env.Smap.add path file env.Env.files } in
    let env =
      Env.set_fd env (State.current_pid st) fdnum
        { fd with Env.kind = Env.Kfile { path; pos = pos + n; flags } }
    in
    inject st fd ~write:true (with_env st env, n)

let write_stream st fd ~sid ~bytes =
  let env = env_of st in
  let s = Env.stream_exn env sid in
  if s.Env.closed_read then inject st fd ~write:true (st, Sysno.epipe)
  else begin
    let space = s.Env.capacity - Fqueue.length s.Env.data in
    if space <= 0 then block_or_again fd st s.Env.wr_wl
    else begin
      let taken = List.filteri (fun i _ -> i < space) bytes in
      let env = Env.set_stream env sid { s with Env.data = Fqueue.push_list s.Env.data taken } in
      let st = with_env st env in
      let st = wake_event st env s.Env.rd_wl in
      inject st fd ~write:true (st, List.length taken)
    end
  end

let sys_write cfg st fdnum_e buf_e len_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, buf = conc cfg st buf_e in
  let st, len = conc cfg st len_e in
  with_fd st fdnum (fun fd ->
      if len < 0 then Executor.Sys_ret (st, i64 Sysno.einval)
      else if len = 0 then Executor.Sys_ret (st, i64 0)
      else
        let bytes = load_bytes st ~addr:buf ~len in
        match fd.Env.kind with
        | Env.Kfile { path; pos; flags } -> write_file st fd fdnum ~path ~pos ~flags ~bytes
        | Env.Kpipe_wr sid -> write_stream st fd ~sid ~bytes
        | Env.Ktcp_conn { tx; _ } -> write_stream st fd ~sid:tx ~bytes
        | Env.Kpipe_rd _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _ | Env.Kudp _ ->
          Executor.Sys_ret (st, i64 Sysno.einval))

(* --- open / close / dup / lseek ---------------------------------------------------------------- *)

let sys_open cfg st path_e flags_e =
  let st, path = read_path cfg st path_e in
  let st, flags = conc cfg st flags_e in
  let env = env_of st in
  let exists = Env.Smap.mem path env.Env.files in
  if (not exists) && flags land Sysno.o_creat = 0 then Executor.Sys_ret (st, i64 Sysno.enoent)
  else begin
    let env =
      if (not exists) || flags land Sysno.o_trunc <> 0 then
        { env with Env.files = Env.Smap.add path (Env.file_of_bytes "") env.Env.files }
      else env
    in
    let pos =
      if flags land Sysno.o_append <> 0 then
        match Env.Smap.find_opt path env.Env.files with Some f -> f.Env.fsize | None -> 0
      else 0
    in
    let env, fdnum =
      Env.alloc_fd env (State.current_pid st) (Env.plain_fd (Env.Kfile { path; pos; flags }))
    in
    Executor.Sys_ret (with_env st env, i64 fdnum)
  end

let close_stream_end env sid ~read_side =
  let s = Env.stream_exn env sid in
  let s = if read_side then { s with Env.closed_read = true } else { s with Env.closed_write = true } in
  (Env.set_stream env sid s, s)

let sys_close cfg st fdnum_e =
  let st, fdnum = conc cfg st fdnum_e in
  with_fd st fdnum (fun fd ->
      let pid = State.current_pid st in
      let env = Env.remove_fd (env_of st) pid fdnum in
      let env, wls =
        match fd.Env.kind with
        | Env.Kpipe_rd sid ->
          let env, s = close_stream_end env sid ~read_side:true in
          (env, [ s.Env.wr_wl ])
        | Env.Kpipe_wr sid ->
          let env, s = close_stream_end env sid ~read_side:false in
          (env, [ s.Env.rd_wl ])
        | Env.Ktcp_conn { rx; tx } ->
          let env, srx = close_stream_end env rx ~read_side:true in
          let env, stx = close_stream_end env tx ~read_side:false in
          (env, [ srx.Env.wr_wl; stx.Env.rd_wl ])
        | Env.Ktcp_listen port -> ({ env with Env.listeners = Imap.remove port env.Env.listeners }, [])
        | Env.Kfile _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Kudp _ -> (env, [])
      in
      let st = with_env st env in
      let st = List.fold_left (fun st wl -> wake_event st env wl) st wls in
      Executor.Sys_ret (st, i64 0))

(* fcntl: F_GETFL returns the status flags; F_SETFL sets O_NONBLOCK. *)
let sys_fcntl cfg st fdnum_e cmd_e arg_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, cmd = conc cfg st cmd_e in
  let st, arg = conc cfg st arg_e in
  with_fd st fdnum (fun fd ->
      if cmd = Sysno.f_getfl then
        Executor.Sys_ret (st, i64 (if fd.Env.nonblock then Sysno.o_nonblock else 0))
      else if cmd = Sysno.f_setfl then begin
        let fd = { fd with Env.nonblock = arg land Sysno.o_nonblock <> 0 } in
        Executor.Sys_ret (with_env st (Env.set_fd (env_of st) (State.current_pid st) fdnum fd), i64 0)
      end
      else Executor.Sys_ret (st, i64 Sysno.einval))

(* dup2: duplicate onto a specific descriptor number (closing any previous
   occupant's slot entry; stream end-close bookkeeping is dup-unaware, as
   noted in the close() model). *)
let sys_dup2 cfg st fdnum_e newfd_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, newfd = conc cfg st newfd_e in
  with_fd st fdnum (fun fd ->
      if newfd < 0 then Executor.Sys_ret (st, i64 Sysno.ebadf)
      else if newfd = fdnum then Executor.Sys_ret (st, i64 newfd)
      else begin
        let env = Env.set_fd (env_of st) (State.current_pid st) newfd fd in
        Executor.Sys_ret (with_env st env, i64 newfd)
      end)

let sys_dup cfg st fdnum_e =
  let st, fdnum = conc cfg st fdnum_e in
  with_fd st fdnum (fun fd ->
      let env, fdnum' = Env.alloc_fd (env_of st) (State.current_pid st) fd in
      Executor.Sys_ret (with_env st env, i64 fdnum'))

let sys_lseek cfg st fdnum_e off_e whence_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, off = conc cfg st off_e in
  let st, whence = conc cfg st whence_e in
  with_fd st fdnum (fun fd ->
      match fd.Env.kind with
      | Env.Kfile { path; pos; flags } -> (
        match Env.Smap.find_opt path (env_of st).Env.files with
        | None -> Executor.Sys_ret (st, i64 Sysno.ebadf)
        | Some file ->
          let base = match whence with 0 -> 0 | 1 -> pos | 2 -> file.Env.fsize | _ -> -1 in
          if base < 0 || base + off < 0 then Executor.Sys_ret (st, i64 Sysno.einval)
          else begin
            let pos = base + off in
            let env =
              Env.set_fd (env_of st) (State.current_pid st) fdnum
                { fd with Env.kind = Env.Kfile { path; pos; flags } }
            in
            Executor.Sys_ret (with_env st env, i64 pos)
          end)
      | Env.Kpipe_rd _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _
      | Env.Ktcp_conn _ | Env.Kudp _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_fstat_size cfg st fdnum_e =
  let st, fdnum = conc cfg st fdnum_e in
  with_fd st fdnum (fun fd ->
      match fd.Env.kind with
      | Env.Kfile { path; _ } -> (
        match Env.Smap.find_opt path (env_of st).Env.files with
        | Some file -> Executor.Sys_ret (st, i64 file.Env.fsize)
        | None -> Executor.Sys_ret (st, i64 Sysno.ebadf))
      | Env.Kpipe_rd _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _
      | Env.Ktcp_conn _ | Env.Kudp _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_unlink cfg st path_e =
  let st, path = read_path cfg st path_e in
  let env = env_of st in
  if Env.Smap.mem path env.Env.files then
    Executor.Sys_ret (with_env st { env with Env.files = Env.Smap.remove path env.Env.files }, i64 0)
  else Executor.Sys_ret (st, i64 Sysno.enoent)

(* --- sockets --------------------------------------------------------------------------------------- *)

let sys_socket cfg st proto_e =
  let st, proto = conc cfg st proto_e in
  let kind =
    if proto = Sysno.sock_dgram then Env.Kudp { port = None } else Env.Ktcp_new
  in
  let env, fdnum = Env.alloc_fd (env_of st) (State.current_pid st) (Env.plain_fd kind) in
  Executor.Sys_ret (with_env st env, i64 fdnum)

let sys_bind cfg st fdnum_e port_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, port = conc cfg st port_e in
  with_fd st fdnum (fun fd ->
      let pid = State.current_pid st in
      let env = env_of st in
      match fd.Env.kind with
      | Env.Ktcp_new ->
        if Imap.mem port env.Env.listeners then Executor.Sys_ret (st, i64 Sysno.eaddrinuse)
        else
          Executor.Sys_ret
            (with_env st (Env.set_fd env pid fdnum { fd with Env.kind = Env.Ktcp_bound port }), i64 0)
      | Env.Kudp { port = None } ->
        if Imap.mem port env.Env.udp_ports then Executor.Sys_ret (st, i64 Sysno.eaddrinuse)
        else begin
          let env, uwl = Env.fresh_wl env in
          let env =
            { env with Env.udp_ports = Imap.add port { Env.dgrams = Fqueue.empty; uwl } env.Env.udp_ports }
          in
          let env = Env.set_fd env pid fdnum { fd with Env.kind = Env.Kudp { port = Some port } } in
          Executor.Sys_ret (with_env st env, i64 0)
        end
      | Env.Kudp { port = Some _ } | Env.Ktcp_bound _ | Env.Ktcp_listen _ | Env.Ktcp_conn _
      | Env.Kfile _ | Env.Kpipe_rd _ | Env.Kpipe_wr _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_listen cfg st fdnum_e =
  let st, fdnum = conc cfg st fdnum_e in
  with_fd st fdnum (fun fd ->
      let env = env_of st in
      match fd.Env.kind with
      | Env.Ktcp_bound port ->
        if Imap.mem port env.Env.listeners then Executor.Sys_ret (st, i64 Sysno.eaddrinuse)
        else begin
          let env, lwl = Env.fresh_wl env in
          let env =
            { env with Env.listeners = Imap.add port { Env.backlog = Fqueue.empty; lwl } env.Env.listeners }
          in
          let env =
            Env.set_fd env (State.current_pid st) fdnum { fd with Env.kind = Env.Ktcp_listen port }
          in
          Executor.Sys_ret (with_env st env, i64 0)
        end
      | Env.Ktcp_new | Env.Ktcp_listen _ | Env.Ktcp_conn _ | Env.Kudp _ | Env.Kfile _
      | Env.Kpipe_rd _ | Env.Kpipe_wr _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_accept cfg st fdnum_e =
  let st, fdnum = conc cfg st fdnum_e in
  with_fd st fdnum (fun fd ->
      let env = env_of st in
      match fd.Env.kind with
      | Env.Ktcp_listen port -> (
        match Imap.find_opt port env.Env.listeners with
        | None -> Executor.Sys_ret (st, i64 Sysno.einval)
        | Some l -> (
          match Fqueue.pop l.Env.backlog with
          | None -> block_or_again fd st l.Env.lwl
          | Some ((c2s, s2c), backlog) ->
            let env =
              { env with Env.listeners = Imap.add port { l with Env.backlog } env.Env.listeners }
            in
            let env, newfd =
              Env.alloc_fd env (State.current_pid st)
                (Env.plain_fd (Env.Ktcp_conn { rx = c2s; tx = s2c }))
            in
            Executor.Sys_ret (with_env st env, i64 newfd)))
      | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_conn _ | Env.Kudp _ | Env.Kfile _
      | Env.Kpipe_rd _ | Env.Kpipe_wr _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_connect cfg st fdnum_e port_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, port = conc cfg st port_e in
  with_fd st fdnum (fun fd ->
      let env = env_of st in
      match fd.Env.kind with
      | Env.Ktcp_new -> (
        match Imap.find_opt port env.Env.listeners with
        | None -> Executor.Sys_ret (st, i64 Sysno.econnrefused)
        | Some l ->
          let env, c2s = Env.new_stream env in
          let env, s2c = Env.new_stream env in
          let env =
            {
              env with
              Env.listeners =
                Imap.add port { l with Env.backlog = Fqueue.push l.Env.backlog (c2s, s2c) } env.Env.listeners;
            }
          in
          let env =
            Env.set_fd env (State.current_pid st) fdnum
              { fd with Env.kind = Env.Ktcp_conn { rx = s2c; tx = c2s } }
          in
          let st = with_env st env in
          let st = wake_event st env l.Env.lwl in
          Executor.Sys_ret (st, i64 0))
      | Env.Ktcp_bound _ | Env.Ktcp_listen _ | Env.Ktcp_conn _ | Env.Kudp _ | Env.Kfile _
      | Env.Kpipe_rd _ | Env.Kpipe_wr _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

let sys_sendto cfg st fdnum_e buf_e len_e port_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, buf = conc cfg st buf_e in
  let st, len = conc cfg st len_e in
  let st, port = conc cfg st port_e in
  with_fd st fdnum (fun fd ->
      match fd.Env.kind with
      | Env.Kudp _ -> (
        let env = env_of st in
        match Imap.find_opt port env.Env.udp_ports with
        | None ->
          (* nobody bound: the datagram silently vanishes, like UDP *)
          inject st fd ~write:true (st, len)
        | Some q ->
          let dgram = load_bytes st ~addr:buf ~len in
          let env =
            { env with Env.udp_ports = Imap.add port { q with Env.dgrams = Fqueue.push q.Env.dgrams dgram } env.Env.udp_ports }
          in
          let st' = with_env st env in
          let st' = wake_event st' env q.Env.uwl in
          inject st fd ~write:true (st', len))
      | Env.Kfile _ | Env.Kpipe_rd _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _
      | Env.Ktcp_listen _ | Env.Ktcp_conn _ ->
        Executor.Sys_ret (st, i64 Sysno.einval))

(* --- select ------------------------------------------------------------------------------------------ *)

let fd_readable env fd =
  match fd.Env.kind with
  | Env.Kfile _ -> true
  | Env.Kpipe_rd sid | Env.Ktcp_conn { rx = sid; _ } -> Env.stream_readable (Env.stream_exn env sid)
  | Env.Ktcp_listen port -> (
    match Imap.find_opt port env.Env.listeners with
    | Some l -> not (Fqueue.is_empty l.Env.backlog)
    | None -> false)
  | Env.Kudp { port = Some p } -> (
    match Imap.find_opt p env.Env.udp_ports with
    | Some q -> not (Fqueue.is_empty q.Env.dgrams)
    | None -> false)
  | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Kudp { port = None } -> false

let fd_writable env fd =
  match fd.Env.kind with
  | Env.Kfile _ -> true
  | Env.Kpipe_wr sid | Env.Ktcp_conn { tx = sid; _ } -> Env.stream_writable (Env.stream_exn env sid)
  | Env.Kudp _ -> true
  | Env.Kpipe_rd _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _ -> false

(* select(rd_set, wr_set, nfds): the sets are guest byte arrays indexed by
   descriptor number (nonzero byte = interested).  On success the sets are
   rewritten to 1/0 readiness flags and the ready count is returned. *)
let sys_select cfg st rd_ptr_e wr_ptr_e nfds_e =
  let st, rd_ptr = conc cfg st rd_ptr_e in
  let st, wr_ptr = conc cfg st wr_ptr_e in
  let st, nfds = conc cfg st nfds_e in
  let pid = State.current_pid st in
  let env = env_of st in
  let interested ptr i =
    if ptr = 0 then false
    else
      let b = Memory.load st.State.mem ~pid ~addr:(ptr + i) ~len:1 in
      match E.const_value (Smt.Simplify.simplify b) with
      | Some v -> v <> 0L
      | None -> true (* symbolic interest counts as interested *)
  in
  let ready = ref 0 in
  let rd_result = Array.make (max nfds 0) false in
  let wr_result = Array.make (max nfds 0) false in
  for i = 0 to nfds - 1 do
    (match (interested rd_ptr i, Env.lookup_fd env pid i) with
    | true, Some fd when fd_readable env fd ->
      rd_result.(i) <- true;
      incr ready
    | _, _ -> ());
    match (interested wr_ptr i, Env.lookup_fd env pid i) with
    | true, Some fd when fd_writable env fd ->
      wr_result.(i) <- true;
      incr ready
    | _, _ -> ()
  done;
  if !ready = 0 then Executor.Sys_block (st, env.Env.select_wl)
  else begin
    let write_set st ptr result =
      if ptr = 0 then st
      else
        store_bytes st ~addr:ptr
          (Array.to_list (Array.map (fun b -> E.const ~width:8 (if b then 1L else 0L)) result))
    in
    let st = write_set st rd_ptr rd_result in
    let st = write_set st wr_ptr wr_result in
    Executor.Sys_ret (st, i64 !ready)
  end

(* --- ioctl ------------------------------------------------------------------------------------------------ *)

let sys_ioctl cfg st fdnum_e code_e arg_e =
  let st, fdnum = conc cfg st fdnum_e in
  let st, code = conc cfg st code_e in
  let st, arg = conc cfg st arg_e in
  with_fd st fdnum (fun fd ->
      let pid = State.current_pid st in
      let env = env_of st in
      if code = Sysno.sio_symbolic then begin
        match fd.Env.kind with
        | Env.Kfile { path; _ } -> (
          (* replace the file's contents with fresh symbolic bytes *)
          match Env.Smap.find_opt path env.Env.files with
          | None -> Executor.Sys_ret (st, i64 Sysno.ebadf)
          | Some file ->
            let st, syms = State.fresh_input st ~name:("file:" ^ path) ~count:file.Env.fsize in
            let env = env_of st in
            let env = { env with Env.files = Env.Smap.add path (Env.file_of_exprs syms) env.Env.files } in
            Executor.Sys_ret (with_env st env, i64 0))
        | Env.Kpipe_rd _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _
        | Env.Ktcp_conn _ | Env.Kudp _ ->
          Executor.Sys_ret (with_env st (Env.set_fd env pid fdnum { fd with Env.sym_src = true }), i64 0)
      end
      else if code = Sysno.sio_pkt_fragment then begin
        let set_frag sid =
          let s = Env.stream_exn env sid in
          Executor.Sys_ret
            (with_env st (Env.set_stream env sid { s with Env.fragment = true }), i64 0)
        in
        match fd.Env.kind with
        | Env.Ktcp_conn { rx; _ } -> set_frag rx
        | Env.Kpipe_rd sid -> set_frag sid
        | Env.Kfile _ | Env.Kpipe_wr _ | Env.Ktcp_new | Env.Ktcp_bound _ | Env.Ktcp_listen _
        | Env.Kudp _ ->
          Executor.Sys_ret (st, i64 Sysno.einval)
      end
      else if code = Sysno.sio_fault_inj then begin
        let fd =
          {
            fd with
            Env.fi_rd = arg land Sysno.rd <> 0;
            Env.fi_wr = arg land Sysno.wr <> 0;
          }
        in
        Executor.Sys_ret (with_env st (Env.set_fd env pid fdnum fd), i64 0)
      end
      else Executor.Sys_ret (st, i64 Sysno.einval))

(* --- processes ---------------------------------------------------------------------------------------------- *)

let sys_exit cfg st code_e =
  let st, code = conc cfg st code_e in
  let pid = State.current_pid st in
  (* terminate every thread of this process *)
  let st = Executor.prim_process_terminate cfg st [ i64 code ] in
  let env = env_of st in
  let env = { env with Env.exit_codes = Imap.add pid (Int64.of_int code) env.Env.exit_codes } in
  let st = with_env st env in
  let st = wake_event st env env.Env.wait_wl in
  Executor.Sys_ret (st, i64 0)

let sys_waitpid cfg st pid_e =
  let st, pid = conc cfg st pid_e in
  let env = env_of st in
  match Imap.find_opt pid env.Env.exit_codes with
  | Some code ->
    let env = { env with Env.exit_codes = Imap.remove pid env.Env.exit_codes } in
    Executor.Sys_ret (with_env st env, E.const ~width:64 code)
  | None ->
    let alive =
      State.Imap.exists (fun _ th -> th.State.pid = pid && th.State.status <> State.Exited)
        st.State.threads
    in
    if alive then Executor.Sys_block (st, env.Env.wait_wl)
    else Executor.Sys_ret (st, i64 Sysno.echild)

(* --- test setup helpers ------------------------------------------------------------------------------------------ *)

let sys_mkfile cfg st path_e content_e len_e =
  let st, path = read_path cfg st path_e in
  let st, content = conc cfg st content_e in
  let st, len = conc cfg st len_e in
  let bytes = if content = 0 then [] else load_bytes st ~addr:content ~len in
  let env = env_of st in
  let env = { env with Env.files = Env.Smap.add path (Env.file_of_exprs bytes) env.Env.files } in
  Executor.Sys_ret (with_env st env, i64 0)

let sys_make_symbolic_file cfg st path_e size_e =
  let st, path = read_path cfg st path_e in
  let st, size = conc cfg st size_e in
  let st, syms = State.fresh_input st ~name:("file:" ^ path) ~count:size in
  let env = env_of st in
  let env = { env with Env.files = Env.Smap.add path (Env.file_of_exprs syms) env.Env.files } in
  Executor.Sys_ret (with_env st env, i64 0)

(* POSIX fork(): the engine primitive duplicates the address space and the
   calling thread; the model additionally gives the child a copy of the
   parent's descriptor table, and patches the child's return value to 0. *)
let sys_fork cfg st ~dst =
  ignore cfg;
  let st, child_tid, child_pid = Executor.prim_process_fork st in
  let env = Env.clone_table (env_of st) ~parent:(State.current_pid st) ~child:child_pid in
  let st = with_env st env in
  let child = State.thread_exn st child_tid in
  let child =
    match child.State.frames with
    | f :: rest ->
      { child with State.frames = { f with State.regs = State.Imap.add dst (i64 0) f.State.regs } :: rest }
    | [] -> child
  in
  let st = State.update_thread st child in
  Executor.Sys_ret (st, i64 child_pid)

(* --- dispatcher ----------------------------------------------------------------------------------------------------- *)

let arity_error st num =
  Executor.Sys_err
    (st, Errors.Model_failure (Printf.sprintf "syscall %d: wrong number of arguments" num))

let handle : env Executor.handler =
 fun cfg st ~num ~dst ~args ->
  match (num, args) with
  | n, [] when n = Sysno.fork_ -> sys_fork cfg st ~dst
  | n, [ a; b ] when n = Sysno.open_ -> sys_open cfg st a b
  | n, [ a ] when n = Sysno.close -> sys_close cfg st a
  | n, [ a; b; c ] when n = Sysno.read || n = Sysno.recv -> sys_read cfg st a b c
  | n, [ a; b; c ] when n = Sysno.write || n = Sysno.send -> sys_write cfg st a b c
  | n, [ a ] when n = Sysno.pipe ->
    let st, ptr = conc cfg st a in
    let env, sid = Env.new_stream (env_of st) in
    let env, rd_fd = Env.alloc_fd env (State.current_pid st) (Env.plain_fd (Env.Kpipe_rd sid)) in
    let env, wr_fd = Env.alloc_fd env (State.current_pid st) (Env.plain_fd (Env.Kpipe_wr sid)) in
    let st = with_env st env in
    let st = store_i32 st ~addr:ptr rd_fd in
    let st = store_i32 st ~addr:(ptr + 4) wr_fd in
    Executor.Sys_ret (st, i64 0)
  | n, [ a ] when n = Sysno.socket -> sys_socket cfg st a
  | n, [ a; b ] when n = Sysno.bind -> sys_bind cfg st a b
  | n, [ a ] when n = Sysno.listen -> sys_listen cfg st a
  | n, [ a ] when n = Sysno.accept -> sys_accept cfg st a
  | n, [ a; b ] when n = Sysno.connect -> sys_connect cfg st a b
  | n, [ a; b; c; d ] when n = Sysno.sendto -> sys_sendto cfg st a b c d
  | n, [ a; b; c ] when n = Sysno.recvfrom -> sys_read cfg st a b c
  | n, [ a; b; c ] when n = Sysno.select -> sys_select cfg st a b c
  | n, [ a; b; c ] when n = Sysno.ioctl -> sys_ioctl cfg st a b c
  | n, [ a ] when n = Sysno.dup -> sys_dup cfg st a
  | n, [ a; b; c ] when n = Sysno.fcntl -> sys_fcntl cfg st a b c
  | n, [ a; b ] when n = Sysno.dup2 -> sys_dup2 cfg st a b
  | n, [ a; b; c ] when n = Sysno.lseek -> sys_lseek cfg st a b c
  | n, [ a ] when n = Sysno.fstat_size -> sys_fstat_size cfg st a
  | n, [ a ] when n = Sysno.unlink -> sys_unlink cfg st a
  | n, [ a ] when n = Sysno.waitpid -> sys_waitpid cfg st a
  | n, [] when n = Sysno.fi_enable ->
    Executor.Sys_ret (with_env st { (env_of st) with Env.fi_global = true }, i64 0)
  | n, [] when n = Sysno.fi_disable ->
    Executor.Sys_ret (with_env st { (env_of st) with Env.fi_global = false }, i64 0)
  | n, [ a; b; c ] when n = Sysno.mkfile -> sys_mkfile cfg st a b c
  | n, [ a; b ] when n = Sysno.make_symbolic_file -> sys_make_symbolic_file cfg st a b
  | n, [ a ] when n = Sysno.exit_ -> sys_exit cfg st a
  | n, [] when n = Sysno.time ->
    let env = env_of st in
    Executor.Sys_ret (with_env st { env with Env.clock = env.Env.clock + 1 }, i64 env.Env.clock)
  | n, _ ->
    if
      List.mem n
        [
          Sysno.open_; Sysno.close; Sysno.read; Sysno.write; Sysno.pipe; Sysno.socket;
          Sysno.bind; Sysno.listen; Sysno.accept; Sysno.connect; Sysno.send; Sysno.recv;
          Sysno.sendto; Sysno.recvfrom; Sysno.select; Sysno.ioctl; Sysno.dup; Sysno.lseek;
          Sysno.fstat_size; Sysno.unlink; Sysno.waitpid; Sysno.fi_enable; Sysno.fi_disable;
          Sysno.mkfile; Sysno.make_symbolic_file; Sysno.exit_; Sysno.time; Sysno.fork_;
          Sysno.fcntl; Sysno.dup2;
        ]
    then arity_error st num
    else
      Executor.Sys_err (st, Errors.Model_failure (Printf.sprintf "unknown POSIX syscall %d" num))

let initial_env () = Env.init ()
