(** The POSIX model's system-call handler: file I/O, pipes, TCP/UDP over
    the single-IP symbolic network, select(), the extended ioctls of paper
    Table 3, fault injection, fork/exit/waitpid — implemented over the
    engine's primitives and the persistent {!Env} carried in each state.

    Blocking calls return [Sys_block]; the engine re-executes the call
    when the thread is woken (the retry idiom).  Fault injection forks
    completed I/O operations into success and error-return variants. *)

type env = Env.t

(** The handler to install as {!Engine.Executor.config}'s [handler]. *)
val handle : env Engine.Executor.handler

val initial_env : unit -> Env.t
