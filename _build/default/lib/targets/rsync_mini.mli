(** A miniature of rsync's delta algorithm (paper Table 4's second
    "Network utility"): rolling weak checksums, a block table, a
    sliding-window matcher emitting COPY/LITERAL ops, and the patcher —
    with assertions that patching the delta reconstructs the input
    byte-for-byte, which the symbolic harness proves for every input of
    the given length. *)

val block : int
val old_data : string
val funcs : Lang.Ast.func list
val globals : Lang.Ast.global list
val symbolic_unit : new_len:int -> Lang.Ast.comp_unit
val program : new_len:int -> Cvm.Program.t
val concrete_unit : data:string -> Lang.Ast.comp_unit
val concrete_program : data:string -> Cvm.Program.t
