(** The multi-threaded, multi-process producer-consumer benchmark of paper
    section 7.1: producers feed a mutex+condvar ring buffer, consumers
    classify items and forward them over TCP to a forked sink process,
    which reports a checksum back through a pipe — every POSIX-model
    feature in one program. *)

val ring_size : int

val unit_for :
  nproducers:int ->
  nconsumers:int ->
  items_per_producer:int ->
  symbolic:bool ->
  Lang.Ast.comp_unit

(** [symbolic] makes the produced items symbolic so exploration covers the
    data-dependent consumer branches. *)
val program :
  nproducers:int ->
  nconsumers:int ->
  items_per_producer:int ->
  symbolic:bool ->
  Cvm.Program.t
