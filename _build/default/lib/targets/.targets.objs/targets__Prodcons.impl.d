lib/targets/prodcons.ml: Lang List Posix
