lib/targets/prodcons.mli: Cvm Lang
