lib/targets/apache_mini.mli: Cvm Lang
