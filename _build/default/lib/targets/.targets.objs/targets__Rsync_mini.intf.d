lib/targets/rsync_mini.mli: Cvm Lang
