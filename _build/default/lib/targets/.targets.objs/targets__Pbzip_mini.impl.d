lib/targets/pbzip_mini.ml: Char Lang List Posix String
