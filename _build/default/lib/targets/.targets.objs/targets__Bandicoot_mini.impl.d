lib/targets/bandicoot_mini.ml: Lang List Posix String
