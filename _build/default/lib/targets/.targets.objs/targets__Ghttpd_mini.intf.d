lib/targets/ghttpd_mini.mli: Cvm Lang
