lib/targets/memcached_mini.mli: Cvm Lang Lazy
