lib/targets/lighttpd_mini.ml: Lang List Posix String
