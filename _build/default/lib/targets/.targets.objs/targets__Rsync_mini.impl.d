lib/targets/rsync_mini.ml: Lang List Posix String
