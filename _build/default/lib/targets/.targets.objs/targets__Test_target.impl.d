lib/targets/test_target.ml: Lang List Posix String
