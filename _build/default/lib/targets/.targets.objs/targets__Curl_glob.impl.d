lib/targets/curl_glob.ml: Lang List Posix String
