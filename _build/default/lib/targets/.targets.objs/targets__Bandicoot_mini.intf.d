lib/targets/bandicoot_mini.mli: Cvm Lang
