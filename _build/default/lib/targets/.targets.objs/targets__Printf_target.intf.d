lib/targets/printf_target.mli: Cvm Lang
