lib/targets/apache_mini.ml: Lang List Posix String
