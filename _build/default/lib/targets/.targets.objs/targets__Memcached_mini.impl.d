lib/targets/memcached_mini.ml: Buffer Char Cvm Lang List Posix Printf String
