lib/targets/coreutils_gen.ml: Lang List Posix Printf
