lib/targets/coreutils_gen.mli: Cvm Lang
