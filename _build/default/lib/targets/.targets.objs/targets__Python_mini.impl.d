lib/targets/python_mini.ml: Lang List Posix String
