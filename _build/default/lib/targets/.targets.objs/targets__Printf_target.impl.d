lib/targets/printf_target.ml: Lang Posix String
