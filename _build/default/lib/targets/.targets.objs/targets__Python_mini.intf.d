lib/targets/python_mini.mli: Cvm Lang
