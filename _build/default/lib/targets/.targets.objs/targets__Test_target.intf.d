lib/targets/test_target.mli: Cvm Lang
