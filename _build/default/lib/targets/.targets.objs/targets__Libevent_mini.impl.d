lib/targets/libevent_mini.ml: Lang List Posix String
