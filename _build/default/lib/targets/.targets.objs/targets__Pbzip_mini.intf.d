lib/targets/pbzip_mini.mli: Cvm Lang
