lib/targets/curl_glob.mli: Cvm Lang
