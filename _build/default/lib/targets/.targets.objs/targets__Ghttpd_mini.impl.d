lib/targets/ghttpd_mini.ml: Lang List Posix String
