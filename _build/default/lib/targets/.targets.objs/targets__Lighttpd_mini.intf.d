lib/targets/lighttpd_mini.mli: Cvm Lang
