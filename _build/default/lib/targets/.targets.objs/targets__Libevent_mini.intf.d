lib/targets/libevent_mini.mli: Cvm Lang
