(** A miniature memcached: binary protocol over TCP, a hash-table store,
    and the UDP fragment-train path with the non-advancing-cursor hang the
    per-path instruction cap detects (paper section 7.3.3). *)

val nbuckets : int
val key_size : int
val val_size : int

val store_globals : Lang.Ast.global list
val store_funcs : Lang.Ast.func list
val server_core : Lang.Ast.func list
val base_globals : Lang.Ast.global list
val all_funcs : Lang.Ast.func list

(** Every harness compiles [all_funcs] first, so the server's code spans
    source lines [1..server_line_count] in all of them — Table 5 measures
    coverage of the server, not harness boilerplate. *)
val server_line_count : int Lazy.t

(** Build a binary-protocol request packet. *)
val packet : opcode:int -> key:string -> value:string -> string

(** Client/server harness running a fixed command sequence and asserting
    each response status.  [fault_injection] arms SIO_FAULT_INJ on the
    server's connection and enables injection globally (Table 5's fourth
    row). *)
val concrete_suite_unit :
  ?fault_injection:bool ->
  commands:string list ->
  expected_statuses:int list ->
  unit ->
  Lang.Ast.comp_unit

val concrete_suite :
  ?fault_injection:bool ->
  commands:string list ->
  expected_statuses:int list ->
  unit ->
  Cvm.Program.t

(** The "existing test suite": (name, packets, expected statuses). *)
val test_suite : (string * string list * int list) list

(** The paper's generic symbolic-packet test: [npackets] fully symbolic
    packets of [pkt_len] bytes each. *)
val symbolic_packets_unit : npackets:int -> pkt_len:int -> Lang.Ast.comp_unit

val symbolic_packets : npackets:int -> pkt_len:int -> Cvm.Program.t

(** UDP harness: a symbolic datagram drives the fragment-train reassembly
    loop; a zero-length fragment hangs it. *)
val udp_unit : dgram_len:int -> Lang.Ast.comp_unit

val udp_program : dgram_len:int -> Cvm.Program.t
