(** A miniature of pbzip2 (paper Table 4's "Compression utility"): blocks
    compressed by a pool of worker threads (mutex + condvar work queue,
    RLE standing in for bzip2), gathered in order, then decompressed and
    asserted byte-exact. *)

val block : int
val max_blocks : int
val unit_for : nblocks:int -> nworkers:int -> symbolic:bool -> Lang.Ast.comp_unit
val program : nblocks:int -> nworkers:int -> symbolic:bool -> Cvm.Program.t
