(* A miniature of lighttpd's request parsing across fragmented reads
   (paper section 7.3.4 and Table 6).

   lighttpd reads HTTP requests with repeated read() calls; POSIX gives no
   guarantee on how many bytes each read returns, so the header-terminator
   scan ("\r\n\r\n") must carry its progress across chunk boundaries.
   Version 1.4.12 got this wrong; the 1.4.13 fix was incomplete — some
   fragmentation patterns still crashed the server and hung the client,
   which Cloud9's symbolic fragmentation test exposed.

   The two defects modeled:
   - [V12]: after appending a new chunk, the scanner restarts one byte
     *before* the chunk to catch terminators split across the boundary —
     re-processing that byte corrupts the match state, so a terminator
     split across chunks is missed; at EOF the error path indexes the
     buffer with the "not found" sentinel (len + 1... an underflowed
     offset), an out-of-bounds access.  Any multi-chunk delivery whose
     boundary touches the terminator crashes.
   - [V13]: the fix scans each chunk exactly once, carrying the state —
     correct for the two-chunk pattern of the original report.  But the
     fix added a "slow path" for single-byte reads that accumulates those
     bytes in a 4-byte replay window without a bounds check; a pattern
     containing five or more 1-byte fragments overflows the window.

   With these mechanics the three fragmentation patterns of Table 6
   behave exactly as in the paper:
     1 x 28                          OK        OK
     1 x 26 + 1 x 2                  crash     OK
     2+5+1+5+2x1+3x2+5+2x1           crash     crash *)

open Lang.Builder
module Api = Posix.Api

type version = V12 | V13

let request = "GET /index.html HTTP/1.0\r\n\r\n"
let request_len = String.length request (* 28 *)

(* Table 6's fragmentation patterns. *)
let pattern_whole = [ 28 ]
let pattern_split = [ 26; 2 ]
let pattern_complex = [ 2; 5; 1; 5; 1; 1; 2; 2; 2; 5; 1; 1 ]

let () = assert (List.fold_left ( + ) 0 pattern_complex = request_len)

(* State machine over "\r\n\r\n": state = number of bytes matched. *)
let scan_funcs =
  [
    fn "scan_byte" [ ("c", u8) ] None
      [
        if_
          (v "c" ==! chr '\r')
          [
            if_ (v "match_state" ==! n 2) [ set (v "match_state") (n 3) ]
              [ set (v "match_state") (n 1) ];
          ]
          [
            if_
              (v "c" ==! chr '\n')
              [
                if_ (v "match_state" ==! n 1) [ set (v "match_state") (n 2) ]
                  [
                    if_ (v "match_state" ==! n 3) [ set (v "match_state") (n 4) ]
                      [ set (v "match_state") (n 0) ];
                  ];
              ]
              [ set (v "match_state") (n 0) ];
          ];
      ];
  ]

(* The server's connection loop for each version.  Returns the response
   status (200 when the request parsed). *)
let server_funcs version =
  let handle_chunk =
    match version with
    | V12 ->
      [
        (* v1.4.12: re-scan from one byte before the new chunk "to catch
           split terminators" — the re-processed byte corrupts the match
           state when the boundary touches the terminator *)
        decl "start" u32 (Some (n 0));
        if_ (v "total" >! n 0) [ set (v "start") (v "total" -! n 1) ] [];
        decl "j" u32 (Some (v "start"));
        while_ (v "j" <! v "total" +! cast u32 (v "got"))
          [ call_void "scan_byte" [ idx (v "reqbuf") (v "j") ]; incr_ "j" ];
      ]
    | V13 ->
      [
        (* v1.4.13: scan each new byte exactly once... *)
        decl "j" u32 (Some (v "total"));
        while_ (v "j" <! v "total" +! cast u32 (v "got"))
          [ call_void "scan_byte" [ idx (v "reqbuf") (v "j") ]; incr_ "j" ];
        (* ...but the fix added a replay window for 1-byte reads, meant to
           simplify terminator detection in the common telnet-style case;
           it lacks a bounds check *)
        when_ (v "got" ==! n 1)
          [
            set (idx (v "window") (v "wpos")) (idx (v "reqbuf") (v "total"));
            set (v "wpos") (v "wpos" +! n 1);
          ];
      ]
  in
  scan_funcs
  @ [
      fn "serve_connection" [ ("c", i64) ] (Some u32)
        (List.concat
           [
             [
               set (v "match_state") (n 0);
               set (v "total") (n 0);
               set (v "wpos") (n 0);
               decl "done_" u32 (Some (n 0));
               while_ (v "done_" ==! n 0)
                 (List.concat
                    [
                      [
                        decl "got" i64
                          (Some
                             (Api.read (v "c")
                                (addr (idx (v "reqbuf") (v "total")))
                                (n 64 -! cast i64 (v "total"))));
                      ];
                      [
                        if_ (v "got" <=! n 0)
                          [
                            (* EOF before a complete request: the error
                               path reports the terminator position, which
                               is len+1 when the scan never completed —
                               v12 reaches this with a missed terminator
                               and indexes the buffer out of bounds *)
                            decl "term_pos" u32 (Some (n 0 -! n 1)); (* "not found" sentinel *)
                            when_ (v "match_state" <>! n 4)
                              [
                                (* log the byte at the "terminator": OOB *)
                                set (v "last_byte") (idx (v "reqbuf") (v "term_pos"));
                              ];
                            ret (n 400);
                          ]
                          [];
                      ];
                      handle_chunk;
                      [
                        set (v "total") (v "total" +! cast u32 (v "got"));
                        when_ (v "match_state" ==! n 4) [ set (v "done_") (n 1) ];
                        when_ (v "total" >=! n 64) [ ret (n 413) ]; (* header too large *)
                      ];
                    ]);
               (* parsed: check the method *)
               if_
                 (idx (v "reqbuf") (n 0) ==! chr 'G'
                 &&! (idx (v "reqbuf") (n 1) ==! chr 'E')
                 &&! (idx (v "reqbuf") (n 2) ==! chr 'T'))
                 [ ret (n 200) ]
                 [ ret (n 501) ];
             ];
           ]);
    ]

let globals =
  [
    global "reqbuf" (Arr (u8, 64));
    global "match_state" u32;
    global "total" u32;
    global "window" (Arr (u8, 4));
    global "wpos" u32;
    global "last_byte" u8;
    global "srv_ready" u32;
    global "last_status" u32;
  ]

(* A client that sends the request in chunks given by [pattern],
   preempting after each chunk so the cooperative server observes exactly
   that fragmentation, then closes the connection. *)
let client_body pattern =
  let setup =
    List.init request_len (fun i -> set (idx (v "sendbuf") (n i)) (chr request.[i]))
  in
  let off = ref 0 in
  let sends =
    List.concat_map
      (fun size ->
        let this = !off in
        off := !off + size;
        [
          expr (Api.write (v "c") (addr (idx (v "sendbuf") (n this))) (n size));
          expr (Api.thread_preempt ());
          expr (Api.thread_preempt ());
        ])
      pattern
  in
  [ decl "c" i64 (Some (Api.socket Api.sock_stream));
    assert_ (Api.connect (v "c") (n 80) ==! n 0) "connect to server" ]
  @ setup @ sends
  @ [ expr (Api.close (v "c")); expr (Api.thread_preempt ()) ]

(* Whole-system harness: server thread + fragmenting client. *)
let harness_unit version pattern =
  cunit ~entry:"main"
    ~globals:(globals @ [ global "sendbuf" (Arr (u8, request_len)) ])
    (server_funcs version
    @ [
        fn "server_main" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            expr (Api.bind (v "s") (n 80));
            expr (Api.listen (v "s"));
            set (v "srv_ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            decl "status" u32 (Some (call "serve_connection" [ v "c" ]));
            set (v "last_status") (v "status");
          ];
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 expr (Api.thread_create "server_main" (n 0));
                 while_ (v "srv_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
               ];
               client_body pattern;
               [
                 (* drain: let the server observe EOF and finish *)
                 expr (Api.thread_preempt ());
                 expr (Api.thread_preempt ());
                 halt (v "last_status");
               ];
             ]);
      ])

let program version pattern = compile (harness_unit version pattern)

(* Symbolic-fragmentation harness: instead of a fixed pattern, the client
   sends the whole request and the server's socket is put in
   SIO_PKT_FRAGMENT mode, so the engine explores every fragmentation
   pattern — the symbolic test that proved the 1.4.13 fix incomplete. *)
let symbolic_fragmentation_unit version =
  cunit ~entry:"main"
    ~globals:(globals @ [ global "sendbuf" (Arr (u8, request_len)) ])
    (server_funcs version
    @ [
        fn "server_main" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            expr (Api.bind (v "s") (n 80));
            expr (Api.listen (v "s"));
            set (v "srv_ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            (* explore all read-size patterns on this connection *)
            expr (Api.ioctl (v "c") Api.sio_pkt_fragment (n 0));
            decl "status" u32 (Some (call "serve_connection" [ v "c" ]));
            set (v "last_status") (v "status");
          ];
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 expr (Api.thread_create "server_main" (n 0));
                 while_ (v "srv_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
               ];
               [ decl "c" i64 (Some (Api.socket Api.sock_stream));
                 assert_ (Api.connect (v "c") (n 80) ==! n 0) "connect" ];
               List.init request_len (fun i -> set (idx (v "sendbuf") (n i)) (chr request.[i]));
               [
                 expr (Api.write (v "c") (addr (idx (v "sendbuf") (n 0))) (n request_len));
                 expr (Api.close (v "c"));
                 expr (Api.thread_preempt ());
                 expr (Api.thread_preempt ());
                 halt (v "last_status");
               ];
             ]);
      ])

let symbolic_program version = compile (symbolic_fragmentation_unit version)
