(** A miniature of Ghttpd 1.4.4 (paper Table 4's smallest web server),
    reproducing its vulnerability class: an unbounded copy of the request
    URL into a fixed log buffer.  [buggy:false] carries the length check
    of the fix. *)

val log_slot : int
val funcs : buggy:bool -> Lang.Ast.func list
val globals : Lang.Ast.global list
val symbolic_unit : buggy:bool -> req_len:int -> Lang.Ast.comp_unit
val program : buggy:bool -> req_len:int -> Cvm.Program.t
val concrete_unit : buggy:bool -> req:string -> Lang.Ast.comp_unit
val concrete_program : buggy:bool -> req:string -> Cvm.Program.t
