(* A miniature of rsync's delta algorithm — the second "Network utility"
   of paper Table 4.

   The real algorithm: split the old file into fixed blocks, index them by
   a rolling weak checksum, slide a window over the new data, and emit
   COPY ops for checksum matches (verified byte-for-byte) and LITERAL ops
   otherwise.  This miniature implements exactly that over small buffers:
   an adler-style rolling checksum, a block table, the sliding-window
   matcher, and an op-stream encoder — then replays the op stream to
   verify it reconstructs the new data (the correctness assertion the
   symbolic harness turns into a proof over all inputs of that length). *)

open Lang.Builder
module Api = Posix.Api

let block = 4
let old_data = "the quick brown fox!"
let old_len = String.length old_data
let nblocks = old_len / block

let funcs =
  [
    (* adler-ish weak checksum of [p, p+block); the modulus is a power of
       two (a bit mask) so the symbolic formula stays a cheap circuit —
       adler's 65521 would drag a 64-bit division into every window *)
    fn "weak_sum" [ ("p", Ptr u8) ] (Some u32)
      [
        decl "a" u32 (Some (n 0));
        decl "b" u32 (Some (n 0));
        for_range "i" ~from:(n 0) ~below:(n block)
          [
            set (v "a") ((v "a" +! cast u32 (idx (v "p") (v "i"))) &! n 0xFFF);
            set (v "b") ((v "b" +! v "a") &! n 0xFFF);
          ];
        ret ((v "b" <<! n 16) |! v "a");
      ];
    fn "blocks_equal" [ ("p", Ptr u8); ("q", Ptr u8) ] (Some u32)
      [
        for_range "i" ~from:(n 0) ~below:(n block)
          [ when_ (idx (v "p") (v "i") <>! idx (v "q") (v "i")) [ ret (n 0) ] ];
        ret (n 1);
      ];
    (* index the old file's blocks *)
    fn "build_table" [] None
      [
        for_range "bi" ~from:(n 0) ~below:(n nblocks)
          [
            set (idx (v "table_sum") (v "bi"))
              (call "weak_sum" [ addr (idx (v "old") (v "bi" *! n block)) ]);
          ];
      ];
    (* delta(new, len): emit ops into op_kind/op_val; returns op count.
       op_kind 1 = COPY block #op_val, 0 = LITERAL byte op_val *)
    fn "delta" [ ("ndata", Ptr u8); ("len", u32) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        decl "nops" u32 (Some (n 0));
        while_ (v "i" <! v "len")
          [
            decl "matched" u32 (Some (n 0));
            when_ (v "i" +! n block <=! v "len")
              [
                decl "ws" u32 (Some (call "weak_sum" [ addr (idx (v "ndata") (v "i")) ]));
                for_range "bi" ~from:(n 0) ~below:(n nblocks)
                  [
                    when_
                      (v "matched" ==! n 0
                      &&! (idx (v "table_sum") (v "bi") ==! v "ws")
                      &&! (call "blocks_equal"
                             [ addr (idx (v "ndata") (v "i")); addr (idx (v "old") (v "bi" *! n block)) ]
                          ==! n 1))
                      [
                        set (idx (v "op_kind") (v "nops")) (n 1);
                        set (idx (v "op_val") (v "nops")) (v "bi");
                        incr_ "nops";
                        set (v "i") (v "i" +! n block);
                        set (v "matched") (n 1);
                      ];
                  ];
              ];
            when_ (v "matched" ==! n 0)
              [
                set (idx (v "op_kind") (v "nops")) (n 0);
                set (idx (v "op_val") (v "nops")) (cast u32 (idx (v "ndata") (v "i")));
                incr_ "nops";
                incr_ "i";
              ];
          ];
        ret (v "nops");
      ];
    (* apply the op stream; returns reconstructed length *)
    fn "patch" [ ("nops", u32) ] (Some u32)
      [
        decl "w" u32 (Some (n 0));
        for_range "k" ~from:(n 0) ~below:(v "nops")
          [
            if_ (idx (v "op_kind") (v "k") ==! n 1)
              [
                decl "base" u32 (Some (idx (v "op_val") (v "k") *! n block));
                for_range "j" ~from:(n 0) ~below:(n block)
                  [ set (idx (v "recon") (v "w" +! v "j")) (idx (v "old") (v "base" +! v "j")) ];
                set (v "w") (v "w" +! n block);
              ]
              [
                set (idx (v "recon") (v "w")) (cast u8 (idx (v "op_val") (v "k")));
                incr_ "w";
              ];
          ];
        ret (v "w");
      ];
    (* end-to-end: delta then patch must reproduce the input *)
    fn "roundtrip" [ ("ndata", Ptr u8); ("len", u32) ] (Some u32)
      [
        call_void "build_table" [];
        decl "nops" u32 (Some (call "delta" [ v "ndata"; v "len" ]));
        decl "rl" u32 (Some (call "patch" [ v "nops" ]));
        assert_ (v "rl" ==! v "len") "patch reconstructs the original length";
        for_range "i" ~from:(n 0) ~below:(v "len")
          [ assert_ (idx (v "recon") (v "i") ==! idx (v "ndata") (v "i")) "byte-exact reconstruction" ];
        ret (v "nops");
      ];
  ]

let globals =
  [
    { Lang.Ast.gname = "old"; gty = Arr (u8, old_len); ginit = Some old_data };
    global "table_sum" (Arr (u32, nblocks));
    global "op_kind" (Arr (u32, 32));
    global "op_val" (Arr (u32, 32));
    global "recon" (Arr (u8, 32));
  ]

(* Symbolic new-file contents: exhaustive exploration proves delta+patch
   reconstruct every input of this length. *)
let symbolic_unit ~new_len =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "ndata" u8 new_len;
            expr (Api.make_symbolic (addr (idx (v "ndata") (n 0))) (n new_len) "new");
            halt (call "roundtrip" [ addr (idx (v "ndata") (n 0)); n new_len ]);
          ];
      ])

let program ~new_len = compile (symbolic_unit ~new_len)

let concrete_unit ~data =
  let len = String.length data in
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          ([ decl_arr "buf" u8 (max len 1) ]
          @ List.init len (fun i -> set (idx (v "buf") (n i)) (chr data.[i]))
          @ [ halt (call "roundtrip" [ addr (idx (v "buf") (n 0)); n len ]) ]);
      ])

let concrete_program ~data = compile (concrete_unit ~data)
