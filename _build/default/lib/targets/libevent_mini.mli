(** A miniature of libevent (paper Table 4's "Event notification
    library"): an event loop select()ing over registered descriptors and
    dispatching ready ones through a handler table, demonstrated with echo
    and accumulator handlers over pipes fed by a separate thread. *)

val max_events : int
val unit_for : payload:string -> symbolic:bool -> Lang.Ast.comp_unit
val program : payload:string -> symbolic:bool -> Cvm.Program.t
