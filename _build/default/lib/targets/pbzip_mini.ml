(* A miniature of pbzip2 — paper Table 4's "Compression utility".

   pbzip2's structure: split the input into blocks, compress blocks on
   worker threads in parallel, and write the compressed blocks out in
   order.  This miniature keeps exactly that shape with a run-length
   coder standing in for bzip2: a work queue feeds [nworkers] threads
   (mutex + condvars from the POSIX runtime); each thread RLE-compresses
   its blocks into a per-block output slot; the main thread concatenates
   slots in order, then decompresses and asserts byte-exact recovery.

   With symbolic input bytes, exhaustive exploration checks the
   compress/decompress pair over every input of the given length, under
   the cooperative thread interleavings. *)

open Lang.Builder
module Api = Posix.Api

let block = 4
let max_blocks = 8
let slot = 2 * block (* worst-case RLE expansion: (count, byte) pairs *)

let funcs =
  [
    (* RLE-compress input[bi*block .. +block) into slots[bi]; stores the
       compressed length in slot_len[bi] *)
    fn "compress_block" [ ("bi", u32) ] None
      [
        decl "base" u32 (Some (v "bi" *! n block));
        decl "w" u32 (Some (n 0));
        decl "i" u32 (Some (n 0));
        while_ (v "i" <! n block)
          [
            decl "c" u8 (Some (idx (v "input") (v "base" +! v "i")));
            decl "run" u32 (Some (n 1));
            while_
              (v "i" +! v "run" <! n block
              &&! (idx (v "input") (v "base" +! v "i" +! v "run") ==! v "c"))
              [ set (v "run") (v "run" +! n 1) ];
            set (idx (v "slots") ((v "bi" *! n slot) +! v "w")) (cast u8 (v "run"));
            set (idx (v "slots") ((v "bi" *! n slot) +! v "w" +! n 1)) (v "c");
            set (v "w") (v "w" +! n 2);
            set (v "i") (v "i" +! v "run");
          ];
        set (idx (v "slot_len") (v "bi")) (v "w");
      ];
    (* worker thread: pull block indices from the shared queue *)
    fn "compress_worker" [ ("k", i64) ] None
      [
        decl "more" u32 (Some (n 1));
        while_ (v "more" ==! n 1)
          [
            call_void "mutex_lock" [ addr (idx (v "qm") (n 0)) ];
            if_ (v "next_block" <! v "total_blocks")
              [
                decl "mine" u32 (Some (v "next_block"));
                set (v "next_block") (v "next_block" +! n 1);
                call_void "mutex_unlock" [ addr (idx (v "qm") (n 0)) ];
                call_void "compress_block" [ v "mine" ];
                call_void "mutex_lock" [ addr (idx (v "qm") (n 0)) ];
                set (v "done_blocks") (v "done_blocks" +! n 1);
                call_void "cond_signal" [ addr (idx (v "qdone") (n 0)) ];
                call_void "mutex_unlock" [ addr (idx (v "qm") (n 0)) ];
              ]
              [ call_void "mutex_unlock" [ addr (idx (v "qm") (n 0)) ]; set (v "more") (n 0) ];
          ];
      ];
    (* concatenate compressed slots in block order *)
    fn "gather" [] (Some u32)
      [
        decl "w" u32 (Some (n 0));
        for_range "bi" ~from:(n 0) ~below:(v "total_blocks")
          [
            for_range "j" ~from:(n 0) ~below:(idx (v "slot_len") (v "bi"))
              [
                set (idx (v "packed") (v "w")) (idx (v "slots") ((v "bi" *! n slot) +! v "j"));
                incr_ "w";
              ];
          ];
        ret (v "w");
      ];
    (* decompress the packed stream and compare with the input *)
    fn "verify" [ ("plen", u32); ("total", u32) ] None
      [
        decl "r" u32 (Some (n 0));
        decl "w" u32 (Some (n 0));
        while_ (v "r" +! n 1 <! v "plen" ||! (v "r" +! n 1 ==! v "plen"))
          [
            decl "run" u32 (Some (cast u32 (idx (v "packed") (v "r"))));
            decl "c" u8 (Some (idx (v "packed") (v "r" +! n 1)));
            set (v "r") (v "r" +! n 2);
            for_range "j" ~from:(n 0) ~below:(v "run")
              [
                assert_ (v "w" <! v "total") "decompressed length within input";
                assert_ (idx (v "input") (v "w") ==! v "c") "byte-exact decompression";
                incr_ "w";
              ];
          ];
        assert_ (v "w" ==! v "total") "full length recovered";
      ];
  ]

let globals ~total =
  [
    global "input" (Arr (u8, total));
    global "slots" (Arr (u8, max_blocks * slot));
    global "slot_len" (Arr (u32, max_blocks));
    global "packed" (Arr (u8, max_blocks * slot));
    global "qm" (Arr (u64, 3));
    global "qdone" (Arr (u64, 1));
    global "next_block" u32;
    global "done_blocks" u32;
    global "total_blocks" u32;
  ]

let unit_for ~nblocks ~nworkers ~symbolic =
  let total = nblocks * block in
  assert (nblocks <= max_blocks);
  cunit ~entry:"main" ~globals:(globals ~total)
    (Api.runtime @ funcs
    @ [
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 call_void "mutex_init" [ addr (idx (v "qm") (n 0)) ];
                 call_void "cond_init" [ addr (idx (v "qdone") (n 0)) ];
                 set (v "total_blocks") (n nblocks);
               ];
               (if symbolic then
                  [ expr (Api.make_symbolic (addr (idx (v "input") (n 0))) (n total) "input") ]
                else
                  List.init total (fun i ->
                      set (idx (v "input") (n i)) (n (Char.code "abbcccddddeeeee".[i mod 15]))));
               List.init nworkers (fun i -> expr (Api.thread_create "compress_worker" (n i)));
               [
                 (* wait for all blocks *)
                 call_void "mutex_lock" [ addr (idx (v "qm") (n 0)) ];
                 while_ (v "done_blocks" <! n nblocks)
                   [ call_void "cond_wait" [ addr (idx (v "qdone") (n 0)); addr (idx (v "qm") (n 0)) ] ];
                 call_void "mutex_unlock" [ addr (idx (v "qm") (n 0)) ];
                 decl "plen" u32 (Some (call "gather" []));
                 call_void "verify" [ v "plen"; n total ];
                 halt (v "plen");
               ];
             ]);
      ])

let program ~nblocks ~nworkers ~symbolic = compile (unit_for ~nblocks ~nworkers ~symbolic)
