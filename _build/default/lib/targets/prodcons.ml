(* The multi-threaded, multi-process producer-consumer benchmark of paper
   section 7.1: "exercises the entire functionality of the POSIX model:
   threads, synchronization, processes, and networking."

   Topology: [nproducers] producer threads push work items into a
   mutex+condvar-protected ring buffer; [nconsumers] consumer threads pop
   them and forward each item over a TCP connection to a sink process
   (forked), which accumulates a checksum and reports it back over a pipe
   when done.  The main thread validates the checksum.

   The symbolic variant makes the produced items symbolic, so exploration
   covers the data-dependent consumer branches under every cooperative
   interleaving the scheduler policy allows. *)

open Lang.Builder
module Api = Posix.Api

let ring_size = 4

let ring_funcs =
  [
    (* ring buffer protected by mutex m, condvars nonfull/nonempty *)
    fn "ring_push" [ ("x", u8) ] None
      [
        call_void "mutex_lock" [ addr (idx (v "m") (n 0)) ];
        while_ (v "fill" >=! n ring_size)
          [ call_void "cond_wait" [ addr (idx (v "nonfull") (n 0)); addr (idx (v "m") (n 0)) ] ];
        set (idx (v "ring") (v "wpos")) (v "x");
        set (v "wpos") ((v "wpos" +! n 1) %! n ring_size);
        set (v "fill") (v "fill" +! n 1);
        call_void "cond_signal" [ addr (idx (v "nonempty") (n 0)) ];
        call_void "mutex_unlock" [ addr (idx (v "m") (n 0)) ];
      ];
    fn "ring_pop" [] (Some u8)
      [
        call_void "mutex_lock" [ addr (idx (v "m") (n 0)) ];
        while_ (v "fill" ==! n 0)
          [ call_void "cond_wait" [ addr (idx (v "nonempty") (n 0)); addr (idx (v "m") (n 0)) ] ];
        decl "x" u8 (Some (idx (v "ring") (v "rpos")));
        set (v "rpos") ((v "rpos" +! n 1) %! n ring_size);
        set (v "fill") (v "fill" -! n 1);
        call_void "cond_signal" [ addr (idx (v "nonfull") (n 0)) ];
        call_void "mutex_unlock" [ addr (idx (v "m") (n 0)) ];
        ret (v "x");
      ];
  ]

let unit_for ~nproducers ~nconsumers ~items_per_producer ~symbolic =
  let total_items = nproducers * items_per_producer in
  cunit ~entry:"main"
    ~globals:
      [
        global "m" (Arr (u64, 3));
        global "nonfull" (Arr (u64, 1));
        global "nonempty" (Arr (u64, 1));
        global "ring" (Arr (u8, ring_size));
        global "fill" u32;
        global "wpos" u32;
        global "rpos" u32;
        global "items" (Arr (u8, max total_items 1));
        global "consumed" u32;
        global "sink_ready" u32;
        global "pipefds" (Arr (i32, 2));
      ]
    (Api.runtime @ ring_funcs
    @ [
        fn "producer" [ ("id", i64) ] None
          [
            for_range "i" ~from:(n 0) ~below:(n items_per_producer)
              [
                decl "item" u8
                  (Some (idx (v "items") ((cast u32 (v "id") *! n items_per_producer) +! v "i")));
                call_void "ring_push" [ v "item" ];
              ];
          ];
        fn "consumer" [ ("c", i64) ] None
          [
            while_ (v "consumed" <! n total_items)
              [
                decl "x" u8 (Some (call "ring_pop" []));
                set (v "consumed") (v "consumed" +! n 1);
                (* data-dependent processing: classify then forward *)
                decl_arr "msg" u8 2;
                if_ (v "x" <! n 64)
                  [ set (idx (v "msg") (n 0)) (chr 'l') ]
                  [
                    if_ (v "x" <! n 192)
                      [ set (idx (v "msg") (n 0)) (chr 'm') ]
                      [ set (idx (v "msg") (n 0)) (chr 'h') ];
                  ];
                set (idx (v "msg") (n 1)) (v "x");
                expr (Api.write (v "c") (addr (idx (v "msg") (n 0))) (n 2));
              ];
          ];
        (* the sink runs in a forked process: accumulates a checksum of
           everything received over TCP, then reports it over the pipe *)
        fn "sink_main" [] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            expr (Api.bind (v "s") (n 7070));
            expr (Api.listen (v "s"));
            set (v "sink_ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            decl "sum" u32 (Some (n 0));
            decl "seen" u32 (Some (n 0));
            while_ (v "seen" <! n total_items)
              [
                decl_arr "b" u8 2;
                decl "have" u32 (Some (n 0));
                while_ (v "have" <! n 2)
                  [
                    decl "got" i64 (Some (Api.read (v "c") (addr (idx (v "b") (v "have"))) (n 1)));
                    when_ (v "got" <=! n 0) [ expr (Api.exit_ (n 1)) ];
                    incr_ "have";
                  ];
                set (v "sum") ((v "sum" *! n 7) +! cast u32 (idx (v "b") (n 1)));
                incr_ "seen";
              ];
            decl_arr "out" u8 4;
            set (idx (v "out") (n 0)) (cast u8 (v "sum"));
            set (idx (v "out") (n 1)) (cast u8 (v "sum" >>! n 8));
            set (idx (v "out") (n 2)) (cast u8 (v "sum" >>! n 16));
            set (idx (v "out") (n 3)) (cast u8 (v "sum" >>! n 24));
            expr (Api.write (cast i64 (idx (v "pipefds") (n 1))) (addr (idx (v "out") (n 0))) (n 4));
            expr (Api.exit_ (n 0));
          ];
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 call_void "mutex_init" [ addr (idx (v "m") (n 0)) ];
                 call_void "cond_init" [ addr (idx (v "nonfull") (n 0)) ];
                 call_void "cond_init" [ addr (idx (v "nonempty") (n 0)) ];
                 expr (Api.pipe (cast (Ptr u8) (addr (idx (v "pipefds") (n 0)))));
               ];
               (* shared globals must be visible to the forked sink; the
                  pipe and the sink-ready flag cross the process boundary *)
               [
                 expr (Api.make_shared (addr (idx (v "pipefds") (n 0))));
                 expr (Api.make_shared (addr (v "sink_ready")));
               ];
               (if symbolic then
                  [ expr (Api.make_symbolic (addr (idx (v "items") (n 0))) (n total_items) "items") ]
                else
                  List.init total_items (fun i ->
                      set (idx (v "items") (n i)) (n ((i * 37) land 0xff))));
               [
                 decl "pid" i64 (Some (Api.fork ()));
                 when_ (v "pid" ==! n 0) [ call_void "sink_main" []; expr (Api.exit_ (n 0)) ];
                 while_ (v "sink_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
                 decl "c" i64 (Some (Api.socket Api.sock_stream));
                 assert_ (Api.connect (v "c") (n 7070) ==! n 0) "connect to sink";
               ];
               List.init nproducers (fun i ->
                   expr (Api.thread_create "producer" (n i)));
               List.init nconsumers (fun _ -> expr (Api.thread_create "consumer" (v "c")));
               [
                 (* wait for the sink's checksum *)
                 decl_arr "rep" u8 4;
                 decl "have" u32 (Some (n 0));
                 while_ (v "have" <! n 4)
                   [
                     decl "got" i64
                       (Some (Api.read (cast i64 (idx (v "pipefds") (n 0))) (addr (idx (v "rep") (v "have"))) (n 1)));
                     when_ (v "got" <=! n 0) [ halt (n 255) ];
                     incr_ "have";
                   ];
                 expr (Api.waitpid (v "pid"));
                 halt (cast u32 (idx (v "rep") (n 0)));
               ];
             ]);
      ])

let program ~nproducers ~nconsumers ~items_per_producer ~symbolic =
  compile (unit_for ~nproducers ~nconsumers ~items_per_producer ~symbolic)
