(* A miniature of libevent — paper Table 4's "Event notification library".

   The library core: register (fd, handler) pairs, then run an event loop
   that select()s over the registered descriptors and dispatches ready
   ones to their handlers.  Since mini-C has no function pointers,
   handlers are small integers dispatched in [dispatch] — the same shape
   as a handler table.

   The demo application registers two pipes: an echo handler (copies
   bytes to an output pipe) and an accumulator handler (sums bytes); a
   feeder thread writes to both pipes and then closes them.  The loop
   exits when every registered source has reached EOF.  With symbolic
   feeder data, exploration covers the handlers' data-dependent branches
   under all arrival orders select can report. *)

open Lang.Builder
module Api = Posix.Api

let max_events = 4

let funcs =
  [
    fn "event_add" [ ("fd", i64); ("handler", u32) ] (Some u32)
      [
        when_ (v "nevents" >=! n max_events) [ ret (n 1) ];
        set (idx (v "ev_fd") (v "nevents")) (cast i32 (v "fd"));
        set (idx (v "ev_handler") (v "nevents")) (v "handler");
        set (idx (v "ev_live") (v "nevents")) (n 1);
        set (v "nevents") (v "nevents" +! n 1);
        ret (n 0);
      ];
    (* handler 1: echo one byte to the sink pipe; handler 2: accumulate *)
    fn "dispatch" [ ("slot", u32) ] None
      [
        decl "fd" i64 (Some (cast i64 (idx (v "ev_fd") (v "slot"))));
        decl_arr "b" u8 1;
        decl "got" i64 (Some (Api.read (v "fd") (addr (idx (v "b") (n 0))) (n 1)));
        if_ (v "got" <=! n 0)
          [ set (idx (v "ev_live") (v "slot")) (n 0) ] (* EOF: deregister *)
          [
            if_ (idx (v "ev_handler") (v "slot") ==! n 1)
              [ expr (Api.write (cast i64 (idx (v "sinkfds") (n 1))) (addr (idx (v "b") (n 0))) (n 1)) ]
              [
                if_ (idx (v "b") (n 0) <! n 128)
                  [ set (v "acc") (v "acc" +! cast u32 (idx (v "b") (n 0))) ]
                  [ set (v "acc") (v "acc" +! n 1) ];
              ];
          ];
      ];
    (* the loop: select over live events, dispatch ready ones *)
    fn "event_loop" [] None
      [
        decl "live" u32 (Some (n 1));
        while_ (v "live" >! n 0)
          [
            (* build the read-interest set *)
            decl_arr "rds" u8 16;
            call_void "mem_set" [ addr (idx (v "rds") (n 0)); n 0; n 16 ];
            set (v "live") (n 0);
            for_range "s" ~from:(n 0) ~below:(v "nevents")
              [
                when_ (idx (v "ev_live") (v "s") ==! n 1)
                  [
                    set (idx (v "rds") (cast u32 (idx (v "ev_fd") (v "s")))) (n 1);
                    incr_ "live";
                  ];
              ];
            when_ (v "live" >! n 0)
              [
                decl "nready" i64
                  (Some (Api.select (addr (idx (v "rds") (n 0))) (cast (Ptr u8) (n 0)) (n 16)));
                when_ (v "nready" >! n 0)
                  [
                    for_range "s" ~from:(n 0) ~below:(v "nevents")
                      [
                        when_
                          (idx (v "ev_live") (v "s") ==! n 1
                          &&! (idx (v "rds") (cast u32 (idx (v "ev_fd") (v "s"))) ==! n 1))
                          [ call_void "dispatch" [ v "s" ] ];
                      ];
                  ];
              ];
          ];
      ];
  ]

let globals =
  [
    global "ev_fd" (Arr (i32, max_events));
    global "ev_handler" (Arr (u32, max_events));
    global "ev_live" (Arr (u32, max_events));
    global "nevents" u32;
    global "acc" u32;
    global "echofds" (Arr (i32, 2));
    global "accfds" (Arr (i32, 2));
    global "sinkfds" (Arr (i32, 2));
  ]

let unit_for ~payload ~symbolic =
  let plen = String.length payload in
  cunit ~entry:"main" ~globals:(globals @ [ global "feed" (Arr (u8, max plen 1)) ])
    (Api.runtime @ funcs
    @ [
        fn "feeder" [ ("k", i64) ] None
          (List.concat
             [
               (if symbolic then []
                else List.init plen (fun i -> set (idx (v "feed") (n i)) (chr payload.[i])));
               [
                 (* interleave writes to both pipes, then close them *)
                 for_range "i" ~from:(n 0) ~below:(n plen)
                   [
                     if_ (v "i" %! n 2 ==! n 0)
                       [ expr (Api.write (cast i64 (idx (v "echofds") (n 1))) (addr (idx (v "feed") (v "i"))) (n 1)) ]
                       [ expr (Api.write (cast i64 (idx (v "accfds") (n 1))) (addr (idx (v "feed") (v "i"))) (n 1)) ];
                   ];
                 expr (Api.close (cast i64 (idx (v "echofds") (n 1))));
                 expr (Api.close (cast i64 (idx (v "accfds") (n 1))));
               ];
             ]);
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 expr (Api.pipe (cast (Ptr u8) (addr (idx (v "echofds") (n 0)))));
                 expr (Api.pipe (cast (Ptr u8) (addr (idx (v "accfds") (n 0)))));
                 expr (Api.pipe (cast (Ptr u8) (addr (idx (v "sinkfds") (n 0)))));
                 expr (call "event_add" [ cast i64 (idx (v "echofds") (n 0)); n 1 ]);
                 expr (call "event_add" [ cast i64 (idx (v "accfds") (n 0)); n 2 ]);
               ];
               (if symbolic then
                  [ expr (Api.make_symbolic (addr (idx (v "feed") (n 0))) (n plen) "feed") ]
                else []);
               [
                 expr (Api.thread_create "feeder" (n 0));
                 call_void "event_loop" [];
                 (* drain the echo sink and fold it into the digest *)
                 decl "digest" u32 (Some (v "acc"));
                 decl_arr "b" u8 1;
                 expr (Api.close (cast i64 (idx (v "sinkfds") (n 1))));
                 decl "got" i64 (Some (n 1));
                 while_ (v "got" >! n 0)
                   [
                     set (v "got")
                       (Api.read (cast i64 (idx (v "sinkfds") (n 0))) (addr (idx (v "b") (n 0))) (n 1));
                     when_ (v "got" >! n 0)
                       [ set (v "digest") ((v "digest" *! n 31) +! cast u32 (idx (v "b") (n 0))) ];
                   ];
                 halt (v "digest");
               ];
             ]);
      ])

let program ~payload ~symbolic = compile (unit_for ~payload ~symbolic)
