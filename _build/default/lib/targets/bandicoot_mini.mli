(** A miniature of the Bandicoot DBMS's HTTP GET handler (paper section
    7.3.5): relation lookup over an HTTP interface with an out-of-bounds
    read when the name's terminating delimiter is missing — the bug the
    real allocator's metadata masked, which our memory checker reports. *)

val nrelations : int
val funcs : Lang.Ast.func list
val globals : Lang.Ast.global list

(** Fully symbolic request of [req_len] bytes. *)
val symbolic_unit : req_len:int -> Lang.Ast.comp_unit

val program : req_len:int -> Cvm.Program.t

(** Concrete harness; exits with the HTTP status (200/400/404). *)
val concrete_unit : req:string -> Lang.Ast.comp_unit

val concrete_program : req:string -> Cvm.Program.t
