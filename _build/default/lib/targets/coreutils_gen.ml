(* A generated suite of 96 small command-line utilities standing in for
   Coreutils (paper section 7.3.1, Fig. 11).

   We cannot ship GNU Coreutils inside the VM, so this module *generates*
   96 distinct utilities.  Each utility is assembled from a seed-selected
   subset of feature blocks (option parsing with a per-utility option set,
   numeric parsing, case transforms, delimiter splitting, bracket
   matching, checksums, range validation, run-length detection) over a
   seed-sized symbolic input, under one of several control skeletons.
   Utilities therefore differ in real structure — path counts across the
   suite span two orders of magnitude — rather than being copies.

   Utility k is [program k] for k in 0..95. *)

open Lang.Builder
module Api = Posix.Api

let count = 96

(* --- feature blocks: each returns (functions, call expression) ------------- *)

(* parse '-x' style options drawn from a per-utility option set *)
let block_options ~opts =
  let checks =
    List.concat_map
      (fun (c, code) ->
        [
          when_ (idx (v "input") (v "oi" +! n 1) ==! chr c)
            [ set (v "optmask") (v "optmask" |! n code) ];
        ])
      opts
  in
  ( [
      fn "parse_options" [ ("len", u32) ] (Some u32)
        [
          decl "oi" u32 (Some (n 0));
          decl "optmask" u32 (Some (n 0));
          while_ (v "oi" +! n 1 <! v "len" &&! (idx (v "input") (v "oi") ==! chr '-'))
            (checks @ [ set (v "oi") (v "oi" +! n 2) ]);
          set (v "argstart") (v "oi");
          ret (v "optmask");
        ];
    ],
    call "parse_options" [ v "len" ] )

let block_atoi =
  ( [
      fn "parse_number" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "acc" u32 (Some (n 0));
          decl "i" u32 (Some (v "from"));
          while_
            (v "i" <! v "len" &&! (idx (v "input") (v "i") >=! chr '0')
            &&! (idx (v "input") (v "i") <=! chr '9'))
            [ set (v "acc") ((v "acc" *! n 10) +! cast u32 (idx (v "input") (v "i") -! chr '0'));
              incr_ "i" ];
          ret (v "acc");
        ];
    ],
    call "parse_number" [ v "argstart"; v "len" ] )

let block_case_count =
  ( [
      fn "count_upper" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "cnt" u32 (Some (n 0));
          decl "i" u32 (Some (v "from"));
          while_ (v "i" <! v "len")
            [
              when_ (idx (v "input") (v "i") >=! chr 'A' &&! (idx (v "input") (v "i") <=! chr 'Z'))
                [ incr_ "cnt" ];
              incr_ "i";
            ];
          ret (v "cnt");
        ];
    ],
    call "count_upper" [ v "argstart"; v "len" ] )

let block_split ~delim =
  ( [
      fn "count_fields" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "fields" u32 (Some (n 1));
          decl "i" u32 (Some (v "from"));
          while_ (v "i" <! v "len")
            [
              when_ (idx (v "input") (v "i") ==! chr delim) [ incr_ "fields" ];
              incr_ "i";
            ];
          ret (v "fields");
        ];
    ],
    call "count_fields" [ v "argstart"; v "len" ] )

let block_brackets =
  ( [
      fn "check_brackets" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "depth" u32 (Some (n 0));
          decl "i" u32 (Some (v "from"));
          while_ (v "i" <! v "len")
            [
              when_ (idx (v "input") (v "i") ==! chr '(') [ incr_ "depth" ];
              when_ (idx (v "input") (v "i") ==! chr ')')
                [
                  when_ (v "depth" ==! n 0) [ ret (n 99) ]; (* unbalanced *)
                  decr_ "depth";
                ];
              incr_ "i";
            ];
          ret (v "depth");
        ];
    ],
    call "check_brackets" [ v "argstart"; v "len" ] )

let block_checksum ~modulus =
  ( [
      fn "checksum" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "sum" u32 (Some (n 0));
          decl "i" u32 (Some (v "from"));
          while_ (v "i" <! v "len")
            [ set (v "sum") (v "sum" +! cast u32 (idx (v "input") (v "i"))); incr_ "i" ];
          ret (v "sum" %! n modulus);
        ];
    ],
    call "checksum" [ v "argstart"; v "len" ] )

let block_range ~lo ~hi =
  ( [
      fn "in_range" [ ("x", u32) ] (Some u32)
        [ if_ (v "x" >=! n lo &&! (v "x" <=! n hi)) [ ret (n 1) ] [ ret (n 0) ] ];
    ],
    call "in_range" [ call "parse_number" [ v "argstart"; v "len" ] ] )

let block_runs =
  ( [
      fn "longest_run" [ ("from", u32); ("len", u32) ] (Some u32)
        [
          decl "best" u32 (Some (n 0));
          decl "cur" u32 (Some (n 0));
          decl "prev" u8 (Some (n 0));
          decl "i" u32 (Some (v "from"));
          while_ (v "i" <! v "len")
            [
              if_ (idx (v "input") (v "i") ==! v "prev")
                [ incr_ "cur" ]
                [ set (v "cur") (n 1); set (v "prev") (idx (v "input") (v "i")) ];
              when_ (v "cur" >! v "best") [ set (v "best") (v "cur") ];
              incr_ "i";
            ];
          ret (v "best");
        ];
    ],
    call "longest_run" [ v "argstart"; v "len" ] )

(* --- assembly ----------------------------------------------------------------- *)

let option_pool = [ ('v', 1); ('q', 2); ('r', 4); ('n', 8); ('f', 16); ('x', 32) ]

(* Deterministic per-seed choices; a small LCG avoids clustering. *)
let mix seed k = (seed * 2654435761 + k * 40503) land 0x3FFFFFFF

let blocks_for seed =
  let pick k n = mix seed k mod n in
  let opts =
    (* 2-3 options from the pool, rotated by seed *)
    let rot = pick 1 6 in
    let take = 2 + pick 2 2 in
    List.init take (fun i -> List.nth option_pool ((rot + i) mod 6))
  in
  let pool =
    [
      block_options ~opts;
      block_atoi;
      block_case_count;
      block_split ~delim:(List.nth [ ','; ':'; ';'; ' ' ] (pick 3 4));
      block_brackets;
      block_checksum ~modulus:(3 + pick 4 5);
      block_runs;
    ]
  in
  (* options always present (it sets argstart); 2-3 further blocks *)
  let nextra = 2 + pick 5 2 in
  let rec take_extra acc k remaining =
    if k = 0 then List.rev acc
    else
      let idx = pick (6 + k) (List.length remaining) in
      let b = List.nth remaining idx in
      take_extra (b :: acc) (k - 1) (List.filteri (fun i _ -> i <> idx) remaining)
  in
  let extra = take_extra [] nextra (List.tl pool) in
  (* block_range depends on parse_number; add both when selected *)
  let has_atoi = List.exists (fun (fs, _) -> fs == fst block_atoi) extra in
  let extra =
    if pick 9 4 = 0 then
      if has_atoi then extra @ [ block_range ~lo:(pick 10 50) ~hi:(50 + pick 11 50) ]
      else extra @ [ block_atoi; block_range ~lo:(pick 10 50) ~hi:(50 + pick 11 50) ]
    else extra
  in
  List.hd pool :: extra

let input_len seed = 6 + mix seed 12 mod 4 (* 6..9 symbolic bytes *)

(* Two control skeletons: sequential accumulation, or option-gated
   dispatch where the option mask selects which analyses run. *)
let unit_for seed =
  let blocks = blocks_for seed in
  let funcs = List.concat_map fst blocks in
  let calls = List.map snd blocks in
  let len = input_len seed in
  let body =
    match mix seed 13 mod 2 with
    | 0 ->
      (* sequential: combine all results *)
      [ decl "acc" u32 (Some (n 0)) ]
      @ List.map (fun c -> set (v "acc") ((v "acc" *! n 5) +! c)) calls
      @ [ halt (v "acc" %! n 251) ]
    | _ ->
      (* gated: the option mask chooses analyses *)
      let gated =
        List.mapi
          (fun i c ->
            when_ ((v "mask" &! n (1 lsl (i mod 3))) <>! n 0)
              [ set (v "acc") (v "acc" +! c) ])
          (List.tl calls)
      in
      [ decl "acc" u32 (Some (n 0)); decl "mask" u32 (Some (List.hd calls)) ]
      @ gated
      @ [ halt (v "acc" %! n 251) ]
  in
  cunit ~entry:"main"
    ~globals:[ global "input" (Arr (u8, len)); global "argstart" u32 ]
    (funcs
    @ [
        fn "main" [] (Some u32)
          ([
             decl "len" u32 (Some (n len));
             expr (Api.make_symbolic (addr (idx (v "input") (n 0))) (n len) "argv");
           ]
          @ body);
      ])

let program seed =
  if seed < 0 || seed >= count then invalid_arg "Coreutils_gen.program: seed out of range";
  compile (unit_for seed)

let name seed = Printf.sprintf "cu%02d" seed
