(* A miniature memcached: binary protocol over TCP, a hash-table object
   store, and the UDP fragment-reassembly path containing the hang bug
   Cloud9 found (paper section 7.3.3).

   TCP binary protocol (a compressed version of memcached's):
     request  = [magic 0x80][opcode][keylen][vallen][key bytes][val bytes]
     response = [status][bodylen][body bytes]
     opcodes: 0 GET, 1 SET, 2 DELETE, 3 INCR, 4 VERSION
     statuses: 0 OK, 1 miss, 2 store error, 0x81 bad packet

   The store is an open-addressing hash table in globals.

   UDP frames carry a fragment train: [nfrags][frag]*, each frag being
   [fraglen][payload...] where fraglen counts the whole fragment
   *including* its length byte.  The reassembly loop advances by fraglen —
   a fragment with fraglen = 0 therefore never advances: the infinite
   loop that locks up the UDP handler, detected by the engine's per-path
   instruction cap exactly as the paper describes. *)

open Lang.Builder
module Api = Posix.Api

let nbuckets = 8
let key_size = 8
let val_size = 8

let store_globals =
  [
    global "ht_used" (Arr (u8, nbuckets));
    global "ht_klen" (Arr (u8, nbuckets));
    global "ht_vlen" (Arr (u8, nbuckets));
    global "ht_keys" (Arr (u8, nbuckets * key_size));
    global "ht_vals" (Arr (u8, nbuckets * val_size));
  ]

let store_funcs =
  [
    fn "ht_hash" [ ("key", Ptr u8); ("klen", u8) ] (Some u32)
      [
        decl "h" u32 (Some (n 5381));
        for_range "i" ~from:(n 0) ~below:(cast u32 (v "klen"))
          [ set (v "h") ((v "h" *! n 31) +! cast u32 (idx (v "key") (v "i"))) ];
        ret (v "h" %! n nbuckets);
      ];
    (* returns the bucket holding [key], or nbuckets if absent *)
    fn "ht_find" [ ("key", Ptr u8); ("klen", u8) ] (Some u32)
      [
        decl "b" u32 (Some (call "ht_hash" [ v "key"; v "klen" ]));
        for_range "probe" ~from:(n 0) ~below:(n nbuckets)
          [
            decl "slot" u32 (Some ((v "b" +! v "probe") %! n nbuckets));
            when_ (idx (v "ht_used") (v "slot") ==! n 0) [ ret (n nbuckets) ];
            when_ (idx (v "ht_used") (v "slot") ==! n 1 &&! (idx (v "ht_klen") (v "slot") ==! v "klen"))
              [
                decl "m" u32 (Some (n 1));
                for_range "i" ~from:(n 0) ~below:(cast u32 (v "klen"))
                  [
                    when_
                      (idx (v "ht_keys") ((v "slot" *! n key_size) +! v "i")
                      <>! idx (v "key") (v "i"))
                      [ set (v "m") (n 0) ];
                  ];
                when_ (v "m" ==! n 1) [ ret (v "slot") ];
              ];
          ];
        ret (n nbuckets);
      ];
    (* store a pair; returns 0 on success, 2 when the table is full *)
    fn "ht_set" [ ("key", Ptr u8); ("klen", u8); ("value", Ptr u8); ("vlen", u8) ] (Some u32)
      [
        decl "slot" u32 (Some (call "ht_find" [ v "key"; v "klen" ]));
        when_ (v "slot" >=! n nbuckets)
          [
            (* find a free slot by probing *)
            decl "b" u32 (Some (call "ht_hash" [ v "key"; v "klen" ]));
            set (v "slot") (n nbuckets);
            for_range "probe" ~from:(n 0) ~below:(n nbuckets)
              [
                decl "cand" u32 (Some ((v "b" +! v "probe") %! n nbuckets));
                when_ (v "slot" >=! n nbuckets &&! (idx (v "ht_used") (v "cand") ==! n 0))
                  [ set (v "slot") (v "cand") ];
              ];
            when_ (v "slot" >=! n nbuckets) [ ret (n 2) ];
          ];
        set (idx (v "ht_used") (v "slot")) (n 1);
        set (idx (v "ht_klen") (v "slot")) (v "klen");
        set (idx (v "ht_vlen") (v "slot")) (v "vlen");
        for_range "i" ~from:(n 0) ~below:(cast u32 (v "klen"))
          [ set (idx (v "ht_keys") ((v "slot" *! n key_size) +! v "i")) (idx (v "key") (v "i")) ];
        for_range "i" ~from:(n 0) ~below:(cast u32 (v "vlen"))
          [ set (idx (v "ht_vals") ((v "slot" *! n val_size) +! v "i")) (idx (v "value") (v "i")) ];
        ret (n 0);
      ];
    fn "ht_delete" [ ("key", Ptr u8); ("klen", u8) ] (Some u32)
      [
        decl "slot" u32 (Some (call "ht_find" [ v "key"; v "klen" ]));
        when_ (v "slot" >=! n nbuckets) [ ret (n 1) ];
        set (idx (v "ht_used") (v "slot")) (n 2); (* tombstone *)
        ret (n 0);
      ];
  ]

(* Parse and execute one packet sitting in [pkt, pkt+len); write the
   response into the global response buffer and set resp_len. *)
let server_core =
  [
    fn "respond1" [ ("status", u8) ] None
      [
        set (idx (v "resp") (n 0)) (v "status");
        set (idx (v "resp") (n 1)) (n 0);
        set (v "resp_len") (n 2);
      ];
    fn "handle_packet" [ ("pkt", Ptr u8); ("len", u32) ] None
      [
        when_ (v "len" <! n 4) [ call_void "respond1" [ n 0x81 ]; ret_void ];
        when_ (idx (v "pkt") (n 0) <>! n 0x80) [ call_void "respond1" [ n 0x81 ]; ret_void ];
        decl "opcode" u8 (Some (idx (v "pkt") (n 1)));
        decl "klen" u8 (Some (idx (v "pkt") (n 2)));
        decl "vlen" u8 (Some (idx (v "pkt") (n 3)));
        when_ (cast u32 (v "klen") >! n key_size ||! (cast u32 (v "vlen") >! n val_size))
          [ call_void "respond1" [ n 0x81 ]; ret_void ];
        when_ (n 4 +! cast u32 (v "klen") +! cast u32 (v "vlen") >! v "len")
          [ call_void "respond1" [ n 0x81 ]; ret_void ];
        decl "key" (Ptr u8) (Some (addr (idx (v "pkt") (n 4))));
        decl "value" (Ptr u8) (Some (addr (idx (v "pkt") (n 4 +! cast u32 (v "klen")))));
        if_ (v "opcode" ==! n 0)
          [
            (* GET *)
            decl "slot" u32 (Some (call "ht_find" [ v "key"; v "klen" ]));
            if_ (v "slot" >=! n nbuckets)
              [ call_void "respond1" [ n 1 ] ]
              [
                set (idx (v "resp") (n 0)) (n 0);
                set (idx (v "resp") (n 1)) (idx (v "ht_vlen") (v "slot"));
                for_range "i" ~from:(n 0) ~below:(cast u32 (idx (v "ht_vlen") (v "slot")))
                  [
                    set (idx (v "resp") (n 2 +! v "i"))
                      (idx (v "ht_vals") ((v "slot" *! n val_size) +! v "i"));
                  ];
                set (v "resp_len") (n 2 +! cast u32 (idx (v "ht_vlen") (v "slot")));
              ];
          ]
          [
            if_ (v "opcode" ==! n 1)
              [ call_void "respond1" [ cast u8 (call "ht_set" [ v "key"; v "klen"; v "value"; v "vlen" ]) ] ]
              [
                if_ (v "opcode" ==! n 2)
                  [ call_void "respond1" [ cast u8 (call "ht_delete" [ v "key"; v "klen" ]) ] ]
                  [
                    if_ (v "opcode" ==! n 3)
                      [
                        (* INCR: bump the first value byte *)
                        decl "slot" u32 (Some (call "ht_find" [ v "key"; v "klen" ]));
                        if_ (v "slot" >=! n nbuckets)
                          [ call_void "respond1" [ n 1 ] ]
                          [
                            set (idx (v "ht_vals") (v "slot" *! n val_size))
                              (idx (v "ht_vals") (v "slot" *! n val_size) +! n 1);
                            call_void "respond1" [ n 0 ];
                          ];
                      ]
                      [
                        if_ (v "opcode" ==! n 4)
                          [
                            (* VERSION *)
                            set (idx (v "resp") (n 0)) (n 0);
                            set (idx (v "resp") (n 1)) (n 3);
                            set (idx (v "resp") (n 2)) (chr '1');
                            set (idx (v "resp") (n 3)) (chr '.');
                            set (idx (v "resp") (n 4)) (chr '4');
                            set (v "resp_len") (n 5);
                          ]
                          [ call_void "respond1" [ n 0x81 ] ];
                      ];
                  ];
              ];
          ];
      ];
    (* TCP connection loop: read framed packets until EOF; [npackets]
       bounds the packets served (keeps symbolic tests finite) *)
    fn "serve_tcp" [ ("c", i64); ("npackets", u32) ] None
      [
        decl "served" u32 (Some (n 0));
        while_ (v "served" <! v "npackets")
          [
            decl_arr "pkt" u8 24;
            (* read the 4-byte header *)
            decl "have" u32 (Some (n 0));
            while_ (v "have" <! n 4)
              [
                decl "got" i64
                  (Some (Api.read (v "c") (addr (idx (v "pkt") (v "have"))) (n 4 -! cast i64 (v "have"))));
                when_ (v "got" <=! n 0) [ ret_void ];
                set (v "have") (v "have" +! cast u32 (v "got"));
              ];
            decl "klen" u8 (Some (idx (v "pkt") (n 2)));
            decl "vlen" u8 (Some (idx (v "pkt") (n 3)));
            decl "body" u32 (Some (cast u32 (v "klen") +! cast u32 (v "vlen")));
            when_ (v "body" >! n 16)
              [ call_void "respond1" [ n 0x81 ];
                expr (Api.write (v "c") (addr (idx (v "resp") (n 0))) (cast i64 (v "resp_len")));
                ret_void ];
            (* read the body one byte at a time: read lengths stay
               concrete even when klen/vlen are symbolic *)
            while_ (v "have" <! n 4 +! v "body")
              [
                decl "got2" i64 (Some (Api.read (v "c") (addr (idx (v "pkt") (v "have"))) (n 1)));
                when_ (v "got2" <=! n 0) [ ret_void ];
                set (v "have") (v "have" +! n 1);
              ];
            call_void "handle_packet" [ addr (idx (v "pkt") (n 0)); n 4 +! v "body" ];
            expr (Api.write (v "c") (addr (idx (v "resp") (n 0))) (cast i64 (v "resp_len")));
            set (v "served") (v "served" +! n 1);
          ];
      ];
    (* UDP service loop: reassemble a fragment train.  Each fragment is
       [fraglen][payload...], fraglen counting the whole fragment.  The
       BUG: a fragment with fraglen = 0 does not advance the cursor. *)
    fn "serve_udp_datagram" [ ("dgram", Ptr u8); ("dlen", u32) ] (Some u32)
      [
        when_ (v "dlen" <! n 1) [ ret (n 0) ];
        decl "nfrags" u8 (Some (idx (v "dgram") (n 0)));
        decl "pos" u32 (Some (n 1));
        decl "assembled" u32 (Some (n 0));
        decl "frag" u8 (Some (n 0));
        while_ (v "frag" <! v "nfrags")
          [
            when_ (v "pos" >=! v "dlen") [ ret (n 0) ]; (* truncated train *)
            decl "fraglen" u8 (Some (idx (v "dgram") (v "pos")));
            when_ (v "pos" +! cast u32 (v "fraglen") >! v "dlen") [ ret (n 0) ];
            (* accumulate payload bytes (fraglen - 1 of them) *)
            set (v "assembled") (v "assembled" +! cast u32 (v "fraglen"));
            (* the hang: pos += fraglen never advances when fraglen = 0 *)
            set (v "pos") (v "pos" +! cast u32 (v "fraglen"));
            when_ (v "fraglen" >! n 0) [ set (v "frag") (v "frag" +! n 1) ];
          ];
        ret (v "assembled");
      ];
  ]

let base_globals = store_globals @ [ global "resp" (Arr (u8, 24)); global "resp_len" u32; global "srv_ready" u32 ]

let all_funcs = store_funcs @ server_core

(* Every memcached harness compiles [all_funcs] first, so the server's
   code occupies source lines 1..server_line_count in all of them: this
   lets Table 5 report coverage of the *server*, excluding harness
   boilerplate, and makes coverage vectors comparable across harnesses. *)
let server_line_count =
  lazy
    (let p =
       compile
         (cunit ~entry:"main" ~globals:base_globals
            (all_funcs @ [ fn "main" [] (Some u32) [ halt (n 0) ] ]))
     in
     (* the dummy main consumes two lines: its entry line and the halt *)
     p.Cvm.Program.nlines - 2)

(* --- harness A: concrete test suite over TCP -------------------------------------- *)

(* One concrete test case = a list of packets (as strings) the client
   sends, with the expected first response status per packet. *)
let packet ~opcode ~key ~value =
  let b = Buffer.create 16 in
  Buffer.add_char b '\x80';
  Buffer.add_char b (Char.chr opcode);
  Buffer.add_char b (Char.chr (String.length key));
  Buffer.add_char b (Char.chr (String.length value));
  Buffer.add_string b key;
  Buffer.add_string b value;
  Buffer.contents b

let concrete_suite_unit ?(fault_injection = false) ~commands ~expected_statuses () =
  let all = String.concat "" commands in
  let npackets = List.length commands in
  let send_setup =
    List.init (String.length all) (fun i -> set (idx (v "sendbuf") (n i)) (chr all.[i]))
  in
  let checks =
    (* responses share one byte stream: read the 2-byte header exactly,
       check the status, then drain the body so the next response aligns *)
    List.concat
      (List.mapi
         (fun k status ->
           [
             decl (Printf.sprintf "r%d" k) i64
               (Some (Api.read (v "c") (addr (idx (v "rbuf") (n 0))) (n 2)));
             assert_ (v (Printf.sprintf "r%d" k) ==! n 2) (Printf.sprintf "response %d header" k);
             assert_ (idx (v "rbuf") (n 0) ==! n status)
               (Printf.sprintf "response %d status" k);
             decl (Printf.sprintf "b%d" k) u32 (Some (cast u32 (idx (v "rbuf") (n 1))));
             while_ (v (Printf.sprintf "b%d" k) >! n 0)
               [
                 expr (Api.read (v "c") (addr (idx (v "rbuf") (n 2))) (n 1));
                 set (v (Printf.sprintf "b%d" k)) (v (Printf.sprintf "b%d" k) -! n 1);
               ];
           ])
         expected_statuses)
  in
  cunit ~entry:"main"
    ~globals:(base_globals @ [ global "sendbuf" (Arr (u8, max (String.length all) 1)); global "rbuf" (Arr (u8, 24)) ])
    (all_funcs
    @ [
        fn "server_main" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            expr (Api.bind (v "s") (n 11211));
            expr (Api.listen (v "s"));
            set (v "srv_ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            (* Table 5's fault-injection method: every failure memcached's
               calls can produce is injected on the server's descriptor *)
            (if fault_injection then
               expr (Api.ioctl (v "c") Api.sio_fault_inj (Api.rd_flag |! Api.wr_flag))
             else expr (Api.time ()));
            call_void "serve_tcp" [ v "c"; n npackets ];
            expr (Api.close (v "c"));
          ];
        fn "main" [] (Some u32)
          (List.concat
             [
               [
                 expr (Api.thread_create "server_main" (n 0));
                 while_ (v "srv_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
                 decl "c" i64 (Some (Api.socket Api.sock_stream));
                 assert_ (Api.connect (v "c") (n 11211) ==! n 0) "connect";
               ];
               (if fault_injection then [ expr (Api.fi_enable ()) ] else []);
               send_setup;
               [ expr (Api.write (v "c") (addr (idx (v "sendbuf") (n 0))) (n (String.length all))) ];
               checks;
               [ halt (n 0) ];
             ]);
      ])

let concrete_suite ?fault_injection ~commands ~expected_statuses () =
  compile (concrete_suite_unit ?fault_injection ~commands ~expected_statuses ())

(* The "existing test suite": representative get/set/delete/incr flows. *)
let test_suite =
  [
    ( "set_get",
      [ packet ~opcode:1 ~key:"k1" ~value:"v1"; packet ~opcode:0 ~key:"k1" ~value:"" ],
      [ 0; 0 ] );
    ( "get_miss",
      [ packet ~opcode:0 ~key:"nope" ~value:"" ],
      [ 1 ] );
    ( "set_delete_get",
      [
        packet ~opcode:1 ~key:"k2" ~value:"vv";
        packet ~opcode:2 ~key:"k2" ~value:"";
        packet ~opcode:0 ~key:"k2" ~value:"";
      ],
      [ 0; 0; 1 ] );
    ( "incr",
      [ packet ~opcode:1 ~key:"c" ~value:"\x05"; packet ~opcode:3 ~key:"c" ~value:"" ],
      [ 0; 0 ] );
    ( "incr_miss",
      [ packet ~opcode:3 ~key:"zz" ~value:"" ],
      [ 1 ] );
    ( "version",
      [ packet ~opcode:4 ~key:"" ~value:"" ],
      [ 0 ] );
    ( "bad_magic",
      [ "\x7f\x00\x00\x00" ],
      [ 0x81 ] );
    ( "bad_opcode",
      [ packet ~opcode:9 ~key:"k" ~value:"" ],
      [ 0x81 ] );
    ( "replace",
      [
        packet ~opcode:1 ~key:"k3" ~value:"a";
        packet ~opcode:1 ~key:"k3" ~value:"b";
        packet ~opcode:0 ~key:"k3" ~value:"";
      ],
      [ 0; 0; 0 ] );
  ]

(* --- harness B: symbolic packets over TCP (Fig. 7/9/12/13, Table 5) ---------------- *)

(* The client sends [npackets] fully symbolic packets of [pkt_len] bytes
   each; the server serves exactly that many.  This is the paper's
   "generic symbolic binary command followed by a second symbolic
   command" test. *)
let symbolic_packets_unit ~npackets ~pkt_len =
  cunit ~entry:"main"
    ~globals:(base_globals @ [ global "sendbuf" (Arr (u8, npackets * pkt_len)); global "rbuf" (Arr (u8, 24)) ])
    (all_funcs
    @ [
        fn "server_main" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            expr (Api.bind (v "s") (n 11211));
            expr (Api.listen (v "s"));
            set (v "srv_ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            call_void "serve_tcp" [ v "c"; n npackets ];
            expr (Api.close (v "c"));
          ];
        fn "main" [] (Some u32)
          [
            expr (Api.thread_create "server_main" (n 0));
            while_ (v "srv_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
            decl "c" i64 (Some (Api.socket Api.sock_stream));
            assert_ (Api.connect (v "c") (n 11211) ==! n 0) "connect";
            expr
              (Api.make_symbolic (addr (idx (v "sendbuf") (n 0))) (n (npackets * pkt_len)) "packets");
            expr (Api.write (v "c") (addr (idx (v "sendbuf") (n 0))) (n (npackets * pkt_len)));
            (* drain responses until the server closes the connection *)
            decl "got" i64 (Some (n 1));
            while_ (v "got" >! n 0)
              [ set (v "got") (Api.read (v "c") (addr (idx (v "rbuf") (n 0))) (n 24)) ];
            halt (n 0);
          ];
      ])

let symbolic_packets ~npackets ~pkt_len = compile (symbolic_packets_unit ~npackets ~pkt_len)

(* --- harness C: UDP with the fragment-train hang (section 7.3.3) --------------------- *)

let udp_unit ~dgram_len =
  cunit ~entry:"main"
    ~globals:(base_globals @ [ global "dbuf" (Arr (u8, dgram_len)) ])
    (all_funcs
    @ [
        fn "udp_server" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_dgram));
            expr (Api.bind (v "s") (n 11211));
            set (v "srv_ready") (n 1);
            decl_arr "d" u8 dgram_len;
            decl "got" i64 (Some (Api.recvfrom (v "s") (addr (idx (v "d") (n 0))) (n dgram_len)));
            when_ (v "got" >! n 0)
              [ expr (call "serve_udp_datagram" [ addr (idx (v "d") (n 0)); cast u32 (v "got") ]) ];
          ];
        fn "main" [] (Some u32)
          [
            expr (Api.thread_create "udp_server" (n 0));
            while_ (v "srv_ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
            decl "c" i64 (Some (Api.socket Api.sock_dgram));
            expr (Api.make_symbolic (addr (idx (v "dbuf") (n 0))) (n dgram_len) "dgram");
            expr (Api.sendto (v "c") (addr (idx (v "dbuf") (n 0))) (n dgram_len) (n 11211));
            expr (Api.thread_preempt ());
            expr (Api.thread_preempt ());
            halt (n 0);
          ];
      ])

let udp_program ~dgram_len = compile (udp_unit ~dgram_len)
