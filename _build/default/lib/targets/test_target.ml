(* A miniature of the UNIX [test] ('[') utility: evaluates a boolean
   expression given as argv-style tokens (Fig. 10's second small-utility
   workload).  Supported grammar, evaluated left to right:

     expr    := clause (('-a' | '-o') clause)*
     clause  := ['!'] primary
     primary := '-z' WORD | '-n' WORD
              | WORD '=' WORD | WORD '!=' WORD
              | NUM '-eq' NUM | '-ne' | '-lt' | '-gt'
              | WORD                        (nonempty test)

   Tokens live in a fixed argv matrix of NUL-padded 4-byte cells; the
   symbolic harness makes all cells symbolic. *)

open Lang.Builder
module Api = Posix.Api

let token_size = 4

(* tok(k) = &argv[k * token_size] *)
let funcs =
  [
    fn "tok" [ ("k", u32) ] (Some (Ptr u8)) [ ret (addr (idx (v "argv") (v "k" *! n token_size))) ];
    fn "is_num" [ ("s", Ptr u8) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        when_ (idx (v "s") (n 0) ==! n 0) [ ret (n 0) ];
        while_ (v "i" <! n token_size &&! (idx (v "s") (v "i") <>! n 0))
          [
            when_ (idx (v "s") (v "i") <! chr '0' ||! (idx (v "s") (v "i") >! chr '9')) [ ret (n 0) ];
            incr_ "i";
          ];
        ret (n 1);
      ];
    fn "atoi" [ ("s", Ptr u8) ] (Some u32)
      [
        decl "acc" u32 (Some (n 0));
        decl "i" u32 (Some (n 0));
        while_ (v "i" <! n token_size &&! (idx (v "s") (v "i") >=! chr '0') &&! (idx (v "s") (v "i") <=! chr '9'))
          [ set (v "acc") ((v "acc" *! n 10) +! cast u32 (idx (v "s") (v "i") -! chr '0')); incr_ "i" ];
        ret (v "acc");
      ];
    (* bounded string equality over token cells *)
    fn "tok_eq" [ ("a", Ptr u8); ("b", Ptr u8) ] (Some u32)
      [
        for_range "i" ~from:(n 0) ~below:(n token_size)
          [
            when_ (idx (v "a") (v "i") <>! idx (v "b") (v "i")) [ ret (n 0) ];
            when_ (idx (v "a") (v "i") ==! n 0) [ ret (n 1) ];
          ];
        ret (n 1);
      ];
    (* primary(k, out_consumed) -> truth value; consumed written to global *)
    fn "primary" [ ("k", u32); ("argc", u32) ] (Some u32)
      [
        decl "t" (Ptr u8) (Some (call "tok" [ v "k" ]));
        (* unary operators *)
        when_
          (idx (v "t") (n 0) ==! chr '-' &&! (idx (v "t") (n 1) ==! chr 'z') &&! (idx (v "t") (n 2) ==! n 0)
          &&! (v "k" +! n 1 <! v "argc"))
          [
            set (v "consumed") (n 2);
            decl "wz" (Ptr u8) (Some (call "tok" [ v "k" +! n 1 ]));
            ret (cond (idx (v "wz") (n 0) ==! n 0) (n 1) (n 0));
          ];
        when_
          (idx (v "t") (n 0) ==! chr '-' &&! (idx (v "t") (n 1) ==! chr 'n') &&! (idx (v "t") (n 2) ==! n 0)
          &&! (v "k" +! n 1 <! v "argc"))
          [
            set (v "consumed") (n 2);
            decl "wn" (Ptr u8) (Some (call "tok" [ v "k" +! n 1 ]));
            ret (cond (idx (v "wn") (n 0) <>! n 0) (n 1) (n 0));
          ];
        (* binary operators: need k+2 < argc *)
        when_ (v "k" +! n 2 <=! v "argc" -! n 1)
          [
            decl "op" (Ptr u8) (Some (call "tok" [ v "k" +! n 1 ]));
            decl "rhs" (Ptr u8) (Some (call "tok" [ v "k" +! n 2 ]));
            (* string = and != *)
            when_ (idx (v "op") (n 0) ==! chr '=' &&! (idx (v "op") (n 1) ==! n 0))
              [ set (v "consumed") (n 3); ret (call "tok_eq" [ v "t"; v "rhs" ]) ];
            when_
              (idx (v "op") (n 0) ==! chr '!' &&! (idx (v "op") (n 1) ==! chr '=')
              &&! (idx (v "op") (n 2) ==! n 0))
              [
                set (v "consumed") (n 3);
                ret (cond (call "tok_eq" [ v "t"; v "rhs" ] ==! n 0) (n 1) (n 0));
              ];
            (* numeric comparisons *)
            when_
              (idx (v "op") (n 0) ==! chr '-' &&! (call "is_num" [ v "t" ] ==! n 1)
              &&! (call "is_num" [ v "rhs" ] ==! n 1))
              [
                decl "a" u32 (Some (call "atoi" [ v "t" ]));
                decl "b" u32 (Some (call "atoi" [ v "rhs" ]));
                decl "o1" u8 (Some (idx (v "op") (n 1)));
                decl "o2" u8 (Some (idx (v "op") (n 2)));
                set (v "consumed") (n 3);
                when_ (v "o1" ==! chr 'e' &&! (v "o2" ==! chr 'q'))
                  [ ret (cond (v "a" ==! v "b") (n 1) (n 0)) ];
                when_ (v "o1" ==! chr 'n' &&! (v "o2" ==! chr 'e'))
                  [ ret (cond (v "a" <>! v "b") (n 1) (n 0)) ];
                when_ (v "o1" ==! chr 'l' &&! (v "o2" ==! chr 't'))
                  [ ret (cond (v "a" <! v "b") (n 1) (n 0)) ];
                when_ (v "o1" ==! chr 'g' &&! (v "o2" ==! chr 't'))
                  [ ret (cond (v "a" >! v "b") (n 1) (n 0)) ];
                (* unknown numeric operator *)
                set (v "consumed") (n 1);
              ];
          ];
        (* bare word: true when nonempty *)
        set (v "consumed") (n 1);
        ret (cond (idx (v "t") (n 0) <>! n 0) (n 1) (n 0));
      ];
    fn "eval_expr" [ ("argc", u32) ] (Some u32)
      [
        decl "k" u32 (Some (n 0));
        decl "result" u32 (Some (n 1));
        decl "pending_op" u8 (Some (chr 'a')); (* 'a' = and, 'o' = or *)
        decl "first" u32 (Some (n 1));
        while_ (v "k" <! v "argc")
          [
            (* optional negation *)
            decl "negate" u32 (Some (n 0));
            decl "t0" (Ptr u8) (Some (call "tok" [ v "k" ]));
            while_
              (v "k" <! v "argc" &&! (idx (v "t0") (n 0) ==! chr '!') &&! (idx (v "t0") (n 1) ==! n 0))
              [
                set (v "negate") (cond (v "negate" ==! n 0) (n 1) (n 0));
                incr_ "k";
                when_ (v "k" >=! v "argc") [ halt (n 2) ]; (* syntax error *)
                set (v "t0") (call "tok" [ v "k" ]);
              ];
            decl "val" u32 (Some (call "primary" [ v "k"; v "argc" ]));
            set (v "k") (v "k" +! v "consumed");
            when_ (v "negate" ==! n 1) [ set (v "val") (cond (v "val" ==! n 0) (n 1) (n 0)) ];
            if_ (v "first" ==! n 1)
              [ set (v "result") (v "val"); set (v "first") (n 0) ]
              [
                if_ (v "pending_op" ==! chr 'a')
                  [ set (v "result") (cond (v "result" <>! n 0 &&! (v "val" <>! n 0)) (n 1) (n 0)) ]
                  [ set (v "result") (cond (v "result" <>! n 0 ||! (v "val" <>! n 0)) (n 1) (n 0)) ];
              ];
            (* connective *)
            when_ (v "k" <! v "argc")
              [
                decl "conn" (Ptr u8) (Some (call "tok" [ v "k" ]));
                if_
                  (idx (v "conn") (n 0) ==! chr '-' &&! (idx (v "conn") (n 1) ==! chr 'a')
                  &&! (idx (v "conn") (n 2) ==! n 0))
                  [ set (v "pending_op") (chr 'a'); incr_ "k" ]
                  [
                    if_
                      (idx (v "conn") (n 0) ==! chr '-' &&! (idx (v "conn") (n 1) ==! chr 'o')
                      &&! (idx (v "conn") (n 2) ==! n 0))
                      [ set (v "pending_op") (chr 'o'); incr_ "k" ]
                      [ halt (n 2) ]; (* syntax error *)
                  ];
              ];
          ];
        (* exit status: 0 = true, 1 = false, as the real utility *)
        ret (cond (v "result" <>! n 0) (n 0) (n 1));
      ];
  ]

let globals ~ntokens =
  [ global "argv" (Arr (u8, ntokens * token_size)); global "consumed" u32 ]

(* All argv cells symbolic. *)
let symbolic_unit ~ntokens =
  cunit ~entry:"main" ~globals:(globals ~ntokens)
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            expr
              (Api.make_symbolic (addr (idx (v "argv") (n 0))) (n (ntokens * token_size)) "argv");
            halt (call "eval_expr" [ n ntokens ]);
          ];
      ])

let program ~ntokens = compile (symbolic_unit ~ntokens)

(* Concrete harness: tokens provided as a list of strings. *)
let concrete_unit tokens =
  let ntokens = List.length tokens in
  let setup =
    List.concat
      (List.mapi
         (fun k tok ->
           List.init (String.length tok) (fun i ->
               set (idx (v "argv") (n ((k * token_size) + i))) (chr tok.[i])))
         tokens)
  in
  cunit ~entry:"main" ~globals:(globals ~ntokens)
    (funcs @ [ fn "main" [] (Some u32) (setup @ [ halt (call "eval_expr" [ n ntokens ]) ]) ])

let concrete_program tokens = compile (concrete_unit tokens)
