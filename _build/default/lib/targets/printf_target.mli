(** A miniature printf: the format-string parsing workload of the paper's
    coverage experiments (Fig. 8 and 10).  Supports literals, [%%], flags
    [0-+], numeric widths, and conversions [d u x c s], with per-position
    conversion accounting whose deep lines make high coverage expensive. *)

val funcs : Lang.Ast.func list
val globals : Lang.Ast.global list

(** Symbolic test: [fmt_len] fully symbolic format bytes. *)
val symbolic_unit : fmt_len:int -> Lang.Ast.comp_unit

val program : fmt_len:int -> Cvm.Program.t

(** Concrete harness: formats [fmt] and exits with the emitted byte count. *)
val concrete_unit : fmt:string -> Lang.Ast.comp_unit

val concrete_program : fmt:string -> Cvm.Program.t
