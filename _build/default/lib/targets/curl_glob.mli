(** A miniature of curl's URL globbing (paper section 7.3.2): expands
    [{a,b,c}] alternatives and [[0-9]] ranges.  The pre-fix version scans
    past the buffer on an unmatched '{' — the crash Cloud9 found, fixed
    within a day by the developers. *)

(** [buggy:true] reproduces the defect; [false] carries the bounds check
    of the fix. *)
val glob_funcs : buggy:bool -> Lang.Ast.func list

(** Fully symbolic URL of [url_len] bytes. *)
val symbolic_unit : buggy:bool -> url_len:int -> Lang.Ast.comp_unit

val program : buggy:bool -> url_len:int -> Cvm.Program.t

(** Concrete harness; exits with the expansion count. *)
val concrete_unit : buggy:bool -> url:string -> Lang.Ast.comp_unit

val concrete_program : buggy:bool -> url:string -> Cvm.Program.t
