(* A miniature of Apache httpd — the largest web server in paper Table 4.

   Richer than the lighttpd miniature: full request parsing (method,
   URI with query-string split, HTTP version), a header loop recognizing
   Host, Content-Length, and Connection, body consumption per
   Content-Length, prefix routing (static files, a /cgi/ echo handler,
   directory redirects) and keep-alive support — the parsing surface where
   web-server bugs live.  No bug is planted: the symbolic harness is a
   robustness proof over all request bytes of the given length, and the
   concrete harness a protocol conformance test. *)

open Lang.Builder
module Api = Posix.Api

let funcs =
  [
    (* case-insensitive prefix match of a header name at req[p..] *)
    fn "hdr_is" [ ("req", Ptr u8); ("p", u32); ("len", u32); ("name", Ptr u8) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        while_ (idx (v "name") (v "i") <>! n 0)
          [
            when_ (v "p" +! v "i" >=! v "len") [ ret (n 0) ];
            decl "c" u8 (Some (idx (v "req") (v "p" +! v "i")));
            (* fold to lower case *)
            when_ (v "c" >=! chr 'A' &&! (v "c" <=! chr 'Z')) [ set (v "c") (v "c" +! n 32) ];
            when_ (v "c" <>! idx (v "name") (v "i")) [ ret (n 0) ];
            incr_ "i";
          ];
        ret (n 1);
      ];
    (* parse an unsigned decimal at req[p..]; result in global, returns
       the position after the digits *)
    fn "parse_uint" [ ("req", Ptr u8); ("p", u32); ("len", u32) ] (Some u32)
      [
        set (v "uint_val") (n 0);
        while_
          (v "p" <! v "len" &&! (idx (v "req") (v "p") >=! chr '0')
          &&! (idx (v "req") (v "p") <=! chr '9'))
          [
            set (v "uint_val") ((v "uint_val" *! n 10) +! cast u32 (idx (v "req") (v "p") -! chr '0'));
            when_ (v "uint_val" >! n 9999) [ set (v "uint_val") (n 9999) ];
            incr_ "p";
          ];
        ret (v "p");
      ];
    (* handle_request(req, len) -> status; sets keep_alive *)
    fn "handle_request" [ ("req", Ptr u8); ("len", u32) ] (Some u32)
      [
        set (v "keep_alive") (n 0);
        (* --- method --- *)
        decl "p" u32 (Some (n 0));
        decl "meth" u32 (Some (n 0)); (* 1 GET, 2 HEAD, 3 POST *)
        when_
          (v "len" >=! n 4 &&! (idx (v "req") (n 0) ==! chr 'G')
          &&! (idx (v "req") (n 1) ==! chr 'E') &&! (idx (v "req") (n 2) ==! chr 'T')
          &&! (idx (v "req") (n 3) ==! chr ' '))
          [ set (v "meth") (n 1); set (v "p") (n 4) ];
        when_
          (v "meth" ==! n 0 &&! (v "len" >=! n 5) &&! (idx (v "req") (n 0) ==! chr 'H')
          &&! (idx (v "req") (n 1) ==! chr 'E') &&! (idx (v "req") (n 2) ==! chr 'A')
          &&! (idx (v "req") (n 3) ==! chr 'D') &&! (idx (v "req") (n 4) ==! chr ' '))
          [ set (v "meth") (n 2); set (v "p") (n 5) ];
        when_
          (v "meth" ==! n 0 &&! (v "len" >=! n 5) &&! (idx (v "req") (n 0) ==! chr 'P')
          &&! (idx (v "req") (n 1) ==! chr 'O') &&! (idx (v "req") (n 2) ==! chr 'S')
          &&! (idx (v "req") (n 3) ==! chr 'T') &&! (idx (v "req") (n 4) ==! chr ' '))
          [ set (v "meth") (n 3); set (v "p") (n 5) ];
        when_ (v "meth" ==! n 0) [ ret (n 501) ];
        (* --- URI: up to space; split query at '?' --- *)
        when_ (v "p" >=! v "len" ||! (idx (v "req") (v "p") <>! chr '/')) [ ret (n 400) ];
        decl "uri_start" u32 (Some (v "p"));
        decl "query_at" u32 (Some (n 0));
        while_ (v "p" <! v "len" &&! (idx (v "req") (v "p") <>! chr ' '))
          [
            when_ (idx (v "req") (v "p") ==! chr '?' &&! (v "query_at" ==! n 0))
              [ set (v "query_at") (v "p") ];
            (* reject control characters in the URI *)
            when_ (idx (v "req") (v "p") <! n 32) [ ret (n 400) ];
            incr_ "p";
          ];
        when_ (v "p" >=! v "len") [ ret (n 400) ];
        decl "uri_end" u32 (Some (cond (v "query_at" >! n 0) (v "query_at") (v "p")));
        incr_ "p"; (* past the space *)
        (* --- version: any "HTTP/" other than 1.0 / 1.1 is unsupported --- *)
        decl "http11" u32 (Some (n 0));
        when_
          (v "p" +! n 7 <! v "len" &&! (idx (v "req") (v "p") ==! chr 'H')
          &&! (idx (v "req") (v "p" +! n 1) ==! chr 'T')
          &&! (idx (v "req") (v "p" +! n 2) ==! chr 'T')
          &&! (idx (v "req") (v "p" +! n 3) ==! chr 'P')
          &&! (idx (v "req") (v "p" +! n 4) ==! chr '/'))
          [
            when_
              (idx (v "req") (v "p" +! n 5) <>! chr '1'
              ||! (idx (v "req") (v "p" +! n 6) <>! chr '.')
              ||! (idx (v "req") (v "p" +! n 7) <>! chr '0'
                  &&! (idx (v "req") (v "p" +! n 7) <>! chr '1')))
              [ ret (n 505) ];
            when_ (idx (v "req") (v "p" +! n 7) ==! chr '1') [ set (v "http11") (n 1) ];
          ];
        (* skip to end of the request line *)
        while_ (v "p" <! v "len" &&! (idx (v "req") (v "p") <>! chr '\n')) [ incr_ "p" ];
        when_ (v "p" >=! v "len") [ ret (n 400) ];
        incr_ "p";
        (* HTTP/1.1 defaults to keep-alive *)
        set (v "keep_alive") (v "http11");
        (* --- header loop --- *)
        decl "content_length" u32 (Some (n 0));
        decl "saw_host" u32 (Some (n 0));
        decl "more" u32 (Some (n 1));
        while_ (v "more" ==! n 1)
          [
            when_ (v "p" >=! v "len") [ ret (n 400) ]; (* truncated headers *)
            (* blank line ends the headers *)
            if_
              (idx (v "req") (v "p") ==! chr '\n'
              ||! (idx (v "req") (v "p") ==! chr '\r'))
              [
                while_ (v "p" <! v "len" &&! (idx (v "req") (v "p") <>! chr '\n')) [ incr_ "p" ];
                when_ (v "p" <! v "len") [ incr_ "p" ];
                set (v "more") (n 0);
              ]
              [
                when_ (call "hdr_is" [ v "req"; v "p"; v "len"; str "host:" ] ==! n 1)
                  [ set (v "saw_host") (n 1) ];
                when_ (call "hdr_is" [ v "req"; v "p"; v "len"; str "content-length:" ] ==! n 1)
                  [
                    decl "q" u32 (Some (v "p" +! n 15));
                    while_ (v "q" <! v "len" &&! (idx (v "req") (v "q") ==! chr ' ')) [ incr_ "q" ];
                    expr (call "parse_uint" [ v "req"; v "q"; v "len" ]);
                    set (v "content_length") (v "uint_val");
                  ];
                when_ (call "hdr_is" [ v "req"; v "p"; v "len"; str "connection: close" ] ==! n 1)
                  [ set (v "keep_alive") (n 0) ];
                when_
                  (call "hdr_is" [ v "req"; v "p"; v "len"; str "connection: keep-alive" ] ==! n 1)
                  [ set (v "keep_alive") (n 1) ];
                (* next line *)
                while_ (v "p" <! v "len" &&! (idx (v "req") (v "p") <>! chr '\n')) [ incr_ "p" ];
                when_ (v "p" >=! v "len") [ ret (n 400) ];
                incr_ "p";
              ];
          ];
        (* HTTP/1.1 requires Host *)
        when_ (v "http11" ==! n 1 &&! (v "saw_host" ==! n 0)) [ ret (n 400) ];
        (* --- body --- *)
        when_ (v "meth" ==! n 3)
          [
            when_ (v "p" +! v "content_length" >! v "len") [ ret (n 400) ]; (* short body *)
            set (v "body_sum") (n 0);
            for_range "i" ~from:(n 0) ~below:(v "content_length")
              [ set (v "body_sum") (v "body_sum" +! cast u32 (idx (v "req") (v "p" +! v "i"))) ];
          ];
        (* --- routing --- *)
        decl "ulen" u32 (Some (v "uri_end" -! v "uri_start"));
        (* "/" -> index *)
        when_ (v "ulen" ==! n 1) [ ret (n 200) ];
        (* "/cgi/..." -> the echo handler (POST only) *)
        when_
          (v "ulen" >=! n 5 &&! (idx (v "req") (v "uri_start" +! n 1) ==! chr 'c')
          &&! (idx (v "req") (v "uri_start" +! n 2) ==! chr 'g')
          &&! (idx (v "req") (v "uri_start" +! n 3) ==! chr 'i')
          &&! (idx (v "req") (v "uri_start" +! n 4) ==! chr '/'))
          [ if_ (v "meth" ==! n 3) [ ret (n 200) ] [ ret (n 405) ] ];
        (* "/docs" without trailing slash -> redirect *)
        when_
          (v "ulen" ==! n 5 &&! (idx (v "req") (v "uri_start" +! n 1) ==! chr 'd')
          &&! (idx (v "req") (v "uri_start" +! n 2) ==! chr 'o')
          &&! (idx (v "req") (v "uri_start" +! n 3) ==! chr 'c')
          &&! (idx (v "req") (v "uri_start" +! n 4) ==! chr 's'))
          [ ret (n 301) ];
        ret (n 404);
      ];
  ]

let globals = [ global "uint_val" u32; global "keep_alive" u32; global "body_sum" u32 ]

let symbolic_unit ~req_len =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "req" u8 req_len;
            expr (Api.make_symbolic (addr (idx (v "req") (n 0))) (n req_len) "req");
            halt (call "handle_request" [ addr (idx (v "req") (n 0)); n req_len ]);
          ];
      ])

let program ~req_len = compile (symbolic_unit ~req_len)

let concrete_unit ~req =
  let len = String.length req in
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          ([ decl_arr "buf" u8 (max len 1) ]
          @ List.init len (fun i -> set (idx (v "buf") (n i)) (chr req.[i]))
          @ [
              decl "status" u32 (Some (call "handle_request" [ addr (idx (v "buf") (n 0)); n len ]));
              (* fold keep-alive into the exit code: status*10 + ka *)
              halt ((v "status" *! n 10) +! v "keep_alive");
            ]);
      ])

let concrete_program ~req = compile (concrete_unit ~req)
