(* A miniature language interpreter standing in for the Python interpreter
   of paper Table 4 ("Language interpreter", the largest target).

   The language: integer expressions over single-letter variables with
   [+ - * / % ( )], comparisons [< > =], and unary minus.  The pipeline is
   a real interpreter's: a tokenizer, a shunting-yard translation to
   postfix, and a stack-machine evaluator — three stages of input-
   dependent branching, which is what makes interpreters prime symbolic
   execution targets.

   Error handling mirrors CPython's ethos: syntax errors and stack
   underflows produce error codes, never crashes — the symbolic harness
   doubles as a fuzzer proving that for all inputs of the given length. *)

open Lang.Builder
module Api = Posix.Api

(* token kinds *)
let t_num = 1
let t_var = 2
let t_op = 3
let t_lparen = 4
let t_rparen = 5

let funcs =
  [
    (* tokenize(src, len) -> token count, or -1 on bad character.
       tokens are triples in globals: kind, value *)
    fn "tokenize" [ ("src", Ptr u8); ("len", u32) ] (Some i32)
      [
        decl "i" u32 (Some (n 0));
        decl "ntok" u32 (Some (n 0));
        while_ (v "i" <! v "len" &&! (idx (v "src") (v "i") <>! n 0))
          [
            decl "c" u8 (Some (idx (v "src") (v "i")));
            when_ (v "ntok" >=! n 16) [ ret (n (-2)) ]; (* too many tokens *)
            if_ (v "c" ==! chr ' ')
              [ incr_ "i" ]
              [
                if_ (v "c" >=! chr '0' &&! (v "c" <=! chr '9'))
                  [
                    (* number literal *)
                    decl "acc" u32 (Some (n 0));
                    while_
                      (v "i" <! v "len"
                      &&! (idx (v "src") (v "i") >=! chr '0')
                      &&! (idx (v "src") (v "i") <=! chr '9'))
                      [
                        set (v "acc") ((v "acc" *! n 10) +! cast u32 (idx (v "src") (v "i") -! chr '0'));
                        incr_ "i";
                      ];
                    set (idx (v "tok_kind") (v "ntok")) (n t_num);
                    set (idx (v "tok_val") (v "ntok")) (v "acc");
                    incr_ "ntok";
                  ]
                  [
                    if_ (v "c" >=! chr 'a' &&! (v "c" <=! chr 'z'))
                      [
                        set (idx (v "tok_kind") (v "ntok")) (n t_var);
                        set (idx (v "tok_val") (v "ntok")) (cast u32 (v "c" -! chr 'a'));
                        incr_ "ntok";
                        incr_ "i";
                      ]
                      [
                        if_ (v "c" ==! chr '(')
                          [
                            set (idx (v "tok_kind") (v "ntok")) (n t_lparen);
                            incr_ "ntok";
                            incr_ "i";
                          ]
                          [
                            if_ (v "c" ==! chr ')')
                              [
                                set (idx (v "tok_kind") (v "ntok")) (n t_rparen);
                                incr_ "ntok";
                                incr_ "i";
                              ]
                              [
                                if_
                                  (v "c" ==! chr '+' ||! (v "c" ==! chr '-') ||! (v "c" ==! chr '*')
                                  ||! (v "c" ==! chr '/') ||! (v "c" ==! chr '%')
                                  ||! (v "c" ==! chr '<') ||! (v "c" ==! chr '>')
                                  ||! (v "c" ==! chr '='))
                                  [
                                    set (idx (v "tok_kind") (v "ntok")) (n t_op);
                                    set (idx (v "tok_val") (v "ntok")) (cast u32 (v "c"));
                                    incr_ "ntok";
                                    incr_ "i";
                                  ]
                                  [ ret (n (-1)) ]; (* bad character *)
                              ];
                          ];
                      ];
                  ];
              ];
          ];
        ret (cast i32 (v "ntok"));
      ];
    fn "precedence" [ ("op", u32) ] (Some u32)
      [
        when_ (v "op" ==! cast u32 (chr '*') ||! (v "op" ==! cast u32 (chr '/')) ||! (v "op" ==! cast u32 (chr '%')))
          [ ret (n 3) ];
        when_ (v "op" ==! cast u32 (chr '+') ||! (v "op" ==! cast u32 (chr '-'))) [ ret (n 2) ];
        ret (n 1); (* comparisons *)
      ];
    (* shunting-yard: tokens -> postfix program in out_kind/out_val.
       returns output length or -1 on syntax error. *)
    fn "to_postfix" [ ("ntok", u32) ] (Some i32)
      [
        decl "out" u32 (Some (n 0));
        decl "sp" u32 (Some (n 0)); (* operator stack pointer *)
        decl "prev_operand" u32 (Some (n 0)); (* for unary minus and syntax checks *)
        for_range "k" ~from:(n 0) ~below:(v "ntok")
          [
            decl "kind" u32 (Some (idx (v "tok_kind") (v "k")));
            if_ (v "kind" ==! n t_num ||! (v "kind" ==! n t_var))
              [
                when_ (v "prev_operand" ==! n 1) [ ret (n (-1)) ]; (* two operands in a row *)
                set (idx (v "out_kind") (v "out")) (v "kind");
                set (idx (v "out_val") (v "out")) (idx (v "tok_val") (v "k"));
                incr_ "out";
                set (v "prev_operand") (n 1);
              ]
              [
                if_ (v "kind" ==! n t_lparen)
                  [
                    when_ (v "sp" >=! n 16) [ ret (n (-2)) ];
                    set (idx (v "op_stack") (v "sp")) (n 0); (* 0 marks '(' *)
                    incr_ "sp";
                    set (v "prev_operand") (n 0);
                  ]
                  [
                    if_ (v "kind" ==! n t_rparen)
                      [
                        while_ (v "sp" >! n 0 &&! (idx (v "op_stack") (v "sp" -! n 1) <>! n 0))
                          [
                            decr_ "sp";
                            set (idx (v "out_kind") (v "out")) (n t_op);
                            set (idx (v "out_val") (v "out")) (idx (v "op_stack") (v "sp"));
                            incr_ "out";
                          ];
                        when_ (v "sp" ==! n 0) [ ret (n (-1)) ]; (* unmatched ')' *)
                        decr_ "sp"; (* pop '(' *)
                        set (v "prev_operand") (n 1);
                      ]
                      [
                        (* operator: unary minus becomes "0 x -" *)
                        decl "op" u32 (Some (idx (v "tok_val") (v "k")));
                        when_
                          (v "prev_operand" ==! n 0 &&! (v "op" ==! cast u32 (chr '-')))
                          [
                            set (idx (v "out_kind") (v "out")) (n t_num);
                            set (idx (v "out_val") (v "out")) (n 0);
                            incr_ "out";
                            set (v "prev_operand") (n 1);
                          ];
                        when_ (v "prev_operand" ==! n 0) [ ret (n (-1)) ]; (* binary op without lhs *)
                        while_
                          (v "sp" >! n 0
                          &&! (idx (v "op_stack") (v "sp" -! n 1) <>! n 0)
                          &&! (call "precedence" [ idx (v "op_stack") (v "sp" -! n 1) ]
                              >=! call "precedence" [ v "op" ]))
                          [
                            decr_ "sp";
                            set (idx (v "out_kind") (v "out")) (n t_op);
                            set (idx (v "out_val") (v "out")) (idx (v "op_stack") (v "sp"));
                            incr_ "out";
                          ];
                        when_ (v "sp" >=! n 16) [ ret (n (-2)) ];
                        set (idx (v "op_stack") (v "sp")) (v "op");
                        incr_ "sp";
                        set (v "prev_operand") (n 0);
                      ];
                  ];
              ];
          ];
        when_ (v "prev_operand" ==! n 0) [ ret (n (-1)) ]; (* trailing operator *)
        while_ (v "sp" >! n 0)
          [
            decr_ "sp";
            when_ (idx (v "op_stack") (v "sp") ==! n 0) [ ret (n (-1)) ]; (* unmatched '(' *)
            set (idx (v "out_kind") (v "out")) (n t_op);
            set (idx (v "out_val") (v "out")) (idx (v "op_stack") (v "sp"));
            incr_ "out";
          ];
        ret (cast i32 (v "out"));
      ];
    (* evaluate the postfix program; variables read from the preset
       environment.  returns the value; division by zero -> 0xDEAD. *)
    fn "eval_postfix" [ ("nout", u32) ] (Some u32)
      [
        decl "sp" u32 (Some (n 0));
        for_range "k" ~from:(n 0) ~below:(v "nout")
          [
            decl "kind" u32 (Some (idx (v "out_kind") (v "k")));
            if_ (v "kind" ==! n t_num)
              [
                set (idx (v "val_stack") (v "sp")) (idx (v "out_val") (v "k"));
                incr_ "sp";
              ]
              [
                if_ (v "kind" ==! n t_var)
                  [
                    set (idx (v "val_stack") (v "sp"))
                      (idx (v "var_env") (idx (v "out_val") (v "k") %! n 26));
                    incr_ "sp";
                  ]
                  [
                    (* operator: pop two, push one *)
                    when_ (v "sp" <! n 2) [ ret (n 0xBAD) ];
                    decl "b" u32 (Some (idx (v "val_stack") (v "sp" -! n 1)));
                    decl "a" u32 (Some (idx (v "val_stack") (v "sp" -! n 2)));
                    set (v "sp") (v "sp" -! n 2);
                    decl "op" u32 (Some (idx (v "out_val") (v "k")));
                    decl "r" u32 (Some (n 0));
                    when_ (v "op" ==! cast u32 (chr '+')) [ set (v "r") (v "a" +! v "b") ];
                    when_ (v "op" ==! cast u32 (chr '-')) [ set (v "r") (v "a" -! v "b") ];
                    when_ (v "op" ==! cast u32 (chr '*')) [ set (v "r") (v "a" *! v "b") ];
                    when_ (v "op" ==! cast u32 (chr '/'))
                      [ if_ (v "b" ==! n 0) [ ret (n 0xDEAD) ] [ set (v "r") (v "a" /! v "b") ] ];
                    when_ (v "op" ==! cast u32 (chr '%'))
                      [ if_ (v "b" ==! n 0) [ ret (n 0xDEAD) ] [ set (v "r") (v "a" %! v "b") ] ];
                    when_ (v "op" ==! cast u32 (chr '<'))
                      [ set (v "r") (cond (v "a" <! v "b") (n 1) (n 0)) ];
                    when_ (v "op" ==! cast u32 (chr '>'))
                      [ set (v "r") (cond (v "a" >! v "b") (n 1) (n 0)) ];
                    when_ (v "op" ==! cast u32 (chr '='))
                      [ set (v "r") (cond (v "a" ==! v "b") (n 1) (n 0)) ];
                    set (idx (v "val_stack") (v "sp")) (v "r");
                    incr_ "sp";
                  ];
              ];
          ];
        when_ (v "sp" <>! n 1) [ ret (n 0xBAD) ];
        ret (idx (v "val_stack") (n 0));
      ];
    (* the interpreter entry: returns 1000+value, or 1/2 for errors *)
    fn "interpret" [ ("src", Ptr u8); ("len", u32) ] (Some u32)
      [
        decl "ntok" i32 (Some (call "tokenize" [ v "src"; v "len" ]));
        when_ (v "ntok" <! n 0) [ ret (n 1) ]; (* lex error *)
        when_ (v "ntok" ==! n 0) [ ret (n 2) ]; (* empty program *)
        decl "nout" i32 (Some (call "to_postfix" [ cast u32 (v "ntok") ]));
        when_ (v "nout" <! n 0) [ ret (n 2) ]; (* syntax error *)
        ret (n 1000 +! call "eval_postfix" [ cast u32 (v "nout") ]);
      ];
  ]

let globals =
  [
    global "tok_kind" (Arr (u32, 16));
    global "tok_val" (Arr (u32, 16));
    global "op_stack" (Arr (u32, 16));
    global "out_kind" (Arr (u32, 32));
    global "out_val" (Arr (u32, 32));
    global "val_stack" (Arr (u32, 32));
    global "var_env" (Arr (u32, 26));
  ]

let env_setup =
  (* a..z preset to small primes so evaluation results discriminate *)
  List.init 26 (fun i -> set (idx (v "var_env") (n i)) (n ((i * 7 mod 23) + 1)))

let symbolic_unit ~src_len =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          (env_setup
          @ [
              decl_arr "src" u8 src_len;
              expr (Api.make_symbolic (addr (idx (v "src") (n 0))) (n src_len) "src");
              halt (call "interpret" [ addr (idx (v "src") (n 0)); n src_len ]);
            ]);
      ])

let program ~src_len = compile (symbolic_unit ~src_len)

let concrete_unit ~src =
  let len = String.length src in
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          (env_setup
          @ [ decl_arr "buf" u8 (max len 1) ]
          @ List.init len (fun i -> set (idx (v "buf") (n i)) (chr src.[i]))
          @ [ halt (call "interpret" [ addr (idx (v "buf") (n 0)); n len ]) ]);
      ])

let concrete_program ~src = compile (concrete_unit ~src)
