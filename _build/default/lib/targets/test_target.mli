(** A miniature of the UNIX [test] ('[') utility (Fig. 10's second small
    workload): evaluates boolean expressions over argv-style tokens
    ([-z]/[-n], [=]/[!=], [-eq]/[-ne]/[-lt]/[-gt], [!], [-a]/[-o]). *)

val token_size : int
val funcs : Lang.Ast.func list

(** All argv cells symbolic. *)
val symbolic_unit : ntokens:int -> Lang.Ast.comp_unit

val program : ntokens:int -> Cvm.Program.t

(** Concrete harness over the given tokens; exits 0 for true, 1 for
    false, 2 on syntax errors, as the real utility. *)
val concrete_unit : string list -> Lang.Ast.comp_unit

val concrete_program : string list -> Cvm.Program.t
