(* A miniature of Ghttpd 1.4.4 — the smallest web server in paper Table 4
   (0.6 KLOC).  The historical ghttpd vulnerability class is an unbounded
   copy of the request URL into a fixed buffer on the logging path
   (CVE-2002-1904-style): the URL is copied before any length check, so a
   long request overflows the log record.

   [serve] parses "METHOD URL", logs, and answers 200/404/501; the
   overflow fires for URLs longer than the 16-byte log slot. *)

open Lang.Builder
module Api = Posix.Api

let log_slot = 16

let funcs ~buggy =
  [
    fn "log_request" [ ("url", Ptr u8); ("urllen", u32) ] None
      [
        (if buggy then
           (* pre-fix: copy the whole URL into the fixed slot *)
           for_range "i" ~from:(n 0) ~below:(v "urllen")
             [ set (idx (v "logbuf") (v "i")) (idx (v "url") (v "i")) ]
         else
           for_range "i" ~from:(n 0) ~below:(cond (v "urllen" <! n log_slot) (v "urllen") (n log_slot))
             [ set (idx (v "logbuf") (v "i")) (idx (v "url") (v "i")) ]);
        set (v "nlogged") (v "nlogged" +! n 1);
      ];
    fn "serve" [ ("req", Ptr u8); ("len", u32) ] (Some u32)
      [
        (* method *)
        when_ (v "len" <! n 5) [ ret (n 400) ];
        decl "is_get" u32 (Some (n 0));
        when_
          (idx (v "req") (n 0) ==! chr 'G' &&! (idx (v "req") (n 1) ==! chr 'E')
          &&! (idx (v "req") (n 2) ==! chr 'T') &&! (idx (v "req") (n 3) ==! chr ' '))
          [ set (v "is_get") (n 1) ];
        when_ (v "is_get" ==! n 0) [ ret (n 501) ];
        (* URL: from offset 4 to the next space or end *)
        decl "urlend" u32 (Some (n 4));
        while_ (v "urlend" <! v "len" &&! (idx (v "req") (v "urlend") <>! chr ' '))
          [ incr_ "urlend" ];
        decl "urllen" u32 (Some (v "urlend" -! n 4));
        call_void "log_request" [ addr (idx (v "req") (n 4)); v "urllen" ];
        (* routing: only "/" and "/index.html" exist *)
        when_ (v "urllen" ==! n 1 &&! (idx (v "req") (n 4) ==! chr '/')) [ ret (n 200) ];
        when_
          (v "urllen" ==! n 11 &&! (idx (v "req") (n 4) ==! chr '/')
          &&! (idx (v "req") (n 5) ==! chr 'i'))
          [ ret (n 200) ];
        ret (n 404);
      ];
  ]

let globals = [ global "logbuf" (Arr (u8, log_slot)); global "nlogged" u32 ]

let symbolic_unit ~buggy ~req_len =
  cunit ~entry:"main" ~globals
    (funcs ~buggy
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "req" u8 req_len;
            expr (Api.make_symbolic (addr (idx (v "req") (n 0))) (n req_len) "req");
            halt (call "serve" [ addr (idx (v "req") (n 0)); n req_len ]);
          ];
      ])

let program ~buggy ~req_len = compile (symbolic_unit ~buggy ~req_len)

let concrete_unit ~buggy ~req =
  let len = String.length req in
  cunit ~entry:"main" ~globals
    (funcs ~buggy
    @ [
        fn "main" [] (Some u32)
          ([ decl_arr "buf" u8 (max len 1) ]
          @ List.init len (fun i -> set (idx (v "buf") (n i)) (chr req.[i]))
          @ [ halt (call "serve" [ addr (idx (v "buf") (n 0)); n len ]) ]);
      ])

let concrete_program ~buggy ~req = compile (concrete_unit ~buggy ~req)
