(* A miniature printf: the format-string interpreter whose heavy parsing
   makes it the paper's coverage-scalability workload (Fig. 8 and 10:
   "printf performs a lot of parsing of its input (format specifiers),
   which produces complex constraints when executed symbolically").

   Supports the classic subset: literal bytes, [%%], flags [0-+], a
   numeric width, and conversions [d u x c s].  Formatting writes into a
   bounded output buffer; widths are clamped so padding loops terminate.
   The format string is symbolic; argument values are fixed. *)

open Lang.Builder
module Api = Posix.Api

(* mini_printf(fmt, fmtlen) -> bytes emitted *)
let funcs =
  [
    (* emit one byte into the global output buffer, dropping overflow *)
    fn "emit" [ ("c", u8) ] None
      [
        when_ (v "outpos" <! n 64)
          [ set (idx (v "outbuf") (v "outpos")) (v "c"); set (v "outpos") (v "outpos" +! n 1) ];
      ];
    (* emit an unsigned number in the given base, zero/space padded to width *)
    fn "emit_num" [ ("value", u32); ("base", u32); ("width", u32); ("zero_pad", u8) ] None
      [
        decl_arr "digits" u8 12;
        decl "ndigits" u32 (Some (n 0));
        decl "value2" u32 (Some (v "value"));
        if_ (v "value2" ==! n 0)
          [ set (idx (v "digits") (n 0)) (chr '0'); set (v "ndigits") (n 1) ]
          [
            while_ (v "value2" >! n 0)
              [
                decl "d" u32 (Some (v "value2" %! v "base"));
                if_ (v "d" <! n 10)
                  [ set (idx (v "digits") (v "ndigits")) (cast u8 (v "d" +! n 48)) ]
                  [ set (idx (v "digits") (v "ndigits")) (cast u8 (v "d" -! n 10 +! n 97)) ];
                set (v "ndigits") (v "ndigits" +! n 1);
                set (v "value2") (v "value2" /! v "base");
              ];
          ];
        (* padding *)
        while_ (v "width" >! v "ndigits")
          [
            if_ (v "zero_pad" <>! n 0)
              [ call_void "emit" [ chr '0' ] ]
              [ call_void "emit" [ chr ' ' ] ];
            set (v "width") (v "width" -! n 1);
          ];
        (* digits are stored least-significant first *)
        decl "k" u32 (Some (v "ndigits"));
        while_ (v "k" >! n 0)
          [ set (v "k") (v "k" -! n 1); call_void "emit" [ idx (v "digits") (v "k") ] ];
      ];
    (* per-position conversion accounting: real printf implementations
       specialize handling by argument class; here every (position,
       conversion) pair has its own statements, so the lines deep in this
       function are only covered by formats with several specifiers —
       exactly the "high coverage levels require more exploration"
       behaviour Fig. 8 measures *)
    fn "audit" [ ("conv", u8); ("argi", u32) ] None
      [
        if_ (v "argi" ==! n 0)
          [
            if_ (v "conv" ==! chr 'd') [ set (v "audit0") (v "audit0" +! n 1) ]
              [
                if_ (v "conv" ==! chr 'x') [ set (v "audit0") (v "audit0" +! n 2) ]
                  [
                    if_ (v "conv" ==! chr 'u') [ set (v "audit0") (v "audit0" +! n 3) ]
                      [
                        if_ (v "conv" ==! chr 's') [ set (v "audit0") (v "audit0" +! n 4) ]
                          [ set (v "audit0") (v "audit0" +! n 5) ];
                      ];
                  ];
              ];
          ]
          [
            if_ (v "argi" ==! n 1)
              [
                if_ (v "conv" ==! chr 'd') [ set (v "audit1") (v "audit1" +! n 1) ]
                  [
                    if_ (v "conv" ==! chr 'x') [ set (v "audit1") (v "audit1" +! n 2) ]
                      [
                        if_ (v "conv" ==! chr 'u') [ set (v "audit1") (v "audit1" +! n 3) ]
                          [
                            if_ (v "conv" ==! chr 's') [ set (v "audit1") (v "audit1" +! n 4) ]
                              [ set (v "audit1") (v "audit1" +! n 5) ];
                          ];
                      ];
                  ];
              ]
              [
                (* third and later specifiers share a bucket: deep but
                   reachable through many different formats *)
                if_ (v "conv" ==! chr 'd') [ set (v "audit2") (v "audit2" +! n 1) ]
                  [
                    if_ (v "conv" ==! chr 'x') [ set (v "audit2") (v "audit2" +! n 2) ]
                      [
                        if_ (v "conv" ==! chr 'u') [ set (v "audit2") (v "audit2" +! n 3) ]
                          [
                            if_ (v "conv" ==! chr 's') [ set (v "audit2") (v "audit2" +! n 4) ]
                              [ set (v "audit2") (v "audit2" +! n 5) ];
                          ];
                      ];
                  ];
              ];
          ];
      ];
    fn "mini_printf" [ ("fmt", Ptr u8); ("fmtlen", u32) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        decl "argi" u32 (Some (n 0));
        decl_arr "args" u32 4;
        set (idx (v "args") (n 0)) (n 42);
        set (idx (v "args") (n 1)) (n 7);
        set (idx (v "args") (n 2)) (n 123456);
        set (idx (v "args") (n 3)) (n 0);
        while_ (v "i" <! v "fmtlen" &&! (idx (v "fmt") (v "i") <>! n 0))
          [
            decl "c" u8 (Some (idx (v "fmt") (v "i")));
            if_
              (v "c" ==! chr '%')
              [
                incr_ "i";
                when_ (v "i" >=! v "fmtlen") [ ret (v "outpos") ];
                (* flags *)
                decl "zero_pad" u8 (Some (n 0));
                decl "left" u8 (Some (n 0));
                while_
                  (idx (v "fmt") (v "i") ==! chr '0'
                  ||! (idx (v "fmt") (v "i") ==! chr '-')
                  ||! (idx (v "fmt") (v "i") ==! chr '+'))
                  [
                    when_ (idx (v "fmt") (v "i") ==! chr '0') [ set (v "zero_pad") (n 1) ];
                    when_ (idx (v "fmt") (v "i") ==! chr '-') [ set (v "left") (n 1) ];
                    incr_ "i";
                    when_ (v "i" >=! v "fmtlen") [ ret (v "outpos") ];
                  ];
                (* width, clamped so padding loops stay bounded *)
                decl "width" u32 (Some (n 0));
                while_
                  (v "i" <! v "fmtlen"
                  &&! (idx (v "fmt") (v "i") >=! chr '0')
                  &&! (idx (v "fmt") (v "i") <=! chr '9'))
                  [
                    set (v "width") ((v "width" *! n 10) +! cast u32 (idx (v "fmt") (v "i") -! chr '0'));
                    incr_ "i";
                  ];
                when_ (v "width" >! n 12) [ set (v "width") (n 12) ];
                when_ (v "i" >=! v "fmtlen") [ ret (v "outpos") ];
                decl "conv" u8 (Some (idx (v "fmt") (v "i")));
                decl "arg" u32 (Some (n 0));
                call_void "audit" [ v "conv"; v "argi" ];
                when_ (v "argi" <! n 4)
                  [ set (v "arg") (idx (v "args") (v "argi")); set (v "argi") (v "argi" +! n 1) ];
                if_ (v "conv" ==! chr 'd')
                  [ call_void "emit_num" [ v "arg"; n 10; v "width"; v "zero_pad" ] ]
                  [
                    if_ (v "conv" ==! chr 'u')
                      [ call_void "emit_num" [ v "arg"; n 10; v "width"; v "zero_pad" ] ]
                      [
                        if_ (v "conv" ==! chr 'x')
                          [ call_void "emit_num" [ v "arg"; n 16; v "width"; v "zero_pad" ] ]
                          [
                            if_ (v "conv" ==! chr 'c')
                              [ call_void "emit" [ cast u8 (v "arg") ] ]
                              [
                                if_ (v "conv" ==! chr 's')
                                  [
                                    call_void "emit" [ chr 's' ];
                                    call_void "emit" [ chr 't' ];
                                    call_void "emit" [ chr 'r' ];
                                  ]
                                  [
                                    if_ (v "conv" ==! chr '%')
                                      [ call_void "emit" [ chr '%' ] ]
                                      [ call_void "emit" [ chr '?' ] ];
                                  ];
                              ];
                          ];
                      ];
                  ];
                incr_ "i";
              ]
              [ call_void "emit" [ v "c" ]; incr_ "i" ];
          ];
        ret (v "outpos");
      ];
  ]

let globals =
  [
    global "outbuf" (Arr (u8, 64));
    global "outpos" u32;
    global "audit0" u32;
    global "audit1" u32;
    global "audit2" u32;
    
  ]

(* A symbolic test: [fmt_len] fully symbolic format bytes. *)
let symbolic_unit ~fmt_len =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "fmt" u8 fmt_len;
            expr (Api.make_symbolic (addr (idx (v "fmt") (n 0))) (n fmt_len) "fmt");
            decl "emitted" u32 (Some (call "mini_printf" [ addr (idx (v "fmt") (n 0)); n fmt_len ]));
            halt (v "emitted");
          ];
      ])

let program ~fmt_len = compile (symbolic_unit ~fmt_len)

(* A concrete smoke-test harness used by unit tests: formats a fixed
   string and returns the number of emitted bytes. *)
let concrete_unit ~fmt =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            decl "f" (Ptr u8) (Some (str fmt));
            halt (call "mini_printf" [ v "f"; n (String.length fmt) ]);
          ];
      ])

let concrete_program ~fmt = compile (concrete_unit ~fmt)
