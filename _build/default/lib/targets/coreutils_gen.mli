(** A generated suite of 96 small command-line utilities standing in for
    Coreutils (paper section 7.3.1, Fig. 11).  Each utility is assembled
    from a seed-selected subset of feature blocks (option parsing, numeric
    parsing, case transforms, field splitting, bracket matching,
    checksums, range validation, run-length detection) under one of
    several control skeletons, over a seed-sized symbolic input. *)

val count : int

val unit_for : int -> Lang.Ast.comp_unit

(** @raise Invalid_argument when the seed is outside [0, count). *)
val program : int -> Cvm.Program.t

(** "cu00" .. "cu95". *)
val name : int -> string
