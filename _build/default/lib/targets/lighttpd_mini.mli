(** A miniature of lighttpd's request parsing across fragmented reads
    (paper section 7.3.4, Table 6).

    [V12] misses header terminators split across read boundaries (its
    re-scan corrupts the match state) and then crashes on the EOF error
    path; [V13] fixes that but its single-byte-read slow path overflows a
    4-byte window — the incomplete fix the symbolic fragmentation test
    exposes.  The three patterns below reproduce Table 6 exactly. *)

type version = V12 | V13

val request : string
val request_len : int

(** 1 x 28: OK on both versions. *)
val pattern_whole : int list

(** 26 + 2: crashes V12, OK on V13. *)
val pattern_split : int list

(** 2+5+1+5+2x1+3x2+5+2x1: crashes both versions. *)
val pattern_complex : int list

(** Server thread + client sending the request fragmented per the pattern
    (one preemption between chunks), then closing. *)
val harness_unit : version -> int list -> Lang.Ast.comp_unit

val program : version -> int list -> Cvm.Program.t

(** Symbolic fragmentation: SIO_PKT_FRAGMENT on the server socket makes
    the engine explore every read-size pattern — the regression test that
    proves the 1.4.13 fix incomplete. *)
val symbolic_fragmentation_unit : version -> Lang.Ast.comp_unit

val symbolic_program : version -> Cvm.Program.t
