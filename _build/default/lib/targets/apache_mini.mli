(** A miniature of Apache httpd (paper Table 4's largest web server):
    request-line parsing with query-string split, a header loop (Host,
    Content-Length, Connection), Content-Length body handling, prefix
    routing (static, /cgi/, directory redirect), and keep-alive rules.
    The concrete harness exits with [status*10 + keep_alive]. *)

val funcs : Lang.Ast.func list
val globals : Lang.Ast.global list
val symbolic_unit : req_len:int -> Lang.Ast.comp_unit
val program : req_len:int -> Cvm.Program.t
val concrete_unit : req:string -> Lang.Ast.comp_unit
val concrete_program : req:string -> Cvm.Program.t
