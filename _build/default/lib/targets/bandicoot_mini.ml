(* A miniature of the Bandicoot DBMS's HTTP GET handler (paper section
   7.3.5).  Bandicoot exposes relations over an HTTP interface; Cloud9's
   exhaustive exploration of the GET paths found a read from outside the
   allocated memory — one that "fortuitously did not crash" in the real
   system because the out-of-bounds read landed in allocator metadata.

   The defect reproduced here is the same class: the handler extracts the
   relation name between '/' and the following space, computing its length
   as [space_pos - slash_pos - 1] in unsigned arithmetic.  When the space
   is missing (or precedes the slash, underflowing the length), the code
   "truncates" the name to 8 bytes but still copies from [slash + 1 + i] —
   reading past the end of the request buffer whenever the slash sits near
   the end.  Our engine's memory checker reports the out-of-bounds read
   that the real allocator's metadata masked. *)

open Lang.Builder
module Api = Posix.Api

let nrelations = 4

let funcs =
  [
    (* find the first occurrence of [c] from [from]; returns len when absent *)
    fn "find_char" [ ("s", Ptr u8); ("len", u32); ("from", u32); ("c", u8) ] (Some u32)
      [
        decl "i" u32 (Some (v "from"));
        while_ (v "i" <! v "len")
          [ when_ (idx (v "s") (v "i") ==! v "c") [ ret (v "i") ]; incr_ "i" ];
        ret (v "len");
      ];
    (* look up a relation by name; returns its index or nrelations *)
    fn "lookup_relation" [ ("name", Ptr u8); ("namelen", u32) ] (Some u32)
      [
        for_range "r" ~from:(n 0) ~below:(n nrelations)
          [
            decl "off" u32 (Some (v "r" *! n 8));
            decl "m" u32 (Some (n 1));
            for_range "i" ~from:(n 0) ~below:(n 8)
              [
                decl "expect" u8 (Some (idx (v "relnames") (v "off" +! v "i")));
                if_ (v "i" <! v "namelen")
                  [ when_ (idx (v "name") (v "i") <>! v "expect") [ set (v "m") (n 0) ] ]
                  [ when_ (v "expect" <>! n 0) [ set (v "m") (n 0) ] ];
              ];
            when_ (v "m" ==! n 1) [ ret (v "r") ];
          ];
        ret (n nrelations);
      ];
    (* handle_get(req, len) -> status code *)
    fn "handle_get" [ ("req", Ptr u8); ("len", u32) ] (Some u32)
      [
        (* expect "GET /<name> ..." *)
        when_ (v "len" <! n 6) [ ret (n 400) ];
        when_
          (idx (v "req") (n 0) <>! chr 'G' ||! (idx (v "req") (n 1) <>! chr 'E')
          ||! (idx (v "req") (n 2) <>! chr 'T') ||! (idx (v "req") (n 3) <>! chr ' '))
          [ ret (n 400) ];
        decl "slash" u32 (Some (call "find_char" [ v "req"; v "len"; n 4; chr '/' ]));
        when_ (v "slash" >=! v "len") [ ret (n 400) ];
        decl "space" u32 (Some (call "find_char" [ v "req"; v "len"; n 4; chr ' ' ]));
        (* BUG: when the space at position 4 precedes the slash, this
           unsigned subtraction underflows to a huge length *)
        decl "namelen" u32 (Some (v "space" -! v "slash" -! n 1));
        decl_arr "name" u8 16;
        (* defensive-looking but insufficient cap, as in the original *)
        when_ (v "namelen" >! n 8)
          [
            (* copy the first 8 bytes anyway to "truncate" the name:
               with an underflowed namelen the source index is bogus *)
            set (v "namelen") (n 8);
          ];
        for_range "i" ~from:(n 0) ~below:(v "namelen")
          [ set (idx (v "name") (v "i")) (idx (v "req") (v "slash" +! n 1 +! v "i")) ];
        decl "rel" u32 (Some (call "lookup_relation" [ addr (idx (v "name") (n 0)); v "namelen" ]));
        when_ (v "rel" >=! n nrelations) [ ret (n 404) ];
        ret (n 200);
      ];
  ]

let globals =
  [
    { Lang.Ast.gname = "relnames";
      gty = Arr (u8, nrelations * 8);
      ginit = Some "users\000\000\000items\000\000\000logs\000\000\000\000cfg\000\000\000\000\000";
    };
  ]

let symbolic_unit ~req_len =
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "req" u8 req_len;
            expr (Api.make_symbolic (addr (idx (v "req") (n 0))) (n req_len) "req");
            halt (call "handle_get" [ addr (idx (v "req") (n 0)); n req_len ]);
          ];
      ])

let program ~req_len = compile (symbolic_unit ~req_len)

let concrete_unit ~req =
  let len = String.length req in
  cunit ~entry:"main" ~globals
    (funcs
    @ [
        fn "main" [] (Some u32)
          (List.concat
             [
               [ decl_arr "req" u8 len ];
               List.init len (fun i -> set (idx (v "req") (n i)) (chr req.[i]));
               [ halt (call "handle_get" [ addr (idx (v "req") (n 0)); n len ]) ];
             ]);
      ])

let concrete_program ~req = compile (concrete_unit ~req)
