(** A miniature language interpreter (paper Table 4's "Language
    interpreter"): tokenizer, shunting-yard translation, and stack-machine
    evaluation of integer expressions over single-letter variables.
    Interpretation returns [1000 + value]; lex errors return 1, syntax
    errors 2, division by zero [1000 + 0xDEAD] — never a crash, which the
    symbolic harness proves for all inputs of the given length. *)

val funcs : Lang.Ast.func list
val globals : Lang.Ast.global list
val symbolic_unit : src_len:int -> Lang.Ast.comp_unit
val program : src_len:int -> Cvm.Program.t
val concrete_unit : src:string -> Lang.Ast.comp_unit
val concrete_program : src:string -> Cvm.Program.t
