(* A miniature of curl's URL globbing (paper section 7.3.2).

   Curl expands URL patterns like "http://site.{one,two,three}.com" and
   numeric ranges "[1-3]".  Cloud9 found that an input with an unmatched
   opening brace — e.g. "http://site.{one,two,three}.com{" — crashes curl:
   the alternative scanner runs past the end of the buffer looking for the
   closing brace.  The developers confirmed and fixed it within a day.

   [buggy_funcs] reproduces that defect (the scan loop trusts that '}'
   exists); [fixed_funcs] carries the bounds check the fix added.  The
   input URL buffer is allocated at exactly its length, so the engine's
   memory checker catches the overrun precisely. *)

open Lang.Builder
module Api = Posix.Api

(* glob_count(url, len) -> number of URLs the pattern expands to *)
let glob_funcs ~buggy =
  let scan_guard =
    (* the fix: stop scanning at the end of the buffer *)
    if buggy then v "j" <! n 4096 (* effectively unbounded: runs off the buffer *)
    else v "j" <! v "len"
  in
  [
    fn "glob_count" [ ("url", Ptr u8); ("len", u32) ] (Some u32)
      [
        decl "i" u32 (Some (n 0));
        decl "combos" u32 (Some (n 1));
        while_ (v "i" <! v "len" &&! (idx (v "url") (v "i") <>! n 0))
          [
            decl "c" u8 (Some (idx (v "url") (v "i")));
            if_
              (v "c" ==! chr '{')
              [
                (* count alternatives up to the matching '}' *)
                decl "alts" u32 (Some (n 1));
                decl "j" u32 (Some (v "i" +! n 1));
                while_ (scan_guard &&! (idx (v "url") (v "j") <>! chr '}'))
                  [
                    when_ (idx (v "url") (v "j") ==! chr ',') [ set (v "alts") (v "alts" +! n 1) ];
                    incr_ "j";
                  ];
                (if buggy then
                   (* pre-fix: assume the '}' was found *)
                   set (v "i") (v "j" +! n 1)
                 else
                   if_ (v "j" >=! v "len")
                     [ ret (n 0) (* unmatched brace: expansion error *) ]
                     [ set (v "i") (v "j" +! n 1) ]);
                set (v "combos") (v "combos" *! v "alts");
              ]
              [
                if_
                  (v "c" ==! chr '[')
                  [
                    (* numeric range [a-b] *)
                    if_
                      (v "i" +! n 4 <! v "len"
                      &&! (idx (v "url") (v "i" +! n 2) ==! chr '-')
                      &&! (idx (v "url") (v "i" +! n 4) ==! chr ']')
                      &&! (idx (v "url") (v "i" +! n 1) >=! chr '0')
                      &&! (idx (v "url") (v "i" +! n 1) <=! chr '9')
                      &&! (idx (v "url") (v "i" +! n 3) >=! chr '0')
                      &&! (idx (v "url") (v "i" +! n 3) <=! chr '9'))
                      [
                        decl "lo" u8 (Some (idx (v "url") (v "i" +! n 1) -! chr '0'));
                        decl "hi" u8 (Some (idx (v "url") (v "i" +! n 3) -! chr '0'));
                        when_ (v "hi" >=! v "lo")
                          [ set (v "combos") (v "combos" *! cast u32 (v "hi" -! v "lo" +! n 1)) ];
                        set (v "i") (v "i" +! n 5);
                      ]
                      [ incr_ "i" ];
                  ]
                  [ incr_ "i" ];
              ];
          ];
        ret (v "combos");
      ];
  ]

(* Symbolic harness: a fully symbolic URL of [url_len] bytes.  The buffer
   sits in the frame at exactly [url_len] bytes, so the buggy scanner's
   overrun faults precisely. *)
let symbolic_unit ~buggy ~url_len =
  cunit ~entry:"main"
    (glob_funcs ~buggy
    @ [
        fn "main" [] (Some u32)
          [
            decl_arr "url" u8 url_len;
            expr (Api.make_symbolic (addr (idx (v "url") (n 0))) (n url_len) "url");
            halt (call "glob_count" [ addr (idx (v "url") (n 0)); n url_len ]);
          ];
      ])

let program ~buggy ~url_len = compile (symbolic_unit ~buggy ~url_len)

(* Concrete harness for a given URL string. *)
let concrete_unit ~buggy ~url =
  let len = String.length url in
  cunit ~entry:"main"
    (glob_funcs ~buggy
    @ [
        fn "main" [] (Some u32)
          (List.concat
             [
               [ decl_arr "buf" u8 len ];
               List.init len (fun i -> set (idx (v "buf") (n i)) (chr url.[i]));
               [ halt (call "glob_count" [ addr (idx (v "buf") (n 0)); n len ]) ];
             ]);
      ])

let concrete_program ~buggy ~url = compile (concrete_unit ~buggy ~url)
