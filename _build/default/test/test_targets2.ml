(* Tests for the second wave of Table 4 targets: the Python-like
   interpreter, Apache and Ghttpd miniatures, the rsync delta algorithm,
   the pbzip parallel compressor, and the libevent event loop. *)

module Errors = Engine.Errors

let run ?(max_steps = 300_000) program =
  let rng = Random.State.make [| 5 |] in
  let searcher = Engine.Searcher.of_name ~rng "dfs" in
  let solver = Smt.Solver.create () in
  let cfg = Posix.Api.make_config ~solver ~max_steps ~nlines:program.Cvm.Program.nlines () in
  let st0 = Posix.Api.initial_state program ~args:[] in
  Engine.Driver.run cfg searcher st0 ~collect_tests:1000

let single_exit program =
  let r = run program in
  match r.Engine.Driver.tests with
  | [ { Engine.Testcase.termination = Errors.Exit c; _ } ] -> c
  | [ { Engine.Testcase.termination = t; _ } ] ->
    Alcotest.failf "expected exit, got %s" (Errors.termination_to_string t)
  | l -> Alcotest.failf "expected one path, got %d" (List.length l)

let has_memory_fault r =
  List.exists
    (fun tc ->
      match tc.Engine.Testcase.termination with
      | Errors.Error (Errors.Memory_fault _) -> true
      | _ -> false)
    r.Engine.Driver.tests

(* --- python ------------------------------------------------------------------- *)

let test_python_evaluation () =
  (* var env: letter k has value (k*7 mod 23) + 1, so a=1, b=8, c=15 *)
  List.iter
    (fun (src, expect) ->
      Alcotest.(check int64) src expect (single_exit (Targets.Python_mini.concrete_program ~src)))
    [
      ("1+2*3", 1007L);
      ("(1+2)*3", 1009L);
      ("2*(3+4)", 1014L);
      ("a+b", 1009L);
      ("10%4", 1002L);
      ("7-2-1", 1004L);      (* left association *)
      ("-4+6", 1002L);       (* unary minus *)
      ("3<5", 1001L);
      ("5<3", 1000L);
      ("7=7", 1001L);
      ("10/0", Int64.of_int (1000 + 0xDEAD));
      ("1++2", 2L);          (* syntax error *)
      ("(2", 2L);            (* unmatched paren *)
      (")2(", 2L);
      ("1 2", 2L);           (* two operands *)
      ("$", 1L);             (* lex error *)
      ("", 2L);              (* empty *)
    ]

let test_python_symbolic_robustness () =
  let r = run (Targets.Python_mini.program ~src_len:3) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check bool) "interpreter-scale path count" true (r.Engine.Driver.paths_explored > 1000);
  Alcotest.(check int) "no crashes on any 3-byte program" 0 r.Engine.Driver.errors

(* --- apache --------------------------------------------------------------------- *)

let test_apache_conformance () =
  (* exit code = status*10 + keep_alive *)
  List.iter
    (fun (req, expect) ->
      Alcotest.(check int64) (String.escaped req) expect
        (single_exit (Targets.Apache_mini.concrete_program ~req)))
    [
      ("GET / HTTP/1.0\r\n\r\n", 2000L);
      ("GET / HTTP/1.1\r\nHost: x\r\n\r\n", 2001L);               (* 1.1 keep-alive default *)
      ("GET / HTTP/1.1\r\n\r\n", 4001L);                          (* 1.1 requires Host *)
      ("GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", 2000L);
      ("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 2001L);
      ("GET /nope HTTP/1.0\r\n\r\n", 4040L);
      ("GET /docs HTTP/1.0\r\n\r\n", 3010L);                      (* redirect *)
      ("GET /cgi/x HTTP/1.0\r\n\r\n", 4050L);                     (* GET on CGI *)
      ("POST /cgi/x HTTP/1.0\r\nContent-Length: 2\r\n\r\nhi", 2000L);
      ("POST /cgi/x HTTP/1.0\r\nContent-Length: 9\r\n\r\nhi", 4000L); (* short body *)
      ("PUT / HTTP/1.0\r\n\r\n", 5010L);                          (* unknown method *)
      ("GET / HTTP/2.0\r\n\r\n", 5050L);                          (* bad version *)
      ("GET /?q=1 HTTP/1.0\r\n\r\n", 2000L);                      (* query split *)
    ]

let test_apache_symbolic_robustness () =
  let r = run (Targets.Apache_mini.program ~req_len:6) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check int) "no crashes" 0 r.Engine.Driver.errors

(* --- ghttpd ----------------------------------------------------------------------- *)

let test_ghttpd_overflow () =
  let buggy = run (Targets.Ghttpd_mini.program ~buggy:true ~req_len:22) in
  Alcotest.(check bool) "symbolic run finds the log overflow" true (has_memory_fault buggy);
  let fixed = run (Targets.Ghttpd_mini.program ~buggy:false ~req_len:22) in
  Alcotest.(check int) "fix removes all crashes" 0 fixed.Engine.Driver.errors

let test_ghttpd_routing () =
  List.iter
    (fun (req, expect) ->
      Alcotest.(check int64) req expect
        (single_exit (Targets.Ghttpd_mini.concrete_program ~buggy:false ~req)))
    [
      ("GET / HTTP/1.0", 200L);
      ("GET /index.html x", 200L);
      ("GET /nope HTTP", 404L);
      ("POST / HTTP/1.0", 501L);
    ]

(* --- rsync -------------------------------------------------------------------------- *)

let test_rsync_delta_ops () =
  (* identical data: all blocks match -> nblocks COPY ops *)
  Alcotest.(check int64) "identical file is all copies" 5L
    (single_exit (Targets.Rsync_mini.concrete_program ~data:"the quick brown fox!"));
  (* one block modified: literals appear *)
  Alcotest.(check bool) "modified file needs more ops" true
    (single_exit (Targets.Rsync_mini.concrete_program ~data:"the quirk brown fox!") > 5L)

let test_rsync_roundtrip_proof () =
  (* exhaustive: delta+patch reconstructs EVERY 5-byte input *)
  let r = run (Targets.Rsync_mini.program ~new_len:5) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check int) "reconstruction assertions never fail" 0 r.Engine.Driver.errors

(* --- pbzip ---------------------------------------------------------------------------- *)

let test_pbzip_concrete () =
  let r = run (Targets.Pbzip_mini.program ~nblocks:3 ~nworkers:2 ~symbolic:false) in
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors;
  Alcotest.(check int) "deterministic single path" 1 r.Engine.Driver.paths_explored

let test_pbzip_symbolic_roundtrip () =
  let r = run (Targets.Pbzip_mini.program ~nblocks:1 ~nworkers:2 ~symbolic:true) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check bool) "explores run-length structures" true (r.Engine.Driver.paths_explored >= 8);
  Alcotest.(check int) "compress/decompress identity holds" 0 r.Engine.Driver.errors

(* --- libevent ------------------------------------------------------------------------- *)

let test_libevent_concrete () =
  let r = run (Targets.Libevent_mini.program ~payload:"hello!" ~symbolic:false) in
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors;
  Alcotest.(check int) "deterministic single path" 1 r.Engine.Driver.paths_explored

let test_libevent_symbolic () =
  let r = run (Targets.Libevent_mini.program ~payload:"xxxx" ~symbolic:true) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check bool) "handler branches explored" true (r.Engine.Driver.paths_explored > 1);
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors

let () =
  Alcotest.run "targets2"
    [
      ( "python",
        [
          Alcotest.test_case "evaluation" `Quick test_python_evaluation;
          Alcotest.test_case "symbolic robustness" `Quick test_python_symbolic_robustness;
        ] );
      ( "apache",
        [
          Alcotest.test_case "protocol conformance" `Quick test_apache_conformance;
          Alcotest.test_case "symbolic robustness" `Quick test_apache_symbolic_robustness;
        ] );
      ( "ghttpd",
        [
          Alcotest.test_case "log overflow" `Quick test_ghttpd_overflow;
          Alcotest.test_case "routing" `Quick test_ghttpd_routing;
        ] );
      ( "rsync",
        [
          Alcotest.test_case "delta ops" `Quick test_rsync_delta_ops;
          Alcotest.test_case "roundtrip proof" `Quick test_rsync_roundtrip_proof;
        ] );
      ( "pbzip",
        [
          Alcotest.test_case "concrete" `Quick test_pbzip_concrete;
          Alcotest.test_case "symbolic roundtrip" `Quick test_pbzip_symbolic_roundtrip;
        ] );
      ( "libevent",
        [
          Alcotest.test_case "concrete" `Quick test_libevent_concrete;
          Alcotest.test_case "symbolic" `Quick test_libevent_symbolic;
        ] );
    ]
