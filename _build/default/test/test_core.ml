(* Tests for the Cloud9 facade: local runs, cluster runs, the registry,
   and the cross-check that a cluster run explores exactly the same number
   of paths as a local run of the same target. *)

module C = Core.Cloud9

let small_target () =
  match Core.Registry.resolve ~name:"printf" ~variant:(Some "sym-4") with
  | Some t -> t
  | None -> Alcotest.fail "printf target missing from registry"

let test_run_local () =
  let r = C.run_local (small_target ()) in
  Alcotest.(check bool) "exhausted" true r.C.exhausted;
  Alcotest.(check bool) "paths found" true (r.C.paths > 100);
  Alcotest.(check int) "no errors in printf" 0 r.C.errors;
  Alcotest.(check bool) "coverage high" true (r.C.coverage > 0.75);
  Alcotest.(check bool) "solver was used" true (r.C.solver_stats.Smt.Solver.queries > 0)

let test_cluster_matches_local () =
  let t = small_target () in
  let local = C.run_local t in
  let cluster =
    C.run_cluster
      ~options:{ C.default_cluster_options with C.nworkers = 4; speed = 1000; status_interval = 5 }
      t
  in
  Alcotest.(check bool) "cluster reached goal" true cluster.Cluster.Driver.reached_goal;
  Alcotest.(check int) "cluster explores exactly the local path count" local.C.paths
    cluster.Cluster.Driver.total_paths;
  Alcotest.(check int) "no broken replays" 0 cluster.Cluster.Driver.broken_replays

let test_registry_complete () =
  (* every Table 4 system is present with a default variant *)
  List.iter
    (fun name ->
      match Core.Registry.resolve ~name ~variant:None with
      | Some t -> Alcotest.(check bool) (name ^ " program nonempty") true
                    (Cvm.Program.instruction_count t.C.program > 0)
      | None -> Alcotest.failf "registry missing %s" name)
    [
      "memcached"; "lighttpd"; "curl"; "bandicoot"; "apache"; "ghttpd"; "python"; "rsync";
      "pbzip"; "libevent"; "printf"; "test"; "prodcons"; "coreutils";
    ]

let test_registry_unknown () =
  Alcotest.(check bool) "unknown name" true (Core.Registry.resolve ~name:"nope" ~variant:None = None);
  Alcotest.(check bool) "unknown variant" true
    (Core.Registry.resolve ~name:"curl" ~variant:(Some "nope") = None)

let test_table4_rows () =
  let rows = Core.Registry.table4 () in
  Alcotest.(check int) "fourteen systems" 14 (List.length rows);
  List.iter
    (fun (name, kind, instrs, lines) ->
      Alcotest.(check bool) (name ^ " sized") true (instrs > 0 && lines > 0);
      Alcotest.(check bool) (name ^ " typed") true (String.length kind > 0))
    rows

let test_error_tests_extraction () =
  match Core.Registry.resolve ~name:"curl" ~variant:(Some "symbolic") with
  | None -> Alcotest.fail "curl target missing"
  | Some t ->
    let r = C.run_local ~options:{ C.default_options with C.collect_tests = 1000 } t in
    let bugs = C.error_tests r in
    Alcotest.(check bool) "bug test cases extracted" true (List.length bugs > 0);
    (* each bug test carries a concrete input that triggers it *)
    List.iter
      (fun tc ->
        Alcotest.(check bool) "bug input materialized" true
          (List.mem_assoc "url" tc.Engine.Testcase.inputs))
      bugs

let test_replay_reproduces_bugs () =
  (* every generated bug test, re-run concretely, must hit the same bug *)
  match Core.Registry.resolve ~name:"curl" ~variant:(Some "symbolic") with
  | None -> Alcotest.fail "curl target missing"
  | Some t ->
    let r = C.run_local ~options:{ C.default_options with C.collect_tests = 2000 } t in
    let bugs = C.error_tests r in
    Alcotest.(check bool) "bugs to replay" true (List.length bugs > 10);
    List.iteri
      (fun i tc ->
        if i < 25 then
          match C.replay_test t tc with
          | Some (Engine.Errors.Error (Engine.Errors.Memory_fault _)) -> ()
          | Some other ->
            Alcotest.failf "bug %d replayed to %s" i (Engine.Errors.termination_to_string other)
          | None -> Alcotest.failf "bug %d replay was not deterministic" i)
      bugs

let test_replay_reproduces_exits () =
  (* non-bug tests replay to the same exit code *)
  match Core.Registry.resolve ~name:"python" ~variant:(Some "sym-3") with
  | None -> Alcotest.fail "python target missing"
  | Some t ->
    let r =
      C.run_local
        ~options:{ C.default_options with C.collect_tests = 40; goal = Engine.Driver.Paths 40 }
        t
    in
    Alcotest.(check bool) "tests collected" true (List.length r.C.tests > 10);
    List.iteri
      (fun i tc ->
        match C.replay_test t tc with
        | Some term ->
          Alcotest.(check string)
            (Printf.sprintf "test %d termination" i)
            (Engine.Errors.termination_to_string tc.Engine.Testcase.termination)
            (Engine.Errors.termination_to_string term)
        | None -> Alcotest.failf "test %d replay was not deterministic" i)
      r.C.tests

let test_hang_detection_option () =
  match Core.Registry.resolve ~name:"memcached" ~variant:(Some "udp-hang") with
  | None -> Alcotest.fail "udp target missing"
  | Some t ->
    let r =
      C.run_local
        ~options:{ C.default_options with C.max_steps = Some 20000; collect_tests = 1000 }
        t
    in
    let hangs =
      List.filter
        (fun tc -> tc.Engine.Testcase.termination = Engine.Errors.Error Engine.Errors.Instruction_limit)
        r.C.tests
    in
    Alcotest.(check bool) "hang reported" true (List.length hangs > 0)

let () =
  Alcotest.run "core"
    [
      ( "cloud9",
        [
          Alcotest.test_case "run_local" `Quick test_run_local;
          Alcotest.test_case "cluster matches local" `Quick test_cluster_matches_local;
          Alcotest.test_case "error test extraction" `Quick test_error_tests_extraction;
          Alcotest.test_case "replay reproduces bugs" `Quick test_replay_reproduces_bugs;
          Alcotest.test_case "replay reproduces exits" `Quick test_replay_reproduces_exits;
          Alcotest.test_case "hang detection" `Quick test_hang_detection_option;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all systems present" `Quick test_registry_complete;
          Alcotest.test_case "unknown lookups" `Quick test_registry_unknown;
          Alcotest.test_case "Table 4 rows" `Quick test_table4_rows;
        ] );
    ]
