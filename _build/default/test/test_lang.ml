(* Tests for the mini-C front end: type checking, compilation to CVM, and
   concrete execution through the engine (single path, no symbolic data). *)

open Lang.Builder

let compile_and_run ?(args = []) cu =
  let program = compile cu in
  let rng = Random.State.make [| 42 |] in
  let searcher = Engine.Searcher.dfs () in
  ignore rng;
  let _cfg, result = Engine.Driver.run_pure ~searcher program ~args in
  result

let exit_code_of result =
  match result.Engine.Driver.tests with
  | [ tc ] -> (
    match tc.Engine.Testcase.termination with
    | Engine.Errors.Exit code -> code
    | other -> Alcotest.failf "expected exit, got %s" (Engine.Errors.termination_to_string other))
  | l -> Alcotest.failf "expected exactly one path, got %d" (List.length l)

let run_expect ?(args = []) cu expected name =
  let result = compile_and_run ~args cu in
  Alcotest.(check int64) name expected (exit_code_of result)

(* --- arithmetic and control flow -------------------------------------------- *)

let test_arith_loop () =
  (* sum of 1..10 = 55 *)
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl "sum" u32 (Some (n 0));
            for_range "i" ~from:(n 1) ~below:(n 11) [ set (v "sum") (v "sum" +! v "i") ];
            halt (v "sum");
          ];
      ]
  in
  run_expect cu 55L "sum 1..10"

let test_functions () =
  let cu =
    cunit ~entry:"main"
      [
        fn "add3" [ ("a", u32); ("b", u32); ("c", u32) ] (Some u32)
          [ ret (v "a" +! v "b" +! v "c") ];
        fn "main" [] (Some u32) [ halt (call "add3" [ n 7; n 11; n 13 ]) ];
      ]
  in
  run_expect cu 31L "three-arg call"

let test_recursion () =
  let cu =
    cunit ~entry:"main"
      [
        fn "fib" [ ("n", u32) ] (Some u32)
          [
            if_ (v "n" <! n 2) [ ret (v "n") ] [];
            ret (call "fib" [ v "n" -! n 1 ] +! call "fib" [ v "n" -! n 2 ]);
          ];
        fn "main" [] (Some u32) [ halt (call "fib" [ n 10 ]) ];
      ]
  in
  run_expect cu 55L "fib 10"

let test_arrays_and_pointers () =
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl_arr "buf" u8 8;
            for_range "i" ~from:(n 0) ~below:(n 8)
              [ set (idx (v "buf") (v "i")) (cast u8 (v "i" *! v "i")) ];
            decl "p" (Ptr u8) (Some (addr (idx (v "buf") (n 3))));
            halt (deref (v "p"));
          ];
      ]
  in
  run_expect cu 9L "pointer into array"

let test_strings_and_globals () =
  let cu =
    cunit ~entry:"main"
      ~globals:[ global "counter" u32 ]
      [
        fn "bump" [] None [ set (v "counter") (v "counter" +! n 1) ];
        fn "main" [] (Some u32)
          [
            decl "s" (Ptr u8) (Some (str "hi"));
            call_void "bump" [];
            call_void "bump" [];
            halt (v "counter" +! cast u32 (idx (v "s") (n 0)));
          ];
      ]
  in
  (* 2 + 'h' = 2 + 104 = 106 *)
  run_expect cu 106L "globals and string literals"

let test_short_circuit () =
  (* the right operand of && must not execute when the left is false:
     here it would divide by zero *)
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl "zero" u32 (Some (n 0));
            if_
              (v "zero" <>! n 0 &&! (n 10 /! v "zero" >! n 1))
              [ halt (n 1) ]
              [ halt (n 2) ];
          ];
      ]
  in
  run_expect cu 2L "short-circuit &&"

let test_signed_arith () =
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl "x" i32 (Some (n 0 -! n 7));
            decl "y" i32 (Some (v "x" /! n 2));
            (* -7 / 2 = -3 (truncating); -3 + 10 = 7 *)
            halt (cast u32 (v "y" +! n 10));
          ];
      ]
  in
  run_expect cu 7L "signed division truncates"

let test_while_break_continue () =
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl "i" u32 (Some (n 0));
            decl "sum" u32 (Some (n 0));
            while_ (n 1)
              [
                incr_ "i";
                when_ (v "i" >! n 10) [ break_ ];
                when_ (v "i" %! n 2 ==! n 0) [ continue_ ];
                set (v "sum") (v "sum" +! v "i");
              ];
            (* 1+3+5+7+9 = 25 *)
            halt (v "sum");
          ];
      ]
  in
  run_expect cu 25L "break/continue"

let test_struct_like_memory () =
  (* manual struct: { u32 a; u32 b; } via byte offsets *)
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl "p" (Ptr u32) (Some (cast (Ptr u32) (syscall 0 []))); (* placeholder below *)
            halt (n 0);
          ];
      ]
  in
  ignore cu;
  (* use Alloc through a helper program instead *)
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl_arr "obj" u32 2;
            set (idx (v "obj") (n 0)) (n 17);
            set (idx (v "obj") (n 1)) (n 25);
            halt (idx (v "obj") (n 0) +! idx (v "obj") (n 1));
          ];
      ]
  in
  run_expect cu 42L "two-field struct emulation"

(* --- error detection ---------------------------------------------------------- *)

let run_single cu =
  let result = compile_and_run cu in
  match result.Engine.Driver.tests with
  | [ tc ] -> tc.Engine.Testcase.termination
  | l -> Alcotest.failf "expected one path, got %d" (List.length l)

let test_out_of_bounds () =
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [
            decl_arr "buf" u8 4;
            set (idx (v "buf") (n 6)) (chr 'x');
            halt (n 0);
          ];
      ]
  in
  match run_single cu with
  | Engine.Errors.Error (Engine.Errors.Memory_fault _) -> ()
  | other -> Alcotest.failf "expected memory fault, got %s" (Engine.Errors.termination_to_string other)

let test_division_by_zero_concrete () =
  let cu =
    cunit ~entry:"main"
      [
        fn "main" [] (Some u32)
          [ decl "z" u32 (Some (n 0)); halt (n 4 /! v "z") ];
      ]
  in
  match run_single cu with
  | Engine.Errors.Error Engine.Errors.Division_by_zero -> ()
  | other -> Alcotest.failf "expected division by zero, got %s" (Engine.Errors.termination_to_string other)

let test_assert_failure () =
  let cu =
    cunit ~entry:"main"
      [ fn "main" [] (Some u32) [ assert_ (n 1 ==! n 2) "math is broken"; halt (n 0) ] ]
  in
  match run_single cu with
  | Engine.Errors.Error (Engine.Errors.Assert_failed "math is broken") -> ()
  | other -> Alcotest.failf "expected assert failure, got %s" (Engine.Errors.termination_to_string other)

(* --- type errors ------------------------------------------------------------------ *)

let expect_type_error name cu =
  match compile cu with
  | exception Lang.Ast.Type_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a type error" name

let test_type_errors () =
  expect_type_error "unknown variable"
    (cunit ~entry:"main" [ fn "main" [] (Some u32) [ halt (v "nope") ] ]);
  expect_type_error "unknown function"
    (cunit ~entry:"main" [ fn "main" [] (Some u32) [ halt (call "nope" []) ] ]);
  expect_type_error "arity mismatch"
    (cunit ~entry:"main"
       [
         fn "f" [ ("x", u32) ] (Some u32) [ ret (v "x") ];
         fn "main" [] (Some u32) [ halt (call "f" [ n 1; n 2 ]) ];
       ]);
  expect_type_error "assign to array"
    (cunit ~entry:"main"
       [ fn "main" [] (Some u32) [ decl_arr "a" u8 4; set (v "a") (n 0); halt (n 0) ] ]);
  expect_type_error "deref of integer"
    (cunit ~entry:"main" [ fn "main" [] (Some u32) [ halt (deref (n 5)) ] ]);
  expect_type_error "break outside loop"
    (cunit ~entry:"main" [ fn "main" [] (Some u32) [ break_; halt (n 0) ] ]);
  expect_type_error "redeclaration"
    (cunit ~entry:"main"
       [ fn "main" [] (Some u32) [ decl "x" u32 None; decl "x" u32 None; halt (n 0) ] ])

(* --- program structure ---------------------------------------------------------------- *)

let test_instruction_count () =
  let cu =
    cunit ~entry:"main"
      [ fn "main" [] (Some u32) [ decl "x" u32 (Some (n 1)); halt (v "x") ] ]
  in
  let program = compile cu in
  Alcotest.(check bool) "has instructions" true (Cvm.Program.instruction_count program > 0);
  Alcotest.(check bool) "has coverable lines" true (List.length (Cvm.Program.covered_lines program) > 0)

let test_validation_rejects_bad_programs () =
  let bad =
    {
      Cvm.Program.name = "f";
      nparams = 0;
      nregs = 1;
      frame_size = 0;
      blocks = [| [| Cvm.Instr.make ~line:1 (Cvm.Instr.Mov { dst = 0; a = Cvm.Instr.Imm { width = 32; value = 1L } }) |] |];
    }
  in
  match Cvm.Program.create ~entry:"f" ~funcs:[ ("f", bad) ] ~globals:[] ~nlines:1 with
  | exception Cvm.Program.Invalid _ -> ()
  | _ -> Alcotest.fail "unterminated block must be rejected"

let () =
  Alcotest.run "lang"
    [
      ( "execution",
        [
          Alcotest.test_case "arith loop" `Quick test_arith_loop;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
          Alcotest.test_case "strings and globals" `Quick test_strings_and_globals;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "signed arithmetic" `Quick test_signed_arith;
          Alcotest.test_case "break/continue" `Quick test_while_break_continue;
          Alcotest.test_case "struct-like memory" `Quick test_struct_like_memory;
        ] );
      ( "errors",
        [
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "concrete div by zero" `Quick test_division_by_zero_concrete;
          Alcotest.test_case "assert failure" `Quick test_assert_failure;
        ] );
      ("typecheck", [ Alcotest.test_case "type errors" `Quick test_type_errors ]);
      ( "structure",
        [
          Alcotest.test_case "instruction count" `Quick test_instruction_count;
          Alcotest.test_case "validation" `Quick test_validation_rejects_bad_programs;
        ] );
    ]
