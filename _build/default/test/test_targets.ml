(* Tests for the target programs: each paper case study must reproduce —
   the curl unmatched-brace crash, the Bandicoot out-of-bounds read, the
   lighttpd fragmentation matrix (Table 6), the memcached UDP hang and
   test suite, plus the printf/test utilities and the producer-consumer
   POSIX exerciser. *)

module Errors = Engine.Errors

let run ?max_steps ?(strategy = "dfs") ?goal program =
  let rng = Random.State.make [| 5 |] in
  let searcher = Engine.Searcher.of_name ~rng strategy in
  let solver = Smt.Solver.create () in
  let cfg = Posix.Api.make_config ~solver ?max_steps ~nlines:program.Cvm.Program.nlines () in
  let st0 = Posix.Api.initial_state program ~args:[] in
  Engine.Driver.run ?goal cfg searcher st0 ~collect_tests:1000

let terminations r = List.map (fun tc -> tc.Engine.Testcase.termination) r.Engine.Driver.tests

let single_exit r =
  match terminations r with
  | [ Errors.Exit c ] -> c
  | other ->
    Alcotest.failf "expected one exit, got [%s]"
      (String.concat "; " (List.map Errors.termination_to_string other))

let has_memory_fault r =
  List.exists (function Errors.Error (Errors.Memory_fault _) -> true | _ -> false) (terminations r)

(* --- printf ------------------------------------------------------------------ *)

let test_printf_concrete () =
  let cases =
    [
      ("abc", 3L);     (* literals *)
      ("%d", 2L);      (* 42 *)
      ("%05d", 5L);    (* 00042 *)
      ("%x", 2L);      (* 2a *)
      ("%s!", 4L);     (* str! *)
      ("%%", 1L);
      ("%q", 1L);      (* unknown conversion -> '?' *)
      ("a%db", 4L);    (* a42b *)
    ]
  in
  List.iter
    (fun (fmt, expect) ->
      let r = run (Targets.Printf_target.concrete_program ~fmt) in
      Alcotest.(check int64) (Printf.sprintf "printf %S" fmt) expect (single_exit r))
    cases

let test_printf_symbolic_exhausts () =
  let r = run (Targets.Printf_target.program ~fmt_len:3) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check bool) "many paths" true (r.Engine.Driver.paths_explored > 50);
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors

(* --- test utility ----------------------------------------------------------------- *)

let test_test_concrete () =
  let cases =
    [
      ([ "5"; "-lt"; "7" ], 0L);
      ([ "7"; "-lt"; "5" ], 1L);
      ([ "12"; "-eq"; "12" ], 0L);
      ([ "ab"; "="; "ab" ], 0L);
      ([ "ab"; "!="; "ab" ], 1L);
      ([ "!"; "x" ], 1L);
      ([ "x"; "-a"; "y" ], 0L);
      ([ "x"; "-o"; "" ], 0L);
      ([ "-z"; "" ], 0L);
      ([ "-n"; "" ], 1L);
    ]
  in
  List.iter
    (fun (tokens, expect) ->
      let r = run (Targets.Test_target.concrete_program tokens) in
      Alcotest.(check int64) (String.concat " " tokens) expect (single_exit r))
    cases

let test_test_symbolic () =
  let r = run (Targets.Test_target.program ~ntokens:2) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors

(* --- curl ------------------------------------------------------------------------------ *)

let test_curl_crash_input () =
  let r = run (Targets.Curl_glob.concrete_program ~buggy:true ~url:"s.{a,b}.com{") in
  Alcotest.(check bool) "unmatched brace crashes pre-fix curl" true (has_memory_fault r);
  let r = run (Targets.Curl_glob.concrete_program ~buggy:false ~url:"s.{a,b}.com{") in
  Alcotest.(check bool) "fix survives the crash input" false (has_memory_fault r)

let test_curl_expansion_counts () =
  List.iter
    (fun (url, expect) ->
      let r = run (Targets.Curl_glob.concrete_program ~buggy:false ~url) in
      Alcotest.(check int64) url expect (single_exit r))
    [ ("plain.com", 1L); ("{a,b}.com", 2L); ("{a,b,c}x{d,e}", 6L); ("v[2-5].com", 4L) ]

let test_curl_symbolic_finds_bug () =
  let buggy = run (Targets.Curl_glob.program ~buggy:true ~url_len:5) in
  Alcotest.(check bool) "symbolic run finds crashes" true (buggy.Engine.Driver.errors > 0);
  let fixed = run (Targets.Curl_glob.program ~buggy:false ~url_len:5) in
  Alcotest.(check int) "fixed version has no crashes" 0 fixed.Engine.Driver.errors

(* --- bandicoot ---------------------------------------------------------------------------- *)

let test_bandicoot_valid_request () =
  let r = run (Targets.Bandicoot_mini.concrete_program ~req:"GET /users HTTP") in
  Alcotest.(check int64) "valid GET" 200L (single_exit r);
  let r = run (Targets.Bandicoot_mini.concrete_program ~req:"GET /nope HTTP ") in
  Alcotest.(check int64) "missing relation" 404L (single_exit r);
  let r = run (Targets.Bandicoot_mini.concrete_program ~req:"PUT /users HTTP") in
  Alcotest.(check int64) "non-GET" 400L (single_exit r)

let test_bandicoot_oob_found () =
  let r = run (Targets.Bandicoot_mini.program ~req_len:8) in
  Alcotest.(check bool) "symbolic run finds the OOB read" true (has_memory_fault r)

(* --- lighttpd (Table 6) --------------------------------------------------------------------- *)

let test_lighttpd_table6 () =
  let module L = Targets.Lighttpd_mini in
  let check version pattern pattern_name expect_crash =
    let r = run (L.program version pattern) in
    let crashed = has_memory_fault r in
    let vname = match version with L.V12 -> "1.4.12" | L.V13 -> "1.4.13" in
    Alcotest.(check bool)
      (Printf.sprintf "%s %s %s" vname pattern_name (if expect_crash then "crashes" else "is ok"))
      expect_crash crashed;
    if not expect_crash then
      Alcotest.(check int64) (Printf.sprintf "%s %s serves 200" vname pattern_name) 200L (single_exit r)
  in
  check L.V12 L.pattern_whole "1x28" false;
  check L.V12 L.pattern_split "26+2" true;
  check L.V12 L.pattern_complex "complex" true;
  check L.V13 L.pattern_whole "1x28" false;
  check L.V13 L.pattern_split "26+2" false;
  check L.V13 L.pattern_complex "complex" true

(* --- memcached ---------------------------------------------------------------------------------- *)

let test_memcached_suite_passes () =
  List.iter
    (fun (name, cmds, statuses) ->
      let r = run (Targets.Memcached_mini.concrete_suite ~commands:cmds ~expected_statuses:statuses ()) in
      Alcotest.(check int) (name ^ ": no errors") 0 r.Engine.Driver.errors;
      Alcotest.(check int64) (name ^ ": clean exit") 0L (single_exit r))
    Targets.Memcached_mini.test_suite

let test_memcached_udp_hang_detected () =
  let r = run ~max_steps:20000 (Targets.Memcached_mini.udp_program ~dgram_len:4) in
  let hangs =
    List.filter (function Errors.Error Errors.Instruction_limit -> true | _ -> false)
      (terminations r)
  in
  Alcotest.(check bool) "instruction cap catches the fragment-train loop" true
    (List.length hangs >= 1)

let test_memcached_symbolic_packets () =
  let r = run (Targets.Memcached_mini.symbolic_packets ~npackets:1 ~pkt_len:5) in
  Alcotest.(check bool) "exhausted" true r.Engine.Driver.exhausted;
  Alcotest.(check bool) "tens of paths" true (r.Engine.Driver.paths_explored >= 15)

(* --- coreutils ------------------------------------------------------------------------------------- *)

let test_coreutils_all_compile () =
  for seed = 0 to Targets.Coreutils_gen.count - 1 do
    ignore (Targets.Coreutils_gen.program seed)
  done

let test_coreutils_diversity () =
  let counts =
    List.map
      (fun seed ->
        let r = run ~goal:(Engine.Driver.Paths 2000) (Targets.Coreutils_gen.program seed) in
        Alcotest.(check int)
          (Printf.sprintf "cu%02d has no errors" seed)
          0 r.Engine.Driver.errors;
        r.Engine.Driver.paths_explored)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "path counts differ across utilities" true
    (List.length (List.sort_uniq compare counts) >= 4)

(* --- prodcons ---------------------------------------------------------------------------------------- *)

let test_prodcons_concrete () =
  let r =
    run (Targets.Prodcons.program ~nproducers:2 ~nconsumers:2 ~items_per_producer:2 ~symbolic:false)
  in
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors;
  Alcotest.(check int) "single deterministic path" 1 r.Engine.Driver.paths_explored

let test_prodcons_symbolic () =
  let r =
    run (Targets.Prodcons.program ~nproducers:1 ~nconsumers:1 ~items_per_producer:2 ~symbolic:true)
  in
  Alcotest.(check bool) "multiple data-dependent paths" true (r.Engine.Driver.paths_explored > 3);
  Alcotest.(check int) "no errors" 0 r.Engine.Driver.errors

let () =
  Alcotest.run "targets"
    [
      ( "printf",
        [
          Alcotest.test_case "concrete formats" `Quick test_printf_concrete;
          Alcotest.test_case "symbolic exhausts" `Quick test_printf_symbolic_exhausts;
        ] );
      ( "test-utility",
        [
          Alcotest.test_case "concrete evaluations" `Quick test_test_concrete;
          Alcotest.test_case "symbolic exhausts" `Quick test_test_symbolic;
        ] );
      ( "curl",
        [
          Alcotest.test_case "crash input" `Quick test_curl_crash_input;
          Alcotest.test_case "expansion counts" `Quick test_curl_expansion_counts;
          Alcotest.test_case "symbolic finds bug" `Quick test_curl_symbolic_finds_bug;
        ] );
      ( "bandicoot",
        [
          Alcotest.test_case "valid requests" `Quick test_bandicoot_valid_request;
          Alcotest.test_case "OOB read found" `Quick test_bandicoot_oob_found;
        ] );
      ("lighttpd", [ Alcotest.test_case "Table 6 matrix" `Quick test_lighttpd_table6 ]);
      ( "memcached",
        [
          Alcotest.test_case "test suite passes" `Quick test_memcached_suite_passes;
          Alcotest.test_case "UDP hang detected" `Quick test_memcached_udp_hang_detected;
          Alcotest.test_case "symbolic packets" `Quick test_memcached_symbolic_packets;
        ] );
      ( "coreutils",
        [
          Alcotest.test_case "all 96 compile" `Quick test_coreutils_all_compile;
          Alcotest.test_case "structural diversity" `Quick test_coreutils_diversity;
        ] );
      ( "prodcons",
        [
          Alcotest.test_case "concrete" `Quick test_prodcons_concrete;
          Alcotest.test_case "symbolic" `Quick test_prodcons_symbolic;
        ] );
    ]
