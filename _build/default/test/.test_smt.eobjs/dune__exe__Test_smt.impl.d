test/test_smt.ml: Alcotest Array Int64 List QCheck2 QCheck_alcotest Smt
