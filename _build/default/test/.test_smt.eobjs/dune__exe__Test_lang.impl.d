test/test_lang.ml: Alcotest Cvm Engine Lang List Random
