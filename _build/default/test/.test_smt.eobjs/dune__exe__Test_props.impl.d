test/test_props.ml: Alcotest Cluster Cvm Engine Hashtbl Int64 Lang List Posix QCheck2 QCheck_alcotest Random Smt
