test/test_core.ml: Alcotest Cluster Core Cvm Engine List Printf Smt String
