test/test_engine.ml: Alcotest Char Cvm Engine Lang List Random Smt String
