test/test_targets2.ml: Alcotest Cvm Engine Int64 List Posix Random Smt String Targets
