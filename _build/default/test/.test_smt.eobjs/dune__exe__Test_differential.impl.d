test/test_differential.ml: Alcotest Engine Int64 Lang List Printf QCheck2 QCheck_alcotest Random
