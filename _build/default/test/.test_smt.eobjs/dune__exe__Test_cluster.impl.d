test/test_cluster.ml: Alcotest Bytes Cluster Cvm Engine Lang Lazy List Printf Random Smt
