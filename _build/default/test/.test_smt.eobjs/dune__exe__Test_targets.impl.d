test/test_targets.ml: Alcotest Cvm Engine List Posix Printf Random Smt String Targets
