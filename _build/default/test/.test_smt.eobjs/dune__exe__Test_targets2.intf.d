test/test_targets2.mli:
