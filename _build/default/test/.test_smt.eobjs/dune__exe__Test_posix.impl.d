test/test_posix.ml: Alcotest Char Cvm Engine Int64 Lang List Posix Random
