(* Tests for the POSIX environment model: files, pipes, TCP/UDP sockets,
   select, the extended ioctls (symbolic sources, packet fragmentation,
   fault injection), fork/waitpid, and the pthread-style runtime. *)

open Lang.Builder
module Api = Posix.Api

let run_posix ?max_steps ?(strategy = "dfs") cu =
  let program = compile cu in
  let rng = Random.State.make [| 11 |] in
  let searcher = Engine.Searcher.of_name ~rng strategy in
  let cfg = Api.make_config ?max_steps ~nlines:program.Cvm.Program.nlines () in
  let st0 = Api.initial_state program ~args:[] in
  (cfg, Engine.Driver.run cfg searcher st0)

let terminations result =
  List.map (fun tc -> tc.Engine.Testcase.termination) result.Engine.Driver.tests

let expect_exit_codes cu expected name =
  let _cfg, result = run_posix cu in
  let codes =
    List.filter_map (function Engine.Errors.Exit c -> Some c | _ -> None) (terminations result)
    |> List.sort compare
  in
  Alcotest.(check (list int64)) name expected codes

let posix_unit ?globals funcs main_body =
  cunit ~entry:"main" ?globals (funcs @ Api.runtime @ [ fn "main" [] (Some u32) main_body ])

(* --- files --------------------------------------------------------------------- *)

let test_file_roundtrip () =
  expect_exit_codes
    (posix_unit []
       [
         (* write a file, read it back *)
         decl "fd" i64 (Some (Api.openf (str "/tmp/t") (Api.o_creat |! Api.o_wronly)));
         assert_ (v "fd" >=! n 0) "open for write";
         decl_arr "wbuf" u8 4;
         set (idx (v "wbuf") (n 0)) (chr 'a');
         set (idx (v "wbuf") (n 1)) (chr 'b');
         set (idx (v "wbuf") (n 2)) (chr 'c');
         set (idx (v "wbuf") (n 3)) (chr 'd');
         expr (Api.write (v "fd") (addr (idx (v "wbuf") (n 0))) (n 4));
         expr (Api.close (v "fd"));
         decl "fd2" i64 (Some (Api.openf (str "/tmp/t") Api.o_rdonly));
         decl_arr "rbuf" u8 4;
         decl "got" i64 (Some (Api.read (v "fd2") (addr (idx (v "rbuf") (n 0))) (n 4)));
         assert_ (v "got" ==! n 4) "read back 4 bytes";
         halt (cast u32 (idx (v "rbuf") (n 2))); (* 'c' = 99 *)
       ])
    [ 99L ] "file roundtrip"

let test_open_missing_file () =
  expect_exit_codes
    (posix_unit []
       [
         decl "fd" i64 (Some (Api.openf (str "/does/not/exist") Api.o_rdonly));
         if_ (v "fd" <! n 0) [ halt (n 1) ] [ halt (n 0) ];
       ])
    [ 1L ] "missing file yields error"

let test_lseek_and_size () =
  expect_exit_codes
    (posix_unit []
       [
         decl_arr "content" u8 8;
         call_void "mem_set" [ addr (idx (v "content") (n 0)); chr 'x'; n 8 ];
         expr (Api.mkfile (str "/f") (addr (idx (v "content") (n 0))) (n 8));
         decl "fd" i64 (Some (Api.openf (str "/f") Api.o_rdonly));
         decl "size" i64 (Some (Api.fstat_size (v "fd")));
         expr (Api.lseek (v "fd") (n 6) (n 0));
         decl_arr "b" u8 4;
         decl "got" i64 (Some (Api.read (v "fd") (addr (idx (v "b") (n 0))) (n 4)));
         (* only 2 bytes remain after seeking to 6 *)
         halt (cast u32 (v "size" *! n 10 +! v "got"));
       ])
    [ 82L ] "lseek and fstat_size"

(* --- pipes ----------------------------------------------------------------------- *)

let test_pipe_between_threads () =
  expect_exit_codes
    (posix_unit
       ~globals:[ global "fds" (Arr (i32, 2)) ]
       [
         fn "writer" [ ("k", i64) ] None
           [
             decl_arr "b" u8 2;
             set (idx (v "b") (n 0)) (chr 'O');
             set (idx (v "b") (n 1)) (chr 'K');
             expr (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "b") (n 0))) (n 2));
           ];
       ]
       [
         expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
         expr (Api.thread_create "writer" (n 0));
         decl_arr "b" u8 2;
         (* blocks until the writer runs *)
         decl "got" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 2)));
         assert_ (v "got" ==! n 2) "read two bytes";
         halt (cast u32 (idx (v "b") (n 0)) +! cast u32 (idx (v "b") (n 1)));
       ])
    [ Int64.of_int (Char.code 'O' + Char.code 'K') ]
    "pipe blocking read"

let test_pipe_eof_on_close () =
  expect_exit_codes
    (posix_unit
       ~globals:[ global "fds" (Arr (i32, 2)) ]
       [
         fn "closer" [ ("k", i64) ] None [ expr (Api.close (cast i64 (idx (v "fds") (n 1)))) ];
       ]
       [
         expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
         expr (Api.thread_create "closer" (n 0));
         decl_arr "b" u8 1;
         decl "got" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 1)));
         halt (cast u32 (v "got" +! n 5)); (* EOF = 0 -> 5 *)
       ])
    [ 5L ] "EOF after close"

(* --- TCP sockets --------------------------------------------------------------------- *)

let test_tcp_connection () =
  let cu =
    posix_unit
      ~globals:[ global "ready" u32 ]
      [
        fn "server" [ ("k", i64) ] None
          [
            decl "s" i64 (Some (Api.socket Api.sock_stream));
            assert_ (Api.bind (v "s") (n 8080) ==! n 0) "bind";
            assert_ (Api.listen (v "s") ==! n 0) "listen";
            set (v "ready") (n 1);
            decl "c" i64 (Some (Api.accept (v "s")));
            decl_arr "b" u8 8;
            decl "got" i64 (Some (Api.read (v "c") (addr (idx (v "b") (n 0))) (n 8)));
            set (idx (v "b") (n 0)) (idx (v "b") (n 0) *! n 2);
            expr (Api.write (v "c") (addr (idx (v "b") (n 0))) (v "got"));
          ];
      ]
      [
        expr (Api.thread_create "server" (n 0));
        while_ (v "ready" ==! n 0) [ expr (Api.thread_preempt ()) ];
        decl "c" i64 (Some (Api.socket Api.sock_stream));
        assert_ (Api.connect (v "c") (n 8080) ==! n 0) "connect";
        decl_arr "msg" u8 1;
        set (idx (v "msg") (n 0)) (n 21);
        expr (Api.write (v "c") (addr (idx (v "msg") (n 0))) (n 1));
        decl_arr "reply" u8 1;
        decl "got" i64 (Some (Api.read (v "c") (addr (idx (v "reply") (n 0))) (n 1)));
        assert_ (v "got" ==! n 1) "reply length";
        halt (cast u32 (idx (v "reply") (n 0)));
      ]
  in
  expect_exit_codes cu [ 42L ] "TCP echo doubles byte"

let test_connect_refused () =
  expect_exit_codes
    (posix_unit []
       [
         decl "c" i64 (Some (Api.socket Api.sock_stream));
         decl "r" i64 (Some (Api.connect (v "c") (n 9999)));
         if_ (v "r" <! n 0) [ halt (n 7) ] [ halt (n 0) ];
       ])
    [ 7L ] "connect to unbound port refused"

(* --- UDP ------------------------------------------------------------------------------- *)

let test_udp_datagram_boundaries () =
  (* two sendto's must arrive as two datagrams, not a byte stream *)
  let cu =
    posix_unit
      ~globals:[ global "ready" u32 ]
      [
        fn "client" [ ("k", i64) ] None
          [
            decl "c" i64 (Some (Api.socket Api.sock_dgram));
            decl_arr "b" u8 4;
            call_void "mem_set" [ addr (idx (v "b") (n 0)); chr 'A'; n 4 ];
            expr (Api.sendto (v "c") (addr (idx (v "b") (n 0))) (n 4) (n 5353));
            call_void "mem_set" [ addr (idx (v "b") (n 0)); chr 'B'; n 2 ];
            expr (Api.sendto (v "c") (addr (idx (v "b") (n 0))) (n 2) (n 5353));
          ];
      ]
      [
        decl "s" i64 (Some (Api.socket Api.sock_dgram));
        assert_ (Api.bind (v "s") (n 5353) ==! n 0) "bind udp";
        expr (Api.thread_create "client" (n 0));
        decl_arr "b" u8 16;
        decl "n1" i64 (Some (Api.recvfrom (v "s") (addr (idx (v "b") (n 0))) (n 16)));
        decl "n2" i64 (Some (Api.recvfrom (v "s") (addr (idx (v "b") (n 0))) (n 16)));
        (* 4 and 2: boundaries preserved *)
        halt (cast u32 (v "n1" *! n 10 +! v "n2"));
      ]
  in
  expect_exit_codes cu [ 42L ] "UDP datagram boundaries"

(* --- select ------------------------------------------------------------------------------ *)

let test_select_blocks_until_ready () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      [
        fn "writer" [ ("k", i64) ] None
          [
            decl_arr "b" u8 1;
            set (idx (v "b") (n 0)) (n 9);
            expr (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "b") (n 0))) (n 1));
          ];
      ]
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        expr (Api.thread_create "writer" (n 0));
        decl_arr "rds" u8 8;
        call_void "mem_set" [ addr (idx (v "rds") (n 0)); n 0; n 8 ];
        set (idx (v "rds") (cast u32 (idx (v "fds") (n 0)))) (n 1);
        decl "nready" i64
          (Some (Api.select (addr (idx (v "rds") (n 0))) (cast (Ptr u8) (n 0)) (n 8)));
        assert_ (v "nready" ==! n 1) "one fd ready";
        assert_ (idx (v "rds") (cast u32 (idx (v "fds") (n 0))) ==! n 1) "readable bit set";
        halt (n 3);
      ]
  in
  expect_exit_codes cu [ 3L ] "select wakes on data"

(* --- symbolic sources and fragmentation ------------------------------------------------------ *)

let test_symbolic_source_forks () =
  (* reading from a SIO_SYMBOLIC fd yields symbolic bytes that fork at
     branches *)
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        expr (Api.ioctl (cast i64 (idx (v "fds") (n 0))) Api.sio_symbolic (n 0));
        decl_arr "b" u8 1;
        expr (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 1));
        if_ (idx (v "b") (n 0) <! n 128) [ halt (n 1) ] [ halt (n 2) ];
      ]
  in
  let _cfg, result = run_posix cu in
  Alcotest.(check int) "two paths from symbolic read" 2 result.Engine.Driver.paths_explored

let test_fragmentation_explores_patterns () =
  (* a 3-byte message with SIO_PKT_FRAGMENT: read sizes fork; counting
     reads of a 3-byte stream gives compositions of 3 = 4 paths *)
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        decl_arr "msg" u8 3;
        call_void "mem_set" [ addr (idx (v "msg") (n 0)); chr 'x'; n 3 ];
        expr (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "msg") (n 0))) (n 3));
        expr (Api.close (cast i64 (idx (v "fds") (n 1))));
        expr (Api.ioctl (cast i64 (idx (v "fds") (n 0))) Api.sio_pkt_fragment (n 0));
        decl_arr "b" u8 3;
        decl "reads" u32 (Some (n 0));
        decl "total" u32 (Some (n 0));
        while_ (v "total" <! n 3)
          [
            decl "got" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 3)));
            when_ (v "got" <=! n 0) [ break_ ];
            set (v "total") (v "total" +! cast u32 (v "got"));
            incr_ "reads";
          ];
        halt (v "reads");
      ]
  in
  let _cfg, result = run_posix cu in
  (* compositions of 3: 3, 2+1, 1+2, 1+1+1 *)
  Alcotest.(check int) "four fragmentation patterns" 4 result.Engine.Driver.paths_explored

(* --- fault injection ---------------------------------------------------------------------------- *)

let test_fault_injection_forks () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        expr (Api.ioctl (cast i64 (idx (v "fds") (n 1))) Api.sio_fault_inj Api.wr_flag);
        expr (Api.fi_enable ());
        decl_arr "b" u8 1;
        set (idx (v "b") (n 0)) (n 1);
        decl "r" i64 (Some (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "b") (n 0))) (n 1)));
        if_ (v "r" <! n 0) [ halt (n 60) ] [ halt (n 61) ];
      ]
  in
  let _cfg, result = run_posix cu in
  Alcotest.(check int) "write forks into success and fault" 2 result.Engine.Driver.paths_explored;
  let codes =
    List.filter_map (function Engine.Errors.Exit c -> Some c | _ -> None) (terminations result)
    |> List.sort compare
  in
  Alcotest.(check (list int64)) "both outcomes observed" [ 60L; 61L ] codes

let test_fi_disabled_no_fork () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        expr (Api.ioctl (cast i64 (idx (v "fds") (n 1))) Api.sio_fault_inj Api.wr_flag);
        (* fi_enable NOT called: no fault fork *)
        decl_arr "b" u8 1;
        decl "r" i64 (Some (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "b") (n 0))) (n 1)));
        halt (n 0);
      ]
  in
  let _cfg, result = run_posix cu in
  Alcotest.(check int) "single path without global enable" 1 result.Engine.Driver.paths_explored

(* --- processes ------------------------------------------------------------------------------------- *)

let test_fork_waitpid () =
  let cu =
    posix_unit []
      [
        decl "pid" i64 (Some (Api.fork ()));
        if_ (v "pid" ==! n 0) [ expr (Api.exit_ (n 33)) ] [];
        decl "status" i64 (Some (Api.waitpid (v "pid")));
        halt (cast u32 (v "status"));
      ]
  in
  expect_exit_codes cu [ 33L ] "fork + waitpid returns child status"

let test_fork_inherits_fds () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        decl "pid" i64 (Some (Api.fork ()));
        if_
          (v "pid" ==! n 0)
          [
            decl_arr "b" u8 1;
            set (idx (v "b") (n 0)) (n 77);
            expr (Api.write (cast i64 (idx (v "fds") (n 1))) (addr (idx (v "b") (n 0))) (n 1));
            expr (Api.exit_ (n 0));
          ]
          [];
        decl_arr "b" u8 1;
        decl "got" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 1)));
        assert_ (v "got" ==! n 1) "read from child";
        halt (cast u32 (idx (v "b") (n 0)));
      ]
  in
  expect_exit_codes cu [ 77L ] "child inherits pipe descriptors"

(* --- pthread runtime ----------------------------------------------------------------------------------- *)

let test_mutex_mutual_exclusion () =
  (* two threads increment a counter 100 times under a mutex; with
     cooperative scheduling plus the lock, the final value is exact *)
  let cu =
    posix_unit
      ~globals:[ global "m" (Arr (u64, 3)); global "counter" u32 ]
      [
        fn "incr_n" [ ("k", i64) ] None
          [
            for_range "i" ~from:(n 0) ~below:(n 100)
              [
                call_void "mutex_lock" [ addr (idx (v "m") (n 0)) ];
                set (v "counter") (v "counter" +! n 1);
                call_void "mutex_unlock" [ addr (idx (v "m") (n 0)) ];
              ];
          ];
      ]
      [
        call_void "mutex_init" [ addr (idx (v "m") (n 0)) ];
        expr (Api.thread_create "incr_n" (n 0));
        expr (Api.thread_create "incr_n" (n 0));
        (* give workers time to run (cooperative) *)
        for_range "i" ~from:(n 0) ~below:(n 300) [ expr (Api.thread_preempt ()) ];
        halt (v "counter");
      ]
  in
  expect_exit_codes cu [ 200L ] "mutex-protected counter"

let test_cond_wait_signal () =
  let cu =
    posix_unit
      ~globals:
        [ global "m" (Arr (u64, 3)); global "c" (Arr (u64, 1)); global "flag" u32 ]
      [
        fn "producer" [ ("k", i64) ] None
          [
            call_void "mutex_lock" [ addr (idx (v "m") (n 0)) ];
            set (v "flag") (n 44);
            call_void "cond_signal" [ addr (idx (v "c") (n 0)) ];
            call_void "mutex_unlock" [ addr (idx (v "m") (n 0)) ];
          ];
      ]
      [
        call_void "mutex_init" [ addr (idx (v "m") (n 0)) ];
        call_void "cond_init" [ addr (idx (v "c") (n 0)) ];
        expr (Api.thread_create "producer" (n 0));
        call_void "mutex_lock" [ addr (idx (v "m") (n 0)) ];
        while_ (v "flag" ==! n 0)
          [ call_void "cond_wait" [ addr (idx (v "c") (n 0)); addr (idx (v "m") (n 0)) ] ];
        call_void "mutex_unlock" [ addr (idx (v "m") (n 0)) ];
        halt (v "flag");
      ]
  in
  expect_exit_codes cu [ 44L ] "condition variable"

(* --- fcntl / O_NONBLOCK / dup2 ------------------------------------------------ *)

let test_nonblocking_read () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        (* empty pipe + O_NONBLOCK: read returns EAGAIN instead of blocking *)
        expr (Api.fcntl (cast i64 (idx (v "fds") (n 0))) Api.f_setfl Api.o_nonblock);
        decl "flags" i64 (Some (Api.fcntl (cast i64 (idx (v "fds") (n 0))) Api.f_getfl (n 0)));
        assert_ (v "flags" ==! n 1) "O_NONBLOCK reported by F_GETFL";
        decl_arr "b" u8 1;
        decl "r" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "b") (n 0))) (n 1)));
        if_ (v "r" ==! n (-11)) [ halt (n 42) ] [ halt (n 0) ];
      ]
  in
  expect_exit_codes cu [ 42L ] "nonblocking read returns EAGAIN"

let test_dup2 () =
  let cu =
    posix_unit
      ~globals:[ global "fds" (Arr (i32, 2)) ]
      []
      [
        expr (Api.pipe (cast (Ptr u8) (addr (idx (v "fds") (n 0)))));
        (* duplicate the write end onto descriptor 9, write through it *)
        decl "nine" i64 (Some (Api.dup2 (cast i64 (idx (v "fds") (n 1))) (n 9)));
        assert_ (v "nine" ==! n 9) "dup2 returns the target";
        decl_arr "b" u8 1;
        set (idx (v "b") (n 0)) (n 77);
        expr (Api.write (n 9) (addr (idx (v "b") (n 0))) (n 1));
        decl_arr "r" u8 1;
        decl "got" i64 (Some (Api.read (cast i64 (idx (v "fds") (n 0))) (addr (idx (v "r") (n 0))) (n 1)));
        assert_ (v "got" ==! n 1) "read through original";
        halt (cast u32 (idx (v "r") (n 0)));
      ]
  in
  expect_exit_codes cu [ 77L ] "dup2 aliases the descriptor"


let () =
  Alcotest.run "posix"
    [
      ( "files",
        [
          Alcotest.test_case "roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_open_missing_file;
          Alcotest.test_case "lseek/fstat" `Quick test_lseek_and_size;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "blocking read" `Quick test_pipe_between_threads;
          Alcotest.test_case "EOF on close" `Quick test_pipe_eof_on_close;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "echo" `Quick test_tcp_connection;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
        ] );
      ("udp", [ Alcotest.test_case "datagram boundaries" `Quick test_udp_datagram_boundaries ]);
      ("select", [ Alcotest.test_case "blocks until ready" `Quick test_select_blocks_until_ready ]);
      ( "symbolic-io",
        [
          Alcotest.test_case "symbolic source" `Quick test_symbolic_source_forks;
          Alcotest.test_case "fragmentation" `Quick test_fragmentation_explores_patterns;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "forks on write" `Quick test_fault_injection_forks;
          Alcotest.test_case "disabled: no fork" `Quick test_fi_disabled_no_fork;
        ] );
      ( "processes",
        [
          Alcotest.test_case "fork + waitpid" `Quick test_fork_waitpid;
          Alcotest.test_case "fd inheritance" `Quick test_fork_inherits_fds;
        ] );
      ( "fcntl",
        [
          Alcotest.test_case "O_NONBLOCK read" `Quick test_nonblocking_read;
          Alcotest.test_case "dup2" `Quick test_dup2;
        ] );
      ( "pthread",
        [
          Alcotest.test_case "mutex" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "condvar" `Quick test_cond_wait_signal;
        ] );
    ]
