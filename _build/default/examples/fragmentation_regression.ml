(* Diagnosing an incomplete bug fix with symbolic fragmentation (paper
   sections 5.1 and 7.3.4).

   lighttpd 1.4.12 crashed when HTTP requests arrived fragmented in
   particular ways; 1.4.13 shipped a fix.  Running a stream-fragmentation
   symbolic test against *both* versions shows the fix to be incomplete:
   the engine explores read-size patterns (SIO_PKT_FRAGMENT) and still
   finds crashing patterns in 1.4.13.  "Had a stream-fragmentation
   symbolic test been run after the fix, the lighttpd developers would
   have promptly discovered the incompleteness of their fix."

     dune exec examples/fragmentation_regression.exe *)

module L = Targets.Lighttpd_mini
module C = Core.Cloud9

let examine version name =
  let target = C.target ~kind:"web server" name (L.symbolic_program version) in
  (* the fragmentation space is huge; a path budget samples it the way a
     time budget would on a real cluster *)
  let report =
    C.run_local
      ~options:
        {
          C.default_options with
          C.goal = Engine.Driver.Paths 400;
          collect_tests = 1000;
          strategy = "interleaved";
        }
      target
  in
  Format.printf "%-16s %4d fragmentation patterns tested, %d crash@." name report.C.paths
    report.C.errors;
  report.C.errors

let () =
  Format.printf "Symbolic stream-fragmentation regression test (paper Table 6 setup)@.";
  let v12 = examine L.V12 "lighttpd-1.4.12" in
  let v13 = examine L.V13 "lighttpd-1.4.13" in
  if v12 > 0 && v13 > 0 then
    Format.printf "the 1.4.13 fix is INCOMPLETE: crashing fragmentation patterns remain@."
  else if v12 > 0 then Format.printf "1.4.13 fixed every pattern we explored@."
  else Format.printf "no crashes found (unexpected)@.";
  (* also run the three concrete patterns of Table 6 for reference *)
  Format.printf "@.Concrete patterns (Table 6):@.";
  List.iter
    (fun (pname, pattern) ->
      List.iter
        (fun (vname, version) ->
          let t = C.target ~kind:"web server" (vname ^ " " ^ pname) (L.program version pattern) in
          let r = C.run_local ~options:{ C.default_options with C.collect_tests = 4 } t in
          Format.printf "  %-8s %-22s %s@." vname pname (if r.C.errors > 0 then "crash" else "OK"))
        [ ("1.4.12", L.V12); ("1.4.13", L.V13) ])
    [
      ("1x28", L.pattern_whole);
      ("1x26 + 1x2", L.pattern_split);
      ("2+5+1+5+2x1+3x2+5+2x1", L.pattern_complex);
    ]
