(* Cluster-parallel symbolic execution: "throwing hardware at the
   problem" (paper sections 3 and 7.2).

   The same exhaustive symbolic test — all behaviors of mini-memcached on
   a symbolic packet — runs on simulated clusters of increasing size.
   Virtual time to completion should roughly halve with each doubling of
   workers, and per-worker useful work should stay flat, with the dynamic
   load balancer moving jobs between workers throughout the run.

     dune exec examples/cluster_scaling.exe *)

module C = Core.Cloud9

let () =
  let target =
    match Core.Registry.resolve ~name:"memcached" ~variant:(Some "sym-packets-2") with
    | Some t -> t
    | None -> failwith "memcached target missing"
  in
  Format.printf "Exhaustive symbolic test of %s on growing clusters@." target.C.name;
  Format.printf "%8s %12s %10s %14s %12s@." "workers" "virtual time" "paths" "useful instrs"
    "transferred";
  let base_time = ref 0 in
  List.iter
    (fun nworkers ->
      let r =
        C.run_cluster
          ~options:
            {
              C.default_cluster_options with
              C.nworkers;
              speed = 300;
              status_interval = 5;
              latency = 2;
            }
          target
      in
      if nworkers = 1 then base_time := r.Cluster.Driver.ticks;
      Format.printf "%8d %12d %10d %14d %12d   (speedup %.1fx)@." nworkers
        r.Cluster.Driver.ticks r.Cluster.Driver.total_paths r.Cluster.Driver.useful_instrs
        r.Cluster.Driver.transfers
        (float_of_int !base_time /. float_of_int r.Cluster.Driver.ticks))
    [ 1; 2; 4; 8 ];
  Format.printf "@.Every run explores the same global execution tree: identical path counts,@.";
  Format.printf "split dynamically across workers by the load balancer.@."
