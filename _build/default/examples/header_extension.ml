(* The paper's section 5.2 use case: testing support for a new
   "X-NewExtension" HTTP header just added to a web server.

   The symbolic test reuses the boilerplate of a concrete test (build a
   request, send it to the handler) and simply marks the header payload
   symbolic — "whenever the code that processes the header data is
   executed, Cloud9 forks at all the branches that depend on the header
   content."  The new header parser here has a planted defect: its
   quality-value parser accepts "q=" followed by two digits and uses the
   tens digit to index a priority array, forgetting that 'q' values only
   go up to 9 in the table.

     dune exec examples/header_extension.exe *)

open Lang.Builder
module Api = Posix.Api
module C = Core.Cloud9

let header_len = 6

let program =
  compile
    (cunit ~entry:"main"
       ~globals:[ global "priorities" (Arr (u8, 8)) ]
       [
         (* the freshly added header processor under test *)
         fn "process_new_extension" [ ("h", Ptr u8); ("len", u32) ] (Some u32)
           [
             (* expected forms: "on", "off", or "q=NN" *)
             when_
               (v "len" >=! n 2 &&! (idx (v "h") (n 0) ==! chr 'o')
               &&! (idx (v "h") (n 1) ==! chr 'n'))
               [ ret (n 1) ];
             when_
               (v "len" >=! n 3 &&! (idx (v "h") (n 0) ==! chr 'o')
               &&! (idx (v "h") (n 1) ==! chr 'f')
               &&! (idx (v "h") (n 2) ==! chr 'f'))
               [ ret (n 0) ];
             when_
               (v "len" >=! n 4 &&! (idx (v "h") (n 0) ==! chr 'q')
               &&! (idx (v "h") (n 1) ==! chr '=')
               &&! (idx (v "h") (n 2) >=! chr '0')
               &&! (idx (v "h") (n 2) <=! chr '9')
               &&! (idx (v "h") (n 3) >=! chr '0')
               &&! (idx (v "h") (n 3) <=! chr '9'))
               [
                 (* BUG: a two-digit q-value indexes the 8-entry priority
                    table with values up to 9 *)
                 decl "tens" u32 (Some (cast u32 (idx (v "h") (n 2) -! chr '0')));
                 ret (cast u32 (idx (v "priorities") (v "tens")));
               ];
             ret (n 255); (* unknown value: ignore the header *)
           ];
         fn "main" [] (Some u32)
           [
             (* boilerplate from the concrete test: build the request... *)
             decl_arr "hdata" u8 header_len;
             (* ...and make the header payload symbolic (the only change) *)
             expr (Api.make_symbolic (addr (idx (v "hdata") (n 0))) (n header_len) "hData");
             halt (call "process_new_extension" [ addr (idx (v "hdata") (n 0)); n header_len ]);
           ];
       ])

let () =
  Format.printf "Symbolic test for the X-NewExtension header (paper section 5.2)@.";
  let target = C.target ~kind:"example" "x-new-extension" program in
  let report = C.run_local ~options:{ C.default_options with C.collect_tests = 2000 } target in
  Format.printf "%d header-content paths explored, %d trigger bugs@." report.C.paths report.C.errors;
  match C.error_tests report with
  | [] -> Format.printf "the new header handler looks clean@."
  | bug :: _ ->
    let input = List.assoc "hData" bug.Engine.Testcase.inputs in
    Format.printf "bug: %s@." (Engine.Errors.termination_to_string bug.Engine.Testcase.termination);
    Format.printf "triggering header value: %S@."
      (String.concat "" (List.init (min 4 (String.length input)) (fun i -> String.make 1 input.[i])))
