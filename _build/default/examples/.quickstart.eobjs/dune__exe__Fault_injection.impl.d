examples/fault_injection.ml: Core Engine Format Lang Posix
