examples/header_extension.mli:
