examples/cluster_scaling.ml: Cluster Core Format List
