examples/header_extension.ml: Core Engine Format Lang List Posix String
