examples/quickstart.ml: Char Core Engine Format Lang List Posix String
