examples/quickstart.mli:
